package szx

// Codec is a reusable compression handle that amortizes every buffer the
// codec needs — the stream (header/bitmap/zsize/payload) on the compress
// side and the value slice on the decompress side — across calls. In
// steady state its methods allocate nothing, which matters for the
// repeated-compression workloads the paper targets (in-memory compression,
// per-request service compression).
//
// A Codec is NOT safe for concurrent use; give each goroutine its own (the
// zero-value-free constructor makes this cheap). The slices returned by
// Compress and Decompress alias the Codec's internal buffers and are only
// valid until the next call on the same Codec; callers that need the result
// to outlive the next call should copy it or use the package-level Into
// functions with their own buffers.
type Codec[T Float] struct {
	opt  Options
	comp []byte
	vals []T
	// rs is the Codec's own fixed-ratio probe scratch, so a warm handle's
	// TargetRatio search allocates nothing without touching the shared pool.
	rs ratioScratch
}

// NewCodec returns a Codec that compresses under opt.
func NewCodec[T Float](opt Options) *Codec[T] {
	return &Codec[T]{opt: opt}
}

// Options returns the options the Codec was built with.
func (c *Codec[T]) Options() Options { return c.opt }

// SetOptions re-arms the Codec for subsequent calls, keeping its internal
// buffers. This is the handle-pooling pattern: a server keeps warm Codecs
// in a pool and points each one at the current request's options, so the
// per-request compression path allocates nothing in steady state.
func (c *Codec[T]) SetOptions(opt Options) { c.opt = opt }

// Compress compresses data into the Codec's internal buffer and returns it.
// The result is valid until the next call on c.
func (c *Codec[T]) Compress(data []T) ([]byte, error) {
	out, err := compressInto(c.comp[:0], data, c.opt, &c.rs)
	if err != nil {
		return nil, err
	}
	c.comp = out
	return out, nil
}

// Decompress reconstructs a stream into the Codec's internal value buffer
// and returns it. The result is valid until the next call on c. The
// Codec's Workers option selects serial or block-parallel decoding.
func (c *Codec[T]) Decompress(comp []byte) ([]T, error) {
	var out []T
	var err error
	if w := c.opt.workers(); w > 1 {
		out, err = DecompressParallelInto(c.vals[:0], comp, w)
	} else {
		out, err = DecompressInto(c.vals[:0], comp)
	}
	if err != nil {
		return nil, err
	}
	c.vals = out
	return out, nil
}

// CompressInto is the package-level CompressInto under the Codec's options;
// it appends to the caller's buffer and does not touch the Codec's.
func (c *Codec[T]) CompressInto(dst []byte, data []T) ([]byte, error) {
	return CompressInto(dst, data, c.opt)
}

// DecompressInto is the package-level DecompressInto (worker count from the
// Codec's options); it appends to the caller's buffer.
func (c *Codec[T]) DecompressInto(dst []T, comp []byte) ([]T, error) {
	if w := c.opt.workers(); w > 1 {
		return DecompressParallelInto(dst, comp, w)
	}
	return DecompressInto(dst, comp)
}

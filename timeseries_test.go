package szx

import (
	"math"
	"math/rand"
	"testing"
)

// evolveFrames builds a slowly evolving field sequence.
func evolveFrames(n, frames int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, frames)
	cur := make([]float32, n)
	for i := range cur {
		cur[i] = float32(math.Sin(float64(i) / 80))
	}
	for f := 0; f < frames; f++ {
		snap := make([]float32, n)
		copy(snap, cur)
		out[f] = snap
		for i := range cur {
			cur[i] += float32(1e-3*math.Cos(float64(i)/50+float64(f)/3) +
				1e-4*rng.NormFloat64())
		}
	}
	return out
}

func TestTimeSeriesRoundTrip(t *testing.T) {
	frames := evolveFrames(50000, 8, 1)
	const e = 1e-4
	tc, err := NewTimeCompressor(Options{ErrorBound: e})
	if err != nil {
		t.Fatal(err)
	}
	td := NewTimeDecompressor()
	for f, frame := range frames {
		comp, err := tc.CompressFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		dec, err := td.DecompressFrame(comp)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		for i := range frame {
			if math.Abs(float64(frame[i])-float64(dec[i])) > e {
				t.Fatalf("frame %d value %d exceeds bound (no accumulation allowed)", f, i)
			}
		}
	}
}

func TestTimeSeriesBeatsSpatial(t *testing.T) {
	frames := evolveFrames(100000, 6, 2)
	const e = 1e-4
	tc, _ := NewTimeCompressor(Options{ErrorBound: e})
	var temporal, spatial int
	for _, frame := range frames {
		comp, err := tc.CompressFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		temporal += len(comp)
		solo, err := Compress(frame, Options{ErrorBound: e})
		if err != nil {
			t.Fatal(err)
		}
		spatial += len(solo)
	}
	if temporal >= spatial {
		t.Errorf("temporal %d B not smaller than per-frame %d B on slowly evolving data",
			temporal, spatial)
	}
}

func TestTimeSeriesFrameShape(t *testing.T) {
	tc, _ := NewTimeCompressor(Options{ErrorBound: 1e-3})
	if _, err := tc.CompressFrame(make([]float32, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.CompressFrame(make([]float32, 99)); err != ErrFrameShape {
		t.Errorf("got %v", err)
	}
}

func TestTimeSeriesRejectsRelativeMode(t *testing.T) {
	if _, err := NewTimeCompressor(Options{ErrorBound: 1e-3, Mode: BoundRelative}); err == nil {
		t.Error("relative mode accepted")
	}
}

func TestTimeDecompressorCorrupt(t *testing.T) {
	td := NewTimeDecompressor()
	if _, err := td.DecompressFrame([]byte("garbage")); err == nil {
		t.Error("garbage first frame accepted")
	}
	// Prime with a valid frame, then feed bad tags.
	tc, _ := NewTimeCompressor(Options{ErrorBound: 1e-3})
	first, _ := tc.CompressFrame(make([]float32, 256))
	if _, err := td.DecompressFrame(first); err != nil {
		t.Fatal(err)
	}
	if _, err := td.DecompressFrame([]byte{}); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := td.DecompressFrame([]byte{0x99, 1, 2}); err == nil {
		t.Error("bad tag accepted")
	}
}

package telemetry

import "time"

// SpanSink receives completed wall-clock stage intervals from instrumented
// layers. It is the request-scoped counterpart of the package's aggregate
// histograms: where EncodePhaseDurations answers "what does the encode
// phase cost on average", a SpanSink attached to one call answers "what did
// *this* call's encode phase cost".
//
// The interface lives here — not in telemetry/trace — so the codec layers
// (szx.Options.Spans, core.Options.Spans) can accept a sink without
// depending on the tracer; telemetry/trace's *Trace is the canonical
// implementation. Implementations must be safe for concurrent RecordSpan
// calls: the parallel engine reports phases from the coordinating
// goroutine, but the pipelined streaming engine reports frame spans from
// its emitter goroutine while the producer is still submitting.
//
// A nil sink means "not traced"; instrumented sites gate on that nil check
// and skip the clock reads entirely, independent of the Enabled() gate (a
// request can be traced while aggregate telemetry is off, and vice versa).
type SpanSink interface {
	RecordSpan(name string, start, end time.Time)
}

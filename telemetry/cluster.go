package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// The cluster metric set (service/cluster membership + the client-side
// ClusterClient). Like the service family these are ungated: membership
// transitions and routing decisions happen a handful of times per request
// or per poll round, never per block.
var (
	// Routing decisions, by the policy that made them. Fallback counts
	// dispatches where no routable (alive, non-draining) node existed and
	// the router resorted to a suspect or dead peer rather than failing
	// outright.
	ClusterRoutedHash        Counter
	ClusterRoutedLeastLoaded Counter
	ClusterRoutedOrdered     Counter
	ClusterRoutedFallback    Counter

	// Hedging: second-replica requests fired after the latency trigger, and
	// how many of those returned first (won the race against the primary).
	ClusterHedgesFired Counter
	ClusterHedgesWon   Counter

	// Retries against another replica after a retryable failure (429/503 or
	// a transport error), and dispatches the hedge/retry token buckets
	// refused — the budget backstop that keeps a cluster client from
	// amplifying load into an already-overloaded fleet.
	ClusterRetries           Counter
	ClusterHedgeBudgetDenied Counter
	ClusterRetryBudgetDenied Counter

	// Failure-detector state: instantaneous peer counts per state, and
	// cumulative transitions into each state (a flapping peer shows up as a
	// high transition rate with a steady state gauge).
	ClusterPeersAlive   Gauge
	ClusterPeersSuspect Gauge
	ClusterPeersDead    Gauge
	ClusterPeerToAlive  Counter
	ClusterPeerToSuspect Counter
	ClusterPeerToDead   Counter

	// Membership poll rounds completed.
	ClusterPolls Counter
)

// clusterNodes is the per-node request tally: one counter per node address,
// created on first use. Node sets are dynamic (they come from -peers or a
// ClusterClient's node list at runtime), so this family lives outside the
// static registry and is exported by the same dynamic-label mechanism as
// szx_build_info.
var clusterNodes struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// ClusterNodeRequests returns the request counter for one node address,
// creating it on first use. The address becomes the `node` label of the
// szx_cluster_node_requests_total series.
func ClusterNodeRequests(node string) *Counter {
	clusterNodes.mu.Lock()
	defer clusterNodes.mu.Unlock()
	if clusterNodes.m == nil {
		clusterNodes.m = make(map[string]*Counter)
	}
	c := clusterNodes.m[node]
	if c == nil {
		c = &Counter{}
		clusterNodes.m[node] = c
	}
	return c
}

// clusterNodeSnapshot copies the per-node tallies (addresses with zero
// counts included: a node that was registered but never routed to is
// signal, not noise).
func clusterNodeSnapshot() map[string]int64 {
	clusterNodes.mu.Lock()
	defer clusterNodes.mu.Unlock()
	if len(clusterNodes.m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(clusterNodes.m))
	for k, c := range clusterNodes.m {
		out[k] = c.Load()
	}
	return out
}

func resetClusterNodes() {
	clusterNodes.mu.Lock()
	defer clusterNodes.mu.Unlock()
	clusterNodes.m = nil
}

// writePromClusterNodes emits the dynamic szx_cluster_node_requests_total
// family in sorted label order (callers hold the scrape lock).
func writePromClusterNodes(w io.Writer) error {
	snap := clusterNodeSnapshot()
	if len(snap) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w,
		"# HELP szx_cluster_node_requests_total Requests dispatched per cluster node by this process.\n"+
			"# TYPE szx_cluster_node_requests_total counter\n"); err != nil {
		return err
	}
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "szx_cluster_node_requests_total{node=%q} %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	return nil
}

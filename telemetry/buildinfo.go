package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary so scrapes and reports can
// correlate performance shifts with deploys: which module version is
// serving, which Go toolchain built it, and which block-kernel set dispatch
// selected on this host. It is exported on every surface — the
// szx_build_info Prometheus series, Snap().Build (and therefore expvar),
// and the -stats text report.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	VCSRev    string `json:"vcs_revision,omitempty"`
	GoVersion string `json:"go_version"`
	// Kernels is the dispatch decision in its human-readable form, e.g.
	// "avx2 (cpu feature detection)"; read at call time because the codec
	// package registers it at init.
	Kernels string `json:"kernels"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// GetBuildInfo assembles the binary's build identity. The static parts
// (module path, version, VCS revision, Go version) are read once from the
// runtime's embedded build information; the kernel set reflects the current
// dispatch registration.
func GetBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = BuildInfo{Version: "(devel)", GoVersion: runtime.Version()}
		if bi, ok := debug.ReadBuildInfo(); ok {
			buildInfo.Module = bi.Main.Path
			if bi.Main.Version != "" {
				buildInfo.Version = bi.Main.Version
			}
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 12 {
					buildInfo.VCSRev = s.Value[:12]
				}
			}
		}
	})
	bi := buildInfo
	bi.Kernels = KernelDispatchDetail()
	if bi.Kernels == "" {
		bi.Kernels = "unregistered"
	}
	return bi
}

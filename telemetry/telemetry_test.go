package telemetry

import (
	"math/rand"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestEnabledGateDefaultsOff(t *testing.T) {
	if Enabled() {
		t.Fatal("telemetry must default to disabled")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not enable")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable did not disable")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1 (le 2)
	h.Observe(1023) // bucket 10 (le 1024)
	h.Observe(1024) // bucket 11 (le 2048)
	h.Observe(-5)   // clamps to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0+1+1023+1024 {
		t.Fatalf("sum = %d", s.Sum)
	}
	want := map[int64]int64{0: 2, 2: 1, 1024: 1, 2048: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestBitHist(t *testing.T) {
	var h BitHist
	h.Observe(12)
	h.Observe(12)
	h.Observe(64)
	h.Observe(99) // clamps to 64
	h.Observe(-1) // clamps to 0
	s := h.Snapshot()
	if s[12] != 2 || s[64] != 2 || s[0] != 1 || len(s) != 3 {
		t.Fatalf("snapshot = %v", s)
	}
}

// TestCountPackedLeads cross-checks the table-driven packed-lead counting
// against a naive per-value tally for random code sequences and ragged
// lengths.
func TestCountPackedLeads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		codes := make([]byte, n)
		var want [4]int64
		for i := range codes {
			codes[i] = byte(rng.Intn(4))
			want[codes[i]]++
		}
		packed := make([]byte, (n+3)/4)
		for i, c := range codes {
			packed[i>>2] |= c << uint(6-2*(i&3))
		}
		var tally BlockTally
		tally.CountPackedLeads(packed, n)
		if tally.Lead != want {
			t.Fatalf("n=%d: got %v, want %v", n, tally.Lead, want)
		}
	}
}

func TestBlockTallyFlush(t *testing.T) {
	Reset()
	tally := BlockTally{Constant: 3, NonConstant: 7, Lossless: 1, Retries: 2}
	tally.Lead = [4]int64{10, 20, 30, 40}
	tally.Req[22] = 7
	tally.Flush()
	if tally != (BlockTally{}) {
		t.Fatal("Flush did not zero the tally")
	}
	if BlocksConstant.Load() != 3 || BlocksNonConstant.Load() != 7 ||
		BlocksLossless.Load() != 1 || GuardRetries.Load() != 2 {
		t.Fatal("block counters wrong after flush")
	}
	if LeadCodes[3].Load() != 40 {
		t.Fatal("lead counter wrong after flush")
	}
	if ReqLenBits.Snapshot()[22] != 7 {
		t.Fatal("reqlen histogram wrong after flush")
	}
	Reset()
	if BlocksConstant.Load() != 0 || LeadCodes[3].Load() != 0 || len(ReqLenBits.Snapshot()) != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestSnapshotRatios(t *testing.T) {
	Reset()
	RecordCompress(1000, 250, 1e6)
	RecordDecompress(250, 1000, 5e5)
	s := Snap()
	if s.Compress.Ratio != 4 || s.Decompress.Ratio != 4 {
		t.Fatalf("ratios = %v / %v, want 4 / 4", s.Compress.Ratio, s.Decompress.Ratio)
	}
	if s.Compress.Durations.Count != 1 || s.Compress.Durations.Mean != 1e6 {
		t.Fatalf("durations = %+v", s.Compress.Durations)
	}
	Reset()
}

// promLine matches one Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+(Inf)?$`)

func TestWritePrometheusFormat(t *testing.T) {
	Reset()
	defer Reset()
	RecordCompress(4096, 1024, 123456)
	EngineCompressSerial.Inc()
	BlocksConstant.Add(5)
	BlocksNonConstant.Add(11)
	ReqLenBits.Observe(22)
	LeadCodes[2].Add(100)
	EncodePhaseDurations.Observe(2_000_000)
	ServiceRequestsCompress.Inc()
	ServiceRejectedQueueFull.Add(3)
	ServiceInFlight.Set(7)
	ServiceQueueWaits.Observe(5_000)

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`szx_blocks_total{type="constant"} 5`,
		`szx_blocks_total{type="nonconstant"} 11`,
		`szx_engine_selected_total{op="compress",engine="serial"} 1`,
		`szx_reqlen_blocks_total{bits="22"} 1`,
		`szx_lead_code_values_total{code="2"} 100`,
		`szx_compress_duration_seconds_count 1`,
		`# TYPE szx_compress_duration_seconds histogram`,
		`szx_parallel_encode_phase_seconds_bucket{le="+Inf"} 1`,
		`szx_service_requests_total{endpoint="compress"} 1`,
		`szx_service_rejected_total{reason="queue_full"} 3`,
		`# TYPE szx_service_in_flight gauge`,
		`szx_service_in_flight 7`,
		`szx_service_queue_wait_seconds_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	seenHelp := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 3 {
				t.Fatalf("malformed comment line %q", line)
			}
			if strings.HasPrefix(line, "# TYPE ") && seenHelp[f[2]] {
				t.Errorf("duplicate TYPE for %s", f[2])
			}
			if strings.HasPrefix(line, "# TYPE ") {
				seenHelp[f[2]] = true
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line fails exposition grammar: %q", line)
		}
	}
}

func TestGauge(t *testing.T) {
	Reset()
	defer Reset()
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Load(); got != 1 {
		t.Fatalf("gauge after inc/inc/dec: %d", got)
	}
	g.Add(-5)
	if got := g.Load(); got != -4 {
		t.Fatalf("gauge after Add(-5): %d", got)
	}
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("gauge after Set: %d", got)
	}
	// Registry-driven Reset clears gauges too.
	ServiceQueueDepth.Set(9)
	Reset()
	if got := ServiceQueueDepth.Load(); got != 0 {
		t.Fatalf("gauge after Reset: %d", got)
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	Reset()
	defer Reset()
	for _, v := range []int64{1, 10, 100, 1000, 1_000_000} {
		CompressDurations.Observe(v)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	n := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "szx_compress_duration_seconds_bucket") {
			continue
		}
		c, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if c < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = c
		n++
	}
	if n < 3 {
		t.Fatalf("expected several bucket lines, got %d", n)
	}
	if last != 5 {
		t.Fatalf("+Inf bucket = %d, want 5", last)
	}
}

func TestDebugHandlerServesMetricsAndVars(t *testing.T) {
	Reset()
	defer Reset()
	BlocksConstant.Add(9)
	h := DebugHandler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `szx_blocks_total{type="constant"} 9`) {
		t.Fatalf("/metrics: code=%d body=%.200s", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/vars", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"szx"`) {
		t.Fatalf("/debug/vars: code=%d", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", rr.Code)
	}
}

func BenchmarkEnabledCheck(b *testing.B) {
	// The disabled-path cost every instrumented call pays: one atomic load.
	for i := 0; i < b.N; i++ {
		if Enabled() {
			b.Fatal("unexpectedly enabled")
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func TestKernelDispatchAndInvocations(t *testing.T) {
	Reset()
	SetKernelDispatch("avx2", "avx2 (cpu feature detection)")
	if KernelDispatchAVX2.Load() != 1 || KernelDispatchGeneric.Load() != 0 {
		t.Fatal("dispatch gauges wrong for avx2")
	}
	if KernelDispatchDetail() != "avx2 (cpu feature detection)" {
		t.Fatalf("detail = %q", KernelDispatchDetail())
	}
	SetKernelDispatch("generic", "generic (SZX_KERNELS=generic)")
	if KernelDispatchAVX2.Load() != 0 || KernelDispatchGeneric.Load() != 1 {
		t.Fatal("dispatch gauges wrong for generic")
	}

	// Flush derives the invocation counters from the block counts: stats
	// once per block, encode_scan once per truncation attempt.
	tally := BlockTally{Constant: 3, NonConstant: 7, Retries: 2}
	tally.Flush()
	if got := KernelStatsCalls.Load(); got != 10 {
		t.Fatalf("stats invocations = %d, want 10", got)
	}
	if got := KernelEncodeScanCalls.Load(); got != 9 {
		t.Fatalf("encode_scan invocations = %d, want 9", got)
	}
	KernelDecodeScanCalls.Add(5)

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`szx_kernel_dispatched{impl="generic"} 1`,
		`szx_kernel_dispatched{impl="avx2"} 0`,
		`szx_kernel_invocations_total{kernel="stats"} 10`,
		`szx_kernel_invocations_total{kernel="encode_scan"} 9`,
		`szx_kernel_invocations_total{kernel="decode_scan"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
	if snap := Snap(); snap.Kernels.Stats != 10 || snap.Kernels.DecodeScans != 5 ||
		snap.Kernels.Dispatched != "generic (SZX_KERNELS=generic)" {
		t.Fatalf("snapshot kernels wrong: %+v", snap.Kernels)
	}

	// Reset clears the invocation counters but re-asserts the dispatch
	// gauges: the info family must keep naming the active set.
	Reset()
	if KernelStatsCalls.Load() != 0 || KernelDecodeScanCalls.Load() != 0 {
		t.Fatal("Reset did not zero kernel counters")
	}
	if KernelDispatchGeneric.Load() != 1 || KernelDispatchAVX2.Load() != 0 {
		t.Fatal("Reset lost the dispatch decision")
	}
}

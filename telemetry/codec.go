package telemetry

import (
	"sync/atomic"
	"time"
)

// The codec metric set. Each var is one observable; the registry in
// prometheus.go binds them to exposition names and help strings, and
// snapshot.go assembles them into the typed Snapshot.

// Call-level compression/decompression totals.
var (
	CompressCalls       Counter
	CompressBytesIn     Counter // uncompressed input bytes
	CompressBytesOut    Counter // compressed output bytes
	DecompressCalls     Counter
	DecompressBytesIn   Counter   // compressed input bytes
	DecompressBytesOut  Counter   // reconstructed output bytes
	CompressDurations   Histogram // ns per Compress call
	DecompressDurations Histogram // ns per Decompress call
)

// Block-level encoder statistics (the paper's §4 block taxonomy).
var (
	BlocksConstant    Counter    // blocks stored as a single μ
	BlocksNonConstant Counter    // blocks that took the truncation path
	BlocksLossless    Counter    // nonconstant blocks escalated to the full word
	GuardRetries      Counter    // blocks re-encoded by the error-bound guard
	LeadCodes         [4]Counter // per-value identical-leading-byte code distribution
	ReqLenBits        BitHist    // per-block required bit count (Formula 4)
)

// Kernel-layer observables. The dispatch gauges form an info-style family
// (the active implementation set's series is 1, every other series 0); the
// invocation counters count block-level kernel calls — stats once per
// encoded block, encode_scan once per truncation attempt (so guard retries
// count each pass), decode_scan once per nonconstant block decoded. The
// counts are derived inside BlockTally.Flush / the decoder's bitmap tally,
// so the hot loops carry no new instrumentation.
var (
	KernelDispatchGeneric Gauge
	KernelDispatchAVX2    Gauge
	KernelStatsCalls      Counter
	KernelEncodeScanCalls Counter
	KernelDecodeScanCalls Counter
)

// kernelImpl/kernelDetail hold the dispatch decision (the impl name and the
// human-readable form, e.g. "avx2 (cpu feature detection)") for snapshots,
// reports, and re-assertion after Reset.
var (
	kernelImpl   atomic.Value
	kernelDetail atomic.Value
)

// SetKernelDispatch records which block-kernel implementation set dispatch
// selected. internal/core calls it once at init. Reset re-asserts the
// gauges from the recorded decision, so a metrics reset cannot make the
// info family claim no implementation is active.
func SetKernelDispatch(impl, detail string) {
	kernelImpl.Store(impl)
	kernelDetail.Store(detail)
	set := func(g *Gauge, active bool) {
		if active {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
	set(&KernelDispatchGeneric, impl == "generic")
	set(&KernelDispatchAVX2, impl == "avx2")
}

// KernelDispatchDetail returns the recorded dispatch decision, or "" when
// no codec package has registered one.
func KernelDispatchDetail() string {
	if s, ok := kernelDetail.Load().(string); ok {
		return s
	}
	return ""
}

// Decoder-side block counts (from the stream bitmap; kept separate from
// the encoder counts so a compress-then-decompress round trip does not
// double-count).
var (
	DecodedBlocksConstant    Counter
	DecodedBlocksNonConstant Counter
)

// Engine selection: which execution path each call took. The *Serial
// counters count serial-kernel invocations (including the adaptive
// fallbacks); the *Fallback counters count parallel-entry calls that the
// adaptive policy routed to the serial kernel (a fallback therefore
// increments both); the *Parallel counters count calls that engaged the
// work-stealing engine.
var (
	EngineCompressSerial     Counter
	EngineCompressFallback   Counter
	EngineCompressParallel   Counter
	EngineDecompressSerial   Counter
	EngineDecompressFallback Counter
	EngineDecompressParallel Counter
)

// Work-stealing engine internals (shared by the parallel compressor and
// decompressor).
var (
	ParallelChunksOwned     Counter   // chunks claimed by the calling goroutine
	ParallelChunksStolen    Counter   // chunks claimed by pool workers
	ParallelParticipants    Counter   // participants summed over engine calls
	ParallelActiveWorkers   Counter   // participants that claimed ≥1 chunk
	ParallelChunksPerWorker Histogram // chunks claimed per participant per call
	EncodePhaseDurations    Histogram // ns in the parallel encode phase
	GatherPhaseDurations    Histogram // ns in the parallel gather phase
)

// Container-level counters (streaming, archive, temporal layers).
var (
	StreamFramesWritten   Counter
	StreamFramesRead      Counter
	StreamFrameErrors     Counter // malformed/truncated frames seen by Reader
	ArchiveFieldsWritten  Counter
	ArchiveFieldsRead     Counter
	TimeFramesKey         Counter // self-contained temporal keyframes
	TimeFramesDelta       Counter // residual-coded temporal frames
	TimeKeyframeFallbacks Counter // delta frames re-coded as keyframes by the bound check
	RelativeBoundResolves Counter // BoundRelative range scans
)

// Fixed-ratio mode (Options.TargetRatio) bound-search counters.
var (
	RatioSearches    Counter // full bound searches run
	RatioProbes      Counter // sampled compression probes spent across searches
	RatioReestimates Counter // streaming follow-on chunks re-resolved from the seed
	RatioUnconverged Counter // searches that ended outside tolerance
)

// Pipelined streaming engine internals (PipeWriter/PipeReader). Depth is
// the configured ring size observed once per pipeline start; frames in
// flight is sampled at every chunk submission; the stall histograms
// separate the two ways a pipeline loses time — the producer waiting for a
// free ring slot (compute/emit side too slow) and the in-order consumer
// waiting for the next frame to finish (head-of-line chunk still
// compressing or still being read).
var (
	PipelineStarts         Counter   // PipeWriter/PipeReader instances started
	PipelineDepths         Histogram // configured ring depth per pipeline start
	PipelineFramesInFlight Histogram // occupied ring slots, sampled per submission
	PipelineProducerStalls Histogram // ns the producer waited for a free slot
	PipelineConsumerStalls Histogram // ns the in-order consumer waited on the head frame
)

// BlockTally accumulates per-block and per-value encoder statistics
// without atomics. Each encoding worker owns one and calls Flush exactly
// once when its share of the call is done, so the shared counters see one
// atomic add per field per worker per call instead of per block or per
// value.
type BlockTally struct {
	Constant    int64
	NonConstant int64
	Lossless    int64
	Retries     int64
	Lead        [4]int64
	Req         [maxBitLen + 1]int64
}

// CountPackedLeads tallies the 2-bit leading-byte codes of one encoded
// block from its packed lead array (four codes per byte), n being the
// number of values in the block. Counting from the packed form costs one
// table load per four values instead of a load-increment per value, which
// is what keeps the enabled-telemetry overhead inside its ≤10% budget on
// the compression hot path.
func (t *BlockTally) CountPackedLeads(packed []byte, n int) {
	for _, b := range packed {
		c := &leadCountTab[b]
		t.Lead[0] += int64(c[0])
		t.Lead[1] += int64(c[1])
		t.Lead[2] += int64(c[2])
		t.Lead[3] += int64(c[3])
	}
	// The final packed byte pads missing slots with code 0; uncount them.
	t.Lead[0] -= int64((4 - n&3) & 3)
}

// leadCountTab[b] holds how many of b's four 2-bit fields equal each code.
var leadCountTab [256][4]uint8

func init() {
	for b := 0; b < 256; b++ {
		for s := 6; s >= 0; s -= 2 {
			leadCountTab[b][(b>>uint(s))&3]++
		}
	}
}

// Flush adds the tally into the shared counters and zeroes it.
func (t *BlockTally) Flush() {
	if t.Constant != 0 {
		BlocksConstant.Add(t.Constant)
	}
	if t.NonConstant != 0 {
		BlocksNonConstant.Add(t.NonConstant)
	}
	if t.Lossless != 0 {
		BlocksLossless.Add(t.Lossless)
	}
	if t.Retries != 0 {
		GuardRetries.Add(t.Retries)
	}
	for i, n := range t.Lead {
		if n != 0 {
			LeadCodes[i].Add(n)
		}
	}
	for i, n := range t.Req {
		if n != 0 {
			ReqLenBits.add(i, n)
		}
	}
	// Kernel invocations fall out of the block counts: every block ran the
	// stats reduction once, and every truncation attempt (accepted blocks
	// plus guard retries) ran the encode scan once.
	if n := t.Constant + t.NonConstant; n != 0 {
		KernelStatsCalls.Add(n)
	}
	if n := t.NonConstant + t.Retries; n != 0 {
		KernelEncodeScanCalls.Add(n)
	}
	*t = BlockTally{}
}

// RecordCompress records one completed compression call.
func RecordCompress(inBytes, outBytes int, elapsed time.Duration) {
	CompressCalls.Inc()
	CompressBytesIn.Add(int64(inBytes))
	CompressBytesOut.Add(int64(outBytes))
	CompressDurations.Observe(int64(elapsed))
}

// RecordDecompress records one completed decompression call.
func RecordDecompress(inBytes, outBytes int, elapsed time.Duration) {
	DecompressCalls.Inc()
	DecompressBytesIn.Add(int64(inBytes))
	DecompressBytesOut.Add(int64(outBytes))
	DecompressDurations.Observe(int64(elapsed))
}

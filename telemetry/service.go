package telemetry

// The compression-service metric set (the service/ package and cmd/szxd).
// Unlike the per-block codec counters, none of these are gated on
// Enabled(): the service layer touches them a handful of times per
// request — noise against a multi-kilobyte payload — and a scrape of a
// freshly started daemon should show real counts without an opt-in flag.
var (
	// Per-endpoint admitted-request totals.
	ServiceRequestsCompress         Counter
	ServiceRequestsDecompress       Counter
	ServiceRequestsStreamCompress   Counter
	ServiceRequestsStreamDecompress Counter

	// Request/response payload bytes across all endpoints.
	ServiceBytesIn  Counter
	ServiceBytesOut Counter

	// Admission-control outcomes. QueueFull and WaitTimeout map to 429
	// responses, Draining to 503.
	ServiceRejectedQueueFull   Counter
	ServiceRejectedWaitTimeout Counter
	ServiceRejectedDraining    Counter

	// Request failures after admission: client-side (bad parameters,
	// malformed payloads — 4xx) and abandoned (context cancelled mid-flight).
	ServiceBadRequests       Counter
	ServiceCancelledRequests Counter

	// Instantaneous admission state: requests holding an execution slot and
	// requests parked in the wait queue.
	ServiceInFlight   Gauge
	ServiceQueueDepth Gauge

	// Wait time in the admission queue (admitted requests only) and
	// end-to-end handler time for admitted requests.
	ServiceQueueWaits       Histogram // ns waited for an execution slot
	ServiceRequestDurations Histogram // ns per admitted request

	// Batch endpoints (szx_batch_*): one request carries many arrays, so the
	// request counters above undercount the work — these track the arrays.
	ServiceRequestsBatchCompress   Counter
	ServiceRequestsBatchDecompress Counter
	BatchArrays                    Counter   // arrays processed across batch requests
	BatchArrayErrors               Counter   // arrays that failed individually (batch still 200)
	BatchArraysPerRequest          Histogram // arrays per batch request
	BatchArrayBytes                Histogram // payload bytes per array

	// Client-side coalescing (service/client auto-batching of concurrent
	// small calls). CoalesceWaits is the latency an individual call spent
	// parked before its batch flushed — the price paid for amortization.
	BatchCoalescedCalls Counter
	BatchCoalesceWaits  Histogram // ns from enqueue to batch flush
)

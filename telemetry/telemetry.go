// Package telemetry is the runtime observability layer for the SZx codec:
// near-zero-overhead atomic counters, monotonic stage timers, and
// power-of-two-bucket histograms, instrumenting the hot paths in
// internal/core and every public wrapper (streams, archives, temporal
// compression).
//
// The whole subsystem hangs off a single atomic gate: when telemetry is
// disabled (the default), instrumented call sites pay one atomic load per
// codec call — not per block or per value — so the disabled cost is ~1 ns
// per Compress/Decompress and unmeasurable against multi-megabyte payloads
// (the A/B numbers live in BENCH_OBS.json). When enabled, per-block and
// per-value statistics are tallied into plain (non-atomic) thread-local
// structs and flushed to the shared atomics once per worker per call, so
// the enabled path stays race-free under the parallel engine without
// putting atomics in the per-value loops.
//
// Export surfaces:
//
//   - [Snap] returns a typed snapshot of everything;
//   - [Report] renders the snapshot as a human-readable text block;
//   - [WritePrometheus] emits the Prometheus text exposition format;
//   - [PublishExpvar] publishes the snapshot under the expvar key "szx";
//   - [DebugHandler] serves /metrics, /debug/vars, and /debug/pprof.
//
// The cmd/szx and cmd/szxbench binaries expose all of this behind opt-in
// -stats and -stats-http flags.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// on is the package-wide gate. Instrumented hot paths read it once per
// call; everything below it is skipped entirely while disabled.
var on atomic.Bool

// Enable turns metric collection on.
func Enable() { on.Store(true) }

// Disable turns metric collection off. Already-collected values are kept
// (use Reset to clear them).
func Disable() { on.Store(false) }

// Enabled reports whether metric collection is on. Hot paths call this
// once per codec call and skip all instrumentation when it is false.
func Enabled() bool { return on.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (queue depth, in-flight count):
// unlike a Counter it goes both ways. The service layer's admission
// controller is the main client.
type Gauge struct{ v atomic.Int64 }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v with bit length i, i.e. v in [2^(i-1), 2^i);
// bucket 0 counts zeros. An int64 observation has bit length ≤ 63, so 64
// buckets cover the full range with no overflow bucket.
const histBuckets = 64

// Histogram is a power-of-two-bucket histogram of non-negative int64
// observations (negative values clamp to 0). Bucketing by bit length makes
// Observe one shift-free table index — no comparisons, no float math — at
// the cost of coarse (2x) resolution, which is exactly the right trade for
// latency distributions spanning nanoseconds to seconds.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	// max and exemplar link the histogram's worst observation back to the
	// request that caused it (poor-man's exemplars): ObserveExemplar keeps
	// the trace ID of the current maximum, so "what was the slowest
	// request" is answerable from /debug/requests without full tracing of
	// every request. exemplar always holds a string.
	max      atomic.Int64
	exemplar atomic.Value
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records v like Observe and, when v is the largest value
// seen since the last reset, remembers traceID as the histogram's exemplar.
// An empty traceID degrades to a plain Observe. The max/exemplar pair is
// updated with a CAS loop, so two racing maxima keep one of the two IDs —
// either is an honest exemplar.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	for {
		m := h.max.Load()
		if v < m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			h.exemplar.Store(traceID)
			return
		}
	}
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.max.Store(0)
	h.exemplar.Store("")
}

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// bucket's inclusive upper bound (2^i for bucket index i).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Max and
// MaxTraceID surface the exemplar pair recorded by ObserveExemplar: the
// largest observation and the trace it belongs to.
type HistogramSnapshot struct {
	Count      int64    `json:"count"`
	Sum        int64    `json:"sum"`
	Mean       float64  `json:"mean"`
	Max        int64    `json:"max,omitempty"`
	MaxTraceID string   `json:"max_trace_id,omitempty"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Only non-empty buckets are materialized.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if id, ok := h.exemplar.Load().(string); ok {
		s.MaxTraceID = id
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			le := int64(1) << uint(i)
			if i == 0 {
				le = 0
			}
			s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
		}
	}
	return s
}

// maxBitLen is the largest observable bit count in a BitHist (a float64
// word is 64 bits).
const maxBitLen = 64

// BitHist is an exact-bucket histogram over small integer values 0..64,
// used for the per-block required-bit-count distribution (the paper's
// Formula 4 output): unlike Histogram's power-of-two buckets, every
// distinct bit count gets its own bucket, because adjacent values (e.g.
// reqLen 17 vs 25) mean very different compression ratios.
type BitHist struct {
	buckets [maxBitLen + 1]atomic.Int64
}

// Observe records one bit count (clamped to 0..64).
func (h *BitHist) Observe(bits int) {
	if bits < 0 {
		bits = 0
	}
	if bits > maxBitLen {
		bits = maxBitLen
	}
	h.buckets[bits].Add(1)
}

// add accumulates a pre-tallied count (used by BlockTally.Flush).
func (h *BitHist) add(bits int, n int64) { h.buckets[bits].Add(n) }

// Snapshot returns the non-zero buckets as a bits→count map.
func (h *BitHist) Snapshot() map[int]int64 {
	m := make(map[int]int64)
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			m[i] = n
		}
	}
	return m
}

func (h *BitHist) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Timer is a monotonic-clock stage timer. The zero Timer is inert; obtain
// a running one from Start. Call sites gate on Enabled() so the disabled
// path never reads the clock.
type Timer struct{ t0 time.Time }

// Start begins a timing measurement on the monotonic clock.
func Start() Timer { return Timer{t0: time.Now()} }

// Elapsed returns the time since Start.
func (t Timer) Elapsed() time.Duration { return time.Since(t.t0) }

// Stop records the elapsed nanoseconds into h and returns the duration.
func (t Timer) Stop(h *Histogram) time.Duration {
	d := time.Since(t.t0)
	h.Observe(int64(d))
	return d
}

package telemetry

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// expositionLine matches one valid Prometheus 0.0.4 text-format sample.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+(Inf)?$`)

// TestScrapeDuringReset pins the fix for a torn exposition page: Reset
// zeroes the registry value by value, so a concurrent scrape used to be
// able to observe impossible intermediate states — most visibly the kernel
// dispatch pair with NEITHER series set to 1, mid-way between the clear
// and the re-assert. With Reset and WritePrometheus serialized on
// scrapeMu, every page is internally consistent. Run under -race.
func TestScrapeDuringReset(t *testing.T) {
	SetKernelDispatch("generic", "generic (test)")
	defer Reset()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ServiceRequestsCompress.Inc()
				ServiceQueueWaits.Observe(1000)
				Reset()
			}
		}
	}()

	for i := 0; i < 300; i++ {
		var b bytes.Buffer
		if err := WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		var generic, avx2 string
		for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if !expositionLine.MatchString(line) {
				t.Fatalf("scrape %d: malformed exposition line %q", i, line)
			}
			switch {
			case strings.HasPrefix(line, `szx_kernel_dispatched{impl="generic"} `):
				generic = line[len(`szx_kernel_dispatched{impl="generic"} `):]
			case strings.HasPrefix(line, `szx_kernel_dispatched{impl="avx2"} `):
				avx2 = line[len(`szx_kernel_dispatched{impl="avx2"} `):]
			}
		}
		if generic == "" || avx2 == "" {
			t.Fatalf("scrape %d: kernel dispatch series missing", i)
		}
		// Exactly one implementation set is ever active; a page with both
		// zero is the torn state this test exists to catch.
		if !(generic == "1" && avx2 == "0") {
			t.Fatalf("scrape %d: torn page: generic=%s avx2=%s", i, generic, avx2)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapDuringReset gives the struct-snapshot path the same treatment.
func TestSnapDuringReset(t *testing.T) {
	SetKernelDispatch("generic", "generic (test)")
	defer Reset()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				Reset()
			}
		}
	}()
	for i := 0; i < 300; i++ {
		s := Snap()
		if s.Kernels.Dispatched == "" {
			t.Fatalf("snap %d: kernel dispatch detail lost", i)
		}
	}
	close(stop)
	wg.Wait()
}

func TestBuildInfoInScrape(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, "# TYPE szx_build_info gauge") {
		t.Fatal("szx_build_info TYPE line missing")
	}
	var line string
	for _, l := range strings.Split(page, "\n") {
		if strings.HasPrefix(l, "szx_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("szx_build_info sample missing:\n%s", page[:min(len(page), 400)])
	}
	if !strings.HasSuffix(line, "} 1") {
		t.Fatalf("szx_build_info must be a constant-1 gauge: %q", line)
	}
	for _, label := range []string{"version=", "goversion=", "kernels="} {
		if !strings.Contains(line, label) {
			t.Fatalf("szx_build_info missing %s label: %q", label, line)
		}
	}
}

func TestBuildInfoSnapshotAndReport(t *testing.T) {
	bi := GetBuildInfo()
	if bi.Module == "" || bi.GoVersion == "" || bi.Kernels == "" {
		t.Fatalf("incomplete build info: %+v", bi)
	}
	s := Snap()
	if s.Build.GoVersion != bi.GoVersion {
		t.Fatalf("Snap build info = %+v, want %+v", s.Build, bi)
	}
	if !strings.Contains(Report(), "build:") {
		t.Fatal("Report() missing build line")
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(100, "aaaa")
	h.ObserveExemplar(500, "bbbb")
	h.ObserveExemplar(200, "cccc") // below max: exemplar must not move
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 500 || s.MaxTraceID != "bbbb" {
		t.Fatalf("max exemplar = (%d, %q), want (500, bbbb)", s.Max, s.MaxTraceID)
	}
	h.ObserveExemplar(500, "dddd") // ties update: latest max observation wins
	if s := h.Snapshot(); s.MaxTraceID != "dddd" {
		t.Fatalf("tie exemplar = %q, want dddd", s.MaxTraceID)
	}
	h.Observe(9000) // plain Observe moves max without an exemplar claim
	if s := h.Snapshot(); s.Max != 500 {
		// Max tracks exemplared observations only; plain Observe does not
		// race the CAS loop.
		t.Fatalf("plain Observe moved exemplar max: %d", s.Max)
	}
	h.reset()
	if s := h.Snapshot(); s.Max != 0 || s.MaxTraceID != "" {
		t.Fatalf("reset left exemplar state: %+v", s)
	}
}

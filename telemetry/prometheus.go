package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// metric binds one exported observable to its Prometheus identity. Exactly
// one of c/h/b is non-nil. Counters sharing a name (labeled series) must be
// adjacent in the registry so HELP/TYPE headers are emitted once.
type metric struct {
	name   string // Prometheus metric family name
	help   string
	labels string // pre-rendered label set, e.g. `{code="0"}`, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	b      *BitHist
	scale  float64 // histogram value multiplier on export (ns→s = 1e-9)
	blabel string  // BitHist label key
}

var registry = []metric{
	{name: "szx_compress_calls_total", help: "Compression calls completed.", c: &CompressCalls},
	{name: "szx_compress_input_bytes_total", help: "Uncompressed bytes consumed by compression.", c: &CompressBytesIn},
	{name: "szx_compress_output_bytes_total", help: "Compressed bytes produced.", c: &CompressBytesOut},
	{name: "szx_decompress_calls_total", help: "Decompression calls completed.", c: &DecompressCalls},
	{name: "szx_decompress_input_bytes_total", help: "Compressed bytes consumed by decompression.", c: &DecompressBytesIn},
	{name: "szx_decompress_output_bytes_total", help: "Reconstructed bytes produced.", c: &DecompressBytesOut},

	{name: "szx_blocks_total", help: "Blocks encoded, by type (the paper's constant/nonconstant taxonomy).", labels: `{type="constant"}`, c: &BlocksConstant},
	{name: "szx_blocks_total", labels: `{type="nonconstant"}`, c: &BlocksNonConstant},
	{name: "szx_blocks_total", labels: `{type="lossless"}`, c: &BlocksLossless},
	{name: "szx_guard_retries_total", help: "Blocks re-encoded by the error-bound guard pass.", c: &GuardRetries},
	{name: "szx_decoded_blocks_total", help: "Blocks decoded, by type.", labels: `{type="constant"}`, c: &DecodedBlocksConstant},
	{name: "szx_decoded_blocks_total", labels: `{type="nonconstant"}`, c: &DecodedBlocksNonConstant},

	{name: "szx_lead_code_values_total", help: "Values encoded, by 2-bit identical-leading-byte code.", labels: `{code="0"}`, c: &LeadCodes[0]},
	{name: "szx_lead_code_values_total", labels: `{code="1"}`, c: &LeadCodes[1]},
	{name: "szx_lead_code_values_total", labels: `{code="2"}`, c: &LeadCodes[2]},
	{name: "szx_lead_code_values_total", labels: `{code="3"}`, c: &LeadCodes[3]},
	{name: "szx_reqlen_blocks_total", help: "Nonconstant blocks by required bit count (Formula 4).", b: &ReqLenBits, blabel: "bits"},

	{name: "szx_kernel_dispatched", help: "Dispatched block-kernel implementation set (the active set's series is 1); override with SZX_KERNELS.", labels: `{impl="generic"}`, g: &KernelDispatchGeneric},
	{name: "szx_kernel_dispatched", labels: `{impl="avx2"}`, g: &KernelDispatchAVX2},
	{name: "szx_kernel_invocations_total", help: "Block-kernel invocations: stats runs once per encoded block, encode_scan once per truncation attempt (guard retries count each pass), decode_scan once per nonconstant block decoded.", labels: `{kernel="stats"}`, c: &KernelStatsCalls},
	{name: "szx_kernel_invocations_total", labels: `{kernel="encode_scan"}`, c: &KernelEncodeScanCalls},
	{name: "szx_kernel_invocations_total", labels: `{kernel="decode_scan"}`, c: &KernelDecodeScanCalls},

	{name: "szx_engine_selected_total", help: "Execution-engine selection per call; serial_fallback marks parallel-entry calls the adaptive policy routed to the serial kernel.", labels: `{op="compress",engine="serial"}`, c: &EngineCompressSerial},
	{name: "szx_engine_selected_total", labels: `{op="compress",engine="serial_fallback"}`, c: &EngineCompressFallback},
	{name: "szx_engine_selected_total", labels: `{op="compress",engine="parallel"}`, c: &EngineCompressParallel},
	{name: "szx_engine_selected_total", labels: `{op="decompress",engine="serial"}`, c: &EngineDecompressSerial},
	{name: "szx_engine_selected_total", labels: `{op="decompress",engine="serial_fallback"}`, c: &EngineDecompressFallback},
	{name: "szx_engine_selected_total", labels: `{op="decompress",engine="parallel"}`, c: &EngineDecompressParallel},

	{name: "szx_parallel_chunks_total", help: "Work-stealing chunks claimed, by claimant (owned = calling goroutine, stolen = pool worker).", labels: `{claimant="owned"}`, c: &ParallelChunksOwned},
	{name: "szx_parallel_chunks_total", labels: `{claimant="stolen"}`, c: &ParallelChunksStolen},
	{name: "szx_parallel_participants_total", help: "Engine-call participants, summed over calls.", c: &ParallelParticipants},
	{name: "szx_parallel_active_workers_total", help: "Participants that claimed at least one chunk.", c: &ParallelActiveWorkers},
	{name: "szx_parallel_chunks_per_worker", help: "Chunks claimed per participant per engine call.", h: &ParallelChunksPerWorker, scale: 1},

	{name: "szx_compress_duration_seconds", help: "Wall time per compression call.", h: &CompressDurations, scale: 1e-9},
	{name: "szx_decompress_duration_seconds", help: "Wall time per decompression call.", h: &DecompressDurations, scale: 1e-9},
	{name: "szx_parallel_encode_phase_seconds", help: "Wall time of the parallel engine's encode phase.", h: &EncodePhaseDurations, scale: 1e-9},
	{name: "szx_parallel_gather_phase_seconds", help: "Wall time of the parallel engine's gather phase.", h: &GatherPhaseDurations, scale: 1e-9},

	{name: "szx_pipeline_starts_total", help: "Pipelined stream writers/readers started.", c: &PipelineStarts},
	{name: "szx_pipeline_depth", help: "Configured pipeline ring depth per start.", h: &PipelineDepths, scale: 1},
	{name: "szx_pipeline_frames_in_flight", help: "Occupied pipeline ring slots, sampled per chunk submission.", h: &PipelineFramesInFlight, scale: 1},
	{name: "szx_pipeline_producer_stall_seconds", help: "Time the pipeline producer waited for a free ring slot.", h: &PipelineProducerStalls, scale: 1e-9},
	{name: "szx_pipeline_consumer_stall_seconds", help: "Time the in-order pipeline consumer waited on the head frame.", h: &PipelineConsumerStalls, scale: 1e-9},

	{name: "szx_stream_frames_written_total", help: "Streaming-container frames written.", c: &StreamFramesWritten},
	{name: "szx_stream_frames_read_total", help: "Streaming-container frames read.", c: &StreamFramesRead},
	{name: "szx_stream_frame_errors_total", help: "Malformed or truncated streaming frames encountered by Reader.", c: &StreamFrameErrors},
	{name: "szx_archive_fields_written_total", help: "Archive fields compressed and added.", c: &ArchiveFieldsWritten},
	{name: "szx_archive_fields_read_total", help: "Archive fields decompressed.", c: &ArchiveFieldsRead},
	{name: "szx_time_frames_total", help: "Temporal-compressor frames, by kind.", labels: `{kind="key"}`, c: &TimeFramesKey},
	{name: "szx_time_frames_total", labels: `{kind="delta"}`, c: &TimeFramesDelta},
	{name: "szx_time_keyframe_fallbacks_total", help: "Delta frames re-coded as keyframes by the bound check.", c: &TimeKeyframeFallbacks},
	{name: "szx_relative_bound_resolves_total", help: "Value-range scans performed for BoundRelative options.", c: &RelativeBoundResolves},

	{name: "szx_ratio_searches_total", help: "Fixed-ratio (TargetRatio) bound searches run.", c: &RatioSearches},
	{name: "szx_ratio_probes_total", help: "Sampled compression probes spent by fixed-ratio bound searches.", c: &RatioProbes},
	{name: "szx_ratio_reestimates_total", help: "Streaming follow-on chunks re-resolved from the first chunk's seed bound.", c: &RatioReestimates},
	{name: "szx_ratio_unconverged_total", help: "Fixed-ratio searches that ended outside the ratio tolerance.", c: &RatioUnconverged},

	{name: "szx_service_requests_total", help: "Admitted service requests, by endpoint.", labels: `{endpoint="compress"}`, c: &ServiceRequestsCompress},
	{name: "szx_service_requests_total", labels: `{endpoint="decompress"}`, c: &ServiceRequestsDecompress},
	{name: "szx_service_requests_total", labels: `{endpoint="stream_compress"}`, c: &ServiceRequestsStreamCompress},
	{name: "szx_service_requests_total", labels: `{endpoint="stream_decompress"}`, c: &ServiceRequestsStreamDecompress},
	{name: "szx_service_requests_total", labels: `{endpoint="batch_compress"}`, c: &ServiceRequestsBatchCompress},
	{name: "szx_service_requests_total", labels: `{endpoint="batch_decompress"}`, c: &ServiceRequestsBatchDecompress},
	{name: "szx_service_bytes_in_total", help: "Request payload bytes received by the service.", c: &ServiceBytesIn},
	{name: "szx_service_bytes_out_total", help: "Response payload bytes sent by the service.", c: &ServiceBytesOut},
	{name: "szx_service_rejected_total", help: "Requests refused by admission control, by reason (queue_full and wait_timeout are 429s, draining is a 503).", labels: `{reason="queue_full"}`, c: &ServiceRejectedQueueFull},
	{name: "szx_service_rejected_total", labels: `{reason="wait_timeout"}`, c: &ServiceRejectedWaitTimeout},
	{name: "szx_service_rejected_total", labels: `{reason="draining"}`, c: &ServiceRejectedDraining},
	{name: "szx_service_request_errors_total", help: "Admitted requests that failed, by kind.", labels: `{kind="bad_request"}`, c: &ServiceBadRequests},
	{name: "szx_service_request_errors_total", labels: `{kind="cancelled"}`, c: &ServiceCancelledRequests},
	{name: "szx_service_in_flight", help: "Requests currently holding an execution slot.", g: &ServiceInFlight},
	{name: "szx_service_queue_depth", help: "Requests currently waiting in the admission queue.", g: &ServiceQueueDepth},
	{name: "szx_service_queue_wait_seconds", help: "Admission-queue wait time of admitted requests.", h: &ServiceQueueWaits, scale: 1e-9},
	{name: "szx_service_request_duration_seconds", help: "End-to-end handler time of admitted requests.", h: &ServiceRequestDurations, scale: 1e-9},

	{name: "szx_batch_arrays_total", help: "Arrays processed by the batch endpoints.", c: &BatchArrays},
	{name: "szx_batch_array_errors_total", help: "Arrays that failed individually inside an otherwise successful batch.", c: &BatchArrayErrors},
	{name: "szx_batch_arrays_per_request", help: "Arrays carried per batch request.", h: &BatchArraysPerRequest, scale: 1},
	{name: "szx_batch_array_bytes", help: "Payload bytes per batched array.", h: &BatchArrayBytes, scale: 1},
	{name: "szx_batch_coalesced_calls_total", help: "Client calls merged into coalesced batch requests.", c: &BatchCoalescedCalls},
	{name: "szx_batch_coalesce_wait_seconds", help: "Time an individual client call waited for its coalesced batch to flush.", h: &BatchCoalesceWaits, scale: 1e-9},

	{name: "szx_cluster_routing_total", help: "Cluster routing decisions, by the policy that made them (fallback = no routable node, resorted to a suspect/dead peer).", labels: `{policy="hash"}`, c: &ClusterRoutedHash},
	{name: "szx_cluster_routing_total", labels: `{policy="least_loaded"}`, c: &ClusterRoutedLeastLoaded},
	{name: "szx_cluster_routing_total", labels: `{policy="ordered"}`, c: &ClusterRoutedOrdered},
	{name: "szx_cluster_routing_total", labels: `{policy="fallback"}`, c: &ClusterRoutedFallback},
	{name: "szx_cluster_hedges_total", help: "Hedged (second-replica) requests: fired after the latency trigger, won = hedge returned before the primary.", labels: `{event="fired"}`, c: &ClusterHedgesFired},
	{name: "szx_cluster_hedges_total", labels: `{event="won"}`, c: &ClusterHedgesWon},
	{name: "szx_cluster_retries_total", help: "Requests retried against another replica after a retryable failure.", c: &ClusterRetries},
	{name: "szx_cluster_budget_denied_total", help: "Hedges/retries suppressed by the amplification budget.", labels: `{kind="hedge"}`, c: &ClusterHedgeBudgetDenied},
	{name: "szx_cluster_budget_denied_total", labels: `{kind="retry"}`, c: &ClusterRetryBudgetDenied},
	{name: "szx_cluster_peer_state", help: "Peers per failure-detector state.", labels: `{state="alive"}`, g: &ClusterPeersAlive},
	{name: "szx_cluster_peer_state", labels: `{state="suspect"}`, g: &ClusterPeersSuspect},
	{name: "szx_cluster_peer_state", labels: `{state="dead"}`, g: &ClusterPeersDead},
	{name: "szx_cluster_peer_transitions_total", help: "Failure-detector state transitions, by target state.", labels: `{to="alive"}`, c: &ClusterPeerToAlive},
	{name: "szx_cluster_peer_transitions_total", labels: `{to="suspect"}`, c: &ClusterPeerToSuspect},
	{name: "szx_cluster_peer_transitions_total", labels: `{to="dead"}`, c: &ClusterPeerToDead},
	{name: "szx_cluster_polls_total", help: "Membership poll rounds completed.", c: &ClusterPolls},
}

// scrapeMu serializes whole-page exports against Reset. Exports (scrapes,
// Snap) take the read side, so concurrent scrapes still run in parallel;
// Reset takes the write side, so a page is never assembled half-before,
// half-after a reset — without the lock a scrape could emit a histogram
// whose cumulative buckets exceed its own +Inf count (a torn page that
// Prometheus rejects). Individual Observe/Inc calls stay lock-free; the
// per-value races they permit are monotonic and harmless.
var scrapeMu sync.RWMutex

// WritePrometheus emits every metric in the Prometheus text exposition
// format (version 0.0.4). Counters become `counter` families (with labels
// where a family is split by type/engine/code), Histograms become native
// `histogram` families with power-of-two `le` buckets, and the BitHist
// becomes a labeled counter family with one series per observed bit count.
// The page is assembled under the scrape lock, so a concurrent Reset can
// never tear it.
func WritePrometheus(w io.Writer) error {
	scrapeMu.RLock()
	defer scrapeMu.RUnlock()
	if err := writePromBuildInfo(w); err != nil {
		return err
	}
	prevName := ""
	for _, m := range registry {
		if m.name != prevName {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			typ := "counter"
			switch {
			case m.h != nil:
				typ = "histogram"
			case m.g != nil:
				typ = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
				return err
			}
			prevName = m.name
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Load())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.g.Load())
		case m.h != nil:
			err = writePromHistogram(w, m)
		case m.b != nil:
			err = writePromBitHist(w, m)
		}
		if err != nil {
			return err
		}
	}
	return writePromClusterNodes(w)
}

// writePromBuildInfo emits the szx_build_info series: a constant-1 gauge
// whose labels carry the binary's identity (module version, Go toolchain,
// active kernel set), the conventional info-metric shape for joining perf
// shifts to deploys. Labels are dynamic, so it lives outside the static
// registry.
func writePromBuildInfo(w io.Writer) error {
	bi := GetBuildInfo()
	if _, err := fmt.Fprint(w,
		"# HELP szx_build_info Build identity of this binary; the value is always 1.\n"+
			"# TYPE szx_build_info gauge\n"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "szx_build_info{version=%q,revision=%q,goversion=%q,kernels=%q} 1\n",
		bi.Version, bi.VCSRev, bi.GoVersion, bi.Kernels)
	return err
}

func writePromHistogram(w io.Writer, m metric) error {
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n := m.h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		// Upper bound of bucket i is 2^i - 1 in raw units (bit length ≤ i);
		// export 2^i for readable power-of-two le values (still a valid
		// upper bound, and monotonically increasing).
		le := float64(int64(1) << uint(i))
		if i == 0 {
			le = 0
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatLe(le*m.scale), cum); err != nil {
			return err
		}
	}
	count := m.h.count.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count); err != nil {
		return err
	}
	sum := float64(m.h.sum.Load()) * m.scale
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", m.name, sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, count)
	return err
}

func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePromBitHist(w io.Writer, m metric) error {
	for i := range m.b.buckets {
		n := m.b.buckets[i].Load()
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s{%s=\"%d\"} %d\n", m.name, m.blabel, i, n); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the Prometheus text exposition (a /metrics endpoint).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
}

// DebugHandler bundles every HTTP export surface on one mux: /metrics
// (Prometheus text), /debug/vars (expvar JSON, including the "szx"
// snapshot), and /debug/pprof (CPU/heap/goroutine profiles; CPU samples
// carry szx_stage labels when telemetry is enabled). This is what the
// -stats-http flag of cmd/szx and cmd/szxbench serves.
func DebugHandler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var expvarOnce sync.Once

// PublishExpvar publishes the telemetry snapshot under the expvar key
// "szx" (visible at /debug/vars). Safe to call multiple times; only the
// first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("szx", expvar.Func(func() any { return Snap() }))
	})
}

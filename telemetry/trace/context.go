package trace

import "context"

// ctxKey is the private context key carrying a *Trace.
type ctxKey struct{}

// NewContext returns ctx carrying t. A nil t returns ctx unchanged, so
// untraced requests pay no context allocation.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil return
// composes with the nil-safe Trace methods: code can record spans against
// FromContext's result unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

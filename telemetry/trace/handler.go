package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// requestsPage is the JSON shape of /debug/requests.
type requestsPage struct {
	Offered         int64  `json:"offered"`
	Kept            int64  `json:"kept"`
	SlowThresholdNs int64  `json:"slow_threshold_ns"`
	Traces          []View `json:"traces"`
}

// Handler serves the recorder's retained traces. JSON by default;
// ?format=text (or an Accept header preferring text/plain) renders a
// human-readable span breakdown. ?trace_id=<id> narrows to one trace
// (404 when it has aged out of the ring).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var traces []View
		if id := req.URL.Query().Get("trace_id"); id != "" {
			v, ok := r.Lookup(id)
			if !ok {
				http.Error(w, "trace not retained (aged out or never sampled)", http.StatusNotFound)
				return
			}
			traces = []View{v}
		} else {
			traces = r.Traces()
		}
		st := r.Stats()
		page := requestsPage{
			Offered:         st.Offered,
			Kept:            st.Kept,
			SlowThresholdNs: st.SlowNs,
			Traces:          traces,
		}
		if req.URL.Query().Get("format") == "text" ||
			strings.HasPrefix(req.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeText(w, page)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}

func writeText(w http.ResponseWriter, p requestsPage) {
	slow := "n/a"
	if p.SlowThresholdNs > 0 {
		slow = time.Duration(p.SlowThresholdNs).String()
	}
	fmt.Fprintf(w, "recent requests: %d kept of %d offered (slow ≥ %s)\n\n",
		p.Kept, p.Offered, slow)
	for _, v := range p.Traces {
		status := ""
		if v.Status != 0 {
			status = fmt.Sprintf(" %d", v.Status)
		}
		fmt.Fprintf(w, "%s %s%s %s", v.TraceID, v.Name, status,
			time.Duration(v.DurNs).Round(time.Microsecond))
		if v.BytesIn > 0 || v.BytesOut > 0 {
			fmt.Fprintf(w, " in=%d out=%d", v.BytesIn, v.BytesOut)
		}
		if v.SampledFor != "" {
			fmt.Fprintf(w, " (kept: %s)", v.SampledFor)
		}
		fmt.Fprintln(w)
		if v.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", v.Error)
		}
		for _, s := range v.Spans {
			fmt.Fprintf(w, "    %-16s +%-12s %s\n", s.Name,
				s.Start.Round(time.Microsecond), s.Dur.Round(time.Microsecond))
		}
		if v.Dropped > 0 {
			fmt.Fprintf(w, "    (%d spans dropped)\n", v.Dropped)
		}
	}
}

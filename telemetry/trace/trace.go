// Package trace is a dependency-free request-scoped tracer: where package
// telemetry aggregates what the process does overall, a Trace records where
// one request's time went — admission queue wait, body read, plan
// resolution, the codec's encode/gather phases, response write — as named
// wall-clock spans.
//
// A Trace travels in a context.Context (NewContext/FromContext) and across
// process boundaries in a W3C-style traceparent header, so a client-side
// trace ID survives the hop into szxd and comes back in the Szx-Trace-Id
// response header. Finished traces are offered to a Recorder, which keeps a
// bounded ring of the interesting ones — errors and slow requests always,
// a sampled fraction of the rest — served at /debug/requests.
//
// Every method is safe on a nil *Trace and does nothing, so instrumented
// code paths need no "am I traced?" branches; *Trace also implements
// telemetry.SpanSink, which is how the codec layers (szx.Options.Spans,
// core.Options.Spans) report stage intervals without importing this
// package.
package trace

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// Span is one named wall-clock interval inside a trace, stored as offsets
// from the trace's start so a serialized trace is self-contained.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"` // offset from the trace's start
	Dur   time.Duration `json:"dur_ns"`
}

// maxSpans bounds the spans one trace retains; past it, RecordSpan counts
// drops instead of growing without bound (a pipelined stream can emit one
// span per frame, and a frame count is attacker-controlled input).
const maxSpans = 96

// Trace accumulates spans for one request. Create with New, NewWithID, or
// FromTraceparent; mark stages with StartSpan/RecordSpan; seal with Finish.
// All methods are nil-safe and (except Finish's recorder hand-off)
// goroutine-safe, so pipeline workers can record spans while the handler
// is still running.
type Trace struct {
	id     string
	parent string // parent span id from an incoming traceparent, "" at the root
	name   string
	start  time.Time

	mu       sync.Mutex
	spans    []Span
	dropped  int
	status   int
	errMsg   string
	bytesIn  int64
	bytesOut int64
	end      time.Time
	done     bool
	keep     string // sampling verdict, set by the Recorder
}

// New starts a root trace with a fresh random ID. name is the operation
// label ("compress", "client:decompress", ...).
func New(name string) *Trace {
	return &Trace{id: randHex(32), name: name, start: time.Now()}
}

// NewWithID starts a trace under a caller-supplied trace ID (32 lowercase
// hex digits, the W3C trace-id shape). An ill-formed ID falls back to a
// fresh random one, so the result is always propagatable.
func NewWithID(name, id string) *Trace {
	if !isHex(id) || len(id) != 32 || id == zeroTraceID {
		return New(name)
	}
	return &Trace{id: id, name: name, start: time.Now()}
}

// FromTraceparent starts a trace that adopts the trace ID of an incoming
// traceparent header value ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex
// flags>"). A missing or malformed header yields a fresh root trace, so
// the caller never has to pre-validate.
func FromTraceparent(name, header string) *Trace {
	tid, parent, ok := parseTraceparent(header)
	if !ok {
		return New(name)
	}
	t := NewWithID(name, tid)
	t.parent = parent
	return t
}

const zeroTraceID = "00000000000000000000000000000000"

// parseTraceparent validates a version-00 traceparent value.
func parseTraceparent(h string) (traceID, parentSpan string, ok bool) {
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	tid, psid := h[3:35], h[36:52]
	if !isHex(tid) || !isHex(psid) || tid == zeroTraceID {
		return "", "", false
	}
	return tid, psid, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// randHex returns n random lowercase hex digits (n even, ≤ 32).
func randHex(n int) string {
	const digits = "0123456789abcdef"
	var b [32]byte
	for i := 0; i < n; i += 16 {
		v := rand.Uint64()
		for j := 0; j < 16 && i+j < n; j++ {
			b[i+j] = digits[v&0xf]
			v >>= 4
		}
	}
	return string(b[:n])
}

// ID returns the 32-hex-digit trace ID, or "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Name returns the operation label.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Traceparent renders the outgoing header value for propagating this trace
// to a downstream service: same trace ID, a fresh span ID for the hop,
// sampled flag set. Empty on a nil trace.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return "00-" + t.id + "-" + randHex(16) + "-01"
}

// SpanHandle is an in-progress span; End records it. The zero handle (from
// a nil trace) is inert.
type SpanHandle struct {
	t    *Trace
	name string
	t0   time.Time
}

// StartSpan begins a named span now. On a nil trace it returns an inert
// handle without touching the clock.
func (t *Trace) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, t0: time.Now()}
}

// End records the span's interval.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.RecordSpan(h.name, h.t0, time.Now())
}

// RecordSpan records a completed interval. It implements
// telemetry.SpanSink, so a *Trace plugs directly into szx.Options.Spans.
func (t *Trace) RecordSpan(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.start), Dur: end.Sub(start)})
	}
	t.mu.Unlock()
}

// SetStatus records the request's final HTTP status.
func (t *Trace) SetStatus(code int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = code
	t.mu.Unlock()
}

// SetError records a failure message; an error-marked trace is always kept
// by the Recorder.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.errMsg = msg
	t.mu.Unlock()
}

// SetBytes records payload sizes for the trace view (either may be -1 to
// leave the previous value).
func (t *Trace) SetBytes(in, out int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if in >= 0 {
		t.bytesIn = in
	}
	if out >= 0 {
		t.bytesOut = out
	}
	t.mu.Unlock()
}

// Finish seals the trace — further spans are dropped — and offers it to
// rec for retention (nil rec just seals). Only the first Finish takes
// effect.
func (t *Trace) Finish(rec *Recorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = time.Now()
	t.mu.Unlock()
	if rec != nil {
		rec.offer(t)
	}
}

// Duration returns the traced wall time: start to Finish, or start to now
// while unfinished. Zero on a nil trace.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.end.Sub(t.start)
	}
	return time.Since(t.start)
}

// SpanDur sums the durations of every span with the given name (a
// pipelined request records many "pipe_frame" spans).
func (t *Trace) SpanDur(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, s := range t.spans {
		if s.Name == name {
			d += s.Dur
		}
	}
	return d
}

// StageSummary renders the spans as a compact "name=dur name=dur" string
// for access-log lines, merging same-named spans and keeping span order of
// first appearance.
func (t *Trace) StageSummary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var names []string
	sums := make(map[string]time.Duration, len(t.spans))
	for _, s := range t.spans {
		if _, ok := sums[s.Name]; !ok {
			names = append(names, s.Name)
		}
		sums[s.Name] += s.Dur
	}
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", n, sums[n].Round(time.Microsecond))
	}
	return b.String()
}

// View is the serializable snapshot of a trace, the unit /debug/requests
// serves.
type View struct {
	TraceID    string    `json:"trace_id"`
	ParentSpan string    `json:"parent_span_id,omitempty"`
	Name       string    `json:"endpoint"`
	Start      time.Time `json:"start"`
	DurNs      int64     `json:"dur_ns"`
	Status     int       `json:"status,omitempty"`
	Error      string    `json:"error,omitempty"`
	BytesIn    int64     `json:"bytes_in,omitempty"`
	BytesOut   int64     `json:"bytes_out,omitempty"`
	SampledFor string    `json:"sampled_for,omitempty"` // error | slow | sampled
	Spans      []Span    `json:"spans"`
	Dropped    int       `json:"spans_dropped,omitempty"`
}

// View snapshots the trace. Safe to call at any point; the recorder calls
// it after Finish.
func (t *Trace) View() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := time.Since(t.start)
	if t.done {
		d = t.end.Sub(t.start)
	}
	v := View{
		TraceID:    t.id,
		ParentSpan: t.parent,
		Name:       t.name,
		Start:      t.start,
		DurNs:      d.Nanoseconds(),
		Status:     t.status,
		Error:      t.errMsg,
		BytesIn:    t.bytesIn,
		BytesOut:   t.bytesOut,
		SampledFor: t.keep,
		Spans:      append([]Span(nil), t.spans...),
		Dropped:    t.dropped,
	}
	return v
}

package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDShape(t *testing.T) {
	tr := New("op")
	if id := tr.ID(); len(id) != 32 || !isHex(id) {
		t.Fatalf("New trace ID = %q, want 32 lowercase hex digits", id)
	}
	if tr.Name() != "op" {
		t.Fatalf("Name = %q", tr.Name())
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("compress")
	h := tr.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("Traceparent = %q, want 00-<32>-<16>-01", h)
	}
	got := FromTraceparent("decompress", h)
	if got.ID() != tr.ID() {
		t.Fatalf("round-tripped trace ID = %q, want %q", got.ID(), tr.ID())
	}
	if got.parent != h[36:52] {
		t.Fatalf("parent span = %q, want %q", got.parent, h[36:52])
	}
}

func TestNewWithIDValidation(t *testing.T) {
	good := "0123456789abcdef0123456789abcdef"
	if got := NewWithID("op", good).ID(); got != good {
		t.Fatalf("valid ID not adopted: got %q", got)
	}
	for _, bad := range []string{
		"",
		"short",
		strings.Repeat("0", 32),                // all-zero is reserved
		strings.ToUpper(good),                  // uppercase rejected
		"0123456789abcdef0123456789abcdeg",     // non-hex
		"0123456789abcdef0123456789abcdef0011", // wrong length
	} {
		tr := NewWithID("op", bad)
		if tr.ID() == bad {
			t.Errorf("ill-formed ID %q adopted verbatim", bad)
		}
		if len(tr.ID()) != 32 || !isHex(tr.ID()) {
			t.Errorf("fallback ID %q not well-formed", tr.ID())
		}
	}
}

func TestFromTraceparentMalformed(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	for _, h := range []string{
		"",
		"garbage",
		valid[:54],      // truncated
		"01" + valid[2:], // wrong version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace ID
		strings.Replace(valid, "-01", "x01", 1),                   // broken delimiter
	} {
		tr := FromTraceparent("op", h)
		if tr == nil || len(tr.ID()) != 32 {
			t.Fatalf("FromTraceparent(%q) must fall back to a fresh trace", h)
		}
		if h == valid {
			t.Fatal("test bug: mutated header equals the valid one")
		}
	}
	if got := FromTraceparent("op", valid).ID(); got != valid[3:35] {
		t.Fatalf("valid header not adopted: got %q", got)
	}
}

func TestNilTraceSafety(t *testing.T) {
	var tr *Trace
	// None of these may panic, and the zero results must be inert.
	if tr.ID() != "" || tr.Name() != "" || tr.Traceparent() != "" {
		t.Fatal("nil trace identity methods must return empty strings")
	}
	tr.StartSpan("x").End()
	tr.RecordSpan("x", time.Now(), time.Now())
	tr.SetStatus(500)
	tr.SetError("boom")
	tr.SetBytes(1, 2)
	tr.Finish(NewRecorder(0, 0))
	if tr.Duration() != 0 || tr.SpanDur("x") != 0 || tr.StageSummary() != "" {
		t.Fatal("nil trace accessors must return zero values")
	}
	if v := tr.View(); v.TraceID != "" {
		t.Fatal("nil trace View must be zero")
	}
	ctx := NewContext(t.Context(), tr)
	if FromContext(ctx) != nil {
		t.Fatal("NewContext with nil trace must not store anything")
	}
}

func TestSpanCapAndDrop(t *testing.T) {
	tr := New("op")
	now := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		tr.RecordSpan("s", now, now.Add(time.Millisecond))
	}
	v := tr.View()
	if len(v.Spans) != maxSpans {
		t.Fatalf("retained %d spans, want cap %d", len(v.Spans), maxSpans)
	}
	if v.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", v.Dropped)
	}
}

func TestSpanDurAndStageSummary(t *testing.T) {
	tr := New("op")
	base := tr.start
	tr.RecordSpan("read", base, base.Add(2*time.Millisecond))
	tr.RecordSpan("encode", base.Add(2*time.Millisecond), base.Add(5*time.Millisecond))
	tr.RecordSpan("read", base.Add(5*time.Millisecond), base.Add(6*time.Millisecond))
	if d := tr.SpanDur("read"); d != 3*time.Millisecond {
		t.Fatalf("SpanDur(read) = %s, want 3ms", d)
	}
	sum := tr.StageSummary()
	if !strings.HasPrefix(sum, "read=3ms encode=3ms") {
		t.Fatalf("StageSummary = %q (want read first, merged)", sum)
	}
}

func TestFinishSealsOnce(t *testing.T) {
	rec := NewRecorder(8, 1)
	tr := New("op")
	tr.Finish(rec)
	d1 := tr.Duration()
	time.Sleep(2 * time.Millisecond)
	tr.Finish(rec) // second Finish is a no-op
	if d2 := tr.Duration(); d2 != d1 {
		t.Fatalf("duration moved after second Finish: %s then %s", d1, d2)
	}
	if got := rec.Stats().Offered; got != 1 {
		t.Fatalf("offered = %d, want 1 (double Finish must not re-offer)", got)
	}
}

func TestRecorderKeepsErrorsAlways(t *testing.T) {
	rec := NewRecorder(16, -1) // negative sampleN: no probabilistic keeps
	for i := 0; i < 10; i++ {
		tr := New("ok")
		tr.SetStatus(200)
		tr.Finish(rec)
	}
	errTr := New("bad")
	errTr.SetStatus(429)
	errTr.Finish(rec)
	msgTr := New("worse")
	msgTr.SetError("exploded")
	msgTr.Finish(rec)

	views := rec.Traces()
	if len(views) != 2 {
		t.Fatalf("kept %d traces, want only the 2 errors", len(views))
	}
	for _, v := range views {
		if v.SampledFor != "error" {
			t.Fatalf("trace %s kept for %q, want error", v.TraceID, v.SampledFor)
		}
	}
	// Newest first: the SetError trace finished last.
	if views[0].TraceID != msgTr.ID() || views[1].TraceID != errTr.ID() {
		t.Fatal("Traces() not newest-first")
	}
}

func TestRecorderSampleEveryNth(t *testing.T) {
	rec := NewRecorder(64, 4)
	for i := 0; i < 16; i++ {
		tr := New("ok")
		tr.SetStatus(200)
		tr.Finish(rec)
	}
	if kept := rec.Stats().Kept; kept != 4 {
		t.Fatalf("kept %d of 16 at sampleN=4, want 4", kept)
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	rec := NewRecorder(4, 1) // keep everything, tiny ring
	var ids []string
	for i := 0; i < 7; i++ {
		tr := New("op")
		tr.Finish(rec)
		ids = append(ids, tr.ID())
	}
	views := rec.Traces()
	if len(views) != 4 {
		t.Fatalf("ring holds %d, want 4", len(views))
	}
	for i, v := range views {
		want := ids[len(ids)-1-i]
		if v.TraceID != want {
			t.Fatalf("ring[%d] = %s, want %s (newest first)", i, v.TraceID, want)
		}
	}
	if _, ok := rec.Lookup(ids[0]); ok {
		t.Fatal("oldest trace should have been overwritten")
	}
	if _, ok := rec.Lookup(ids[6]); !ok {
		t.Fatal("newest trace must be retained")
	}
}

func TestRecorderSlowColdStart(t *testing.T) {
	rec := NewRecorder(16, -1)
	if th := rec.SlowThreshold(); th != 0 {
		t.Fatalf("cold recorder slow threshold = %s, want 0 (undefined)", th)
	}
	// Under slowMinSamples offers, nothing qualifies as slow however long.
	tr := New("op")
	tr.start = tr.start.Add(-time.Second)
	tr.Finish(rec)
	if got := rec.Stats().Kept; got != 0 {
		t.Fatal("a cold recorder must not keep by slowness")
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	rec := NewRecorder(8, 1)
	tr := New("compress")
	tr.RecordSpan("queue_wait", tr.start, tr.start.Add(time.Millisecond))
	tr.SetStatus(200)
	tr.SetBytes(1024, 128)
	tr.Finish(rec)

	h := rec.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	var page struct {
		Offered int64  `json:"offered"`
		Kept    int64  `json:"kept"`
		Traces  []View `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("JSON response: %v", err)
	}
	if page.Offered != 1 || page.Kept != 1 || len(page.Traces) != 1 {
		t.Fatalf("page = %+v", page)
	}
	if page.Traces[0].TraceID != tr.ID() || len(page.Traces[0].Spans) != 1 {
		t.Fatalf("trace view = %+v", page.Traces[0])
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?format=text", nil))
	text := rr.Body.String()
	if !strings.Contains(text, tr.ID()) || !strings.Contains(text, "queue_wait") {
		t.Fatalf("text page missing trace content:\n%s", text)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?trace_id="+tr.ID(), nil))
	if rr.Code != 200 {
		t.Fatalf("lookup by ID: %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?trace_id="+strings.Repeat("f", 32), nil))
	if rr.Code != 404 {
		t.Fatalf("unknown trace ID: %d, want 404", rr.Code)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := New("op")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tr.RecordSpan("pipe_frame", time.Now(), time.Now())
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	v := tr.View()
	if len(v.Spans)+v.Dropped != 400 {
		t.Fatalf("spans %d + dropped %d != 400", len(v.Spans), v.Dropped)
	}
}

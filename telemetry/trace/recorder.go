package trace

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder retains a bounded ring of finished traces with tail-based
// sampling: it decides what to keep after the request completes, when the
// outcome is known. Three rules, in priority order:
//
//  1. errors (status ≥ 400 or an error message) are always kept;
//  2. slow requests — duration at or above the cached p99 of everything
//     offered so far — are always kept;
//  3. of the rest, 1 in sampleN is kept, so steady-state healthy traffic
//     still leaves a breadcrumb trail.
//
// The p99 threshold comes from a power-of-two duration histogram (same
// bucketing as telemetry.Histogram) and is recomputed every
// slowRecompute offers rather than per offer; until slowMinSamples
// requests have been seen nothing qualifies as "slow", so a cold server
// doesn't mark its first requests slow by definition.
type Recorder struct {
	size    int
	sampleN int64

	offered atomic.Int64
	kept    atomic.Int64
	slowNs  atomic.Int64
	buckets [64]atomic.Int64

	mu   sync.Mutex
	ring []*Trace // circular, next points at the oldest entry
	next int
}

const (
	defaultRingSize = 256
	defaultSampleN  = 16
	slowMinSamples  = 64
	slowRecompute   = 64
)

// NewRecorder returns a Recorder holding up to size traces (0 = 256),
// keeping 1 in sampleN unremarkable traces (0 = 16; 1 keeps everything;
// negative keeps only errors and slow requests).
func NewRecorder(size, sampleN int) *Recorder {
	if size <= 0 {
		size = defaultRingSize
	}
	if sampleN == 0 {
		sampleN = defaultSampleN
	}
	r := &Recorder{size: size, sampleN: int64(sampleN)}
	r.slowNs.Store(math.MaxInt64)
	return r
}

// offer applies the sampling rules to a finished trace. Called by
// Trace.Finish.
func (r *Recorder) offer(t *Trace) {
	d := t.end.Sub(t.start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	r.buckets[bits.Len64(uint64(d))].Add(1)
	n := r.offered.Add(1)
	if n%slowRecompute == 0 {
		r.recomputeSlow(n)
	}

	t.mu.Lock()
	isErr := t.status >= 400 || t.errMsg != ""
	t.mu.Unlock()

	keep := ""
	switch {
	case isErr:
		keep = "error"
	case n >= slowMinSamples && d >= r.slowNs.Load():
		keep = "slow"
	case r.sampleN == 1 || (r.sampleN > 1 && n%r.sampleN == 0):
		keep = "sampled"
	default:
		return
	}

	t.mu.Lock()
	t.keep = keep
	t.mu.Unlock()
	r.kept.Add(1)

	r.mu.Lock()
	if len(r.ring) < r.size {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
		r.next = (r.next + 1) % r.size
	}
	r.mu.Unlock()
}

// recomputeSlow refreshes the cached p99 threshold from the duration
// histogram. The power-of-two buckets give 2x resolution, which is plenty
// for a "clearly slower than the rest" cut.
func (r *Recorder) recomputeSlow(total int64) {
	target := total - total/100 // ceil-ish p99 rank
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range r.buckets {
		cum += r.buckets[i].Load()
		if cum >= target {
			// Bucket i holds durations with bit length i, i.e. < 2^i;
			// use 2^(i-1) (the bucket's lower bound) so everything in the
			// top bucket qualifies as slow.
			ns := int64(1)
			if i > 1 {
				ns = int64(1) << uint(i-1)
			}
			r.slowNs.Store(ns)
			return
		}
	}
	r.slowNs.Store(math.MaxInt64)
}

// SlowThreshold returns the current always-keep duration cutoff, or 0
// while too few requests have been seen to define one.
func (r *Recorder) SlowThreshold() time.Duration {
	ns := r.slowNs.Load()
	if ns == math.MaxInt64 || r.offered.Load() < slowMinSamples {
		return 0
	}
	return time.Duration(ns)
}

// Stats reports the recorder's sampling activity.
type Stats struct {
	Offered int64 `json:"offered"`
	Kept    int64 `json:"kept"`
	SlowNs  int64 `json:"slow_threshold_ns"`
}

// Stats snapshots the offer/keep counters and the slow threshold.
func (r *Recorder) Stats() Stats {
	return Stats{
		Offered: r.offered.Load(),
		Kept:    r.kept.Load(),
		SlowNs:  int64(r.SlowThreshold()),
	}
}

// Traces snapshots the retained traces, newest first.
func (r *Recorder) Traces() []View {
	r.mu.Lock()
	ts := make([]*Trace, 0, len(r.ring))
	// next is the oldest slot once the ring has wrapped; walk backwards
	// from the newest.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		ts = append(ts, r.ring[idx])
	}
	r.mu.Unlock()
	out := make([]View, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.View())
	}
	return out
}

// Lookup returns the retained trace with the given ID, if any.
func (r *Recorder) Lookup(id string) (View, bool) {
	r.mu.Lock()
	var found *Trace
	for _, t := range r.ring {
		if t.id == id {
			found = t
			break
		}
	}
	r.mu.Unlock()
	if found == nil {
		return View{}, false
	}
	return found.View(), true
}

package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// SideSnapshot summarizes one direction (compress or decompress).
type SideSnapshot struct {
	Calls     int64             `json:"calls"`
	BytesIn   int64             `json:"bytes_in"`
	BytesOut  int64             `json:"bytes_out"`
	Ratio     float64           `json:"ratio"` // uncompressed / compressed
	Durations HistogramSnapshot `json:"durations_ns"`
}

// BlocksSnapshot summarizes the block-level encoder/decoder statistics.
type BlocksSnapshot struct {
	Constant           int64         `json:"constant"`
	NonConstant        int64         `json:"nonconstant"`
	Lossless           int64         `json:"lossless"`
	GuardRetries       int64         `json:"guard_retries"`
	DecodedConstant    int64         `json:"decoded_constant"`
	DecodedNonConstant int64         `json:"decoded_nonconstant"`
	LeadCodes          [4]int64      `json:"lead_codes"`
	ReqLenBits         map[int]int64 `json:"reqlen_bits"`
}

// KernelSnapshot summarizes the block-kernel layer: the dispatch decision
// and per-kernel invocation totals.
type KernelSnapshot struct {
	Dispatched  string `json:"dispatched"`
	Stats       int64  `json:"stats_calls"`
	EncodeScans int64  `json:"encode_scan_calls"`
	DecodeScans int64  `json:"decode_scan_calls"`
}

// EngineSnapshot summarizes serial-vs-parallel engine selection.
type EngineSnapshot struct {
	CompressSerial     int64 `json:"compress_serial"`
	CompressFallback   int64 `json:"compress_fallback"`
	CompressParallel   int64 `json:"compress_parallel"`
	DecompressSerial   int64 `json:"decompress_serial"`
	DecompressFallback int64 `json:"decompress_fallback"`
	DecompressParallel int64 `json:"decompress_parallel"`
}

// ParallelSnapshot exposes the work-stealing engine internals.
type ParallelSnapshot struct {
	ChunksOwned     int64             `json:"chunks_owned"`
	ChunksStolen    int64             `json:"chunks_stolen"`
	Participants    int64             `json:"participants"`
	ActiveWorkers   int64             `json:"active_workers"`
	Utilization     float64           `json:"utilization"` // active / participants
	ChunksPerWorker HistogramSnapshot `json:"chunks_per_worker"`
	EncodePhase     HistogramSnapshot `json:"encode_phase_ns"`
	GatherPhase     HistogramSnapshot `json:"gather_phase_ns"`
}

// PipelineSnapshot exposes the pipelined streaming engine internals.
type PipelineSnapshot struct {
	Starts         int64             `json:"starts"`
	Depths         HistogramSnapshot `json:"depths"`
	FramesInFlight HistogramSnapshot `json:"frames_in_flight"`
	ProducerStalls HistogramSnapshot `json:"producer_stall_ns"`
	ConsumerStalls HistogramSnapshot `json:"consumer_stall_ns"`
}

// ContainersSnapshot summarizes the stream/archive/temporal layers.
type ContainersSnapshot struct {
	StreamFramesWritten   int64 `json:"stream_frames_written"`
	StreamFramesRead      int64 `json:"stream_frames_read"`
	StreamFrameErrors     int64 `json:"stream_frame_errors"`
	ArchiveFieldsWritten  int64 `json:"archive_fields_written"`
	ArchiveFieldsRead     int64 `json:"archive_fields_read"`
	TimeFramesKey         int64 `json:"time_frames_key"`
	TimeFramesDelta       int64 `json:"time_frames_delta"`
	TimeKeyframeFallbacks int64 `json:"time_keyframe_fallbacks"`
	RelativeBoundResolves int64 `json:"relative_bound_resolves"`
}

// RatioSnapshot summarizes the fixed-ratio (TargetRatio) bound searches.
type RatioSnapshot struct {
	Searches    int64 `json:"searches"`
	Probes      int64 `json:"probes"`
	Reestimates int64 `json:"reestimates"`
	Unconverged int64 `json:"unconverged"`
}

// ServiceSnapshot summarizes the compression service (service/ + cmd/szxd).
type ServiceSnapshot struct {
	RequestsCompress         int64             `json:"requests_compress"`
	RequestsDecompress       int64             `json:"requests_decompress"`
	RequestsStreamCompress   int64             `json:"requests_stream_compress"`
	RequestsStreamDecompress int64             `json:"requests_stream_decompress"`
	BytesIn                  int64             `json:"bytes_in"`
	BytesOut                 int64             `json:"bytes_out"`
	RejectedQueueFull        int64             `json:"rejected_queue_full"`
	RejectedWaitTimeout      int64             `json:"rejected_wait_timeout"`
	RejectedDraining         int64             `json:"rejected_draining"`
	BadRequests              int64             `json:"bad_requests"`
	Cancelled                int64             `json:"cancelled"`
	InFlight                 int64             `json:"in_flight"`
	QueueDepth               int64             `json:"queue_depth"`
	QueueWaits               HistogramSnapshot `json:"queue_wait_ns"`
	RequestDurations         HistogramSnapshot `json:"request_duration_ns"`
}

// BatchSnapshot summarizes the batch endpoints and client-side coalescing.
type BatchSnapshot struct {
	RequestsCompress   int64             `json:"requests_compress"`
	RequestsDecompress int64             `json:"requests_decompress"`
	Arrays             int64             `json:"arrays"`
	ArrayErrors        int64             `json:"array_errors"`
	ArraysPerRequest   HistogramSnapshot `json:"arrays_per_request"`
	ArrayBytes         HistogramSnapshot `json:"array_bytes"`
	CoalescedCalls     int64             `json:"coalesced_calls"`
	CoalesceWaits      HistogramSnapshot `json:"coalesce_wait_ns"`
}

// ClusterSnapshot summarizes cluster routing, hedging/retry, and the
// membership failure detector (service/cluster + the client-side
// ClusterClient).
type ClusterSnapshot struct {
	RoutedHash        int64            `json:"routed_hash"`
	RoutedLeastLoaded int64            `json:"routed_least_loaded"`
	RoutedOrdered     int64            `json:"routed_ordered"`
	RoutedFallback    int64            `json:"routed_fallback"`
	HedgesFired       int64            `json:"hedges_fired"`
	HedgesWon         int64            `json:"hedges_won"`
	Retries           int64            `json:"retries"`
	HedgeBudgetDenied int64            `json:"hedge_budget_denied"`
	RetryBudgetDenied int64            `json:"retry_budget_denied"`
	PeersAlive        int64            `json:"peers_alive"`
	PeersSuspect      int64            `json:"peers_suspect"`
	PeersDead         int64            `json:"peers_dead"`
	PeerToAlive       int64            `json:"peer_to_alive"`
	PeerToSuspect     int64            `json:"peer_to_suspect"`
	PeerToDead        int64            `json:"peer_to_dead"`
	Polls             int64            `json:"polls"`
	NodeRequests      map[string]int64 `json:"node_requests,omitempty"`
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Enabled    bool               `json:"enabled"`
	Build      BuildInfo          `json:"build"`
	Compress   SideSnapshot       `json:"compress"`
	Decompress SideSnapshot       `json:"decompress"`
	Blocks     BlocksSnapshot     `json:"blocks"`
	Kernels    KernelSnapshot     `json:"kernels"`
	Engine     EngineSnapshot     `json:"engine"`
	Parallel   ParallelSnapshot   `json:"parallel"`
	Pipeline   PipelineSnapshot   `json:"pipeline"`
	Containers ContainersSnapshot `json:"containers"`
	Ratio      RatioSnapshot      `json:"ratio"`
	Service    ServiceSnapshot    `json:"service"`
	Batch      BatchSnapshot      `json:"batch"`
	Cluster    ClusterSnapshot    `json:"cluster"`
}

// Snap assembles a Snapshot of the current metric values. The copy is not
// a consistent cut across metrics (each value is loaded independently),
// which is the usual, and sufficient, contract for scrape-style export —
// but it is taken under the scrape lock's read side, so a concurrent Reset
// can never interleave mid-snapshot.
func Snap() Snapshot {
	scrapeMu.RLock()
	defer scrapeMu.RUnlock()
	s := Snapshot{
		Enabled: Enabled(),
		Build:   GetBuildInfo(),
		Compress: SideSnapshot{
			Calls:     CompressCalls.Load(),
			BytesIn:   CompressBytesIn.Load(),
			BytesOut:  CompressBytesOut.Load(),
			Durations: CompressDurations.Snapshot(),
		},
		Decompress: SideSnapshot{
			Calls:     DecompressCalls.Load(),
			BytesIn:   DecompressBytesIn.Load(),
			BytesOut:  DecompressBytesOut.Load(),
			Durations: DecompressDurations.Snapshot(),
		},
		Blocks: BlocksSnapshot{
			Constant:           BlocksConstant.Load(),
			NonConstant:        BlocksNonConstant.Load(),
			Lossless:           BlocksLossless.Load(),
			GuardRetries:       GuardRetries.Load(),
			DecodedConstant:    DecodedBlocksConstant.Load(),
			DecodedNonConstant: DecodedBlocksNonConstant.Load(),
			ReqLenBits:         ReqLenBits.Snapshot(),
		},
		Kernels: KernelSnapshot{
			Dispatched:  KernelDispatchDetail(),
			Stats:       KernelStatsCalls.Load(),
			EncodeScans: KernelEncodeScanCalls.Load(),
			DecodeScans: KernelDecodeScanCalls.Load(),
		},
		Engine: EngineSnapshot{
			CompressSerial:     EngineCompressSerial.Load(),
			CompressFallback:   EngineCompressFallback.Load(),
			CompressParallel:   EngineCompressParallel.Load(),
			DecompressSerial:   EngineDecompressSerial.Load(),
			DecompressFallback: EngineDecompressFallback.Load(),
			DecompressParallel: EngineDecompressParallel.Load(),
		},
		Parallel: ParallelSnapshot{
			ChunksOwned:     ParallelChunksOwned.Load(),
			ChunksStolen:    ParallelChunksStolen.Load(),
			Participants:    ParallelParticipants.Load(),
			ActiveWorkers:   ParallelActiveWorkers.Load(),
			ChunksPerWorker: ParallelChunksPerWorker.Snapshot(),
			EncodePhase:     EncodePhaseDurations.Snapshot(),
			GatherPhase:     GatherPhaseDurations.Snapshot(),
		},
		Pipeline: PipelineSnapshot{
			Starts:         PipelineStarts.Load(),
			Depths:         PipelineDepths.Snapshot(),
			FramesInFlight: PipelineFramesInFlight.Snapshot(),
			ProducerStalls: PipelineProducerStalls.Snapshot(),
			ConsumerStalls: PipelineConsumerStalls.Snapshot(),
		},
		Service: ServiceSnapshot{
			RequestsCompress:         ServiceRequestsCompress.Load(),
			RequestsDecompress:       ServiceRequestsDecompress.Load(),
			RequestsStreamCompress:   ServiceRequestsStreamCompress.Load(),
			RequestsStreamDecompress: ServiceRequestsStreamDecompress.Load(),
			BytesIn:                  ServiceBytesIn.Load(),
			BytesOut:                 ServiceBytesOut.Load(),
			RejectedQueueFull:        ServiceRejectedQueueFull.Load(),
			RejectedWaitTimeout:      ServiceRejectedWaitTimeout.Load(),
			RejectedDraining:         ServiceRejectedDraining.Load(),
			BadRequests:              ServiceBadRequests.Load(),
			Cancelled:                ServiceCancelledRequests.Load(),
			InFlight:                 ServiceInFlight.Load(),
			QueueDepth:               ServiceQueueDepth.Load(),
			QueueWaits:               ServiceQueueWaits.Snapshot(),
			RequestDurations:         ServiceRequestDurations.Snapshot(),
		},
		Batch: BatchSnapshot{
			RequestsCompress:   ServiceRequestsBatchCompress.Load(),
			RequestsDecompress: ServiceRequestsBatchDecompress.Load(),
			Arrays:             BatchArrays.Load(),
			ArrayErrors:        BatchArrayErrors.Load(),
			ArraysPerRequest:   BatchArraysPerRequest.Snapshot(),
			ArrayBytes:         BatchArrayBytes.Snapshot(),
			CoalescedCalls:     BatchCoalescedCalls.Load(),
			CoalesceWaits:      BatchCoalesceWaits.Snapshot(),
		},
		Containers: ContainersSnapshot{
			StreamFramesWritten:   StreamFramesWritten.Load(),
			StreamFramesRead:      StreamFramesRead.Load(),
			StreamFrameErrors:     StreamFrameErrors.Load(),
			ArchiveFieldsWritten:  ArchiveFieldsWritten.Load(),
			ArchiveFieldsRead:     ArchiveFieldsRead.Load(),
			TimeFramesKey:         TimeFramesKey.Load(),
			TimeFramesDelta:       TimeFramesDelta.Load(),
			TimeKeyframeFallbacks: TimeKeyframeFallbacks.Load(),
			RelativeBoundResolves: RelativeBoundResolves.Load(),
		},
		Ratio: RatioSnapshot{
			Searches:    RatioSearches.Load(),
			Probes:      RatioProbes.Load(),
			Reestimates: RatioReestimates.Load(),
			Unconverged: RatioUnconverged.Load(),
		},
		Cluster: ClusterSnapshot{
			RoutedHash:        ClusterRoutedHash.Load(),
			RoutedLeastLoaded: ClusterRoutedLeastLoaded.Load(),
			RoutedOrdered:     ClusterRoutedOrdered.Load(),
			RoutedFallback:    ClusterRoutedFallback.Load(),
			HedgesFired:       ClusterHedgesFired.Load(),
			HedgesWon:         ClusterHedgesWon.Load(),
			Retries:           ClusterRetries.Load(),
			HedgeBudgetDenied: ClusterHedgeBudgetDenied.Load(),
			RetryBudgetDenied: ClusterRetryBudgetDenied.Load(),
			PeersAlive:        ClusterPeersAlive.Load(),
			PeersSuspect:      ClusterPeersSuspect.Load(),
			PeersDead:         ClusterPeersDead.Load(),
			PeerToAlive:       ClusterPeerToAlive.Load(),
			PeerToSuspect:     ClusterPeerToSuspect.Load(),
			PeerToDead:        ClusterPeerToDead.Load(),
			Polls:             ClusterPolls.Load(),
			NodeRequests:      clusterNodeSnapshot(),
		},
	}
	for i := range s.Blocks.LeadCodes {
		s.Blocks.LeadCodes[i] = LeadCodes[i].Load()
	}
	if s.Compress.BytesOut > 0 {
		s.Compress.Ratio = float64(s.Compress.BytesIn) / float64(s.Compress.BytesOut)
	}
	if s.Decompress.BytesIn > 0 {
		s.Decompress.Ratio = float64(s.Decompress.BytesOut) / float64(s.Decompress.BytesIn)
	}
	if s.Parallel.Participants > 0 {
		s.Parallel.Utilization = float64(s.Parallel.ActiveWorkers) / float64(s.Parallel.Participants)
	}
	return s
}

// Reset zeroes every metric (the enabled gate is left as-is). It must not
// race with in-flight instrumented calls if exact totals matter. It takes
// the scrape lock's write side, so a concurrent Prometheus scrape or Snap
// sees the metrics either entirely before or entirely after the reset,
// never a torn mix (pinned by TestScrapeDuringReset).
func Reset() {
	scrapeMu.Lock()
	defer scrapeMu.Unlock()
	for _, m := range registry {
		switch {
		case m.c != nil:
			m.c.reset()
		case m.g != nil:
			m.g.reset()
		case m.h != nil:
			m.h.reset()
		case m.b != nil:
			m.b.reset()
		}
	}
	// The kernel dispatch gauges are info-style state, not accumulated
	// traffic; re-assert them so Reset only clears the counters.
	if impl, ok := kernelImpl.Load().(string); ok {
		SetKernelDispatch(impl, KernelDispatchDetail())
	}
	resetClusterNodes()
}

// Report renders the current snapshot as a human-readable block of text,
// the -stats output of cmd/szx and cmd/szxbench.
func Report() string {
	s := Snap()
	var b strings.Builder
	fmt.Fprintf(&b, "szx telemetry (enabled=%v)\n", s.Enabled)
	bVer := s.Build.Version
	if s.Build.VCSRev != "" {
		bVer += "@" + s.Build.VCSRev
	}
	fmt.Fprintf(&b, "  build:      %s %s, %s, kernels %s\n",
		s.Build.Module, bVer, s.Build.GoVersion, s.Build.Kernels)
	fmt.Fprintf(&b, "  compress:   %d calls, %s in -> %s out (ratio %.2f), %s\n",
		s.Compress.Calls, fmtBytes(s.Compress.BytesIn), fmtBytes(s.Compress.BytesOut),
		s.Compress.Ratio, fmtDur(s.Compress.Durations))
	fmt.Fprintf(&b, "  decompress: %d calls, %s in -> %s out (ratio %.2f), %s\n",
		s.Decompress.Calls, fmtBytes(s.Decompress.BytesIn), fmtBytes(s.Decompress.BytesOut),
		s.Decompress.Ratio, fmtDur(s.Decompress.Durations))
	tot := s.Blocks.Constant + s.Blocks.NonConstant
	fmt.Fprintf(&b, "  blocks:     %d encoded (%d constant, %d nonconstant, %d lossless), %d guard retries; %d decoded (%d constant)\n",
		tot, s.Blocks.Constant, s.Blocks.NonConstant, s.Blocks.Lossless, s.Blocks.GuardRetries,
		s.Blocks.DecodedConstant+s.Blocks.DecodedNonConstant, s.Blocks.DecodedConstant)
	lv := s.Blocks.LeadCodes[0] + s.Blocks.LeadCodes[1] + s.Blocks.LeadCodes[2] + s.Blocks.LeadCodes[3]
	if lv > 0 {
		fmt.Fprintf(&b, "  lead codes: 0:%.1f%% 1:%.1f%% 2:%.1f%% 3:%.1f%% of %d values\n",
			pct(s.Blocks.LeadCodes[0], lv), pct(s.Blocks.LeadCodes[1], lv),
			pct(s.Blocks.LeadCodes[2], lv), pct(s.Blocks.LeadCodes[3], lv), lv)
	}
	if len(s.Blocks.ReqLenBits) > 0 {
		keys := make([]int, 0, len(s.Blocks.ReqLenBits))
		for k := range s.Blocks.ReqLenBits {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		b.WriteString("  reqlen:    ")
		for _, k := range keys {
			fmt.Fprintf(&b, " %db:%d", k, s.Blocks.ReqLenBits[k])
		}
		b.WriteByte('\n')
	}
	if s.Kernels.Dispatched != "" {
		fmt.Fprintf(&b, "  kernels:    %s; invocations stats=%d encode_scan=%d decode_scan=%d\n",
			s.Kernels.Dispatched, s.Kernels.Stats, s.Kernels.EncodeScans, s.Kernels.DecodeScans)
	}
	fmt.Fprintf(&b, "  engine:     compress serial=%d (fallback=%d) parallel=%d; decompress serial=%d (fallback=%d) parallel=%d\n",
		s.Engine.CompressSerial, s.Engine.CompressFallback, s.Engine.CompressParallel,
		s.Engine.DecompressSerial, s.Engine.DecompressFallback, s.Engine.DecompressParallel)
	if s.Parallel.Participants > 0 {
		fmt.Fprintf(&b, "  parallel:   chunks owned=%d stolen=%d, utilization %.0f%% (%d/%d workers), encode %s, gather %s\n",
			s.Parallel.ChunksOwned, s.Parallel.ChunksStolen, 100*s.Parallel.Utilization,
			s.Parallel.ActiveWorkers, s.Parallel.Participants,
			fmtDur(s.Parallel.EncodePhase), fmtDur(s.Parallel.GatherPhase))
	}
	if s.Pipeline.Starts > 0 {
		fmt.Fprintf(&b, "  pipeline:   %d started (mean depth %.1f), in-flight mean %.1f, producer stall %s, consumer stall %s\n",
			s.Pipeline.Starts, s.Pipeline.Depths.Mean, s.Pipeline.FramesInFlight.Mean,
			fmtDur(s.Pipeline.ProducerStalls), fmtDur(s.Pipeline.ConsumerStalls))
	}
	c := s.Containers
	if c.StreamFramesWritten+c.StreamFramesRead+c.StreamFrameErrors > 0 {
		fmt.Fprintf(&b, "  stream:     %d frames written, %d read, %d frame errors\n",
			c.StreamFramesWritten, c.StreamFramesRead, c.StreamFrameErrors)
	}
	if c.ArchiveFieldsWritten+c.ArchiveFieldsRead > 0 {
		fmt.Fprintf(&b, "  archive:    %d fields written, %d read\n", c.ArchiveFieldsWritten, c.ArchiveFieldsRead)
	}
	if c.TimeFramesKey+c.TimeFramesDelta > 0 {
		fmt.Fprintf(&b, "  temporal:   %d key + %d delta frames (%d bound fallbacks)\n",
			c.TimeFramesKey, c.TimeFramesDelta, c.TimeKeyframeFallbacks)
	}
	if c.RelativeBoundResolves > 0 {
		fmt.Fprintf(&b, "  rel bounds: %d range resolves\n", c.RelativeBoundResolves)
	}
	if s.Ratio.Searches+s.Ratio.Reestimates > 0 {
		fmt.Fprintf(&b, "  ratio:      %d searches (%d probes, %d unconverged), %d chunk re-estimates\n",
			s.Ratio.Searches, s.Ratio.Probes, s.Ratio.Unconverged, s.Ratio.Reestimates)
	}
	sv := s.Service
	bt := s.Batch
	reqs := sv.RequestsCompress + sv.RequestsDecompress + sv.RequestsStreamCompress + sv.RequestsStreamDecompress +
		bt.RequestsCompress + bt.RequestsDecompress
	rejected := sv.RejectedQueueFull + sv.RejectedWaitTimeout + sv.RejectedDraining
	if reqs+rejected > 0 {
		fmt.Fprintf(&b, "  service:    %d requests (%d compress, %d decompress, %d stream, %d batch), %s in -> %s out, %d rejected (%d queue-full, %d timeout, %d draining), %d bad, %d cancelled; in-flight %d, queued %d, queue wait %s\n",
			reqs, sv.RequestsCompress, sv.RequestsDecompress,
			sv.RequestsStreamCompress+sv.RequestsStreamDecompress,
			bt.RequestsCompress+bt.RequestsDecompress,
			fmtBytes(sv.BytesIn), fmtBytes(sv.BytesOut),
			rejected, sv.RejectedQueueFull, sv.RejectedWaitTimeout, sv.RejectedDraining,
			sv.BadRequests, sv.Cancelled, sv.InFlight, sv.QueueDepth, fmtDur(sv.QueueWaits))
	}
	if bt.Arrays+bt.CoalescedCalls > 0 {
		fmt.Fprintf(&b, "  batch:      %d arrays over %d requests (mean %.1f/request, %d array errors); %d coalesced calls, coalesce wait %s\n",
			bt.Arrays, bt.RequestsCompress+bt.RequestsDecompress, bt.ArraysPerRequest.Mean,
			bt.ArrayErrors, bt.CoalescedCalls, fmtDur(bt.CoalesceWaits))
	}
	cl := s.Cluster
	routed := cl.RoutedHash + cl.RoutedLeastLoaded + cl.RoutedOrdered + cl.RoutedFallback
	if routed+cl.Polls > 0 {
		fmt.Fprintf(&b, "  cluster:    %d routed (hash=%d least-loaded=%d ordered=%d fallback=%d), hedges %d fired/%d won, %d retries (%d+%d budget-denied); peers %d alive/%d suspect/%d dead over %d polls\n",
			routed, cl.RoutedHash, cl.RoutedLeastLoaded, cl.RoutedOrdered, cl.RoutedFallback,
			cl.HedgesFired, cl.HedgesWon, cl.Retries, cl.HedgeBudgetDenied, cl.RetryBudgetDenied,
			cl.PeersAlive, cl.PeersSuspect, cl.PeersDead, cl.Polls)
	}
	return b.String()
}

func pct(n, tot int64) float64 { return 100 * float64(n) / float64(tot) }

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fmtDur(h HistogramSnapshot) string {
	if h.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("mean %.3f ms/call", h.Mean/1e6)
}

package szx

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/ieee"
	"repro/telemetry"
)

// Bound resolution: every entry point (one-shot, Codec, parallel, stream,
// archive, timeseries, service) accepts the same Options, but the codec
// core only understands one thing — an absolute error bound. This file is
// the single place where Options become that bound: absolute bounds pass
// through, value-range-relative bounds are resolved against the data, and
// fixed-ratio requests (Options.TargetRatio) run a FRaZ-style search
// (Underwood et al., IPDPS'20) over the bound until the estimated
// compression ratio lands within tolerance of the target.
//
// The search exploits two SZx properties: compression is fast enough that
// probing is affordable (the paper's core claim), and ratio(bound) is
// monotone nondecreasing — a larger bound can only turn more blocks
// constant and shave more required bits. Probes run on a sampled subset of
// block-aligned segments through the same pooled scratch buffer, so a warm
// fixed-ratio compression path allocates nothing.

// ErrBadOptions reports an Options value that is invalid or internally
// inconsistent (negative/NaN bound, TargetRatio < 1, or both ErrorBound
// and TargetRatio set). Errors carrying a more specific cause (such as
// ErrErrBound) match both sentinels via errors.Is.
var ErrBadOptions = errors.New("szx: invalid options")

// optionsError is a validation failure that matches ErrBadOptions and,
// when present, the more specific cause sentinel.
type optionsError struct {
	msg   string
	cause error
}

func (e *optionsError) Error() string { return e.msg }

// Unwrap exposes ErrBadOptions and the underlying cause.
func (e *optionsError) Unwrap() []error {
	if e.cause == nil {
		return []error{ErrBadOptions}
	}
	return []error{ErrBadOptions, e.cause}
}

func badOptions(cause error, format string, args ...any) error {
	return &optionsError{msg: "szx: " + fmt.Sprintf(format, args...), cause: cause}
}

// validate rejects Options that are invalid on their face, before any data
// is touched. A zero ErrorBound with a zero TargetRatio is left for the
// core to reject (ErrErrBound), preserving the historical error for the
// "forgot to set a bound" case; everything actively wrong — negative or
// non-finite bounds, sub-1 ratios, conflicting modes — fails here with
// ErrBadOptions.
func (o Options) validate() error {
	if math.IsNaN(o.ErrorBound) || o.ErrorBound < 0 || math.IsInf(o.ErrorBound, 0) {
		return badOptions(ErrErrBound, "error bound %v is not a positive finite number", o.ErrorBound)
	}
	if r := o.TargetRatio; r != 0 {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 1 {
			return badOptions(nil, "target ratio %v is not a finite value >= 1", r)
		}
		if o.ErrorBound > 0 {
			return badOptions(nil, "ErrorBound and TargetRatio are mutually exclusive")
		}
		if o.Mode != BoundAbsolute {
			return badOptions(nil, "TargetRatio resolves its own absolute bound; Mode must be BoundAbsolute")
		}
	}
	return nil
}

// Validate reports whether the options are well-formed, without touching
// any data. Invalid combinations — negative or non-finite bounds, a target
// ratio below 1, ErrorBound and TargetRatio both set — return an error
// matching ErrBadOptions. Every compression entry point runs the same
// check; Validate only lets a caller (a server rejecting a request before
// reading its body, say) fail early.
func (o Options) Validate() error { return o.validate() }

// withBound returns o rewritten as a plain absolute-bound request — the
// form every resolved plan reduces to.
func (o Options) withBound(b float64) Options {
	o.ErrorBound = b
	o.TargetRatio = 0
	o.Mode = BoundAbsolute
	return o
}

// Plan is a fully resolved compression decision: the absolute error bound
// the core will encode with, plus the trace of how it was reached. Every
// entry point resolves one (via ResolvePlan or internally) before calling
// the core.
type Plan struct {
	// Bound is the resolved absolute error bound.
	Bound float64
	// BlockSize and Unguarded pass through from Options; Workers is the
	// resolved worker count (WorkersAuto already expanded).
	BlockSize int
	Workers   int
	Unguarded bool

	// Fixed-ratio trace (zero unless Options.TargetRatio was set).
	TargetRatio    float64 // requested ratio
	Probes         int     // sampled compression probes spent by the search
	EstimatedRatio float64 // estimated ratio at the chosen bound
	Converged      bool    // estimate within ratioTolerance of the target
}

func (p Plan) coreOpts() core.Options {
	return core.Options{BlockSize: p.BlockSize, Unguarded: p.Unguarded}
}

// ResolvePlan validates opt and resolves it against data into the absolute
// error bound compression will use, without compressing. For BoundRelative
// it scans the value range; for TargetRatio it runs the full bound search
// (so the cost is that of a few sampled probes). One-shot helpers and
// Codec do this internally — ResolvePlan is for callers that want the
// resolved bound or the search trace up front.
func ResolvePlan[T Float](data []T, opt Options) (Plan, error) {
	return resolvePlan(data, opt, nil)
}

// resolvePlan is ResolvePlan against an optional caller-owned probe
// scratch (nil = package pool), letting a warm Codec keep the whole search
// allocation-free deterministically.
func resolvePlan[T Float](data []T, opt Options, rs *ratioScratch) (Plan, error) {
	if err := opt.validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{
		Bound:     opt.ErrorBound,
		BlockSize: opt.BlockSize,
		Workers:   opt.workers(),
		Unguarded: opt.Unguarded,
	}
	switch {
	case opt.TargetRatio > 0:
		if err := resolveRatio(&p, data, opt, rs); err != nil {
			return Plan{}, err
		}
	case opt.Mode == BoundRelative:
		b, err := relativeBound(data, opt)
		if err != nil {
			return Plan{}, err
		}
		p.Bound = b
	}
	return p, nil
}

// relativeBound converts a value-range-relative bound into the absolute
// bound embedded in the stream. (The range is accumulated in float64 for
// both element types; for float64 inputs the conversions are identities.)
func relativeBound[T Float](data []T, o Options) (float64, error) {
	if !(o.ErrorBound > 0) {
		return 0, ErrErrBound
	}
	if len(data) == 0 {
		return 0, ErrDegenerateRange
	}
	if telemetry.Enabled() {
		telemetry.RelativeBoundResolves.Inc()
	}
	mn, mx := minMax(data)
	r := float64(mx) - float64(mn)
	if !(r > 0) || math.IsInf(r, 0) {
		return 0, ErrDegenerateRange
	}
	return o.ErrorBound * r, nil
}

func minMax[T Float](data []T) (mn, mx T) {
	mn, mx = data[0], data[0]
	for _, v := range data[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// --- fixed-ratio search ----------------------------------------------------

const (
	// ratioMaxProbes caps the sampled compression probes a full search may
	// spend (the acceptance budget: converge in ≤ 8 on the test corpus).
	ratioMaxProbes = 8
	// ratioChunkProbes caps the re-search budget for a follow-on stream
	// chunk, which starts from the first chunk's already-good seed.
	ratioChunkProbes = 4
	// ratioTolerance accepts an estimated ratio within ±5% of the target.
	ratioTolerance = 0.05
	// ratioExactCap: inputs up to this many values are probed whole (the
	// estimate is then exact); larger inputs are sampled.
	ratioExactCap = 1 << 16
	// ratioSampleSegs strided block-aligned segments of ratioSegBlocks
	// blocks each form the sample for large inputs.
	ratioSampleSegs = 32
	ratioSegBlocks  = 4
)

// ratioScratch is the reusable probe buffer. Probes compress into it and
// throw the bytes away; pooling it keeps the warm search at zero
// allocations. It is type-independent (probes write bytes), so one pool
// serves both element widths.
type ratioScratch struct {
	comp []byte
}

var ratioPool = sync.Pool{New: func() any { return new(ratioScratch) }}

// getRatioScratch / putRatioScratch lease a probe scratch from the pool for
// callers that resolve many plans back to back. The batch entry points lease
// one per participating worker so a fixed-ratio batch runs its per-array
// bound searches concurrently without the workers contending on the pool for
// every array.
func getRatioScratch() *ratioScratch   { return ratioPool.Get().(*ratioScratch) }
func putRatioScratch(rs *ratioScratch) { ratioPool.Put(rs) }

// resolveRatio fills p.Bound (and the search trace) for a TargetRatio
// request.
func resolveRatio[T Float](p *Plan, data []T, opt Options, rs *ratioScratch) error {
	p.TargetRatio = opt.TargetRatio
	bs := opt.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 1 || bs > MaxBlockSize {
		return ErrBlockSize
	}
	if len(data) == 0 {
		// Mirror the relative-mode contract: no data, no resolvable bound.
		return ErrDegenerateRange
	}
	if rs == nil {
		rs = ratioPool.Get().(*ratioScratch)
		defer ratioPool.Put(rs)
	}
	if telemetry.Enabled() {
		telemetry.RatioSearches.Inc()
	}
	mn, mx := minMax(data)
	rangeV := float64(mx) - float64(mn)
	if !(rangeV > 0) || math.IsInf(rangeV, 0) {
		// Constant (or NaN/Inf-polluted) data: every bound yields the same
		// saturated ratio, so searching is pointless. Pick a bound at the
		// value's own scale — honest, and tiny relative to the data.
		b := math.Abs(float64(mx)) * 1e-9
		if !(b > 0) || math.IsInf(b, 0) {
			b = 1e-9
		}
		est, err := estimateRatio(rs, data, b, bs, opt)
		if err != nil {
			return err
		}
		p.Bound = b
		p.Probes = 1
		p.EstimatedRatio = est
		p.Converged = withinRatioTol(est, p.TargetRatio)
		finishRatioTrace(p)
		return nil
	}
	if err := searchRatioBound(p, rs, data, rangeV, bs, opt, 0, ratioMaxProbes); err != nil {
		return err
	}
	finishRatioTrace(p)
	return nil
}

func finishRatioTrace(p *Plan) {
	if telemetry.Enabled() {
		telemetry.RatioProbes.Add(int64(p.Probes))
		if !p.Converged {
			telemetry.RatioUnconverged.Inc()
		}
	}
}

func withinRatioTol(est, target float64) bool {
	return math.Abs(est/target-1) <= ratioTolerance
}

// searchRatioBound runs the bound search: a model-based first guess, then
// regula falsi in log-log space once the target is bracketed (ratio(bound)
// is monotone, and both axes span decades), with exponential bracket
// expansion before that. seed > 0 overrides the model guess (the streaming
// per-chunk re-search starts from the first chunk's bound). The best probe
// seen — minimum |ln(est/target)| — always wins, so an unconverged search
// still returns the closest bound it found.
func searchRatioBound[T Float](p *Plan, rs *ratioScratch, data []T, rangeV float64, bs int, opt Options, seed float64, maxProbes int) error {
	target := opt.TargetRatio
	lnTarget := math.Log(target)
	es := ieee.Width[T]()

	// Bound ceiling: at range/2 every block's radius is within the bound
	// and the stream is all constant blocks — the ratio can grow no
	// further. Floor: far below the range the encoder goes lossless and
	// the ratio stops shrinking.
	bMax := rangeV / 2
	bMin := math.Ldexp(rangeV, -60)

	b := seed
	if !(b > 0) {
		// Model seed: a nonconstant value stores ≈ reqLen/8 payload bytes
		// plus the 2-bit lead code, so ratio R needs reqLen ≈ 8·es/R − 2;
		// with reqLen = signExpBits + radExpo − errExpo and a typical
		// block radius near range/8, that fixes the bound's exponent.
		signExp := 9
		if es == 8 {
			signExp = 12
		}
		reqGuess := 8*float64(es)/target - 2
		if reqGuess < float64(signExp) {
			reqGuess = float64(signExp)
		}
		radExpo := ieee.Exponent64(rangeV / 8)
		b = math.Ldexp(1, radExpo-(int(reqGuess)-signExp))
	}
	if b > bMax {
		b = bMax
	}
	if b < bMin {
		b = bMin
	}

	var loX, loY, hiX, hiY float64 // bracket points in (ln bound, ln ratio)
	haveLo, haveHi := false, false
	lastSide := 0 // which bracket end the previous probe replaced
	bestB, bestEst, bestD := 0.0, 0.0, math.Inf(1)
	for p.Probes < maxProbes {
		est, err := estimateRatio(rs, data, b, bs, opt)
		if err != nil {
			return err
		}
		p.Probes++
		d := math.Log(est) - lnTarget
		if ad := math.Abs(d); ad < bestD {
			bestB, bestEst, bestD = b, est, ad
		}
		if withinRatioTol(est, target) {
			p.Converged = true
			break
		}
		x := math.Log(b)
		if d < 0 {
			// Ratio too low: need a larger bound. Keep the tightest such
			// point (largest x); when the same end moves twice in a row,
			// apply the Illinois correction — pull the far end's value
			// toward the target — so a one-sided plateau cannot stall the
			// interpolant.
			if haveLo && haveHi && lastSide < 0 {
				hiY = lnTarget + (hiY-lnTarget)/2
			}
			if !haveLo || x > loX {
				loX, loY = x, math.Log(est)
			}
			haveLo = true
			lastSide = -1
			if b >= bMax {
				break // saturated at all-constant; target unreachable
			}
		} else {
			if haveLo && haveHi && lastSide > 0 {
				loY = lnTarget + (loY-lnTarget)/2
			}
			if !haveHi || x < hiX {
				hiX, hiY = x, math.Log(est)
			}
			haveHi = true
			lastSide = 1
			if b <= bMin {
				break // saturated at lossless; target unreachable
			}
		}
		switch {
		case haveLo && haveHi:
			if hiX-loX < 1e-4 {
				// The bracket has collapsed onto a plateau edge: the ratio
				// jumps across the target here and no bound hits it.
				p.Bound = bestB
				p.EstimatedRatio = bestEst
				return nil
			}
			// Regula falsi (Illinois) on the bracket; monotonicity
			// guarantees loY < lnTarget < hiY. Fall back to bisection if
			// the interpolant lands on (or outside) an endpoint.
			nx := loX + (lnTarget-loY)*(hiX-loX)/(hiY-loY)
			if !(nx > loX && nx < hiX) {
				nx = (loX + hiX) / 2
			}
			b = math.Exp(nx)
		default:
			// Not yet bracketed: step by the model. A value stores
			// ≈ 8·es/ratio bits, and that count drops by one each time the
			// bound doubles, so the jump to the target is
			// Δlog2(bound) = 8·es·(1/est − 1/target) octaves. Move at
			// least one octave so a plateau cannot pin the expansion.
			nb := b * math.Exp2(8*float64(es)*(1/est-1/target))
			if haveLo {
				b = min(max(nb, b*2), bMax)
			} else {
				b = max(min(nb, b/2), bMin)
			}
		}
	}
	p.Bound = bestB
	p.EstimatedRatio = bestEst
	return nil
}

// estimateRatio estimates the compression ratio data would reach under an
// absolute bound. Small inputs are compressed whole (exact); large ones
// are sampled as strided block-aligned segments whose per-segment stream
// overhead is subtracted before scaling the payload back up to the full
// input. Either way the bytes land in the pooled scratch and are
// discarded — a probe costs compression time only, no allocations once
// the scratch is warm.
func estimateRatio[T Float](rs *ratioScratch, data []T, bound float64, bs int, opt Options) (float64, error) {
	copts := core.Options{BlockSize: opt.BlockSize, Unguarded: opt.Unguarded}
	n := len(data)
	segVals := ratioSegBlocks * bs
	if n <= ratioExactCap || n <= ratioSampleSegs*segVals {
		out, st, err := core.CompressIntoStats(rs.comp[:0], data, bound, copts)
		if err != nil {
			return 0, err
		}
		rs.comp = out
		return st.Ratio(), nil
	}
	stride := (n / segVals) / ratioSampleSegs // ≥ 1 by the guard above
	comp := rs.comp
	payload := 0
	sampled := 0
	var err error
	for i := 0; i < ratioSampleSegs; i++ {
		off := i * stride * segVals
		seg := data[off : off+segVals]
		var st core.Stats
		comp, st, err = core.CompressIntoStats(comp[:0], seg, bound, copts)
		if err != nil {
			rs.comp = comp
			return 0, err
		}
		payload += st.CompressedSize - streamOverhead(len(seg), bs)
		sampled += len(seg)
	}
	rs.comp = comp
	es := ieee.Width[T]()
	estSize := float64(streamOverhead(n, bs)) + float64(payload)*float64(n)/float64(sampled)
	return float64(es*n) / estSize, nil
}

// streamOverhead is the fixed per-stream cost for an n-value stream:
// header, constant-block bitmap, and the per-block zsize index.
func streamOverhead(n, bs int) int {
	nb := (n + bs - 1) / bs
	return core.HeaderSize + (nb+7)/8 + 2*nb
}

// --- streaming (per-chunk) resolution --------------------------------------

// streamRatio carries fixed-ratio state across a stream's chunks: the
// first chunk runs the full bound search and its bound seeds every later
// chunk's cheap re-estimation. The resolution for chunk k is a pure
// function of (options, seed, chunk values), which is what keeps the
// serial Writer and the pipelined PipeWriter byte-identical.
type streamRatio struct {
	seed   float64
	seeded bool
}

// chunkBound resolves the bound for the next chunk in submission order.
// Only the seeding call mutates the receiver; for a pipelined writer it
// must happen on the producer goroutine (before the chunk is handed to
// the workers), after which the state is read-only.
func (r *streamRatio) chunkBound(chunk []float32, opt Options) (float64, error) {
	if !r.seeded {
		p, err := ResolvePlan(chunk, opt)
		if err != nil {
			return 0, err
		}
		r.seed = p.Bound
		r.seeded = true
		return p.Bound, nil
	}
	return ratioChunkBound(opt, r.seed, chunk)
}

// ratioChunkBound re-resolves the bound for one follow-on stream chunk:
// probe the seed bound against this chunk's values and keep it while the
// estimate stays within tolerance (the common case — chunks of one
// instrument stream resemble each other), otherwise run a short re-search
// starting from the seed.
func ratioChunkBound(opt Options, seed float64, chunk []float32) (float64, error) {
	bs := opt.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 1 || bs > MaxBlockSize {
		return 0, ErrBlockSize
	}
	if len(chunk) == 0 {
		return seed, nil
	}
	if telemetry.Enabled() {
		telemetry.RatioReestimates.Inc()
	}
	mn, mx := minMax(chunk)
	rangeV := float64(mx) - float64(mn)
	if !(rangeV > 0) || math.IsInf(rangeV, 0) {
		// Flat chunk: constant blocks at any bound; the seed stays honest.
		return seed, nil
	}
	rs := ratioPool.Get().(*ratioScratch)
	defer ratioPool.Put(rs)
	var p Plan
	p.TargetRatio = opt.TargetRatio
	if err := searchRatioBound(&p, rs, chunk, rangeV, bs, opt, seed, ratioChunkProbes); err != nil {
		return 0, err
	}
	finishRatioTrace(&p)
	return p.Bound, nil
}

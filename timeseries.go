package szx

import (
	"errors"
	"math"

	"repro/telemetry"
)

// Temporal compression: simulations emit a sequence of snapshots of the
// same field, and consecutive snapshots differ far less than they vary in
// space. A TimeCompressor compresses each frame's *residual* against the
// previous reconstructed frame with SZx — the natural "improve the
// compression ratios of SZx" extension the paper's §8 sketches, and a
// common production pattern for in-situ pipelines.
//
// The error bound stays strict: the decoder reconstructs
// frame'[i] = prev'[i] + residual'[i], and since |residual - residual'| ≤ e
// with residual = frame[i] - prev'[i] computed against the *reconstructed*
// previous frame, every frame satisfies |frame - frame'| ≤ e with no error
// accumulation across time.

// ErrFrameShape is returned when a frame's length differs from the first
// frame's.
var ErrFrameShape = errors.New("szx: frame length differs from the stream's")

// TimeCompressor compresses a sequence of equal-length frames.
type TimeCompressor struct {
	opt      Options
	prev     []float32 // previous reconstructed frame
	spare    []float32 // retired reference frame, recycled for the next one
	resid    []float32 // reused residual buffer
	residRec []float32 // reused reconstructed-residual buffer
	n        int
}

// NewTimeCompressor returns a temporal compressor. opt.Mode must be
// BoundAbsolute (a per-frame relative bound would drift with the residual
// range; resolve it yourself against the first frame if needed). With
// opt.TargetRatio set, the first frame resolves the bound via the
// fixed-ratio search and every later frame's residual is encoded under
// that same absolute bound (see EffectiveBound).
func NewTimeCompressor(opt Options) (*TimeCompressor, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.Mode != BoundAbsolute {
		return nil, errors.New("szx: temporal compression requires an absolute bound")
	}
	return &TimeCompressor{opt: opt}, nil
}

// EffectiveBound returns the absolute error bound frames are encoded
// under. In fixed-ratio mode it is zero until the first frame resolves
// the bound.
func (tc *TimeCompressor) EffectiveBound() float64 {
	if tc.opt.TargetRatio > 0 {
		return 0 // not resolved yet
	}
	return tc.opt.ErrorBound
}

// CompressFrame compresses the next frame. The first frame is compressed
// directly; later frames compress the residual against the previous
// reconstructed frame.
func (tc *TimeCompressor) CompressFrame(frame []float32) ([]byte, error) {
	if tc.prev == nil {
		if tc.opt.TargetRatio > 0 {
			// Resolve the ratio once, against the first frame, then pin the
			// compressor to the resulting absolute bound: later frames code
			// residuals, whose own ratio search would chase a different
			// (meaningless) range, and the bound-check fallback below needs
			// one fixed bound to verify against.
			p, err := ResolvePlan(frame, tc.opt)
			if err != nil {
				return nil, err
			}
			tc.opt = tc.opt.withBound(p.Bound)
		}
		comp, err := Compress(frame, tc.opt)
		if err != nil {
			return nil, err
		}
		rec, err := Decompress(comp)
		if err != nil {
			return nil, err
		}
		tc.prev = rec
		tc.n = len(frame)
		if telemetry.Enabled() {
			telemetry.TimeFramesKey.Inc()
		}
		return comp, nil
	}
	if len(frame) != tc.n {
		return nil, ErrFrameShape
	}
	if cap(tc.resid) < tc.n {
		tc.resid = make([]float32, tc.n)
	}
	resid := tc.resid[:tc.n]
	for i := range frame {
		// Exact in float32's field: both operands are float32s whose
		// difference we immediately re-round; the guard in the codec
		// absorbs any residual rounding against the bound.
		resid[i] = frame[i] - tc.prev[i]
	}
	comp, err := Compress(resid, tc.opt)
	if err != nil {
		return nil, err
	}
	// Advance the reference to the decoder's view of this frame. The new
	// reference reuses the buffer retired two frames ago (prev/spare
	// ping-pong), and the reconstructed residual reuses its own scratch.
	residRec, err := DecompressInto(tc.residRec[:0], comp)
	if err != nil {
		return nil, err
	}
	tc.residRec = residRec
	next := tc.spare
	if cap(next) < tc.n {
		next = make([]float32, tc.n)
	}
	next = next[:tc.n]
	maxErr := 0.0
	for i := range next {
		next[i] = tc.prev[i] + residRec[i]
		if d := math.Abs(float64(frame[i]) - float64(next[i])); d > maxErr {
			maxErr = d
		}
	}
	// The residual add reintroduces one float32 rounding; in the rare case
	// it lands outside the bound, fall back to compressing the frame
	// directly (self-contained keyframe).
	if !(maxErr <= tc.opt.ErrorBound) {
		comp, err = Compress(frame, Options{
			ErrorBound: tc.opt.ErrorBound, BlockSize: tc.opt.BlockSize,
			Workers: tc.opt.Workers, Unguarded: tc.opt.Unguarded,
		})
		if err != nil {
			return nil, err
		}
		next, err = DecompressInto(next[:0], comp)
		if err != nil {
			return nil, err
		}
		comp = append([]byte{frameKey}, comp...)
		tc.spare = tc.prev
		tc.prev = next
		if telemetry.Enabled() {
			telemetry.TimeFramesKey.Inc()
			telemetry.TimeKeyframeFallbacks.Inc()
		}
		return comp, nil
	}
	tc.spare = tc.prev
	tc.prev = next
	if telemetry.Enabled() {
		telemetry.TimeFramesDelta.Inc()
	}
	return append([]byte{frameDelta}, comp...), nil
}

// Frame kind tags prepended to every frame after the first.
const (
	frameDelta byte = 0xD1
	frameKey   byte = 0xD2
)

// TimeDecompressor reconstructs a frame sequence produced by
// TimeCompressor.
type TimeDecompressor struct {
	prev  []float32
	resid []float32 // reused residual buffer
}

// NewTimeDecompressor returns a temporal decompressor.
func NewTimeDecompressor() *TimeDecompressor { return &TimeDecompressor{} }

// DecompressFrame reconstructs the next frame from its compressed form.
func (td *TimeDecompressor) DecompressFrame(comp []byte) ([]float32, error) {
	if td.prev == nil {
		frame, err := Decompress(comp)
		if err != nil {
			return nil, err
		}
		td.prev = frame
		return append([]float32(nil), frame...), nil
	}
	if len(comp) < 1 {
		return nil, ErrCorrupt
	}
	switch comp[0] {
	case frameKey:
		frame, err := Decompress(comp[1:])
		if err != nil {
			return nil, err
		}
		td.prev = frame
		return append([]float32(nil), frame...), nil
	case frameDelta:
		resid, err := DecompressInto(td.resid[:0], comp[1:])
		if err != nil {
			return nil, err
		}
		td.resid = resid
		if len(resid) != len(td.prev) {
			return nil, ErrFrameShape
		}
		frame := make([]float32, len(resid))
		for i := range frame {
			frame[i] = td.prev[i] + resid[i]
		}
		td.prev = frame
		return append([]float32(nil), frame...), nil
	default:
		return nil, ErrCorrupt
	}
}

// Package szx is a pure-Go implementation of SZx, the ultrafast
// error-bounded lossy compressor for scientific floating-point datasets
// introduced by Yu et al. at HPDC 2022.
//
// SZx targets use cases where compression speed dominates: in-memory
// compression for large working sets, online instrument data reduction, and
// I/O acceleration on parallel file systems. It restricts itself to
// lightweight operations (additions, subtractions, bitwise shifts, byte
// copies) and still reaches compression ratios of roughly 3-12x on typical
// scientific data, while guaranteeing that every reconstructed value
// differs from the original by no more than a user-specified error bound.
//
// # Quick start
//
//	comp, err := szx.Compress(data, szx.Options{ErrorBound: 1e-3})
//	...
//	dec, err := szx.Decompress(comp)
//
// The error bound is absolute by default; use Mode: szx.BoundRelative to
// specify it as a fraction of the dataset's value range (the paper's
// "value-range-based relative error bound").
//
// Compression and decompression are block-parallel: set Workers to the
// number of goroutines to use (WorkersAuto selects GOMAXPROCS). The
// parallel paths produce bit-identical streams and values to the serial
// ones.
//
// # Generic API and buffer reuse
//
// The codec core is implemented once, generically, over both element types.
// The [Float]-constrained functions ([CompressInto], [DecompressInto],
// [CompressParallelInto], [DecompressParallelInto]) append to
// caller-supplied buffers and perform no allocations once those buffers are
// warm; the per-type helpers (Compress, CompressFloat64, ...) are thin
// wrappers over them. For repeated compression of similar payloads — the
// in-memory-compression service pattern — use a [Codec], which keeps the
// reuse buffers internally.
//
// # Observability
//
// The repro/telemetry package instruments every layer — block taxonomy,
// required-bit and leading-byte-code distributions, engine selection, the
// work-stealing engine's internals, and per-stage wall times — behind a
// single opt-in gate (telemetry.Enable). Disabled, the instrumentation
// costs one atomic load per call. Snapshots export as a struct, expvar
// JSON, or Prometheus text; cmd/szx and cmd/szxbench expose them via
// -stats and -stats-http.
package szx

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/telemetry"
)

// Float constrains the element types SZx supports.
type Float interface{ ~float32 | ~float64 }

// Mode selects how Options.ErrorBound is interpreted.
type Mode int

const (
	// BoundAbsolute interprets ErrorBound as a maximum absolute
	// reconstruction error |d - d'|.
	BoundAbsolute Mode = iota
	// BoundRelative interprets ErrorBound as a fraction of the dataset's
	// global value range: e_abs = ErrorBound * (max - min). This matches
	// the REL bounds used throughout the paper's evaluation.
	BoundRelative
)

// Worker-count sentinels for Options.Workers.
const (
	// WorkersSerial runs compression on the calling goroutine.
	WorkersSerial = 0
	// WorkersAuto uses one worker per available CPU.
	WorkersAuto = -1
)

// DefaultBlockSize is the paper's recommended block size (§5.3).
const DefaultBlockSize = core.DefaultBlockSize

// MaxBlockSize is the largest accepted block size.
const MaxBlockSize = core.MaxBlockSize

// Errors surfaced by this package (additional codec errors are defined in
// terms of these sentinels via errors.Is).
var (
	ErrErrBound   = core.ErrErrBound
	ErrBlockSize  = core.ErrBlockSize
	ErrCorrupt    = core.ErrCorrupt
	ErrBadMagic   = core.ErrBadMagic
	ErrBadVersion = core.ErrBadVersion
	ErrWrongType  = core.ErrWrongType
)

// ErrDegenerateRange is returned for BoundRelative when the data has no
// value range (all values equal, or empty input), which makes a relative
// bound meaningless.
var ErrDegenerateRange = errors.New("szx: relative bound on data with zero value range")

// Options configures compression.
type Options struct {
	// ErrorBound is the maximum tolerated reconstruction error, interpreted
	// per Mode. It must be positive and finite.
	ErrorBound float64
	// Mode selects absolute or value-range-relative bounds.
	Mode Mode
	// BlockSize is the number of consecutive values per block
	// (0 = DefaultBlockSize). Larger blocks compress better up to ~128;
	// see the paper's Fig. 8.
	BlockSize int
	// Workers controls block-level parallelism: WorkersSerial (0) for the
	// calling goroutine only, WorkersAuto (-1) for GOMAXPROCS workers, or
	// any positive count.
	Workers int
	// TargetRatio, when > 0, selects fixed-ratio mode: instead of taking
	// an error bound, the compressor searches for the absolute bound whose
	// compression ratio lands within ±5% of this value (FRaZ-style), then
	// encodes with it. The resolved bound travels in the stream header and
	// Stats.EffectiveBound. Mutually exclusive with ErrorBound; requires
	// BoundAbsolute; must be ≥ 1.
	TargetRatio float64
	// Unguarded disables the per-block error-bound verification pass,
	// matching the original C implementation's behaviour exactly. With it
	// disabled the bound can be exceeded marginally (≲2x) on adversarially
	// scaled data; guarded mode costs ~10-15% speed and is the default.
	Unguarded bool
	// Spans, when non-nil, receives this call's stage intervals (plan
	// resolution, the core engine's encode phases) for request-scoped
	// tracing; telemetry/trace.Trace is the canonical sink. Fixed-ratio
	// probe compressions are deliberately excluded — the whole search is
	// covered by the "resolve_plan" span. Nil costs nothing.
	Spans telemetry.SpanSink
}

func (o Options) coreOpts() core.Options {
	return core.Options{BlockSize: o.BlockSize, Unguarded: o.Unguarded, Spans: o.Spans}
}

func (o Options) workers() int {
	if o.Workers == WorkersAuto {
		return core.Workers(0)
	}
	return o.Workers
}

// Header describes a compressed stream; see Info.
type Header = core.Header

// Stats reports per-run compression statistics; see CompressStats.
type Stats = core.Stats

// DType identifies the element type of a compressed stream.
type DType = core.DType

// Element types reported in Header.Type.
const (
	TypeFloat32 = core.TypeFloat32
	TypeFloat64 = core.TypeFloat64
)

// CompressInto compresses data under opt, appending the stream onto dst and
// returning the extended slice. It allocates nothing when dst has enough
// spare capacity, making it the building block for zero-allocation reuse
// (see Codec). Opt.Workers selects the serial or block-parallel path; both
// produce identical bytes. All bound interpretation — absolute, relative,
// fixed-ratio — goes through the plan resolver (see ResolvePlan).
func CompressInto[T Float](dst []byte, data []T, opt Options) ([]byte, error) {
	return compressInto(dst, data, opt, nil)
}

// compressInto is CompressInto with an optional caller-owned fixed-ratio
// probe scratch (nil = package pool); Codec passes its own for
// deterministic zero-allocation reuse.
func compressInto[T Float](dst []byte, data []T, opt Options, rs *ratioScratch) ([]byte, error) {
	var t0 time.Time
	if opt.Spans != nil {
		t0 = time.Now()
	}
	p, err := resolvePlan(data, opt, rs)
	if err != nil {
		return nil, err
	}
	co := p.coreOpts()
	if opt.Spans != nil {
		// Plan resolution covers bound validation, the relative-bound range
		// scan, and the whole fixed-ratio search (probes included) — for a
		// TargetRatio request this span is where the latency hides.
		opt.Spans.RecordSpan("resolve_plan", t0, time.Now())
		co.Spans = opt.Spans
	}
	if p.Workers > 1 {
		return core.CompressParallelInto(dst, data, p.Bound, co, p.Workers)
	}
	return core.CompressInto(dst, data, p.Bound, co)
}

// CompressIntoStats is CompressInto with per-run statistics (serial path).
// In fixed-ratio mode the Stats carry the search trace (EffectiveBound,
// TargetRatio, RatioProbes, RatioConverged).
func CompressIntoStats[T Float](dst []byte, data []T, opt Options) ([]byte, Stats, error) {
	p, err := ResolvePlan(data, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	out, st, err := core.CompressIntoStats(dst, data, p.Bound, p.coreOpts())
	if err != nil {
		return nil, Stats{}, err
	}
	st.TargetRatio = p.TargetRatio
	st.RatioProbes = p.Probes
	st.RatioConverged = p.Converged
	return out, st, nil
}

// DecompressInto decompresses comp, appending the values onto dst and
// returning the extended slice. The stream's element type must match T
// (ErrWrongType otherwise). It allocates nothing when dst has enough spare
// capacity.
func DecompressInto[T Float](dst []T, comp []byte) ([]T, error) {
	return core.DecompressInto(dst, comp)
}

// CompressParallelInto is CompressInto with an explicit worker count
// (overriding opt.Workers; WorkersAuto selects GOMAXPROCS).
func CompressParallelInto[T Float](dst []byte, data []T, opt Options, workers int) ([]byte, error) {
	p, err := ResolvePlan(data, opt)
	if err != nil {
		return nil, err
	}
	if workers == WorkersAuto {
		workers = core.Workers(0)
	}
	return core.CompressParallelInto(dst, data, p.Bound, p.coreOpts(), workers)
}

// DecompressParallelInto is DecompressInto with block-parallel decoding
// (WorkersAuto selects GOMAXPROCS).
func DecompressParallelInto[T Float](dst []T, comp []byte, workers int) ([]T, error) {
	if workers == WorkersAuto {
		workers = core.Workers(0)
	}
	if workers > 1 {
		return core.DecompressParallelInto(dst, comp, workers)
	}
	return core.DecompressInto(dst, comp)
}

// Compress compresses float32 data under opt. The resulting stream embeds
// everything needed for decompression (including the resolved absolute
// error bound, element type, and block size).
func Compress(data []float32, opt Options) ([]byte, error) {
	return CompressInto[float32](nil, data, opt)
}

// CompressStats is Compress with per-run statistics (serial path).
func CompressStats(data []float32, opt Options) ([]byte, Stats, error) {
	return CompressIntoStats[float32](nil, data, opt)
}

// Decompress reconstructs float32 values from a stream produced by Compress.
func Decompress(comp []byte) ([]float32, error) {
	return core.DecompressInto[float32](nil, comp)
}

// DecompressParallel is Decompress with block-parallel decoding across the
// given number of workers (WorkersAuto for GOMAXPROCS).
func DecompressParallel(comp []byte, workers int) ([]float32, error) {
	return DecompressParallelInto[float32](nil, comp, workers)
}

// CompressFloat64 compresses float64 data under opt.
func CompressFloat64(data []float64, opt Options) ([]byte, error) {
	return CompressInto[float64](nil, data, opt)
}

// CompressFloat64Stats is CompressFloat64 with per-run statistics.
func CompressFloat64Stats(data []float64, opt Options) ([]byte, Stats, error) {
	return CompressIntoStats[float64](nil, data, opt)
}

// DecompressFloat64 reconstructs float64 values.
func DecompressFloat64(comp []byte) ([]float64, error) {
	return core.DecompressInto[float64](nil, comp)
}

// DecompressFloat64Parallel is DecompressFloat64 with block-parallel
// decoding.
func DecompressFloat64Parallel(comp []byte, workers int) ([]float64, error) {
	return DecompressParallelInto[float64](nil, comp, workers)
}

// Info parses and validates the header of a compressed stream without
// decompressing it.
func Info(comp []byte) (Header, error) {
	return core.ParseHeader(comp)
}

// ParallelMinBytes reports the adaptive engine's serial-fallback threshold
// in bytes: inputs (compression) or outputs (decompression) smaller than
// this always run on the calling goroutine because scheduling workers would
// cost more than the codec work. Callers that route requests — the service
// handlers, most usefully — can skip the parallel entry entirely below it.
// 0 means the adaptive fallback is disabled (a test/benchmark override).
func ParallelMinBytes() int {
	return core.ParallelMinBytes
}

// ActiveKernels reports which block-kernel implementation set the codec
// dispatched at startup ("avx2" on CPUs with the required vector features,
// "generic" otherwise) and why, e.g. "avx2 (cpu feature detection)" or
// "generic (SZX_KERNELS=generic)". Dispatch is decided once at init from
// CPUID feature bits; set SZX_KERNELS=generic|avx2|auto before the process
// starts to override it. Both sets produce bit-identical streams — the
// choice affects throughput only.
func ActiveKernels() string {
	return kernels.Detail()
}

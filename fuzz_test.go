package szx

import (
	"bytes"
	"math"
	"testing"
)

func FuzzOpenArchive(f *testing.F) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	_ = aw.AddField("x", []int{64}, testField(64, 1))
	f.Add(aw.Bytes())
	f.Add([]byte("SZXA\x01\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		a, err := OpenArchive(blob)
		if err == nil {
			for _, inf := range a.Fields() {
				_, _, _ = a.Read(inf.Name)
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 64)
	_ = w.Write(testField(200, 2))
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("SZXS\x01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		r := NewReader(bytes.NewReader(blob))
		_, _ = r.ReadAll()
	})
}

func FuzzDecompressPublic(f *testing.F) {
	comp, _ := Compress(testField(300, 3), Options{ErrorBound: 1e-3})
	f.Add(comp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decompress(blob)
		_, _ = DecompressFloat64(blob)
		_, _ = Info(blob)
	})
}

// FuzzDecompressParallel drives the sharded decoders with arbitrary bytes.
// The parallel path trusts the zsize prefix sum to slice payloads per
// worker, so corrupted or truncated size tables are exactly where it could
// over-read; it must instead fail cleanly and, on valid streams, agree
// bitwise with the serial decoder.
func FuzzDecompressParallel(f *testing.F) {
	comp, _ := Compress(testField(1000, 4), Options{ErrorBound: 1e-3})
	f.Add(comp, 4)
	data64 := make([]float64, 700)
	for i := range data64 {
		data64[i] = float64(i%97) / 13
	}
	comp64, _ := CompressFloat64(data64, Options{ErrorBound: 1e-6})
	f.Add(comp64, 3)
	if len(comp) > 40 {
		trunc := append([]byte(nil), comp[:len(comp)-7]...)
		f.Add(trunc, 2)
		bad := append([]byte(nil), comp...)
		bad[30] ^= 0xFF // flip bits inside the zsize table
		f.Add(bad, 8)
	}
	f.Add([]byte("SZX1\x01\x00\x00\x00\x80\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"), 5)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, blob []byte, workers int) {
		workers = workers%16 + 1
		par, perr := DecompressParallel(blob, workers)
		ser, serr := Decompress(blob)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("f32 serial/parallel disagree on validity: serial=%v parallel=%v", serr, perr)
		}
		if perr == nil {
			if len(par) != len(ser) {
				t.Fatalf("f32 length mismatch: serial %d, parallel %d", len(ser), len(par))
			}
			for i := range ser {
				if math.Float32bits(ser[i]) != math.Float32bits(par[i]) {
					t.Fatalf("f32 value %d differs between serial and parallel", i)
				}
			}
		}
		par64, perr := DecompressFloat64Parallel(blob, workers)
		ser64, serr := DecompressFloat64(blob)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("f64 serial/parallel disagree on validity: serial=%v parallel=%v", serr, perr)
		}
		if perr == nil {
			if len(par64) != len(ser64) {
				t.Fatalf("f64 length mismatch: serial %d, parallel %d", len(ser64), len(par64))
			}
			for i := range ser64 {
				if math.Float64bits(ser64[i]) != math.Float64bits(par64[i]) {
					t.Fatalf("f64 value %d differs between serial and parallel", i)
				}
			}
		}
	})
}

package szx

import (
	"bytes"
	"testing"
)

func FuzzOpenArchive(f *testing.F) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	_ = aw.AddField("x", []int{64}, testField(64, 1))
	f.Add(aw.Bytes())
	f.Add([]byte("SZXA\x01\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		a, err := OpenArchive(blob)
		if err == nil {
			for _, inf := range a.Fields() {
				_, _, _ = a.Read(inf.Name)
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 64)
	_ = w.Write(testField(200, 2))
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("SZXS\x01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		r := NewReader(bytes.NewReader(blob))
		_, _ = r.ReadAll()
	})
}

func FuzzDecompressPublic(f *testing.F) {
	comp, _ := Compress(testField(300, 3), Options{ErrorBound: 1e-3})
	f.Add(comp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decompress(blob)
		_, _ = DecompressFloat64(blob)
		_, _ = Info(blob)
	})
}

package szx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
)

func FuzzOpenArchive(f *testing.F) {
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3})
	_ = aw.AddField("x", []int{64}, testField(64, 1))
	f.Add(aw.Bytes())
	f.Add([]byte("SZXA\x01\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		a, err := OpenArchive(blob)
		if err == nil {
			for _, inf := range a.Fields() {
				_, _, _ = a.Read(inf.Name)
			}
		}
	})
}

func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 64)
	_ = w.Write(testField(200, 2))
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("SZXS\x01\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, blob []byte) {
		r := NewReader(bytes.NewReader(blob))
		_, _ = r.ReadAll()
	})
}

func FuzzDecompressPublic(f *testing.F) {
	comp, _ := Compress(testField(300, 3), Options{ErrorBound: 1e-3})
	f.Add(comp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decompress(blob)
		_, _ = DecompressFloat64(blob)
		_, _ = Info(blob)
	})
}

// FuzzStreamPipeline cross-checks the pipelined streaming engine against
// the serial one: on any input the PipeWriter must emit a container
// byte-identical to Writer's at every parallelism, and the PipeReader must
// recover bit-identical values from it. The raw fuzz bytes are
// reinterpreted as float32 values (NaNs, infinities, subnormals included)
// and the chunk size is fuzzed too, so ragged tails, single-value chunks,
// and empty streams are all reached.
func FuzzStreamPipeline(f *testing.F) {
	seed := make([]byte, 4*500)
	for i := 0; i < 500; i++ {
		binary.LittleEndian.PutUint32(seed[4*i:], math.Float32bits(float32(i%89)/7))
	}
	f.Add(seed, uint16(64), uint8(0))
	f.Add(seed[:4*33+3], uint16(7), uint8(1)) // ragged tail values AND bytes
	f.Add([]byte{}, uint16(1), uint8(2))
	f.Add(seed[:4*9], uint16(1000), uint8(3)) // chunk larger than the input
	f.Fuzz(func(t *testing.T, raw []byte, chunk16 uint16, sel uint8) {
		chunk := int(chunk16)%2048 + 1
		bounds := []float64{1e-2, 1e-4, 0.5}
		opt := Options{ErrorBound: bounds[int(sel)%len(bounds)]}
		if sel&0x08 != 0 {
			opt.Mode = BoundRelative
		}
		vals := make([]float32, len(raw)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}

		var serial bytes.Buffer
		sw := NewWriter(&serial, opt, chunk)
		serr := sw.Write(vals)
		if serr == nil {
			serr = sw.Close()
		}

		for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			var piped bytes.Buffer
			pw := NewPipeWriter(&piped, opt, chunk, par)
			perr := pw.Write(vals)
			if perr == nil {
				perr = pw.Close()
			} else {
				_ = pw.Close()
			}
			if (serr == nil) != (perr == nil) {
				t.Fatalf("par=%d chunk=%d: serial/pipelined disagree on validity: %v vs %v",
					par, chunk, serr, perr)
			}
			if serr != nil {
				continue
			}
			if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
				t.Fatalf("par=%d chunk=%d: pipelined container differs from serial (%d vs %d bytes)",
					par, chunk, piped.Len(), serial.Len())
			}

			pr := NewPipeReader(bytes.NewReader(piped.Bytes()), par)
			got, rerr := pr.ReadAll()
			want, werr := NewReader(bytes.NewReader(serial.Bytes())).ReadAll()
			if (rerr == nil) != (werr == nil) {
				t.Fatalf("par=%d: readers disagree on validity: serial=%v pipelined=%v", par, werr, rerr)
			}
			if rerr == nil {
				if len(got) != len(want) {
					t.Fatalf("par=%d: %d values, serial reader got %d", par, len(got), len(want))
				}
				for i := range want {
					if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
						t.Fatalf("par=%d: value %d differs between serial and pipelined readers", par, i)
					}
				}
			}
			if cerr := pr.Close(); cerr != nil {
				t.Fatalf("par=%d: close: %v", par, cerr)
			}
		}
	})
}

// FuzzCompressParallel cross-checks the work-stealing parallel compressor
// against the serial encoder: on any input the two must emit byte-identical
// streams at every worker count. The raw fuzz bytes are reinterpreted as
// float32 and float64 values (so the mutator reaches NaN payloads, signed
// zeros, subnormals, and adversarial exponent patterns for free), and the
// engine's adaptive size gate is lowered so fuzz-sized inputs actually
// exercise the chunked stealing and gather phases.
func FuzzCompressParallel(f *testing.F) {
	seed := make([]byte, 4*300)
	for i := 0; i < 300; i++ {
		binary.LittleEndian.PutUint32(seed[4*i:], math.Float32bits(float32(i%97)/13))
	}
	f.Add(seed, uint8(0))
	f.Add(seed[:4*130+2], uint8(1)) // ragged tail bytes
	f.Add([]byte{}, uint8(2))
	weird := make([]byte, 4*64)
	for i := range weird {
		weird[i] = byte(i * 37)
	}
	f.Add(weird, uint8(3))
	bounds := []float64{1e-2, 1e-4, 1e-7, 0.5}

	f.Fuzz(func(t *testing.T, raw []byte, sel uint8) {
		oldMin := core.ParallelMinBytes
		core.ParallelMinBytes = 0
		defer func() { core.ParallelMinBytes = oldMin }()

		opt := Options{ErrorBound: bounds[int(sel)%len(bounds)]}
		if sel&0x10 != 0 {
			opt.BlockSize = 64
		}
		workerCounts := []int{2, 3, runtime.GOMAXPROCS(0)}

		f32 := make([]float32, len(raw)/4)
		for i := range f32 {
			f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		ser, serr := CompressInto[float32](nil, f32, opt)
		for _, w := range workerCounts {
			par, perr := CompressParallelInto[float32](nil, f32, opt, w)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("f32 w=%d: serial/parallel disagree on validity: %v vs %v", w, serr, perr)
			}
			if serr == nil && !bytes.Equal(ser, par) {
				t.Fatalf("f32 w=%d: parallel stream differs from serial (%d vs %d bytes)", w, len(ser), len(par))
			}
		}

		f64 := make([]float64, len(raw)/8)
		for i := range f64 {
			f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		ser64, serr := CompressFloat64(f64, opt)
		for _, w := range workerCounts {
			par64, perr := core.CompressParallelInto[float64](nil, f64, opt.ErrorBound, core.Options{BlockSize: opt.BlockSize}, w)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("f64 w=%d: serial/parallel disagree on validity: %v vs %v", w, serr, perr)
			}
			if serr == nil && !bytes.Equal(ser64, par64) {
				t.Fatalf("f64 w=%d: parallel stream differs from serial (%d vs %d bytes)", w, len(ser64), len(par64))
			}
		}
	})
}

// FuzzDecompressParallel drives the sharded decoders with arbitrary bytes.
// The parallel path trusts the zsize prefix sum to slice payloads per
// worker, so corrupted or truncated size tables are exactly where it could
// over-read; it must instead fail cleanly and, on valid streams, agree
// bitwise with the serial decoder.
func FuzzDecompressParallel(f *testing.F) {
	comp, _ := Compress(testField(1000, 4), Options{ErrorBound: 1e-3})
	f.Add(comp, 4)
	data64 := make([]float64, 700)
	for i := range data64 {
		data64[i] = float64(i%97) / 13
	}
	comp64, _ := CompressFloat64(data64, Options{ErrorBound: 1e-6})
	f.Add(comp64, 3)
	if len(comp) > 40 {
		trunc := append([]byte(nil), comp[:len(comp)-7]...)
		f.Add(trunc, 2)
		bad := append([]byte(nil), comp...)
		bad[30] ^= 0xFF // flip bits inside the zsize table
		f.Add(bad, 8)
	}
	f.Add([]byte("SZX1\x01\x00\x00\x00\x80\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"), 5)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, blob []byte, workers int) {
		workers = workers%16 + 1
		par, perr := DecompressParallel(blob, workers)
		ser, serr := Decompress(blob)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("f32 serial/parallel disagree on validity: serial=%v parallel=%v", serr, perr)
		}
		if perr == nil {
			if len(par) != len(ser) {
				t.Fatalf("f32 length mismatch: serial %d, parallel %d", len(ser), len(par))
			}
			for i := range ser {
				if math.Float32bits(ser[i]) != math.Float32bits(par[i]) {
					t.Fatalf("f32 value %d differs between serial and parallel", i)
				}
			}
		}
		par64, perr := DecompressFloat64Parallel(blob, workers)
		ser64, serr := DecompressFloat64(blob)
		if (perr == nil) != (serr == nil) {
			t.Fatalf("f64 serial/parallel disagree on validity: serial=%v parallel=%v", serr, perr)
		}
		if perr == nil {
			if len(par64) != len(ser64) {
				t.Fatalf("f64 length mismatch: serial %d, parallel %d", len(ser64), len(par64))
			}
			for i := range ser64 {
				if math.Float64bits(ser64[i]) != math.Float64bits(par64[i]) {
					t.Fatalf("f64 value %d differs between serial and parallel", i)
				}
			}
		}
	})
}

// FuzzTargetRatio drives the fixed-ratio bound search over arbitrary
// inputs: the raw fuzz bytes become float32 values (NaNs, infinities, and
// constant runs included) and the target ratio is fuzzed across [1, 65).
// Whatever the input, the search must stay within its probe budget, the
// resolved bound must be positive, the stream must record that bound, and
// every finite value must decompress back within it.
func FuzzTargetRatio(f *testing.F) {
	smooth := make([]byte, 4*600)
	for i := 0; i < 600; i++ {
		binary.LittleEndian.PutUint32(smooth[4*i:], math.Float32bits(float32(math.Sin(float64(i)*0.05))))
	}
	f.Add(smooth, uint8(8))
	f.Add(smooth[:4*5], uint8(4))                   // shorter than one block
	f.Add([]byte{}, uint8(2))                       // empty
	f.Add(bytes.Repeat(smooth[:4], 300), uint8(16)) // constant field
	f.Fuzz(func(t *testing.T, raw []byte, tsel uint8) {
		target := 1 + float64(tsel%64)
		vals := make([]float32, len(raw)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		opt := Options{TargetRatio: target}

		p, err := ResolvePlan(vals, opt)
		if err != nil {
			// Only inputs with no usable value range may fail resolution.
			if !errors.Is(err, ErrDegenerateRange) {
				t.Fatalf("unexpected resolve error: %v", err)
			}
			return
		}
		if p.Probes > 8 {
			t.Fatalf("%d probes > budget 8", p.Probes)
		}
		if !(p.Bound > 0) {
			t.Fatalf("resolved bound %v not positive", p.Bound)
		}

		comp, st, cerr := CompressStats(vals, opt)
		if cerr != nil {
			t.Fatalf("compress after successful resolve: %v", cerr)
		}
		if !(st.EffectiveBound > 0) {
			t.Fatalf("stats carry no effective bound")
		}
		h, herr := Info(comp)
		if herr != nil {
			t.Fatalf("info on own stream: %v", herr)
		}
		if h.ErrBound != st.EffectiveBound {
			t.Fatalf("header bound %g != stats bound %g", h.ErrBound, st.EffectiveBound)
		}
		got, derr := Decompress(comp)
		if derr != nil {
			t.Fatalf("decompress own stream: %v", derr)
		}
		if len(got) != len(vals) {
			t.Fatalf("roundtrip length %d want %d", len(got), len(vals))
		}
		for i, want := range vals {
			w64, g64 := float64(want), float64(got[i])
			if math.IsNaN(w64) || math.IsInf(w64, 0) {
				continue // non-finite values have no meaningful bound
			}
			if math.Abs(g64-w64) > st.EffectiveBound*(1+1e-9) {
				t.Fatalf("value %d breaks converged bound %g: %v vs %v",
					i, st.EffectiveBound, got[i], want)
			}
		}
	})
}

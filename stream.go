package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/telemetry"
)

// Streaming codec: an io.Writer/io.Reader pair that carries an unbounded
// sequence of float32 values as independently compressed chunks. This is
// the shape the paper's online instrument-data use case needs (LCLS-II,
// §1): data arrives continuously, each chunk is compressed and flushed
// with bounded latency and memory, and a crashed stream is readable up to
// the last complete chunk.
//
// Wire format:
//
//	"SZXS" u8(version)
//	repeat: u32 frameLen | SZx stream of one chunk
//	u32(0) terminator
//
// With Mode == BoundRelative the bound is resolved against each chunk's
// own value range (instruments rarely know the global range in advance);
// use BoundAbsolute for a range-independent guarantee.

const (
	streamMagic   = "SZXS"
	streamVersion = 1
	// DefaultChunkValues is the streaming chunk size (values).
	DefaultChunkValues = 1 << 18
)

// ErrStream reports a malformed streaming container.
var ErrStream = errors.New("szx: malformed stream container")

// FrameError reports a malformed, truncated, or undecodable frame in a
// streaming container. It carries the zero-based frame index and the byte
// offset of the frame's length prefix within the container, so corruption
// reports name the exact spot instead of a bare "unexpected EOF"; the
// underlying cause (io.ErrUnexpectedEOF, ErrCorrupt, ...) stays reachable
// through errors.Is/As, as does ErrStream. Every FrameError also
// increments the telemetry stream-frame-error counter (error counters are
// not gated on telemetry being enabled — corruption is rare enough that
// counting it is free, and the count is the first thing an operator wants).
type FrameError struct {
	Frame  int   // zero-based frame index within the stream
	Offset int64 // byte offset of the frame's length prefix in the container
	Err    error // underlying cause
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("szx: stream frame %d (container offset %d): %v", e.Frame, e.Offset, e.Err)
}

// Unwrap exposes both ErrStream and the underlying cause.
func (e *FrameError) Unwrap() []error { return []error{ErrStream, e.Err} }

// Writer compresses a stream of float32 values chunk by chunk.
type Writer struct {
	w      io.Writer
	opt    Options
	chunk  int
	buf    []float32
	comp   []byte // reused compressed-chunk buffer
	ratio  streamRatio
	err    error
	opened bool
	closed bool
}

// NewWriter returns a streaming compressor writing to w. ChunkValues
// controls the chunk granularity (0 = DefaultChunkValues).
func NewWriter(w io.Writer, opt Options, chunkValues int) *Writer {
	if chunkValues <= 0 {
		chunkValues = DefaultChunkValues
	}
	return &Writer{w: w, opt: opt, chunk: chunkValues}
}

// Write buffers values, compressing and emitting full chunks. Large inputs
// are chunked directly from the caller's slice without re-buffering.
func (sw *Writer) Write(values []float32) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return errors.New("szx: write after Close")
	}
	for len(values) > 0 {
		if len(sw.buf) == 0 && len(values) >= sw.chunk {
			if err := sw.flushChunk(values[:sw.chunk]); err != nil {
				return err
			}
			values = values[sw.chunk:]
			continue
		}
		need := sw.chunk - len(sw.buf)
		if need > len(values) {
			need = len(values)
		}
		sw.buf = append(sw.buf, values[:need]...)
		values = values[need:]
		if len(sw.buf) == sw.chunk {
			if err := sw.flushChunk(sw.buf); err != nil {
				return err
			}
			sw.buf = sw.buf[:0]
		}
	}
	return nil
}

func (sw *Writer) flushChunk(chunk []float32) error {
	// Stage the whole frame — container magic (first chunk only), the u32
	// frame length, and the compressed payload — in one reused buffer and
	// emit it with a single Write. The instrument-streaming path calls this
	// per chunk, so coalescing turns three syscalls (or three bufio copies)
	// into one; the length is backfilled after compression since it is not
	// known up front.
	buf := sw.comp[:0]
	if !sw.opened {
		buf = append(buf, streamMagic...)
		buf = append(buf, streamVersion)
	}
	hdrOff := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	copt := sw.opt
	if sw.opt.TargetRatio > 0 {
		// Fixed-ratio streaming: the first chunk runs the full bound
		// search; each later chunk re-estimates from that seed (same pure
		// resolution the pipelined writer uses, keeping the bytes
		// identical).
		b, err := sw.ratio.chunkBound(chunk, sw.opt)
		if err != nil {
			sw.err = err
			return err
		}
		copt = sw.opt.withBound(b)
	}
	buf, err := CompressInto(buf, chunk, copt)
	if err != nil {
		sw.err = err
		return err
	}
	binary.LittleEndian.PutUint32(buf[hdrOff:], uint32(len(buf)-hdrOff-4))
	sw.comp = buf
	if _, err := sw.w.Write(buf); err != nil {
		sw.err = err
		return err
	}
	sw.opened = true
	if telemetry.Enabled() {
		telemetry.StreamFramesWritten.Inc()
	}
	return nil
}

// Close flushes any buffered tail chunk and writes the terminator.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	if len(sw.buf) > 0 {
		if err := sw.flushChunk(sw.buf); err != nil {
			return err
		}
		sw.buf = sw.buf[:0]
	}
	// Terminator, prefixed by the container magic when no chunk was ever
	// flushed (empty stream), emitted as one Write.
	tail := sw.comp[:0]
	if !sw.opened {
		tail = append(tail, streamMagic...)
		tail = append(tail, streamVersion)
	}
	tail = append(tail, 0, 0, 0, 0)
	sw.comp = tail
	if _, err := sw.w.Write(tail); err != nil {
		sw.err = err
		return err
	}
	sw.opened = true
	sw.closed = true
	return nil
}

// Reader decompresses a stream produced by Writer.
type Reader struct {
	r        io.Reader
	buf      []float32 // decoded values not yet delivered (reused per chunk)
	frame    []byte    // reused compressed-frame buffer
	pos      int
	frameIdx int   // index of the next frame to read
	byteOff  int64 // container bytes consumed so far
	opened   bool
	done     bool
	err      error
}

// NewReader returns a streaming decompressor reading from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Read fills p with decompressed values, returning the count. It returns
// io.EOF after the final chunk is exhausted.
func (sr *Reader) Read(p []float32) (int, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	total := 0
	for total < len(p) {
		if sr.pos == len(sr.buf) {
			if err := sr.nextChunk(); err != nil {
				if total > 0 && err == io.EOF {
					return total, nil
				}
				return total, err
			}
		}
		n := copy(p[total:], sr.buf[sr.pos:])
		sr.pos += n
		total += n
	}
	return total, nil
}

// ReadAll decompresses the remainder of the stream.
func (sr *Reader) ReadAll() ([]float32, error) {
	var out []float32
	for {
		if sr.pos < len(sr.buf) {
			out = append(out, sr.buf[sr.pos:]...)
			sr.pos = len(sr.buf)
		}
		if err := sr.nextChunk(); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
	}
}

// frameErr records a frame-level failure: it counts it, pins it as the
// Reader's terminal error, and wraps it with the frame index and the byte
// offset of the frame's length prefix.
func (sr *Reader) frameErr(off int64, cause error) error {
	telemetry.StreamFrameErrors.Inc()
	sr.err = &FrameError{Frame: sr.frameIdx, Offset: off, Err: cause}
	return sr.err
}

func (sr *Reader) nextChunk() error {
	if sr.done {
		return io.EOF
	}
	if !sr.opened {
		var hdr [5]byte
		if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
			telemetry.StreamFrameErrors.Inc()
			sr.err = fmt.Errorf("%w: container header: %w", ErrStream, err)
			return sr.err
		}
		if string(hdr[:4]) != streamMagic || hdr[4] != streamVersion {
			telemetry.StreamFrameErrors.Inc()
			sr.err = ErrStream
			return sr.err
		}
		sr.opened = true
		sr.byteOff = 5
	}
	frameOff := sr.byteOff // offset of this frame's u32 length prefix
	var lenBuf [4]byte
	if _, err := io.ReadFull(sr.r, lenBuf[:]); err != nil {
		return sr.frameErr(frameOff, fmt.Errorf("truncated frame header: %w", err))
	}
	sr.byteOff += 4
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen == 0 {
		sr.done = true
		return io.EOF
	}
	if frameLen > 1<<31 {
		return sr.frameErr(frameOff, fmt.Errorf("frame length %d out of range", frameLen))
	}
	frame, got, err := readFrameBody(sr.r, sr.frame, int(frameLen))
	sr.frame = frame
	sr.byteOff += int64(got)
	if err != nil {
		return sr.frameErr(frameOff, fmt.Errorf("truncated frame (%d of %d payload bytes): %w",
			got, frameLen, err))
	}
	vals, err := DecompressInto(sr.buf[:0], frame)
	if err != nil {
		return sr.frameErr(frameOff, err)
	}
	sr.buf = vals
	sr.pos = 0
	sr.frameIdx++
	if telemetry.Enabled() {
		telemetry.StreamFramesRead.Inc()
	}
	return nil
}

// readFrameBody reads frameLen payload bytes from r directly into the
// (reused) dst buffer, growing it incrementally so a forged length prefix
// cannot force a huge up-front allocation: capacity starts at ≤1 MiB and
// doubles only as real bytes arrive, so memory stays proportional to what
// was actually received. It returns the filled buffer, the payload bytes
// received (= len of the returned buffer), and any read error. Shared by
// the serial Reader and the PipeReader prefetcher.
func readFrameBody(r io.Reader, dst []byte, frameLen int) ([]byte, int, error) {
	const step = 1 << 20
	frame := dst[:0]
	if cap(frame) < min(frameLen, step) {
		frame = make([]byte, 0, min(frameLen, step))
	}
	for len(frame) < frameLen {
		off := len(frame)
		avail := cap(frame) - off
		if avail == 0 {
			newCap := min(max(2*cap(frame), step), frameLen)
			grown := make([]byte, off, newCap)
			copy(grown, frame)
			frame = grown
			avail = newCap - off
		}
		n := min(frameLen-off, avail)
		got, err := io.ReadFull(r, frame[off:off+n])
		frame = frame[:off+got]
		if err != nil {
			return frame, len(frame), err
		}
	}
	return frame, len(frame), nil
}

// --- random access ---------------------------------------------------------

// DecompressRange reconstructs values [lo, hi) from a (non-streaming)
// compressed buffer, decoding only the blocks that overlap the range —
// random access enabled by the embedded per-block size array.
func DecompressRange(comp []byte, lo, hi int) ([]float32, error) {
	return core.DecompressFloat32Range(comp, lo, hi)
}

// DecompressFloat64Range is the float64 analogue of DecompressRange.
func DecompressFloat64Range(comp []byte, lo, hi int) ([]float64, error) {
	return core.DecompressFloat64Range(comp, lo, hi)
}

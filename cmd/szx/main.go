// Command szx is the command-line interface to the SZx compressor: it
// compresses raw little-endian float32/float64 arrays into SZx streams and
// back, mirroring the original szx CLI's basic workflow.
//
// Usage:
//
//	szx -z -i data.f32 -o data.szx -e 1e-3 [-rel] [-b 128] [-t f32|f64] [-w N]
//	szx -z -i data.f32 -o data.szx -ratio 8 [-b 128] [-t f32|f64] [-w N]
//	szx -z -stream -i data.f32 -o data.szxs [-chunk N] [-w N]
//	szx -x -i data.szx -o data.out [-w N]
//	szx -info -i data.szx
//
// -ratio selects fixed-ratio mode: instead of an error bound, give a target
// compression ratio and the codec searches (a few sampled probes) for the
// absolute bound that achieves it. -ratio and -e are mutually exclusive,
// and -rel does not combine with -ratio. The converged bound is recorded in
// the stream header, so -info and decompression report it like any other
// absolute bound.
//
// With -stream, -z emits a streaming container ("SZXS") through the
// pipelined engine: the input file is read chunk by chunk, chunks compress
// concurrently on -w workers, and frames are written as they complete, so
// memory stays bounded by the pipeline window instead of the file size
// (float32 only). -x detects the container magic and picks the matching
// path automatically — streaming containers decode through the pipelined
// reader straight to the output file, single-buffer streams through the
// parallel block decoder.
//
// Observability: -stats enables codec telemetry and prints a counter report
// to stderr when the command finishes; -stats-http ADDR additionally serves
// /metrics (Prometheus text), /debug/vars (expvar JSON), and /debug/pprof
// on ADDR for the lifetime of the process.
//
// The block kernels dispatch to the fastest implementation the CPU supports
// (AVX2 on capable amd64 hosts, scalar Go otherwise); set
// SZX_KERNELS=generic or SZX_KERNELS=avx2 to force a set. The compressed
// output is byte-identical regardless, and the -stats report names the
// active set.
//
// Exit codes are distinct so scripts can tell failure classes apart:
// 0 success, 2 usage error (bad flags or parameters), 3 I/O error
// (missing or unwritable files), 4 corrupt or mistyped input stream.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	szx "repro"
	"repro/telemetry"
)

// Exit codes. The flag package itself exits 2 on unparsable flags, so
// exitUsage doubles as "bad parameter value" for consistency.
const (
	exitOK      = 0
	exitUsage   = 2 // bad flag combination or invalid codec parameters
	exitIO      = 3 // filesystem or network failure
	exitCorrupt = 4 // input stream failed validation during decode
)

// exitCodeFor classifies an error from the codec or the filesystem into
// one of the documented exit codes.
func exitCodeFor(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, szx.ErrBadMagic),
		errors.Is(err, szx.ErrBadVersion),
		errors.Is(err, szx.ErrCorrupt),
		errors.Is(err, szx.ErrStream),
		errors.Is(err, szx.ErrWrongType),
		errors.Is(err, io.ErrUnexpectedEOF):
		return exitCorrupt
	case errors.Is(err, szx.ErrBadOptions),
		errors.Is(err, szx.ErrErrBound),
		errors.Is(err, szx.ErrBlockSize),
		errors.Is(err, szx.ErrDegenerateRange):
		return exitUsage
	default:
		return exitIO
	}
}

func main() {
	var (
		compress   = flag.Bool("z", false, "compress")
		decompress = flag.Bool("x", false, "decompress")
		info       = flag.Bool("info", false, "print stream header and exit")
		stream     = flag.Bool("stream", false, "with -z: write a streaming container (SZXS) with bounded memory")
		chunkVals  = flag.Int("chunk", szx.DefaultChunkValues, "with -z -stream: values per chunk")
		in         = flag.String("i", "", "input file")
		out        = flag.String("o", "", "output file")
		bound      = flag.Float64("e", 1e-3, "error bound")
		ratio      = flag.Float64("ratio", 0, "fixed-ratio mode: target compression ratio >= 1 (mutually exclusive with -e and -rel)")
		rel        = flag.Bool("rel", false, "interpret -e as value-range-relative")
		blockSize  = flag.Int("b", szx.DefaultBlockSize, "block size")
		dtype      = flag.String("t", "f32", "element type: f32 or f64")
		workers    = flag.Int("w", szx.WorkersSerial, "workers (-1 = all CPUs)")
		quiet      = flag.Bool("q", false, "suppress statistics output")
		stats      = flag.Bool("stats", false, "enable telemetry and print a report to stderr at exit")
		statsHTTP  = flag.String("stats-http", "", "enable telemetry and serve /metrics, /debug/vars, /debug/pprof on this address")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: szx (-z|-x|-info) -i FILE [-o FILE] [options]\n\noptions:\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nenvironment:\n"+
			"  SZX_KERNELS=generic|avx2  force the block-kernel implementation set\n"+
			"                            (default: CPU feature detection; output is\n"+
			"                            byte-identical either way, -stats shows the\n"+
			"                            active set)\n")
		fmt.Fprintf(out, "\nexit codes:\n"+
			"  0  success\n"+
			"  2  usage error: bad flags or invalid codec parameters\n"+
			"  3  I/O error: missing, unreadable, or unwritable files\n"+
			"  4  corrupt input: stream failed validation during decode\n")
	}
	flag.Parse()

	if *stats || *statsHTTP != "" {
		telemetry.Enable()
		telemetry.PublishExpvar()
		if *statsHTTP != "" {
			ln, err := net.Listen("tcp", *statsHTTP)
			if err != nil {
				fail(exitIO, "%v", err)
			}
			fmt.Fprintf(os.Stderr, "szx: serving stats on http://%s/metrics\n", ln.Addr())
			go func() { _ = http.Serve(ln, telemetry.DebugHandler()) }()
		}
		if *stats {
			defer func() { fmt.Fprint(os.Stderr, telemetry.Report()) }()
		}
	}

	if *in == "" {
		fail(exitUsage, "missing -i input file")
	}

	switch {
	case *info:
		runInfo(*in)
	case *compress:
		if *out == "" {
			fail(exitUsage, "missing -o output file")
		}
		mode := szx.BoundAbsolute
		if *rel {
			mode = szx.BoundRelative
		}
		opt := szx.Options{ErrorBound: *bound, Mode: mode, BlockSize: *blockSize, Workers: *workers}
		if *ratio > 0 {
			// -e always has a value (its default); only an explicit -e
			// conflicts with -ratio.
			explicitBound := false
			flag.Visit(func(f *flag.Flag) { explicitBound = explicitBound || f.Name == "e" })
			if explicitBound {
				fail(exitUsage, "-ratio and -e are mutually exclusive")
			}
			if *rel {
				fail(exitUsage, "-ratio resolves its own absolute bound; it does not combine with -rel")
			}
			opt.ErrorBound = 0
			opt.Mode = szx.BoundAbsolute
			opt.TargetRatio = *ratio
		}
		if *stream {
			if *dtype != "f32" {
				fail(exitUsage, "-stream supports -t f32 only")
			}
			runStreamCompress(*in, *out, opt, *chunkVals, *workers, *quiet)
			return
		}
		runCompress(*in, *out, opt, *dtype, *quiet)
	case *decompress:
		if *out == "" {
			fail(exitUsage, "missing -o output file")
		}
		runDecompress(*in, *out, *workers, *quiet)
	default:
		fail(exitUsage, "one of -z, -x, -info is required")
	}
}

// runInfo prints the header of either container flavor without decoding
// payloads: streaming containers are scanned frame by frame (length
// prefixes only), single-buffer streams go through szx.Info.
func runInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(5)
	if err == nil && string(magic[:4]) == "SZXS" {
		version := magic[4] // Peek's slice is invalidated by Discard
		if _, err := br.Discard(5); err != nil {
			fail(exitIO, "%v", err)
		}
		frames, payload := 0, int64(0)
		var firstFrame []byte
		for {
			var lenBuf [4]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				fail(exitCorrupt, "truncated streaming container after %d frames: %v", frames, err)
			}
			n := binary.LittleEndian.Uint32(lenBuf[:])
			if n == 0 {
				break
			}
			if frames == 0 {
				// Keep the first frame: its embedded SZx header records the
				// effective error bound (the converged bound, in fixed-ratio
				// mode) for the whole stream.
				firstFrame = make([]byte, n)
				if _, err := io.ReadFull(br, firstFrame); err != nil {
					fail(exitCorrupt, "truncated streaming container after %d frames: %v", frames, err)
				}
			} else if _, err := br.Discard(int(n)); err != nil {
				fail(exitCorrupt, "truncated streaming container after %d frames: %v", frames, err)
			}
			frames++
			payload += int64(n)
		}
		fmt.Printf("container=SZXS version=%d frames=%d payloadBytes=%d", version, frames, payload)
		if h, herr := szx.Info(firstFrame); herr == nil {
			fmt.Printf(" type=%v blockSize=%d errBound=%g", h.Type, h.BlockSize, h.ErrBound)
		}
		fmt.Println()
		return
	}
	raw, err := io.ReadAll(br)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	h, err := szx.Info(raw)
	if err != nil {
		failErr(err)
	}
	fmt.Printf("type=%v n=%d blockSize=%d errBound=%g blocks=%d\n",
		h.Type, h.N, h.BlockSize, h.ErrBound, h.NumBlocks())
}

// runStreamCompress pumps the input file through the pipelined streaming
// engine: reads one chunk of raw float32 bytes at a time, so peak memory is
// the pipeline window (parallelism+2 chunks), not the file size.
func runStreamCompress(inPath, outPath string, opt szx.Options, chunkVals, workers int, quiet bool) {
	if chunkVals <= 0 {
		chunkVals = szx.DefaultChunkValues
	}
	inf, err := os.Open(inPath)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	defer inf.Close()
	outf, err := os.Create(outPath)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	bw := bufio.NewWriterSize(outf, 1<<20)
	cw := &countWriter{w: bw}
	pw := szx.NewPipeWriter(cw, opt, chunkVals, workers)

	start := time.Now()
	br := bufio.NewReaderSize(inf, 1<<20)
	rawChunk := make([]byte, 4*chunkVals)
	vals := make([]float32, chunkVals)
	var inBytes int64
	for {
		n, rerr := io.ReadFull(br, rawChunk)
		if n > 0 {
			if rem := n % 4; rem != 0 {
				fail(exitCorrupt, "input is not a whole number of float32 values (%d trailing bytes)", rem)
			}
			inBytes += int64(n)
			nv := n / 4
			for i := 0; i < nv; i++ {
				vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(rawChunk[4*i:]))
			}
			if werr := pw.Write(vals[:nv]); werr != nil {
				failErr(werr)
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			fail(exitIO, "%v", rerr)
		}
	}
	if err := pw.Close(); err != nil {
		failErr(err)
	}
	if err := bw.Flush(); err != nil {
		fail(exitIO, "%v", err)
	}
	if err := outf.Close(); err != nil {
		fail(exitIO, "%v", err)
	}
	elapsed := time.Since(start)
	if !quiet {
		fmt.Printf("stream-compressed %d -> %d bytes (CR %.2f) in %v (%.1f MB/s)\n",
			inBytes, cw.n, float64(inBytes)/float64(cw.n), elapsed,
			float64(inBytes)/elapsed.Seconds()/1e6)
	}
}

func runCompress(inPath, outPath string, opt szx.Options, dtype string, quiet bool) {
	raw, err := os.ReadFile(inPath)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	var comp []byte
	var st szx.Stats
	start := time.Now()
	switch dtype {
	case "f32":
		comp, st, err = szx.CompressStats(bytesToF32(raw), opt)
	case "f64":
		comp, st, err = szx.CompressFloat64Stats(bytesToF64(raw), opt)
	default:
		fail(exitUsage, "unknown type %q", dtype)
	}
	elapsed := time.Since(start)
	if err != nil {
		failErr(err)
	}
	if err := os.WriteFile(outPath, comp, 0o644); err != nil {
		fail(exitIO, "%v", err)
	}
	if !quiet {
		fmt.Printf("compressed %d -> %d bytes (CR %.2f) in %v (%.1f MB/s)\n",
			len(raw), len(comp), float64(len(raw))/float64(len(comp)), elapsed,
			float64(len(raw))/elapsed.Seconds()/1e6)
		if st.TargetRatio > 0 {
			fmt.Printf("fixed-ratio: target %.3g achieved %.3g bound %g probes %d converged %v\n",
				st.TargetRatio, st.Ratio(), st.EffectiveBound, st.RatioProbes, st.RatioConverged)
		}
	}
}

func runDecompress(inPath, outPath string, workers int, quiet bool) {
	inf, err := os.Open(inPath)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	defer inf.Close()
	br := bufio.NewReaderSize(inf, 1<<20)
	magic, _ := br.Peek(4)
	if string(magic) == "SZXS" {
		runStreamDecompress(br, inPath, outPath, workers, quiet)
		return
	}
	raw, err := io.ReadAll(br)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	h, err := szx.Info(raw)
	if err != nil {
		failErr(err)
	}
	start := time.Now()
	var payload []byte
	if h.Type == szx.TypeFloat64 {
		vals, derr := szx.DecompressFloat64Parallel(raw, workers)
		if derr != nil {
			failErr(derr)
		}
		payload = f64ToBytes(vals)
	} else {
		vals, derr := szx.DecompressParallel(raw, workers)
		if derr != nil {
			failErr(derr)
		}
		payload = f32ToBytes(vals)
	}
	elapsed := time.Since(start)
	if err := os.WriteFile(outPath, payload, 0o644); err != nil {
		fail(exitIO, "%v", err)
	}
	if !quiet {
		fmt.Printf("decompressed %d -> %d bytes in %v (%.1f MB/s)\n",
			len(raw), len(payload), elapsed,
			float64(len(payload))/elapsed.Seconds()/1e6)
	}
}

// runStreamDecompress drains a streaming container through the pipelined
// reader, writing decoded values to the output file as chunks complete —
// frames prefetch and decode concurrently ahead of the file writes.
func runStreamDecompress(br io.Reader, inPath, outPath string, workers int, quiet bool) {
	outf, err := os.Create(outPath)
	if err != nil {
		fail(exitIO, "%v", err)
	}
	bw := bufio.NewWriterSize(outf, 1<<20)
	pr := szx.NewPipeReader(br, workers)
	defer pr.Close()

	start := time.Now()
	vals := make([]float32, 1<<16)
	rawOut := make([]byte, 4*len(vals))
	var outBytes int64
	for {
		n, rerr := pr.Read(vals)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(rawOut[4*i:], math.Float32bits(vals[i]))
		}
		if n > 0 {
			if _, werr := bw.Write(rawOut[:4*n]); werr != nil {
				fail(exitIO, "%v", werr)
			}
			outBytes += int64(4 * n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			failErr(rerr)
		}
	}
	if err := bw.Flush(); err != nil {
		fail(exitIO, "%v", err)
	}
	if err := outf.Close(); err != nil {
		fail(exitIO, "%v", err)
	}
	elapsed := time.Since(start)
	if !quiet {
		var inBytes int64
		if st, serr := os.Stat(inPath); serr == nil {
			inBytes = st.Size()
		}
		fmt.Printf("stream-decompressed %d -> %d bytes in %v (%.1f MB/s)\n",
			inBytes, outBytes, elapsed,
			float64(outBytes)/elapsed.Seconds()/1e6)
	}
}

// countWriter counts bytes passed through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// fail prints a message and exits with the given documented code.
func fail(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "szx: "+format+"\n", args...)
	os.Exit(code)
}

// failErr classifies err (corrupt input vs usage vs I/O) and exits with
// the matching code.
func failErr(err error) { fail(exitCodeFor(err), "%v", err) }

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func f64ToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// Command szx is the command-line interface to the SZx compressor: it
// compresses raw little-endian float32/float64 arrays into SZx streams and
// back, mirroring the original szx CLI's basic workflow.
//
// Usage:
//
//	szx -z -i data.f32 -o data.szx -e 1e-3 [-rel] [-b 128] [-t f32|f64] [-w N]
//	szx -x -i data.szx -o data.out [-w N]
//	szx -info -i data.szx
//
// Observability: -stats enables codec telemetry and prints a counter report
// to stderr when the command finishes; -stats-http ADDR additionally serves
// /metrics (Prometheus text), /debug/vars (expvar JSON), and /debug/pprof
// on ADDR for the lifetime of the process.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	szx "repro"
	"repro/telemetry"
)

func main() {
	var (
		compress   = flag.Bool("z", false, "compress")
		decompress = flag.Bool("x", false, "decompress")
		info       = flag.Bool("info", false, "print stream header and exit")
		in         = flag.String("i", "", "input file")
		out        = flag.String("o", "", "output file")
		bound      = flag.Float64("e", 1e-3, "error bound")
		rel        = flag.Bool("rel", false, "interpret -e as value-range-relative")
		blockSize  = flag.Int("b", szx.DefaultBlockSize, "block size")
		dtype      = flag.String("t", "f32", "element type: f32 or f64")
		workers    = flag.Int("w", szx.WorkersSerial, "workers (-1 = all CPUs)")
		quiet      = flag.Bool("q", false, "suppress statistics output")
		stats      = flag.Bool("stats", false, "enable telemetry and print a report to stderr at exit")
		statsHTTP  = flag.String("stats-http", "", "enable telemetry and serve /metrics, /debug/vars, /debug/pprof on this address")
	)
	flag.Parse()

	if *stats || *statsHTTP != "" {
		telemetry.Enable()
		telemetry.PublishExpvar()
		if *statsHTTP != "" {
			ln, err := net.Listen("tcp", *statsHTTP)
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "szx: serving stats on http://%s/metrics\n", ln.Addr())
			go func() { _ = http.Serve(ln, telemetry.DebugHandler()) }()
		}
		if *stats {
			defer func() { fmt.Fprint(os.Stderr, telemetry.Report()) }()
		}
	}

	if *in == "" {
		fail("missing -i input file")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fail("%v", err)
	}

	switch {
	case *info:
		h, err := szx.Info(raw)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("type=%v n=%d blockSize=%d errBound=%g blocks=%d\n",
			h.Type, h.N, h.BlockSize, h.ErrBound, h.NumBlocks())
	case *compress:
		if *out == "" {
			fail("missing -o output file")
		}
		mode := szx.BoundAbsolute
		if *rel {
			mode = szx.BoundRelative
		}
		opt := szx.Options{ErrorBound: *bound, Mode: mode, BlockSize: *blockSize, Workers: *workers}
		var comp []byte
		start := time.Now()
		switch *dtype {
		case "f32":
			comp, err = szx.Compress(bytesToF32(raw), opt)
		case "f64":
			comp, err = szx.CompressFloat64(bytesToF64(raw), opt)
		default:
			fail("unknown type %q", *dtype)
		}
		elapsed := time.Since(start)
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*out, comp, 0o644); err != nil {
			fail("%v", err)
		}
		if !*quiet {
			fmt.Printf("compressed %d -> %d bytes (CR %.2f) in %v (%.1f MB/s)\n",
				len(raw), len(comp), float64(len(raw))/float64(len(comp)), elapsed,
				float64(len(raw))/elapsed.Seconds()/1e6)
		}
	case *decompress:
		if *out == "" {
			fail("missing -o output file")
		}
		h, err := szx.Info(raw)
		if err != nil {
			fail("%v", err)
		}
		start := time.Now()
		var payload []byte
		if h.Type == szx.TypeFloat64 {
			vals, derr := szx.DecompressFloat64Parallel(raw, *workers)
			if derr != nil {
				fail("%v", derr)
			}
			payload = f64ToBytes(vals)
		} else {
			vals, derr := szx.DecompressParallel(raw, *workers)
			if derr != nil {
				fail("%v", derr)
			}
			payload = f32ToBytes(vals)
		}
		elapsed := time.Since(start)
		if err := os.WriteFile(*out, payload, 0o644); err != nil {
			fail("%v", err)
		}
		if !*quiet {
			fmt.Printf("decompressed %d -> %d bytes in %v (%.1f MB/s)\n",
				len(raw), len(payload), elapsed,
				float64(len(payload))/elapsed.Seconds()/1e6)
		}
	default:
		fail("one of -z, -x, -info is required")
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "szx: "+format+"\n", args...)
	os.Exit(1)
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func f64ToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

package main

import (
	"bytes"
	"errors"
	"io"
	"testing"

	szx "repro"
)

// TestExitCodeClassification pins the error-to-exit-code mapping that
// scripts depend on: corrupt input is distinguishable from a missing file,
// which is distinguishable from bad parameters.
func TestExitCodeClassification(t *testing.T) {
	// A genuine decode failure from the codec.
	_, corruptErr := szx.Decompress([]byte("definitely not a stream"))
	if corruptErr == nil {
		t.Fatal("expected decode error")
	}
	// A genuine streaming-container failure, wrapped in FrameError.
	var buf bytes.Buffer
	w := szx.NewWriter(&buf, szx.Options{ErrorBound: 1e-3}, 64)
	_ = w.Write(make([]float32, 200))
	_ = w.Close()
	_, streamErr := szx.NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()/2])).ReadAll()
	if streamErr == nil {
		t.Fatal("expected stream error")
	}
	// A genuine parameter failure.
	_, boundErr := szx.Compress(make([]float32, 10), szx.Options{ErrorBound: -1})
	if boundErr == nil {
		t.Fatal("expected bound error")
	}
	// A genuine options failure from fixed-ratio validation.
	_, ratioErr := szx.Compress(make([]float32, 10), szx.Options{TargetRatio: 0.5})
	if ratioErr == nil {
		t.Fatal("expected ratio error")
	}

	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"corrupt stream", corruptErr, exitCorrupt},
		{"bad magic", szx.ErrBadMagic, exitCorrupt},
		{"bad version", szx.ErrBadVersion, exitCorrupt},
		{"wrong type", szx.ErrWrongType, exitCorrupt},
		{"container frame error", streamErr, exitCorrupt},
		{"truncated read", io.ErrUnexpectedEOF, exitCorrupt},
		{"bad bound", boundErr, exitUsage},
		{"bad options sentinel", szx.ErrBadOptions, exitUsage},
		{"bad target ratio", ratioErr, exitUsage},
		{"bad block size", szx.ErrBlockSize, exitUsage},
		{"degenerate range", szx.ErrDegenerateRange, exitUsage},
		{"file missing", errors.New("open /no/such/file: no such file or directory"), exitIO},
	} {
		if got := exitCodeFor(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}

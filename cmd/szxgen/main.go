// Command szxgen materializes the synthetic application datasets used by
// the benchmark harness as raw little-endian float32 files, one per field,
// so they can be fed to the szx CLI or external tools.
//
// Usage:
//
//	szxgen -app miranda -scale 8 -seed 1 -out ./data
//	szxgen -app all -scale 16 -out ./data
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
)

func main() {
	var (
		app   = flag.String("app", "all", "application: cesm|hurricane|miranda|nyx|qmcpack|scale|all")
		scale = flag.Int("scale", 8, "grid divisor (1 = paper-size grids)")
		seed  = flag.Int64("seed", 20220627, "generator seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	gens := map[string]func(int, int64) datagen.App{
		"cesm":      datagen.CESM,
		"hurricane": datagen.Hurricane,
		"miranda":   datagen.Miranda,
		"nyx":       datagen.Nyx,
		"qmcpack":   datagen.QMCPack,
		"scale":     datagen.ScaleLetKF,
	}
	var apps []datagen.App
	if *app == "all" {
		apps = datagen.AllApps(*scale, *seed)
	} else if g, ok := gens[strings.ToLower(*app)]; ok {
		apps = []datagen.App{g(*scale, *seed)}
	} else {
		fmt.Fprintf(os.Stderr, "szxgen: unknown app %q\n", *app)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "szxgen: %v\n", err)
		os.Exit(1)
	}
	for _, a := range apps {
		for _, f := range a.Fields {
			dims := make([]string, len(f.Dims))
			for i, d := range f.Dims {
				dims[i] = fmt.Sprint(d)
			}
			name := fmt.Sprintf("%s_%s_%s.f32", sanitize(a.Name), sanitize(f.Name),
				strings.Join(dims, "x"))
			path := filepath.Join(*out, name)
			buf := make([]byte, 4*len(f.Data))
			for i, v := range f.Data {
				binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
			}
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "szxgen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d values)\n", path, len(f.Data))
		}
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

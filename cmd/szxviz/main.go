// Command szxviz regenerates the paper's visual artifacts: Fig. 1's
// field-smoothness gallery and Fig. 12's original-vs-reconstructed
// comparisons with per-pixel error maps, written as PGM/PPM images.
//
// Usage:
//
//	szxviz -out ./viz                 # all four Fig. 1 panels + Fig. 12 series
//	szxviz -out ./viz -rel 4e-3       # one extra Fig. 12 panel at this bound
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	szx "repro"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/render"
)

func main() {
	var (
		out   = flag.String("out", ".", "output directory")
		scale = flag.Int("scale", 8, "dataset grid divisor")
		seed  = flag.Int64("seed", 20220627, "dataset seed")
		rel   = flag.Float64("rel", 0, "extra Fig. 12 panel at this REL bound")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	// Fig. 1: smoothness gallery, one slice per application.
	panels := []struct {
		name  string
		field datagen.Field
	}{
		{"fig1a_miranda_pressure", datagen.Miranda(*scale, *seed).Fields[2]},
		{"fig1b_nyx_temperature", datagen.Nyx(*scale, *seed).Fields[2]},
		{"fig1c_qmcpack", datagen.QMCPack(*scale, *seed).Fields[0]},
		{"fig1d_hurricane_u", datagen.Hurricane(*scale, *seed).Fields[2]},
	}
	for _, p := range panels {
		slice, h, w := datagen.Slice2D(p.field)
		img, err := render.PPM(render.Normalize(slice, 0.01), h, w)
		if err != nil {
			fatal(err)
		}
		write(*out, p.name+".ppm", img)
	}

	// Fig. 12: Hurricane cloud field at three bounds, original vs
	// reconstructed plus an error map.
	rels := []float64{1e-3, 4e-3, 1e-2}
	if *rel > 0 {
		rels = append(rels, *rel)
	}
	field := datagen.Hurricane(*scale, *seed).Fields[0]
	slice, h, w := datagen.Slice2D(field)
	off := len(field.Data) / 2 / (h * w) * (h * w)
	for _, r := range rels {
		mn, mx := metrics.ValueRange(field.Data)
		abs := r * (mx - mn)
		comp, err := szx.Compress(field.Data, szx.Options{ErrorBound: abs})
		if err != nil {
			fatal(err)
		}
		dec, err := szx.Decompress(comp)
		if err != nil {
			fatal(err)
		}
		d, err := metrics.Measure(field.Data, dec)
		if err != nil {
			fatal(err)
		}
		ssim, err := metrics.SSIM(slice, dec[off:off+h*w], h, w)
		if err != nil {
			fatal(err)
		}
		cr := float64(4*len(field.Data)) / float64(len(comp))
		fmt.Printf("rel=%g: CR=%.1f PSNR=%.1f SSIM=%.3f\n", r, cr, d.PSNR, ssim)

		both, bh, bw, err := render.SideBySide(
			render.Normalize(slice, 0.01),
			render.Normalize(dec[off:off+h*w], 0.01), h, w)
		if err != nil {
			fatal(err)
		}
		img, err := render.PGM(both, bh, bw)
		if err != nil {
			fatal(err)
		}
		write(*out, fmt.Sprintf("fig12_rel%g_pair.pgm", r), img)

		em, err := render.ErrorMap(slice, dec[off:off+h*w], h, w, abs)
		if err != nil {
			fatal(err)
		}
		write(*out, fmt.Sprintf("fig12_rel%g_errmap.ppm", r), em)
	}
}

func write(dir, name string, data []byte) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "szxviz: %v\n", err)
	os.Exit(1)
}

// szxd is the SZx compression daemon: the service package behind a
// plain-HTTP listener (HTTP/1.1 and h2c, so gRPC-style multiplexed
// clients work without TLS), with graceful drain on SIGTERM/SIGINT.
//
//	szxd -addr :8080
//	curl -s --data-binary @data.f32 'localhost:8080/v1/compress?e=1e-3' > data.szx
//	curl -s --data-binary @data.szx  localhost:8080/v1/decompress        > data.out
//	curl -s localhost:8080/metrics | grep szx_service_
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/service"
	"repro/service/cluster"
	"repro/telemetry"
)

// peerList gathers the cluster seed list from -peers (comma-separated) and
// -peers-file (one address per line, #-comments allowed). Both may be set;
// duplicates are dropped later by the membership layer.
func peerList(peers, peersFile string) ([]string, error) {
	var out []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if peersFile != "" {
		data, err := os.ReadFile(peersFile)
		if err != nil {
			return nil, err
		}
		for line := range strings.Lines(string(data)) {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2x GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "max queued requests (0 = 4x max-inflight, <0 = no queue)")
		queueWait   = flag.Duration("queue-wait", 0, "max time a request waits for a slot (0 = 2s)")
		maxBody     = flag.Int64("max-body", 0, "max buffered request body bytes (0 = 1GiB)")
		errBound    = flag.Float64("e", 0, "default error bound when a request omits ?e= (0 = 1e-3)")
		maxWorkers  = flag.Int("max-workers", 0, "cap on per-request codec workers (0 = GOMAXPROCS)")
		chunk       = flag.Int("chunk", 0, "streaming chunk size in values (0 = library default)")
		maxBatch    = flag.Int("max-batch", 0, "max arrays per /v1/batch request (0 = 1024)")
		streamPar   = flag.Int("stream-workers", 0, "pipeline workers per streaming request (0 = 1)")
		drainWait   = flag.Duration("drain-wait", 30*time.Second, "max time to drain in-flight requests on shutdown")
		withPprof   = flag.Bool("pprof", false, "also serve /debug/pprof")
		codecStats  = flag.Bool("codec-stats", false, "enable per-block codec telemetry (adds hot-path counters)")
		tracing     = flag.Bool("trace", true, "request-scoped tracing and /debug/requests")
		traceRing   = flag.Int("trace-ring", 0, "retained traces at /debug/requests (0 = 256)")
		traceSample = flag.Int("trace-sample", 0, "keep 1 in N unremarkable traces (0 = 16, 1 = all, <0 = errors+slow only)")
		accessLog   = flag.Bool("access-log", false, "structured JSON access log on stderr")
		peers       = flag.String("peers", "", "comma-separated cluster peer addresses (host:port or URLs); enables cluster membership")
		peersFile   = flag.String("peers-file", "", "file with one cluster peer address per line (# comments allowed)")
		nodeID      = flag.String("node-id", "", "stable cluster node identity (default: random per process)")
		advertise   = flag.String("advertise", "", "this node's own address as it appears in the peer list (so it skips polling itself)")
		clusterPoll = flag.Duration("cluster-poll", 0, "cluster membership poll interval (0 = 1s)")
	)
	flag.Parse()

	// Codec-internal telemetry costs counter updates per block, so it stays
	// opt-in; the szx_service_* family is always live.
	if *codecStats {
		telemetry.Enable()
	}

	var alog *slog.Logger
	if *accessLog {
		alog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	srv := service.New(service.Config{
		MaxInFlight:       *maxInflight,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		MaxBodyBytes:      *maxBody,
		DefaultErrorBound: *errBound,
		MaxWorkers:        *maxWorkers,
		ChunkValues:       *chunk,
		MaxBatchArrays:    *maxBatch,
		StreamParallelism: *streamPar,
		DisableTracing:    !*tracing,
		TraceRing:         *traceRing,
		TraceSample:       *traceSample,
		AccessLog:         alog,
		NodeID:            *nodeID,
	})

	// Cluster membership: given a peer list, poll the fleet and expose the
	// peer view at /debug/cluster. The data plane is unchanged — membership
	// is observability plus the substrate client-side routing reads.
	seeds, err := peerList(*peers, *peersFile)
	if err != nil {
		log.Fatalf("szxd: reading -peers-file: %v", err)
	}
	var mem *cluster.Membership
	if len(seeds) > 0 {
		mem = cluster.New(cluster.Config{
			Self:         *advertise,
			Peers:        seeds,
			PollInterval: *clusterPoll,
			Logger:       slog.New(slog.NewTextHandler(os.Stderr, nil)),
		})
		mem.Start()
		defer mem.Stop()
	}

	handler := srv.Handler()
	if mem != nil {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("GET /debug/cluster", mem.Handler())
		handler = mux
	}
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	// Serve HTTP/1.1 and h2c on the one cleartext port: intra-cluster
	// callers get multiplexed streams without a TLS requirement.
	protocols := new(http.Protocols)
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true)
	hs := &http.Server{
		Addr:      *addr,
		Handler:   handler,
		Protocols: protocols,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	cfg := srv.Config()
	log.Printf("szxd listening on %s (inflight=%d queue=%d wait=%s)",
		*addr, cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait)
	if mem != nil {
		log.Printf("szxd: cluster node %s polling %d peer(s); view at /debug/cluster", srv.NodeID(), len(mem.Peers()))
	}

	select {
	case err := <-errCh:
		log.Fatalf("szxd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	// Drain order matters: flip readiness first so balancers stop sending
	// work, let in-flight requests finish, then close the listener.
	log.Printf("szxd: draining (max %s)", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "szxd: drain incomplete: %v (%d in flight)\n", err, srv.InFlight())
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Fatalf("szxd: shutdown: %v", err)
	}
	log.Print("szxd: drained, bye")
}

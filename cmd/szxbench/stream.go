package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	szx "repro"
	"repro/internal/pfs"
)

// Streaming A/B mode (-stream): measure end-to-end file dump/load through
// the serial streaming codec versus the pipelined engine, and through
// rate-limited sinks that model a parallel file system, then write a
// BENCH_STREAM.json snapshot in the same shape as BENCH_HOTPATH.json.
//
// Three sink flavors bound the story:
//
//   - File: a real temp file through bufio — what `szx -z -stream` does.
//   - PFS: an in-memory sink throttled to the per-rank Lustre bandwidth of
//     internal/pfs.ThetaFS (2 GB/s), isolating pipeline overlap from page
//     cache effects.
//   - Balanced: a sink throttled to this host's measured serial compress
//     rate — the regime where compute and I/O times are equal, where
//     overlap has the most to give (up to 2x even on one core, because the
//     sink's wait time is sleep, not CPU).

const streamBenchChunk = 1 << 16

type streamPair struct {
	Name         string  `json:"name"`
	SerialMBs    float64 `json:"serial_mb_s"`
	PipelinedMBs float64 `json:"pipelined_mb_s"`
	Speedup      float64 `json:"speedup"`
}

type streamReport struct {
	Date       string         `json:"date"`
	Goos       string         `json:"goos"`
	Goarch     string         `json:"goarch"`
	CPU        string         `json:"cpu"`
	Gomaxprocs int            `json:"gomaxprocs"`
	Note       string         `json:"note"`
	Commands   []string       `json:"commands"`
	Benchmarks []hotpathBench `json:"benchmarks"`
	Pairs      []streamPair   `json:"pairs"`
}

// throttledWriter models a sink with finite bandwidth: bytes are accepted
// instantly but the writer sleeps to hold the configured rate. The sleep
// releases the P, so a pipelined producer keeps compressing while the
// "transfer" is in flight — exactly the overlap a real PFS write gives.
type throttledWriter struct {
	bytesPerSec float64
	debt        time.Duration
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	t.debt += time.Duration(float64(len(p)) / t.bytesPerSec * 1e9)
	if t.debt >= time.Millisecond {
		time.Sleep(t.debt)
		t.debt = 0
	}
	return len(p), nil
}

// throttledReader is the source-side twin.
type throttledReader struct {
	r           io.Reader
	bytesPerSec float64
	debt        time.Duration
}

func (t *throttledReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	t.debt += time.Duration(float64(n) / t.bytesPerSec * 1e9)
	if t.debt >= time.Millisecond {
		time.Sleep(t.debt)
		t.debt = 0
	}
	return n, err
}

func runStream(outPath string, benchtime time.Duration) error {
	data := hotpathData(1 << 21) // 8 MiB of float32
	opt := szx.Options{ErrorBound: 1e-3}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // keep a real pipeline even on a single-P host
	}
	inBytes := int64(4 * len(data))

	// Container bytes for the read-side benchmarks.
	var enc bytes.Buffer
	sw := szx.NewWriter(&enc, opt, streamBenchChunk)
	if err := sw.Write(data); err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	blob := enc.Bytes()

	tmpDir, err := os.MkdirTemp("", "szxstream")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmpDir)
	filePath := filepath.Join(tmpDir, "bench.szxs")
	if err := os.WriteFile(filePath, blob, 0o644); err != nil {
		return err
	}

	writeSerial := func(w io.Writer) error {
		sw := szx.NewWriter(w, opt, streamBenchChunk)
		if err := sw.Write(data); err != nil {
			return err
		}
		return sw.Close()
	}
	writePipelined := func(w io.Writer) error {
		pw := szx.NewPipeWriter(w, opt, streamBenchChunk, workers)
		if err := pw.Write(data); err != nil {
			_ = pw.Close()
			return err
		}
		return pw.Close()
	}
	readSerial := func(r io.Reader) error {
		_, err := szx.NewReader(r).ReadAll()
		return err
	}
	readPipelined := func(r io.Reader) error {
		pr := szx.NewPipeReader(r, workers)
		_, err := pr.ReadAll()
		if cerr := pr.Close(); err == nil {
			err = cerr
		}
		return err
	}

	// The balanced sinks are paced so sink time equals compute time on this
	// host: the sink sees *compressed* bytes, so its rate is the measured
	// serial compute rate scaled by the compression ratio.
	serialRate := measureRate(func() error { return writeSerial(io.Discard) }, inBytes)
	decodeRate := measureRate(func() error { return readSerial(bytes.NewReader(blob)) }, inBytes)
	crScale := float64(len(blob)) / float64(inBytes)
	balancedWriteRate := serialRate * crScale
	balancedReadRate := decodeRate * crScale

	type spec struct {
		name string
		fn   func() error
	}
	mkFile := func(body func(io.Writer) error) func() error {
		return func() error {
			f, err := os.Create(filePath)
			if err != nil {
				return err
			}
			bw := bufio.NewWriterSize(f, 1<<20)
			if err := body(bw); err != nil {
				f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	mkReadFile := func(body func(io.Reader) error) func() error {
		return func() error {
			f, err := os.Open(filePath)
			if err != nil {
				return err
			}
			err = body(bufio.NewReaderSize(f, 1<<20))
			f.Close()
			return err
		}
	}
	pfsRate := pfs.ThetaFS.PerRankGBps * 1e9
	specs := []spec{
		{"StreamWriteFileSerial", mkFile(writeSerial)},
		{"StreamWriteFilePipelined", mkFile(writePipelined)},
		{"StreamReadFileSerial", mkReadFile(readSerial)},
		{"StreamReadFilePipelined", mkReadFile(readPipelined)},
		{"StreamWritePFSSerial", func() error {
			return writeSerial(&throttledWriter{bytesPerSec: pfsRate})
		}},
		{"StreamWritePFSPipelined", func() error {
			return writePipelined(&throttledWriter{bytesPerSec: pfsRate})
		}},
		{"StreamReadPFSSerial", func() error {
			return readSerial(&throttledReader{r: bytes.NewReader(blob), bytesPerSec: pfsRate})
		}},
		{"StreamReadPFSPipelined", func() error {
			return readPipelined(&throttledReader{r: bytes.NewReader(blob), bytesPerSec: pfsRate})
		}},
		{"StreamWriteBalancedSerial", func() error {
			return writeSerial(&throttledWriter{bytesPerSec: balancedWriteRate})
		}},
		{"StreamWriteBalancedPipelined", func() error {
			return writePipelined(&throttledWriter{bytesPerSec: balancedWriteRate})
		}},
		{"StreamReadBalancedSerial", func() error {
			return readSerial(&throttledReader{r: bytes.NewReader(blob), bytesPerSec: balancedReadRate})
		}},
		{"StreamReadBalancedPipelined", func() error {
			return readPipelined(&throttledReader{r: bytes.NewReader(blob), bytesPerSec: balancedReadRate})
		}},
	}

	rep := streamReport{
		Date:       time.Now().Format("2006-01-02"),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("Streaming dump/load A/B: serial Writer/Reader vs the pipelined "+
			"engine (workers=%d, chunk=%d values, 8 MiB input, bound 1e-3). File rows go "+
			"through a real temp file via bufio; PFS rows through a sink throttled to "+
			"internal/pfs ThetaFS per-rank bandwidth (%.1f GB/s); Balanced rows through a "+
			"sink paced so transfer time equals this host's measured compute time "+
			"(compress %.0f MB/s, decode %.0f MB/s on raw values) — the equal-compute-and-I/O regime where overlap peaks. This host has GOMAXPROCS=%d: "+
			"chunk compression cannot run truly in parallel, so File/PFS gains come purely "+
			"from overlapping compute with sink wait time, and the Balanced rows bound what "+
			"the engine gives when I/O time matches compute time. On multi-core hosts the "+
			"File rows additionally scale with worker count.",
			workers, streamBenchChunk, pfs.ThetaFS.PerRankGBps, serialRate/1e6, decodeRate/1e6, runtime.GOMAXPROCS(0)),
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -stream BENCH_STREAM.json -benchtime %s", benchtime),
			"scripts/bench_ab.sh <baseline-ref>",
		},
	}

	rounds := int(benchtime / time.Second)
	if rounds < 1 {
		rounds = 1
	}
	mbs := map[string]float64{}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "stream: %s...\n", s.name)
		var benchErr error
		bench := func(b *testing.B) {
			b.SetBytes(inBytes)
			for i := 0; i < b.N; i++ {
				if err := s.fn(); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		}
		r := testing.Benchmark(bench)
		for i := 1; i < rounds; i++ {
			if r2 := testing.Benchmark(bench); r2.NsPerOp() < r.NsPerOp() {
				r = r2
			}
		}
		if benchErr != nil {
			return fmt.Errorf("%s: %w", s.name, benchErr)
		}
		nsOp := r.NsPerOp()
		rate := float64(inBytes) / (float64(nsOp) / 1e9) / 1e6
		mbs[s.name] = rate
		rep.Benchmarks = append(rep.Benchmarks, hotpathBench{
			Name: s.name,
			NsOp: nsOp,
			MBs:  math.Round(rate*100) / 100,
		})
	}

	for _, base := range []string{"StreamWriteFile", "StreamReadFile", "StreamWritePFS", "StreamReadPFS", "StreamWriteBalanced", "StreamReadBalanced"} {
		s, p := mbs[base+"Serial"], mbs[base+"Pipelined"]
		if s <= 0 {
			continue
		}
		rep.Pairs = append(rep.Pairs, streamPair{
			Name:         base,
			SerialMBs:    math.Round(s*100) / 100,
			PipelinedMBs: math.Round(p*100) / 100,
			Speedup:      math.Round(p/s*100) / 100,
		})
	}

	var sb strings.Builder
	jenc := json.NewEncoder(&sb)
	jenc.SetIndent("", "  ")
	if err := jenc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

// measureRate times fn over enough repetitions to cover ~300ms and returns
// the observed bytes/sec.
func measureRate(fn func() error, nBytes int64) float64 {
	// Warm up once so one-time allocations don't skew the pacing rate.
	_ = fn()
	var reps int
	start := time.Now()
	for time.Since(start) < 300*time.Millisecond {
		_ = fn()
		reps++
	}
	elapsed := time.Since(start)
	if reps == 0 || elapsed <= 0 {
		return 1e9
	}
	return float64(nBytes) * float64(reps) / elapsed.Seconds()
}

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	szx "repro"
	"repro/internal/datagen"
)

// Fixed-ratio mode (-ratio): run the TargetRatio bound search over every
// field of the synthetic application corpus at a sweep of targets, and
// write a BENCH_RATIO.json snapshot — per-case probe counts, search time,
// and achieved-vs-target accuracy, plus corpus-level summary rates. The
// snapshot shape matches the other BENCH_*.json artifacts so
// scripts/bench_ab.sh can archive and diff it mechanically.

type ratioCase struct {
	App       string  `json:"app"`
	Field     string  `json:"field"`
	N         int     `json:"n"`
	Target    float64 `json:"target"`
	Achieved  float64 `json:"achieved"`
	Bound     float64 `json:"bound"`
	Probes    int     `json:"probes"`
	Converged bool    `json:"converged"`
	SearchUs  float64 `json:"search_us"`
}

type ratioReport struct {
	Date          string      `json:"date"`
	Goos          string      `json:"goos"`
	Goarch        string      `json:"goarch"`
	CPU           string      `json:"cpu"`
	Note          string      `json:"note"`
	Commands      []string    `json:"commands"`
	Targets       []float64   `json:"targets"`
	Cases         int         `json:"cases"`
	ConvergedRate float64     `json:"converged_rate"`
	MeanProbes    float64     `json:"mean_probes"`
	MaxProbes     int         `json:"max_probes"`
	MeanAbsErrPct float64     `json:"mean_abs_err_pct"`
	Results       []ratioCase `json:"results"`
}

func runRatio(outPath string, scale int, seed int64) error {
	targets := []float64{4, 8, 16}
	rep := ratioReport{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		Note: "fixed-ratio bound search over the synthetic corpus; " +
			"achieved is the realized compression ratio at the converged bound",
		Commands: []string{fmt.Sprintf("szxbench -ratio %s -scale %d -seed %d", outPath, scale, seed)},
		Targets:  targets,
	}

	var sumProbes, sumAbsErr float64
	converged := 0
	for _, app := range datagen.AllApps(scale, seed) {
		for _, f := range app.Fields {
			for _, target := range targets {
				opt := szx.Options{TargetRatio: target}
				start := time.Now()
				p, err := szx.ResolvePlan(f.Data, opt)
				searchUs := float64(time.Since(start).Nanoseconds()) / 1e3
				if err != nil {
					return fmt.Errorf("%s/%s target %g: %w", app.Name, f.Name, target, err)
				}
				comp, err := szx.Compress(f.Data, szx.Options{ErrorBound: p.Bound})
				if err != nil {
					return fmt.Errorf("%s/%s at resolved bound %g: %w", app.Name, f.Name, p.Bound, err)
				}
				achieved := float64(4*len(f.Data)) / float64(len(comp))
				rep.Results = append(rep.Results, ratioCase{
					App:       app.Name,
					Field:     f.Name,
					N:         len(f.Data),
					Target:    target,
					Achieved:  math.Round(achieved*1000) / 1000,
					Bound:     p.Bound,
					Probes:    p.Probes,
					Converged: p.Converged,
					SearchUs:  math.Round(searchUs*10) / 10,
				})
				rep.Cases++
				sumProbes += float64(p.Probes)
				sumAbsErr += math.Abs(achieved/target - 1)
				if p.Probes > rep.MaxProbes {
					rep.MaxProbes = p.Probes
				}
				if p.Converged {
					converged++
				}
			}
		}
	}
	if rep.Cases > 0 {
		rep.ConvergedRate = math.Round(float64(converged)/float64(rep.Cases)*1000) / 1000
		rep.MeanProbes = math.Round(sumProbes/float64(rep.Cases)*100) / 100
		rep.MeanAbsErrPct = math.Round(sumAbsErr/float64(rep.Cases)*100*10) / 10
	}

	var sb strings.Builder
	jenc := json.NewEncoder(&sb)
	jenc.SetIndent("", "  ")
	if err := jenc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

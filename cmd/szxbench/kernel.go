package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
)

// Kernel sweep mode (-kernel): microbenchmark the three dispatchable block
// kernels (stats, encode scan, decode scan) per implementation set and per
// float width, then A/B the end-to-end serial codec with the dispatched set
// against SZX_KERNELS=generic, writing a BENCH_KERNEL.json snapshot. The
// microbench workloads mirror internal/kernels/bench_test.go (same 128-value
// random-walk block, same reqLens) so numbers are comparable with the
// in-tree benches; the e2e workloads mirror BenchmarkCoreCompressIntoF32/64.

type kernelBench struct {
	Name      string             `json:"name"`
	NsBlock   map[string]float64 `json:"ns_block"` // impl name -> ns per 128-value block
	SpeedupVs string             `json:"speedup_vs,omitempty"`
	Speedup   float64            `json:"speedup,omitempty"`
}

type kernelE2E struct {
	Name    string             `json:"name"`
	MBs     map[string]float64 `json:"mb_s"` // "generic" / dispatched name -> MB/s
	Speedup float64            `json:"speedup,omitempty"`
}

type kernelReport struct {
	Date       string        `json:"date"`
	Goos       string        `json:"goos"`
	Goarch     string        `json:"goarch"`
	CPU        string        `json:"cpu"`
	Dispatched string        `json:"dispatched"`
	Available  []string      `json:"available"`
	Note       string        `json:"note"`
	Commands   []string      `json:"commands"`
	Kernels    []kernelBench `json:"kernels"`
	E2E        []kernelE2E   `json:"e2e"`
}

func runKernel(outPath string, benchtime time.Duration) error {
	rounds := int(benchtime / time.Second)
	if rounds < 1 {
		rounds = 1
	}
	best := func(fn func(b *testing.B)) float64 {
		r := testing.Benchmark(fn)
		for i := 1; i < rounds; i++ {
			if r2 := testing.Benchmark(fn); r2.NsPerOp() < r.NsPerOp() {
				r = r2
			}
		}
		return float64(r.NsPerOp())
	}

	const n = 128
	blk32 := make([]float32, n)
	blk64 := make([]float64, n)
	for i, v := range hotpathData(n) {
		blk32[i] = 95 + v
		blk64[i] = float64(blk32[i])
	}
	scr := kernels.GetScratch()
	defer kernels.PutScratch(scr)
	lead := make([]byte, (n+3)/4)
	mid := make([]byte, 8*n+8)
	out32 := make([]float32, n)
	out64 := make([]float64, n)
	gen32, _ := kernels.Lookup32("generic")
	gen64, _ := kernels.Lookup64("generic")
	ml32, _ := gen32.EncodeScan(lead, mid, blk32, 100, 18, false, 0, 0, scr)
	enc32 := append([]byte(nil), mid[:ml32]...)
	lead32 := append([]byte(nil), lead...)
	ml64, _ := gen64.EncodeScan(lead, mid, blk64, 100, 26, false, 0, 0, scr)
	enc64 := append([]byte(nil), mid[:ml64]...)
	lead64 := append([]byte(nil), lead...)

	dispatched := kernels.Active()
	rep := kernelReport{
		Date:       time.Now().Format("2006-01-02"),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel(),
		Dispatched: kernels.Detail(),
		Available:  kernels.Available(),
		Note: "Per-kernel ns per 128-value block (stats reduction, normalize+lead encode " +
			"scan at reqLen 18/26, packed-lead decode scan) for every implementation set " +
			"this host can run, plus the end-to-end serial codec A/B between the " +
			"dispatched set and SZX_KERNELS=generic (interleaved rounds, best-of kept). " +
			"Workloads mirror internal/kernels/bench_test.go and BenchmarkCoreCompressIntoF32/64.",
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -kernel BENCH_KERNEL.json -benchtime %s", benchtime),
			"go test -run '^$' -bench 'Stats|EncodeScan|DecodeScan' ./internal/kernels",
		},
	}

	type micro struct {
		name string
		fn   func(impl string) func(b *testing.B)
	}
	micros := []micro{
		{"stats/f32", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup32(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkF32, sinkF32b, sinkBool = k.Stats(blk32)
				}
			}
		}},
		{"stats/f64", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup64(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkF64, sinkF64b, sinkBool = k.Stats(blk64)
				}
			}
		}},
		{"encode_scan/f32", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup32(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkInt, sinkBool = k.EncodeScan(lead, mid, blk32, 100, 18, true, 0.01, 0.01, scr)
				}
			}
		}},
		{"encode_scan/f64", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup64(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkInt, sinkBool = k.EncodeScan(lead, mid, blk64, 100, 26, true, 0.01, 0.01, scr)
				}
			}
		}},
		{"decode_scan/f32", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup32(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkBool = k.DecodeScan(out32, lead32, enc32, 100, 18)
				}
			}
		}},
		{"decode_scan/f64", func(impl string) func(b *testing.B) {
			k, _ := kernels.Lookup64(impl)
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sinkBool = k.DecodeScan(out64, lead64, enc64, 100, 26)
				}
			}
		}},
	}
	for _, m := range micros {
		kb := kernelBench{Name: m.name, NsBlock: map[string]float64{}}
		for _, impl := range kernels.Available() {
			fmt.Fprintf(os.Stderr, "kernel: %s %s...\n", m.name, impl)
			kb.NsBlock[impl] = best(m.fn(impl))
		}
		if g, ok := kb.NsBlock["generic"]; ok && dispatched != "generic" {
			if d, ok := kb.NsBlock[dispatched]; ok && d > 0 {
				kb.SpeedupVs = "generic"
				kb.Speedup = math.Round(g/d*100) / 100
			}
		}
		rep.Kernels = append(rep.Kernels, kb)
	}

	// End-to-end serial A/B: the dispatched set vs generic, swapped via the
	// same hook the tests use, interleaved per round so machine drift hits
	// both sides equally.
	f32 := hotpathData(1 << 21)
	f64 := hotpathData64(1 << 20)
	comp32, err := core.CompressFloat32(f32, 1e-3, core.Options{})
	if err != nil {
		return err
	}
	comp64, err := core.CompressFloat64(f64, 1e-6, core.Options{})
	if err != nil {
		return err
	}
	type e2e struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}
	e2es := []e2e{
		{"CompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []byte
			var err error
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f32, 1e-3, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DecompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []float32
			var err error
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"CompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []byte
			var err error
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f64, 1e-6, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DecompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []float64
			var err error
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp64); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	impls := []string{"generic"}
	if dispatched != "generic" {
		impls = append(impls, dispatched)
	}
	for _, s := range e2es {
		ke := kernelE2E{Name: s.name, MBs: map[string]float64{}}
		bestNs := map[string]float64{}
		for round := 0; round < rounds; round++ {
			for _, impl := range impls {
				fmt.Fprintf(os.Stderr, "kernel: e2e %s %s round %d/%d...\n", s.name, impl, round+1, rounds)
				restore, err := kernels.SetActiveForTesting(impl)
				if err != nil {
					return err
				}
				r := testing.Benchmark(func(b *testing.B) {
					b.SetBytes(s.bytes)
					s.fn(b)
				})
				restore()
				ns := float64(r.NsPerOp())
				if prev, ok := bestNs[impl]; !ok || ns < prev {
					bestNs[impl] = ns
				}
			}
		}
		for impl, ns := range bestNs {
			ke.MBs[impl] = math.Round(float64(s.bytes)/(ns/1e9)/1e6*100) / 100
		}
		if dispatched != "generic" && bestNs[dispatched] > 0 {
			ke.Speedup = math.Round(bestNs["generic"]/bestNs[dispatched]*100) / 100
		}
		rep.E2E = append(rep.E2E, ke)
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

var (
	sinkF32, sinkF32b float32
	sinkF64, sinkF64b float64
	sinkBool          bool
	sinkInt           int
)

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// Hot-path A/B mode: rerun the codec's core throughput benchmarks through
// testing.Benchmark and emit a machine-readable snapshot in the same shape
// as BENCH_REUSE.json, so successive snapshots (and scripts/bench_ab.sh)
// can be diffed mechanically. The workloads mirror internal/core's
// BenchmarkCore* exactly — same generator, sizes, and bounds — so numbers
// are comparable against both the in-tree benches and older snapshots.

type hotpathBench struct {
	Name     string  `json:"name"`
	NsOp     int64   `json:"ns_op"`
	MBs      float64 `json:"mb_s"`
	AllocsOp *int64  `json:"allocs_op,omitempty"`
}

type hotpathReport struct {
	Date         string         `json:"date"`
	Goos         string         `json:"goos"`
	Goarch       string         `json:"goarch"`
	CPU          string         `json:"cpu"`
	Note         string         `json:"note"`
	Commands     []string       `json:"commands"`
	Benchmarks   []hotpathBench `json:"benchmarks"`
	SeedBaseline []hotpathBench `json:"seed_baseline"`
}

// hotpathData mirrors benchData in internal/core/bench_test.go: a smooth
// random walk plus a sinusoid, mostly nonconstant blocks at 1e-3.
func hotpathData(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float32, n)
	v := 5.0
	for i := range out {
		v += 0.1 * (rng.Float64() - 0.5)
		out[i] = float32(v + 2*math.Sin(float64(i)/40))
	}
	return out
}

func hotpathData64(n int) []float64 {
	d32 := hotpathData(n)
	out := make([]float64, n)
	for i, v := range d32 {
		out[i] = float64(v)
	}
	return out
}

func runHotpath(outPath string, benchtime time.Duration) error {
	f32 := hotpathData(1 << 21)
	f64 := hotpathData64(1 << 20)
	comp32, err := core.CompressFloat32(f32, 1e-3, core.Options{})
	if err != nil {
		return err
	}
	comp64, err := core.CompressFloat64(f64, 1e-6, core.Options{})
	if err != nil {
		return err
	}

	type spec struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}
	specs := []spec{
		{"BenchmarkCoreCompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f32, 1e-3, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreDecompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []float32
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreCompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f64, 1e-6, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreDecompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []float64
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp64); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreCompressParallelIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressParallelInto(dst[:0], f32, 1e-3, core.Options{}, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreDecompressParallelIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []float32
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressParallelInto(dst[:0], comp32, 4); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := hotpathReport{
		Date:   time.Now().Format("2006-01-02"),
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		Note: fmt.Sprintf("Hot-path snapshot: wide-store encoder, 4-way lead decode, and the "+
			"work-stealing parallel engine. Workloads mirror internal/core BenchmarkCore* "+
			"(same generator, sizes, bounds). Parallel entries use 4 requested workers; on "+
			"this host GOMAXPROCS=%d, and on a single-P process the adaptive engine "+
			"intentionally falls back to the serial kernel (parallel ~= serial, no "+
			"scheduling overhead). Regenerate with the command below or compare two refs "+
			"interleaved with scripts/bench_ab.sh.", runtime.GOMAXPROCS(0)),
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -hotpath BENCH_HOTPATH.json -benchtime %s", benchtime),
			"scripts/bench_ab.sh <baseline-ref>",
		},
	}
	// testing.Benchmark targets ~1s per call; approximate -benchtime by
	// running that many rounds and keeping the fastest (least-noise) round.
	rounds := int(benchtime / time.Second)
	if rounds < 1 {
		rounds = 1
	}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "hotpath: %s...\n", s.name)
		bench := func(b *testing.B) {
			b.SetBytes(s.bytes)
			b.ReportAllocs()
			s.fn(b)
		}
		r := testing.Benchmark(bench)
		for i := 1; i < rounds; i++ {
			if r2 := testing.Benchmark(bench); r2.NsPerOp() < r.NsPerOp() {
				r = r2
			}
		}
		nsOp := r.NsPerOp()
		mbs := float64(s.bytes) / (float64(nsOp) / 1e9) / 1e6
		allocs := r.AllocsPerOp()
		rep.Benchmarks = append(rep.Benchmarks, hotpathBench{
			Name:     s.name,
			NsOp:     nsOp,
			MBs:      math.Round(mbs*100) / 100,
			AllocsOp: &allocs,
		})
	}

	// Carry forward the previous snapshot's numbers as the comparison
	// baseline, the way BENCH_REUSE.json carried the seed's.
	if prev, err := os.ReadFile("BENCH_REUSE.json"); err == nil {
		var old hotpathReport
		if json.Unmarshal(prev, &old) == nil {
			for _, b := range old.Benchmarks {
				for _, s := range specs {
					if b.Name == s.name {
						rep.SeedBaseline = append(rep.SeedBaseline,
							hotpathBench{Name: b.Name, NsOp: b.NsOp, MBs: b.MBs})
					}
				}
			}
		}
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// Command szxbench regenerates the SZx paper's evaluation artifacts (every
// table and figure of §7 plus the characterization figures of §4-5) on the
// synthetic datasets, printing paper-style tables and optionally writing a
// markdown report.
//
// Usage:
//
//	szxbench                         # run everything at bench scale
//	szxbench -scale 4 -md report.md  # bigger grids, write markdown
//	szxbench -only "Table 3,Fig. 14" # run a subset by artifact ID prefix
//
// Observability: -stats enables codec telemetry and prints a counter report
// to stderr at exit; -stats-http ADDR additionally serves /metrics
// (Prometheus text), /debug/vars, and /debug/pprof on ADDR while the run is
// in flight. -obs FILE runs the telemetry-overhead A/B (disabled vs enabled
// instrumentation, interleaved) and writes BENCH_OBS.json-shaped output.
// -serve FILE stands up the szxd compression service in-process and drives
// it with 1/8/64 concurrent clients, writing BENCH_SERVE.json-shaped output
// (throughput, p50/p99 latency, and 429 shed counts per level).
// -kernel FILE microbenchmarks the dispatchable block kernels (generic vs
// the CPU-dispatched set) and A/Bs the end-to-end serial codec between
// them, writing BENCH_KERNEL.json-shaped output.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/telemetry"
)

func main() {
	var (
		scale   = flag.Int("scale", 8, "dataset grid divisor (1 = paper-size)")
		seed    = flag.Int64("seed", 20220627, "dataset seed")
		workers = flag.Int("workers", 0, "workers for multicore tables (0 = all CPUs)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (CI mode)")
		only    = flag.String("only", "", "comma-separated artifact ID prefixes to run")
		mdPath  = flag.String("md", "", "also write a markdown report to this file")

		hotpath   = flag.String("hotpath", "", "run hot-path A/B benchmarks and write JSON snapshot to this file ('-' = stdout)")
		kernel    = flag.String("kernel", "", "run the per-kernel generic-vs-dispatched sweep and write JSON snapshot to this file ('-' = stdout)")
		benchtime = flag.Duration("benchtime", 2*time.Second, "per-benchmark target time in -hotpath/-obs mode")
		obs       = flag.String("obs", "", "run telemetry-overhead A/B benchmarks and write JSON snapshot to this file ('-' = stdout)")
		stream    = flag.String("stream", "", "run streaming dump/load A/B (serial vs pipelined) and write JSON snapshot to this file ('-' = stdout)")
		ratioOut  = flag.String("ratio", "", "run the fixed-ratio bound-search sweep and write JSON snapshot to this file ('-' = stdout)")
		serve     = flag.String("serve", "", "run the szxd service load generator (1/8/64 clients) and write JSON snapshot to this file ('-' = stdout)")
		clusterOut   = flag.String("cluster", "", "run the cluster routing sweep (1 vs 3 nodes, hash/least-loaded/hedged) and write JSON snapshot to this file ('-' = stdout)")
		clusterNodes = flag.String("cluster-nodes", "", "with -cluster: drive this external comma-separated szxd fleet instead of in-process nodes; any failed request fails the run")
		stats     = flag.Bool("stats", false, "enable telemetry and print a report to stderr at exit")
		statsHTTP = flag.String("stats-http", "", "enable telemetry and serve /metrics, /debug/vars, /debug/pprof on this address")
	)
	flag.Parse()

	if *stats || *statsHTTP != "" {
		telemetry.Enable()
		telemetry.PublishExpvar()
		if *statsHTTP != "" {
			ln, err := net.Listen("tcp", *statsHTTP)
			if err != nil {
				fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "szxbench: serving stats on http://%s/metrics\n", ln.Addr())
			go func() { _ = http.Serve(ln, telemetry.DebugHandler()) }()
		}
		if *stats {
			defer func() { fmt.Fprint(os.Stderr, telemetry.Report()) }()
		}
	}

	if *serve != "" {
		if err := runServe(*serve, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clusterOut != "" {
		if err := runCluster(*clusterOut, *clusterNodes, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *stream != "" {
		if err := runStream(*stream, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ratioOut != "" {
		if err := runRatio(*ratioOut, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obs != "" {
		if err := runObs(*obs, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *kernel != "" {
		if err := runKernel(*kernel, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *hotpath != "" {
		if err := runHotpath(*hotpath, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers, Quick: *quick}
	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	start := time.Now()
	reports, err := experiments.Run(cfg, filters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
		os.Exit(1)
	}

	var md strings.Builder
	md.WriteString("# SZx reproduction — regenerated evaluation artifacts\n\n")
	fmt.Fprintf(&md, "Config: scale=%d seed=%d quick=%v — generated in %v\n\n",
		*scale, *seed, *quick, time.Since(start).Round(time.Second))
	for _, r := range reports {
		fmt.Println(r.Render())
		md.WriteString(r.Markdown())
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
}

// Command szxbench regenerates the SZx paper's evaluation artifacts (every
// table and figure of §7 plus the characterization figures of §4-5) on the
// synthetic datasets, printing paper-style tables and optionally writing a
// markdown report.
//
// Usage:
//
//	szxbench                         # run everything at bench scale
//	szxbench -scale 4 -md report.md  # bigger grids, write markdown
//	szxbench -only "Table 3,Fig. 14" # run a subset by artifact ID prefix
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		scale   = flag.Int("scale", 8, "dataset grid divisor (1 = paper-size)")
		seed    = flag.Int64("seed", 20220627, "dataset seed")
		workers = flag.Int("workers", 0, "workers for multicore tables (0 = all CPUs)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (CI mode)")
		only    = flag.String("only", "", "comma-separated artifact ID prefixes to run")
		mdPath  = flag.String("md", "", "also write a markdown report to this file")

		hotpath   = flag.String("hotpath", "", "run hot-path A/B benchmarks and write JSON snapshot to this file ('-' = stdout)")
		benchtime = flag.Duration("benchtime", 2*time.Second, "per-benchmark target time in -hotpath mode")
	)
	flag.Parse()

	if *hotpath != "" {
		if err := runHotpath(*hotpath, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers, Quick: *quick}
	var filters []string
	if *only != "" {
		filters = strings.Split(*only, ",")
	}
	start := time.Now()
	reports, err := experiments.Run(cfg, filters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
		os.Exit(1)
	}

	var md strings.Builder
	md.WriteString("# SZx reproduction — regenerated evaluation artifacts\n\n")
	fmt.Fprintf(&md, "Config: scale=%d seed=%d quick=%v — generated in %v\n\n",
		*scale, *seed, *quick, time.Since(start).Round(time.Second))
	for _, r := range reports {
		fmt.Println(r.Render())
		md.WriteString(r.Markdown())
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "szxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/telemetry"
	"repro/telemetry/trace"
)

// Telemetry-overhead A/B mode: measure the serial hot paths with telemetry
// disabled and enabled, interleaved in the same process, and emit a
// machine-readable snapshot (BENCH_OBS.json). This quantifies the two
// budgets the telemetry package promises — the disabled path costs one
// atomic load per call (checked against the BENCH_HOTPATH.json baseline,
// which predates the instrumentation), and the enabled path stays within a
// small single-digit percentage — and records the per-stage wall-clock
// breakdown the enabled runs accumulate.

type obsBench struct {
	Name       string  `json:"name"`
	DisabledNs int64   `json:"disabled_ns_op"`
	EnabledNs  int64   `json:"enabled_ns_op"`
	DisabledMB float64 `json:"disabled_mb_s"`
	EnabledMB  float64 `json:"enabled_mb_s"`
	// EnabledOverheadPct is (enabled - disabled) / disabled, measured in
	// this process with interleaved rounds (the trustworthy number).
	EnabledOverheadPct float64 `json:"enabled_overhead_pct"`
	// BaselineNs / DisabledVsBaselinePct compare against the
	// BENCH_HOTPATH.json snapshot taken before the telemetry subsystem
	// existed; cross-process, so noisier than the A/B above.
	BaselineNs            int64   `json:"baseline_ns_op,omitempty"`
	DisabledVsBaselinePct float64 `json:"disabled_vs_baseline_pct,omitempty"`
}

type obsTraceBench struct {
	Name  string `json:"name"`
	OffNs int64  `json:"off_ns_op"` // Options.Spans nil: the tracing-disabled request path
	OnNs  int64  `json:"on_ns_op"`  // fresh trace per op, finished into a sampling recorder
	// OffVsUntracedPct compares the spans-nil path against an identical
	// untraced reference interleaved in the same rounds — the cost of
	// having the span plumbing compiled in but unused (budget ≤2%; the
	// two sides run the same machine code, so this is also the
	// measurement's noise floor).
	OffVsUntracedPct float64 `json:"off_vs_untraced_pct"`
	// OnOverheadPct is (on - off) / off: what a sampled request pays for
	// trace-ID generation, span timestamps, and the recorder offer
	// (budget ≤5%).
	OnOverheadPct float64 `json:"on_overhead_pct"`
}

type obsStageBreakdown struct {
	CompressCalls    int64   `json:"compress_calls"`
	CompressMeanMs   float64 `json:"compress_mean_ms"`
	DecompressCalls  int64   `json:"decompress_calls"`
	DecompressMeanMs float64 `json:"decompress_mean_ms"`
	BlocksConstant   int64   `json:"blocks_constant"`
	BlocksNonConst   int64   `json:"blocks_nonconstant"`
	CompressRatio    float64 `json:"compress_ratio"`
	EncodePhaseMs    float64 `json:"encode_phase_mean_ms,omitempty"`
	GatherPhaseMs    float64 `json:"gather_phase_mean_ms,omitempty"`
}

type obsReport struct {
	Date       string            `json:"date"`
	Goos       string            `json:"goos"`
	Goarch     string            `json:"goarch"`
	CPU        string            `json:"cpu"`
	Gomaxprocs int               `json:"gomaxprocs"`
	Note       string            `json:"note"`
	Commands   []string          `json:"commands"`
	Benchmarks []obsBench        `json:"benchmarks"`
	Tracing    []obsTraceBench   `json:"tracing"`
	Stages     obsStageBreakdown `json:"stages"`
}

func runObs(outPath string, benchtime time.Duration) error {
	f32 := hotpathData(1 << 21)
	f64 := hotpathData64(1 << 20)
	comp32, err := core.CompressFloat32(f32, 1e-3, core.Options{})
	if err != nil {
		return err
	}
	comp64, err := core.CompressFloat64(f64, 1e-6, core.Options{})
	if err != nil {
		return err
	}

	type spec struct {
		name  string // matches the BENCH_HOTPATH.json entry
		bytes int64
		fn    func(b *testing.B)
	}
	specs := []spec{
		{"BenchmarkCoreCompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f32, 1e-3, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreDecompressIntoF32", int64(4 * len(f32)), func(b *testing.B) {
			var dst []float32
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp32); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreCompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				if dst, err = core.CompressInto(dst[:0], f64, 1e-6, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"BenchmarkCoreDecompressIntoF64", int64(8 * len(f64)), func(b *testing.B) {
			var dst []float64
			for i := 0; i < b.N; i++ {
				if dst, err = core.DecompressInto(dst[:0], comp64); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	wasEnabled := telemetry.Enabled()
	defer func() {
		if wasEnabled {
			telemetry.Enable()
		} else {
			telemetry.Disable()
		}
	}()
	telemetry.Reset()

	rounds := int(benchtime / time.Second)
	if rounds < 1 {
		rounds = 1
	}
	// Interleave disabled/enabled within every round (the same discipline as
	// scripts/bench_ab.sh) so machine-load drift hits both sides equally;
	// keep the fastest round of each side as the least-noise estimate.
	results := make([]obsBench, len(specs))
	for si, s := range specs {
		bench := func(b *testing.B) {
			b.SetBytes(s.bytes)
			s.fn(b)
		}
		var disNs, enNs int64
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(os.Stderr, "obs: %s round %d/%d...\n", s.name, r+1, rounds)
			telemetry.Disable()
			if d := testing.Benchmark(bench).NsPerOp(); disNs == 0 || d < disNs {
				disNs = d
			}
			telemetry.Enable()
			if e := testing.Benchmark(bench).NsPerOp(); enNs == 0 || e < enNs {
				enNs = e
			}
			telemetry.Disable()
		}
		results[si] = obsBench{
			Name:               s.name,
			DisabledNs:         disNs,
			EnabledNs:          enNs,
			DisabledMB:         math.Round(float64(s.bytes)/(float64(disNs)/1e9)/1e6*100) / 100,
			EnabledMB:          math.Round(float64(s.bytes)/(float64(enNs)/1e9)/1e6*100) / 100,
			EnabledOverheadPct: math.Round(100*100*float64(enNs-disNs)/float64(disNs)) / 100,
		}
	}

	// Cross-process comparison against the pre-telemetry snapshot.
	if prev, rerr := os.ReadFile("BENCH_HOTPATH.json"); rerr == nil {
		var old hotpathReport
		if json.Unmarshal(prev, &old) == nil {
			for i := range results {
				for _, b := range old.Benchmarks {
					if b.Name == results[i].Name {
						results[i].BaselineNs = b.NsOp
						results[i].DisabledVsBaselinePct = math.Round(
							100*100*float64(results[i].DisabledNs-b.NsOp)/float64(b.NsOp)) / 100
					}
				}
			}
		}
	}

	// Tracing A/B: the same compress hot paths with Options.Spans nil (how
	// every request runs when tracing is off) versus a fresh per-op trace
	// finished into a sampling recorder (what a traced request pays for
	// trace-ID generation, span timestamps, and the ring offer). Telemetry
	// stays disabled here so the numbers isolate the tracing cost.
	telemetry.Disable()
	rec := trace.NewRecorder(256, 16)
	traceSpecs := []struct {
		name  string
		bytes int64
		fn    func(b *testing.B, traced bool)
	}{
		{"TraceCompressF32", int64(4 * len(f32)), func(b *testing.B, traced bool) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				var opt core.Options
				if traced {
					tr := trace.New("bench")
					opt.Spans = tr
					if dst, err = core.CompressInto(dst[:0], f32, 1e-3, opt); err != nil {
						b.Fatal(err)
					}
					tr.Finish(rec)
				} else if dst, err = core.CompressInto(dst[:0], f32, 1e-3, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TraceCompressF64", int64(8 * len(f64)), func(b *testing.B, traced bool) {
			var dst []byte
			for i := 0; i < b.N; i++ {
				var opt core.Options
				if traced {
					tr := trace.New("bench")
					opt.Spans = tr
					if dst, err = core.CompressInto(dst[:0], f64, 1e-6, opt); err != nil {
						b.Fatal(err)
					}
					tr.Finish(rec)
				} else if dst, err = core.CompressInto(dst[:0], f64, 1e-6, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	traceResults := make([]obsTraceBench, len(traceSpecs))
	for si, s := range traceSpecs {
		var refNs, offNs, onNs int64
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(os.Stderr, "obs: %s round %d/%d...\n", s.name, r+1, rounds)
			// ref and off run the same machine code (Spans nil either way);
			// interleaving them in every round makes off_vs_untraced_pct a
			// same-conditions comparison rather than a cross-loop one.
			ref := func(b *testing.B) { b.SetBytes(s.bytes); s.fn(b, false) }
			off := func(b *testing.B) { b.SetBytes(s.bytes); s.fn(b, false) }
			on := func(b *testing.B) { b.SetBytes(s.bytes); s.fn(b, true) }
			if d := testing.Benchmark(ref).NsPerOp(); refNs == 0 || d < refNs {
				refNs = d
			}
			if d := testing.Benchmark(off).NsPerOp(); offNs == 0 || d < offNs {
				offNs = d
			}
			if e := testing.Benchmark(on).NsPerOp(); onNs == 0 || e < onNs {
				onNs = e
			}
		}
		traceResults[si] = obsTraceBench{
			Name:             s.name,
			OffNs:            offNs,
			OnNs:             onNs,
			OffVsUntracedPct: math.Round(100*100*float64(offNs-refNs)/float64(refNs)) / 100,
			OnOverheadPct:    math.Round(100*100*float64(onNs-offNs)/float64(offNs)) / 100,
		}
	}

	// The enabled rounds above populated the telemetry histograms; fold the
	// per-stage wall-clock breakdown into the report.
	snap := telemetry.Snap()
	stages := obsStageBreakdown{
		CompressCalls:    snap.Compress.Calls,
		CompressMeanMs:   math.Round(snap.Compress.Durations.Mean/1e3) / 1e3,
		DecompressCalls:  snap.Decompress.Calls,
		DecompressMeanMs: math.Round(snap.Decompress.Durations.Mean/1e3) / 1e3,
		BlocksConstant:   snap.Blocks.Constant,
		BlocksNonConst:   snap.Blocks.NonConstant,
		CompressRatio:    math.Round(snap.Compress.Ratio*100) / 100,
		EncodePhaseMs:    math.Round(snap.Parallel.EncodePhase.Mean/1e3) / 1e3,
		GatherPhaseMs:    math.Round(snap.Parallel.GatherPhase.Mean/1e3) / 1e3,
	}

	rep := obsReport{
		Date:       time.Now().Format("2006-01-02"),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Note: "Telemetry-overhead snapshot: serial hot paths measured with telemetry " +
			"disabled and enabled, interleaved per round in one process (fastest round " +
			"kept). enabled_overhead_pct is the in-process A/B; disabled_vs_baseline_pct " +
			"compares against the pre-telemetry BENCH_HOTPATH.json and carries " +
			"cross-process noise. Budgets (DESIGN.md §11): disabled ≤2% vs baseline, " +
			"enabled ≤10% vs disabled — the enabled budget was set when compress ran " +
			"on the scalar kernels; the vectorized kernels (§15) cut the compress " +
			"denominator ~3.5x, so the unchanged absolute tally cost reads as " +
			"~20-35% relative on AVX2 hosts (decompress stays ~0-5%; the seed tree " +
			"measures the same on this machine). stages.* come from the telemetry histograms " +
			"populated by the enabled rounds. tracing[] is the request-tracing A/B " +
			"(DESIGN.md §16): off_vs_untraced_pct is the spans-nil path against an " +
			"identical untraced reference interleaved per round (budget ≤2%; same " +
			"machine code, so it doubles as the noise floor), on_overhead_pct is a " +
			"per-op trace finished into a 1-in-16 sampling recorder against the " +
			"spans-nil path (budget ≤5%).",
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -obs BENCH_OBS.json -benchtime %s", benchtime),
		},
		Benchmarks: results,
		Tracing:    traceResults,
		Stages:     stages,
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/service"
	"repro/service/client"
	"repro/telemetry"
)

// Cluster-mode benchmark (-cluster): boot 1- and 3-node in-process fleets
// and drive them through the ClusterClient under each routing policy,
// writing a BENCH_CLUSTER.json snapshot. The comparison of interest is a
// single oversubscribed node (its admission gate shedding 429s) against
// three nodes behind hash, least-loaded, and hedged routing — fleet-level
// shedding vs fleet-level spreading on the same total offered load.
//
// With -cluster-nodes the fleet is external (already-running szxd
// processes, as in the CI cluster-smoke job): one hedged+retried sweep is
// driven against it and the process exits non-zero if any request fails —
// the assertion that hedge/retry absorbed whatever happened to the fleet
// mid-run (the smoke job SIGKILLs a node on purpose).

type clusterLevel struct {
	Nodes     int     `json:"nodes"`
	Policy    string  `json:"policy"`
	Clients   int     `json:"clients"`
	Requests  int64   `json:"requests"`
	Failed    int64   `json:"failed"`
	Shed      int64   `json:"shed"`    // server-side 429/503 admission denials (in-process fleets only)
	Retries   int64   `json:"retries"` // cluster-client retries against another node
	Hedges    int64   `json:"hedges_fired"`
	HedgeWins int64   `json:"hedges_won"`
	MBs       float64 `json:"mb_s"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

type clusterReport struct {
	Date       string         `json:"date"`
	Goos       string         `json:"goos"`
	Goarch     string         `json:"goarch"`
	CPU        string         `json:"cpu"`
	Gomaxprocs int            `json:"gomaxprocs"`
	Note       string         `json:"note"`
	Commands   []string       `json:"commands"`
	Levels     []clusterLevel `json:"levels"`
}

// shedCount sums the server-side admission denials visible in this
// process (meaningful only for in-process fleets).
func shedCount() int64 {
	return telemetry.ServiceRejectedQueueFull.Load() +
		telemetry.ServiceRejectedWaitTimeout.Load() +
		telemetry.ServiceRejectedDraining.Load()
}

// startClusterNodes boots n in-process szxd nodes with a deliberately
// small admission window, so the single-node level sheds under the full
// client load and the 3-node levels show routing absorbing it.
func startClusterNodes(n int) (urls []string, shutdown func(), err error) {
	var closers []func()
	shutdown = func() {
		for _, c := range closers {
			c()
		}
	}
	for range n {
		// A deliberately tight gate (one slot, no queue): 8 clients of 8 MiB
		// requests oversubscribe one node several times over, so the 1-node
		// level sheds hard and the 3-node levels show routing + retries
		// absorbing the same offered load.
		srv := service.New(service.Config{
			MaxInFlight: 1,
			MaxQueue:    -1,
			QueueWait:   50 * time.Millisecond,
		})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			shutdown()
			return nil, nil, lerr
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		closers = append(closers, func() { _ = hs.Close() })
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, shutdown, nil
}

// clusterPolicies are the swept routing configurations.
var clusterPolicies = []struct {
	name   string
	policy client.Policy
	hedged bool
}{
	{"hash", client.PolicyHash, false},
	{"least_loaded", client.PolicyLeastLoaded, false},
	{"hedged", client.PolicyLeastLoaded, true},
}

func runClusterLevel(nodes []string, name string, policy client.Policy, hedged bool, clients int, benchtime time.Duration) (clusterLevel, error) {
	cc, err := client.NewCluster(client.ClusterConfig{
		Nodes:        nodes,
		Policy:       policy,
		// MaxDelay well under the saturated tail: the adaptive trigger
		// stays exercised but a stalled request hedges within 100ms, so
		// the artifact records fired/won counts instead of a trigger that
		// never beats the retry path.
		Hedge:        client.HedgePolicy{Disabled: !hedged, MaxDelay: 100 * time.Millisecond, Budget: 0.5},
		Retry:        client.RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 250 * time.Millisecond},
		RetryBudget:  0.5,
		PollInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return clusterLevel{}, err
	}
	defer cc.Close()

	// 8 MiB float32 payloads, matching -serve: big enough that a request
	// occupies its admission slot across body-read blocking, so nodes
	// genuinely saturate and shed — on any host, including single-core CI
	// runners where small pure-CPU handlers would never overlap.
	data := hotpathData(2 << 20)
	rawBytes := int64(4 * len(data))
	p := client.Params{ErrorBound: 1e-3}
	ctx := context.Background()

	// Let the first poll land so routing starts from real peer states, and
	// warm every node's pools.
	cc.Membership().PollOnce(ctx)
	for range len(nodes) {
		if _, err := cc.Compress(ctx, data, p); err != nil {
			return clusterLevel{}, err
		}
	}

	shed0 := shedCount()
	retries0 := telemetry.ClusterRetries.Load()
	hedges0 := telemetry.ClusterHedgesFired.Load()
	wins0 := telemetry.ClusterHedgesWon.Load()

	var (
		mu        sync.Mutex
		lats      []time.Duration
		requests  int64
		failed    int64
		firstErr  error
		wg        sync.WaitGroup
		deadline  = time.Now().Add(benchtime)
		startWall = time.Now()
	)
	for range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var myLats []time.Duration
			var myReqs, myFailed int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := cc.Compress(ctx, data, p)
				if err != nil {
					myFailed++
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
					continue
				}
				myLats = append(myLats, time.Since(t0))
				myReqs++
			}
			mu.Lock()
			lats = append(lats, myLats...)
			requests += myReqs
			failed += myFailed
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(startWall)
	if failed > 0 && firstErr != nil {
		fmt.Fprintf(os.Stderr, "cluster: %s/%d nodes: %d failed request(s), first: %v\n",
			name, len(nodes), failed, firstErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(p*float64(len(lats)-1))].Microseconds()) / 1e3
	}
	return clusterLevel{
		Nodes:     len(nodes),
		Policy:    name,
		Clients:   clients,
		Requests:  requests,
		Failed:    failed,
		Shed:      shedCount() - shed0,
		Retries:   telemetry.ClusterRetries.Load() - retries0,
		Hedges:    telemetry.ClusterHedgesFired.Load() - hedges0,
		HedgeWins: telemetry.ClusterHedgesWon.Load() - wins0,
		MBs:       math.Round(float64(requests)*float64(rawBytes)/elapsed.Seconds()/1e6*100) / 100,
		P50Ms:     math.Round(pct(0.50)*100) / 100,
		P99Ms:     math.Round(pct(0.99)*100) / 100,
	}, nil
}

func runCluster(outPath, external string, benchtime time.Duration) error {
	const clients = 8
	rep := clusterReport{
		Date:       time.Now().Format("2006-01-02"),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		CPU:        cpuModel(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -cluster BENCH_CLUSTER.json -benchtime %s", benchtime),
			"scripts/bench_ab.sh <baseline-ref>  # BENCH_CLUSTER=1",
		},
	}

	if external != "" {
		// External fleet: one hedged sweep; failures fail the process — this
		// is the CI smoke job's zero-client-visible-errors assertion.
		nodes := strings.Split(external, ",")
		rep.Note = fmt.Sprintf("external szxd fleet at %s driven by the ClusterClient (least-loaded + "+
			"hedging + retries, %d clients). failed>0 fails the run: with the smoke job killing a node "+
			"mid-load, a clean exit means hedge/retry absorbed it. Shed counts are unavailable for "+
			"external fleets (they live in the servers' own /metrics).", external, clients)
		lvl, err := runClusterLevel(nodes, "hedged", client.PolicyLeastLoaded, true, clients, benchtime)
		if err != nil {
			return err
		}
		rep.Levels = append(rep.Levels, lvl)
		if err := writeClusterReport(outPath, rep); err != nil {
			return err
		}
		if lvl.Failed > 0 {
			return fmt.Errorf("%d of %d requests failed against the external fleet", lvl.Failed, lvl.Failed+lvl.Requests)
		}
		return nil
	}

	rep.Note = fmt.Sprintf("in-process szxd fleets (1 vs 3 nodes, MaxInFlight=%d, no queue (MaxQueue=%d) "+
		"per node) under %d concurrent clients sending 8 MiB float32 compress requests (bound 1e-3) "+
		"through the ClusterClient. The 1-node level oversubscribes one admission gate (shed counts are "+
		"its 429s, absorbed by client retries); the 3-node levels compare rendezvous-hash, "+
		"least-loaded (power-of-two-choices), and least-loaded+hedged routing on the same offered load. "+
		"retries/hedges_fired/hedges_won are ClusterClient telemetry deltas per level.",
		1, -1, clients)

	for _, n := range []int{1, 3} {
		urls, shutdown, err := startClusterNodes(n)
		if err != nil {
			return err
		}
		for _, pc := range clusterPolicies {
			// On one node every policy degenerates to "the node": sweep
			// policies only on the real fleet.
			if n == 1 && pc.name != "least_loaded" {
				continue
			}
			fmt.Fprintf(os.Stderr, "cluster: %d node(s), %s...\n", n, pc.name)
			lvl, err := runClusterLevel(urls, pc.name, pc.policy, pc.hedged, clients, benchtime)
			if err != nil {
				shutdown()
				return fmt.Errorf("%d nodes / %s: %w", n, pc.name, err)
			}
			rep.Levels = append(rep.Levels, lvl)
		}
		shutdown()
	}
	return writeClusterReport(outPath, rep)
}

func writeClusterReport(outPath string, rep clusterReport) error {
	var sb strings.Builder
	jenc := json.NewEncoder(&sb)
	jenc.SetIndent("", "  ")
	if err := jenc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

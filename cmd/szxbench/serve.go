package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	szx "repro"
	"repro/service"
	"repro/service/client"
)

// Service-mode benchmark (-serve): stand up the szxd service in-process on
// a loopback listener, drive it with the real client library at rising
// concurrency, and write a BENCH_SERVE.json snapshot. The point is to
// price the service boundary: the in-process codec rate is the ceiling,
// the 1-client row shows the per-request HTTP tax, the 8-client row shows
// concurrency recovering it, and the 64-client row — deliberately run
// against a small admission window — shows the server shedding load with
// 429s instead of collapsing.

type serveLevel struct {
	Clients  int     `json:"clients"`
	Requests int64   `json:"requests"`
	Rejected int64   `json:"rejected"`
	MBs      float64 `json:"mb_s"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// smallLevel is one row of the small-payload sweep: arrays of SizeBytes
// pushed either one per request ("oneshot") or 64 per request ("batch64").
// ArraysSec is the headline — arrays compressed per second, which for
// one-shot mode equals requests per second. Latency percentiles are per
// HTTP request, so a batch row's p50 covers all 64 arrays it carries.
type smallLevel struct {
	SizeBytes int     `json:"size_bytes"`
	Mode      string  `json:"mode"`
	ArraysSec float64 `json:"arrays_per_s"`
	MBs       float64 `json:"mb_s"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

type serveReport struct {
	Date         string       `json:"date"`
	Goos         string       `json:"goos"`
	Goarch       string       `json:"goarch"`
	CPU          string       `json:"cpu"`
	Gomaxprocs   int          `json:"gomaxprocs"`
	Note         string       `json:"note"`
	Commands     []string     `json:"commands"`
	InProcessMBs float64      `json:"inprocess_mb_s"`
	Levels       []serveLevel `json:"levels"`
	Small        []smallLevel `json:"small_levels"`
}

func runServe(outPath string, benchtime time.Duration) error {
	// 8 MiB per request: large enough that a handler spans several
	// scheduler slices even on one core, so concurrent requests genuinely
	// overlap inside the admission window instead of self-serializing.
	data := hotpathData(2 << 20)
	rawBytes := int64(4 * len(data))
	opt := szx.Options{ErrorBound: 1e-3}

	// In-process ceiling: the same payload through a pooled Codec handle.
	codec := szx.NewCodec[float32](opt)
	inproc := measureRate(func() error {
		_, err := codec.Compress(data)
		return err
	}, rawBytes)

	// A deliberately small admission window relative to the 64-client
	// level, so the top row demonstrates load shedding: with MaxInFlight
	// = GOMAXPROCS and a queue twice that size, 64 clients oversubscribe
	// the server several times over.
	maxInFlight := runtime.GOMAXPROCS(0)
	srv := service.New(service.Config{
		MaxInFlight: maxInFlight,
		MaxQueue:    2 * maxInFlight,
		QueueWait:   250 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	rep := serveReport{
		Date:         time.Now().Format("2006-01-02"),
		Goos:         runtime.GOOS,
		Goarch:       runtime.GOARCH,
		CPU:          cpuModel(),
		Gomaxprocs:   runtime.GOMAXPROCS(0),
		InProcessMBs: math.Round(inproc/1e6*100) / 100,
		Note: fmt.Sprintf("szxd service benchmark: 8 MiB float32 compress requests (bound 1e-3) "+
			"against an in-process loopback server with MaxInFlight=%d, MaxQueue=%d, "+
			"QueueWait=250ms, driven by the service/client library. inprocess_mb_s is the "+
			"same payload on a pooled Codec without the HTTP hop — the ceiling. Rejected "+
			"counts are 429s from admission control; at 64 clients the server is "+
			"oversubscribed on purpose to show load shedding instead of collapse. "+
			"small_levels sweeps 4-256 KiB arrays with one client, one array per request "+
			"(oneshot) vs 64 per /v1/batch request (batch64); arrays_per_s is the headline "+
			"and latency percentiles are per HTTP request.",
			maxInFlight, 2*maxInFlight),
		Commands: []string{
			fmt.Sprintf("go run ./cmd/szxbench -serve BENCH_SERVE.json -benchtime %s", benchtime),
			"scripts/bench_ab.sh <baseline-ref>",
		},
	}

	for _, clients := range []int{1, 8, 64} {
		fmt.Fprintf(os.Stderr, "serve: %d client(s)...\n", clients)
		lvl, err := runServeLevel(base, data, clients, benchtime, rawBytes)
		if err != nil {
			return fmt.Errorf("level %d: %w", clients, err)
		}
		rep.Levels = append(rep.Levels, lvl)
	}

	// Small-payload sweep: the batch endpoint's reason to exist. One client,
	// 4 KiB through 256 KiB arrays, one array per request vs 64 per request
	// — the arrays/s ratio between the two modes is the service/in-process
	// gap the batch path closes. The two modes alternate inside each size's
	// window so machine noise (GC, CPU steal on shared boxes) lands on both
	// sides of the ratio equally.
	for _, size := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		fmt.Fprintf(os.Stderr, "serve: small %d KiB oneshot vs batch64...\n", size>>10)
		one, b64, err := runSmallPair(base, size, benchtime)
		if err != nil {
			return fmt.Errorf("small %d: %w", size, err)
		}
		rep.Small = append(rep.Small, one, b64)
	}

	var sb strings.Builder
	jenc := json.NewEncoder(&sb)
	jenc.SetIndent("", "  ")
	if err := jenc.Encode(rep); err != nil {
		return err
	}
	if outPath == "-" {
		fmt.Print(sb.String())
		return nil
	}
	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}

// runSmallPair measures one small-payload size in both modes — one array
// per request and 64 per request — alternating between them in short
// chunks across the whole window, single client.
func runSmallPair(base string, sizeBytes int, benchtime time.Duration) (one, b64 smallLevel, err error) {
	vals := hotpathData(sizeBytes / 4)
	arrays := make([][]float32, 64)
	for i := range arrays {
		arrays[i] = vals
	}
	c := client.New(base)
	ctx := context.Background()
	p := client.Params{ErrorBound: 1e-3}

	doOne := func() error {
		_, err := c.Compress(ctx, vals, p)
		return err
	}
	doBatch := func() error {
		res, err := c.CompressBatch(ctx, arrays, p)
		if err != nil {
			return err
		}
		for i := range res {
			if res[i].Err != nil {
				return res[i].Err
			}
		}
		return nil
	}

	// Clear the previous level's garbage (the shed level in particular
	// leaves a lot) so this row doesn't pay another row's GC bill, then
	// warm connections and pools in both modes.
	runtime.GC()
	if err := doOne(); err != nil {
		return one, b64, err
	}
	if err := doBatch(); err != nil {
		return one, b64, err
	}

	type acc struct {
		lats    []time.Duration
		elapsed time.Duration
	}
	var oneAcc, b64Acc acc
	run := func(a *acc, do func() error, dur time.Duration) error {
		deadline := time.Now().Add(dur)
		start := time.Now()
		for time.Now().Before(deadline) {
			t0 := time.Now()
			if err := do(); err != nil {
				return err
			}
			a.lats = append(a.lats, time.Since(t0))
		}
		a.elapsed += time.Since(start)
		return nil
	}
	// Many short alternating chunks rather than a few long ones: on shared
	// boxes, interference arrives in bursts that can swallow a whole chunk,
	// and finer interleaving spreads a burst across both modes instead of
	// letting it condemn one.
	const rounds = 8
	chunk := benchtime / (2 * rounds)
	for r := 0; r < rounds; r++ {
		if err := run(&oneAcc, doOne, chunk); err != nil {
			return one, b64, err
		}
		if err := run(&b64Acc, doBatch, chunk); err != nil {
			return one, b64, err
		}
	}

	level := func(a acc, mode string, perReq int) smallLevel {
		sort.Slice(a.lats, func(i, j int) bool { return a.lats[i] < a.lats[j] })
		pct := func(p float64) float64 {
			if len(a.lats) == 0 {
				return 0
			}
			return float64(a.lats[int(p*float64(len(a.lats)-1))].Microseconds()) / 1e3
		}
		totalArrays := float64(len(a.lats) * perReq)
		return smallLevel{
			SizeBytes: sizeBytes,
			Mode:      mode,
			ArraysSec: math.Round(totalArrays/a.elapsed.Seconds()*10) / 10,
			MBs:       math.Round(totalArrays*float64(sizeBytes)/a.elapsed.Seconds()/1e6*100) / 100,
			P50Ms:     math.Round(pct(0.50)*1000) / 1000,
			P99Ms:     math.Round(pct(0.99)*1000) / 1000,
		}
	}
	return level(oneAcc, "oneshot", 1), level(b64Acc, "batch64", 64), nil
}

func runServeLevel(base string, data []float32, clients int, benchtime time.Duration, rawBytes int64) (serveLevel, error) {
	c := client.New(base)
	ctx := context.Background()

	// Warm the connection pool and the server's scratch pool.
	if _, err := c.Compress(ctx, data, client.Params{ErrorBound: 1e-3}); err != nil {
		return serveLevel{}, err
	}

	var (
		mu        sync.Mutex
		lats      []time.Duration
		requests  int64
		rejected  int64
		firstErr  error
		wg        sync.WaitGroup
		deadline  = time.Now().Add(benchtime)
		startWall = time.Now()
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var myLats []time.Duration
			var myReqs, myRej int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				_, err := c.Compress(ctx, data, client.Params{ErrorBound: 1e-3})
				if err != nil {
					var se *client.Error
					if errors.As(err, &se) && se.Retryable() {
						myRej++
						// Back off briefly; hammering a shedding server
						// just measures the rejection path.
						time.Sleep(2 * time.Millisecond)
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				myLats = append(myLats, time.Since(t0))
				myReqs++
			}
			mu.Lock()
			lats = append(lats, myLats...)
			requests += myReqs
			rejected += myRej
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(startWall)
	if firstErr != nil {
		return serveLevel{}, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx].Microseconds()) / 1e3
	}
	mbs := float64(requests) * float64(rawBytes) / elapsed.Seconds() / 1e6
	return serveLevel{
		Clients:  clients,
		Requests: requests,
		Rejected: rejected,
		MBs:      math.Round(mbs*100) / 100,
		P50Ms:    math.Round(pct(0.50)*100) / 100,
		P99Ms:    math.Round(pct(0.99)*100) / 100,
	}, nil
}

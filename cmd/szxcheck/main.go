// Command szxcheck is a Z-checker-style assessment tool (the paper's §3
// methodology): given an original raw float32 file and either a compressed
// SZx stream or a reconstructed raw file, it prints the full distortion
// battery — max/mean error, PSNR, SNR, NRMSE, Pearson correlation, error
// bias and lag-1 autocorrelation — and verifies the error bound.
//
// Usage:
//
//	szxcheck -orig data.f32 -szx data.szx
//	szxcheck -orig data.f32 -rec data.out.f32 -bound 1e-3
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	szx "repro"
	"repro/internal/metrics"
)

func main() {
	var (
		origPath = flag.String("orig", "", "original raw little-endian float32 file")
		szxPath  = flag.String("szx", "", "compressed SZx stream to decompress and assess")
		recPath  = flag.String("rec", "", "reconstructed raw float32 file to assess")
		bound    = flag.Float64("bound", 0, "absolute error bound to verify (taken from the stream when -szx is used)")
	)
	flag.Parse()

	if *origPath == "" || (*szxPath == "") == (*recPath == "") {
		fmt.Fprintln(os.Stderr, "szxcheck: need -orig plus exactly one of -szx / -rec")
		os.Exit(2)
	}
	orig, err := readF32(*origPath)
	if err != nil {
		fatal(err)
	}

	var rec []float32
	checkBound := *bound
	if *szxPath != "" {
		comp, err := os.ReadFile(*szxPath)
		if err != nil {
			fatal(err)
		}
		h, err := szx.Info(comp)
		if err != nil {
			fatal(err)
		}
		if checkBound == 0 {
			checkBound = h.ErrBound
		}
		rec, err = szx.Decompress(comp)
		if err != nil {
			fatal(err)
		}
		cr := float64(4*len(orig)) / float64(len(comp))
		fmt.Printf("stream: %v, %d values, block size %d, bound %g, CR %.2f\n\n",
			h.Type, h.N, h.BlockSize, h.ErrBound, cr)
	} else {
		rec, err = readF32(*recPath)
		if err != nil {
			fatal(err)
		}
	}
	if len(rec) != len(orig) {
		fatal(fmt.Errorf("length mismatch: %d original vs %d reconstructed", len(orig), len(rec)))
	}

	as, err := metrics.Assess(orig, rec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(as.String())

	if checkBound > 0 {
		if as.Distortion.MaxErr <= checkBound {
			fmt.Printf("\nerror bound %g respected ✓\n", checkBound)
		} else {
			fmt.Printf("\nerror bound %g VIOLATED (max %g) ✗\n", checkBound, as.Distortion.MaxErr)
			os.Exit(1)
		}
	}
}

func readF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: length %d not a multiple of 4", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "szxcheck: %v\n", err)
	os.Exit(1)
}

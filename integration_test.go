package szx

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cuszx"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

// TestPipelineIntegration exercises the whole stack the way a user would:
// synthesize an application snapshot, archive it, read fields back (full
// and ranged), and verify quality with the assessment battery.
func TestPipelineIntegration(t *testing.T) {
	app := datagen.Hurricane(16, 99)
	aw := NewArchiveWriter(Options{ErrorBound: 1e-3, Mode: BoundRelative})
	for _, f := range app.Fields {
		if err := aw.AddField(f.Name, f.Dims, f.Data); err != nil {
			t.Fatal(err)
		}
	}
	a, err := OpenArchive(aw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range app.Fields {
		dec, dims, err := a.Read(f.Name)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(dims) != len(f.Dims) {
			t.Fatalf("%s: dims %v", f.Name, dims)
		}
		as, err := metrics.Assess(f.Data, dec)
		if err != nil {
			t.Fatal(err)
		}
		// Resolved bound is in the archive metadata.
		var bound float64
		for _, inf := range a.Fields() {
			if inf.Name == f.Name {
				bound = inf.ErrBound
			}
		}
		if as.Distortion.MaxErr > bound {
			t.Errorf("%s: max err %g > bound %g", f.Name, as.Distortion.MaxErr, bound)
		}
		if as.PearsonR < 0.99 {
			t.Errorf("%s: pearson %v", f.Name, as.PearsonR)
		}
		// Ranged read agrees with the full decode.
		part, err := a.ReadRange(f.Name, 10, 200)
		if err != nil {
			t.Fatal(err)
		}
		for i := range part {
			if part[i] != dec[10+i] {
				t.Fatalf("%s: ranged read diverges at %d", f.Name, i)
			}
		}
	}
}

// TestCrossSubstrate proves the simulated-GPU and CPU paths interoperate in
// every direction: GPU-compressed streams decode via the public API
// (serial, parallel, and ranged), and CPU streams decode on the GPU.
func TestCrossSubstrate(t *testing.T) {
	field := datagen.Miranda(16, 5).Fields[2]
	abs := 1e-3 * 2 // roughly REL 1e-3
	gpuComp, _, err := cuszx.Compress(field.Data, abs, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cpuDec, err := Decompress(gpuComp)
	if err != nil {
		t.Fatal(err)
	}
	parDec, err := DecompressParallel(gpuComp, 4)
	if err != nil {
		t.Fatal(err)
	}
	gpuDec, _, err := cuszx.Decompress(gpuComp, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := DecompressRange(gpuComp, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cpuDec {
		if math.Float32bits(cpuDec[i]) != math.Float32bits(parDec[i]) ||
			math.Float32bits(cpuDec[i]) != math.Float32bits(gpuDec[i]) {
			t.Fatalf("decoders disagree at %d", i)
		}
		if math.Abs(float64(field.Data[i])-float64(cpuDec[i])) > abs {
			t.Fatalf("bound violated at %d", i)
		}
	}
	for i := range rng {
		if rng[i] != cpuDec[100+i] {
			t.Fatalf("range decode diverges at %d", i)
		}
	}
}

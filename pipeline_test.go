package szx

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"
)

// serialStreamBytes compresses data through the serial Writer, the byte
// reference every pipelined configuration must reproduce exactly.
func serialStreamBytes(t *testing.T, data []float32, opt Options, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opt, chunk)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipeWriterByteIdentity pins the tentpole invariant: the pipelined
// writer's output is byte-identical to the serial Writer's for every
// parallelism, chunk size (including ragged tails), and write-slicing
// pattern.
func TestPipeWriterByteIdentity(t *testing.T) {
	data := testField(300000, 23)
	parallelisms := []int{1, 2, runtime.GOMAXPROCS(0)}
	chunks := []int{1 << 16, 10007, 1 << 14} // 10007 leaves a ragged tail
	opts := []Options{
		{ErrorBound: 1e-3},
		{ErrorBound: 1e-3, Mode: BoundRelative}, // per-chunk range resolution
	}
	for _, opt := range opts {
		for _, chunk := range chunks {
			want := serialStreamBytes(t, data, opt, chunk)
			for _, par := range parallelisms {
				var buf bytes.Buffer
				pw := NewPipeWriter(&buf, opt, chunk, par)
				// Uneven write slices exercise the internal re-buffering.
				for lo := 0; lo < len(data); {
					hi := lo + 9001
					if hi > len(data) {
						hi = len(data)
					}
					if err := pw.Write(data[lo:hi]); err != nil {
						t.Fatal(err)
					}
					lo = hi
				}
				if err := pw.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, buf.Bytes()) {
					t.Fatalf("mode=%v chunk=%d par=%d: pipelined bytes differ from serial (%d vs %d)",
						opt.Mode, chunk, par, buf.Len(), len(want))
				}
			}
		}
	}
}

// TestPipeStreamGoldenHash pins the pipelined container bytes to the
// historical serial wire format with a literal hash, so neither side can
// drift even in lockstep.
func TestPipeStreamGoldenHash(t *testing.T) {
	const golden = "6b13a6fb3d2c1b8a3e278e99c00c38f3a6f5de3b477ce9d8c051a0ecd3007b05"
	data := testField(100000, 7)
	want := serialStreamBytes(t, data, Options{ErrorBound: 1e-3}, 1<<15)
	if got := hex.EncodeToString(sumOf(want)); got != golden {
		t.Fatalf("serial stream hash drifted: %s", got)
	}
	var buf bytes.Buffer
	pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 1<<15, 3)
	if err := pw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(sumOf(buf.Bytes())); got != golden {
		t.Fatalf("pipelined stream hash drifted: %s", got)
	}
}

func sumOf(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// TestPipeReaderRoundTrip drives the pipelined reader over serial Writer
// output at several parallelisms and read granularities, checking values
// against the serial Reader bit for bit.
func TestPipeReaderRoundTrip(t *testing.T) {
	data := testField(250000, 29)
	blob := serialStreamBytes(t, data, Options{ErrorBound: 1e-3}, 10007)
	want, err := NewReader(bytes.NewReader(blob)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		pr := NewPipeReader(bytes.NewReader(blob), par)
		got, err := pr.ReadAll()
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("par=%d: got %d values want %d", par, len(got), len(want))
		}
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("par=%d: value %d differs from serial reader", par, i)
			}
		}
		if err := pr.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Small-buffer Read path.
	pr := NewPipeReader(bytes.NewReader(blob), 2)
	var out []float32
	p := make([]float32, 777)
	for {
		n, rerr := pr.Read(p)
		out = append(out, p[:n]...)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("chunked read: got %d values want %d", len(out), len(want))
	}
	_ = pr.Close()
}

// TestPipeRoundTripEmpty checks the empty-stream container both ways.
func TestPipeRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 0, 2)
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if want := serialStreamBytes(t, nil, Options{ErrorBound: 1e-3}, 0); !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("empty pipelined container differs from serial")
	}
	pr := NewPipeReader(bytes.NewReader(buf.Bytes()), 2)
	out, err := pr.ReadAll()
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream: %v, %d values", err, len(out))
	}
	if _, err := pr.Read(make([]float32, 4)); err != io.EOF {
		t.Fatalf("read after EOF: %v", err)
	}
}

// TestPipeWriterErrors pins the error semantics: a compression error from
// an in-flight chunk surfaces on Write or Close, first error wins, and the
// writer shuts down cleanly.
func TestPipeWriterErrors(t *testing.T) {
	t.Run("bad options", func(t *testing.T) {
		var buf bytes.Buffer
		pw := NewPipeWriter(&buf, Options{ErrorBound: -1}, 1<<12, 2)
		err := pw.Write(testField(1<<14, 3))
		if err == nil {
			err = pw.Close()
		} else {
			_ = pw.Close()
		}
		if !errors.Is(err, ErrErrBound) {
			t.Fatalf("got %v, want ErrErrBound", err)
		}
	})

	t.Run("sink write error", func(t *testing.T) {
		fw := &failAfterWriter{failAt: 2}
		pw := NewPipeWriter(fw, Options{ErrorBound: 1e-3}, 1<<12, 2)
		data := testField(1<<16, 4)
		var err error
		for i := 0; i < 8 && err == nil; i++ {
			err = pw.Write(data)
		}
		cerr := pw.Close()
		if err == nil {
			err = cerr
		}
		if !errors.Is(err, errSinkFull) {
			t.Fatalf("got %v, want errSinkFull", err)
		}
		// The error state is sticky.
		if werr := pw.Write(data[:10]); !errors.Is(werr, errSinkFull) {
			t.Fatalf("write after error: %v", werr)
		}
	})

	t.Run("write after close", func(t *testing.T) {
		var buf bytes.Buffer
		pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 0, 1)
		if err := pw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := pw.Write([]float32{1}); err == nil {
			t.Fatal("write after close accepted")
		}
		if err := pw.Close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
	})
}

var errSinkFull = errors.New("sink full")

// gatedWriter blocks every Write until its gate channel is closed.
type gatedWriter struct{ gate chan struct{} }

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	return len(p), nil
}

// failAfterWriter accepts failAt writes then fails every later one.
type failAfterWriter struct {
	writes int
	failAt int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.failAt {
		return 0, errSinkFull
	}
	return len(p), nil
}

// TestPipeReaderFrameError pins that the pipelined reader reports
// corruption exactly like the serial Reader: same FrameError index/offset,
// same unwrapping, first frame error wins even when later frames are
// already in flight.
func TestPipeReaderFrameError(t *testing.T) {
	data := testField(4*16384, 21)
	blob := serialStreamBytes(t, data, Options{ErrorBound: 1e-3}, 1<<14)
	offs := streamFrameOffsets(t, blob)
	if len(offs) != 4 {
		t.Fatalf("got %d frames; want 4", len(offs))
	}

	check := func(t *testing.T, err error, frame int, off int64, cause error) {
		t.Helper()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("error %v (%T) is not a *FrameError", err, err)
		}
		if fe.Frame != frame || fe.Offset != off {
			t.Errorf("FrameError{Frame: %d, Offset: %d}; want frame %d at offset %d",
				fe.Frame, fe.Offset, frame, off)
		}
		if !errors.Is(err, ErrStream) || !errors.Is(err, cause) {
			t.Errorf("%v does not unwrap to ErrStream and %v", err, cause)
		}
	}

	t.Run("corrupt middle frame", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		copy(bad[offs[1]+4:], "junk")
		pr := NewPipeReader(bytes.NewReader(bad), 3)
		out, err := pr.ReadAll()
		check(t, err, 1, offs[1], ErrBadMagic)
		if len(out) != 16384 {
			t.Fatalf("recovered %d values before the bad frame; want %d", len(out), 16384)
		}
		_ = pr.Close()
	})

	t.Run("truncated payload", func(t *testing.T) {
		pr := NewPipeReader(bytes.NewReader(blob[:offs[3]+4+10]), 3)
		out, err := pr.ReadAll()
		check(t, err, 3, offs[3], io.ErrUnexpectedEOF)
		if len(out) != 3*16384 {
			t.Fatalf("recovered %d values; want %d", len(out), 3*16384)
		}
		_ = pr.Close()
	})

	t.Run("garbage header", func(t *testing.T) {
		pr := NewPipeReader(bytes.NewReader([]byte("this is not a stream")), 2)
		if _, err := pr.ReadAll(); !errors.Is(err, ErrStream) {
			t.Fatalf("garbage accepted: %v", err)
		}
		_ = pr.Close()
	})
}

// TestPipeTruncationSweep mirrors TestStreamTruncated for the pipelined
// reader: cutting the container anywhere must error (or cleanly EOF at a
// frame edge), never panic or leak, and recovered values respect the bound.
func TestPipeTruncationSweep(t *testing.T) {
	data := testField(50000, 13)
	full := serialStreamBytes(t, data, Options{ErrorBound: 1e-3}, 1<<14)
	for cut := 0; cut < len(full); cut += len(full)/40 + 1 {
		pr := NewPipeReader(bytes.NewReader(full[:cut]), 2)
		out, err := pr.ReadAll()
		if err == nil && cut < len(full)-4 && len(out) == len(data) {
			t.Fatalf("cut=%d: full data recovered from truncated stream", cut)
		}
		for i := range out {
			if math.Abs(float64(data[i])-float64(out[i])) > 1e-3 {
				t.Fatalf("cut=%d: recovered value %d exceeds bound", cut, i)
			}
		}
		_ = pr.Close()
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (goroutine exit is asynchronous after channel closes).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPipeGoroutineLeaks exercises every shutdown path — clean Close,
// writer Abort, sink error, reader mid-stream Close, reader error — and
// checks the goroutine count returns to baseline each time.
func TestPipeGoroutineLeaks(t *testing.T) {
	data := testField(200000, 31)
	blob := serialStreamBytes(t, data, Options{ErrorBound: 1e-3}, 1<<14)

	t.Run("writer clean close", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		var buf bytes.Buffer
		pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 1<<14, 4)
		if err := pw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := pw.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("writer abort mid-stream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		var buf bytes.Buffer
		pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 1<<12, 4)
		if err := pw.Write(data[:100000]); err != nil {
			t.Fatal(err)
		}
		pw.Abort()
		waitGoroutines(t, baseline)
		// The truncated container is still prefix-readable.
		out, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err == nil && len(out) == 100000 {
			t.Log("all frames flushed before abort (legal)")
		}
		if err := pw.Close(); !errors.Is(err, errStreamAborted) {
			t.Fatalf("close after abort: %v", err)
		}
	})

	t.Run("writer sink error", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		pw := NewPipeWriter(&failAfterWriter{failAt: 1}, Options{ErrorBound: 1e-3}, 1<<12, 4)
		var err error
		for i := 0; i < 8 && err == nil; i++ {
			err = pw.Write(data[:50000])
		}
		_ = pw.Close()
		waitGoroutines(t, baseline)
	})

	t.Run("reader clean EOF", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		pr := NewPipeReader(bytes.NewReader(blob), 4)
		if _, err := pr.ReadAll(); err != nil {
			t.Fatal(err)
		}
		if err := pr.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("reader mid-stream close", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		pr := NewPipeReader(bytes.NewReader(blob), 4)
		p := make([]float32, 1000)
		if _, err := pr.Read(p); err != nil {
			t.Fatal(err)
		}
		if err := pr.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
		if _, err := pr.Read(p); err == nil {
			t.Fatal("read after close accepted")
		}
	})

	t.Run("reader corrupt stream", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		bad := append([]byte(nil), blob...)
		copy(bad[20:], "garbagegarbage")
		pr := NewPipeReader(bytes.NewReader(bad), 4)
		if _, err := pr.ReadAll(); err == nil {
			t.Fatal("corrupt stream accepted")
		}
		_ = pr.Close()
		waitGoroutines(t, baseline)
	})

	t.Run("writer cancelled context", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		gate := make(chan struct{})
		pw := NewPipeWriterContext(ctx, &gatedWriter{gate: gate}, Options{ErrorBound: 1e-3}, 1<<12, 2)
		// The gated sink stalls the emitter, so the ring fills and the
		// producer blocks in submit; the cancellation must wake it.
		writeErr := make(chan error, 1)
		go func() {
			var err error
			for err == nil {
				err = pw.Write(data[:1<<12])
			}
			writeErr <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		if err := <-writeErr; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled write: %v", err)
		}
		close(gate) // let the emitter's in-flight sink write return
		if err := pw.Close(); !errors.Is(err, context.Canceled) {
			t.Fatalf("close after cancel: %v", err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("writer context cancelled before first write", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var buf bytes.Buffer
		pw := NewPipeWriterContext(ctx, &buf, Options{ErrorBound: 1e-3}, 1<<12, 2)
		if err := pw.Write(data[:100]); !errors.Is(err, context.Canceled) {
			t.Fatalf("write on cancelled context: %v", err)
		}
		if err := pw.Close(); !errors.Is(err, context.Canceled) {
			t.Fatalf("close on cancelled context: %v", err)
		}
		if buf.Len() != 0 {
			t.Fatalf("cancelled writer emitted %d bytes", buf.Len())
		}
		waitGoroutines(t, baseline)
	})

	t.Run("reader cancelled context", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		pr := NewPipeReaderContext(ctx, bytes.NewReader(blob), 4)
		p := make([]float32, 1000)
		if _, err := pr.Read(p); err != nil {
			t.Fatal(err)
		}
		cancel()
		var err error
		for err == nil {
			_, err = pr.Read(p)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("read after cancel: %v", err)
		}
		// The prefetcher and workers wind down on cancellation alone, with
		// no Close call — the abandoned-HTTP-request guarantee.
		waitGoroutines(t, baseline)
		if err := pr.Close(); err != nil {
			t.Fatal(err)
		}
		waitGoroutines(t, baseline)
	})

	t.Run("timestream close paths", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		var buf bytes.Buffer
		tw, err := NewTimeStreamWriter(&buf, Options{ErrorBound: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := tw.WriteFrame(data[:20000]); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		tr := NewTimeStreamReader(bytes.NewReader(buf.Bytes()))
		if _, err := tr.ReadFrame(); err != nil {
			t.Fatal(err)
		}
		_ = tr.Close() // mid-stream abandon
		waitGoroutines(t, baseline)
	})
}

// TestPipeCrossSerial round-trips pipelined writer output through the
// serial reader and vice versa — the two paths must interoperate freely.
func TestPipeCrossSerial(t *testing.T) {
	data := testField(150000, 37)
	var buf bytes.Buffer
	pw := NewPipeWriter(&buf, Options{ErrorBound: 1e-3}, 10007, 3)
	if err := pw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	serialOut, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPipeReader(bytes.NewReader(buf.Bytes()), 3)
	pipeOut, err := pr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	_ = pr.Close()
	if len(serialOut) != len(data) || len(pipeOut) != len(data) {
		t.Fatalf("lengths: serial %d pipe %d want %d", len(serialOut), len(pipeOut), len(data))
	}
	for i := range data {
		if math.Float32bits(serialOut[i]) != math.Float32bits(pipeOut[i]) {
			t.Fatalf("value %d differs between serial and pipelined readers", i)
		}
		if math.Abs(float64(data[i])-float64(serialOut[i])) > 1e-3 {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
}

// TestTimeStreamRoundTrip checks the pipelined temporal container end to
// end: bound respected on every frame, EOF after the last, truncation
// reported.
func TestTimeStreamRoundTrip(t *testing.T) {
	const frames, n = 12, 30000
	base := testField(n, 41)
	var buf bytes.Buffer
	tw, err := NewTimeStreamWriter(&buf, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]float32, n)
	for f := 0; f < frames; f++ {
		for i := range frame {
			frame[i] = base[i] + float32(f)*0.01*float32(math.Sin(float64(i)/500))
		}
		if err := tw.WriteFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	tr := NewTimeStreamReader(bytes.NewReader(buf.Bytes()))
	for f := 0; f < frames; f++ {
		got, err := tr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		for i := range got {
			want := float64(base[i]) + float64(f)*0.01*math.Sin(float64(i)/500)
			// The writer round-trips through float32, so compare against the
			// float32 frame the writer actually saw.
			w32 := base[i] + float32(f)*0.01*float32(math.Sin(float64(i)/500))
			_ = want
			if math.Abs(float64(w32)-float64(got[i])) > 1e-3 {
				t.Fatalf("frame %d value %d exceeds bound", f, i)
			}
		}
	}
	if _, err := tr.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: %v", err)
	}
	_ = tr.Close()

	// Truncation errors cleanly.
	trunc := NewTimeStreamReader(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	var terr error
	for terr == nil {
		_, terr = trunc.ReadFrame()
	}
	if terr == io.EOF || !errors.Is(terr, ErrTimeStream) {
		t.Fatalf("truncated temporal stream: %v", terr)
	}
	_ = trunc.Close()
}

// TestArchivePipelined checks the concurrent archive writer: identical
// bytes to the serial writer, WriteTo identical to Bytes, and error
// surfacing through Flush.
func TestArchivePipelined(t *testing.T) {
	fields := map[string][]float32{}
	serial := NewArchiveWriter(Options{ErrorBound: 1e-3})
	pipe := NewPipelinedArchiveWriter(Options{ErrorBound: 1e-3}, 4)
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("field%02d", i)
		data := testField(20000+137*i, int64(50+i))
		fields[name] = data
		if err := serial.AddField(name, []int{len(data)}, data); err != nil {
			t.Fatal(err)
		}
		if err := pipe.AddField(name, []int{len(data)}, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	want, got := serial.Bytes(), pipe.Bytes()
	if !bytes.Equal(want, got) {
		t.Fatalf("pipelined archive bytes differ from serial (%d vs %d)", len(got), len(want))
	}
	var sb bytes.Buffer
	n, err := pipe.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) || !bytes.Equal(want, sb.Bytes()) {
		t.Fatalf("WriteTo differs from Bytes (%d vs %d bytes)", n, len(want))
	}
	a, err := OpenArchive(got)
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range fields {
		vals, _, err := a.Read(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(data) {
			t.Fatalf("field %s: %d values want %d", name, len(vals), len(data))
		}
	}

	// Errors from in-flight compressions surface via Flush and poison Add.
	bad := NewPipelinedArchiveWriter(Options{ErrorBound: -1}, 2)
	_ = bad.AddField("x", []int{64}, testField(64, 1))
	if err := bad.Flush(); !errors.Is(err, ErrErrBound) {
		t.Fatalf("flush error: %v", err)
	}
	if err := bad.AddField("y", []int{64}, testField(64, 2)); !errors.Is(err, ErrErrBound) {
		t.Fatalf("add after error: %v", err)
	}
	if b := bad.Bytes(); b != nil {
		t.Fatalf("Bytes after error returned %d bytes", len(b))
	}
}

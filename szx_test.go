package szx

import (
	"math"
	"math/rand"
	"testing"
)

func testField(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 100.0
	for i := range out {
		v += 0.5 * (rng.Float64() - 0.5)
		out[i] = float32(v + 3*math.Sin(float64(i)/60))
	}
	return out
}

func TestCompressDecompressAbsolute(t *testing.T) {
	data := testField(20000, 1)
	comp, err := Compress(data, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(float64(data[i])-float64(dec[i])) > 1e-3 {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
	if len(comp) >= 4*len(data) {
		t.Errorf("no compression achieved: %d vs %d", len(comp), 4*len(data))
	}
}

func TestCompressDecompressRelative(t *testing.T) {
	data := testField(20000, 2)
	mn, mx := data[0], data[0]
	for _, v := range data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	rel := 1e-3
	abs := rel * (float64(mx) - float64(mn))
	comp, err := Compress(data, Options{ErrorBound: rel, Mode: BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.ErrBound-abs)/abs > 1e-12 {
		t.Errorf("resolved bound %g want %g", h.ErrBound, abs)
	}
	dec, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(float64(data[i])-float64(dec[i])) > abs {
			t.Fatalf("value %d exceeds relative bound", i)
		}
	}
}

func TestRelativeDegenerate(t *testing.T) {
	flat := make([]float32, 100)
	if _, err := Compress(flat, Options{ErrorBound: 1e-3, Mode: BoundRelative}); err != ErrDegenerateRange {
		t.Errorf("flat data: got %v", err)
	}
	if _, err := Compress(nil, Options{ErrorBound: 1e-3, Mode: BoundRelative}); err != ErrDegenerateRange {
		t.Errorf("empty data: got %v", err)
	}
}

func TestWorkersVariants(t *testing.T) {
	data := testField(50000, 3)
	ref, err := Compress(data, Options{ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{WorkersSerial, WorkersAuto, 1, 3, 9} {
		comp, err := Compress(data, Options{ErrorBound: 1e-4, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if string(comp) != string(ref) {
			t.Fatalf("workers=%d: stream differs", w)
		}
		dec, err := DecompressParallel(comp, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(dec) != len(data) {
			t.Fatalf("workers=%d: wrong length", w)
		}
	}
}

func TestFloat64API(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = math.Exp(math.Sin(float64(i)/200)) * (1 + 0.001*rng.NormFloat64())
	}
	comp, st, err := CompressFloat64Stats(data, Options{ErrorBound: 1e-6, Mode: BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() <= 1 {
		t.Errorf("ratio %.2f", st.Ratio())
	}
	dec, err := DecompressFloat64Parallel(comp, WorkersAuto)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := Info(comp)
	for i := range data {
		if math.Abs(data[i]-dec[i]) > h.ErrBound {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
	if h.Type != TypeFloat64 {
		t.Errorf("type %v", h.Type)
	}
}

func TestInfoRejectsGarbage(t *testing.T) {
	if _, err := Info([]byte("not a stream at all, definitely")); err == nil {
		t.Error("expected error")
	}
}

func TestStatsExposed(t *testing.T) {
	data := testField(12800, 5)
	_, st, err := CompressStats(data, Options{ErrorBound: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 100 || st.OriginalSize != 4*12800 {
		t.Errorf("stats: %+v", st)
	}
}

package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/telemetry"
)

// Pipelined temporal streaming: TimeCompressor frames are inherently
// sequential (each residual is computed against the previous reconstructed
// frame), so chunk-level parallelism does not apply — but the I/O still
// overlaps. TimeStreamWriter hands each compressed frame to an emitter
// goroutine so frame n+1's residual computation runs while frame n's bytes
// are in flight to the sink; TimeStreamReader prefetches frames ahead of
// the decoder the same way. Both ends use a simple length-prefixed
// container mirroring the value-stream one:
//
//	"SZXT" u8(version)
//	repeat: u32 frameLen | one TimeCompressor frame
//	u32(0) terminator

const (
	timeStreamMagic   = "SZXT"
	timeStreamVersion = 1
	// timeStreamAhead is how many compressed frames the writer (and
	// prefetching reader) keep in flight; temporal frames are whole
	// snapshots, so a small window already hides the I/O.
	timeStreamAhead = 2
)

// ErrTimeStream reports a malformed temporal streaming container.
var ErrTimeStream = errors.New("szx: malformed temporal stream container")

// TimeStreamWriter writes a TimeCompressor frame sequence to w, compressing
// the next frame while the previous one's bytes are being written. Not safe
// for concurrent use; Close flushes, writes the terminator, and joins the
// emitter goroutine.
type TimeStreamWriter struct {
	tc     *TimeCompressor
	w      io.Writer
	pend   chan []byte
	done   chan struct{}
	perr   pipeErr
	closed bool
}

// NewTimeStreamWriter returns a pipelined temporal stream compressor
// writing to w. opt.Mode must be BoundAbsolute (see NewTimeCompressor).
func NewTimeStreamWriter(w io.Writer, opt Options) (*TimeStreamWriter, error) {
	tc, err := NewTimeCompressor(opt)
	if err != nil {
		return nil, err
	}
	tw := &TimeStreamWriter{
		tc:   tc,
		w:    w,
		pend: make(chan []byte, timeStreamAhead),
		done: make(chan struct{}),
	}
	go tw.emitter()
	if telemetry.Enabled() {
		telemetry.PipelineStarts.Inc()
		telemetry.PipelineDepths.Observe(timeStreamAhead)
	}
	return tw, nil
}

func (tw *TimeStreamWriter) emitter() {
	defer close(tw.done)
	var hdr [4]byte
	first := true
	for frame := range tw.pend {
		if tw.perr.get() != nil {
			continue // drain after failure; first error stays pinned
		}
		if first {
			if _, err := tw.w.Write(append([]byte(timeStreamMagic), timeStreamVersion)); err != nil {
				tw.perr.set(err)
				continue
			}
			first = false
		}
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
		if _, err := tw.w.Write(hdr[:]); err != nil {
			tw.perr.set(err)
			continue
		}
		if _, err := tw.w.Write(frame); err != nil {
			tw.perr.set(err)
			continue
		}
		if telemetry.Enabled() {
			telemetry.StreamFramesWritten.Inc()
		}
	}
	if first && tw.perr.get() == nil {
		// Empty stream: emit the magic so Close's terminator lands in a
		// well-formed container.
		if _, err := tw.w.Write(append([]byte(timeStreamMagic), timeStreamVersion)); err != nil {
			tw.perr.set(err)
		}
	}
}

// WriteFrame compresses the next temporal frame and queues its bytes for
// emission, returning once the compression (not the write) is done. Frame
// errors from the emitter surface on a later call or on Close.
func (tw *TimeStreamWriter) WriteFrame(frame []float32) error {
	if err := tw.perr.get(); err != nil {
		return err
	}
	if tw.closed {
		return errors.New("szx: write after Close")
	}
	comp, err := tw.tc.CompressFrame(frame)
	if err != nil {
		tw.perr.set(err)
		// The emitter is still healthy; shut it down on Close as usual.
		return err
	}
	if telemetry.Enabled() {
		t := telemetry.Start()
		tw.pend <- comp
		t.Stop(&telemetry.PipelineProducerStalls)
		telemetry.PipelineFramesInFlight.Observe(int64(len(tw.pend)))
	} else {
		tw.pend <- comp
	}
	return nil
}

// Close drains the emitter, writes the terminator, and joins the
// goroutine. It returns the first error the stream hit.
func (tw *TimeStreamWriter) Close() error {
	if tw.closed {
		return tw.perr.get()
	}
	tw.closed = true
	close(tw.pend)
	<-tw.done
	if err := tw.perr.get(); err != nil {
		return err
	}
	if _, err := tw.w.Write([]byte{0, 0, 0, 0}); err != nil {
		tw.perr.set(err)
		return err
	}
	return nil
}

// timeFrame carries one prefetched compressed frame (or the read error
// that ended prefetching).
type timeFrame struct {
	comp []byte
	err  error
}

// TimeStreamReader reconstructs a TimeStreamWriter sequence, prefetching
// compressed frames ahead of the (inherently sequential) temporal decoder
// so the read I/O overlaps frame reconstruction. Not safe for concurrent
// use; Close releases the prefetcher.
type TimeStreamReader struct {
	td     *TimeDecompressor
	pend   chan timeFrame
	stop   chan struct{}
	wg     sync.WaitGroup
	err    error
	closed bool
}

// NewTimeStreamReader returns a pipelined temporal stream decompressor
// reading from r.
func NewTimeStreamReader(r io.Reader) *TimeStreamReader {
	tr := &TimeStreamReader{
		td:   NewTimeDecompressor(),
		pend: make(chan timeFrame, timeStreamAhead),
		stop: make(chan struct{}),
	}
	tr.wg.Add(1)
	go tr.prefetch(r)
	if telemetry.Enabled() {
		telemetry.PipelineStarts.Inc()
		telemetry.PipelineDepths.Observe(timeStreamAhead)
	}
	return tr
}

func (tr *TimeStreamReader) deliver(f timeFrame) bool {
	select {
	case tr.pend <- f:
		return true
	case <-tr.stop:
		return false
	}
}

func (tr *TimeStreamReader) prefetch(r io.Reader) {
	defer tr.wg.Done()
	defer close(tr.pend)
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		tr.deliver(timeFrame{err: fmt.Errorf("%w: container header: %w", ErrTimeStream, err)})
		return
	}
	if string(hdr[:4]) != timeStreamMagic || hdr[4] != timeStreamVersion {
		tr.deliver(timeFrame{err: ErrTimeStream})
		return
	}
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			tr.deliver(timeFrame{err: fmt.Errorf("%w: truncated frame header: %w", ErrTimeStream, err)})
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if frameLen == 0 {
			return // clean terminator
		}
		if frameLen > 1<<31 {
			tr.deliver(timeFrame{err: fmt.Errorf("%w: frame length %d out of range", ErrTimeStream, frameLen)})
			return
		}
		// Each frame travels to the consumer, so it gets its own buffer
		// (grown incrementally against forged lengths, like readFrameBody).
		frame, got, err := readFrameBody(r, nil, int(frameLen))
		if err != nil {
			tr.deliver(timeFrame{err: fmt.Errorf("%w: truncated frame (%d of %d payload bytes): %w",
				ErrTimeStream, got, frameLen, err)})
			return
		}
		if !tr.deliver(timeFrame{comp: frame}) {
			return
		}
	}
}

// ReadFrame reconstructs the next temporal frame, returning io.EOF after
// the final one.
func (tr *TimeStreamReader) ReadFrame() ([]float32, error) {
	if tr.err != nil {
		return nil, tr.err
	}
	var f timeFrame
	var ok bool
	if telemetry.Enabled() {
		t := telemetry.Start()
		f, ok = <-tr.pend
		t.Stop(&telemetry.PipelineConsumerStalls)
	} else {
		f, ok = <-tr.pend
	}
	if !ok {
		tr.err = io.EOF
		return nil, io.EOF
	}
	if f.err != nil {
		tr.err = f.err
		return nil, tr.err
	}
	frame, err := tr.td.DecompressFrame(f.comp)
	if err != nil {
		tr.err = err
		return nil, err
	}
	if telemetry.Enabled() {
		telemetry.StreamFramesRead.Inc()
	}
	return frame, nil
}

// Close abandons the stream and joins the prefetcher. Idempotent; safe
// after EOF or an error.
func (tr *TimeStreamReader) Close() error {
	if tr.closed {
		return nil
	}
	tr.closed = true
	close(tr.stop)
	go func() {
		for range tr.pend { // unblock a prefetcher mid-send and drain
		}
	}()
	tr.wg.Wait()
	if tr.err == nil {
		tr.err = errors.New("szx: read after Close")
	}
	return nil
}

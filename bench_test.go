package szx

// Benchmark harness: one testing.B target per table and figure of the SZx
// paper's evaluation, plus ablations for the design choices called out in
// DESIGN.md §7. Throughput benches report MB/s via b.SetBytes; the
// characterization benches (Fig. 2/6/8/12/13) measure the cost of
// regenerating the artifact itself. Run everything with:
//
//	go test -bench=. -benchmem
//
// and regenerate the paper-style tables with cmd/szxbench.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/cuszx"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/lossless"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// benchScale keeps individual fields around a few hundred KB so the full
// sweep completes in minutes; cmd/szxbench runs the same experiments at
// larger scales.
const benchScale = 16

var benchCfg = experiments.Config{Scale: benchScale, Seed: 20220627, Quick: true}

// benchApps caches the six synthetic applications.
var benchApps = datagen.AllApps(benchScale, 20220627)

func appByName(name string) datagen.App {
	for _, a := range benchApps {
		if a.Name == name {
			return a
		}
	}
	panic("unknown app " + name)
}

func relAbs(data []float32, rel float64) float64 {
	mn, mx := metrics.ValueRange(data)
	return rel * (mx - mn)
}

// --- Fig. 2: block relative-value-range CDF -------------------------------

func BenchmarkFig2BlockRangeCDF(b *testing.B) {
	field := appByName("Miranda").Fields[2]
	thresholds := []float64{0.001, 0.01, 0.05, 0.1, 0.2}
	for _, bs := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("blocksize=%d", bs), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				metrics.BlockRangeCDF(field.Data, bs, thresholds)
			}
		})
	}
}

// --- Fig. 6: space overhead of right shifting -----------------------------

func BenchmarkFig6ShiftOverhead(b *testing.B) {
	field := appByName("Hurricane").Fields[2]
	abs := relAbs(field.Data, 1e-4)
	for _, bs := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("blocksize=%d", bs), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := core.CharacterizeShiftOverhead32(field.Data, abs, bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 8: block-size exploration (CR + PSNR) ---------------------------

func BenchmarkFig8BlockSize(b *testing.B) {
	field := appByName("Miranda").Fields[2]
	abs := relAbs(field.Data, 1e-3)
	for _, bs := range []int{8, 16, 32, 64, 128, 224} {
		b.Run(fmt.Sprintf("blocksize=%d", bs), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			var ratio float64
			for i := 0; i < b.N; i++ {
				comp, st, err := core.CompressFloat32Stats(field.Data, abs, core.Options{BlockSize: bs})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.DecompressFloat32(comp); err != nil {
					b.Fatal(err)
				}
				ratio = st.Ratio()
			}
			b.ReportMetric(ratio, "CR")
		})
	}
}

// --- Fig. 12: visual quality (PSNR/SSIM) ----------------------------------

func BenchmarkFig12Quality(b *testing.B) {
	field := appByName("Hurricane").Fields[0]
	for _, rel := range []float64{1e-3, 4e-3, 1e-2} {
		abs := relAbs(field.Data, rel)
		b.Run(fmt.Sprintf("rel=%g", rel), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				comp, err := core.CompressFloat32(field.Data, abs, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				dec, err := core.DecompressFloat32(comp)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := metrics.Measure(field.Data, dec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 13: error-distribution characterization -------------------------

func BenchmarkFig13ErrorDist(b *testing.B) {
	field := appByName("Nyx").Fields[0]
	for _, e := range []float64{1e-4, 1e-6} {
		b.Run(fmt.Sprintf("abs=%g", e), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				comp, err := core.CompressFloat32(field.Data, e, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				dec, err := core.DecompressFloat32(comp)
				if err != nil {
					b.Fatal(err)
				}
				h, err := metrics.ErrorHistogram(field.Data, dec, e, 40)
				if err != nil {
					b.Fatal(err)
				}
				if h.Exceed != 0 {
					b.Fatalf("%d errors exceed the bound", h.Exceed)
				}
			}
		})
	}
}

// --- Table 3: compression ratios, all four codecs -------------------------

func BenchmarkTable3Ratios(b *testing.B) {
	field := appByName("Miranda").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	dims := field.Dims
	codecs := []struct {
		name string
		run  func() (int, error)
	}{
		{"SZx", func() (int, error) {
			c, err := core.CompressFloat32(field.Data, abs, core.Options{})
			return len(c), err
		}},
		{"ZFP", func() (int, error) {
			c, err := zfp.Compress(field.Data, dims, abs)
			return len(c), err
		}},
		{"SZ", func() (int, error) {
			c, err := sz.Compress(field.Data, dims, abs, sz.Options{})
			return len(c), err
		}},
		{"zstd-like", func() (int, error) {
			return len(lossless.CompressLZ(lossless.Float32Bytes(field.Data))), nil
		}},
	}
	for _, c := range codecs {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			var size int
			for i := 0; i < b.N; i++ {
				n, err := c.run()
				if err != nil {
					b.Fatal(err)
				}
				size = n
			}
			b.ReportMetric(float64(4*len(field.Data))/float64(size), "CR")
		})
	}
}

// --- Tables 4/5: single-core throughput ------------------------------------

func benchSerial(b *testing.B, decompress bool) {
	for _, appName := range []string{"CESM-ATM", "Miranda", "Nyx"} {
		app := appByName(appName)
		field := app.Fields[0]
		abs := relAbs(field.Data, 1e-3)
		type entry struct {
			name       string
			compress   func() ([]byte, error)
			decompress func([]byte) error
		}
		entries := []entry{
			{"SZx",
				func() ([]byte, error) { return core.CompressFloat32(field.Data, abs, core.Options{}) },
				func(c []byte) error { _, err := core.DecompressFloat32(c); return err }},
			{"ZFP",
				func() ([]byte, error) { return zfp.Compress(field.Data, field.Dims, abs) },
				func(c []byte) error { _, _, err := zfp.Decompress(c); return err }},
			{"SZ",
				func() ([]byte, error) { return sz.Compress(field.Data, field.Dims, abs, sz.Options{}) },
				func(c []byte) error { _, _, err := sz.Decompress(c); return err }},
		}
		for _, e := range entries {
			b.Run(app.Short+"/"+e.name, func(b *testing.B) {
				b.SetBytes(int64(4 * len(field.Data)))
				if decompress {
					comp, err := e.compress()
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := e.decompress(comp); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for i := 0; i < b.N; i++ {
						if _, err := e.compress(); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

func BenchmarkTable4SerialCompress(b *testing.B)   { benchSerial(b, false) }
func BenchmarkTable5SerialDecompress(b *testing.B) { benchSerial(b, true) }

// --- Tables 6/7: multicore throughput --------------------------------------

func BenchmarkTable6ParallelCompress(b *testing.B) {
	field := appByName("Nyx").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressFloat32Parallel(field.Data, abs, core.Options{}, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable7ParallelDecompress(b *testing.B) {
	field := appByName("Nyx").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	comp, err := core.CompressFloat32(field.Data, abs, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := core.DecompressFloat32Parallel(comp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs. 14/15: simulated GPU kernels ------------------------------------

func BenchmarkFig14GPUCompress(b *testing.B) {
	field := appByName("Miranda").Fields[2]
	abs := relAbs(field.Data, 1e-3)
	b.SetBytes(int64(4 * len(field.Data)))
	for i := 0; i < b.N; i++ {
		if _, _, err := cuszx.Compress(field.Data, abs, core.Options{}, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15GPUDecompress(b *testing.B) {
	field := appByName("Miranda").Fields[2]
	abs := relAbs(field.Data, 1e-3)
	comp, _, err := cuszx.Compress(field.Data, abs, core.Options{}, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(field.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cuszx.Decompress(comp, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 16: PFS dump/load -------------------------------------------------

func BenchmarkFig16DumpLoad(b *testing.B) {
	ny := appByName("Nyx")
	perRank := ny.Fields[0].Data
	abs := relAbs(perRank, 1e-3)
	codecs := []pfs.Codec{
		{Name: "SZx",
			Compress:   func(d []float32) ([]byte, error) { return core.CompressFloat32(d, abs, core.Options{}) },
			Decompress: core.DecompressFloat32},
		{Name: "SZ",
			Compress: func(d []float32) ([]byte, error) {
				return sz.Compress(d, []int{len(d)}, abs, sz.Options{})
			},
			Decompress: func(c []byte) ([]float32, error) { out, _, err := sz.Decompress(c); return out, err }},
		{Name: "ZFP",
			Compress:   func(d []float32) ([]byte, error) { return zfp.Compress(d, []int{len(d)}, abs) },
			Decompress: func(c []byte) ([]float32, error) { out, _, err := zfp.Decompress(c); return out, err }},
	}
	for _, c := range codecs {
		b.Run(c.Name, func(b *testing.B) {
			b.SetBytes(int64(4 * len(perRank)))
			var dump float64
			for i := 0; i < b.N; i++ {
				res, err := pfs.Simulate(pfs.ThetaFS, 256, perRank, c)
				if err != nil {
					b.Fatal(err)
				}
				dump = res.DumpSec()
			}
			b.ReportMetric(dump*1e3, "dump-ms")
		})
	}
}

// --- Ablations (DESIGN.md §7) -----------------------------------------------

// BenchmarkAblationShiftVsPack compares Solution C (byte-aligned right
// shift) against Solution B (tightly packed bits): the paper's core
// performance claim for §5.1.
func BenchmarkAblationShiftVsPack(b *testing.B) {
	field := appByName("Miranda").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	b.Run("shift", func(b *testing.B) {
		b.SetBytes(int64(4 * len(field.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.CompressFloat32(field.Data, abs, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		b.SetBytes(int64(4 * len(field.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.CompressFloat32PackedBits(field.Data, abs, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlockSize sweeps the block size's effect on speed.
func BenchmarkAblationBlockSize(b *testing.B) {
	field := appByName("Nyx").Fields[2]
	abs := relAbs(field.Data, 1e-3)
	for _, bs := range []int{8, 32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("blocksize=%d", bs), func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressFloat32(field.Data, abs, core.Options{BlockSize: bs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGuard measures the cost of the guarded error-bound
// verification pass versus the original SZx's unguarded behaviour.
func BenchmarkAblationGuard(b *testing.B) {
	field := appByName("Miranda").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	for _, unguarded := range []bool{false, true} {
		name := "guarded"
		if unguarded {
			name = "unguarded"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := core.CompressFloat32(field.Data, abs, core.Options{Unguarded: unguarded}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationZsize quantifies what the zsize side channel buys: the
// block-parallel decompression it enables versus serial decoding.
func BenchmarkAblationZsize(b *testing.B) {
	field := appByName("Nyx").Fields[0]
	abs := relAbs(field.Data, 1e-3)
	comp, err := core.CompressFloat32(field.Data, abs, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(4 * len(field.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecompressFloat32(comp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-zsize", func(b *testing.B) {
		b.SetBytes(int64(4 * len(field.Data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecompressFloat32Parallel(comp, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extension benches -------------------------------------------------------

// BenchmarkSZPredictors compares SZ's Lorenzo, regression, and auto
// predictor stages (the regression stage is the multiplication-heavy cost
// the paper attributes to SZ 2.1).
func BenchmarkSZPredictors(b *testing.B) {
	field := appByName("Miranda").Fields[2]
	abs := relAbs(field.Data, 1e-3)
	for _, p := range []struct {
		name string
		pred sz.Predictor
	}{{"lorenzo", sz.PredLorenzo}, {"regression", sz.PredRegression}, {"auto", sz.PredAuto}} {
		b.Run(p.name, func(b *testing.B) {
			b.SetBytes(int64(4 * len(field.Data)))
			var size int
			for i := 0; i < b.N; i++ {
				c, err := sz.Compress(field.Data, field.Dims, abs, sz.Options{Predictor: p.pred})
				if err != nil {
					b.Fatal(err)
				}
				size = len(c)
			}
			b.ReportMetric(float64(4*len(field.Data))/float64(size), "CR")
		})
	}
}

// BenchmarkCheckpoint runs the Ibtesham-style checkpoint viability model.
func BenchmarkCheckpoint(b *testing.B) {
	perRank := appByName("Miranda").Fields[0].Data
	abs := relAbs(perRank, 1e-3)
	fs := pfs.FileSystem{Name: "busy", AggregateGBps: 100, PerRankGBps: 1.5, LatencySec: 0.005}
	params := pfs.CheckpointParams{Ranks: 512, MTBFSeconds: 4 * 3600}
	c := pfs.Codec{
		Name:       "SZx",
		Compress:   func(d []float32) ([]byte, error) { return core.CompressFloat32(d, abs, core.Options{}) },
		Decompress: core.DecompressFloat32,
	}
	b.SetBytes(int64(4 * len(perRank)))
	for i := 0; i < b.N; i++ {
		if _, err := pfs.EvaluateCheckpoint(fs, params, perRank, &c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreaming measures the chunked streaming writer end to end.
func BenchmarkStreaming(b *testing.B) {
	data := appByName("Nyx").Fields[2].Data
	b.SetBytes(int64(4 * len(data)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{ErrorBound: 1e-3, Mode: BoundRelative}, 1<<16)
		if err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWriter isolates the Writer's I/O shape. The DevNull case
// pushes every frame through a real file descriptor, so each underlying
// Write is a syscall and the coalesced single-Write-per-chunk path shows up
// directly in ns/op; writes/chunk is reported so the coalescing is visible
// regardless of sink cost (it was 2 per chunk before frames were staged).
func BenchmarkStreamWriter(b *testing.B) {
	data := appByName("Nyx").Fields[2].Data
	const chunk = 1 << 14
	chunks := (len(data) + chunk - 1) / chunk
	run := func(b *testing.B, sink io.Writer) {
		b.SetBytes(int64(4 * len(data)))
		var writes int
		for i := 0; i < b.N; i++ {
			writes = 0
			w := NewWriter(writerFunc(func(p []byte) (int, error) {
				writes++
				return sink.Write(p)
			}), Options{ErrorBound: 1e-3, Mode: BoundRelative}, chunk)
			if err := w.Write(data); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		}
		// Exclude the one terminator Write so the metric is exactly the
		// per-chunk cost (2.0 before coalescing, 1.0 after).
		b.ReportMetric(float64(writes-1)/float64(chunks), "writes/chunk")
	}
	b.Run("Discard", func(b *testing.B) { run(b, io.Discard) })
	b.Run("DevNull", func(b *testing.B) {
		f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			b.Skip(err)
		}
		defer f.Close()
		run(b, f)
	})
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// BenchmarkReuse measures the zero-allocation Into API and the Codec
// handle through the public package surface: the steady-state in-situ
// loop (compress a frame, decompress a frame, same buffers every time).
// After the first iteration warms the buffers the serial paths should
// report ~0 allocs/op.
func BenchmarkReuse(b *testing.B) {
	data := appByName("Nyx").Fields[0].Data
	opt := Options{ErrorBound: 1e-3}
	comp, err := Compress(data, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("CompressInto", func(b *testing.B) {
		var dst []byte
		b.SetBytes(int64(4 * len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dst, err = CompressInto(dst[:0], data, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DecompressInto", func(b *testing.B) {
		var dst []float32
		b.SetBytes(int64(4 * len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dst, err = DecompressInto(dst[:0], comp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Codec", func(b *testing.B) {
		c := NewCodec[float32](opt)
		b.SetBytes(int64(4 * len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cc, err := c.Compress(data)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Decompress(cc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRandomAccess measures block-granular range decodes against the
// zsize index.
func BenchmarkRandomAccess(b *testing.B) {
	data := appByName("Miranda").Fields[0].Data
	abs := relAbs(data, 1e-3)
	comp, err := core.CompressFloat32(data, abs, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("range64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := (i * 4973) % (len(data) - 64)
			if _, err := core.DecompressFloat32Range(comp, lo, lo+64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.SetBytes(int64(4 * len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := core.DecompressFloat32(comp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

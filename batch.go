package szx

import (
	"slices"

	"repro/internal/core"
	"repro/internal/ieee"
)

// Batch entry points: many independent arrays, one engine pass. The service
// motivation is small payloads — at 4-256 KiB per array the fixed costs
// (plan resolution, worker handoff, HTTP round trip at the service layer)
// rival the codec work itself, so the win is to make the *array* the unit of
// parallelism: arrays become work items on the same work-stealing cursor the
// chunk engine uses, each array encodes serially inside one worker, and the
// whole batch costs one fan-out instead of N.
//
// Results are positional and independent: errs[i] reports array i alone, and
// one corrupt or degenerate array never poisons its neighbours. Each array
// resolves its own Plan (relative bounds against its own value range, its
// own fixed-ratio search), so a batch is byte-identical to N one-shot calls
// with the same Options — pinned by TestCompressBatchByteIdentity.

// CompressBatch compresses each array independently under opt, appending
// stream i onto outs[i][:0] (outs is grown to len(arrays); existing element
// capacity is reused, so a warm caller allocates nothing). opt.Workers
// controls cross-array parallelism — arrays are distributed over the
// persistent worker pool and each array encodes serially within its worker.
// Batches whose total payload is below the adaptive engine's serial
// threshold run inline on the caller.
//
// The returned slices are outs and errs grown to length len(arrays);
// errs[i] != nil marks array i failed (its outs[i] is left empty).
func CompressBatch[T Float](outs [][]byte, errs []error, arrays [][]T, opt Options) ([][]byte, []error) {
	n := len(arrays)
	outs = growBatch(outs, n)
	errs = growBatch(errs, n)
	for i := range errs {
		errs[i] = nil
	}
	if n == 0 {
		return outs, errs
	}
	if err := opt.validate(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return outs, errs
	}
	w := opt.workers()
	if w > n {
		w = n
	}
	es := ieee.Width[T]()
	total := 0
	for _, a := range arrays {
		total += len(a)
	}
	if core.ParallelMinBytes > 0 && es*total < core.ParallelMinBytes {
		w = 1
	}
	aopt := opt
	aopt.Workers = 0 // the array is the parallel unit; each encodes serially
	aopt.Spans = nil // per-array spans would interleave arbitrarily

	// Fixed-ratio batches lease one probe scratch per participant up front,
	// so the per-array bound searches run concurrently on warm buffers.
	var rss []*ratioScratch
	if opt.TargetRatio > 0 {
		parts := w
		if parts < 1 {
			parts = 1
		}
		rss = make([]*ratioScratch, parts)
		for i := range rss {
			rss[i] = getRatioScratch()
		}
		defer func() {
			for _, rs := range rss {
				putRatioScratch(rs)
			}
		}()
	}
	core.BatchRun(n, w, func(worker, i int) {
		var rs *ratioScratch
		if rss != nil {
			rs = rss[worker]
		}
		out, err := compressInto(outs[i][:0], arrays[i], aopt, rs)
		if err != nil {
			errs[i] = err
			outs[i] = outs[i][:0]
			return
		}
		outs[i] = out
	})
	return outs, errs
}

// DecompressBatch decompresses each stream independently, appending array
// i's values onto outs[i][:0] (capacity reused, as in CompressBatch).
// workers controls cross-array parallelism (WorkersAuto = GOMAXPROCS); each
// stream decodes serially within its worker. A stream whose element type
// does not match T fails that array alone with ErrWrongType.
func DecompressBatch[T Float](outs [][]T, errs []error, comps [][]byte, workers int) ([][]T, []error) {
	n := len(comps)
	outs = growBatch(outs, n)
	errs = growBatch(errs, n)
	for i := range errs {
		errs[i] = nil
	}
	if n == 0 {
		return outs, errs
	}
	if workers == WorkersAuto {
		workers = core.Workers(0)
	}
	if workers > n {
		workers = n
	}
	// The adaptive threshold keys on decoded bytes: headers are cheap to
	// parse and give the exact output size (unparseable streams contribute
	// nothing — they fail per-array below either way).
	es := ieee.Width[T]()
	total := 0
	for _, c := range comps {
		if h, err := Info(c); err == nil {
			total += es * h.N
		}
	}
	if core.ParallelMinBytes > 0 && total < core.ParallelMinBytes {
		workers = 1
	}
	core.BatchRun(n, workers, func(_, i int) {
		out, err := core.DecompressInto(outs[i][:0], comps[i])
		if err != nil {
			errs[i] = err
			outs[i] = outs[i][:0]
			return
		}
		outs[i] = out
	})
	return outs, errs
}

// growBatch resizes a positional result slice to n, reusing the backing
// array (and therefore the per-element buffer capacities) of a warm caller.
func growBatch[S any](s []S, n int) []S {
	return slices.Grow(s[:0], n)[:n]
}

package huffman

import "testing"

func FuzzDecodeAll(f *testing.F) {
	enc, _ := EncodeAll([]int{1, 2, 3, 1, 1}, 8)
	f.Add(enc, 5)
	f.Add([]byte{}, 3)
	f.Fuzz(func(t *testing.T, src []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		_, _, _ = DecodeAll(src, n)
	})
}

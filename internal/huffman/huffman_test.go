package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestRoundTripSimple(t *testing.T) {
	syms := []int{0, 1, 1, 2, 2, 2, 2, 3, 0, 1}
	enc, err := EncodeAll(syms, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, used, err := DecodeAll(enc, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	if used != len(enc) {
		t.Errorf("consumed %d of %d", used, len(enc))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], syms[i])
		}
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	syms := make([]int, 100)
	for i := range syms {
		syms[i] = 7
	}
	enc, err := EncodeAll(syms, 16)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeAll(enc, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dec {
		if s != 7 {
			t.Fatal("wrong symbol")
		}
	}
	// Single-symbol streams should be ~1 bit per symbol.
	if len(enc) > 64 {
		t.Errorf("single-symbol stream too large: %d bytes", len(enc))
	}
}

func TestSkewGivesShortCodes(t *testing.T) {
	freq := make([]int64, 256)
	freq[0] = 1000000
	freq[1] = 10
	freq[2] = 10
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	if tab.CodeLen(0) != 1 {
		t.Errorf("dominant symbol len %d, want 1", tab.CodeLen(0))
	}
	if tab.CodeLen(1) < tab.CodeLen(0) {
		t.Error("rare symbol shorter than dominant")
	}
	if tab.CodeLen(3) != 0 {
		t.Error("unused symbol has a code")
	}
}

func TestEncodeBadSymbol(t *testing.T) {
	if _, err := EncodeAll([]int{0, 99}, 10); err != ErrBadSymbol {
		t.Errorf("got %v", err)
	}
	if _, err := EncodeAll(nil, 10); err != ErrEmptyInput {
		t.Errorf("got %v", err)
	}
	freq := make([]int64, 4)
	tab := func() *Table {
		freq[0], freq[1] = 5, 3
		tb, _ := Build(freq)
		return tb
	}()
	w := bitio.NewWriter(8)
	if err := tab.Encode(w, 3); err != ErrBadSymbol {
		t.Errorf("unused symbol: got %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	syms := []int{1, 2, 3, 4, 5}
	enc, err := EncodeAll(syms, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeAll(enc[:4], 5); err == nil {
		t.Error("short table accepted")
	}
	if _, _, err := DecodeAll(enc[:len(enc)-2], 5); err == nil {
		t.Error("truncated payload accepted")
	}
	// Bit flips must never panic.
	for i := 0; i < len(enc); i++ {
		c := append([]byte(nil), enc...)
		c[i] ^= 0x55
		_, _, _ = DecodeAll(c, 5)
	}
}

func TestLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 20000)
	for i := range syms {
		// Quantization-code-like distribution centered at 32768.
		syms[i] = 32768 + int(rng.NormFloat64()*20)
	}
	enc, err := EncodeAll(syms, 65536)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecodeAll(enc, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// ~8 bits/symbol max for a ±60 spread alphabet.
	if len(enc) > 2*len(syms) {
		t.Errorf("encoding too large: %d bytes for %d symbols", len(enc), len(syms))
	}
}

func TestTableSerialization(t *testing.T) {
	freq := make([]int64, 100)
	for i := 0; i < 100; i += 7 {
		freq[i] = int64(i + 1)
	}
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	ser := tab.WriteTable(nil)
	tab2, used, err := ReadTable(ser)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(ser) {
		t.Errorf("consumed %d of %d", used, len(ser))
	}
	for s := 0; s < 100; s++ {
		if tab.CodeLen(s) != tab2.CodeLen(s) {
			t.Errorf("symbol %d: len %d != %d", s, tab.CodeLen(s), tab2.CodeLen(s))
		}
	}
	if tab2.AlphabetSize() != 100 {
		t.Errorf("alphabet %d", tab2.AlphabetSize())
	}
}

// Property: prefix-free codes — no code is a prefix of another.
func TestPrefixFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		freq := make([]int64, n)
		for i := range freq {
			freq[i] = int64(rng.Intn(1000))
		}
		freq[0] = 1 // ensure at least one nonzero
		tab, err := Build(freq)
		if err != nil {
			return false
		}
		type cw struct {
			code uint64
			len  uint8
		}
		var codes []cw
		for s := 0; s < n; s++ {
			if l := tab.CodeLen(s); l > 0 {
				codes = append(codes, cw{tab.codes[s], uint8(l)})
			}
		}
		for i := range codes {
			for j := range codes {
				if i == j {
					continue
				}
				a, b := codes[i], codes[j]
				if a.len > b.len {
					continue
				}
				if b.code>>uint(b.len-a.len) == a.code {
					return false // a is a prefix of b
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary symbol streams round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%3000 + 1
		alpha := 2 + rng.Intn(512)
		syms := make([]int, n)
		for i := range syms {
			// Mix of uniform and geometric-ish distributions.
			if rng.Intn(2) == 0 {
				syms[i] = rng.Intn(alpha)
			} else {
				s := 0
				for s < alpha-1 && rng.Intn(3) != 0 {
					s++
				}
				syms[i] = s
			}
		}
		enc, err := EncodeAll(syms, alpha)
		if err != nil {
			return false
		}
		dec, _, err := DecodeAll(enc, n)
		if err != nil {
			return false
		}
		for i := range syms {
			if dec[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPathologicalFrequencies(t *testing.T) {
	// Fibonacci-like frequencies produce the deepest trees; the flattening
	// fallback must keep codes within maxCodeLen.
	freq := make([]int64, 90)
	a, b := int64(1), int64(1)
	for i := range freq {
		freq[i] = a
		a, b = b, a+b
		if a < 0 { // overflow guard
			a = 1 << 62
		}
	}
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	for s := range freq {
		if tab.CodeLen(s) > maxCodeLen {
			t.Fatalf("symbol %d: code length %d exceeds cap", s, tab.CodeLen(s))
		}
	}
}

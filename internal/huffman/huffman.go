// Package huffman implements canonical Huffman coding over integer symbol
// alphabets. It is the entropy-coding stage of the SZ baseline compressor
// (Tao et al., IPDPS '17; Liang et al., BigData '18) that the SZx paper
// compares against: quantization codes produced by the Lorenzo predictor
// are Huffman-encoded, which is precisely the "expensive encoding" stage
// whose cost SZx's design avoids.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/bitio"
)

// Errors returned by the codec.
var (
	ErrCorrupt    = errors.New("huffman: corrupt stream")
	ErrBadSymbol  = errors.New("huffman: symbol out of alphabet range")
	ErrEmptyInput = errors.New("huffman: no symbols to encode")
)

// maxCodeLen keeps codes within a single 64-bit accumulator write.
const maxCodeLen = 57

type node struct {
	freq        int64
	symbol      int // -1 for internal
	left, right int // indices into the pool, -1 for leaves
}

type nodeHeap struct {
	pool  []node
	order []int
}

func (h nodeHeap) Len() int { return len(h.order) }
func (h nodeHeap) Less(i, j int) bool {
	a, b := h.pool[h.order[i]], h.pool[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	// Tie-break deterministically.
	return h.order[i] < h.order[j]
}
func (h nodeHeap) Swap(i, j int)       { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x interface{}) { h.order = append(h.order, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.order
	n := len(old)
	x := old[n-1]
	h.order = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given frequencies
// (zero-frequency symbols get length 0). If the natural tree would exceed
// maxCodeLen, frequencies are flattened until it fits.
func codeLengths(freq []int64) []uint8 {
	lens := make([]uint8, len(freq))
	f := append([]int64(nil), freq...)
	for {
		used := 0
		lastSym := -1
		for s, c := range f {
			if c > 0 {
				used++
				lastSym = s
			}
		}
		if used == 0 {
			return lens
		}
		if used == 1 {
			lens[lastSym] = 1
			return lens
		}

		pool := make([]node, 0, 2*used)
		h := &nodeHeap{pool: pool}
		for s, c := range f {
			if c > 0 {
				h.pool = append(h.pool, node{freq: c, symbol: s, left: -1, right: -1})
				h.order = append(h.order, len(h.pool)-1)
			}
		}
		heap.Init(h)
		for h.Len() > 1 {
			a := heap.Pop(h).(int)
			b := heap.Pop(h).(int)
			h.pool = append(h.pool, node{
				freq: h.pool[a].freq + h.pool[b].freq, symbol: -1, left: a, right: b,
			})
			heap.Push(h, len(h.pool)-1)
		}
		root := h.order[0]

		// Depth-first walk to assign lengths.
		maxLen := uint8(0)
		for i := range lens {
			lens[i] = 0
		}
		type frame struct {
			n     int
			depth uint8
		}
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := h.pool[fr.n]
			if nd.symbol >= 0 {
				lens[nd.symbol] = fr.depth
				if fr.depth > maxLen {
					maxLen = fr.depth
				}
				continue
			}
			stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
		}
		if maxLen <= maxCodeLen {
			return lens
		}
		// Flatten the distribution and retry (rare: needs ~Fibonacci freqs).
		for s := range f {
			if f[s] > 0 {
				f[s] = f[s]/2 + 1
			}
		}
	}
}

// lutBits sizes the one-shot decode table: codes up to this length decode
// with a single peek instead of a bit-by-bit canonical walk.
const lutBits = 11

// lutEntry is one decode-table slot; len 0 marks "fall back to the walk".
type lutEntry struct {
	sym int32
	len uint8
}

// Table holds canonical codes for an alphabet.
type Table struct {
	lens  []uint8
	codes []uint64
	// Canonical decode acceleration, indexed by code length.
	firstCode  [maxCodeLen + 2]uint64
	firstIndex [maxCodeLen + 2]int
	symbols    []int // symbols sorted by (len, symbol)
	maxLen     uint8
	lut        []lutEntry
}

// Build constructs a canonical Huffman table from symbol frequencies.
func Build(freq []int64) (*Table, error) {
	any := false
	for _, c := range freq {
		if c < 0 {
			return nil, ErrCorrupt
		}
		if c > 0 {
			any = true
		}
	}
	if !any {
		return nil, ErrEmptyInput
	}
	return fromLengths(codeLengths(freq))
}

// fromLengths derives canonical codes from code lengths.
func fromLengths(lens []uint8) (*Table, error) {
	t := &Table{lens: lens, codes: make([]uint64, len(lens))}
	var count [maxCodeLen + 2]int
	for _, l := range lens {
		if l > maxCodeLen {
			return nil, ErrCorrupt
		}
		if l > 0 {
			count[l]++
			if l > t.maxLen {
				t.maxLen = l
			}
		}
	}
	if t.maxLen == 0 {
		return nil, ErrEmptyInput
	}
	// Canonical first-code / first-index tables, with a Kraft-inequality
	// check so corrupt length sets are rejected.
	var c uint64
	i := 0
	for l := uint8(1); l <= t.maxLen; l++ {
		c <<= 1
		t.firstCode[l] = c
		t.firstIndex[l] = i
		c += uint64(count[l])
		i += count[l]
	}
	if c > 1<<uint(t.maxLen) {
		return nil, ErrCorrupt
	}

	// Symbols ordered by (length, symbol) give each its canonical code.
	t.symbols = make([]int, 0, i)
	for s, l := range lens {
		if l > 0 {
			t.symbols = append(t.symbols, s)
		}
	}
	sort.Slice(t.symbols, func(a, b int) bool {
		sa, sb := t.symbols[a], t.symbols[b]
		if lens[sa] != lens[sb] {
			return lens[sa] < lens[sb]
		}
		return sa < sb
	})
	perLen := make([]uint64, maxCodeLen+2)
	for l := uint8(1); l <= t.maxLen; l++ {
		perLen[l] = t.firstCode[l]
	}
	for _, s := range t.symbols {
		l := t.lens[s]
		t.codes[s] = perLen[l]
		perLen[l]++
	}

	// One-shot decode table: every lutBits-bit window starting with a short
	// code maps directly to its symbol.
	t.lut = make([]lutEntry, 1<<lutBits)
	for _, s := range t.symbols {
		l := uint(t.lens[s])
		if l > lutBits {
			continue
		}
		base := t.codes[s] << (lutBits - l)
		for i := uint64(0); i < 1<<(lutBits-l); i++ {
			t.lut[base+i] = lutEntry{sym: int32(s), len: uint8(l)}
		}
	}
	return t, nil
}

// AlphabetSize returns the size of the table's alphabet.
func (t *Table) AlphabetSize() int { return len(t.lens) }

// CodeLen returns the code length of symbol s (0 = unused).
func (t *Table) CodeLen(s int) int { return int(t.lens[s]) }

// Encode appends the code for symbol s to w.
func (t *Table) Encode(w *bitio.Writer, s int) error {
	if s < 0 || s >= len(t.lens) || t.lens[s] == 0 {
		return ErrBadSymbol
	}
	w.WriteBits(t.codes[s], uint(t.lens[s]))
	return nil
}

// Decode reads one symbol from r: a single-peek table lookup for codes up
// to lutBits long, falling back to the canonical walk for longer codes and
// stream tails.
func (t *Table) Decode(r *bitio.Reader) (int, error) {
	if window, got := r.PeekBits(lutBits); got > 0 {
		if e := t.lut[window]; e.len != 0 && uint(e.len) <= got {
			if err := r.SkipBits(uint(e.len)); err != nil {
				return 0, err
			}
			return int(e.sym), nil
		}
	}
	var code uint64
	for l := uint8(1); l <= t.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		next := t.firstCode[l] + uint64(t.countAt(l))
		if code >= t.firstCode[l] && code < next {
			return t.symbols[t.firstIndex[l]+int(code-t.firstCode[l])], nil
		}
	}
	return 0, ErrCorrupt
}

func (t *Table) countAt(l uint8) int {
	if l == t.maxLen {
		return len(t.symbols) - t.firstIndex[l]
	}
	return t.firstIndex[l+1] - t.firstIndex[l]
}

// WriteTable serializes the table (alphabet size + sparse symbol/length
// pairs) so the decoder can rebuild it.
func (t *Table) WriteTable(dst []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(t.lens)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.symbols)))
	dst = append(dst, hdr[:]...)
	for _, s := range t.symbols {
		var rec [5]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(s))
		rec[4] = t.lens[s]
		dst = append(dst, rec[:]...)
	}
	return dst
}

// ReadTable deserializes a table written by WriteTable and returns it along
// with the number of bytes consumed.
func ReadTable(src []byte) (*Table, int, error) {
	if len(src) < 8 {
		return nil, 0, ErrCorrupt
	}
	alpha := int(binary.LittleEndian.Uint32(src[0:]))
	used := int(binary.LittleEndian.Uint32(src[4:]))
	if alpha < 1 || alpha > 1<<24 || used < 1 || used > alpha {
		return nil, 0, ErrCorrupt
	}
	need := 8 + 5*used
	if len(src) < need {
		return nil, 0, ErrCorrupt
	}
	lens := make([]uint8, alpha)
	for i := 0; i < used; i++ {
		s := int(binary.LittleEndian.Uint32(src[8+5*i:]))
		l := src[8+5*i+4]
		if s >= alpha || l == 0 || l > maxCodeLen {
			return nil, 0, ErrCorrupt
		}
		lens[s] = l
	}
	t, err := fromLengths(lens)
	if err != nil {
		return nil, 0, err
	}
	return t, need, nil
}

// EncodeAll Huffman-encodes the symbol stream and returns table+payload:
// [table][u32 bit-length][payload bytes].
func EncodeAll(symbols []int, alphabet int) ([]byte, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyInput
	}
	freq := make([]int64, alphabet)
	for _, s := range symbols {
		if s < 0 || s >= alphabet {
			return nil, ErrBadSymbol
		}
		freq[s]++
	}
	t, err := Build(freq)
	if err != nil {
		return nil, err
	}
	out := t.WriteTable(nil)
	w := bitio.NewWriter(len(symbols) / 2)
	for _, s := range symbols {
		if err := t.Encode(w, s); err != nil {
			return nil, err
		}
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(w.Len()))
	out = append(out, lenBuf[:]...)
	out = append(out, w.Bytes()...)
	return out, nil
}

// DecodeAll reverses EncodeAll, returning n decoded symbols and the number
// of bytes consumed from src.
func DecodeAll(src []byte, n int) ([]int, int, error) {
	t, used, err := ReadTable(src)
	if err != nil {
		return nil, 0, err
	}
	if len(src) < used+4 {
		return nil, 0, ErrCorrupt
	}
	bitLen := int(binary.LittleEndian.Uint32(src[used:]))
	used += 4
	payloadBytes := (bitLen + 7) / 8
	if bitLen < 0 || len(src) < used+payloadBytes {
		return nil, 0, ErrCorrupt
	}
	// Every symbol costs at least one bit, so a forged count larger than
	// the payload cannot force a huge allocation.
	if n < 0 || n > bitLen {
		return nil, 0, ErrCorrupt
	}
	r := bitio.NewReader(src[used : used+payloadBytes])
	out := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := t.Decode(r)
		if err != nil {
			return nil, 0, err
		}
		out[i] = s
	}
	return out, used + payloadBytes, nil
}

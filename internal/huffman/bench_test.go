package huffman

import (
	"math/rand"
	"testing"
)

func BenchmarkDecodeAll(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 100000)
	for i := range syms {
		syms[i] = 32768 + int(rng.NormFloat64()*15)
	}
	enc, _ := EncodeAll(syms, 65536)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeAll(enc, len(syms)); err != nil {
			b.Fatal(err)
		}
	}
}

package render

import (
	"bytes"
	"math"
	"testing"
)

func TestNormalizeBasic(t *testing.T) {
	n := Normalize([]float32{0, 5, 10}, 0)
	if n[0] != 0 || n[2] != 1 || math.Abs(n[1]-0.5) > 1e-12 {
		t.Errorf("got %v", n)
	}
}

func TestNormalizeConstant(t *testing.T) {
	n := Normalize([]float32{3, 3, 3}, 0)
	for _, v := range n {
		if v != 0 {
			t.Errorf("constant field normalized to %v", v)
		}
	}
}

func TestNormalizeClip(t *testing.T) {
	data := make([]float32, 100)
	for i := range data {
		data[i] = float32(i)
	}
	data[99] = 1e9 // outlier
	n := Normalize(data, 0.02)
	// Without clipping, n[50] would be ~0; with it, midrange stays visible.
	if n[50] < 0.3 {
		t.Errorf("clipping ineffective: n[50]=%v", n[50])
	}
	if n[99] != 1 {
		t.Errorf("outlier not saturated: %v", n[99])
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := Normalize(nil, 0.1); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestPGMFormat(t *testing.T) {
	img, err := PGM([]float64{0, 0.5, 1, 0.25}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(img, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", img[:12])
	}
	px := img[len(img)-4:]
	if px[0] != 0 || px[2] != 255 {
		t.Errorf("pixels % d", px)
	}
	if _, err := PGM([]float64{0}, 2, 2); err != ErrBadShape {
		t.Errorf("shape check: %v", err)
	}
}

func TestPPMFormat(t *testing.T) {
	img, err := PPM([]float64{0, 0.5, 1}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(img, []byte("P6\n3 1\n255\n")) {
		t.Fatalf("bad header")
	}
	if len(img) != len("P6\n3 1\n255\n")+9 {
		t.Fatalf("len %d", len(img))
	}
}

func TestDivergingEndpoints(t *testing.T) {
	r, g, b := Diverging(0)
	if b != 255 || r > 100 {
		t.Errorf("t=0: %d %d %d (want blue)", r, g, b)
	}
	r, g, b = Diverging(0.5)
	if r != 255 || g != 255 || b != 255 {
		t.Errorf("t=0.5: %d %d %d (want white)", r, g, b)
	}
	r, g, b = Diverging(1)
	if r != 255 || b > 100 {
		t.Errorf("t=1: %d %d %d (want red)", r, g, b)
	}
	// Out-of-range inputs clamp.
	Diverging(-5)
	Diverging(7)
}

func TestErrorMap(t *testing.T) {
	orig := []float32{1, 2, 3, 4}
	rec := []float32{1, 2.001, 2.999, 4}
	img, err := ErrorMap(orig, rec, 2, 2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(img, []byte("P6\n")) {
		t.Fatal("not a PPM")
	}
	if _, err := ErrorMap(orig, rec[:3], 2, 2, 0.001); err != ErrBadShape {
		t.Errorf("shape check: %v", err)
	}
}

func TestSideBySide(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	out, h, w, err := SideBySide(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 || w != 6 {
		t.Fatalf("dims %dx%d", h, w)
	}
	if out[0] != 0 || out[5] != 1 || out[2] != 1 /* separator */ {
		t.Errorf("layout %v", out)
	}
	if _, _, _, err := SideBySide(a, b[:2], 2, 2); err != ErrBadShape {
		t.Errorf("shape check: %v", err)
	}
}

// Package render rasterizes 2-D slices of scientific fields to PGM/PPM
// images, reproducing the visual artifacts of the paper: the smoothness
// gallery of Fig. 1 and the original-vs-reconstructed comparisons of
// Fig. 12. A diverging false-color map highlights compression artifacts
// the way the paper's heat maps do.
package render

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadShape is returned when the data does not match the given extent.
var ErrBadShape = errors.New("render: data length does not match width*height")

// Normalize maps data to [0,1] with optional robust percentile clipping
// (clip=0.02 clips the top and bottom 2%, which is how sparse fields like
// the Hurricane cloud data stay visible).
func Normalize(data []float32, clip float64) []float64 {
	out := make([]float64, len(data))
	if len(data) == 0 {
		return out
	}
	lo, hi := robustRange(data, clip)
	scale := hi - lo
	if scale == 0 {
		scale = 1
	}
	for i, v := range data {
		x := (float64(v) - lo) / scale
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		out[i] = x
	}
	return out
}

func robustRange(data []float32, clip float64) (lo, hi float64) {
	if clip <= 0 {
		lo, hi = float64(data[0]), float64(data[0])
		for _, v := range data {
			f := float64(v)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		return lo, hi
	}
	s := make([]float64, len(data))
	for i, v := range data {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	i := int(clip * float64(len(s)))
	j := len(s) - 1 - i
	if j <= i {
		return s[0], s[len(s)-1]
	}
	return s[i], s[j]
}

// PGM encodes an h×w grayscale image (values in [0,1]) as a binary PGM
// (P5) file.
func PGM(norm []float64, h, w int) ([]byte, error) {
	if len(norm) != h*w || h < 1 || w < 1 {
		return nil, ErrBadShape
	}
	hdr := fmt.Sprintf("P5\n%d %d\n255\n", w, h)
	out := make([]byte, 0, len(hdr)+h*w)
	out = append(out, hdr...)
	for _, v := range norm {
		out = append(out, byte(math.Round(v*255)))
	}
	return out, nil
}

// PPM encodes an h×w image as binary PPM (P6) using a blue-white-red
// diverging palette (0 = deep blue, 0.5 = white, 1 = deep red), the
// conventional map for signed scientific fields and error maps.
func PPM(norm []float64, h, w int) ([]byte, error) {
	if len(norm) != h*w || h < 1 || w < 1 {
		return nil, ErrBadShape
	}
	hdr := fmt.Sprintf("P6\n%d %d\n255\n", w, h)
	out := make([]byte, 0, len(hdr)+3*h*w)
	out = append(out, hdr...)
	for _, v := range norm {
		r, g, b := Diverging(v)
		out = append(out, r, g, b)
	}
	return out, nil
}

// Diverging maps t in [0,1] to a blue-white-red ramp.
func Diverging(t float64) (r, g, b byte) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	if t < 0.5 {
		// blue -> white
		u := t * 2
		return byte(55 + 200*u), byte(75 + 180*u), 255
	}
	// white -> red
	u := (t - 0.5) * 2
	return 255, byte(255 - 195*u), byte(255 - 215*u)
}

// ErrorMap builds a diverging image of the signed reconstruction error
// orig-rec scaled to ±bound (0.5 = zero error).
func ErrorMap(orig, rec []float32, h, w int, bound float64) ([]byte, error) {
	if len(orig) != len(rec) || len(orig) != h*w {
		return nil, ErrBadShape
	}
	norm := make([]float64, h*w)
	for i := range orig {
		e := (float64(orig[i]) - float64(rec[i])) / bound // [-1, 1]
		norm[i] = (e + 1) / 2
	}
	return PPM(norm, h, w)
}

// SideBySide concatenates two equally sized normalized images horizontally
// with a 2-pixel separator, for original-vs-reconstructed panels.
func SideBySide(a, b []float64, h, w int) ([]float64, int, int, error) {
	if len(a) != h*w || len(b) != h*w {
		return nil, 0, 0, ErrBadShape
	}
	const sep = 2
	ow := 2*w + sep
	out := make([]float64, h*ow)
	for y := 0; y < h; y++ {
		copy(out[y*ow:], a[y*w:(y+1)*w])
		for x := 0; x < sep; x++ {
			out[y*ow+w+x] = 1
		}
		copy(out[y*ow+w+sep:], b[y*w:(y+1)*w])
	}
	return out, h, ow, nil
}

package datagen

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Miranda(16, 42)
	b := Miranda(16, 42)
	if len(a.Fields) != len(b.Fields) {
		t.Fatal("field count differs")
	}
	for i := range a.Fields {
		for j := range a.Fields[i].Data {
			if a.Fields[i].Data[j] != b.Fields[i].Data[j] {
				t.Fatalf("field %d value %d differs across runs", i, j)
			}
		}
	}
	c := Miranda(16, 43)
	same := true
	for j := range a.Fields[0].Data {
		if a.Fields[0].Data[j] != c.Fields[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAppsShape(t *testing.T) {
	apps := AllApps(16, 1)
	if len(apps) != 6 {
		t.Fatalf("want 6 apps, got %d", len(apps))
	}
	wantFields := map[string]int{
		"CESM-ATM": 8, "Hurricane": 6, "Miranda": 7,
		"Nyx": 6, "QMCPack": 2, "SCALE-LetKF": 5,
	}
	wantDims := map[string]int{
		"CESM-ATM": 2, "Hurricane": 3, "Miranda": 3,
		"Nyx": 3, "QMCPack": 4, "SCALE-LetKF": 3,
	}
	for _, app := range apps {
		if got := len(app.Fields); got != wantFields[app.Name] {
			t.Errorf("%s: %d fields, want %d", app.Name, got, wantFields[app.Name])
		}
		for _, f := range app.Fields {
			if len(f.Dims) != wantDims[app.Name] {
				t.Errorf("%s/%s: %d dims, want %d", app.Name, f.Name, len(f.Dims), wantDims[app.Name])
			}
			n := 1
			for _, d := range f.Dims {
				n *= d
			}
			if n != len(f.Data) {
				t.Errorf("%s/%s: dims product %d != len %d", app.Name, f.Name, n, len(f.Data))
			}
			if f.NumElements() != len(f.Data) {
				t.Errorf("%s/%s: NumElements mismatch", app.Name, f.Name)
			}
			for i, v := range f.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s/%s: non-finite value at %d", app.Name, f.Name, i)
				}
			}
		}
		if app.TotalBytes() <= 0 {
			t.Errorf("%s: TotalBytes %d", app.Name, app.TotalBytes())
		}
	}
}

// blockRangeFraction measures the fraction of size-8 blocks whose relative
// value range is below 0.01 — the paper's Fig. 2 smoothness signal.
func blockRangeFraction(data []float32) float64 {
	gmin, gmax := data[0], data[0]
	for _, v := range data {
		if v < gmin {
			gmin = v
		}
		if v > gmax {
			gmax = v
		}
	}
	g := float64(gmax) - float64(gmin)
	if g == 0 {
		return 1
	}
	smooth := 0
	blocks := 0
	for lo := 0; lo+8 <= len(data); lo += 8 {
		mn, mx := data[lo], data[lo]
		for _, v := range data[lo+1 : lo+8] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if (float64(mx)-float64(mn))/g <= 0.01 {
			smooth++
		}
		blocks++
	}
	return float64(smooth) / float64(blocks)
}

// TestSmoothnessOrdering verifies the Fig. 2 relationship the generators
// are tuned for: Miranda and QMCPack have far more smooth blocks than Nyx.
func TestSmoothnessOrdering(t *testing.T) {
	mi := Miranda(8, 7)
	qm := QMCPack(8, 7)
	ny := Nyx(8, 7)

	miFrac := blockRangeFraction(mi.Fields[2].Data) // pressure
	qmFrac := blockRangeFraction(qm.Fields[0].Data)
	nyFrac := blockRangeFraction(ny.Fields[0].Data) // baryon_density

	if miFrac < 0.5 {
		t.Errorf("Miranda pressure smooth fraction %.2f < 0.5", miFrac)
	}
	if qmFrac < 0.5 {
		t.Errorf("QMCPack smooth fraction %.2f < 0.5", qmFrac)
	}
	if nyFrac > miFrac {
		t.Errorf("Nyx (%.2f) smoother than Miranda (%.2f); want heavier tail", nyFrac, miFrac)
	}
}

func TestSparseFieldsMostlyZero(t *testing.T) {
	hu := Hurricane(8, 3)
	cloud := hu.Fields[0]
	zeros := 0
	for _, v := range cloud.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(cloud.Data))
	if frac < 0.3 {
		t.Errorf("CLOUDf48 zero fraction %.2f, want sparse field", frac)
	}
}

func TestSlice2D(t *testing.T) {
	apps := AllApps(16, 2)
	for _, app := range apps {
		for _, f := range app.Fields {
			s, h, w := Slice2D(f)
			if len(s) != h*w {
				t.Errorf("%s/%s: slice %d != %dx%d", app.Name, f.Name, len(s), h, w)
			}
		}
	}
}

func TestScaleDims(t *testing.T) {
	d := scaleDims([]int{100, 500}, 4)
	if d[0] != 25 || d[1] != 125 {
		t.Errorf("got %v", d)
	}
	d = scaleDims([]int{8}, 100) // clamps at 4
	if d[0] != 4 {
		t.Errorf("got %v", d)
	}
	d = scaleDims([]int{16}, 0) // scale < 1 treated as 1
	if d[0] != 16 {
		t.Errorf("got %v", d)
	}
}

// Package datagen synthesizes deterministic stand-ins for the six SDRBench
// application datasets used in the SZx paper's evaluation (Table 2).
//
// The real datasets (CESM-ATM, Hurricane-ISABEL, Miranda, Nyx, QMCPack,
// SCALE-LetKF) are not redistributable here, so each generator produces
// fields with the same dimensionality, a matching number of representative
// fields, and — most importantly — local smoothness statistics tuned to
// reproduce the paper's Fig. 2 block-range CDF ordering: Miranda and
// QMCPack are the smoothest, CESM and SCALE-LetKF intermediate, Hurricane
// and Nyx the heaviest-tailed. SZx's behaviour depends only on these
// block-local statistics, so the substitution preserves the evaluation's
// shape (who compresses better, how ratios move with the error bound).
//
// All generators are deterministic in (scale, seed).
package datagen

import (
	"math"
	"math/rand"
)

// Field is one named variable of an application dataset.
type Field struct {
	Name string
	Dims []int // slowest-varying dimension first
	Data []float32
}

// NumElements returns the number of values in the field.
func (f Field) NumElements() int { return len(f.Data) }

// App is a synthetic application dataset: a set of fields sharing a grid.
type App struct {
	Name   string // full name, e.g. "Miranda"
	Short  string // paper's column label, e.g. "Mi."
	Fields []Field
}

// TotalBytes returns the uncompressed size of all fields (float32).
func (a App) TotalBytes() int {
	n := 0
	for _, f := range a.Fields {
		n += 4 * len(f.Data)
	}
	return n
}

// fieldKind selects the structural character of a generated field.
type fieldKind int

const (
	kindWaves     fieldKind = iota // smooth superposition of low-freq modes
	kindBumps                      // smooth + localized Gaussian structures
	kindLognormal                  // exp of smooth field: heavy-tailed
	kindSparse                     // mostly-zero with localized plumes
	kindFronts                     // smooth with sharp moving fronts
)

// fieldSpec describes one synthetic field.
type fieldSpec struct {
	name   string
	kind   fieldKind
	modes  int     // number of spectral modes
	wave   float64 // minimum wavelength in grid points (scale-invariant smoothness)
	noise  float64 // white-noise amplitude relative to signal scale
	scale  float64 // overall value scale
	offset float64
}

// genField synthesizes one field on the given grid.
func genField(dims []int, sp fieldSpec, rng *rand.Rand) Field {
	n := 1
	for _, d := range dims {
		n *= d
	}
	nd := len(dims)

	// Precompute per-axis mode tables: cos(2π x/λ + φ) per axis per mode.
	// Wavelengths are drawn in grid points, so the local smoothness is
	// independent of the grid scale.
	type axisTab struct{ vals []float64 }
	modeAmp := make([]float64, sp.modes)
	tabs := make([][]axisTab, sp.modes)
	for m := 0; m < sp.modes; m++ {
		// Red-ish spectrum: long-wavelength modes get larger amplitude.
		lam := sp.wave * (1 + 3*rng.Float64())
		modeAmp[m] = lam / (sp.wave * 4)
		tabs[m] = make([]axisTab, nd)
		for d := 0; d < nd; d++ {
			lamD := sp.wave * (1 + 3*rng.Float64())
			phase := rng.Float64() * 2 * math.Pi
			t := make([]float64, dims[d])
			for x := 0; x < dims[d]; x++ {
				t[x] = math.Cos(2*math.Pi*float64(x)/lamD + phase)
			}
			tabs[m][d] = axisTab{vals: t}
		}
	}

	// Gaussian bump tables (separable), used by kindBumps and kindSparse.
	// Bump widths are also in grid points.
	nBumps := 0
	if sp.kind == kindBumps || sp.kind == kindSparse {
		nBumps = 6 + rng.Intn(6)
	}
	bumpAmp := make([]float64, nBumps)
	bumpTabs := make([][]axisTab, nBumps)
	for b := 0; b < nBumps; b++ {
		bumpAmp[b] = 0.5 + rng.Float64()
		bumpTabs[b] = make([]axisTab, nd)
		for d := 0; d < nd; d++ {
			c := rng.Float64() * float64(dims[d])
			w := sp.wave * (0.5 + rng.Float64())
			t := make([]float64, dims[d])
			for x := 0; x < dims[d]; x++ {
				dx := (float64(x) - c) / w
				t[x] = math.Exp(-dx * dx)
			}
			bumpTabs[b][d] = axisTab{vals: t}
		}
	}

	// First pass: raw structure field g (before the per-kind transform).
	raw := make([]float64, n)
	idx := make([]int, nd)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := 0.0
		for m := 0; m < sp.modes; m++ {
			p := modeAmp[m]
			for d := 0; d < nd; d++ {
				p *= tabs[m][d].vals[idx[d]]
			}
			g += p
		}
		for b := 0; b < nBumps; b++ {
			p := bumpAmp[b]
			for d := 0; d < nd; d++ {
				p *= bumpTabs[b][d].vals[idx[d]]
			}
			g += p
		}
		raw[i] = g
		sum += g
		sumSq += g * g

		// Advance the multi-dimensional index (row-major).
		for d := nd - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < dims[d] {
				break
			}
			idx[d] = 0
		}
	}

	// Standardize g so the nonlinear transforms behave identically across
	// grids and random mode draws.
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if std == 0 || math.IsNaN(std) {
		std = 1
	}

	data := make([]float32, n)
	for i := 0; i < n; i++ {
		g := (raw[i] - mean) / std
		if sp.noise > 0 {
			g += sp.noise * rng.NormFloat64()
		}
		var v float64
		switch sp.kind {
		case kindLognormal:
			v = sp.offset + sp.scale*math.Exp(1.5*g)
		case kindSparse:
			if g > 1.5 {
				v = sp.scale * (g - 1.5)
			} else {
				v = 0
			}
		case kindFronts:
			v = sp.offset + sp.scale*math.Tanh(4*g)
		default:
			v = sp.offset + sp.scale*g
		}
		data[i] = float32(v)
	}
	return Field{Name: sp.name, Dims: dims, Data: data}
}

func scaleDims(base []int, scale int) []int {
	if scale < 1 {
		scale = 1
	}
	out := make([]int, len(base))
	for i, d := range base {
		out[i] = d / scale
		if out[i] < 4 {
			out[i] = 4
		}
	}
	return out
}

// CESM generates the 2-D atmosphere dataset stand-in (real: 77 fields of
// 1800x3600; we generate 8 representative fields). scale divides the grid.
func CESM(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0xCE5))
	dims := scaleDims([]int{1800, 3600}, scale)
	specs := []fieldSpec{
		{name: "CLDHGH", kind: kindBumps, modes: 10, wave: 80, noise: 0.007, scale: 0.4, offset: 0.5},
		{name: "CLDLOW", kind: kindBumps, modes: 10, wave: 64, noise: 0.0105, scale: 0.4, offset: 0.5},
		{name: "PHIS", kind: kindFronts, modes: 8, wave: 128, noise: 0.00035, scale: 2500, offset: 2600},
		{name: "TS", kind: kindWaves, modes: 12, wave: 112, noise: 0.00175, scale: 30, offset: 280},
		{name: "PRECL", kind: kindSparse, modes: 10, wave: 48, noise: 0.0175, scale: 1e-7},
		{name: "U200", kind: kindWaves, modes: 14, wave: 96, noise: 0.007, scale: 25, offset: 5},
		{name: "FLNS", kind: kindWaves, modes: 10, wave: 96, noise: 0.0035, scale: 60, offset: 120},
		{name: "QREFHT", kind: kindWaves, modes: 9, wave: 112, noise: 0.0028, scale: 0.008, offset: 0.009},
	}
	return buildApp("CESM-ATM", "CE.", dims, specs, rng)
}

// Hurricane generates the Hurricane-ISABEL stand-in (real: 13 fields of
// 100x500x500; we generate 6 representative fields).
func Hurricane(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0x15ABE1))
	dims := scaleDims([]int{100, 500, 500}, scale)
	specs := []fieldSpec{
		{name: "CLOUDf48", kind: kindSparse, modes: 12, wave: 40, noise: 0.0175, scale: 0.002},
		{name: "QSNOWf48", kind: kindSparse, modes: 12, wave: 32, noise: 0.021, scale: 0.001},
		{name: "Uf48", kind: kindWaves, modes: 14, wave: 56, noise: 0.014, scale: 20, offset: 2},
		{name: "Vf48", kind: kindWaves, modes: 14, wave: 56, noise: 0.014, scale: 20, offset: -3},
		{name: "TCf48", kind: kindWaves, modes: 10, wave: 80, noise: 0.007, scale: 25, offset: 15},
		{name: "Pf48", kind: kindBumps, modes: 8, wave: 96, noise: 0.00525, scale: 4000, offset: 500},
	}
	return buildApp("Hurricane", "Hu.", dims, specs, rng)
}

// Miranda generates the large-eddy turbulence stand-in (real: 7 fields of
// 256x384x384; we generate the paper's exact 7 field names). Miranda is the
// smoothest dataset in Fig. 2, so noise is minimal.
func Miranda(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0x31124DA))
	dims := scaleDims([]int{256, 384, 384}, scale)
	specs := []fieldSpec{
		{name: "density", kind: kindFronts, modes: 8, wave: 256, noise: 0.0007, scale: 1.2, offset: 2.0},
		{name: "diffusivity", kind: kindFronts, modes: 8, wave: 256, noise: 0.0007, scale: 0.4, offset: 0.6},
		{name: "pressure", kind: kindFronts, modes: 6, wave: 320, noise: 0.00035, scale: 0.8, offset: 3.5},
		{name: "velocity-x", kind: kindFronts, modes: 10, wave: 224, noise: 0.0014, scale: 0.5},
		{name: "velocity-y", kind: kindFronts, modes: 10, wave: 224, noise: 0.0014, scale: 0.5},
		{name: "velocity-z", kind: kindFronts, modes: 10, wave: 224, noise: 0.0014, scale: 0.5},
		{name: "viscocity", kind: kindFronts, modes: 8, wave: 256, noise: 0.0007, scale: 0.3, offset: 0.4},
	}
	return buildApp("Miranda", "Mi.", dims, specs, rng)
}

// Nyx generates the cosmology stand-in (real: 6 fields of 512^3). Density
// fields are lognormal (heavy-tailed), matching Nyx's wide block-range CDF.
func Nyx(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0x427))
	dims := scaleDims([]int{512, 512, 512}, scale)
	specs := []fieldSpec{
		{name: "baryon_density", kind: kindLognormal, modes: 12, wave: 40, noise: 0.0175, scale: 1e2},
		{name: "dark_matter_density", kind: kindLognormal, modes: 12, wave: 36, noise: 0.021, scale: 1e2},
		{name: "temperature", kind: kindLognormal, modes: 12, wave: 28, noise: 0.028, scale: 1e4},
		{name: "velocity_x", kind: kindWaves, modes: 12, wave: 72, noise: 0.0105, scale: 1e7},
		{name: "velocity_y", kind: kindWaves, modes: 12, wave: 72, noise: 0.0105, scale: 1e7},
		{name: "velocity_z", kind: kindWaves, modes: 12, wave: 72, noise: 0.0105, scale: 1e7},
	}
	return buildApp("Nyx", "Ny.", dims, specs, rng)
}

// QMCPack generates the quantum-chemistry stand-in (real: 2 fields of
// 288/816x115x69x69 einspline coefficients): very smooth oscillatory data.
func QMCPack(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0x93C))
	dims := scaleDims([]int{288, 115, 69, 69}, scale)
	specs := []fieldSpec{
		{name: "einspline", kind: kindFronts, modes: 8, wave: 512, noise: 0.00035, scale: 0.7},
		{name: "einspline-prec", kind: kindFronts, modes: 10, wave: 384, noise: 0.0007, scale: 0.5},
	}
	return buildApp("QMCPack", "QM.", dims, specs, rng)
}

// ScaleLetKF generates the weather-assimilation stand-in (real: 12 fields
// of 98x1200x1200; we generate 5 representative fields).
func ScaleLetKF(scale int, seed int64) App {
	rng := rand.New(rand.NewSource(seed ^ 0x5CA1E))
	dims := scaleDims([]int{98, 1200, 1200}, scale)
	specs := []fieldSpec{
		{name: "U", kind: kindWaves, modes: 12, wave: 80, noise: 0.007, scale: 15, offset: 3},
		{name: "V", kind: kindWaves, modes: 12, wave: 80, noise: 0.007, scale: 15, offset: -2},
		{name: "W", kind: kindWaves, modes: 14, wave: 48, noise: 0.014, scale: 2},
		{name: "T", kind: kindWaves, modes: 9, wave: 112, noise: 0.0035, scale: 25, offset: 270},
		{name: "QC", kind: kindSparse, modes: 12, wave: 40, noise: 0.0175, scale: 0.001},
	}
	return buildApp("SCALE-LetKF", "SL.", dims, specs, rng)
}

func buildApp(name, short string, dims []int, specs []fieldSpec, rng *rand.Rand) App {
	app := App{Name: name, Short: short}
	for _, sp := range specs {
		app.Fields = append(app.Fields, genField(dims, sp, rng))
	}
	return app
}

// AllApps generates all six application stand-ins at the given grid scale.
// scale=8 yields a few hundred thousand values per field (fast benches);
// scale=1 approaches the papers' full grids.
func AllApps(scale int, seed int64) []App {
	return []App{
		CESM(scale, seed),
		Hurricane(scale, seed),
		Miranda(scale, seed),
		Nyx(scale, seed),
		QMCPack(scale, seed),
		ScaleLetKF(scale, seed),
	}
}

// Slice2D extracts a 2-D slice (the first two of the last dimensions) from
// a field at the given index of the slowest dimension, for SSIM/visual
// metrics. For 2-D fields it returns the whole field.
func Slice2D(f Field) (data []float32, h, w int) {
	switch len(f.Dims) {
	case 1:
		return f.Data, 1, f.Dims[0]
	case 2:
		return f.Data, f.Dims[0], f.Dims[1]
	default:
		h = f.Dims[len(f.Dims)-2]
		w = f.Dims[len(f.Dims)-1]
		mid := (len(f.Data) / (h * w)) / 2
		return f.Data[mid*h*w : (mid+1)*h*w], h, w
	}
}

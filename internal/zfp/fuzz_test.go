package zfp

import "testing"

func FuzzDecompress(f *testing.F) {
	data := gen3D(8, 8, 8, 1)
	comp, _ := Compress(data, []int{8, 8, 8}, 1e-3)
	f.Add(comp)
	f.Add([]byte{})
	f.Add([]byte("ZFPG\x01\x03"))
	f.Fuzz(func(t *testing.T, comp []byte) {
		_, _, _ = Decompress(comp)
	})
}

package zfp

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/bitio"
)

// Stream constants.
const (
	magic   = "ZFPG"
	version = 1
)

// Errors returned by the codec.
var (
	ErrBadMagic = errors.New("zfp: not a ZFP stream")
	ErrCorrupt  = errors.New("zfp: corrupt or truncated stream")
	ErrErrBound = errors.New("zfp: tolerance must be a positive finite number")
	ErrDims     = errors.New("zfp: dims must be 1-4 positive values whose product is len(data)")
)

// Compress compresses data (row-major, dims slowest-first) in fixed-accuracy
// mode: every reconstructed value differs from the original by at most
// tolerance. 4-D inputs are treated as a stack of 3-D volumes.
//
// As in the original float32 ZFP, the bound is honored down to the int32
// quantization floor: tolerances below roughly maxAbs*2^-20 degrade to that
// floor (far below any error bound used in the paper's evaluation).
func Compress(data []float32, dims []int, tolerance float64) ([]byte, error) {
	if !(tolerance > 0) || math.IsInf(tolerance, 0) {
		return nil, ErrErrBound
	}
	if err := checkDims(dims, len(data)); err != nil {
		return nil, err
	}
	_, minexp := math.Frexp(tolerance)
	minexp-- // tolerance >= 2^minexp

	w := bitio.NewWriter(len(data))
	var block [64]float32
	var fblock [64]int32
	forEachBlock(data, dims, block[:], func(blk []float32, bdims int) {
		encodeBlock(w, blk, fblock[:], bdims, minexp)
	})

	payload := w.Bytes()
	out := make([]byte, 0, 32+8*len(dims)+len(payload))
	out = append(out, magic...)
	out = append(out, version, byte(len(dims)))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(tolerance))
	out = append(out, b8[:]...)
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(w.Len()))
	out = append(out, b8[:]...)
	out = append(out, payload...)
	return out, nil
}

// Decompress reconstructs values and dimensions from a Compress stream.
func Decompress(comp []byte) ([]float32, []int, error) {
	if len(comp) < 14 || string(comp[:4]) != magic {
		return nil, nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, nil, ErrCorrupt
	}
	ndims := int(comp[5])
	if ndims < 1 || ndims > 4 {
		return nil, nil, ErrCorrupt
	}
	tolerance := math.Float64frombits(binary.LittleEndian.Uint64(comp[6:]))
	if !(tolerance > 0) || math.IsInf(tolerance, 0) {
		return nil, nil, ErrCorrupt
	}
	pos := 14
	if len(comp) < pos+8*ndims+8 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
		if dims[i] < 1 || dims[i] > 1<<30 || n > 1<<31/dims[i] {
			return nil, nil, ErrCorrupt
		}
		n *= dims[i]
	}
	bitLen := int(binary.LittleEndian.Uint64(comp[pos:]))
	pos += 8
	if bitLen < 0 || len(comp) < pos+(bitLen+7)/8 {
		return nil, nil, ErrCorrupt
	}
	// Every 4^d block costs at least its significance bit, so a forged
	// shape cannot force an allocation far beyond the actual payload.
	nBlocks := 1
	for _, d := range dims {
		nBlocks *= (d + 3) / 4
	}
	if nBlocks > bitLen {
		return nil, nil, ErrCorrupt
	}
	_, minexp := math.Frexp(tolerance)
	minexp--

	r := bitio.NewReader(comp[pos:])
	out := make([]float32, n)
	var block [64]float32
	var fblock [64]int32
	var derr error
	forEachBlockScatter(out, dims, block[:], func(blk []float32, bdims int) bool {
		if err := decodeBlock(r, blk, fblock[:], bdims, minexp); err != nil {
			derr = err
			return false
		}
		return true
	})
	if derr != nil {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}

func checkDims(dims []int, n int) error {
	if len(dims) < 1 || len(dims) > 4 {
		return ErrDims
	}
	p := 1
	for _, d := range dims {
		if d < 1 {
			return ErrDims
		}
		p *= d
	}
	if p != n {
		return ErrDims
	}
	return nil
}

// clamp limits an index to [0, n-1]; partial blocks replicate edge values.
func clamp(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}

// forEachBlock gathers each 4^d block (edge-replicated at partial borders)
// and hands it to visit. 4-D data is processed as dims[0] independent 3-D
// volumes, as in ZFP.
func forEachBlock(data []float32, dims []int, block []float32, visit func(blk []float32, bdims int)) {
	switch len(dims) {
	case 1:
		n := dims[0]
		for x0 := 0; x0 < n; x0 += 4 {
			for i := 0; i < 4; i++ {
				block[i] = data[clamp(x0+i, n)]
			}
			visit(block[:4], 1)
		}
	case 2:
		h, wd := dims[0], dims[1]
		for y0 := 0; y0 < h; y0 += 4 {
			for x0 := 0; x0 < wd; x0 += 4 {
				for j := 0; j < 4; j++ {
					row := clamp(y0+j, h) * wd
					for i := 0; i < 4; i++ {
						block[4*j+i] = data[row+clamp(x0+i, wd)]
					}
				}
				visit(block[:16], 2)
			}
		}
	case 3:
		d, h, wd := dims[0], dims[1], dims[2]
		for z0 := 0; z0 < d; z0 += 4 {
			for y0 := 0; y0 < h; y0 += 4 {
				for x0 := 0; x0 < wd; x0 += 4 {
					for k := 0; k < 4; k++ {
						zi := clamp(z0+k, d) * h
						for j := 0; j < 4; j++ {
							row := (zi + clamp(y0+j, h)) * wd
							for i := 0; i < 4; i++ {
								block[16*k+4*j+i] = data[row+clamp(x0+i, wd)]
							}
						}
					}
					visit(block[:64], 3)
				}
			}
		}
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			forEachBlock(data[s*vol:(s+1)*vol], dims[1:], block, visit)
		}
	}
}

// forEachBlockScatter mirrors forEachBlock for decompression: visit fills
// the block, and the in-range portion is scattered back into out.
func forEachBlockScatter(out []float32, dims []int, block []float32, visit func(blk []float32, bdims int) bool) {
	switch len(dims) {
	case 1:
		n := dims[0]
		for x0 := 0; x0 < n; x0 += 4 {
			if !visit(block[:4], 1) {
				return
			}
			for i := 0; i < 4 && x0+i < n; i++ {
				out[x0+i] = block[i]
			}
		}
	case 2:
		h, wd := dims[0], dims[1]
		for y0 := 0; y0 < h; y0 += 4 {
			for x0 := 0; x0 < wd; x0 += 4 {
				if !visit(block[:16], 2) {
					return
				}
				for j := 0; j < 4 && y0+j < h; j++ {
					row := (y0 + j) * wd
					for i := 0; i < 4 && x0+i < wd; i++ {
						out[row+x0+i] = block[4*j+i]
					}
				}
			}
		}
	case 3:
		d, h, wd := dims[0], dims[1], dims[2]
		for z0 := 0; z0 < d; z0 += 4 {
			for y0 := 0; y0 < h; y0 += 4 {
				for x0 := 0; x0 < wd; x0 += 4 {
					if !visit(block[:64], 3) {
						return
					}
					for k := 0; k < 4 && z0+k < d; k++ {
						for j := 0; j < 4 && y0+j < h; j++ {
							row := ((z0+k)*h + y0 + j) * wd
							for i := 0; i < 4 && x0+i < wd; i++ {
								out[row+x0+i] = block[16*k+4*j+i]
							}
						}
					}
				}
			}
		}
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			done := false
			forEachBlockScatter(out[s*vol:(s+1)*vol], dims[1:], block, func(blk []float32, bd int) bool {
				ok := visit(blk, bd)
				if !ok {
					done = true
				}
				return ok
			})
			if done {
				return
			}
		}
	}
}

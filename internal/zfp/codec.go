package zfp

import (
	"math"

	"repro/internal/bitio"
)

const (
	intPrec  = 32 // bit planes per coefficient (int32 backing)
	ebits    = 9  // stored exponent width: emax+emaxBias in [0, 2^9)
	emaxBias = 255
)

// int2negabinary converts two's complement to negabinary, so that small
// magnitudes of either sign have their significant bits in the low planes.
func int2negabinary(x int32) uint32 {
	const mask = 0xaaaaaaaa
	return (uint32(x) + mask) ^ mask
}

// negabinary2int inverts int2negabinary.
func negabinary2int(u uint32) int32 {
	const mask = 0xaaaaaaaa
	return int32((u ^ mask) - mask)
}

// precision computes how many bit planes must be kept for a block with
// maximum exponent emax so that the reconstruction error stays below
// 2^minexp; the 2*(dims+1) slack absorbs the transform's range expansion
// and the inverse transform's rounding (ZFP's accuracy-mode formula).
func precision(emax, minexp, dims int) int {
	p := emax - minexp + 2*(dims+1)
	if p < 0 {
		p = 0
	}
	if p > intPrec {
		p = intPrec
	}
	return p
}

// blockEmax returns the exponent e with max|block| < 2^e, or minInt if the
// block is all zeros or non-finite values were clamped to zero.
func blockEmax(block []float32) (int, bool) {
	m := float64(0)
	for _, v := range block {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	if m == 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		return 0, false
	}
	_, e := math.Frexp(m) // m = f * 2^e, f in [0.5, 1)
	return e, true
}

// encodeBlock writes one 4^dims block: a significance bit, the block
// exponent, and the group-tested bit planes of the negabinary coefficients.
func encodeBlock(w *bitio.Writer, block []float32, fblock []int32, dims, minexp int) {
	size := 1 << uint(2*dims)
	emax, ok := blockEmax(block[:size])
	if !ok || precision(emax, minexp, dims) == 0 {
		w.WriteBit(0) // insignificant block: decodes to all zeros
		return
	}
	w.WriteBit(1)
	w.WriteBitsLSB(uint64(emax+emaxBias), ebits)

	// Block floating point: scale into 30-bit integers.
	scale := math.Ldexp(1, intPrec-2-emax)
	for i := 0; i < size; i++ {
		fblock[i] = int32(float64(block[i]) * scale)
	}
	fwdXform(fblock, dims)

	// Reorder by sequency and convert to negabinary.
	pm := perm(dims)
	var u [64]uint32
	for i := 0; i < size; i++ {
		u[i] = int2negabinary(fblock[pm[i]])
	}

	// Group-tested bit-plane coding (ZFP's encode_ints): for each plane,
	// the bits of already-significant coefficients are written verbatim;
	// the rest are run-length coded, with a group-test bit announcing
	// whether any further coefficient becomes significant in this plane.
	kmin := intPrec - precision(emax, minexp, dims)
	n := 0
	for k := intPrec - 1; k >= kmin; k-- {
		// Extract bit plane k (bit i = coefficient i).
		var x uint64
		for i := 0; i < size; i++ {
			x |= uint64((u[i]>>uint(k))&1) << uint(i)
		}
		// First n coefficients: verbatim.
		w.WriteBitsLSB(x, uint(n))
		x >>= uint(n)
		// Group testing for newly significant coefficients. cur walks the
		// remaining coefficients; n records one past the last 1 consumed,
		// which is the verbatim count for the next plane.
		for cur := n; cur < size; {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for cur < size-1 {
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				cur++
			}
			// Consume the terminating coefficient: either its 1 bit was
			// just written, or it is the last one and its 1 is implied.
			x >>= 1
			cur++
			n = cur
		}
	}
}

// decodeBlock reads one block written by encodeBlock into block[:4^dims].
func decodeBlock(r *bitio.Reader, block []float32, fblock []int32, dims, minexp int) error {
	size := 1 << uint(2*dims)
	sig, err := r.ReadBit()
	if err != nil {
		return err
	}
	if sig == 0 {
		for i := 0; i < size; i++ {
			block[i] = 0
		}
		return nil
	}
	ev, err := r.ReadBitsLSB(ebits)
	if err != nil {
		return err
	}
	emax := int(ev) - emaxBias

	var u [64]uint32
	for i := range u[:size] {
		u[i] = 0
	}
	kmin := intPrec - precision(emax, minexp, dims)
	n := 0
	for k := intPrec - 1; k >= kmin; k-- {
		// Verbatim bits of already-significant coefficients.
		x, err := r.ReadBitsLSB(uint(n))
		if err != nil {
			return err
		}
		// Group testing, mirroring encodeBlock exactly.
		for cur := n; cur < size; {
			g, err := r.ReadBit()
			if err != nil {
				return err
			}
			if g == 0 {
				break
			}
			for cur < size-1 {
				b, err := r.ReadBit()
				if err != nil {
					return err
				}
				if b != 0 {
					break
				}
				cur++
			}
			x |= 1 << uint(cur)
			cur++
			n = cur
		}
		// Deposit plane k.
		for i := 0; i < size; i++ {
			u[i] |= uint32((x>>uint(i))&1) << uint(k)
		}
	}

	pm := perm(dims)
	for i := 0; i < size; i++ {
		fblock[pm[i]] = negabinary2int(u[i])
	}
	invXform(fblock, dims)

	scale := math.Ldexp(1, emax-(intPrec-2))
	for i := 0; i < size; i++ {
		block[i] = float32(float64(fblock[i]) * scale)
	}
	return nil
}

// Package zfp implements a fixed-accuracy error-bounded lossy compressor
// modeled on ZFP (Lindstrom, TVCG 2014), the second baseline of the SZx
// paper: values are grouped into 4^d blocks, aligned to a common exponent
// (block floating point), decorrelated with ZFP's integer lifting transform,
// reordered by total sequency, converted to negabinary, and entropy-coded
// one bit plane at a time with group testing. The transform's many shift/add
// stages and the per-bit-plane coding loop are the "masses of
// matrix-multiplication-like operations" the SZx paper contrasts against.
package zfp

// fwdLift applies ZFP's forward decorrelating lifting step to four values
// at stride s. It approximates the orthogonal transform
//
//	       ( 4  4  4  4)
//	1/16 * ( 5  1 -1 -5)
//	       (-4  4  4 -4)
//	       (-2  6 -6  2)
//
// using only additions, subtractions, and arithmetic shifts.
func fwdLift(p []int32, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// invLift inverts fwdLift (up to the low-order bits the forward shifts
// discard, which is part of ZFP's controlled loss).
func invLift(p []int32, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// fwdXform applies the forward transform along every dimension of a block.
func fwdXform(block []int32, dims int) {
	switch dims {
	case 1:
		fwdLift(block, 0, 1)
	case 2:
		for y := 0; y < 4; y++ { // rows
			fwdLift(block, 4*y, 1)
		}
		for x := 0; x < 4; x++ { // columns
			fwdLift(block, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(block, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(block, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(block, 4*y+x, 16)
			}
		}
	}
}

// invXform applies the inverse transform (reverse dimension order).
func invXform(block []int32, dims int) {
	switch dims {
	case 1:
		invLift(block, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(block, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(block, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(block, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(block, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(block, 16*z+4*y, 1)
			}
		}
	}
}

// perm2 orders 2-D coefficients by total sequency (i+j), ties broken
// row-major, matching ZFP's PERM_2.
var perm2 = buildPerm(2)

// perm3 orders 3-D coefficients by total sequency (i+j+k).
var perm3 = buildPerm(3)

// perm1 is the identity for 1-D blocks.
var perm1 = buildPerm(1)

func buildPerm(dims int) []int {
	size := 1 << uint(2*dims) // 4^dims
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	deg := func(i int) int {
		d := 0
		for k := 0; k < dims; k++ {
			d += (i >> uint(2*k)) & 3
		}
		return d
	}
	// Stable insertion sort by (degree, index): small fixed sizes.
	for i := 1; i < size; i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && deg(idx[j]) > deg(v) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
	return idx
}

func perm(dims int) []int {
	switch dims {
	case 1:
		return perm1
	case 2:
		return perm2
	default:
		return perm3
	}
}

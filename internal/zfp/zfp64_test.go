package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gen3D64(d, h, w int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, d*h*w)
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out[i] = math.Sin(float64(x)/12)*math.Cos(float64(y)/9)*
					math.Sin(float64(z)/6)*100 + 0.001*rng.NormFloat64()
				i++
			}
		}
	}
	return out
}

func maxErr64(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRoundTrip64(t *testing.T) {
	data := gen3D64(17, 22, 30, 1)
	for _, tol := range []float64{1e-1, 1e-4, 1e-9} {
		comp, err := CompressFloat64(data, []int{17, 22, 30}, tol)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr64(data, dec); got > tol {
			t.Errorf("tol=%g: max error %g", tol, got)
		}
	}
}

func TestRoundTrip64Dims(t *testing.T) {
	data := gen3D64(2, 9, 13, 2)
	for _, dims := range [][]int{{234}, {18, 13}, {2, 9, 13}, {2, 1, 9, 13}} {
		comp, err := CompressFloat64(data, dims, 1e-6)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if got := maxErr64(data, dec); got > 1e-6 {
			t.Errorf("%v: max error %g", dims, got)
		}
	}
}

func TestNegabinary64RoundTrip(t *testing.T) {
	f := func(x int64) bool { return negabinary2int64(int2negabinary64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLift64NearInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		var p, q [4]int64
		for i := range p {
			p[i] = rng.Int63n(1<<60) - 1<<59
			q[i] = p[i]
		}
		fwdLift64(q[:], 0, 1)
		invLift64(q[:], 0, 1)
		for i := range p {
			d := p[i] - q[i]
			if d < -4 || d > 4 {
				t.Fatalf("trial %d: not near-invertible", trial)
			}
		}
	}
}

func TestZeros64(t *testing.T) {
	data := make([]float64, 1024)
	comp, err := CompressFloat64(data, []int{1024}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > 128 {
		t.Errorf("zero data stream %d bytes", len(comp))
	}
	dec, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec {
		if v != 0 {
			t.Fatal("nonzero output")
		}
	}
}

// Double precision can honor much tighter bounds than the float32 path.
func TestTightBound64(t *testing.T) {
	data := gen3D64(8, 8, 8, 5)
	tol := 1e-12
	comp, err := CompressFloat64(data, []int{8, 8, 8}, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr64(data, dec); got > tol {
		t.Errorf("max error %g > %g", got, tol)
	}
}

func TestCorrupt64(t *testing.T) {
	data := gen3D64(4, 8, 8, 6)
	comp, err := CompressFloat64(data, []int{4, 8, 8}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(comp[:6]); err == nil {
		t.Error("short accepted")
	}
	for i := 0; i < len(comp); i += 29 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xF0
		_, _, _ = DecompressFloat64(c)
	}
}

package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func gen3D(d, h, w int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, d*h*w)
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out[i] = float32(math.Sin(float64(x)/15)*math.Cos(float64(y)/10)*
					math.Sin(float64(z)/8)*10 + 0.01*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func TestLiftRoundTripApprox(t *testing.T) {
	// The lifting transform loses only low-order bits: inverse(forward(x))
	// must match x within a few units.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		var p, q [4]int32
		for i := range p {
			p[i] = int32(rng.Intn(1<<28)) - 1<<27
			q[i] = p[i]
		}
		fwdLift(q[:], 0, 1)
		invLift(q[:], 0, 1)
		for i := range p {
			d := int64(p[i]) - int64(q[i])
			if d < -4 || d > 4 {
				t.Fatalf("trial %d: lift not near-invertible: %v vs %v", trial, p, q)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	cases := []int32{0, 1, -1, 2, -2, 1 << 30, -(1 << 30), math.MaxInt32, math.MinInt32}
	for _, x := range cases {
		if got := negabinary2int(int2negabinary(x)); got != x {
			t.Errorf("negabinary(%d) -> %d", x, got)
		}
	}
	f := func(x int32) bool { return negabinary2int(int2negabinary(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegabinarySmallMagnitude(t *testing.T) {
	// Small magnitudes (either sign) must have only low-order bits set so
	// bit-plane coding truncates gracefully.
	for _, x := range []int32{-8, -1, 0, 1, 8} {
		u := int2negabinary(x)
		if u > 64 {
			t.Errorf("negabinary(%d) = %#x has high bits", x, u)
		}
	}
}

func TestPermProperties(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		p := perm(dims)
		size := 1 << uint(2*dims)
		if len(p) != size {
			t.Fatalf("dims %d: perm len %d", dims, len(p))
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				t.Fatalf("dims %d: invalid perm %v", dims, p)
			}
			seen[v] = true
		}
		// Total degree must be non-decreasing.
		deg := func(i int) int {
			d := 0
			for k := 0; k < dims; k++ {
				d += (i >> uint(2*k)) & 3
			}
			return d
		}
		for i := 1; i < size; i++ {
			if deg(p[i]) < deg(p[i-1]) {
				t.Fatalf("dims %d: perm not degree-sorted", dims)
			}
		}
		// DC coefficient first.
		if p[0] != 0 {
			t.Fatalf("dims %d: DC not first", dims)
		}
	}
}

func TestRoundTrip1D(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 25))
	}
	for _, tol := range []float64{1e-1, 1e-3, 1e-6} {
		comp, err := Compress(data, []int{1000}, tol)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(data, dec); got > tol {
			t.Errorf("tol=%g: max error %g", tol, got)
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	const h, w = 67, 93 // deliberately not multiples of 4
	data := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			data[y*w+x] = float32(math.Sin(float64(x)/9)*math.Cos(float64(y)/7)*5 + 100)
		}
	}
	for _, tol := range []float64{1e-2, 1e-4} {
		comp, err := Compress(data, []int{h, w}, tol)
		if err != nil {
			t.Fatal(err)
		}
		dec, dims, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if dims[0] != h || dims[1] != w {
			t.Fatalf("dims %v", dims)
		}
		if got := maxErr(data, dec); got > tol {
			t.Errorf("tol=%g: max error %g", tol, got)
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	data := gen3D(22, 30, 41, 2)
	for _, tol := range []float64{1e-1, 1e-3} {
		comp, err := Compress(data, []int{22, 30, 41}, tol)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(data, dec); got > tol {
			t.Errorf("tol=%g: max error %g", tol, got)
		}
	}
}

func TestRoundTrip4D(t *testing.T) {
	data := gen3D(8, 10, 12, 3)
	comp, err := Compress(data, []int{2, 4, 10, 12}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > 1e-3 {
		t.Errorf("max error %g", got)
	}
}

func TestCompressesSmoothdata(t *testing.T) {
	data := gen3D(32, 32, 32, 4)
	comp, err := Compress(data, []int{32, 32, 32}, 2e-2) // ~REL 1e-3 of range 20
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(4*len(data)) / float64(len(comp))
	if cr < 4 {
		t.Errorf("ZFP ratio %.2f too low for smooth 3D data", cr)
	}
}

func TestAllZeroBlocks(t *testing.T) {
	data := make([]float32, 4096)
	comp, err := Compress(data, []int{16, 16, 16}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// All-insignificant blocks cost ~1 bit each: 64 blocks -> tiny stream.
	if len(comp) > 128 {
		t.Errorf("zero data stream %d bytes", len(comp))
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("dec[%d] = %v", i, v)
		}
	}
}

func TestInvalidArgs(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	if _, err := Compress(data, []int{4}, 0); err != ErrErrBound {
		t.Errorf("tol=0: %v", err)
	}
	if _, err := Compress(data, []int{5}, 1e-3); err != ErrDims {
		t.Errorf("bad dims: %v", err)
	}
	if _, err := Compress(data, []int{}, 1e-3); err != ErrDims {
		t.Errorf("no dims: %v", err)
	}
}

func TestCorrupt(t *testing.T) {
	data := gen3D(10, 10, 10, 5)
	comp, err := Compress(data, []int{10, 10, 10}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(comp[:8]); err == nil {
		t.Error("short stream accepted")
	}
	if _, _, err := Decompress([]byte("AAAABBBBCCCCDDDD")); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	for i := 0; i < len(comp); i += 19 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0x3C
		_, _, _ = Decompress(c) // must not panic
	}
}

// Property: the fixed-accuracy bound holds across magnitudes and bounds,
// down to the float32 precision floor. Like the original ZFP, tolerances
// below the int32 quantization ulp (~maxAbs * 2^-20 after transform slack)
// cannot be honored; the effective bound is the max of the two.
func TestAccuracyProperty(t *testing.T) {
	f := func(seed int64, eExp uint8, scalePow int8) bool {
		tol := math.Pow(10, -float64(eExp%7))
		scale := math.Pow(2, float64(scalePow%30))
		rng := rand.New(rand.NewSource(seed))
		const h, w = 20, 20
		data := make([]float32, h*w)
		maxAbs := 0.0
		for i := range data {
			data[i] = float32(scale * (math.Sin(float64(i)/17) + 0.1*rng.NormFloat64()))
			if a := math.Abs(float64(data[i])); a > maxAbs {
				maxAbs = a
			}
		}
		comp, err := Compress(data, []int{h, w}, tol)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			return false
		}
		allowed := tol
		if floor := maxAbs * math.Pow(2, -20); floor > allowed {
			allowed = floor
		}
		return maxErr(data, dec) <= allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: random finite data of random shapes round-trips within bound.
func TestShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := make([]int, 1+rng.Intn(3))
		n := 1
		for i := range dims {
			dims[i] = 1 + rng.Intn(13)
			n *= dims[i]
		}
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 100)
		}
		comp, err := Compress(data, dims, 1e-2)
		if err != nil {
			return false
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxErr(data, dec) <= 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

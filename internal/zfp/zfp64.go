package zfp

// Float64 variant of the ZFP baseline: int64 block-floating-point
// coefficients, 64 bit planes, and a 12-bit block exponent, mirroring the
// original's double-precision instantiation.

import (
	"encoding/binary"
	"math"

	"repro/internal/bitio"
)

const (
	intPrec64  = 64
	ebits64    = 12
	emaxBias64 = 2047
	magic64    = "ZFPH"
)

// fwdLift64 / invLift64 are the int64 instantiations of the lifting step.
func fwdLift64(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

func invLift64(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

func fwdXform64(block []int64, dims int) {
	switch dims {
	case 1:
		fwdLift64(block, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift64(block, 4*y, 1)
		}
		for x := 0; x < 4; x++ {
			fwdLift64(block, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift64(block, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift64(block, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift64(block, 4*y+x, 16)
			}
		}
	}
}

func invXform64(block []int64, dims int) {
	switch dims {
	case 1:
		invLift64(block, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift64(block, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift64(block, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift64(block, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift64(block, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift64(block, 16*z+4*y, 1)
			}
		}
	}
}

func int2negabinary64(x int64) uint64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return (uint64(x) + mask) ^ mask
}

func negabinary2int64(u uint64) int64 {
	const mask = 0xaaaaaaaaaaaaaaaa
	return int64((u ^ mask) - mask)
}

func precision64(emax, minexp, dims int) int {
	p := emax - minexp + 2*(dims+1)
	if p < 0 {
		p = 0
	}
	if p > intPrec64 {
		p = intPrec64
	}
	return p
}

func blockEmax64(block []float64) (int, bool) {
	m := 0.0
	for _, v := range block {
		a := math.Abs(v)
		if a > m {
			m = a
		}
	}
	if m == 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		return 0, false
	}
	_, e := math.Frexp(m)
	return e, true
}

func encodeBlock64(w *bitio.Writer, block []float64, fblock []int64, dims, minexp int) {
	size := 1 << uint(2*dims)
	emax, ok := blockEmax64(block[:size])
	if !ok || precision64(emax, minexp, dims) == 0 {
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	w.WriteBitsLSB(uint64(emax+emaxBias64), ebits64)

	scale := math.Ldexp(1, intPrec64-2-emax)
	for i := 0; i < size; i++ {
		fblock[i] = int64(block[i] * scale)
	}
	fwdXform64(fblock, dims)

	pm := perm(dims)
	var u [64]uint64
	for i := 0; i < size; i++ {
		u[i] = int2negabinary64(fblock[pm[i]])
	}

	kmin := intPrec64 - precision64(emax, minexp, dims)
	n := 0
	for k := intPrec64 - 1; k >= kmin; k-- {
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((u[i] >> uint(k)) & 1) << uint(i)
		}
		w.WriteBitsLSB(x, uint(n))
		x >>= uint(n)
		for cur := n; cur < size; {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for cur < size-1 {
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				cur++
			}
			x >>= 1
			cur++
			n = cur
		}
	}
}

func decodeBlock64(r *bitio.Reader, block []float64, fblock []int64, dims, minexp int) error {
	size := 1 << uint(2*dims)
	sig, err := r.ReadBit()
	if err != nil {
		return err
	}
	if sig == 0 {
		for i := 0; i < size; i++ {
			block[i] = 0
		}
		return nil
	}
	ev, err := r.ReadBitsLSB(ebits64)
	if err != nil {
		return err
	}
	emax := int(ev) - emaxBias64

	var u [64]uint64
	for i := range u[:size] {
		u[i] = 0
	}
	kmin := intPrec64 - precision64(emax, minexp, dims)
	n := 0
	for k := intPrec64 - 1; k >= kmin; k-- {
		x, err := r.ReadBitsLSB(uint(n))
		if err != nil {
			return err
		}
		for cur := n; cur < size; {
			g, err := r.ReadBit()
			if err != nil {
				return err
			}
			if g == 0 {
				break
			}
			for cur < size-1 {
				b, err := r.ReadBit()
				if err != nil {
					return err
				}
				if b != 0 {
					break
				}
				cur++
			}
			x |= 1 << uint(cur)
			cur++
			n = cur
		}
		for i := 0; i < size; i++ {
			u[i] |= ((x >> uint(i)) & 1) << uint(k)
		}
	}

	pm := perm(dims)
	for i := 0; i < size; i++ {
		fblock[pm[i]] = negabinary2int64(u[i])
	}
	invXform64(fblock, dims)

	scale := math.Ldexp(1, emax-(intPrec64-2))
	for i := 0; i < size; i++ {
		block[i] = float64(fblock[i]) * scale
	}
	return nil
}

// CompressFloat64 is the float64 fixed-accuracy compressor, the double
// precision analogue of Compress.
func CompressFloat64(data []float64, dims []int, tolerance float64) ([]byte, error) {
	if !(tolerance > 0) || math.IsInf(tolerance, 0) {
		return nil, ErrErrBound
	}
	if err := checkDims(dims, len(data)); err != nil {
		return nil, err
	}
	_, minexp := math.Frexp(tolerance)
	minexp--

	w := bitio.NewWriter(2 * len(data))
	var block [64]float64
	var fblock [64]int64
	forEachBlock64(data, dims, block[:], func(blk []float64, bdims int) {
		encodeBlock64(w, blk, fblock[:], bdims, minexp)
	})

	payload := w.Bytes()
	out := make([]byte, 0, 32+8*len(dims)+len(payload))
	out = append(out, magic64...)
	out = append(out, version, byte(len(dims)))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(tolerance))
	out = append(out, b8[:]...)
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(w.Len()))
	out = append(out, b8[:]...)
	out = append(out, payload...)
	return out, nil
}

// DecompressFloat64 reverses CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, []int, error) {
	if len(comp) < 14 || string(comp[:4]) != magic64 {
		return nil, nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, nil, ErrCorrupt
	}
	ndims := int(comp[5])
	if ndims < 1 || ndims > 4 {
		return nil, nil, ErrCorrupt
	}
	tolerance := math.Float64frombits(binary.LittleEndian.Uint64(comp[6:]))
	if !(tolerance > 0) || math.IsInf(tolerance, 0) {
		return nil, nil, ErrCorrupt
	}
	pos := 14
	if len(comp) < pos+8*ndims+8 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
		if dims[i] < 1 || dims[i] > 1<<30 || n > 1<<31/dims[i] {
			return nil, nil, ErrCorrupt
		}
		n *= dims[i]
	}
	bitLen := int(binary.LittleEndian.Uint64(comp[pos:]))
	pos += 8
	if bitLen < 0 || len(comp) < pos+(bitLen+7)/8 {
		return nil, nil, ErrCorrupt
	}
	// Every 4^d block costs at least its significance bit, so a forged
	// shape cannot force an allocation far beyond the actual payload.
	nBlocks := 1
	for _, d := range dims {
		nBlocks *= (d + 3) / 4
	}
	if nBlocks > bitLen {
		return nil, nil, ErrCorrupt
	}
	_, minexp := math.Frexp(tolerance)
	minexp--

	r := bitio.NewReader(comp[pos:])
	out := make([]float64, n)
	var block [64]float64
	var fblock [64]int64
	var derr error
	forEachBlockScatter64(out, dims, block[:], func(blk []float64, bdims int) bool {
		if err := decodeBlock64(r, blk, fblock[:], bdims, minexp); err != nil {
			derr = err
			return false
		}
		return true
	})
	if derr != nil {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}

// forEachBlock64 / forEachBlockScatter64 mirror the float32 block walkers.
func forEachBlock64(data []float64, dims []int, block []float64, visit func(blk []float64, bdims int)) {
	switch len(dims) {
	case 1:
		n := dims[0]
		for x0 := 0; x0 < n; x0 += 4 {
			for i := 0; i < 4; i++ {
				block[i] = data[clamp(x0+i, n)]
			}
			visit(block[:4], 1)
		}
	case 2:
		h, wd := dims[0], dims[1]
		for y0 := 0; y0 < h; y0 += 4 {
			for x0 := 0; x0 < wd; x0 += 4 {
				for j := 0; j < 4; j++ {
					row := clamp(y0+j, h) * wd
					for i := 0; i < 4; i++ {
						block[4*j+i] = data[row+clamp(x0+i, wd)]
					}
				}
				visit(block[:16], 2)
			}
		}
	case 3:
		d, h, wd := dims[0], dims[1], dims[2]
		for z0 := 0; z0 < d; z0 += 4 {
			for y0 := 0; y0 < h; y0 += 4 {
				for x0 := 0; x0 < wd; x0 += 4 {
					for k := 0; k < 4; k++ {
						zi := clamp(z0+k, d) * h
						for j := 0; j < 4; j++ {
							row := (zi + clamp(y0+j, h)) * wd
							for i := 0; i < 4; i++ {
								block[16*k+4*j+i] = data[row+clamp(x0+i, wd)]
							}
						}
					}
					visit(block[:64], 3)
				}
			}
		}
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			forEachBlock64(data[s*vol:(s+1)*vol], dims[1:], block, visit)
		}
	}
}

func forEachBlockScatter64(out []float64, dims []int, block []float64, visit func(blk []float64, bdims int) bool) {
	switch len(dims) {
	case 1:
		n := dims[0]
		for x0 := 0; x0 < n; x0 += 4 {
			if !visit(block[:4], 1) {
				return
			}
			for i := 0; i < 4 && x0+i < n; i++ {
				out[x0+i] = block[i]
			}
		}
	case 2:
		h, wd := dims[0], dims[1]
		for y0 := 0; y0 < h; y0 += 4 {
			for x0 := 0; x0 < wd; x0 += 4 {
				if !visit(block[:16], 2) {
					return
				}
				for j := 0; j < 4 && y0+j < h; j++ {
					row := (y0 + j) * wd
					for i := 0; i < 4 && x0+i < wd; i++ {
						out[row+x0+i] = block[4*j+i]
					}
				}
			}
		}
	case 3:
		d, h, wd := dims[0], dims[1], dims[2]
		for z0 := 0; z0 < d; z0 += 4 {
			for y0 := 0; y0 < h; y0 += 4 {
				for x0 := 0; x0 < wd; x0 += 4 {
					if !visit(block[:64], 3) {
						return
					}
					for k := 0; k < 4 && z0+k < d; k++ {
						for j := 0; j < 4 && y0+j < h; j++ {
							row := ((z0+k)*h + y0 + j) * wd
							for i := 0; i < 4 && x0+i < wd; i++ {
								out[row+x0+i] = block[16*k+4*j+i]
							}
						}
					}
				}
			}
		}
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			done := false
			forEachBlockScatter64(out[s*vol:(s+1)*vol], dims[1:], block, func(blk []float64, bd int) bool {
				ok := visit(blk, bd)
				if !ok {
					done = true
				}
				return ok
			})
			if done {
				return
			}
		}
	}
}

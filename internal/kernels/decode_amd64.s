//go:build amd64 && !purego

#include "textflag.h"

// AVX2 decode scans. The reconstruction w[i] = (w[i-1] & masks[l]) | chunk
// is an affine transform over bitmasks, so a group of lanes resolves with a
// log-depth scan: per lane build (M, C) with M = masks[l] and C the
// shifted mid-chunk, compose pairs with
//
//	(M2, C2) ∘ (M1, C1) = (M1 & M2, (C1 & M2) | C2)
//
// across 1-, 2- (and for f32, 4-) lane slides, then apply the previous
// group's last word once. Mid-chunks load with one gather per group at
// offsets from a Hillis-Steele prefix sum of nm = reqBytes - l; lead codes
// expand from one 16-bit (f32) or 8-bit (f64) load with per-lane variable
// shifts.
//
// The loop exits to the Go driver when fewer than a full group of values
// remains or the next group's worst-case mid consumption would pass the
// end of the payload; the driver hands (i, mi, prev) to the shared
// bounds-checked scalar tail, so vector and generic paths cannot diverge
// on tail handling. A lead code exceeding reqBytes reports bad=1 and the
// driver returns the same corrupt verdict as the generic kernel.

DATA leadShiftF32<>+0(SB)/4, $6
DATA leadShiftF32<>+4(SB)/4, $4
DATA leadShiftF32<>+8(SB)/4, $2
DATA leadShiftF32<>+12(SB)/4, $0
DATA leadShiftF32<>+16(SB)/4, $14
DATA leadShiftF32<>+20(SB)/4, $12
DATA leadShiftF32<>+24(SB)/4, $10
DATA leadShiftF32<>+28(SB)/4, $8
GLOBL leadShiftF32<>(SB), RODATA|NOPTR, $32

DATA slide1F32<>+0(SB)/4, $0
DATA slide1F32<>+4(SB)/4, $0
DATA slide1F32<>+8(SB)/4, $1
DATA slide1F32<>+12(SB)/4, $2
DATA slide1F32<>+16(SB)/4, $3
DATA slide1F32<>+20(SB)/4, $4
DATA slide1F32<>+24(SB)/4, $5
DATA slide1F32<>+28(SB)/4, $6
GLOBL slide1F32<>(SB), RODATA|NOPTR, $32

DATA slide2F32<>+0(SB)/4, $0
DATA slide2F32<>+4(SB)/4, $0
DATA slide2F32<>+8(SB)/4, $0
DATA slide2F32<>+12(SB)/4, $1
DATA slide2F32<>+16(SB)/4, $2
DATA slide2F32<>+20(SB)/4, $3
DATA slide2F32<>+24(SB)/4, $4
DATA slide2F32<>+28(SB)/4, $5
GLOBL slide2F32<>(SB), RODATA|NOPTR, $32

DATA dbswap32<>+0(SB)/8, $0x0405060700010203
DATA dbswap32<>+8(SB)/8, $0x0C0D0E0F08090A0B
DATA dbswap32<>+16(SB)/8, $0x0405060700010203
DATA dbswap32<>+24(SB)/8, $0x0C0D0E0F08090A0B
GLOBL dbswap32<>(SB), RODATA|NOPTR, $32

DATA leadShiftF64<>+0(SB)/8, $6
DATA leadShiftF64<>+8(SB)/8, $4
DATA leadShiftF64<>+16(SB)/8, $2
DATA leadShiftF64<>+24(SB)/8, $0
GLOBL leadShiftF64<>(SB), RODATA|NOPTR, $32

DATA dbswap64<>+0(SB)/8, $0x0001020304050607
DATA dbswap64<>+8(SB)/8, $0x08090A0B0C0D0E0F
DATA dbswap64<>+16(SB)/8, $0x0001020304050607
DATA dbswap64<>+24(SB)/8, $0x08090A0B0C0D0E0F
GLOBL dbswap64<>(SB), RODATA|NOPTR, $32

// func decodeF32Asm(out *float32, lead *byte, mid *byte, midLen, n int, mu float32, s, lowSh, reqBytes, lossless uint32) (i, mi int, prev, bad uint32)
TEXT ·decodeF32Asm(SB), NOSPLIT, $0-88
	MOVQ out+0(FP), DI
	MOVQ lead+8(FP), R9
	MOVQ mid+16(FP), BX
	MOVQ midLen+24(FP), R11
	MOVQ n+32(FP), R10
	SUBQ $8, R10 // loop while i ≤ n-8

	VBROADCASTSS mu+40(FP), Y0
	MOVL         s+44(FP), AX
	VMOVQ        AX, X1
	MOVL         lowSh+48(FP), AX
	VMOVQ        AX, X2
	VPCMPEQD     Y3, Y3, Y3 // all-ones
	VPXOR        Y4, Y4, Y4 // zero
	VMOVDQU      leadShiftF32<>(SB), Y5
	VPXOR        Y6, Y6, Y6 // prev broadcast (0 at block start)
	VBROADCASTSS reqBytes+52(FP), Y7

	MOVL  reqBytes+52(FP), R14
	MOVL  $32, AX
	MOVL  R14, R12
	SHLL  $3, R12
	SUBL  R12, AX  // 32 - 8*reqBytes
	VMOVQ AX, X8
	VPBROADCASTD X8, Y8

	// gate limit: mi ≤ midLen - (7*reqBytes + 4)
	MOVQ R14, R12
	SHLQ $3, R12
	SUBQ R14, R12
	ADDQ $4, R12  // 7*rb + 4
	MOVQ R11, R15
	SUBQ R12, R15

	MOVL  lossless+56(FP), R13
	XORQ  CX, CX // i
	XORQ  DX, DX // mi

f32loop:
	CMPQ CX, R10
	JGT  f32done
	CMPQ DX, R15
	JGT  f32done

	// expand 8 lead codes from 2 packed bytes
	MOVQ         CX, AX
	SHRQ         $2, AX
	MOVWLZX      (R9)(AX*1), AX
	VMOVQ        AX, X9
	VPBROADCASTD X9, Y9
	VPSRLVD      Y5, Y9, Y9
	VPSRLD       $30, Y3, Y10 // 3 per lane
	VPAND        Y10, Y9, Y9  // l

	VPSUBD    Y9, Y7, Y10 // nm = reqBytes - l
	VPCMPGTD  Y7, Y9, Y11 // l > reqBytes → corrupt
	VPMOVMSKB Y11, AX
	TESTL     AX, AX
	JNE       f32corrupt

	// M = masks[l]: keep top l bytes
	VPSLLD  $3, Y9, Y11
	VPSRLVD Y11, Y3, Y12
	VPXOR   Y3, Y12, Y12

	// inclusive prefix sum of nm
	VMOVDQA  Y10, Y13
	VMOVDQU  slide1F32<>(SB), Y14
	VPERMD   Y13, Y14, Y14
	VPBLENDD $1, Y4, Y14, Y14
	VPADDD   Y14, Y13, Y13
	VMOVDQU  slide2F32<>(SB), Y14
	VPERMD   Y13, Y14, Y14
	VPBLENDD $3, Y4, Y14, Y14
	VPADDD   Y14, Y13, Y13
	VPERM2I128 $0x08, Y13, Y13, Y14
	VPADDD   Y14, Y13, Y13

	// gather offsets E = mi + incl - nm; advance mi by lane 7 of incl
	VPSUBD       Y10, Y13, Y14
	VMOVQ        DX, X15
	VPBROADCASTD X15, Y15
	VPADDD       Y15, Y14, Y14
	VEXTRACTI128 $1, Y13, X13
	VPSHUFD      $0xFF, X13, X13
	VMOVD        X13, AX
	ADDQ         AX, DX

	VMOVDQA    Y3, Y11 // gather mask (clobbered)
	VPGATHERDD Y11, (BX)(Y14*1), Y13
	VMOVDQU    dbswap32<>(SB), Y15
	VPSHUFB    Y15, Y13, Y13
	VPSLLD     $3, Y9, Y11
	VPADDD     Y8, Y11, Y11 // (32-8rb) + 8l = 32-8nm
	VPSRLVD    Y11, Y13, Y13
	VPSLLD     X2, Y13, Y13 // C = chunk << lowSh

	// log-depth affine scan on (M=Y12, C=Y13)
	VMOVDQU  slide1F32<>(SB), Y14
	VPERMD   Y12, Y14, Y15
	VPBLENDD $1, Y3, Y15, Y15
	VPERMD   Y13, Y14, Y14
	VPBLENDD $1, Y4, Y14, Y14
	VPAND    Y12, Y14, Y14
	VPOR     Y14, Y13, Y13
	VPAND    Y15, Y12, Y12
	VMOVDQU  slide2F32<>(SB), Y14
	VPERMD   Y12, Y14, Y15
	VPBLENDD $3, Y3, Y15, Y15
	VPERMD   Y13, Y14, Y14
	VPBLENDD $3, Y4, Y14, Y14
	VPAND    Y12, Y14, Y14
	VPOR     Y14, Y13, Y13
	VPAND    Y15, Y12, Y12
	VPERM2I128 $0x08, Y12, Y12, Y15
	VPBLENDD $0x0F, Y3, Y15, Y15
	VPERM2I128 $0x08, Y13, Y13, Y14
	VPAND    Y12, Y14, Y14
	VPOR     Y14, Y13, Y13
	VPAND    Y15, Y12, Y12

	// w = (prev & M) | C; prev = broadcast lane 7 of w
	VPAND   Y6, Y12, Y12
	VPOR    Y13, Y12, Y12
	VPERMQ  $0xFF, Y12, Y6
	VPSHUFD $0x55, Y6, Y6

	TESTL R13, R13
	JNE   f32raw
	VPSLLD  X1, Y12, Y13
	VADDPS  Y0, Y13, Y13
	VMOVUPS Y13, (DI)(CX*4)
	JMP     f32next

f32raw:
	VMOVUPS Y12, (DI)(CX*4)

f32next:
	ADDQ $8, CX
	JMP  f32loop

f32done:
	MOVQ  CX, i+64(FP)
	MOVQ  DX, mi+72(FP)
	VMOVD X6, AX
	MOVL  AX, prev+80(FP)
	MOVL  $0, bad+84(FP)
	VZEROUPPER
	RET

f32corrupt:
	MOVQ  CX, i+64(FP)
	MOVQ  DX, mi+72(FP)
	MOVL  $0, prev+80(FP)
	MOVL  $1, bad+84(FP)
	VZEROUPPER
	RET

// func decodeF64Asm(out *float64, lead *byte, mid *byte, midLen, n int, mu float64, s, lowSh, reqBytes, lossless uint64) (i, mi int, prev, bad uint64)
TEXT ·decodeF64Asm(SB), NOSPLIT, $0-112
	MOVQ out+0(FP), DI
	MOVQ lead+8(FP), R9
	MOVQ mid+16(FP), BX
	MOVQ midLen+24(FP), R11
	MOVQ n+32(FP), R10
	SUBQ $4, R10 // loop while i ≤ n-4

	VBROADCASTSD mu+40(FP), Y0
	MOVQ         s+48(FP), AX
	VMOVQ        AX, X1
	MOVQ         lowSh+56(FP), AX
	VMOVQ        AX, X2
	VPCMPEQD     Y3, Y3, Y3
	VPXOR        Y4, Y4, Y4
	VMOVDQU      leadShiftF64<>(SB), Y5
	VPXOR        Y6, Y6, Y6
	VBROADCASTSD reqBytes+64(FP), Y7

	MOVQ  reqBytes+64(FP), R14
	MOVQ  $64, AX
	MOVQ  R14, R12
	SHLQ  $3, R12
	SUBQ  R12, AX // 64 - 8*reqBytes
	VMOVQ AX, X8
	VPBROADCASTQ X8, Y8

	// gate limit: mi ≤ midLen - (3*reqBytes + 8)
	MOVQ R14, R12
	SHLQ $1, R12
	ADDQ R14, R12
	ADDQ $8, R12
	MOVQ R11, R15
	SUBQ R12, R15

	MOVQ  lossless+72(FP), R13
	XORQ  CX, CX
	XORQ  DX, DX

f64loop:
	CMPQ CX, R10
	JGT  f64done
	CMPQ DX, R15
	JGT  f64done

	// expand 4 lead codes from 1 packed byte
	MOVQ         CX, AX
	SHRQ         $2, AX
	MOVBQZX      (R9)(AX*1), AX
	VMOVQ        AX, X9
	VPBROADCASTQ X9, Y9
	VPSRLVQ      Y5, Y9, Y9
	VPSRLQ       $62, Y3, Y10
	VPAND        Y10, Y9, Y9 // l

	VPSUBQ    Y9, Y7, Y10 // nm
	VPCMPGTQ  Y7, Y9, Y11
	VPMOVMSKB Y11, AX
	TESTL     AX, AX
	JNE       f64corrupt

	VPSLLQ  $3, Y9, Y11
	VPSRLVQ Y11, Y3, Y12
	VPXOR   Y3, Y12, Y12 // M

	// inclusive prefix sum of nm (2 log steps over 4 qwords)
	VMOVDQA  Y10, Y13
	VPERMQ   $0x90, Y13, Y14
	VPBLENDD $3, Y4, Y14, Y14
	VPADDQ   Y14, Y13, Y13
	VPERM2I128 $0x08, Y13, Y13, Y14
	VPADDQ   Y14, Y13, Y13

	VPSUBQ       Y10, Y13, Y14
	VMOVQ        DX, X15
	VPBROADCASTQ X15, Y15
	VPADDQ       Y15, Y14, Y14 // E
	VPERMQ       $0xFF, Y13, Y15
	VMOVQ        X15, AX
	ADDQ         AX, DX

	VMOVDQA    Y3, Y11
	VPGATHERQQ Y11, (BX)(Y14*1), Y13
	VMOVDQU    dbswap64<>(SB), Y15
	VPSHUFB    Y15, Y13, Y13
	VPSLLQ     $3, Y9, Y11
	VPADDQ     Y8, Y11, Y11
	VPSRLVQ    Y11, Y13, Y13
	VPSLLQ     X2, Y13, Y13 // C

	// affine scan (2 log steps)
	VPERMQ   $0x90, Y12, Y15
	VPBLENDD $3, Y3, Y15, Y15
	VPERMQ   $0x90, Y13, Y14
	VPBLENDD $3, Y4, Y14, Y14
	VPAND    Y12, Y14, Y14
	VPOR     Y14, Y13, Y13
	VPAND    Y15, Y12, Y12
	VPERM2I128 $0x08, Y12, Y12, Y15
	VPBLENDD $0x0F, Y3, Y15, Y15
	VPERM2I128 $0x08, Y13, Y13, Y14
	VPAND    Y12, Y14, Y14
	VPOR     Y14, Y13, Y13
	VPAND    Y15, Y12, Y12

	VPAND  Y6, Y12, Y12
	VPOR   Y13, Y12, Y12
	VPERMQ $0xFF, Y12, Y6

	TESTQ R13, R13
	JNE   f64raw
	VPSLLQ  X1, Y12, Y13
	VADDPD  Y0, Y13, Y13
	VMOVUPD Y13, (DI)(CX*8)
	JMP     f64next

f64raw:
	VMOVUPD Y12, (DI)(CX*8)

f64next:
	ADDQ $4, CX
	JMP  f64loop

f64done:
	MOVQ  CX, i+80(FP)
	MOVQ  DX, mi+88(FP)
	VMOVQ X6, AX
	MOVQ  AX, prev+96(FP)
	MOVQ  $0, bad+104(FP)
	VZEROUPPER
	RET

f64corrupt:
	MOVQ  CX, i+80(FP)
	MOVQ  DX, mi+88(FP)
	MOVQ  $0, prev+96(FP)
	MOVQ  $1, bad+104(FP)
	VZEROUPPER
	RET

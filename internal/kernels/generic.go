package kernels

import (
	"math"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// The generic kernel set: the portable pure-Go inner loops, extracted
// verbatim from internal/core (traits.go blockStats, encode.go
// encodeNonConstant, decode.go decodeBlock). These are the reference
// implementations every vector set must match byte for byte, and the only
// set available on non-amd64 targets and `purego` builds.

func generic32() Impl32 {
	return Impl32{
		Stats:      statsGeneric[float32],
		EncodeScan: encodeScanGeneric[float32, uint32],
		DecodeScan: decodeScanGeneric[float32, uint32],
	}
}

func generic64() Impl64 {
	return Impl64{
		Stats:      statsGeneric[float64],
		EncodeScan: encodeScanGeneric[float64, uint64],
		DecodeScan: decodeScanGeneric[float64, uint64],
	}
}

// statsGeneric is the two-accumulator unrolled min/max scan: the running
// min/max of the even and odd positions are tracked independently so the two
// compare/select chains overlap instead of serializing on one accumulator,
// and merged at the end. min/max are order-independent for non-NaN values
// and both accumulators skip NaN the same way the sequential scan did (NaN
// compares false), so the results are identical to the single-chain form.
// The NaN-detecting sum deliberately stays a single chain in the original
// order: splitting it could change where an intermediate overflow to ±Inf
// cancels, flipping noNaN on extreme-magnitude data. (That makes noNaN
// sum-based: exact whenever the block holds no ±Inf, which is the only case
// the caller's constant test can reach — see Impl32.Stats.)
func statsGeneric[T ieee.Float](blk []T) (mn, mx T, noNaN bool) {
	mn, mx = blk[0], blk[0]
	mn2, mx2 := mn, mx
	var sum T
	// Slice-advance form (not an indexed `i+2 <= len` loop): the len(rest)
	// compare in the condition is the one shape the compiler's prove pass
	// turns into bounds-check-free constant-index loads.
	rest := blk[1:]
	for len(rest) >= 2 {
		a, b := rest[0], rest[1]
		rest = rest[2:]
		sum += a
		sum += b
		if a < mn {
			mn = a
		}
		if a > mx {
			mx = a
		}
		if b < mn2 {
			mn2 = b
		}
		if b > mx2 {
			mx2 = b
		}
	}
	if len(rest) > 0 {
		v := rest[0]
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn2 < mn {
		mn = mn2
	}
	if mx2 > mx {
		mx = mx2
	}
	return mn, mx, sum == sum
}

// encodeScanGeneric is the normalize+shift+leading-XOR scan. Per value:
// subtract μ, shift the bit pattern right by the byte-padding amount, guard
// the truncation error against the bound (fast two-sided native-width
// compare, exact float64 compare for marginal cases), count leading bytes
// identical to the previous word, and commit the surviving suffix with a
// single full-width big-endian store (byte j of the word sits at bit offset
// 8*(es-1-j), so shifting left by 8*lead aligns byte `lead` with the store's
// first byte). The bytes written past reqBytes-lead are slack: the next
// value's store overwrites them, and the caller's truncation cuts off
// whatever the last value leaves behind — which is why mid must extend es
// bytes past the worst-case payload.
func encodeScanGeneric[T ieee.Float, B ieee.Word](lead, mid []byte, blk []T, mu T, reqLen int,
	guarded bool, eSafe T, errBound float64, scr *Scratch) (int, bool) {
	es := ieee.Width[T]()
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8 // 2..4 for float32, 2..8 for float64
	n := len(blk)

	// Mask of bits that survive truncation (top reqLen bits of the word);
	// used only by the guard check.
	keepMask := ^B(0)
	if reqLen < 8*es {
		keepMask <<= uint(8*es - reqLen)
	}
	negESafe := -eSafe

	// Sliced to n (not the raw array pointer) so the compiler can prove
	// leadBuf[i] in-bounds from the range-over-blk induction: blocks above
	// MaxBlockSize are a caller contract violation and still panic here.
	leadBuf := scr.Lead[:n]
	idx := 0
	var prev B
	for i, d := range blk {
		v := d - mu
		bits := ieee.ToBits[B](v)
		w := bits >> s

		if guarded {
			rec := ieee.FromBits[T](bits&keepMask) + mu
			diff := rec - d
			// Fast-accept is the two-sided native-width compare
			// -eSafe ≤ diff ≤ eSafe (no abs, no float64 conversion); NaN
			// diffs fail both sides and take the exact path (which rejects
			// them), as does the eSafe < 0 sentinel.
			if !(diff <= eSafe && diff >= negESafe) {
				if !(math.Abs(float64(d)-float64(rec)) <= errBound) {
					return 0, false
				}
			}
		}

		ld := bitio.LeadingZeroBytes(w ^ prev)
		if ld > reqBytes {
			ld = reqBytes
		}
		leadBuf[i] = byte(ld)

		ieee.PutBE(mid[idx:], w<<uint(8*ld))
		idx += reqBytes - ld
		prev = w
	}
	// Pack the 2-bit leading codes, four per byte. The staging buffer is
	// zero-padded to the next multiple of four so the packing loop reads
	// unconditionally (a ragged tail contributes zero bits, exactly like the
	// conditional ORs it replaces), and both cursors slice-advance so the
	// loop body carries no bounds checks (len(lb) >= 4 in the condition is
	// the shape prove understands; indexed `i+4 <= len` forms are not).
	lb := scr.Lead[:(n+3)&^3]
	for j := n; j < len(lb); j++ {
		lb[j] = 0
	}
	for out := lead[:bitio.PackedLen(n)]; len(out) > 0 && len(lb) >= 4; out = out[1:] {
		out[0] = lb[0]<<6 | lb[1]<<4 | lb[2]<<2 | lb[3]
		lb = lb[4:]
	}
	return idx, true
}

// decodeScanGeneric reconstructs a nonconstant block. Per value: splice the
// first l bytes of the previous word with the next (reqBytes-l) mid-bytes.
// The mid-bytes are loaded as one big-endian word on the fast path (shift
// counts ≥ width are defined as 0 in Go, so nm == 0 degenerates correctly).
//
// The main loop decodes the packed 2-bit lead codes four at a time: one
// byte load yields all four codes with fixed shifts, instead of
// re-extracting with a value-dependent variable shift per element, and
// a single up-front bound (four values consume at most 4*reqBytes
// mid-bytes, each wide load reads es bytes from its start) hoists the
// per-value length checks out of the group.
func decodeScanGeneric[T ieee.Float, B ieee.Word](out []T, lead, mid []byte, mu T, reqLen int) bool {
	es := ieee.Width[T]()
	n := len(out)
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	lossless := reqLen == ieee.FullBits[T]()
	lowSh := uint(8 * (es - reqBytes)) // bit offset of the last stored byte

	// masks[l] keeps the top l bytes of the previous word. Precomputed so
	// the per-value splice is a table load instead of a variable shift
	// (whose ≥-width guard would sit on the loop's dependency chain).
	var masks [4]B
	for l := 1; l < 4; l++ {
		masks[l] = ^(^B(0) >> uint(8*l))
	}

	if n == 0 {
		return true
	}

	// The main loop walks three slice-advance cursors (o over out, lp over
	// lead, both mirrored by the i counter the tail handoff needs) so the
	// out stores and the lead-byte load carry no bounds checks; only the
	// mid reads keep theirs, because the mid cursor advances by the
	// data-dependent nm and no loop-invariant fact bounds it. lp cannot
	// run out before o does (callers pass PackedLen(n) lead bytes), so the
	// len(lp) clause is a free prove fact, not a semantic change.
	o := out
	lp := lead[:bitio.PackedLen(n)]
	var prev B
	mi := 0
	i := 0
	for len(o) >= 4 && len(lp) > 0 && mi+3*reqBytes+es <= len(mid) {
		lb := lp[0]
		lp = lp[1:]

		l := int(lb >> 6)
		nm := reqBytes - l
		if nm < 0 {
			return false
		}
		chunk := ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w := prev&masks[l] | chunk<<lowSh

		l = int(lb>>4) & 3
		nm = reqBytes - l
		if nm < 0 {
			return false
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w2 := w&masks[l] | chunk<<lowSh

		l = int(lb>>2) & 3
		nm = reqBytes - l
		if nm < 0 {
			return false
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w3 := w2&masks[l] | chunk<<lowSh

		l = int(lb) & 3
		nm = reqBytes - l
		if nm < 0 {
			return false
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w4 := w3&masks[l] | chunk<<lowSh

		prev = w4
		if lossless {
			// Bit-exact path: μ is forced to zero for lossless blocks, and
			// skipping the addition preserves NaN payloads and signed
			// zeros.
			o[0] = ieee.FromBits[T](w)
			o[1] = ieee.FromBits[T](w2)
			o[2] = ieee.FromBits[T](w3)
			o[3] = ieee.FromBits[T](w4)
		} else {
			o[0] = ieee.FromBits[T](w<<s) + mu
			o[1] = ieee.FromBits[T](w2<<s) + mu
			o[2] = ieee.FromBits[T](w3<<s) + mu
			o[3] = ieee.FromBits[T](w4<<s) + mu
		}
		o = o[4:]
		i += 4
	}
	// Tail: the last <4 values and any group whose mid-bytes run too close
	// to the end of the payload for unconditional wide loads.
	return decodeScanTail(out, lead, mid, mu, i, mi, prev, masks, s, lowSh, reqBytes, lossless)
}

// decodeScanTail finishes a block from value index i onwards with fully
// bounds-checked narrow loads. It is shared by the generic and vector
// decode kernels: the vector main loop stops at the same gate as the
// generic one and hands the remainder here, so the two paths cannot
// diverge on tail handling.
func decodeScanTail[T ieee.Float, B ieee.Word](out []T, lead, mid []byte, mu T,
	i, mi int, prev B, masks [4]B, s, lowSh uint, reqBytes int, lossless bool) bool {
	es := ieee.Width[T]()
	for ; i < len(out); i++ {
		l := int(lead[i>>2]>>uint(6-2*(i&3))) & 3
		nm := reqBytes - l
		if nm < 0 {
			return false
		}
		var chunk B
		if mi+es <= len(mid) {
			chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		} else {
			if mi+nm > len(mid) {
				return false
			}
			for j := 0; j < nm; j++ {
				chunk = chunk<<8 | B(mid[mi+j])
			}
		}
		mi += nm
		w := prev&masks[l] | chunk<<lowSh
		prev = w
		if lossless {
			out[i] = ieee.FromBits[T](w)
		} else {
			out[i] = ieee.FromBits[T](w<<s) + mu
		}
	}
	return true
}

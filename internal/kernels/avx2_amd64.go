//go:build amd64 && !purego

package kernels

import (
	"math"
	"math/bits"
	"unsafe"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// The avx2 kernel set: thin Go drivers over the vector loops in
// stats_amd64.s / encode_amd64.s / decode_amd64.s. Every driver falls back
// to the generic loop for blocks too small to fill a vector group, and
// finishes ragged tails with the same scalar code the generic set runs, so
// the two sets stay byte-identical by construction.
func avx232() Impl32 {
	return Impl32{
		Stats:      statsAVX2F32,
		EncodeScan: encodeScanAVX2F32,
		DecodeScan: decodeScanAVX2F32,
	}
}

func avx264() Impl64 {
	return Impl64{
		Stats:      statsAVX2F64,
		EncodeScan: encodeScanAVX2F64,
		DecodeScan: decodeScanAVX2F64,
	}
}

// --- stats -----------------------------------------------------------------

// Implemented in stats_amd64.s. n must be a positive multiple of 16 (f32)
// or 8 (f64); nan is nonzero iff a NaN was seen in p[:n].
//
//go:noescape
func statsF32Asm(p *float32, n int) (mn, mx float32, nan uint32)

//go:noescape
func statsF64Asm(p *float64, n int) (mn, mx float64, nan uint32)

func statsAVX2F32(blk []float32) (mn, mx float32, noNaN bool) {
	m := len(blk) &^ 15
	if m == 0 {
		return statsGeneric(blk)
	}
	mn, mx, nan := statsF32Asm(&blk[0], m)
	hasNaN := nan != 0
	// Scalar tail, same compare semantics as the vector accumulators: a
	// NaN accumulator (seed NaN) is sticky because v < NaN is false.
	for _, v := range blk[m:] {
		if v != v {
			hasNaN = true
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, !hasNaN
}

func statsAVX2F64(blk []float64) (mn, mx float64, noNaN bool) {
	m := len(blk) &^ 7
	if m == 0 {
		return statsGeneric(blk)
	}
	mn, mx, nan := statsF64Asm(&blk[0], m)
	hasNaN := nan != 0
	for _, v := range blk[m:] {
		if v != v {
			hasNaN = true
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx, !hasNaN
}

// --- encode ----------------------------------------------------------------

// Implemented in encode_amd64.s. n must be a positive multiple of 8 (f32)
// or 4 (f64). The asm writes, per value, the reqBytes-clamped lead count
// into ldp and the byte-swapped shifted word (store-ready mid-bytes) into
// wshp; fail is nonzero iff the guard fast-check rejected any lane.
//
//go:noescape
func encNormF32Asm(p *float32, wshp *uint32, ldp *uint32, n int, mu, eSafe, negESafe float32, s, keepMask, reqBytes, guarded uint32) (fail uint32)

//go:noescape
func encNormF64Asm(p *float64, wshp *uint64, ldp *uint64, n int, mu, eSafe, negESafe float64, s, keepMask, reqBytes, guarded uint64) (fail uint64)

// encodeScanAVX2F32 runs the fused normalize+guard+lead pass in AVX2 into
// scr's word and lead-count buffers, then emits the packed lead array and
// mid-bytes from the precomputed values in a scalar loop whose only
// loop-carried work is the output-cursor add. Any guard fast-fail (or the
// negative-eSafe sentinel for subnormal bounds) reruns the whole block
// through the generic kernel: the fallback re-applies the exact float64
// check per value, so streams stay byte-identical with fast-fail lanes
// present, and rejected blocks bail out exactly as before.
func encodeScanAVX2F32(lead, mid []byte, blk []float32, mu float32, reqLen int,
	guarded bool, eSafe float32, errBound float64, scr *Scratch) (int, bool) {
	n := len(blk)
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	if n < 8 || len(mid) < reqBytes*n+4 || (guarded && !(eSafe >= 0)) {
		return encodeScanGeneric[float32, uint32](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
	}
	keepMask := ^uint32(0)
	if reqLen < 32 {
		keepMask <<= uint(32 - reqLen)
	}
	var g uint32
	if guarded {
		g = 1
	}
	// The asm clamp mirrors min(bitio.LeadingZeroBytes*, reqBytes): the
	// 2-bit lead code ceiling of 3 applies before the reqBytes cap.
	clamp := reqBytes
	if clamp > 3 {
		clamp = 3
	}
	m := n &^ 7
	wsh := scr.W32()
	ldv := scr.Ld32()
	if encNormF32Asm(&blk[0], &wsh[0], &ldv[0], m, mu, eSafe, -eSafe, uint32(s), keepMask, uint32(clamp), g) != 0 {
		return encodeScanGeneric[float32, uint32](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
	}
	if m < n {
		// Scalar tail: same normalize + guard fast-check + lead/shift math
		// as the vector loop (m ≥ 8, so blk[m-1] exists).
		prev := math.Float32bits(blk[m-1]-mu) >> s
		for i := m; i < n; i++ {
			d := blk[i]
			b := math.Float32bits(d - mu)
			if guarded {
				rec := math.Float32frombits(b&keepMask) + mu
				diff := rec - d
				if !(diff <= eSafe && diff >= -eSafe) {
					return encodeScanGeneric[float32, uint32](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
				}
			}
			w := b >> s
			ld := bitio.LeadingZeroBytes32(w ^ prev)
			if ld > reqBytes {
				ld = reqBytes
			}
			ldv[i] = uint32(ld)
			wsh[i] = bits.ReverseBytes32(w << uint(8*ld))
			prev = w
		}
	}
	return emitF32(lead, mid, wsh, ldv, n, reqBytes), true
}

func encodeScanAVX2F64(lead, mid []byte, blk []float64, mu float64, reqLen int,
	guarded bool, eSafe float64, errBound float64, scr *Scratch) (int, bool) {
	n := len(blk)
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	if n < 4 || len(mid) < reqBytes*n+8 || (guarded && !(eSafe >= 0)) {
		return encodeScanGeneric[float64, uint64](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
	}
	keepMask := ^uint64(0)
	if reqLen < 64 {
		keepMask <<= uint(64 - reqLen)
	}
	var g uint64
	if guarded {
		g = 1
	}
	clamp := reqBytes
	if clamp > 3 {
		clamp = 3
	}
	m := n &^ 3
	wsh := &scr.W
	ldv := &scr.Ld
	if encNormF64Asm(&blk[0], &wsh[0], &ldv[0], m, mu, eSafe, -eSafe, uint64(s), keepMask, uint64(clamp), g) != 0 {
		return encodeScanGeneric[float64, uint64](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
	}
	if m < n {
		prev := math.Float64bits(blk[m-1]-mu) >> s
		for i := m; i < n; i++ {
			d := blk[i]
			b := math.Float64bits(d - mu)
			if guarded {
				rec := math.Float64frombits(b&keepMask) + mu
				diff := rec - d
				if !(diff <= eSafe && diff >= -eSafe) {
					return encodeScanGeneric[float64, uint64](lead, mid, blk, mu, reqLen, guarded, eSafe, errBound, scr)
				}
			}
			w := b >> s
			ld := bitio.LeadingZeroBytes64(w ^ prev)
			if ld > reqBytes {
				ld = reqBytes
			}
			ldv[i] = uint64(ld)
			wsh[i] = bits.ReverseBytes64(w << uint(8*ld))
			prev = w
		}
	}
	return emitF64(lead, mid, wsh, ldv, n, reqBytes), true
}

// emitF32 commits the precomputed per-value outputs: the byte-swapped
// shifted word is stored verbatim at the output cursor (its slack bytes are
// overwritten by the next store, exactly like the generic kernel's wide
// big-endian store), the cursor advances by reqBytes-ld, and the 2-bit lead
// codes pack four per byte.
//
// The stores go through unsafe so the cursor chain carries no per-iteration
// bounds checks. Safety: the caller verified len(mid) ≥ reqBytes*n+4, the
// asm/tail clamp every ld into [0, reqBytes], so before store i the cursor
// is ≤ reqBytes*i and the 4-byte store ends ≤ reqBytes*n+4.
// Both loops use the slice-advance shape (length compares in the loop
// condition, constant indices in the body) so the staging-buffer reads and
// lead stores carry no bounds checks; see the BCE notes in EXPERIMENTS.md.
func emitF32(lead, mid []byte, wsh *[MaxBlockSize]uint32, ldv *[MaxBlockSize]uint32, n, reqBytes int) int {
	base := unsafe.Pointer(&mid[0])
	idx := 0
	ws, ld := wsh[:n], ldv[:n]
	for i := range ws {
		*(*uint32)(unsafe.Add(base, idx)) = ws[i]
		idx += reqBytes - int(ld[i])
	}
	for out := lead; len(out) > 0 && len(ld) >= 4; out = out[1:] {
		out[0] = byte(ld[0])<<6 | byte(ld[1])<<4 | byte(ld[2])<<2 | byte(ld[3])
		ld = ld[4:]
	}
	if len(ld) > 0 && len(ld) < 4 {
		var b byte
		for sh := 6; len(ld) > 0; ld, sh = ld[1:], sh-2 {
			b |= byte(ld[0]) << uint(sh)
		}
		lead[n>>2] = b
	}
	return idx
}

func emitF64(lead, mid []byte, wsh *[MaxBlockSize]uint64, ldv *[MaxBlockSize]uint64, n, reqBytes int) int {
	base := unsafe.Pointer(&mid[0])
	idx := 0
	ws, ld := wsh[:n], ldv[:n]
	for i := range ws {
		*(*uint64)(unsafe.Add(base, idx)) = ws[i]
		idx += reqBytes - int(ld[i])
	}
	for out := lead; len(out) > 0 && len(ld) >= 4; out = out[1:] {
		out[0] = byte(ld[0])<<6 | byte(ld[1])<<4 | byte(ld[2])<<2 | byte(ld[3])
		ld = ld[4:]
	}
	if len(ld) > 0 && len(ld) < 4 {
		var b byte
		for sh := 6; len(ld) > 0; ld, sh = ld[1:], sh-2 {
			b |= byte(ld[0]) << uint(sh)
		}
		lead[n>>2] = b
	}
	return idx
}

// --- decode ----------------------------------------------------------------

// Implemented in decode_amd64.s. Returns how far the vector loop got
// (values decoded, mid bytes consumed, last reconstructed word) so the Go
// driver can hand the remainder to the shared scalar tail; bad is nonzero
// iff a lead code exceeded reqBytes.
//
//go:noescape
func decodeF32Asm(out *float32, lead *byte, mid *byte, midLen, n int, mu float32, s, lowSh, reqBytes, lossless uint32) (i, mi int, prev, bad uint32)

//go:noescape
func decodeF64Asm(out *float64, lead *byte, mid *byte, midLen, n int, mu float64, s, lowSh, reqBytes, lossless uint64) (i, mi int, prev, bad uint64)

func decodeScanAVX2F32(out []float32, lead, mid []byte, mu float32, reqLen int) bool {
	n := len(out)
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	// The vector loop needs at least one full group and one group's
	// worst-case mid consumption; tiny blocks/payloads go generic.
	if n < 8 || len(mid) < 7*reqBytes+4 {
		return decodeScanGeneric[float32, uint32](out, lead, mid, mu, reqLen)
	}
	lossless := reqLen == ieee.FullBits[float32]()
	var lv uint32
	if lossless {
		lv = 1
	}
	lowSh := uint(8 * (4 - reqBytes))
	i, mi, prev, bad := decodeF32Asm(&out[0], &lead[0], &mid[0], len(mid), n, mu,
		uint32(s), uint32(lowSh), uint32(reqBytes), lv)
	if bad != 0 {
		return false
	}
	var masks [4]uint32
	for l := 1; l < 4; l++ {
		masks[l] = ^(^uint32(0) >> uint(8*l))
	}
	return decodeScanTail[float32, uint32](out, lead, mid, mu, i, mi, prev, masks, s, lowSh, reqBytes, lossless)
}

func decodeScanAVX2F64(out []float64, lead, mid []byte, mu float64, reqLen int) bool {
	n := len(out)
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	if n < 4 || len(mid) < 3*reqBytes+8 {
		return decodeScanGeneric[float64, uint64](out, lead, mid, mu, reqLen)
	}
	lossless := reqLen == ieee.FullBits[float64]()
	var lv uint64
	if lossless {
		lv = 1
	}
	lowSh := uint(8 * (8 - reqBytes))
	i, mi, prev, bad := decodeF64Asm(&out[0], &lead[0], &mid[0], len(mid), n, mu,
		uint64(s), uint64(lowSh), uint64(reqBytes), lv)
	if bad != 0 {
		return false
	}
	var masks [4]uint64
	for l := 1; l < 4; l++ {
		masks[l] = ^(^uint64(0) >> uint(8*l))
	}
	return decodeScanTail[float64, uint64](out, lead, mid, mu, i, mi, prev, masks, s, lowSh, reqBytes, lossless)
}

//go:build !amd64 || purego

package kernels

// archBest reports the best vector kernel set for this build. Non-amd64
// targets and purego builds have none; dispatch stays on generic.
func archBest() (Impl32, Impl64, string, bool) {
	return Impl32{}, Impl64{}, "", false
}

func archGenericReason() string { return "no vector kernels for this target/build" }

//go:build amd64 && !purego

#include "textflag.h"

// AVX2 encode scans: one fused pass producing, per value,
//
//	w    = bits(p[i] - mu) >> s          (the normalized word)
//	ld   = min(LeadingZeroBytes(w ^ w[i-1]), reqBytes)
//	wsh  = bswap(w << 8*ld)              (mid-bytes, store-ready)
//
// plus an optional vectorized guard fast-check. ld and wsh land in scratch
// arrays; the Go emit loop then only advances the output cursor and stores
// precomputed values, so the only loop-carried work left in Go is one
// integer add.
//
// The guard accumulates a per-lane failure mask for any value whose
// truncation error is NOT fast-accepted by the two-sided native-width
// compare -eSafe ≤ diff ≤ eSafe; the Go driver falls back to the generic
// kernel for the whole block when the mask is nonzero (a fast-fail is not a
// rejection — the generic path re-checks it exactly — but it is rare enough
// that redoing the block keeps this loop branch-free). NaN diffs fail the
// NLE_UQ compare and so take the fallback, matching the generic ordering
// semantics; the unguarded loop never inspects values, so NaN payloads flow
// through bit-exactly.
//
// Per-lane leading-zero-byte counts have no AVX2 instruction; they are
// summed indicators — lzb(x) = Σ_k [x >> 8k == 0] — which matches
// bits.LeadingZeros/8 exactly for every x, including x == 0 (all
// indicators fire, and the reqBytes clamp brings the count back in range,
// exactly like the generic kernel's cap). The previous-word lane shift is a
// cross-lane rotate with a carry register holding the last word of the
// prior group (zero at block start, matching the generic scan's prev = 0).
//
// VSUBPS/VADDPS here perform the same IEEE-754 single-rounding operations
// as the scalar Go code, so the stored words are bit-identical to the
// generic scan's. Note VMOVQ (VEX), not MOVQ: a legacy-SSE register move
// in AVX2 code costs an upper-state transition (~150ns) on every call.

DATA rotIdxF32<>+0(SB)/4, $7
DATA rotIdxF32<>+4(SB)/4, $0
DATA rotIdxF32<>+8(SB)/4, $1
DATA rotIdxF32<>+12(SB)/4, $2
DATA rotIdxF32<>+16(SB)/4, $3
DATA rotIdxF32<>+20(SB)/4, $4
DATA rotIdxF32<>+24(SB)/4, $5
DATA rotIdxF32<>+28(SB)/4, $6
GLOBL rotIdxF32<>(SB), RODATA|NOPTR, $32

DATA bswapF32<>+0(SB)/8, $0x0405060700010203
DATA bswapF32<>+8(SB)/8, $0x0C0D0E0F08090A0B
DATA bswapF32<>+16(SB)/8, $0x0405060700010203
DATA bswapF32<>+24(SB)/8, $0x0C0D0E0F08090A0B
GLOBL bswapF32<>(SB), RODATA|NOPTR, $32

DATA bswapF64<>+0(SB)/8, $0x0001020304050607
DATA bswapF64<>+8(SB)/8, $0x08090A0B0C0D0E0F
DATA bswapF64<>+16(SB)/8, $0x0001020304050607
DATA bswapF64<>+24(SB)/8, $0x08090A0B0C0D0E0F
GLOBL bswapF64<>(SB), RODATA|NOPTR, $32

// func encNormF32Asm(p *float32, wshp *uint32, ldp *uint32, n int, mu, eSafe, negESafe float32, s, keepMask, reqBytes, guarded uint32) (fail uint32)
// n must be a positive multiple of 8.
TEXT ·encNormF32Asm(SB), NOSPLIT, $0-68
	MOVQ p+0(FP), SI
	MOVQ wshp+8(FP), DI
	MOVQ ldp+16(FP), R8
	MOVQ n+24(FP), CX

	VBROADCASTSS mu+32(FP), Y0
	VBROADCASTSS eSafe+36(FP), Y3
	VBROADCASTSS negESafe+40(FP), Y4
	MOVL         s+44(FP), AX
	VMOVQ        AX, X1
	VBROADCASTSS keepMask+48(FP), Y2
	VBROADCASTSS reqBytes+52(FP), Y13
	VPXOR        Y5, Y5, Y5   // guard-failure accumulator
	VPXOR        Y10, Y10, Y10 // prev-word carry (prev = 0 at block start)
	VPXOR        Y12, Y12, Y12 // zero
	VMOVDQU      rotIdxF32<>(SB), Y14
	VMOVDQU      bswapF32<>(SB), Y15

	MOVL  guarded+56(FP), DX
	TESTL DX, DX
	JZ    f32unguarded

f32guarded:
	VMOVUPS (SI), Y6
	VSUBPS  Y0, Y6, Y7 // v = d - mu
	VPSRLD  X1, Y7, Y8 // w = bits(v) >> s

	VPAND  Y2, Y7, Y9          // kept = bits(v) & keepMask
	VADDPS Y0, Y9, Y9          // rec = kept + mu
	VSUBPS Y6, Y9, Y9          // diff = rec - d
	VCMPPS $0x16, Y3, Y9, Y11  // NLE_UQ: !(diff ≤ eSafe), true on NaN
	VPOR   Y11, Y5, Y5
	VCMPPS $0x11, Y4, Y9, Y11  // LT_OQ: diff < -eSafe
	VPOR   Y11, Y5, Y5

	// xor = w ^ [prev, w0..w6]
	VPERMD   Y8, Y14, Y9
	VPBLENDD $1, Y10, Y9, Y9
	VPXOR    Y9, Y8, Y9
	VPERMQ   $0xFF, Y8, Y10 // carry = w7 (lane 0 after the dword shift)
	VPSRLDQ  $4, Y10, Y10

	// ld = min(Σ_k [xor >> 8k == 0], reqBytes)
	VPXOR    Y6, Y6, Y6
	VPSRLD   $8, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPSRLD   $16, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPSRLD   $24, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPCMPEQD Y12, Y9, Y7
	VPSUBD   Y7, Y6, Y6
	VPMINSD  Y13, Y6, Y6
	VMOVDQU  Y6, (R8)

	// wsh = bswap(w << 8*ld)
	VPSLLD  $3, Y6, Y7
	VPSLLVD Y7, Y8, Y11
	VPSHUFB Y15, Y11, Y11
	VMOVDQU Y11, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $8, CX
	JNE  f32guarded
	JMP  f32done

f32unguarded:
	VMOVUPS (SI), Y6
	VSUBPS  Y0, Y6, Y7
	VPSRLD  X1, Y7, Y8

	VPERMD   Y8, Y14, Y9
	VPBLENDD $1, Y10, Y9, Y9
	VPXOR    Y9, Y8, Y9
	VPERMQ   $0xFF, Y8, Y10
	VPSRLDQ  $4, Y10, Y10

	VPXOR    Y6, Y6, Y6
	VPSRLD   $8, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPSRLD   $16, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPSRLD   $24, Y9, Y7
	VPCMPEQD Y12, Y7, Y7
	VPSUBD   Y7, Y6, Y6
	VPCMPEQD Y12, Y9, Y7
	VPSUBD   Y7, Y6, Y6
	VPMINSD  Y13, Y6, Y6
	VMOVDQU  Y6, (R8)

	VPSLLD  $3, Y6, Y7
	VPSLLVD Y7, Y8, Y11
	VPSHUFB Y15, Y11, Y11
	VMOVDQU Y11, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $8, CX
	JNE  f32unguarded

f32done:
	VPMOVMSKB Y5, AX
	MOVL      AX, fail+64(FP)
	VZEROUPPER
	RET

// func encNormF64Asm(p *float64, wshp *uint64, ldp *uint64, n int, mu, eSafe, negESafe float64, s, keepMask, reqBytes, guarded uint64) (fail uint64)
// n must be a positive multiple of 4.
TEXT ·encNormF64Asm(SB), NOSPLIT, $0-96
	MOVQ p+0(FP), SI
	MOVQ wshp+8(FP), DI
	MOVQ ldp+16(FP), R8
	MOVQ n+24(FP), CX

	VBROADCASTSD mu+32(FP), Y0
	VBROADCASTSD eSafe+40(FP), Y3
	VBROADCASTSD negESafe+48(FP), Y4
	MOVQ         s+56(FP), AX
	VMOVQ        AX, X1
	VBROADCASTSD keepMask+64(FP), Y2
	VBROADCASTSD reqBytes+72(FP), Y13
	VPXOR        Y5, Y5, Y5
	VPXOR        Y10, Y10, Y10
	VPXOR        Y12, Y12, Y12
	VMOVDQU      bswapF64<>(SB), Y15

	MOVQ  guarded+80(FP), DX
	TESTQ DX, DX
	JZ    f64unguarded

f64guarded:
	VMOVUPD (SI), Y6
	VSUBPD  Y0, Y6, Y7
	VPSRLQ  X1, Y7, Y8

	VPAND  Y2, Y7, Y9
	VADDPD Y0, Y9, Y9
	VSUBPD Y6, Y9, Y9
	VCMPPD $0x16, Y3, Y9, Y11
	VPOR   Y11, Y5, Y5
	VCMPPD $0x11, Y4, Y9, Y11
	VPOR   Y11, Y5, Y5

	// xor = w ^ [prev, w0..w2]
	VPERMQ   $0x90, Y8, Y9
	VPBLENDD $3, Y10, Y9, Y9
	VPXOR    Y9, Y8, Y9
	VPERMQ   $0xFF, Y8, Y10 // carry = w3 in lane 0

	VPXOR    Y6, Y6, Y6
	VPSRLQ   $8, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $16, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $24, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $32, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $40, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $48, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $56, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPCMPEQQ Y12, Y9, Y7
	VPSUBQ   Y7, Y6, Y6

	// clamp (no VPMINSQ in AVX2): ld = acc > reqBytes ? reqBytes : acc
	VPCMPGTQ  Y13, Y6, Y7
	VPBLENDVB Y7, Y13, Y6, Y6
	VMOVDQU   Y6, (R8)

	VPSLLQ  $3, Y6, Y7
	VPSLLVQ Y7, Y8, Y11
	VPSHUFB Y15, Y11, Y11
	VMOVDQU Y11, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $4, CX
	JNE  f64guarded
	JMP  f64done

f64unguarded:
	VMOVUPD (SI), Y6
	VSUBPD  Y0, Y6, Y7
	VPSRLQ  X1, Y7, Y8

	VPERMQ   $0x90, Y8, Y9
	VPBLENDD $3, Y10, Y9, Y9
	VPXOR    Y9, Y8, Y9
	VPERMQ   $0xFF, Y8, Y10

	VPXOR    Y6, Y6, Y6
	VPSRLQ   $8, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $16, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $24, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $32, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $40, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $48, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPSRLQ   $56, Y9, Y7
	VPCMPEQQ Y12, Y7, Y7
	VPSUBQ   Y7, Y6, Y6
	VPCMPEQQ Y12, Y9, Y7
	VPSUBQ   Y7, Y6, Y6

	VPCMPGTQ  Y13, Y6, Y7
	VPBLENDVB Y7, Y13, Y6, Y6
	VMOVDQU   Y6, (R8)

	VPSLLQ  $3, Y6, Y7
	VPSLLVQ Y7, Y8, Y11
	VPSHUFB Y15, Y11, Y11
	VMOVDQU Y11, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	SUBQ $4, CX
	JNE  f64unguarded

f64done:
	VPMOVMSKB Y5, AX
	MOVQ      AX, fail+88(FP)
	VZEROUPPER
	RET

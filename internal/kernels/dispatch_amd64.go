//go:build amd64 && !purego

package kernels

// archBest reports the best vector kernel set for this host: avx2 when the
// CPU and OS support it (see hasAVX2), otherwise none.
func archBest() (Impl32, Impl64, string, bool) {
	if !hasAVX2() {
		return Impl32{}, Impl64{}, "", false
	}
	return avx232(), avx264(), "avx2", true
}

func archGenericReason() string { return "cpu lacks avx2/bmi1/bmi2 or os ymm state" }

package kernels

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// FuzzKernelCrossCheck drives every available vector kernel set against the
// generic reference on fuzzed raw blocks: stats agreement, encode byte
// identity (including the guard fast-fail → exact-recheck path and the
// reject verdict), and decode agreement on both well-formed payloads
// (round-tripped from the encode) and arbitrary fuzzed lead/mid bytes
// (corrupt-verdict agreement).
func FuzzKernelCrossCheck(f *testing.F) {
	f.Add([]byte{}, uint8(0), true)
	f.Add(bytes.Repeat([]byte{0x40, 0x50, 0x00, 0x00}, 40), uint8(10), true)
	f.Add(bytes.Repeat([]byte{0x00}, 133), uint8(3), false)
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint8(200), true) // NaN payloads
	seed := make([]byte, 4*67)
	for i := 0; i < 67; i++ {
		binary.LittleEndian.PutUint32(seed[4*i:], math.Float32bits(100+float32(i%17)*0.25))
	}
	f.Add(seed, uint8(77), true)
	f.Fuzz(func(t *testing.T, raw []byte, sel uint8, guarded bool) {
		n32 := len(raw) / 4
		if n32 > 512 {
			n32 = 512
		}
		if n32 == 0 {
			return
		}
		blk32 := make([]float32, n32)
		for i := range blk32 {
			blk32[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		n64 := len(raw) / 8
		if n64 > 512 {
			n64 = 512
		}
		blk64 := make([]float64, n64)
		for i := range blk64 {
			blk64[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		for _, name := range Available() {
			if name == "generic" {
				continue
			}
			i32, _ := Lookup32(name)
			i64, _ := Lookup64(name)

			mn, mx, nnG := statsGeneric(blk32)
			mnV, mxV, nnV := i32.Stats(blk32)
			statsEquiv(t, blk32, mn, mx, nnG, mnV, mxV, nnV)

			reqLen32 := 9 + int(sel)%24 // 9..32
			fuzzEncDec[float32, uint32](t, blk32, i32.EncodeScan, i32.DecodeScan, reqLen32, guarded, float64(mn), float64(mx))
			fuzzDecodeRaw[float32, uint32](t, raw, sel, i32.DecodeScan, reqLen32)

			if n64 > 0 {
				mn64, mx64, nn64G := statsGeneric(blk64)
				mn64V, mx64V, nn64V := i64.Stats(blk64)
				statsEquiv(t, blk64, mn64, mx64, nn64G, mn64V, mx64V, nn64V)

				reqLen64 := 9 + int(sel)%56 // 9..64
				fuzzEncDec[float64, uint64](t, blk64, i64.EncodeScan, i64.DecodeScan, reqLen64, guarded, float64(mn64), float64(mx64))
				fuzzDecodeRaw[float64, uint64](t, raw, sel, i64.DecodeScan, reqLen64)
			}
		}
	})
}

// fuzzEncDec cross-checks one encode configuration derived from the block's
// own stats (so accept and reject paths both occur), then round-trips the
// payload through both decoders when accepted.
func fuzzEncDec[T ieee.Float, B ieee.Word](t *testing.T, blk []T,
	encV func(lead, mid []byte, blk []T, mu T, reqLen int, guarded bool, eSafe T, errBound float64, scr *Scratch) (int, bool),
	decV func(out []T, lead, mid []byte, mu T, reqLen int) bool,
	reqLen int, guarded bool, mn, mx float64) {
	t.Helper()
	mu := mn/2 + mx/2
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		mu = 0
	}
	radius := math.Max(mx-mu, mu-mn)
	if !(radius > 0) || math.IsInf(radius, 0) {
		radius = 1
	}
	errBound := radius / 64
	n := len(blk)
	es := ieee.Width[T]()
	scrG, scrV := GetScratch(), GetScratch()
	defer PutScratch(scrG)
	defer PutScratch(scrV)
	leadG := make([]byte, bitio.PackedLen(n))
	leadV := make([]byte, bitio.PackedLen(n))
	midG := make([]byte, es*n+es)
	midV := make([]byte, es*n+es)
	mlG, okG := encodeScanGeneric[T, B](leadG, midG, blk, T(mu), reqLen, guarded, T(errBound), errBound, scrG)
	mlV, okV := encV(leadV, midV, blk, T(mu), reqLen, guarded, T(errBound), errBound, scrV)
	if okG != okV {
		t.Fatalf("encode verdict diverges: generic %v vector %v", okG, okV)
	}
	if !okG {
		return
	}
	if mlG != mlV || !bytes.Equal(leadG, leadV) || !bytes.Equal(midG[:mlG], midV[:mlV]) {
		t.Fatalf("encode bytes diverge (midLen %d vs %d)", mlG, mlV)
	}
	outG := make([]T, n)
	outV := make([]T, n)
	rG := decodeScanGeneric[T, B](outG, leadG, midG[:mlG], T(mu), reqLen)
	rV := decV(outV, leadV, midV[:mlV], T(mu), reqLen)
	if rG != rV {
		t.Fatalf("decode verdict diverges on valid payload: %v vs %v", rG, rV)
	}
	for i := range outG {
		if ieee.ToBits[B](outG[i]) != ieee.ToBits[B](outV[i]) {
			t.Fatalf("decode value %d diverges: %v vs %v", i, outG[i], outV[i])
		}
	}
}

// fuzzDecodeRaw feeds arbitrary fuzzed bytes to both decoders as a
// lead/mid payload: the corrupt verdict and, on acceptance, every
// reconstructed bit must agree.
func fuzzDecodeRaw[T ieee.Float, B ieee.Word](t *testing.T, raw []byte, sel uint8,
	decV func(out []T, lead, mid []byte, mu T, reqLen int) bool, reqLen int) {
	t.Helper()
	n := int(sel)%96 + 1
	pl := bitio.PackedLen(n)
	if len(raw) < pl {
		return
	}
	lead := raw[:pl]
	mid := raw[pl:]
	mu := T(float64(sel) * 0.5)
	outG := make([]T, n)
	outV := make([]T, n)
	rG := decodeScanGeneric[T, B](outG, lead, mid, mu, reqLen)
	rV := decV(outV, lead, mid, mu, reqLen)
	if rG != rV {
		t.Fatalf("decode verdict diverges on raw payload: generic %v vector %v (n=%d reqLen=%d)", rG, rV, n, reqLen)
	}
	if !rG {
		return
	}
	for i := range outG {
		if ieee.ToBits[B](outG[i]) != ieee.ToBits[B](outV[i]) {
			t.Fatalf("raw decode value %d diverges: %v vs %v", i, outG[i], outV[i])
		}
	}
}

package kernels

import (
	"math/rand"
	"testing"
)

func benchBlock32(n int) []float32 {
	rng := rand.New(rand.NewSource(7))
	blk := make([]float32, n)
	for i := range blk {
		blk[i] = 100 + float32(rng.NormFloat64())
	}
	return blk
}

func benchBlock64(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	blk := make([]float64, n)
	for i := range blk {
		blk[i] = 100 + rng.NormFloat64()
	}
	return blk
}

func BenchmarkStats(b *testing.B) {
	blk32 := benchBlock32(128)
	blk64 := benchBlock64(128)
	for _, name := range Available() {
		i32, _ := Lookup32(name)
		i64, _ := Lookup64(name)
		b.Run(name+"/f32", func(b *testing.B) {
			b.SetBytes(int64(4 * len(blk32)))
			for i := 0; i < b.N; i++ {
				sinkF32, sinkF32b, sinkBool = i32.Stats(blk32)
			}
		})
		b.Run(name+"/f64", func(b *testing.B) {
			b.SetBytes(int64(8 * len(blk64)))
			for i := 0; i < b.N; i++ {
				sinkF64, sinkF64b, sinkBool = i64.Stats(blk64)
			}
		})
	}
}

var (
	sinkF32, sinkF32b float32
	sinkF64, sinkF64b float64
	sinkBool          bool
)

func BenchmarkEncodeScan(b *testing.B) {
	blk32 := benchBlock32(128)
	blk64 := benchBlock64(128)
	scr := GetScratch()
	defer PutScratch(scr)
	lead := make([]byte, 32)
	mid := make([]byte, 8*128+8)
	for _, name := range Available() {
		i32, _ := Lookup32(name)
		i64, _ := Lookup64(name)
		b.Run(name+"/f32", func(b *testing.B) {
			b.SetBytes(int64(4 * len(blk32)))
			for i := 0; i < b.N; i++ {
				sinkInt, sinkBool = i32.EncodeScan(lead, mid, blk32, 100, 18, true, 0.01, 0.01, scr)
			}
		})
		b.Run(name+"/f64", func(b *testing.B) {
			b.SetBytes(int64(8 * len(blk64)))
			for i := 0; i < b.N; i++ {
				sinkInt, sinkBool = i64.EncodeScan(lead, mid, blk64, 100, 26, true, 0.01, 0.01, scr)
			}
		})
	}
}

func BenchmarkDecodeScan(b *testing.B) {
	blk32 := benchBlock32(128)
	blk64 := benchBlock64(128)
	scr := GetScratch()
	defer PutScratch(scr)
	lead := make([]byte, 32)
	mid := make([]byte, 8*128+8)
	out32 := make([]float32, 128)
	out64 := make([]float64, 128)
	ml32, _ := encodeScanGeneric[float32, uint32](lead, mid, blk32, 100, 18, false, 0, 0, scr)
	for _, name := range Available() {
		i32, _ := Lookup32(name)
		b.Run(name+"/f32", func(b *testing.B) {
			b.SetBytes(int64(4 * len(blk32)))
			for i := 0; i < b.N; i++ {
				sinkBool = i32.DecodeScan(out32, lead, mid[:ml32], 100, 18)
			}
		})
	}
	ml64, _ := encodeScanGeneric[float64, uint64](lead, mid, blk64, 100, 26, false, 0, 0, scr)
	for _, name := range Available() {
		i64, _ := Lookup64(name)
		b.Run(name+"/f64", func(b *testing.B) {
			b.SetBytes(int64(8 * len(blk64)))
			for i := 0; i < b.N; i++ {
				sinkBool = i64.DecodeScan(out64, lead, mid[:ml64], 100, 26)
			}
		})
	}
}

var sinkInt int

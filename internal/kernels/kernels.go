// Package kernels holds the SZx codec's three hot inner loops — the block
// min/max reduction, the normalize+shift+leading-XOR encode scan, and the
// packed-lead block reconstruction — as swappable implementations selected
// once at init from CPU features.
//
// Two implementation sets exist: "generic", the portable pure-Go loops the
// codec has always run (extracted verbatim from internal/core), and "avx2",
// hand-written amd64 vector kernels gated behind `amd64 && !purego` build
// tags. Both produce bit-identical streams; the cross-check and fuzz suites
// in this package pin that equivalence on adversarial block shapes, and
// internal/core's golden hashes pin it end to end.
//
// Dispatch happens exactly once, in init: CPUID feature bits pick the best
// set, and the SZX_KERNELS environment variable overrides the choice
// ("generic" forces the portable loops, "avx2" requests the vector set).
// The selection is introspectable via Active/Detail and surfaces in
// `szx -stats` output and the szx_kernel_* telemetry family.
package kernels

import (
	"fmt"
	"os"
	"sync"
	"unsafe"
)

// MaxBlockSize bounds the block size the kernels must handle; it mirrors
// core.MaxBlockSize (which is defined in terms of this constant) so the
// fixed-size scratch buffers below always cover a whole block.
const MaxBlockSize = 4096

// EnvVar names the environment variable that overrides kernel dispatch.
// Recognized values: "generic" (force the portable loops), "avx2" (request
// the vector set; falls back to generic with a recorded reason when the CPU
// or build lacks it), and ""/"auto" (feature detection, the default).
const EnvVar = "SZX_KERNELS"

// Scratch is per-encoder staging memory shared by the kernel
// implementations: Lead stages per-value leading-byte codes before packing,
// and W stages normalized words for the vector encode path (aliased as
// []uint32 for the float32 kernels). It is pooled via GetScratch/PutScratch
// so the hot paths never allocate it per call.
type Scratch struct {
	Lead [MaxBlockSize]byte
	W    [MaxBlockSize]uint64
	Ld   [MaxBlockSize]uint64
}

// W32 views the word buffer as float32-width words (the first half of W's
// bytes); the float32 kernels use at most MaxBlockSize of them.
func (s *Scratch) W32() *[MaxBlockSize]uint32 {
	return (*[MaxBlockSize]uint32)(unsafe.Pointer(&s.W))
}

// Ld32 is the float32-width view of the per-value lead-count buffer.
func (s *Scratch) Ld32() *[MaxBlockSize]uint32 {
	return (*[MaxBlockSize]uint32)(unsafe.Pointer(&s.Ld))
}

// The scratch pool is a bounded freelist rather than a sync.Pool: the
// codec's warm zero-alloc contract (TestTargetRatioZeroAlloc and the
// ReportAllocs-pinned benches) needs Get to be deterministic, and
// sync.Pool is not — the race detector randomly drops Puts and every GC
// cycle clears the victim cache, each of which turns a warm call into a
// fresh 68 KiB allocation. The cap bounds idle retention to ~2 MiB.
const maxScratchFree = 32

var (
	scratchMu   sync.Mutex
	scratchFree []*Scratch
)

// GetScratch returns a Scratch from the pool. Contents are undefined; every
// kernel writes before it reads.
func GetScratch() *Scratch {
	scratchMu.Lock()
	if n := len(scratchFree); n > 0 {
		s := scratchFree[n-1]
		scratchFree[n-1] = nil
		scratchFree = scratchFree[:n-1]
		scratchMu.Unlock()
		return s
	}
	scratchMu.Unlock()
	return new(Scratch)
}

// PutScratch returns s to the pool. s must not be used afterwards.
func PutScratch(s *Scratch) {
	scratchMu.Lock()
	if len(scratchFree) < maxScratchFree {
		scratchFree = append(scratchFree, s)
	}
	scratchMu.Unlock()
}

// Impl32 is one implementation set of the float32 kernels. All three
// functions must produce output bit-identical to the generic set; see each
// field's contract.
type Impl32 struct {
	// Stats scans one block and returns the running minimum and maximum
	// under the codec's NaN-skipping compare semantics (NaN elements never
	// become the min/max; if blk[0] is NaN both results stay NaN), plus a
	// no-NaN verdict. noNaN must be exact whenever the block holds no ±Inf
	// and the returned min/max are not NaN; in the remaining cases the
	// caller's constant-block test already fails on the (NaN or oversized)
	// radius, so implementations may differ there — the generic set detects
	// NaN through a summation chain that starts at index 1 and can be
	// fooled by ±Inf pairs, the vector set detects it exactly per lane.
	Stats func(blk []float32) (mn, mx float32, noNaN bool)

	// EncodeScan runs the normalize+shift+leading-XOR scan over one
	// nonconstant block, writing the packed 2-bit lead array into lead
	// (PackedLen(len(blk)) bytes) and the mid-bytes into mid, and returns
	// the number of mid bytes written. mid must have room for
	// reqBytes*len(blk) plus 4 (f32) or 8 (f64) bytes of slack for the
	// wide stores. guarded enables the error-bound guard; on a guard
	// reject it returns ok=false and the contents of lead/mid are
	// unspecified. eSafe is the fast-accept threshold (negative sentinel
	// forces every marginal value through the exact errBound check).
	EncodeScan func(lead, mid []byte, blk []float32, mu float32, reqLen int,
		guarded bool, eSafe float32, errBound float64, scr *Scratch) (midLen int, ok bool)

	// DecodeScan reconstructs one nonconstant block from its packed lead
	// array and mid bytes into out (whose length is the block's value
	// count). It returns false when the payload is corrupt (a lead code
	// exceeding reqBytes, or mid running out of bytes).
	DecodeScan func(out []float32, lead, mid []byte, mu float32, reqLen int) bool
}

// Impl64 is the float64 analogue of Impl32.
type Impl64 struct {
	Stats      func(blk []float64) (mn, mx float64, noNaN bool)
	EncodeScan func(lead, mid []byte, blk []float64, mu float64, reqLen int,
		guarded bool, eSafe float64, errBound float64, scr *Scratch) (midLen int, ok bool)
	DecodeScan func(out []float64, lead, mid []byte, mu float64, reqLen int) bool
}

// K32 and K64 are the active kernel sets. They are written exactly once, at
// init, before any codec call can run; every later access is a read.
var (
	K32 Impl32
	K64 Impl64

	activeName   string
	activeDetail string
)

// Active returns the name of the dispatched implementation set: "generic"
// or "avx2".
func Active() string { return activeName }

// Detail returns the dispatch decision with its reason, e.g.
// "avx2 (cpu feature detection)" or "generic (SZX_KERNELS=generic)".
func Detail() string { return fmt.Sprintf("%s (%s)", activeName, activeDetail) }

// Available lists the implementation sets usable on this host and build,
// always starting with "generic".
func Available() []string {
	names := []string{"generic"}
	if _, _, bestName, ok := archBest(); ok {
		names = append(names, bestName)
	}
	return names
}

// Lookup32 returns the float32 kernel set with the given name, for
// benchmarks and cross-check tests. ok is false for unknown names and for
// vector sets the host or build cannot run.
func Lookup32(name string) (Impl32, bool) {
	switch name {
	case "generic":
		return generic32(), true
	default:
		if i32, _, bestName, ok := archBest(); ok && name == bestName {
			return i32, true
		}
	}
	return Impl32{}, false
}

// Lookup64 is the float64 analogue of Lookup32.
func Lookup64(name string) (Impl64, bool) {
	switch name {
	case "generic":
		return generic64(), true
	default:
		if _, i64, bestName, ok := archBest(); ok && name == bestName {
			return i64, true
		}
	}
	return Impl64{}, false
}

func init() {
	selectImpl(os.Getenv(EnvVar))
}

// selectImpl resolves the dispatch decision. Split from init so tests can
// exercise the override logic.
func selectImpl(env string) {
	best32, best64, bestName, ok := archBest()
	switch env {
	case "", "auto":
		if ok {
			K32, K64 = best32, best64
			activeName, activeDetail = bestName, "cpu feature detection"
			return
		}
		K32, K64 = generic32(), generic64()
		activeName, activeDetail = "generic", archGenericReason()
	case "generic":
		K32, K64 = generic32(), generic64()
		activeName, activeDetail = "generic", EnvVar+"=generic"
	default:
		if ok && env == bestName {
			K32, K64 = best32, best64
			activeName, activeDetail = bestName, EnvVar+"="+env
			return
		}
		K32, K64 = generic32(), generic64()
		if env == "avx2" {
			activeName, activeDetail = "generic", EnvVar+"=avx2 requested but unavailable: "+archGenericReason()
		} else {
			activeName, activeDetail = "generic", "unknown "+EnvVar+"="+env
		}
	}
}

// SetActiveForTesting swaps the active kernel set by name and returns a
// restore function. It is not safe to call concurrently with codec work;
// tests that use it must not run in parallel with compression calls.
func SetActiveForTesting(name string) (restore func(), err error) {
	i32, ok32 := Lookup32(name)
	i64, ok64 := Lookup64(name)
	if !ok32 || !ok64 {
		return nil, fmt.Errorf("kernels: implementation %q unavailable", name)
	}
	p32, p64, pn, pd := K32, K64, activeName, activeDetail
	K32, K64 = i32, i64
	activeName, activeDetail = name, "SetActiveForTesting"
	return func() {
		K32, K64 = p32, p64
		activeName, activeDetail = pn, pd
	}, nil
}

//go:build amd64 && !purego

package kernels

// Implemented in cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether the CPU and OS can run the avx2 kernel set:
// AVX2 itself, BMI1+BMI2 (the surrounding Go emit loops lean on
// LZCNT/SHRX-class lowering, both Haswell-and-later like AVX2), and
// OS-enabled XMM+YMM state (OSXSAVE set and XCR0 bits 1|2).
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAVX != osxsaveAVX {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const bmi1AVX2BMI2 = 1<<3 | 1<<5 | 1<<8
	return ebx7&bmi1AVX2BMI2 == bmi1AVX2BMI2
}

//go:build amd64 && !purego

#include "textflag.h"

// AVX2 block min/max/NaN scans.
//
// Semantics contract (must match statsGeneric): the running accumulator is
// replaced only on a strict compare, so NaN inputs never enter it and ties
// (the ±0 pairs) keep the incumbent. VMINPS/VMAXPS implement exactly that
// when the accumulator is the *second* source operand — the result is the
// second source whenever either operand is NaN or the compare ties — so
// every VMINPS/VMAXPS below is written (Plan 9 operand order: src2, src1,
// dst) with the accumulator as src2 and dst. All lanes are seeded with a
// broadcast of blk[0]: a NaN in blk[0] then sticks in every lane, matching
// the generic scan's seed-and-never-replace behavior.
//
// NaN detection is exact (per-lane v unordered v), unlike the generic
// sum-chain; the two are interchangeable for every decision the caller
// makes (see Impl32.Stats).

// func statsF32Asm(p *float32, n int) (mn, mx float32, nan uint32)
// n must be a positive multiple of 16.
TEXT ·statsF32Asm(SB), NOSPLIT, $0-28
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX

	VBROADCASTSS (SI), Y0 // min accumulator, even group
	VMOVAPS      Y0, Y1   // min accumulator, odd group
	VMOVAPS      Y0, Y2   // max accumulator, even group
	VMOVAPS      Y0, Y3   // max accumulator, odd group
	VPXOR        Y4, Y4, Y4 // NaN-seen accumulator

f32loop:
	VMOVUPS (SI), Y5
	VMOVUPS 32(SI), Y6
	VMINPS  Y0, Y5, Y0
	VMINPS  Y1, Y6, Y1
	VMAXPS  Y2, Y5, Y2
	VMAXPS  Y3, Y6, Y3
	VCMPPS  $3, Y5, Y5, Y7 // UNORD_Q: all-ones lanes where NaN
	VPOR    Y7, Y4, Y4
	VCMPPS  $3, Y6, Y6, Y7
	VPOR    Y7, Y4, Y4
	ADDQ    $64, SI
	SUBQ    $16, CX
	JNE     f32loop

	// Horizontal reduce. Accumulator lanes are either all non-NaN or all
	// the seed NaN, and tie direction cannot affect the caller's output
	// (see the package cross-check tests), so reduction order is free.
	VMINPS       Y0, Y1, Y0
	VMAXPS       Y2, Y3, Y2
	VEXTRACTF128 $1, Y0, X5
	VMINPS       X0, X5, X0
	VEXTRACTF128 $1, Y2, X6
	VMAXPS       X2, X6, X2
	VPERMILPS    $0x0E, X0, X5 // lanes 2,3 down to 0,1
	VMINPS       X0, X5, X0
	VPERMILPS    $0x01, X0, X5 // lane 1 down to 0
	VMINPS       X0, X5, X0
	VPERMILPS    $0x0E, X2, X6
	VMAXPS       X2, X6, X2
	VPERMILPS    $0x01, X2, X6
	VMAXPS       X2, X6, X2

	VMOVSS     X0, mn+16(FP)
	VMOVSS     X2, mx+20(FP)
	VMOVMSKPS  Y4, AX
	MOVL       AX, nan+24(FP)
	VZEROUPPER
	RET

// func statsF64Asm(p *float64, n int) (mn, mx float64, nan uint32)
// n must be a positive multiple of 8.
TEXT ·statsF64Asm(SB), NOSPLIT, $0-36
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX

	VBROADCASTSD (SI), Y0
	VMOVAPD      Y0, Y1
	VMOVAPD      Y0, Y2
	VMOVAPD      Y0, Y3
	VPXOR        Y4, Y4, Y4

f64loop:
	VMOVUPD (SI), Y5
	VMOVUPD 32(SI), Y6
	VMINPD  Y0, Y5, Y0
	VMINPD  Y1, Y6, Y1
	VMAXPD  Y2, Y5, Y2
	VMAXPD  Y3, Y6, Y3
	VCMPPD  $3, Y5, Y5, Y7
	VPOR    Y7, Y4, Y4
	VCMPPD  $3, Y6, Y6, Y7
	VPOR    Y7, Y4, Y4
	ADDQ    $64, SI
	SUBQ    $8, CX
	JNE     f64loop

	VMINPD       Y0, Y1, Y0
	VMAXPD       Y2, Y3, Y2
	VEXTRACTF128 $1, Y0, X5
	VMINPD       X0, X5, X0
	VEXTRACTF128 $1, Y2, X6
	VMAXPD       X2, X6, X2
	VPERMILPD    $1, X0, X5 // high lane down
	VMINPD       X0, X5, X0
	VPERMILPD    $1, X2, X6
	VMAXPD       X2, X6, X2

	VMOVSD     X0, mn+16(FP)
	VMOVSD     X2, mx+24(FP)
	VMOVMSKPD  Y4, AX
	MOVL       AX, nan+32(FP)
	VZEROUPPER
	RET

package kernels

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/ieee"
)

// The cross-check suite runs every available vector kernel set against the
// generic reference on adversarial block shapes: ragged tails around every
// vector-group boundary, constant and near-constant blocks, NaN/Inf
// placement, mixed-sign zeros, and every lead-code class.

// statsEquiv reports whether two Stats results are interchangeable for the
// caller. mn/mx must be equal as floats (±0 ties may resolve differently
// between implementations, which provably cannot change μ or the radius) or
// both NaN; noNaN must match exactly unless the block holds an Inf (where
// the constant test fails on the radius regardless of noNaN).
func statsEquiv[T float32 | float64](t *testing.T, blk []T,
	mnG, mxG T, nnG bool, mnV, mxV T, nnV bool) {
	t.Helper()
	sameF := func(a, b T) bool {
		return a == b || (a != a && b != b)
	}
	if !sameF(mnG, mnV) || !sameF(mxG, mxV) {
		t.Fatalf("min/max diverge: generic (%v,%v) vector (%v,%v)", mnG, mxG, mnV, mxV)
	}
	hasInf := false
	for _, v := range blk {
		if math.IsInf(float64(v), 0) {
			hasInf = true
			break
		}
	}
	// A NaN min/max means the radius is NaN and the constant test fails
	// before noNaN is consulted (same for Inf blocks, whose radius is NaN
	// or > bound), so noNaN only has to agree outside those cases. The
	// concrete divergences: the generic sum-chain starts at index 1 and so
	// misses a NaN confined to blk[0] (but that NaN poisons min/max), and
	// ±Inf pairs can turn the sum NaN with no NaN present.
	if !hasInf && mnG == mnG && nnG != nnV {
		t.Fatalf("noNaN diverges on decision-relevant block: generic %v vector %v", nnG, nnV)
	}
	// When ±0 ties resolve differently the sign of mn/mx may differ; pin
	// that it cannot leak into μ the way core computes it.
	muG := float64(mnG)/2 + float64(mxG)/2
	muV := float64(mnV)/2 + float64(mxV)/2
	if !(muG == muV || (muG != muG && muV != muV)) {
		t.Fatalf("μ diverges: %v vs %v", muG, muV)
	}
}

// statsBlocks32 builds the adversarial float32 block set.
func statsBlocks32(rng *rand.Rand) [][]float32 {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	var blocks [][]float32
	// Every length around the 16-lane group boundary plus ragged interior.
	for _, n := range []int{1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 127, 128, 129, 1000, 4095, 4096} {
		blk := make([]float32, n)
		for i := range blk {
			blk[i] = float32(rng.NormFloat64())
		}
		blocks = append(blocks, blk)
	}
	// Constant, all-zero, mixed-zero, NaN/Inf placements.
	constant := make([]float32, 128)
	for i := range constant {
		constant[i] = 3.25
	}
	zeros := make([]float32, 128)
	mixedZeros := make([]float32, 128)
	for i := range mixedZeros {
		if i%3 == 1 {
			mixedZeros[i] = float32(math.Copysign(0, -1))
		}
	}
	posThenZeros := make([]float32, 128)
	for i := range posThenZeros {
		switch {
		case i < 4:
			posThenZeros[i] = 5
		case i%2 == 0:
			posThenZeros[i] = 0
		default:
			posThenZeros[i] = float32(math.Copysign(0, -1))
		}
	}
	blocks = append(blocks, constant, zeros, mixedZeros, posThenZeros)
	for _, pos := range []int{0, 1, 15, 16, 17, 127} {
		nanAt := make([]float32, 128)
		for i := range nanAt {
			nanAt[i] = float32(rng.NormFloat64())
		}
		nanAt[pos] = nan
		infAt := make([]float32, 128)
		copy(infAt, nanAt)
		infAt[pos] = inf
		negInfAt := make([]float32, 128)
		copy(negInfAt, nanAt)
		negInfAt[pos] = -inf
		blocks = append(blocks, nanAt, infAt, negInfAt)
	}
	allNaN := make([]float32, 100)
	for i := range allNaN {
		allNaN[i] = nan
	}
	blocks = append(blocks, allNaN)
	return blocks
}

func statsBlocks64(rng *rand.Rand) [][]float64 {
	blocks32 := statsBlocks32(rng)
	blocks := make([][]float64, len(blocks32))
	for i, b32 := range blocks32 {
		b := make([]float64, len(b32))
		for j, v := range b32 {
			b[j] = float64(v)
		}
		blocks[i] = b
	}
	return blocks
}

func TestStatsCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range Available() {
		if name == "generic" {
			continue
		}
		i32, _ := Lookup32(name)
		i64, _ := Lookup64(name)
		t.Run(name+"/f32", func(t *testing.T) {
			for bi, blk := range statsBlocks32(rng) {
				mnG, mxG, nnG := statsGeneric(blk)
				mnV, mxV, nnV := i32.Stats(blk)
				t.Logf("block %d len %d", bi, len(blk))
				statsEquiv(t, blk, mnG, mxG, nnG, mnV, mxV, nnV)
			}
		})
		t.Run(name+"/f64", func(t *testing.T) {
			for bi, blk := range statsBlocks64(rng) {
				mnG, mxG, nnG := statsGeneric(blk)
				mnV, mxV, nnV := i64.Stats(blk)
				t.Logf("block %d len %d", bi, len(blk))
				statsEquiv(t, blk, mnG, mxG, nnG, mnV, mxV, nnV)
			}
		})
	}
}

// encCase is one encode configuration to cross-check: a (μ, reqLen) pair
// plus guard settings chosen to exercise the fast-accept, fast-fail→exact,
// reject, and sentinel paths.
type encCase struct {
	mu       float64
	reqLen   int
	guarded  bool
	eSafe    float64
	errBound float64
}

// encCases builds the configuration sweep for one block: the lossless class
// plus, when μ is finite, every reqBytes class both unguarded and under
// guards tuned to accept, to fast-fail into the exact check, and to reject.
func encCases(mn, mx float64, fullBits int, reqLens []int) []encCase {
	cases := []encCase{{mu: 0, reqLen: fullBits}}
	mu := mn/2 + mx/2
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return cases
	}
	radius := math.Max(mx-mu, mu-mn)
	if !(radius > 0) || math.IsInf(radius, 0) {
		radius = 1
	}
	for _, rl := range reqLens {
		eb := radius / 64
		cases = append(cases,
			encCase{mu: mu, reqLen: rl}, // unguarded
			encCase{mu: mu, reqLen: rl, guarded: true, eSafe: radius * 4, errBound: radius * 4}, // fast-accept
			encCase{mu: mu, reqLen: rl, guarded: true, eSafe: eb / 1e6, errBound: radius * 4},   // fast-fail, exact accepts
			encCase{mu: mu, reqLen: rl, guarded: true, eSafe: eb, errBound: eb},                 // mixed, may reject
			encCase{mu: mu, reqLen: rl, guarded: true, eSafe: -1, errBound: radius * 4},         // sentinel
		)
	}
	return cases
}

// encDecCrossCheck drives one vector kernel set against the generic
// reference over the adversarial blocks: encode output must match byte for
// byte (same lead array, mid bytes, and accept/reject verdict), and both
// decoders must reconstruct bit-identical values from the shared payload.
func encDecCrossCheck[T ieee.Float, B ieee.Word](t *testing.T, blocks [][]T,
	encV func(lead, mid []byte, blk []T, mu T, reqLen int, guarded bool, eSafe T, errBound float64, scr *Scratch) (int, bool),
	decV func(out []T, lead, mid []byte, mu T, reqLen int) bool,
	reqLens []int) {
	t.Helper()
	es := ieee.Width[T]()
	scrG, scrV := GetScratch(), GetScratch()
	defer PutScratch(scrG)
	defer PutScratch(scrV)
	for bi, blk := range blocks {
		n := len(blk)
		mn, mx, _ := statsGeneric(blk)
		for ci, c := range encCases(float64(mn), float64(mx), ieee.FullBits[T](), reqLens) {
			leadG := make([]byte, (n+3)/4)
			leadV := make([]byte, (n+3)/4)
			midG := make([]byte, es*n+es)
			midV := make([]byte, es*n+es)
			mu := T(c.mu)
			mlG, okG := encodeScanGeneric[T, B](leadG, midG, blk, mu, c.reqLen, c.guarded, T(c.eSafe), c.errBound, scrG)
			mlV, okV := encV(leadV, midV, blk, mu, c.reqLen, c.guarded, T(c.eSafe), c.errBound, scrV)
			if okG != okV {
				t.Fatalf("block %d case %d: verdict diverges: generic %v vector %v", bi, ci, okG, okV)
			}
			if !okG {
				continue
			}
			if mlG != mlV {
				t.Fatalf("block %d case %d: midLen diverges: generic %d vector %d", bi, ci, mlG, mlV)
			}
			if !bytes.Equal(leadG, leadV) {
				t.Fatalf("block %d case %d: lead bytes diverge", bi, ci)
			}
			if !bytes.Equal(midG[:mlG], midV[:mlV]) {
				t.Fatalf("block %d case %d: mid bytes diverge", bi, ci)
			}
			outG := make([]T, n)
			outV := make([]T, n)
			if !decodeScanGeneric[T, B](outG, leadG, midG[:mlG], mu, c.reqLen) {
				t.Fatalf("block %d case %d: generic decode rejected its own payload", bi, ci)
			}
			if !decV(outV, leadV, midV[:mlV], mu, c.reqLen) {
				t.Fatalf("block %d case %d: vector decode rejected the payload", bi, ci)
			}
			for i := range outG {
				if ieee.ToBits[B](outG[i]) != ieee.ToBits[B](outV[i]) {
					t.Fatalf("block %d case %d value %d: decode diverges: %v vs %v", bi, ci, i, outG[i], outV[i])
				}
			}
		}
	}
}

func TestEncodeDecodeCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range Available() {
		if name == "generic" {
			continue
		}
		i32, _ := Lookup32(name)
		i64, _ := Lookup64(name)
		t.Run(name+"/f32", func(t *testing.T) {
			encDecCrossCheck[float32, uint32](t, statsBlocks32(rng), i32.EncodeScan, i32.DecodeScan,
				[]int{10, 16, 20, 24, 28})
		})
		t.Run(name+"/f64", func(t *testing.T) {
			encDecCrossCheck[float64, uint64](t, statsBlocks64(rng), i64.EncodeScan, i64.DecodeScan,
				[]int{10, 16, 24, 33, 40, 52, 60})
		})
	}
}

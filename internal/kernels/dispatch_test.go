package kernels

import (
	"strings"
	"testing"
)

// TestSelectImpl exercises the env-override resolution against whatever this
// host actually supports: "generic" always forces generic, "" / "auto" pick
// the best available set, unknown values fall back to generic with the value
// recorded in the detail string.
func TestSelectImpl(t *testing.T) {
	defer selectImpl("") // restore the real dispatch for other tests

	_, _, bestName, vectorOK := archBest()

	selectImpl("generic")
	if Active() != "generic" || !strings.Contains(Detail(), EnvVar+"=generic") {
		t.Fatalf("SZX_KERNELS=generic: got %s", Detail())
	}

	for _, env := range []string{"", "auto"} {
		selectImpl(env)
		want := "generic"
		if vectorOK {
			want = bestName
		}
		if Active() != want {
			t.Fatalf("SZX_KERNELS=%q: active %s, want %s", env, Active(), want)
		}
	}

	selectImpl("bogus")
	if Active() != "generic" || !strings.Contains(Detail(), "bogus") {
		t.Fatalf("SZX_KERNELS=bogus: got %s", Detail())
	}

	selectImpl("avx2")
	if vectorOK && bestName == "avx2" {
		if Active() != "avx2" {
			t.Fatalf("SZX_KERNELS=avx2 on avx2 host: got %s", Detail())
		}
	} else if Active() != "generic" {
		t.Fatalf("SZX_KERNELS=avx2 without avx2: got %s", Detail())
	}
}

func TestLookupAndAvailable(t *testing.T) {
	names := Available()
	if len(names) == 0 || names[0] != "generic" {
		t.Fatalf("Available() = %v, want generic first", names)
	}
	for _, name := range names {
		i32, ok := Lookup32(name)
		if !ok || i32.Stats == nil || i32.EncodeScan == nil || i32.DecodeScan == nil {
			t.Fatalf("Lookup32(%q): incomplete set (ok=%v)", name, ok)
		}
		i64, ok := Lookup64(name)
		if !ok || i64.Stats == nil || i64.EncodeScan == nil || i64.DecodeScan == nil {
			t.Fatalf("Lookup64(%q): incomplete set (ok=%v)", name, ok)
		}
	}
	if _, ok := Lookup32("nope"); ok {
		t.Fatal("Lookup32(nope) succeeded")
	}
	if _, ok := Lookup64("nope"); ok {
		t.Fatal("Lookup64(nope) succeeded")
	}
}

func TestSetActiveForTesting(t *testing.T) {
	before := Active()
	restore, err := SetActiveForTesting("generic")
	if err != nil {
		t.Fatal(err)
	}
	if Active() != "generic" {
		t.Fatalf("active %s after swap", Active())
	}
	restore()
	if Active() != before {
		t.Fatalf("active %s after restore, want %s", Active(), before)
	}
	if _, err := SetActiveForTesting("nope"); err == nil {
		t.Fatal("SetActiveForTesting(nope) succeeded")
	}
}

package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/datagen"
)

// paperRELs are the three value-range-based bounds of Tables 3-7.
var paperRELs = []float64{1e-2, 1e-3, 1e-4}

func (c Config) rels() []float64 {
	if c.Quick {
		return []float64{1e-3}
	}
	return paperRELs
}

// Table3 reproduces the compression-ratio table: min/overall/max CR per
// application for SZx, ZFP, SZ, and the lossless stand-in.
func Table3(cfg Config) (Report, error) {
	apps := cfg.apps()
	if cfg.Quick {
		for i := range apps {
			apps[i] = cfg.sampleFields(apps[i], 2)
		}
	}
	codecs := []codec{szxCodec(1), zfpCodec(), szCodec(), zstdLikeCodec()}

	rep := Report{
		ID:     "Table 3",
		Title:  "Compression ratios (min / overall / max per application)",
		Header: []string{"codec", "rel"},
	}
	for _, app := range apps {
		rep.Header = append(rep.Header, app.Short)
	}
	for _, c := range codecs {
		rels := cfg.rels()
		if c.name == "zstd*" {
			rels = rels[:1] // lossless: bound-independent, one row
		}
		for _, rel := range rels {
			row := []string{c.name, fmt.Sprintf("%.0e", rel)}
			if c.name == "zstd*" {
				row[1] = "-"
			}
			for _, app := range apps {
				mn, overall, mx, err := crStats(app, rel, c)
				if err != nil {
					return Report{}, err
				}
				row = append(row, fmt.Sprintf("%s/%s/%s", f1(mn), f1(overall), f1(mx)))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: SZx overall 3-12 (up to 124 per field); ZFP 0.5-3x higher; SZ 3-30x higher; zstd 1.1-1.5")
	return rep, nil
}

// throughputRow measures one codec's aggregate throughput over an app's
// fields (MB/s), compressing (dir=true) or decompressing.
func (cfg Config) throughput(app datagen.App, rel float64, c codec, decompress bool) (float64, error) {
	var totalBytes float64
	var totalSec float64
	for _, f := range app.Fields {
		abs := relToAbs(f.Data, rel)
		comp, err := c.compress(f.Data, f.Dims, abs)
		if err != nil {
			return 0, err
		}
		if decompress {
			if _, err := c.decompress(comp, len(f.Data)); err != nil {
				return 0, err
			}
			sec := cfg.measure(func() {
				_, derr := c.decompress(comp, len(f.Data))
				if derr != nil {
					err = derr
				}
			})
			if err != nil {
				return 0, err
			}
			totalSec += sec
		} else {
			sec := cfg.measure(func() {
				_, cerr := c.compress(f.Data, f.Dims, abs)
				if cerr != nil {
					err = cerr
				}
			})
			if err != nil {
				return 0, err
			}
			totalSec += sec
		}
		totalBytes += float64(4 * len(f.Data))
	}
	return totalBytes / totalSec / 1e6, nil
}

func speedTable(cfg Config, id, title string, decompress bool, codecs []codec) (Report, error) {
	apps := cfg.apps()
	if cfg.Quick {
		for i := range apps {
			apps[i] = cfg.sampleFields(apps[i], 1)
		}
		apps = apps[:2]
	}
	rep := Report{ID: id, Title: title, Header: []string{"codec", "rel"}}
	for _, app := range apps {
		rep.Header = append(rep.Header, app.Short)
	}
	for _, c := range codecs {
		for _, rel := range cfg.rels() {
			row := []string{c.name, fmt.Sprintf("%.0e", rel)}
			for _, app := range apps {
				mbps, err := cfg.throughput(app, rel, c, decompress)
				if err != nil {
					return Report{}, err
				}
				row = append(row, fmt.Sprintf("%.0f", mbps))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// Table4 reproduces single-core compression throughput (MB/s).
func Table4(cfg Config) (Report, error) {
	rep, err := speedTable(cfg, "Table 4", "Compression throughput on single core (MB/s)",
		false, []codec{szxCodec(1), zfpCodec(), szCodec()})
	if err != nil {
		return rep, err
	}
	rep.Notes = append(rep.Notes,
		"paper: SZx 2.5-5x faster than ZFP, 5-7x faster than SZ in compression")
	return rep, nil
}

// Table5 reproduces single-core decompression throughput (MB/s).
func Table5(cfg Config) (Report, error) {
	rep, err := speedTable(cfg, "Table 5", "Decompression throughput on single core (MB/s)",
		true, []codec{szxCodec(1), zfpCodec(), szCodec()})
	if err != nil {
		return rep, err
	}
	rep.Notes = append(rep.Notes,
		"paper: SZx 2-4x as fast as both SZ and ZFP in decompression")
	return rep, nil
}

// chunked wraps a serial codec with data-parallel chunking over the slowest
// dimension, the stand-in for the baselines' OpenMP builds (omp-SZ /
// omp-ZFP): independent subvolumes are compressed concurrently.
func chunked(base codec, workers int, supports2D bool) codec {
	return codec{
		name: "omp-" + base.name,
		compress: func(data []float32, dims []int, abs float64) ([]byte, error) {
			if !supports2D && len(dims) < 3 {
				return nil, errUnsupported
			}
			w := core.Workers(workers)
			slabs := splitSlabs(data, dims, w)
			outs := make([][]byte, len(slabs))
			errs := make([]error, len(slabs))
			var wg sync.WaitGroup
			for i, s := range slabs {
				wg.Add(1)
				go func(i int, s slab) {
					defer wg.Done()
					outs[i], errs[i] = base.compress(s.data, s.dims, abs)
				}(i, s)
			}
			wg.Wait()
			var total []byte
			for i := range outs {
				if errs[i] != nil {
					return nil, errs[i]
				}
				total = append(total, outs[i]...)
			}
			return total, nil
		},
		decompress: nil, // wired per use; omp-ZFP has none (paper: n/a)
	}
}

var errUnsupported = fmt.Errorf("experiments: configuration unsupported (n/a in the paper)")

type slab struct {
	data []float32
	dims []int
}

// splitSlabs cuts data into ~parts contiguous slabs along dims[0].
func splitSlabs(data []float32, dims []int, parts int) []slab {
	d0 := dims[0]
	if parts > d0 {
		parts = d0
	}
	inner := 1
	for _, d := range dims[1:] {
		inner *= d
	}
	var out []slab
	for p := 0; p < parts; p++ {
		lo := p * d0 / parts
		hi := (p + 1) * d0 / parts
		if hi == lo {
			continue
		}
		nd := append([]int{hi - lo}, dims[1:]...)
		out = append(out, slab{data: data[lo*inner : hi*inner], dims: nd})
	}
	return out
}

// Table6 reproduces multicore compression throughput (GB/s): goroutine
// block-parallel SZx against slab-parallel SZ and ZFP. As in the paper,
// omp-SZ does not handle the 2-D CESM dataset (n/a).
func Table6(cfg Config) (Report, error) {
	apps := cfg.apps()
	if cfg.Quick {
		for i := range apps {
			apps[i] = cfg.sampleFields(apps[i], 1)
		}
		apps = apps[:3]
	}
	w := core.Workers(cfg.Workers)
	type entry struct {
		name     string
		compress func(data []float32, dims []int, abs float64) ([]byte, error)
	}
	entries := []entry{
		{"omp-SZx", szxCodec(w).compress},
		{"omp-ZFP", chunked(zfpCodec(), w, true).compress},
		{"omp-SZ", chunked(szCodec(), w, false).compress},
	}
	rep := Report{
		ID:     "Table 6",
		Title:  fmt.Sprintf("Compression throughput on multicore CPU (GB/s, %d workers)", w),
		Header: []string{"codec", "rel"},
	}
	for _, app := range apps {
		rep.Header = append(rep.Header, app.Short)
	}
	for _, e := range entries {
		for _, rel := range cfg.rels() {
			row := []string{e.name, fmt.Sprintf("%.0e", rel)}
			for _, app := range apps {
				var totalBytes, totalSec float64
				na := false
				for _, f := range app.Fields {
					abs := relToAbs(f.Data, rel)
					if _, err := e.compress(f.Data, f.Dims, abs); err == errUnsupported {
						na = true
						break
					} else if err != nil {
						return Report{}, err
					}
					var err error
					sec := cfg.measure(func() {
						_, cerr := e.compress(f.Data, f.Dims, abs)
						if cerr != nil {
							err = cerr
						}
					})
					if err != nil {
						return Report{}, err
					}
					totalSec += sec
					totalBytes += float64(4 * len(f.Data))
				}
				if na {
					row = append(row, "n/a")
				} else {
					row = append(row, f2(totalBytes/totalSec/1e9))
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: omp-SZx 3.4-6.8x over omp-ZFP and 2.4-4.8x over omp-SZ; omp-SZ lacks 2-D (CESM n/a)",
		"on a single-CPU host the goroutine pool cannot show wall-clock scaling; the per-codec ordering and the block-parallel design (verified bit-identical to serial) are the reproduced properties")
	return rep, nil
}

// Table7 reproduces multicore decompression throughput (GB/s). As in the
// paper, ZFP has no multithreaded decompressor (all n/a), so the comparison
// is SZx vs slab-parallel SZ.
func Table7(cfg Config) (Report, error) {
	apps := cfg.apps()
	if cfg.Quick {
		for i := range apps {
			apps[i] = cfg.sampleFields(apps[i], 1)
		}
		apps = apps[:3]
	}
	w := core.Workers(cfg.Workers)

	rep := Report{
		ID:     "Table 7",
		Title:  fmt.Sprintf("Decompression throughput on multicore CPU (GB/s, %d workers)", w),
		Header: []string{"codec", "rel"},
	}
	for _, app := range apps {
		rep.Header = append(rep.Header, app.Short)
	}

	for _, rel := range cfg.rels() {
		row := []string{"omp-SZx", fmt.Sprintf("%.0e", rel)}
		for _, app := range apps {
			var totalBytes, totalSec float64
			for _, f := range app.Fields {
				abs := relToAbs(f.Data, rel)
				comp, err := core.CompressFloat32(f.Data, abs, core.Options{})
				if err != nil {
					return Report{}, err
				}
				sec := cfg.measure(func() {
					_, derr := core.DecompressFloat32Parallel(comp, w)
					if derr != nil {
						err = derr
					}
				})
				if err != nil {
					return Report{}, err
				}
				totalSec += sec
				totalBytes += float64(4 * len(f.Data))
			}
			row = append(row, f2(totalBytes/totalSec/1e9))
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, rel := range cfg.rels() {
		row := []string{"omp-ZFP", fmt.Sprintf("%.0e", rel)}
		for range apps {
			row = append(row, "n/a")
		}
		rep.Rows = append(rep.Rows, row)
	}
	// Slab-parallel SZ decompression (3-D apps only).
	zc := szCodec()
	for _, rel := range cfg.rels() {
		row := []string{"omp-SZ", fmt.Sprintf("%.0e", rel)}
		for _, app := range apps {
			if len(app.Fields[0].Dims) < 3 {
				row = append(row, "n/a")
				continue
			}
			var totalBytes, totalSec float64
			for _, f := range app.Fields {
				abs := relToAbs(f.Data, rel)
				slabs := splitSlabs(f.Data, f.Dims, w)
				comps := make([][]byte, len(slabs))
				for i, s := range slabs {
					c, err := zc.compress(s.data, s.dims, abs)
					if err != nil {
						return Report{}, err
					}
					comps[i] = c
				}
				var err error
				sec := cfg.measure(func() {
					var wg sync.WaitGroup
					for i := range comps {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							if _, derr := zc.decompress(comps[i], len(slabs[i].data)); derr != nil {
								err = derr
							}
						}(i)
					}
					wg.Wait()
				})
				if err != nil {
					return Report{}, err
				}
				totalSec += sec
				totalBytes += float64(4 * len(f.Data))
			}
			row = append(row, f2(totalBytes/totalSec/1e9))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper: omp-SZx 2.3-4.6x over omp-SZ; ZFP has no multithread decompressor (n/a)",
		"on a single-CPU host the zsize-enabled parallel decode cannot show wall-clock scaling; see Table 6's note")
	return rep, nil
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

// Fig2 reproduces the block relative-value-range CDF characterization
// (Fig. 2): for four datasets and block sizes 8-128, the fraction of blocks
// whose relative range is below each threshold. The paper's headline
// observation — Miranda and QMCPack have 80+% of size-8 blocks under 0.01 —
// translates here into those two datasets dominating the small-threshold
// columns.
func Fig2(cfg Config) (Report, error) {
	mi := datagen.Miranda(cfg.scale(), cfg.seed())
	ny := datagen.Nyx(cfg.scale(), cfg.seed())
	qm := datagen.QMCPack(cfg.scale(), cfg.seed())
	hu := datagen.Hurricane(cfg.scale(), cfg.seed())
	panels := []struct {
		label string
		data  []float32
	}{
		{"Miranda(pressure)", mi.Fields[2].Data},
		{"Nyx(temperature)", ny.Fields[2].Data},
		{"QMCPack(einspline)", qm.Fields[0].Data},
		{"Hurricane(U)", hu.Fields[2].Data},
	}
	thresholds := []float64{0.001, 0.01, 0.05, 0.1, 0.2}
	blockSizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		blockSizes = []int{8, 128}
	}

	rep := Report{
		ID:     "Fig. 2",
		Title:  "CDF of block relative value range",
		Header: []string{"dataset", "blocksize", "≤0.001", "≤0.01", "≤0.05", "≤0.1", "≤0.2"},
	}
	for _, p := range panels {
		for _, bs := range blockSizes {
			cdf := metrics.BlockRangeCDF(p.data, bs, thresholds)
			row := []string{p.label, fmt.Sprintf("%d", bs)}
			for _, v := range cdf {
				row = append(row, f3(v))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: smaller blocks are smoother; Miranda/QMCPack smoothest, Nyx/Hurricane heaviest-tailed")
	return rep, nil
}

// Fig6 reproduces the space-overhead characterization of the byte-aligning
// right shift (Fig. 6): min/2nd-min/mean/2nd-max/max overhead across each
// application's fields, per block size and error bound. The paper reports
// overhead always below ~12% with means around or below 5%.
func Fig6(cfg Config) (Report, error) {
	apps := []datagen.App{
		cfg.sampleFields(datagen.Hurricane(cfg.scale(), cfg.seed()), 3),
		cfg.sampleFields(datagen.Miranda(cfg.scale(), cfg.seed()), 3),
	}
	rels := []float64{1e-3, 1e-4, 1e-5}
	blockSizes := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		rels = []float64{1e-4}
		blockSizes = []int{8, 128}
	}

	rep := Report{
		ID:     "Fig. 6",
		Title:  "Space overhead of bitwise right shifting (Solution C vs B)",
		Header: []string{"dataset", "rel", "blocksize", "min", "2nd-min", "mean", "2nd-max", "max"},
	}
	for _, app := range apps {
		for _, rel := range rels {
			for _, bs := range blockSizes {
				var ovs []float64
				for _, f := range app.Fields {
					abs := relToAbs(f.Data, rel)
					r, err := core.CharacterizeShiftOverhead32(f.Data, abs, bs)
					if err != nil {
						return Report{}, err
					}
					ovs = append(ovs, r.Overhead())
				}
				mn, mn2, mean, mx2, mx := orderStats(ovs)
				rep.Rows = append(rep.Rows, []string{
					app.Name, fmt.Sprintf("%.0e", rel), fmt.Sprintf("%d", bs),
					pct(mn), pct(mn2), pct(mean), pct(mx2), pct(mx),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: overhead < 12% for all fields, mean around or below 5% (Formula 6)")
	return rep, nil
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func orderStats(v []float64) (mn, mn2, mean, mx2, mx float64) {
	if len(v) == 0 {
		return
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort, tiny inputs
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	var sum float64
	for _, x := range s {
		sum += x
	}
	mn, mx = s[0], s[len(s)-1]
	mn2, mx2 = mn, mx
	if len(s) > 1 {
		mn2, mx2 = s[1], s[len(s)-2]
	}
	return mn, mn2, sum / float64(len(s)), mx2, mx
}

// Fig8 reproduces the block-size exploration (Fig. 8): compression ratio
// and PSNR for the seven Miranda fields across block sizes, at REL 1e-3 and
// 1e-4. The paper's findings: CR grows with block size and converges around
// 128, while PSNR stays level.
func Fig8(cfg Config) (Report, error) {
	mi := cfg.sampleFields(datagen.Miranda(cfg.scale(), cfg.seed()), 3)
	blockSizes := []int{8, 16, 32, 64, 128, 224}
	rels := []float64{1e-3, 1e-4}
	if cfg.Quick {
		blockSizes = []int{8, 128}
		rels = []float64{1e-3}
	}

	rep := Report{
		ID:     "Fig. 8",
		Title:  "Miranda compression ratio and PSNR vs block size",
		Header: []string{"field", "rel", "blocksize", "CR", "PSNR(dB)"},
	}
	for _, f := range mi.Fields {
		for _, rel := range rels {
			abs := relToAbs(f.Data, rel)
			for _, bs := range blockSizes {
				comp, st, err := core.CompressFloat32Stats(f.Data, abs, core.Options{BlockSize: bs})
				if err != nil {
					return Report{}, err
				}
				dec, err := core.DecompressFloat32(comp)
				if err != nil {
					return Report{}, err
				}
				d, err := metrics.Measure(f.Data, dec)
				if err != nil {
					return Report{}, err
				}
				rep.Rows = append(rep.Rows, []string{
					f.Name, fmt.Sprintf("%.0e", rel), fmt.Sprintf("%d", bs),
					f2(st.Ratio()), f1(d.PSNR),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: CR increases with block size and converges by 128; PSNR level across block sizes (impact factor B dominates)")
	return rep, nil
}

// Fig12 reproduces the visual-quality study (Fig. 12): PSNR, SSIM, and CR
// on the Hurricane cloud field at three value-range error bounds.
func Fig12(cfg Config) (Report, error) {
	hu := datagen.Hurricane(cfg.scale(), cfg.seed())
	field := hu.Fields[0] // CLOUDf48
	rels := []float64{1e-3, 4e-3, 1e-2}

	rep := Report{
		ID:     "Fig. 12",
		Title:  "Visual quality on Hurricane cloud field (PSNR/SSIM/CR)",
		Header: []string{"rel bound", "CR", "PSNR(dB)", "SSIM"},
	}
	for _, rel := range rels {
		abs := relToAbs(field.Data, rel)
		comp, st, err := core.CompressFloat32Stats(field.Data, abs, core.Options{})
		if err != nil {
			return Report{}, err
		}
		dec, err := core.DecompressFloat32(comp)
		if err != nil {
			return Report{}, err
		}
		d, err := metrics.Measure(field.Data, dec)
		if err != nil {
			return Report{}, err
		}
		slice, h, w := datagen.Slice2D(field)
		off := sliceOffset(field, slice)
		ssim, err := metrics.SSIM(slice, dec[off:off+h*w], h, w)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0e", rel), f2(st.Ratio()), f1(d.PSNR), f3(ssim),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: e=1e-3 -> PSNR 74.4/SSIM 0.93/CR 14.6; quality degrades gracefully toward 1e-2")
	return rep, nil
}

// sliceOffset finds where the 2-D slice starts within the field data.
func sliceOffset(f datagen.Field, slice []float32) int {
	if len(f.Dims) <= 2 {
		return 0
	}
	h := f.Dims[len(f.Dims)-2]
	w := f.Dims[len(f.Dims)-1]
	mid := (len(f.Data) / (h * w)) / 2
	return mid * h * w
}

// Fig13 reproduces the compression-error distribution study (Fig. 13):
// per-field error histograms at absolute bounds 1e-4 and 1e-6, verifying
// that no error exceeds the bound.
func Fig13(cfg Config) (Report, error) {
	apps := cfg.apps()
	fields := []struct {
		app, field string
		data       []float32
	}{
		{"CESM", "CLDHGH", apps[0].Fields[0].Data},
		{"CESM", "PHIS", apps[0].Fields[2].Data},
		{"Hurricane", "CLOUD", apps[1].Fields[0].Data},
		{"Hurricane", "QSNOW", apps[1].Fields[1].Data},
		{"Miranda", "pressure", apps[2].Fields[2].Data},
		{"Miranda", "density", apps[2].Fields[0].Data},
		{"Nyx", "baryon-density", apps[3].Fields[0].Data},
		{"QMCPack", "einspline", apps[4].Fields[0].Data},
		{"Scale-LetKF", "V", apps[5].Fields[1].Data},
	}
	bounds := []float64{1e-4, 1e-6}
	if cfg.Quick {
		fields = fields[:3]
		bounds = bounds[:1]
	}

	rep := Report{
		ID:     "Fig. 13",
		Title:  "Distribution of compression errors (absolute bounds)",
		Header: []string{"field", "bound", "max|err|", "mean|err|", "exceed", "peak-bin frac"},
	}
	for _, fd := range fields {
		for _, e := range bounds {
			comp, err := core.CompressFloat32(fd.data, e, core.Options{})
			if err != nil {
				return Report{}, err
			}
			dec, err := core.DecompressFloat32(comp)
			if err != nil {
				return Report{}, err
			}
			d, err := metrics.Measure(fd.data, dec)
			if err != nil {
				return Report{}, err
			}
			h, err := metrics.ErrorHistogram(fd.data, dec, e, 20)
			if err != nil {
				return Report{}, err
			}
			peak := 0.0
			for _, p := range h.PDF() {
				if p > peak {
					peak = p
				}
			}
			rep.Rows = append(rep.Rows, []string{
				fd.app + "(" + fd.field + ")", fmt.Sprintf("%.0e", e),
				fmt.Sprintf("%.2e", d.MaxErr), fmt.Sprintf("%.2e", d.MeanErr),
				fmt.Sprintf("%d", h.Exceed), f3(peak),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: errors always within the user-specified bound (exceed must be 0 in every row)")
	return rep, nil
}

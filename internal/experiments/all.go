package experiments

// All runs every experiment driver in paper order and returns the reports.
// With cfg.Quick it is fast enough for CI; at full scale it regenerates the
// data behind EXPERIMENTS.md.
func All(cfg Config) ([]Report, error) {
	return Run(cfg, nil)
}

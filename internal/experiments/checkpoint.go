package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/pfs"
)

// Checkpoint evaluates compression for checkpoint/restart fault tolerance,
// the use case of the paper's reference [16] (Ibtesham et al.) and the
// practical consumer of the §8 ratio-vs-speed trade-off: per codec, the
// per-checkpoint cost (measured compression + modeled concurrent write),
// the Young optimal checkpoint interval, and the resulting expected
// runtime overhead, against the uncompressed baseline.
func Checkpoint(cfg Config) (Report, error) {
	mi := datagen.Miranda(cfg.scale(), cfg.seed())
	perRank := gpuSample(mi, 1<<22)
	if cfg.Quick {
		perRank = perRank[:1<<15]
	}
	params := pfs.CheckpointParams{Ranks: 512, MTBFSeconds: 4 * 3600}
	// A busy shared file system: checkpoints contend with everyone else's
	// I/O, so the per-rank share is far below ThetaFS's dedicated peak.
	// This is the regime where Ibtesham et al.'s question has bite.
	fs := pfs.FileSystem{Name: "shared-lustre-busy", AggregateGBps: 100, PerRankGBps: 1.5, LatencySec: 0.005}
	rel := 1e-3
	abs := relToAbs(perRank, rel)

	rep := Report{
		ID:    "Checkpoint",
		Title: fmt.Sprintf("Checkpoint/restart viability (%d ranks, MTBF %.0fh, REL %.0e)", params.Ranks, params.MTBFSeconds/3600, rel),
		Header: []string{"codec", "CR", "compress s", "write s", "cost C s",
			"opt interval s", "overhead %"},
	}

	raw, err := pfs.EvaluateCheckpoint(fs, params, perRank, nil)
	if err != nil {
		return Report{}, err
	}
	results := []pfs.CheckpointResult{raw}
	for _, c := range []codec{szxCodec(1), szCodec(), zfpCodec()} {
		pc := pfsCodec(c, abs, len(perRank))
		r, err := pfs.EvaluateCheckpoint(fs, params, perRank, &pc)
		if err != nil {
			return Report{}, err
		}
		results = append(results, r)
	}
	for _, r := range results {
		rep.Rows = append(rep.Rows, []string{
			r.Codec, f1(r.Ratio), f3(r.CompressSec), f3(r.WriteSec), f3(r.CostSec),
			f1(r.IntervalSec), fmt.Sprintf("%.2f%%", 100*r.OverheadFrac),
		})
	}
	rep.Notes = append(rep.Notes,
		"per Ibtesham et al. [16]: compression pays off when codec cost stays below the write savings; an ultrafast compressor widens that regime",
		"overhead = C/tau + tau/(2*MTBF) at the Young optimal interval tau = sqrt(2*C*MTBF)")
	return rep, nil
}

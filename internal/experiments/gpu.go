package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cusim"
	"repro/internal/cuszx"
	"repro/internal/datagen"
)

// GPU-model calibration. The cuSZx kernels execute on the cusim simulator,
// which counts their real operations and traffic; cuSZ and cuZFP have no
// kernel implementation here (the paper used the authors' CUDA codes), so
// their device work is derived from the measured CPU cost of our SZ/ZFP
// implementations. The per-codec efficiency factors below are calibrated
// ONCE against the absolute scale of the paper's Fig. 14/15 and then held
// fixed; the relative ordering across codecs, datasets, bounds, and devices
// emerges from counted/measured work, not from these constants.
const (
	hostClockGHz = 3.5 // effective cycles/second attributed to CPU codecs

	effSZx      = 0.70 // cuSZx achieved fraction of the modeled roofline
	effCuSZ     = 0.10 // cuSZ: dual-quantization + GPU Huffman encode
	effCuSZDec  = 0.06 // cuSZ decode: Huffman decoding is GPU-hostile (§7.2)
	effCuZFP    = 0.25 // cuZFP: regular transform; constant absorbs our slow host bit-coder
	effCuZFPDec = 0.20
)

// gpuSample builds a per-app measurement buffer (a concatenation of fields,
// capped so simulated-kernel runs stay fast).
func gpuSample(app datagen.App, maxN int) []float32 {
	var out []float32
	for _, f := range app.Fields {
		need := maxN - len(out)
		if need <= 0 {
			break
		}
		if need > len(f.Data) {
			need = len(f.Data)
		}
		out = append(out, f.Data[:need]...)
	}
	return out
}

// modelFromCPU converts a measured CPU time into a simulated device time:
// the CPU work in cycles is spread across the device's cores at the given
// efficiency, floored by the memory roofline.
func modelFromCPU(dev cusim.Device, cpuSec float64, bytes int, eff float64) float64 {
	cycles := cpuSec * hostClockGHz * 1e9
	compute := cycles / (float64(dev.SMs*dev.CoresPerSM) * dev.ClockGHz * 1e9 * eff)
	mem := float64(bytes) * 2 / (dev.MemBWGBps * 1e9) // read + write
	t := compute
	if mem > t {
		t = mem
	}
	return t + 1e-6 // launch overhead, for parity with cusim's Model
}

func gpuFigure(cfg Config, id string, dev cusim.Device, decompress bool) (Report, error) {
	apps := cfg.apps()
	maxN := 1 << 21
	if cfg.Quick {
		maxN = 1 << 16
		apps = apps[:3]
	}
	rel := 1e-3
	szC, zfC := szCodec(), zfpCodec()

	verb := "compression"
	if decompress {
		verb = "decompression"
	}
	rep := Report{
		ID:     id,
		Title:  fmt.Sprintf("Simulated overall %s throughput per GPU, %s (GB/s)", verb, dev.Name),
		Header: []string{"app", "cuSZx", "cuSZ", "cuZFP"},
	}
	for _, app := range apps {
		data := gpuSample(app, maxN)
		abs := relToAbs(data, rel)
		bytes := 4 * len(data)

		// cuSZx: true simulated kernels with counted work.
		var m cusim.Metrics
		var err error
		if decompress {
			comp, _, cerr := cuszx.Compress(data, abs, core.Options{}, cuszx.DefaultGridDim)
			if cerr != nil {
				return Report{}, cerr
			}
			_, m, err = cuszx.Decompress(comp, cuszx.DefaultGridDim)
		} else {
			_, m, err = cuszx.Compress(data, abs, core.Options{}, cuszx.DefaultGridDim)
		}
		if err != nil {
			return Report{}, err
		}
		szxSec := dev.Model(m) / effSZx

		// cuSZ / cuZFP: device work derived from measured CPU cost.
		dims := []int{len(data)}
		szComp, err := szC.compress(data, dims, abs)
		if err != nil {
			return Report{}, err
		}
		zfComp, err := zfC.compress(data, dims, abs)
		if err != nil {
			return Report{}, err
		}
		var szSec, zfSec float64
		if decompress {
			cpuSZ := cfg.measure(func() { _, _ = szC.decompress(szComp, len(data)) })
			cpuZF := cfg.measure(func() { _, _ = zfC.decompress(zfComp, len(data)) })
			szSec = modelFromCPU(dev, cpuSZ, bytes, effCuSZDec)
			zfSec = modelFromCPU(dev, cpuZF, bytes, effCuZFPDec)
		} else {
			cpuSZ := cfg.measure(func() { _, _ = szC.compress(data, dims, abs) })
			cpuZF := cfg.measure(func() { _, _ = zfC.compress(data, dims, abs) })
			szSec = modelFromCPU(dev, cpuSZ, bytes, effCuSZ)
			zfSec = modelFromCPU(dev, cpuZF, bytes, effCuZFP)
		}

		gb := func(sec float64) string { return f1(float64(bytes) / sec / 1e9) }
		rep.Rows = append(rep.Rows, []string{app.Short, gb(szxSec), gb(szSec), gb(zfSec)})
	}
	rep.Notes = append(rep.Notes,
		"paper: cuSZx 150-216 GB/s compression / 150-291 GB/s decompression on A100, 2-16x over cuSZ/cuZFP",
		"cuSZx rows: simulated kernels (counted ops/traffic); cuSZ/cuZFP rows: roofline model from measured CPU work (see DESIGN.md)")
	return rep, nil
}

// Fig14 reproduces the GPU compression-throughput comparison on both
// modeled devices (panels a and b are separate reports).
func Fig14(cfg Config) (Report, Report, error) {
	a, err := gpuFigure(cfg, "Fig. 14a", cusim.A100, false)
	if err != nil {
		return Report{}, Report{}, err
	}
	b, err := gpuFigure(cfg, "Fig. 14b", cusim.V100, false)
	return a, b, err
}

// Fig15 reproduces the GPU decompression-throughput comparison.
func Fig15(cfg Config) (Report, Report, error) {
	a, err := gpuFigure(cfg, "Fig. 15a", cusim.A100, true)
	if err != nil {
		return Report{}, Report{}, err
	}
	b, err := gpuFigure(cfg, "Fig. 15b", cusim.V100, true)
	return a, b, err
}

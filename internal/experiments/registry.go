package experiments

import "strings"

// Driver is one runnable evaluation artifact (a figure or table); drivers
// that produce multiple panels return multiple reports.
type Driver struct {
	// ID is the artifact identifier ("Table 3", "Fig. 14", ...).
	ID string
	// Run regenerates the artifact.
	Run func(Config) ([]Report, error)
}

func single(f func(Config) (Report, error)) func(Config) ([]Report, error) {
	return func(cfg Config) ([]Report, error) {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return []Report{r}, nil
	}
}

func double(f func(Config) (Report, Report, error)) func(Config) ([]Report, error) {
	return func(cfg Config) ([]Report, error) {
		a, b, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return []Report{a, b}, nil
	}
}

// Drivers lists every artifact in paper order.
func Drivers() []Driver {
	return []Driver{
		{"Fig. 2", single(Fig2)},
		{"Fig. 6", single(Fig6)},
		{"Fig. 8", single(Fig8)},
		{"Fig. 12", single(Fig12)},
		{"Fig. 13", single(Fig13)},
		{"Table 3", single(Table3)},
		{"Table 4", single(Table4)},
		{"Table 5", single(Table5)},
		{"Table 6", single(Table6)},
		{"Table 7", single(Table7)},
		{"Fig. 14", double(Fig14)},
		{"Fig. 15", double(Fig15)},
		{"Fig. 16", single(Fig16)},
		{"Trade-off", single(TradeOff)},
		{"Checkpoint", single(Checkpoint)},
		{"Ablation B", single(BlockSizeSpeed)},
	}
}

// Run executes the drivers whose IDs match any of the given prefixes
// (all drivers when prefixes is empty) and returns the reports in order.
func Run(cfg Config, prefixes []string) ([]Report, error) {
	keep := func(id string) bool {
		if len(prefixes) == 0 {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(id, strings.TrimSpace(p)) {
				return true
			}
		}
		return false
	}
	var reports []Report
	for _, d := range Drivers() {
		if !keep(d.ID) {
			continue
		}
		rs, err := d.Run(cfg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rs...)
	}
	return reports, nil
}

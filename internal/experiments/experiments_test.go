package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quickCfg = Config{Scale: 16, Seed: 7, Quick: true, Workers: 4}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	rep, err := Fig2(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4*2 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// CDF rows must be monotone non-decreasing across thresholds and end ~1.
	for _, row := range rep.Rows {
		prev := -1.0
		for _, c := range row[2:] {
			v := parseF(t, c)
			if v < prev-1e-9 {
				t.Fatalf("non-monotone CDF row %v", row)
			}
			prev = v
		}
	}
	// Paper ordering at the tightest threshold (column 2), block size 8:
	// Miranda and QMCPack clearly smoother than Nyx.
	get := func(prefix string) float64 {
		for _, row := range rep.Rows {
			if strings.HasPrefix(row[0], prefix) && row[1] == "8" {
				return parseF(t, row[2])
			}
		}
		t.Fatalf("panel %s not found", prefix)
		return 0
	}
	if get("Miranda") <= get("Nyx") {
		t.Error("Miranda not smoother than Nyx at 0.001")
	}
	if get("QMCPack") <= get("Nyx") {
		t.Error("QMCPack not smoother than Nyx at 0.001")
	}
}

func TestFig6OverheadBand(t *testing.T) {
	rep, err := Fig6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rep.Rows {
		mean := parseF(t, row[5])
		max := parseF(t, row[7])
		if mean > 15 {
			t.Errorf("%v: mean overhead %v%% above paper band", row[:3], mean)
		}
		if max > 25 {
			t.Errorf("%v: max overhead %v%% far above paper band", row[:3], max)
		}
	}
}

func TestFig8BlockSizeTrend(t *testing.T) {
	rep, err := Fig8(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// For each field: CR(128) should be >= CR(8) (impact factor B), and
	// PSNR should stay within a few dB.
	type pair struct{ cr8, cr128, p8, p128 float64 }
	fields := map[string]*pair{}
	for _, row := range rep.Rows {
		f := row[0]
		if fields[f] == nil {
			fields[f] = &pair{}
		}
		switch row[2] {
		case "8":
			fields[f].cr8 = parseF(t, row[3])
			fields[f].p8 = parseF(t, row[4])
		case "128":
			fields[f].cr128 = parseF(t, row[3])
			fields[f].p128 = parseF(t, row[4])
		}
	}
	improved := 0
	for f, p := range fields {
		if p.cr128 >= p.cr8 {
			improved++
		}
		if diff := p.p128 - p.p8; diff < -6 || diff > 6 {
			t.Errorf("%s: PSNR moved %v dB between block sizes", f, diff)
		}
	}
	if improved < len(fields)/2 {
		t.Errorf("only %d/%d fields improved CR at block size 128", improved, len(fields))
	}
}

func TestFig12QualityMonotone(t *testing.T) {
	rep, err := Fig12(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	// Looser bounds: higher CR, lower PSNR, lower (or equal) SSIM.
	for i := 1; i < 3; i++ {
		if parseF(t, rep.Rows[i][1]) < parseF(t, rep.Rows[i-1][1]) {
			t.Errorf("CR not increasing with looser bound: %v", rep.Rows)
		}
		if parseF(t, rep.Rows[i][2]) > parseF(t, rep.Rows[i-1][2]) {
			t.Errorf("PSNR not decreasing with looser bound: %v", rep.Rows)
		}
	}
}

func TestFig13NoExceed(t *testing.T) {
	rep, err := Fig13(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[4] != "0" {
			t.Errorf("%s: %s errors exceed the bound", row[0], row[4])
		}
		if parseF(t, row[2]) > parseF(t, row[1])*1.0000001 {
			t.Errorf("%s: max err %s above bound %s", row[0], row[2], row[1])
		}
	}
}

func TestTable3Ordering(t *testing.T) {
	rep, err := Table3(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the overall CR (middle of min/overall/max) per codec for the
	// first app column.
	overall := map[string]float64{}
	for _, row := range rep.Rows {
		parts := strings.Split(row[2], "/")
		if len(parts) == 3 && overall[row[0]] == 0 {
			overall[row[0]] = parseF(t, parts[1])
		}
	}
	if !(overall["SZx"] > overall["zstd*"]) {
		t.Errorf("SZx (%v) not above lossless (%v)", overall["SZx"], overall["zstd*"])
	}
	if !(overall["SZ"] > overall["SZx"]) {
		t.Errorf("SZ (%v) not above SZx (%v)", overall["SZ"], overall["SZx"])
	}
	if overall["zstd*"] < 0.8 || overall["zstd*"] > 3 {
		t.Errorf("lossless ratio %v outside plausible band", overall["zstd*"])
	}
}

func speedup(t *testing.T, rep Report, num, den string) float64 {
	t.Helper()
	var a, b float64
	for _, row := range rep.Rows {
		if row[0] == num && a == 0 {
			a = parseF(t, row[2])
		}
		if row[0] == den && b == 0 {
			b = parseF(t, row[2])
		}
	}
	if a == 0 || b == 0 {
		t.Fatalf("missing rows %s/%s", num, den)
	}
	return a / b
}

func TestTable4SZxFastest(t *testing.T) {
	rep, err := Table4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := speedup(t, rep, "SZx", "SZ"); s < 1.5 {
		t.Errorf("SZx only %.1fx faster than SZ in compression", s)
	}
	if s := speedup(t, rep, "SZx", "ZFP"); s < 1.2 {
		t.Errorf("SZx only %.1fx faster than ZFP in compression", s)
	}
}

func TestTable5SZxFastest(t *testing.T) {
	rep, err := Table5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := speedup(t, rep, "SZx", "SZ"); s < 1.2 {
		t.Errorf("SZx only %.1fx faster than SZ in decompression", s)
	}
}

func TestTable6NA(t *testing.T) {
	rep, err := Table6(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// CESM (2-D) must be n/a for omp-SZ, as in the paper.
	found := false
	for _, row := range rep.Rows {
		if row[0] == "omp-SZ" && row[2] == "n/a" {
			found = true
		}
	}
	if !found {
		t.Error("omp-SZ CESM should be n/a")
	}
}

func TestTable7Shape(t *testing.T) {
	rep, err := Table7(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	sawZFPna, sawSZx := false, false
	for _, row := range rep.Rows {
		if row[0] == "omp-ZFP" && row[2] == "n/a" {
			sawZFPna = true
		}
		if row[0] == "omp-SZx" && row[2] != "n/a" {
			sawSZx = true
		}
	}
	if !sawZFPna || !sawSZx {
		t.Errorf("table shape wrong: zfpNA=%v szx=%v", sawZFPna, sawSZx)
	}
}

func TestFig14Ordering(t *testing.T) {
	a, b, err := Fig14(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []Report{a, b} {
		for _, row := range rep.Rows {
			szx := parseF(t, row[1])
			cusz := parseF(t, row[2])
			cuzfp := parseF(t, row[3])
			if !(szx > cusz && szx > cuzfp) {
				t.Errorf("%s %s: cuSZx (%v) not fastest (cuSZ %v, cuZFP %v)",
					rep.ID, row[0], szx, cusz, cuzfp)
			}
		}
	}
}

func TestFig15Ordering(t *testing.T) {
	a, _, err := Fig15(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Rows {
		if !(parseF(t, row[1]) > parseF(t, row[2])) {
			t.Errorf("cuSZx decompression not faster than cuSZ: %v", row)
		}
	}
}

func TestFig16SZxWins(t *testing.T) {
	rep, err := Fig16(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per (rel, ranks) group, SZx's dump total should be the smallest.
	type key struct{ rel, ranks string }
	best := map[key]string{}
	val := map[key]float64{}
	for _, row := range rep.Rows {
		k := key{row[0], row[1]}
		v := parseF(t, row[5])
		if cur, ok := val[k]; !ok || v < cur {
			val[k] = v
			best[k] = row[2]
		}
	}
	for k, b := range best {
		if b != "SZx" {
			t.Errorf("group %v: fastest dump is %s", k, b)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := Report{
		ID: "X", Title: "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	txt := rep.Render()
	if !strings.Contains(txt, "== X: t ==") || !strings.Contains(txt, "note: n") {
		t.Errorf("render: %q", txt)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### X — t") {
		t.Errorf("markdown: %q", md)
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reports, err := All(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 18 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.ID == "" || len(r.Rows) == 0 {
			t.Errorf("report %q empty", r.ID)
		}
	}
}

func TestTradeOffFrontier(t *testing.T) {
	rep, err := TradeOff(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// SZx must beat SZ on compression throughput at every bound; SZ must
	// beat SZx on ratio at every bound.
	szxMBps := map[string]float64{}
	szxCR := map[string]float64{}
	for _, row := range rep.Rows {
		if row[0] == "SZx" {
			szxMBps[row[1]] = parseF(t, row[3])
			szxCR[row[1]] = parseF(t, row[2])
		}
	}
	for _, row := range rep.Rows {
		if row[0] == "SZ" {
			if parseF(t, row[3]) >= szxMBps[row[1]] {
				t.Errorf("rel %s: SZ compresses faster than SZx", row[1])
			}
			if parseF(t, row[2]) <= szxCR[row[1]] {
				t.Errorf("rel %s: SZ ratio not above SZx", row[1])
			}
		}
	}
}

func TestBlockSizeSpeed(t *testing.T) {
	rep, err := BlockSizeSpeed(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 3 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if parseF(t, row[2]) <= 0 {
			t.Errorf("blocksize %s: nonpositive throughput", row[0])
		}
	}
}

func TestCheckpointDriver(t *testing.T) {
	rep, err := Checkpoint(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "raw" {
		t.Fatalf("first row %v", rep.Rows[0])
	}
	var rawOv, szxOv float64
	for _, row := range rep.Rows {
		ov := parseF(t, strings.TrimSuffix(row[6], "%"))
		if ov <= 0 || ov > 100 {
			t.Errorf("%s: overhead %v%%", row[0], ov)
		}
		switch row[0] {
		case "raw":
			rawOv = ov
		case "SZx":
			szxOv = ov
		}
	}
	// SZx checkpointing should not be more expensive than raw at these
	// (high-contention) scales.
	if szxOv > rawOv*1.5 {
		t.Errorf("SZx overhead %v%% much worse than raw %v%%", szxOv, rawOv)
	}
}

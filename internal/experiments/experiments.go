// Package experiments regenerates every table and figure of the SZx
// paper's evaluation (§7) on the synthetic application datasets: one driver
// per artifact, each returning a Report with paper-style rows. The
// cmd/szxbench binary runs all drivers and renders EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lossless"
	"repro/internal/metrics"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// Config controls dataset sizes and measurement effort.
type Config struct {
	// Scale divides the paper's dataset grids (1 = full size, 8 = default
	// bench size, 16+ = test size).
	Scale int
	// Seed makes the synthetic datasets reproducible.
	Seed int64
	// Workers is the goroutine count for the multicore experiments
	// (0 = GOMAXPROCS).
	Workers int
	// Quick trims sweeps and repetitions for use in unit tests.
	Quick bool
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 8
	}
	return c.Scale
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 20220627 // HPDC '22 opening day
	}
	return c.Seed
}

// Report is a regenerated paper artifact.
type Report struct {
	ID    string // e.g. "Table 3", "Fig. 14"
	Title string
	// Header and Rows form the artifact's table.
	Header []string
	Rows   [][]string
	// Notes records paper-vs-measured observations for EXPERIMENTS.md.
	Notes []string
}

// Render formats the report as a fixed-width text table.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	line(dashes(widths))
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavored markdown table.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	seps := make([]string, len(r.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// --- codec adapters -------------------------------------------------------

// codec is the uniform view of the four compressors under evaluation.
type codec struct {
	name string
	// compress takes the absolute error bound (ignored by lossless codecs).
	compress   func(data []float32, dims []int, abs float64) ([]byte, error)
	decompress func(comp []byte, n int) ([]float32, error)
}

func szxCodec(workers int) codec {
	return codec{
		name: "SZx",
		compress: func(data []float32, dims []int, abs float64) ([]byte, error) {
			if workers > 1 {
				return core.CompressFloat32Parallel(data, abs, core.Options{}, workers)
			}
			return core.CompressFloat32(data, abs, core.Options{})
		},
		decompress: func(comp []byte, n int) ([]float32, error) {
			if workers > 1 {
				return core.DecompressFloat32Parallel(comp, workers)
			}
			return core.DecompressFloat32(comp)
		},
	}
}

func szCodec() codec {
	return codec{
		name: "SZ",
		compress: func(data []float32, dims []int, abs float64) ([]byte, error) {
			return sz.Compress(data, dims, abs, sz.Options{})
		},
		decompress: func(comp []byte, n int) ([]float32, error) {
			out, _, err := sz.Decompress(comp)
			return out, err
		},
	}
}

func zfpCodec() codec {
	return codec{
		name: "ZFP",
		compress: func(data []float32, dims []int, abs float64) ([]byte, error) {
			return zfp.Compress(data, dims, abs)
		},
		decompress: func(comp []byte, n int) ([]float32, error) {
			out, _, err := zfp.Decompress(comp)
			return out, err
		},
	}
}

func zstdLikeCodec() codec {
	return codec{
		name: "zstd*",
		compress: func(data []float32, dims []int, abs float64) ([]byte, error) {
			return lossless.CompressLZ(lossless.Float32Bytes(data)), nil
		},
		decompress: func(comp []byte, n int) ([]float32, error) {
			raw, err := lossless.DecompressLZ(comp)
			if err != nil {
				return nil, err
			}
			return lossless.BytesFloat32(raw)
		},
	}
}

// --- measurement helpers --------------------------------------------------

// measure times fn, repeating until minDuration is accumulated, and returns
// seconds per call.
func (c Config) measure(fn func()) float64 {
	minDur := 150 * time.Millisecond
	if c.Quick {
		minDur = 0
	}
	var total time.Duration
	reps := 0
	for {
		start := time.Now()
		fn()
		total += time.Since(start)
		reps++
		if total >= minDur || reps >= 20 {
			return total.Seconds() / float64(reps)
		}
	}
}

// relToAbs converts a value-range-based relative bound to absolute.
func relToAbs(data []float32, rel float64) float64 {
	mn, mx := metrics.ValueRange(data)
	r := mx - mn
	if r == 0 {
		r = 1
	}
	return rel * r
}

// crStats compresses every field of an app and returns min/overall/max CR.
// Overall is the paper's harmonic aggregate: total original bytes over
// total compressed bytes.
func crStats(app datagen.App, rel float64, c codec) (mn, overall, mx float64, err error) {
	var ratios []float64
	var orig, comp []int
	for _, f := range app.Fields {
		abs := relToAbs(f.Data, rel)
		out, cerr := c.compress(f.Data, f.Dims, abs)
		if cerr != nil {
			return 0, 0, 0, fmt.Errorf("%s/%s: %w", app.Name, f.Name, cerr)
		}
		ratios = append(ratios, float64(4*len(f.Data))/float64(len(out)))
		orig = append(orig, 4*len(f.Data))
		comp = append(comp, len(out))
	}
	sort.Float64s(ratios)
	return ratios[0], metrics.HarmonicMeanCR(orig, comp), ratios[len(ratios)-1], nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// apps returns the six synthetic applications for this config.
func (c Config) apps() []datagen.App {
	return datagen.AllApps(c.scale(), c.seed())
}

// sampleFields trims an app's field list in Quick mode.
func (c Config) sampleFields(app datagen.App, max int) datagen.App {
	if !c.Quick || len(app.Fields) <= max {
		return app
	}
	out := app
	out.Fields = app.Fields[:max]
	return out
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
)

// TradeOff implements the paper's stated future work (§8): a quantitative
// characterization of the compression-ratio / performance trade-off. For a
// sweep of error bounds it reports, per codec, the ratio, both throughputs,
// and PSNR, exposing the frontier a user navigates when choosing between
// SZx (speed) and SZ/ZFP (ratio) — e.g. for the checkpoint/restart
// cost model of Ibtesham et al. that the paper cites.
func TradeOff(cfg Config) (Report, error) {
	mi := datagen.Miranda(cfg.scale(), cfg.seed())
	field := mi.Fields[2] // pressure
	rels := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	if cfg.Quick {
		rels = []float64{1e-2, 1e-4}
	}
	codecs := []codec{szxCodec(1), zfpCodec(), szCodec()}

	rep := Report{
		ID:     "Trade-off",
		Title:  "Compression ratio vs throughput frontier (Miranda pressure)",
		Header: []string{"codec", "rel", "CR", "comp MB/s", "decomp MB/s", "PSNR(dB)", "bytes/val"},
	}
	origBytes := float64(4 * len(field.Data))
	for _, c := range codecs {
		for _, rel := range rels {
			abs := relToAbs(field.Data, rel)
			comp, err := c.compress(field.Data, field.Dims, abs)
			if err != nil {
				return Report{}, err
			}
			dec, err := c.decompress(comp, len(field.Data))
			if err != nil {
				return Report{}, err
			}
			d, err := metrics.Measure(field.Data, dec)
			if err != nil {
				return Report{}, err
			}
			var cerr error
			compSec := cfg.measure(func() {
				if _, e := c.compress(field.Data, field.Dims, abs); e != nil {
					cerr = e
				}
			})
			decSec := cfg.measure(func() {
				if _, e := c.decompress(comp, len(field.Data)); e != nil {
					cerr = e
				}
			})
			if cerr != nil {
				return Report{}, cerr
			}
			rep.Rows = append(rep.Rows, []string{
				c.name, fmt.Sprintf("%.0e", rel),
				f2(origBytes / float64(len(comp))),
				fmt.Sprintf("%.0f", origBytes/compSec/1e6),
				fmt.Sprintf("%.0f", origBytes/decSec/1e6),
				f1(d.PSNR),
				f2(float64(len(comp)) * 8 / float64(len(field.Data))), // bits/value... reported as bits
			})
		}
	}
	rep.Header[6] = "bits/val"
	rep.Notes = append(rep.Notes,
		"paper §8 future work: quantifies what a user trades when choosing SZx's speed over SZ/ZFP's ratio",
		"expected frontier: SZx dominates on both throughput axes at every bound; SZ dominates on ratio; ZFP between")
	return rep, nil
}

// BlockSizeSpeed is a second ablation driver (DESIGN.md §7): the effect of
// the block size on compression speed and the constant-block fraction,
// complementing Fig. 8's ratio/PSNR view.
func BlockSizeSpeed(cfg Config) (Report, error) {
	ny := datagen.Nyx(cfg.scale(), cfg.seed())
	field := ny.Fields[2] // temperature
	abs := relToAbs(field.Data, 1e-3)
	blockSizes := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	if cfg.Quick {
		blockSizes = []int{8, 128, 2048}
	}
	rep := Report{
		ID:     "Ablation B",
		Title:  "Block size vs speed and constant-block fraction (Nyx temperature, REL 1e-3)",
		Header: []string{"blocksize", "CR", "comp MB/s", "constant %", "lossless blocks"},
	}
	origBytes := float64(4 * len(field.Data))
	for _, bs := range blockSizes {
		_, st, err := core.CompressFloat32Stats(field.Data, abs, core.Options{BlockSize: bs})
		if err != nil {
			return Report{}, err
		}
		var cerr error
		sec := cfg.measure(func() {
			if _, e := core.CompressFloat32(field.Data, abs, core.Options{BlockSize: bs}); e != nil {
				cerr = e
			}
		})
		if cerr != nil {
			return Report{}, cerr
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", bs), f2(st.Ratio()),
			fmt.Sprintf("%.0f", origBytes/sec/1e6),
			f1(100 * float64(st.ConstantBlocks) / float64(st.Blocks)),
			fmt.Sprintf("%d", st.LosslessBlocks),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper §5.3: 128 balances ratio (converged) against GPU-friendliness; speed is flat once per-block overheads amortize")
	return rep, nil
}

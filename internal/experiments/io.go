package experiments

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/pfs"
)

// Fig16 reproduces the parallel-file-system dump/load experiment: 64-1024
// ranks each compress (or decompress) their share of a Nyx-like dataset and
// stream it to the modeled ThetaGPU file system, at three value-range error
// bounds. The paper's finding: SZx's dump/load time is 1/3-1/2 of SZ's and
// ZFP's because the compressor, not the PFS, is the bottleneck.
func Fig16(cfg Config) (Report, error) {
	ny := datagen.Nyx(cfg.scale(), cfg.seed())
	perRank := gpuSample(ny, 1<<20)
	if cfg.Quick {
		perRank = perRank[:1<<15]
	}

	ranks := []int{64, 128, 256, 512, 1024}
	rels := []float64{1e-2, 1e-3, 1e-4}
	if cfg.Quick {
		ranks = []int{64, 1024}
		rels = []float64{1e-3}
	}

	rep := Report{
		ID:    "Fig. 16",
		Title: "Data dumping/loading on modeled PFS (seconds per rank-wave)",
		Header: []string{"rel", "ranks", "codec", "compress", "write", "dump total",
			"read", "decompress", "load total", "CR"},
	}
	for _, rel := range rels {
		abs := relToAbs(perRank, rel)
		codecs := []pfs.Codec{
			pfsCodec(szxCodec(1), abs, len(perRank)),
			pfsCodec(szCodec(), abs, len(perRank)),
			pfsCodec(zfpCodec(), abs, len(perRank)),
		}
		for _, r := range ranks {
			for _, c := range codecs {
				res, err := pfs.Simulate(pfs.ThetaFS, r, perRank, c)
				if err != nil {
					return Report{}, err
				}
				rep.Rows = append(rep.Rows, []string{
					fmt.Sprintf("%.0e", rel), fmt.Sprintf("%d", r), res.Codec,
					f3(res.CompressSec), f3(res.WriteSec), f3(res.DumpSec()),
					f3(res.ReadSec), f3(res.DecompressSec), f3(res.LoadSec()),
					f1(res.Ratio()),
				})
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: SZx dump/load takes 1/3-1/2 the time of SZ/ZFP; compression dominates because the PFS is fast")
	return rep, nil
}

// pfsCodec adapts an experiments codec to the pfs harness.
func pfsCodec(c codec, abs float64, n int) pfs.Codec {
	return pfs.Codec{
		Name: c.name,
		Compress: func(d []float32) ([]byte, error) {
			return c.compress(d, []int{len(d)}, abs)
		},
		Decompress: func(comp []byte) ([]float32, error) {
			return c.decompress(comp, n)
		},
	}
}

// Package pfs models the parallel-file-system dump/load experiment of the
// SZx paper's Fig. 16: N MPI ranks each compress their share of a dataset
// and write the compressed bytes to a shared parallel file system (dump),
// or read and decompress it (load).
//
// The actual ThetaGPU Lustre system is unavailable here, so the I/O side is
// a bandwidth/contention model: each rank streams at min(per-rank cap,
// aggregate bandwidth / ranks). The compression side is *measured* (one
// rank's work is timed on the host CPU); since all ranks compress
// concurrently on their own cores, the modeled wall time for the compute
// phase is a single rank's time. This reproduces exactly the trade-off
// Fig. 16 demonstrates: with a fast PFS, the compressor's speed — not its
// ratio — dominates end-to-end dump/load time.
package pfs

import (
	"errors"
	"time"
)

// FileSystem describes the modeled parallel file system.
type FileSystem struct {
	Name string
	// AggregateGBps is the peak aggregate bandwidth across all ranks.
	AggregateGBps float64
	// PerRankGBps caps a single rank's streaming bandwidth.
	PerRankGBps float64
	// LatencySec is the fixed per-operation cost (open/close, metadata).
	LatencySec float64
}

// ThetaFS approximates the ANL ThetaGPU/Theta Lustre file system the paper
// used: high aggregate bandwidth, so compression speed dominates at the
// paper's 64-1024 rank scales.
var ThetaFS = FileSystem{
	Name:          "theta-lustre",
	AggregateGBps: 650,
	PerRankGBps:   2.0,
	LatencySec:    0.003,
}

// TransferTime returns the modeled wall time for ranks concurrent streams
// of bytesPerRank each.
func (fs FileSystem) TransferTime(ranks int, bytesPerRank int) float64 {
	if ranks < 1 || bytesPerRank <= 0 {
		return fs.LatencySec
	}
	bw := fs.PerRankGBps
	if share := fs.AggregateGBps / float64(ranks); share < bw {
		bw = share
	}
	return fs.LatencySec + float64(bytesPerRank)/(bw*1e9)
}

// Codec is a compressor under test in the dump/load experiment.
type Codec struct {
	Name       string
	Compress   func(data []float32) ([]byte, error)
	Decompress func(comp []byte) ([]float32, error)
}

// Result is one dump+load simulation outcome, matching the stacked bars of
// Fig. 16 (compression time + write time; read time + decompression time).
type Result struct {
	Codec           string
	Ranks           int
	CompressSec     float64
	WriteSec        float64
	ReadSec         float64
	DecompressSec   float64
	CompressedBytes int // per rank
	OriginalBytes   int // per rank
}

// DumpSec is the modeled end-to-end dump time.
func (r Result) DumpSec() float64 { return r.CompressSec + r.WriteSec }

// LoadSec is the modeled end-to-end load time.
func (r Result) LoadSec() float64 { return r.ReadSec + r.DecompressSec }

// Ratio is the per-rank compression ratio.
func (r Result) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.OriginalBytes) / float64(r.CompressedBytes)
}

// ErrEmptyRank is returned when the per-rank dataset is empty.
var ErrEmptyRank = errors.New("pfs: per-rank data must be non-empty")

// Simulate runs the dump/load experiment: it measures one rank's real
// compression and decompression time on the host, models the PFS transfer
// for the given rank count, and returns the combined result.
func Simulate(fs FileSystem, ranks int, perRankData []float32, c Codec) (Result, error) {
	if len(perRankData) == 0 {
		return Result{}, ErrEmptyRank
	}
	res := Result{Codec: c.Name, Ranks: ranks, OriginalBytes: 4 * len(perRankData)}

	start := time.Now()
	comp, err := c.Compress(perRankData)
	if err != nil {
		return Result{}, err
	}
	res.CompressSec = time.Since(start).Seconds()
	res.CompressedBytes = len(comp)
	res.WriteSec = fs.TransferTime(ranks, len(comp))
	res.ReadSec = res.WriteSec // symmetric model

	start = time.Now()
	dec, err := c.Decompress(comp)
	if err != nil {
		return Result{}, err
	}
	res.DecompressSec = time.Since(start).Seconds()
	if len(dec) != len(perRankData) {
		return Result{}, errors.New("pfs: codec round-trip length mismatch")
	}
	return res, nil
}

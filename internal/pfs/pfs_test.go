package pfs

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestTransferTimeContention(t *testing.T) {
	fs := FileSystem{AggregateGBps: 100, PerRankGBps: 2, LatencySec: 0.001}
	// Few ranks: per-rank cap dominates.
	few := fs.TransferTime(4, 1<<30)
	wantFew := 0.001 + float64(1<<30)/(2e9)
	if math.Abs(few-wantFew)/wantFew > 1e-9 {
		t.Errorf("few ranks: %g want %g", few, wantFew)
	}
	// Many ranks: aggregate share dominates (100/1000 = 0.1 GB/s each).
	many := fs.TransferTime(1000, 1<<30)
	wantMany := 0.001 + float64(1<<30)/(0.1e9)
	if math.Abs(many-wantMany)/wantMany > 1e-9 {
		t.Errorf("many ranks: %g want %g", many, wantMany)
	}
	if many <= few {
		t.Error("contention did not slow transfers")
	}
	// Degenerate inputs fall back to latency.
	if got := fs.TransferTime(0, 0); got != fs.LatencySec {
		t.Errorf("degenerate: %g", got)
	}
}

func TestTransferScalesWithSize(t *testing.T) {
	fs := ThetaFS
	small := fs.TransferTime(64, 1<<20)
	big := fs.TransferTime(64, 1<<26)
	if big <= small {
		t.Error("more bytes should take longer")
	}
}

func szxCodec() Codec {
	return Codec{
		Name: "SZx",
		Compress: func(d []float32) ([]byte, error) {
			return core.CompressFloat32(d, 1e-3, core.Options{})
		},
		Decompress: core.DecompressFloat32,
	}
}

func TestSimulate(t *testing.T) {
	data := make([]float32, 200000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 500))
	}
	res, err := Simulate(ThetaFS, 256, data, szxCodec())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressSec <= 0 || res.DecompressSec <= 0 {
		t.Errorf("non-positive measured times: %+v", res)
	}
	if res.WriteSec <= 0 || res.ReadSec != res.WriteSec {
		t.Errorf("transfer model: %+v", res)
	}
	if res.Ratio() <= 1 {
		t.Errorf("ratio %.2f", res.Ratio())
	}
	if res.DumpSec() != res.CompressSec+res.WriteSec {
		t.Error("DumpSec mismatch")
	}
	if res.LoadSec() != res.ReadSec+res.DecompressSec {
		t.Error("LoadSec mismatch")
	}
}

func TestSimulateEmpty(t *testing.T) {
	if _, err := Simulate(ThetaFS, 64, nil, szxCodec()); err != ErrEmptyRank {
		t.Errorf("got %v", err)
	}
}

// Higher compression ratios buy shorter writes: verify the model rewards a
// codec that halves the output, all else equal.
func TestWriteTimeRewardsRatio(t *testing.T) {
	a := ThetaFS.TransferTime(1024, 100<<20)
	b := ThetaFS.TransferTime(1024, 50<<20)
	if !(b < a) {
		t.Error("smaller output should write faster")
	}
}

func TestCheckpointModel(t *testing.T) {
	data := make([]float32, 100000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 300))
	}
	p := CheckpointParams{Ranks: 512, MTBFSeconds: 3600}
	codec := szxCodec()
	raw, err := EvaluateCheckpoint(ThetaFS, p, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	szx, err := EvaluateCheckpoint(ThetaFS, p, data, &codec)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Codec != "raw" || raw.Ratio != 1 || raw.CompressSec != 0 {
		t.Errorf("raw: %+v", raw)
	}
	if szx.Ratio <= 1 {
		t.Errorf("szx ratio %v", szx.Ratio)
	}
	// Young interval grows with cost; overhead positive and < 1 for sane MTBF.
	for _, r := range []CheckpointResult{raw, szx} {
		if r.IntervalSec <= 0 || r.OverheadFrac <= 0 || r.OverheadFrac > 1 {
			t.Errorf("%s: %+v", r.Codec, r)
		}
		want := math.Sqrt(2 * r.CostSec * p.MTBFSeconds)
		if math.Abs(r.IntervalSec-want) > 1e-9 {
			t.Errorf("%s: interval %v want %v", r.Codec, r.IntervalSec, want)
		}
	}
}

func TestCheckpointParamValidation(t *testing.T) {
	data := []float32{1, 2, 3}
	if _, err := EvaluateCheckpoint(ThetaFS, CheckpointParams{Ranks: 0, MTBFSeconds: 10}, data, nil); err != ErrParams {
		t.Errorf("ranks=0: %v", err)
	}
	if _, err := EvaluateCheckpoint(ThetaFS, CheckpointParams{Ranks: 1, MTBFSeconds: 0}, data, nil); err != ErrParams {
		t.Errorf("mtbf=0: %v", err)
	}
	if _, err := EvaluateCheckpoint(ThetaFS, CheckpointParams{Ranks: 1, MTBFSeconds: 10}, nil, nil); err != ErrParams {
		t.Errorf("empty: %v", err)
	}
}

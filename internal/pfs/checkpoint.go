package pfs

import (
	"errors"
	"math"
)

// Checkpoint/restart viability model. The SZx paper cites Ibtesham et al.
// [16] ("On the viability of compression for reducing the overheads of
// checkpoint/restart-based fault tolerance") as the framing for its
// planned ratio-vs-performance characterization: compressing checkpoints
// shrinks the write, but only pays off if the compressor is fast enough.
// This model combines a measured codec cost with the PFS transfer model
// and the first-order Young/Daly optimal-interval analysis to answer
// exactly that question.

// CheckpointParams describes the application and system.
type CheckpointParams struct {
	// Ranks is the number of concurrently checkpointing processes.
	Ranks int
	// MTBFSeconds is the system mean time between failures.
	MTBFSeconds float64
}

// ErrParams reports invalid checkpoint parameters.
var ErrParams = errors.New("pfs: invalid checkpoint parameters")

// CheckpointResult evaluates one codec under the model.
type CheckpointResult struct {
	Codec string
	// CostSec is the per-checkpoint cost C: compression + write.
	CostSec float64
	// IntervalSec is the Young optimal checkpoint interval sqrt(2*C*MTBF).
	IntervalSec float64
	// OverheadFrac is the first-order expected runtime overhead
	// C/tau + tau/(2*MTBF) at the optimal interval.
	OverheadFrac float64
	// CompressSec and WriteSec split the cost.
	CompressSec float64
	WriteSec    float64
	// Ratio is the checkpoint compression ratio (1 for the raw baseline).
	Ratio float64
}

// EvaluateCheckpoint measures one rank's compression of its checkpoint
// slab, models the concurrent write, and derives the Young/Daly numbers.
// A nil codec models uncompressed checkpointing.
func EvaluateCheckpoint(fs FileSystem, p CheckpointParams, perRank []float32, c *Codec) (CheckpointResult, error) {
	if p.Ranks < 1 || !(p.MTBFSeconds > 0) || len(perRank) == 0 {
		return CheckpointResult{}, ErrParams
	}
	res := CheckpointResult{Codec: "raw", Ratio: 1}
	rawBytes := 4 * len(perRank)
	if c == nil {
		res.WriteSec = fs.TransferTime(p.Ranks, rawBytes)
	} else {
		sim, err := Simulate(fs, p.Ranks, perRank, *c)
		if err != nil {
			return CheckpointResult{}, err
		}
		res.Codec = c.Name
		res.CompressSec = sim.CompressSec
		res.WriteSec = sim.WriteSec
		res.Ratio = sim.Ratio()
	}
	res.CostSec = res.CompressSec + res.WriteSec
	res.IntervalSec = math.Sqrt(2 * res.CostSec * p.MTBFSeconds)
	if res.IntervalSec > 0 {
		res.OverheadFrac = res.CostSec/res.IntervalSec + res.IntervalSec/(2*p.MTBFSeconds)
	}
	return res, nil
}

// Package sz implements a prediction-based error-bounded lossy compressor
// in the style of SZ 2.1 (Tao et al., IPDPS '17; Liang et al., BigData '18),
// the primary baseline of the SZx paper.
//
// The pipeline is the one the paper describes when motivating SZx's design
// constraints: a multidimensional Lorenzo predictor, linear-scale
// quantization with a per-point division (quantization_bin =
// prediction_error/(2*errorBound) + 1/2), canonical Huffman coding of the
// quantization codes, and a final lossless pass (DEFLATE standing in for
// the Zstd stage of SZ 2.1). These are precisely the "expensive operations"
// — divisions, multiplications, Huffman coding — that SZx avoids, so this
// baseline reproduces both the higher compression ratios and the lower
// throughput the paper reports for SZ.
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"io"
	"math"

	"repro/internal/huffman"
)

// DefaultCapacity is the quantization-code alphabet size (SZ's default).
const DefaultCapacity = 65536

// Stream constants.
const (
	magic      = "SZ2G"
	headerBase = 4 + 1 + 1 + 8 + 4 // magic, version, ndims, errBound, capacity
	version    = 1
)

// Errors returned by the codec.
var (
	ErrBadMagic = errors.New("sz: not an SZ stream")
	ErrCorrupt  = errors.New("sz: corrupt or truncated stream")
	ErrErrBound = errors.New("sz: error bound must be a positive finite number")
	ErrDims     = errors.New("sz: dims must be 1-4 positive values whose product is len(data)")
)

// Options configures compression.
type Options struct {
	// Capacity is the quantization alphabet size (0 = DefaultCapacity).
	// Must be an even number ≥ 4.
	Capacity int
	// Predictor selects the prediction stage: the default global Lorenzo
	// (SZ 1.4), blockwise regression, or SZ 2.1's per-block automatic
	// choice between the two.
	Predictor Predictor
}

func (o Options) capacity() (int, error) {
	c := o.Capacity
	if c == 0 {
		c = DefaultCapacity
	}
	if c < 4 || c%2 != 0 || c > 1<<22 {
		return 0, ErrCorrupt
	}
	return c, nil
}

// Compress compresses data (row-major, dims slowest-first) under the
// absolute error bound errBound.
func Compress(data []float32, dims []int, errBound float64, opts Options) ([]byte, error) {
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	capacity, err := opts.capacity()
	if err != nil {
		return nil, err
	}
	if err := checkDims(dims, len(data)); err != nil {
		return nil, err
	}
	if opts.Predictor != PredLorenzo {
		return compressRegression(data, dims, errBound, capacity, opts.Predictor == PredAuto)
	}

	radius := capacity / 2
	codes := make([]int, len(data))
	recon := make([]float32, len(data))
	var unpred []float32

	quantize := func(i int, pred float64) {
		d := float64(data[i])
		diff := d - pred
		q := int(math.Floor(diff/(2*errBound) + 0.5))
		if q > -radius+1 && q < radius {
			rec := pred + float64(q)*2*errBound
			if math.Abs(rec-d) <= errBound {
				codes[i] = q + radius
				recon[i] = float32(rec)
				// The float32 rounding of the reconstruction must also
				// respect the bound; otherwise fall through to unpredictable.
				if math.Abs(float64(recon[i])-d) <= errBound {
					return
				}
			}
		}
		codes[i] = 0 // unpredictable: stored verbatim
		unpred = append(unpred, data[i])
		recon[i] = data[i]
	}

	walk(dims, recon, quantize)

	// Entropy-code the quantization codes, then a lossless DEFLATE pass
	// (standing in for SZ 2.1's Zstd stage).
	var huffBytes []byte
	if len(codes) > 0 {
		huffBytes, err = huffman.EncodeAll(codes, capacity)
		if err != nil {
			return nil, err
		}
	}
	var packed bytes.Buffer
	fw, err := flate.NewWriter(&packed, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(huffBytes); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}

	out := make([]byte, 0, headerBase+8*len(dims)+packed.Len()+4*len(unpred))
	out = append(out, magic...)
	out = append(out, version, byte(len(dims)))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(errBound))
	out = append(out, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(capacity))
	out = append(out, b4[:]...)
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(unpred)))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(packed.Len()))
	out = append(out, b8[:]...)
	out = append(out, packed.Bytes()...)
	for _, u := range unpred {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(u))
		out = append(out, b4[:]...)
	}
	return out, nil
}

// Decompress reconstructs the values and dimensions from a stream produced
// by Compress, dispatching on the stream's predictor family.
func Decompress(comp []byte) ([]float32, []int, error) {
	if len(comp) >= 4 && string(comp[:4]) == magicReg {
		return decompressRegression(comp)
	}
	if len(comp) < headerBase || string(comp[:4]) != magic {
		return nil, nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, nil, ErrCorrupt
	}
	ndims := int(comp[5])
	if ndims < 1 || ndims > 4 {
		return nil, nil, ErrCorrupt
	}
	errBound := math.Float64frombits(binary.LittleEndian.Uint64(comp[6:]))
	capacity := int(binary.LittleEndian.Uint32(comp[14:]))
	if !(errBound > 0) || capacity < 4 || capacity > 1<<22 {
		return nil, nil, ErrCorrupt
	}
	pos := headerBase
	if len(comp) < pos+8*ndims+16 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
		if dims[i] < 1 || dims[i] > 1<<30 || n > 1<<31/dims[i] {
			return nil, nil, ErrCorrupt
		}
		n *= dims[i]
	}
	nUnpred := int(binary.LittleEndian.Uint64(comp[pos:]))
	packedLen := int(binary.LittleEndian.Uint64(comp[pos+8:]))
	pos += 16
	if nUnpred < 0 || nUnpred > n || packedLen < 0 || len(comp) < pos+packedLen+4*nUnpred {
		return nil, nil, ErrCorrupt
	}

	fr := flate.NewReader(bytes.NewReader(comp[pos : pos+packedLen]))
	huffBytes, err := io.ReadAll(fr)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	pos += packedLen
	var codes []int
	if n > 0 {
		codes, _, err = huffman.DecodeAll(huffBytes, n)
		if err != nil {
			return nil, nil, ErrCorrupt
		}
	}
	unpred := make([]float32, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float32frombits(binary.LittleEndian.Uint32(comp[pos+4*i:]))
	}

	radius := capacity / 2
	recon := make([]float32, n)
	ui := 0
	bad := false
	dequant := func(i int, pred float64) {
		c := codes[i]
		if c == 0 {
			if ui >= len(unpred) {
				bad = true
				return
			}
			recon[i] = unpred[ui]
			ui++
			return
		}
		q := c - radius
		recon[i] = float32(pred + float64(q)*2*errBound)
	}
	walk(dims, recon, dequant)
	if bad {
		return nil, nil, ErrCorrupt
	}
	return recon, dims, nil
}

func checkDims(dims []int, n int) error {
	if len(dims) < 1 || len(dims) > 4 {
		return ErrDims
	}
	p := 1
	for _, d := range dims {
		if d < 1 {
			return ErrDims
		}
		p *= d
	}
	if p != n {
		return ErrDims
	}
	return nil
}

// walk visits every point in row-major order, handing the visitor the
// linear index and the Lorenzo prediction computed from already-visited
// (reconstructed) neighbours in recon. 4-D data is treated as a stack of
// independent 3-D volumes, as in SZ.
func walk(dims []int, recon []float32, visit func(i int, pred float64)) {
	switch len(dims) {
	case 1:
		lorenzo1D(dims[0], 0, recon, visit)
	case 2:
		lorenzo2D(dims[0], dims[1], 0, recon, visit)
	case 3:
		lorenzo3D(dims[0], dims[1], dims[2], 0, recon, visit)
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			lorenzo3D(dims[1], dims[2], dims[3], s*vol, recon, visit)
		}
	}
}

func lorenzo1D(n, base int, r []float32, visit func(int, float64)) {
	for i := 0; i < n; i++ {
		pred := 0.0
		if i > 0 {
			pred = float64(r[base+i-1])
		}
		visit(base+i, pred)
	}
}

func lorenzo2D(h, w, base int, r []float32, visit func(int, float64)) {
	at := func(y, x int) float64 {
		if y < 0 || x < 0 {
			return 0
		}
		return float64(r[base+y*w+x])
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pred := at(y-1, x) + at(y, x-1) - at(y-1, x-1)
			visit(base+y*w+x, pred)
		}
	}
}

func lorenzo3D(d, h, w, base int, r []float32, visit func(int, float64)) {
	at := func(z, y, x int) float64 {
		if z < 0 || y < 0 || x < 0 {
			return 0
		}
		return float64(r[base+(z*h+y)*w+x])
	}
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pred := at(z-1, y, x) + at(z, y-1, x) + at(z, y, x-1) -
					at(z-1, y-1, x) - at(z-1, y, x-1) - at(z, y-1, x-1) +
					at(z-1, y-1, x-1)
				visit(base+(z*h+y)*w+x, pred)
			}
		}
	}
}

package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gen2D(h, w int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[y*w+x] = float32(math.Sin(float64(x)/20)*math.Cos(float64(y)/15)*10 +
				0.05*rng.NormFloat64())
		}
	}
	return out
}

func gen3D(d, h, w int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, d*h*w)
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out[i] = float32(math.Sin(float64(x+y+z)/25)*5 + 0.02*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func maxErr(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestRoundTrip1D(t *testing.T) {
	data := make([]float32, 5000)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 30))
	}
	for _, e := range []float64{1e-2, 1e-4, 1e-6} {
		comp, err := Compress(data, []int{len(data)}, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, dims, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if len(dims) != 1 || dims[0] != len(data) {
			t.Fatalf("dims %v", dims)
		}
		if got := maxErr(data, dec); got > e {
			t.Errorf("e=%g: max error %g", e, got)
		}
		if e >= 1e-4 && len(comp) >= 4*len(data) {
			t.Errorf("e=%g: no compression (%d bytes)", e, len(comp))
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	data := gen2D(100, 120, 1)
	for _, e := range []float64{1e-2, 1e-3} {
		comp, err := Compress(data, []int{100, 120}, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(data, dec); got > e {
			t.Errorf("e=%g: max error %g", e, got)
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	data := gen3D(20, 30, 40, 2)
	comp, err := Compress(data, []int{20, 30, 40}, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, dims, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 {
		t.Fatalf("dims %v", dims)
	}
	if got := maxErr(data, dec); got > 1e-3 {
		t.Errorf("max error %g", got)
	}
}

func TestRoundTrip4D(t *testing.T) {
	data := gen3D(6, 10, 12, 3) // reuse as 4D [2,3,10,12]
	comp, err := Compress(data, []int{2, 3, 10, 12}, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > 1e-3 {
		t.Errorf("max error %g", got)
	}
}

func TestHigherRatioThanNoCompression(t *testing.T) {
	// Smooth data + modest bound should compress far below 4 B/value and
	// beat a blockwise scheme's typical ratio (the paper's Table 3 SZ > SZx).
	data := gen2D(200, 200, 4)
	// Value range is ~20, so 2e-2 corresponds to the paper's REL 1e-3.
	comp, err := Compress(data, []int{200, 200}, 2e-2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(4*len(data)) / float64(len(comp))
	if cr < 8 {
		t.Errorf("SZ ratio %.1f unexpectedly low for smooth data", cr)
	}
}

func TestRoughDataStillBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, 4096)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4)))
	}
	for _, e := range []float64{1e-1, 1e-5} {
		comp, err := Compress(data, []int{4096}, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(data, dec); got > e {
			t.Errorf("e=%g: max error %g", e, got)
		}
	}
}

func TestInvalidArgs(t *testing.T) {
	data := []float32{1, 2, 3}
	if _, err := Compress(data, []int{3}, 0, Options{}); err != ErrErrBound {
		t.Errorf("e=0: %v", err)
	}
	if _, err := Compress(data, []int{4}, 1e-3, Options{}); err != ErrDims {
		t.Errorf("bad dims: %v", err)
	}
	if _, err := Compress(data, []int{1, 1, 1, 1, 3}, 1e-3, Options{}); err != ErrDims {
		t.Errorf("5D: %v", err)
	}
	if _, err := Compress(data, nil, 1e-3, Options{}); err != ErrDims {
		t.Errorf("nil dims: %v", err)
	}
	if _, err := Compress(data, []int{3}, 1e-3, Options{Capacity: 3}); err == nil {
		t.Error("odd capacity accepted")
	}
}

func TestCorrupt(t *testing.T) {
	data := gen2D(40, 40, 6)
	comp, err := Compress(data, []int{40, 40}, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(comp[:10]); err == nil {
		t.Error("short stream accepted")
	}
	if _, _, err := Decompress([]byte("XXXXYYYY")); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	for i := 0; i < len(comp); i += 17 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xFF
		_, _, _ = Decompress(c) // must not panic
	}
}

func TestSmallCapacity(t *testing.T) {
	data := gen2D(50, 50, 7)
	comp, err := Compress(data, []int{50, 50}, 1e-4, Options{Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > 1e-4 {
		t.Errorf("max error %g", got)
	}
}

// Property: the error bound holds for arbitrary data and bounds.
func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64, eExp uint8) bool {
		e := math.Pow(10, -float64(eExp%8))
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(100*math.Sin(float64(i)/10) + rng.NormFloat64())
		}
		comp, err := Compress(data, []int{n}, e, Options{})
		if err != nil {
			return false
		}
		dec, _, err := Decompress(comp)
		if err != nil {
			return false
		}
		return maxErr(data, dec) <= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConstantField(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = 3.25
	}
	comp, err := Compress(data, []int{10, 100}, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(4*len(data)) / float64(len(comp))
	if cr < 30 {
		t.Errorf("constant field ratio %.1f too low", cr)
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > 1e-3 {
		t.Errorf("max error %g", got)
	}
}

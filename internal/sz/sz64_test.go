package sz

import (
	"math"
	"math/rand"
	"testing"
)

func gen3D64(d, h, w int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, d*h*w)
	for i := range out {
		out[i] = math.Sin(float64(i)/40)*7 + 0.01*rng.NormFloat64()
	}
	return out
}

func maxErr64(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRoundTrip64(t *testing.T) {
	data := gen3D64(12, 20, 25, 1)
	for _, e := range []float64{1e-2, 1e-6, 1e-10} {
		comp, err := CompressFloat64(data, []int{12, 20, 25}, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, dims, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatal(err)
		}
		if len(dims) != 3 || dims[2] != 25 {
			t.Fatalf("dims %v", dims)
		}
		if got := maxErr64(data, dec); got > e {
			t.Errorf("e=%g: max error %g", e, got)
		}
	}
}

func TestRoundTrip64AllDims(t *testing.T) {
	data := gen3D64(2, 10, 12, 2)
	for _, dims := range [][]int{{240}, {20, 12}, {2, 10, 12}, {2, 2, 5, 12}} {
		comp, err := CompressFloat64(data, dims, 1e-5, Options{})
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		dec, _, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if got := maxErr64(data, dec); got > 1e-5 {
			t.Errorf("%v: max error %g", dims, got)
		}
	}
}

func TestCompress64CompressesSmooth(t *testing.T) {
	data := gen3D64(16, 24, 24, 3)
	comp, err := CompressFloat64(data, []int{16, 24, 24}, 1e-2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cr := float64(8*len(data)) / float64(len(comp)); cr < 10 {
		t.Errorf("ratio %.1f low for smooth doubles", cr)
	}
}

func TestCorrupt64(t *testing.T) {
	data := gen3D64(4, 8, 8, 4)
	comp, err := CompressFloat64(data, []int{4, 8, 8}, 1e-4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(comp[:10]); err == nil {
		t.Error("short stream accepted")
	}
	// f32 stream is not an f64 stream.
	data32 := make([]float32, 100)
	c32, _ := Compress(data32, []int{100}, 1e-3, Options{})
	if _, _, err := DecompressFloat64(c32); err != ErrBadMagic {
		t.Errorf("cross-type: %v", err)
	}
	for i := 0; i < len(comp); i += 23 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xFF
		_, _, _ = DecompressFloat64(c)
	}
}

package sz

// SZ 2.1's second prediction stage: blockwise linear regression
// (Liang et al., IEEE BigData '18). The SZx paper singles this stage out
// when motivating its own design — "SZ 2.1 relies on linear regression
// prediction, which involves masses of multiplications to compute the
// coefficients" — so the baseline implements it faithfully: the data is
// cut into small blocks (6x6x6 in 3-D, 12x12 in 2-D, 128 in 1-D), a
// least-squares hyperplane is fitted per block, and each block chooses
// between the regression predictor and a block-local Lorenzo predictor by
// comparing their prediction errors. Quantization, Huffman, and the
// DEFLATE pass are shared with the Lorenzo-only path.
//
// Unlike the original (which lets Lorenzo reach into neighbouring blocks),
// blocks here are fully independent: Lorenzo sees zeros outside the block.
// This costs a little ratio on the block borders and keeps every block
// decodable in isolation.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"math"

	"repro/internal/huffman"
)

// Predictor selects the prediction stage for Compress.
type Predictor byte

const (
	// PredLorenzo is the classic SZ 1.4 global Lorenzo predictor.
	PredLorenzo Predictor = 0
	// PredRegression fits a least-squares hyperplane per block.
	PredRegression Predictor = 1
	// PredAuto chooses per block between regression and block-local
	// Lorenzo, as SZ 2.1 does.
	PredAuto Predictor = 2
)

const magicReg = "SZ2R"

// regBlockEdge returns the per-axis block edge for the regression layout.
func regBlockEdge(ndims int) int {
	switch ndims {
	case 1:
		return 128
	case 2:
		return 12
	default:
		return 6
	}
}

// blockIter walks the block grid in row-major order, yielding the origin
// and extent of each block. dims is padded conceptually; extents are
// clipped at the edges.
func blockIter(dims []int, edge int, visit func(origin, ext []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	ext := make([]int, nd)
	var rec func(axis int)
	rec = func(axis int) {
		if axis == nd {
			for d := 0; d < nd; d++ {
				e := edge
				if origin[d]+e > dims[d] {
					e = dims[d] - origin[d]
				}
				ext[d] = e
			}
			visit(origin, ext)
			return
		}
		for origin[axis] = 0; origin[axis] < dims[axis]; origin[axis] += edge {
			rec(axis + 1)
		}
		origin[axis] = 0
	}
	rec(0)
}

// strides returns row-major strides for dims.
func strides(dims []int) []int {
	out := make([]int, len(dims))
	s := 1
	for d := len(dims) - 1; d >= 0; d-- {
		out[d] = s
		s *= dims[d]
	}
	return out
}

// fitPlane computes the least-squares hyperplane over a block:
// f(x) = c[0] + Σ_d c[d+1]*x_d, with x_d the in-block coordinate.
// This is the multiplication-heavy stage the paper refers to.
func fitPlane(data []float32, str []int, base int, ext []int) []float32 {
	nd := len(ext)
	n := 1
	for _, e := range ext {
		n *= e
	}
	// Per-axis centered first moments: num_d = Σ v*(x_d - mean_d).
	num := make([]float64, nd)
	den := make([]float64, nd)
	mean := make([]float64, nd)
	for d := 0; d < nd; d++ {
		mean[d] = float64(ext[d]-1) / 2
		// Σ (x-mean)^2 over the whole block = n/ext_d * Σ_x (x-mean)^2.
		var s float64
		for x := 0; x < ext[d]; x++ {
			dx := float64(x) - mean[d]
			s += dx * dx
		}
		den[d] = s * float64(n) / float64(ext[d])
	}
	var sum float64
	idx := make([]int, nd)
	for {
		off := base
		for d := 0; d < nd; d++ {
			off += idx[d] * str[d]
		}
		v := float64(data[off])
		sum += v
		for d := 0; d < nd; d++ {
			num[d] += v * (float64(idx[d]) - mean[d])
		}
		// Advance.
		d := nd - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < ext[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	coeff := make([]float32, nd+1)
	c0 := sum / float64(n)
	for d := 0; d < nd; d++ {
		if den[d] > 0 {
			slope := num[d] / den[d]
			coeff[d+1] = float32(slope)
			c0 -= slope * mean[d]
		}
	}
	coeff[0] = float32(c0)
	return coeff
}

// planeAt evaluates the fitted plane at in-block coordinates.
func planeAt(coeff []float32, idx []int) float64 {
	p := float64(coeff[0])
	for d := range idx {
		p += float64(coeff[d+1]) * float64(idx[d])
	}
	return p
}

// blockSAE estimates both predictors' absolute prediction error over a
// block (regression vs block-local Lorenzo on the original data), the
// per-block selection criterion of SZ 2.1.
func blockSAE(data []float32, str []int, base int, ext []int, coeff []float32) (saeReg, saeLor float64) {
	nd := len(ext)
	idx := make([]int, nd)
	at := func(delta []int) float64 {
		off := base
		for d := 0; d < nd; d++ {
			x := idx[d] + delta[d]
			if x < 0 {
				return 0
			}
			off += x * str[d]
		}
		return float64(data[off])
	}
	deltas := lorenzoDeltas(nd)
	for {
		off := base
		for d := 0; d < nd; d++ {
			off += idx[d] * str[d]
		}
		v := float64(data[off])
		saeReg += math.Abs(v - planeAt(coeff, idx))
		var pred float64
		for _, dl := range deltas {
			pred += float64(dl.sign) * at(dl.off)
		}
		saeLor += math.Abs(v - pred)

		d := nd - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < ext[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	return saeReg, saeLor
}

// lorenzoDelta is one term of the n-dimensional Lorenzo predictor.
type lorenzoDelta struct {
	off  []int
	sign int
}

// lorenzoDeltas enumerates the 2^nd - 1 Lorenzo terms with inclusion-
// exclusion signs.
func lorenzoDeltas(nd int) []lorenzoDelta {
	var out []lorenzoDelta
	for mask := 1; mask < 1<<uint(nd); mask++ {
		off := make([]int, nd)
		bits := 0
		for d := 0; d < nd; d++ {
			if mask&(1<<uint(d)) != 0 {
				off[d] = -1
				bits++
			}
		}
		sign := 1
		if bits%2 == 0 {
			sign = -1
		}
		out = append(out, lorenzoDelta{off: off, sign: sign})
	}
	return out
}

// compressRegression is the SZ 2.1-style blockwise path shared by
// PredRegression and PredAuto.
func compressRegression(data []float32, dims []int, errBound float64, capacity int, auto bool) ([]byte, error) {
	nd := len(dims)
	edge := regBlockEdge(nd)
	str := strides(dims)
	radius := capacity / 2
	deltas := lorenzoDeltas(nd)

	var codes []int
	var unpred []float32
	var coeffs []float32
	var predBits []byte // 1 bit per block, 1 = regression
	recon := make([]float32, len(data))
	blockCount := 0

	blockIter(dims, edge, func(origin, ext []int) {
		base := 0
		for d := 0; d < nd; d++ {
			base += origin[d] * str[d]
		}
		coeff := fitPlane(data, str, base, ext)
		useReg := true
		if auto {
			saeReg, saeLor := blockSAE(data, str, base, ext, coeff)
			useReg = saeReg <= saeLor
		}
		if blockCount%8 == 0 {
			predBits = append(predBits, 0)
		}
		if useReg {
			predBits[blockCount/8] |= 1 << uint(blockCount%8)
			coeffs = append(coeffs, coeff...)
		}
		blockCount++

		idx := make([]int, nd)
		reconAt := func(delta []int) float64 {
			off := base
			for d := 0; d < nd; d++ {
				x := idx[d] + delta[d]
				if x < 0 {
					return 0
				}
				off += x * str[d]
			}
			return float64(recon[off])
		}
		for {
			off := base
			for d := 0; d < nd; d++ {
				off += idx[d] * str[d]
			}
			var pred float64
			if useReg {
				pred = planeAt(coeff, idx)
			} else {
				for _, dl := range deltas {
					pred += float64(dl.sign) * reconAt(dl.off)
				}
			}
			dv := float64(data[off])
			diff := dv - pred
			q := int(math.Floor(diff/(2*errBound) + 0.5))
			stored := false
			if q > -radius+1 && q < radius {
				rec := float32(pred + float64(q)*2*errBound)
				if math.Abs(float64(rec)-dv) <= errBound {
					codes = append(codes, q+radius)
					recon[off] = rec
					stored = true
				}
			}
			if !stored {
				codes = append(codes, 0)
				unpred = append(unpred, data[off])
				recon[off] = data[off]
			}

			d := nd - 1
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < ext[d] {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
	})

	var huffBytes []byte
	var err error
	if len(codes) > 0 {
		huffBytes, err = huffman.EncodeAll(codes, capacity)
		if err != nil {
			return nil, err
		}
	}
	var packed bytes.Buffer
	fw, err := flate.NewWriter(&packed, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(huffBytes); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}

	out := make([]byte, 0, headerBase+8*len(dims)+len(predBits)+4*len(coeffs)+packed.Len()+4*len(unpred))
	out = append(out, magicReg...)
	out = append(out, version, byte(nd))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(errBound))
	out = append(out, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(capacity))
	out = append(out, b4[:]...)
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(unpred)))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(packed.Len()))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(coeffs)))
	out = append(out, b4[:]...)
	out = append(out, predBits...)
	for _, c := range coeffs {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(c))
		out = append(out, b4[:]...)
	}
	out = append(out, packed.Bytes()...)
	for _, u := range unpred {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(u))
		out = append(out, b4[:]...)
	}
	return out, nil
}

// decompressRegression reverses compressRegression.
func decompressRegression(comp []byte) ([]float32, []int, error) {
	if len(comp) < headerBase || string(comp[:4]) != magicReg {
		return nil, nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, nil, ErrCorrupt
	}
	nd := int(comp[5])
	if nd < 1 || nd > 4 {
		return nil, nil, ErrCorrupt
	}
	errBound := math.Float64frombits(binary.LittleEndian.Uint64(comp[6:]))
	capacity := int(binary.LittleEndian.Uint32(comp[14:]))
	if !(errBound > 0) || capacity < 4 || capacity > 1<<22 {
		return nil, nil, ErrCorrupt
	}
	pos := headerBase
	if len(comp) < pos+8*nd+20 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, nd)
	n := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
		if dims[i] < 1 || dims[i] > 1<<30 || n > 1<<31/dims[i] {
			return nil, nil, ErrCorrupt
		}
		n *= dims[i]
	}
	nUnpred := int(binary.LittleEndian.Uint64(comp[pos:]))
	packedLen := int(binary.LittleEndian.Uint64(comp[pos+8:]))
	nCoeff := int(binary.LittleEndian.Uint32(comp[pos+16:]))
	pos += 20

	edge := regBlockEdge(nd)
	nBlocks := 1
	for _, d := range dims {
		nBlocks *= (d + edge - 1) / edge
	}
	predLen := (nBlocks + 7) / 8
	if nUnpred < 0 || nUnpred > n || packedLen < 0 || nCoeff < 0 ||
		nCoeff > (nd+1)*nBlocks ||
		len(comp) < pos+predLen+4*nCoeff+packedLen+4*nUnpred {
		return nil, nil, ErrCorrupt
	}
	predBits := comp[pos : pos+predLen]
	pos += predLen
	coeffs := make([]float32, nCoeff)
	for i := range coeffs {
		coeffs[i] = math.Float32frombits(binary.LittleEndian.Uint32(comp[pos+4*i:]))
	}
	pos += 4 * nCoeff

	fr := flate.NewReader(bytes.NewReader(comp[pos : pos+packedLen]))
	huffBytes, err := io.ReadAll(fr)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	pos += packedLen
	var codes []int
	if n > 0 {
		codes, _, err = huffman.DecodeAll(huffBytes, n)
		if err != nil {
			return nil, nil, ErrCorrupt
		}
	}
	unpred := make([]float32, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float32frombits(binary.LittleEndian.Uint32(comp[pos+4*i:]))
	}

	str := strides(dims)
	radius := capacity / 2
	deltas := lorenzoDeltas(nd)
	recon := make([]float32, n)
	ci := 0 // code index
	ui := 0
	cf := 0 // coefficient index
	blockCount := 0
	bad := false

	blockIter(dims, edge, func(origin, ext []int) {
		if bad {
			return
		}
		base := 0
		for d := 0; d < nd; d++ {
			base += origin[d] * str[d]
		}
		useReg := predBits[blockCount/8]&(1<<uint(blockCount%8)) != 0
		blockCount++
		var coeff []float32
		if useReg {
			if cf+nd+1 > len(coeffs) {
				bad = true
				return
			}
			coeff = coeffs[cf : cf+nd+1]
			cf += nd + 1
		}

		idx := make([]int, nd)
		reconAt := func(delta []int) float64 {
			off := base
			for d := 0; d < nd; d++ {
				x := idx[d] + delta[d]
				if x < 0 {
					return 0
				}
				off += x * str[d]
			}
			return float64(recon[off])
		}
		for {
			off := base
			for d := 0; d < nd; d++ {
				off += idx[d] * str[d]
			}
			var pred float64
			if useReg {
				pred = planeAt(coeff, idx)
			} else {
				for _, dl := range deltas {
					pred += float64(dl.sign) * reconAt(dl.off)
				}
			}
			c := codes[ci]
			ci++
			if c == 0 {
				if ui >= len(unpred) {
					bad = true
					return
				}
				recon[off] = unpred[ui]
				ui++
			} else {
				recon[off] = float32(pred + float64(c-radius)*2*errBound)
			}

			d := nd - 1
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < ext[d] {
					break
				}
				idx[d] = 0
			}
			if d < 0 {
				break
			}
		}
	})
	if bad {
		return nil, nil, ErrCorrupt
	}
	return recon, dims, nil
}

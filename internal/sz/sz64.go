package sz

// Float64 variant of the SZ baseline. The paper's in-memory motivation
// (quantum-circuit simulation) compresses double-precision state, so the
// baseline supports it too. The pipeline is identical to the float32 path:
// Lorenzo prediction, linear-scale quantization, Huffman, DEFLATE; only the
// scalar type and the unpredictable-value encoding (8 bytes) differ.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"math"

	"repro/internal/huffman"
)

const magic64 = "SZ2H"

// CompressFloat64 compresses data (row-major, dims slowest-first) under the
// absolute error bound errBound.
func CompressFloat64(data []float64, dims []int, errBound float64, opts Options) ([]byte, error) {
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	capacity, err := opts.capacity()
	if err != nil {
		return nil, err
	}
	if err := checkDims(dims, len(data)); err != nil {
		return nil, err
	}

	radius := capacity / 2
	codes := make([]int, len(data))
	recon := make([]float64, len(data))
	var unpred []float64

	quantize := func(i int, pred float64) {
		d := data[i]
		diff := d - pred
		q := int(math.Floor(diff/(2*errBound) + 0.5))
		if q > -radius+1 && q < radius {
			rec := pred + float64(q)*2*errBound
			if math.Abs(rec-d) <= errBound {
				codes[i] = q + radius
				recon[i] = rec
				return
			}
		}
		codes[i] = 0
		unpred = append(unpred, d)
		recon[i] = d
	}

	walk64(dims, recon, quantize)

	var huffBytes []byte
	if len(codes) > 0 {
		huffBytes, err = huffman.EncodeAll(codes, capacity)
		if err != nil {
			return nil, err
		}
	}
	var packed bytes.Buffer
	fw, err := flate.NewWriter(&packed, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(huffBytes); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}

	out := make([]byte, 0, headerBase+8*len(dims)+packed.Len()+8*len(unpred))
	out = append(out, magic64...)
	out = append(out, version, byte(len(dims)))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(errBound))
	out = append(out, b8[:]...)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(capacity))
	out = append(out, b4[:]...)
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(unpred)))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], uint64(packed.Len()))
	out = append(out, b8[:]...)
	out = append(out, packed.Bytes()...)
	for _, u := range unpred {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(u))
		out = append(out, b8[:]...)
	}
	return out, nil
}

// DecompressFloat64 reverses CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, []int, error) {
	if len(comp) < headerBase || string(comp[:4]) != magic64 {
		return nil, nil, ErrBadMagic
	}
	if comp[4] != version {
		return nil, nil, ErrCorrupt
	}
	ndims := int(comp[5])
	if ndims < 1 || ndims > 4 {
		return nil, nil, ErrCorrupt
	}
	errBound := math.Float64frombits(binary.LittleEndian.Uint64(comp[6:]))
	capacity := int(binary.LittleEndian.Uint32(comp[14:]))
	if !(errBound > 0) || capacity < 4 || capacity > 1<<22 {
		return nil, nil, ErrCorrupt
	}
	pos := headerBase
	if len(comp) < pos+8*ndims+16 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	n := 1
	for i := range dims {
		dims[i] = int(binary.LittleEndian.Uint64(comp[pos:]))
		pos += 8
		if dims[i] < 1 || dims[i] > 1<<30 || n > 1<<31/dims[i] {
			return nil, nil, ErrCorrupt
		}
		n *= dims[i]
	}
	nUnpred := int(binary.LittleEndian.Uint64(comp[pos:]))
	packedLen := int(binary.LittleEndian.Uint64(comp[pos+8:]))
	pos += 16
	if nUnpred < 0 || nUnpred > n || packedLen < 0 || len(comp) < pos+packedLen+8*nUnpred {
		return nil, nil, ErrCorrupt
	}

	fr := flate.NewReader(bytes.NewReader(comp[pos : pos+packedLen]))
	huffBytes, err := io.ReadAll(fr)
	if err != nil {
		return nil, nil, ErrCorrupt
	}
	pos += packedLen
	var codes []int
	if n > 0 {
		codes, _, err = huffman.DecodeAll(huffBytes, n)
		if err != nil {
			return nil, nil, ErrCorrupt
		}
	}
	unpred := make([]float64, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(comp[pos+8*i:]))
	}

	radius := capacity / 2
	recon := make([]float64, n)
	ui := 0
	bad := false
	dequant := func(i int, pred float64) {
		c := codes[i]
		if c == 0 {
			if ui >= len(unpred) {
				bad = true
				return
			}
			recon[i] = unpred[ui]
			ui++
			return
		}
		recon[i] = pred + float64(c-radius)*2*errBound
	}
	walk64(dims, recon, dequant)
	if bad {
		return nil, nil, ErrCorrupt
	}
	return recon, dims, nil
}

// walk64 mirrors walk for float64 reconstruction arrays.
func walk64(dims []int, recon []float64, visit func(i int, pred float64)) {
	switch len(dims) {
	case 1:
		for i := 0; i < dims[0]; i++ {
			pred := 0.0
			if i > 0 {
				pred = recon[i-1]
			}
			visit(i, pred)
		}
	case 2:
		h, w := dims[0], dims[1]
		at := func(y, x int) float64 {
			if y < 0 || x < 0 {
				return 0
			}
			return recon[y*w+x]
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				visit(y*w+x, at(y-1, x)+at(y, x-1)-at(y-1, x-1))
			}
		}
	case 3:
		lorenzo3D64(dims[0], dims[1], dims[2], 0, recon, visit)
	case 4:
		vol := dims[1] * dims[2] * dims[3]
		for s := 0; s < dims[0]; s++ {
			lorenzo3D64(dims[1], dims[2], dims[3], s*vol, recon, visit)
		}
	}
}

func lorenzo3D64(d, h, w, base int, r []float64, visit func(int, float64)) {
	at := func(z, y, x int) float64 {
		if z < 0 || y < 0 || x < 0 {
			return 0
		}
		return r[base+(z*h+y)*w+x]
	}
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pred := at(z-1, y, x) + at(z, y-1, x) + at(z, y, x-1) -
					at(z-1, y-1, x) - at(z-1, y, x-1) - at(z, y-1, x-1) +
					at(z-1, y-1, x-1)
				visit(base+(z*h+y)*w+x, pred)
			}
		}
	}
}

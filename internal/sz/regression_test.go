package sz

import (
	"math"
	"math/rand"
	"testing"
)

// genGradient builds data that a plane fits perfectly within blocks.
func genGradient(h, w int) []float32 {
	out := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[y*w+x] = float32(3*x - 2*y + 10)
		}
	}
	return out
}

func TestRegressionRoundTrip(t *testing.T) {
	for _, pred := range []Predictor{PredRegression, PredAuto} {
		for _, dims := range [][]int{{900}, {30, 30}, {10, 9, 10}, {2, 5, 9, 10}} {
			data := gen3D(1, 30, 30, int64(len(dims)))
			for _, e := range []float64{1e-2, 1e-4} {
				comp, err := Compress(data, dims, e, Options{Predictor: pred})
				if err != nil {
					t.Fatalf("%v %v: %v", pred, dims, err)
				}
				dec, gotDims, err := Decompress(comp)
				if err != nil {
					t.Fatalf("%v %v: %v", pred, dims, err)
				}
				if len(gotDims) != len(dims) {
					t.Fatalf("dims %v", gotDims)
				}
				if got := maxErr(data, dec); got > e {
					t.Errorf("%v %v e=%g: max error %g", pred, dims, e, got)
				}
			}
		}
	}
}

func TestRegressionBeatsLorenzoOnPlanes(t *testing.T) {
	// Piecewise-linear data with additive noise: regression predicts it
	// almost exactly, Lorenzo pays for the noise twice.
	rng := rand.New(rand.NewSource(1))
	const h, w = 120, 120
	data := genGradient(h, w)
	for i := range data {
		data[i] += float32(0.5 * rng.NormFloat64())
	}
	e := 0.01
	cl, err := Compress(data, []int{h, w}, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Compress(data, []int{h, w}, e, Options{Predictor: PredRegression})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr) >= len(cl) {
		t.Errorf("regression (%d B) not smaller than Lorenzo (%d B) on planar data", len(cr), len(cl))
	}
	dec, _, err := Decompress(cr)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > e {
		t.Errorf("bound violated: %g", got)
	}
}

func TestAutoSelectsPerBlock(t *testing.T) {
	// Left half planar (regression-friendly), right half smooth sine
	// (Lorenzo-friendly): Auto should mix predictors.
	const h, w = 60, 120
	data := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				data[y*w+x] = float32(2*x + y)
			} else {
				data[y*w+x] = float32(50 * math.Sin(float64(x)/3) * math.Cos(float64(y)/3))
			}
		}
	}
	comp, err := Compress(data, []int{h, w}, 1e-3, Options{Predictor: PredAuto})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(data, dec); got > 1e-3 {
		t.Errorf("max error %g", got)
	}
	// Auto must not be (much) worse than the better single predictor.
	onlyL, _ := Compress(data, []int{h, w}, 1e-3, Options{})
	onlyR, _ := Compress(data, []int{h, w}, 1e-3, Options{Predictor: PredRegression})
	best := len(onlyL)
	if len(onlyR) < best {
		best = len(onlyR)
	}
	if len(comp) > best+best/10 {
		t.Errorf("auto %d B much worse than best single %d B", len(comp), best)
	}
}

func TestFitPlaneExact(t *testing.T) {
	// A pure plane must be fitted exactly (up to float rounding).
	const h, w = 12, 12
	data := genGradient(h, w)
	coeff := fitPlane(data, []int{w, 1}, 0, []int{h, w})
	if math.Abs(float64(coeff[0])-10) > 1e-4 ||
		math.Abs(float64(coeff[1])+2) > 1e-4 ||
		math.Abs(float64(coeff[2])-3) > 1e-4 {
		t.Errorf("coeff %v want [10 -2 3]", coeff)
	}
}

func TestFitPlaneDegenerateAxis(t *testing.T) {
	// An axis of extent 1 has zero variance; its slope must be 0.
	data := []float32{5, 6, 7, 8}
	coeff := fitPlane(data, []int{4, 1}, 0, []int{1, 4})
	if coeff[1] != 0 {
		t.Errorf("degenerate axis slope %v", coeff[1])
	}
	if math.Abs(float64(coeff[2])-1) > 1e-5 {
		t.Errorf("slope %v want 1", coeff[2])
	}
}

func TestRegressionCorrupt(t *testing.T) {
	data := gen2D(30, 30, 9)
	comp, err := Compress(data, []int{30, 30}, 1e-3, Options{Predictor: PredAuto})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(comp[:12]); err == nil {
		t.Error("short stream accepted")
	}
	for i := 0; i < len(comp); i += 13 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xFF
		_, _, _ = Decompress(c) // must not panic
	}
}

func TestLorenzoDeltas(t *testing.T) {
	// 2-D: pred = a[y-1][x] + a[y][x-1] - a[y-1][x-1].
	ds := lorenzoDeltas(2)
	if len(ds) != 3 {
		t.Fatalf("%d deltas", len(ds))
	}
	signSum := 0
	for _, d := range ds {
		signSum += d.sign
	}
	if signSum != 1 {
		t.Errorf("inclusion-exclusion signs sum to %d, want 1", signSum)
	}
	// 3-D has 7 terms summing to +1.
	ds3 := lorenzoDeltas(3)
	if len(ds3) != 7 {
		t.Fatalf("%d deltas", len(ds3))
	}
}

package sz

import "testing"

func FuzzDecompress(f *testing.F) {
	data := gen2D(20, 20, 1)
	comp, _ := Compress(data, []int{20, 20}, 1e-3, Options{})
	f.Add(comp)
	f.Add([]byte{})
	f.Add([]byte("SZ2G\x01\x02"))
	f.Fuzz(func(t *testing.T, comp []byte) {
		_, _, _ = Decompress(comp)
	})
}

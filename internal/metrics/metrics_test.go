package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeasureIdentical(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	d, err := Measure(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.MSE != 0 || d.MaxErr != 0 || !math.IsInf(d.PSNR, 1) {
		t.Errorf("identical data: %+v", d)
	}
	if d.ValueMin != 1 || d.ValueMax != 4 {
		t.Errorf("range: %+v", d)
	}
}

func TestMeasureKnown(t *testing.T) {
	a := []float32{0, 10}
	b := []float32{1, 9}
	d, err := Measure(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxErr != 1 || d.MSE != 1 || d.MeanErr != 1 {
		t.Errorf("%+v", d)
	}
	// PSNR = 20 log10(10/1) = 20.
	if math.Abs(d.PSNR-20) > 1e-9 {
		t.Errorf("PSNR = %v want 20", d.PSNR)
	}
}

func TestMeasureMismatch(t *testing.T) {
	if _, err := Measure([]float32{1}, []float32{1, 2}); err != ErrLengthMismatch {
		t.Errorf("got %v", err)
	}
}

func TestMeasureEmpty(t *testing.T) {
	if _, err := Measure(nil, nil); err != nil {
		t.Errorf("empty: %v", err)
	}
}

func TestSSIMIdentical(t *testing.T) {
	const h, w = 32, 32
	a := make([]float32, h*w)
	rng := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = float32(rng.Float64())
	}
	s, err := SSIM(a, a, h, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM(identical) = %v", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	const h, w = 64, 64
	rng := rand.New(rand.NewSource(2))
	a := make([]float32, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a[y*w+x] = float32(math.Sin(float64(x)/5) + math.Cos(float64(y)/7))
		}
	}
	mild := make([]float32, h*w)
	heavy := make([]float32, h*w)
	for i := range a {
		n := float32(rng.NormFloat64())
		mild[i] = a[i] + 0.01*n
		heavy[i] = a[i] + 0.5*n
	}
	sMild, err := SSIM(a, mild, h, w)
	if err != nil {
		t.Fatal(err)
	}
	sHeavy, err := SSIM(a, heavy, h, w)
	if err != nil {
		t.Fatal(err)
	}
	if !(sMild > sHeavy) {
		t.Errorf("SSIM ordering: mild %v <= heavy %v", sMild, sHeavy)
	}
	if sMild < 0.9 {
		t.Errorf("mild-noise SSIM %v < 0.9", sMild)
	}
	if sHeavy > 0.9 {
		t.Errorf("heavy-noise SSIM %v > 0.9", sHeavy)
	}
}

func TestSSIMErrors(t *testing.T) {
	if _, err := SSIM([]float32{1}, []float32{1, 2}, 1, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SSIM([]float32{1, 2}, []float32{1, 2}, 1, 2); err == nil {
		t.Error("window larger than field accepted")
	}
}

func TestErrorHistogram(t *testing.T) {
	orig := []float32{0, 0, 0, 0}
	rec := []float32{0.5, -0.5, 0.99, -2}
	h, err := ErrorHistogram(orig, rec, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Exceed != 1 {
		t.Errorf("Exceed = %d want 1 (the -2)", h.Exceed)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 3 {
		t.Errorf("binned %d want 3", sum)
	}
	pdf := h.PDF()
	var tot float64
	for _, p := range pdf {
		tot += p
	}
	if math.Abs(tot-0.75) > 1e-12 {
		t.Errorf("pdf total %v want 0.75", tot)
	}
}

func TestBlockRangeCDF(t *testing.T) {
	// Construct data: first half constant (rel range 0), second half a ramp
	// spanning the global range within each block.
	data := make([]float32, 1024)
	for i := 512; i < 1024; i++ {
		data[i] = float32(i % 64)
	}
	cdf := BlockRangeCDF(data, 64, []float64{0.0, 0.5, 1.0})
	if cdf[0] < 0.49 || cdf[0] > 0.51 {
		t.Errorf("cdf[0]=%v want ~0.5", cdf[0])
	}
	if cdf[2] != 1 {
		t.Errorf("cdf at 1.0 = %v want 1", cdf[2])
	}
	// Monotone non-decreasing.
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone: %v", cdf)
		}
	}
}

func TestBlockRangeCDFConstantData(t *testing.T) {
	cdf := BlockRangeCDF(make([]float32, 100), 8, []float64{0, 0.01})
	for _, v := range cdf {
		if v != 1 {
			t.Errorf("constant data CDF %v want all 1", cdf)
		}
	}
}

func TestValueRange(t *testing.T) {
	mn, mx := ValueRange([]float32{3, -1, 7, 2})
	if mn != -1 || mx != 7 {
		t.Errorf("got %v %v", mn, mx)
	}
	mn, mx = ValueRange(nil)
	if mn != 0 || mx != 0 {
		t.Errorf("empty: %v %v", mn, mx)
	}
}

func TestHarmonicMeanCR(t *testing.T) {
	// Two fields of 100 bytes compressed to 10 and 50: overall = 200/60.
	got := HarmonicMeanCR([]int{100, 100}, []int{10, 50})
	want := 200.0 / 60.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v want %v", got, want)
	}
	if HarmonicMeanCR(nil, nil) != 0 {
		t.Error("empty should be 0")
	}
}

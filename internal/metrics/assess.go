package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Assessment is a Z-checker-style compression quality report (the paper's
// §3 evaluation methodology cites Z-checker / cuZ-checker for exactly this
// battery of statistics).
type Assessment struct {
	N            int
	Distortion   Distortion
	NRMSE        float64 // RMSE / value range
	SNR          float64 // dB, signal variance over error variance
	PearsonR     float64 // correlation between original and reconstructed
	ErrAutoCorr1 float64 // lag-1 autocorrelation of the error signal
	ErrMean      float64 // signed mean error (bias)
	ErrStd       float64
}

// Assess computes the full quality battery for a reconstruction.
func Assess(orig, rec []float32) (Assessment, error) {
	d, err := Measure(orig, rec)
	if err != nil {
		return Assessment{}, err
	}
	a := Assessment{N: len(orig), Distortion: d}
	if len(orig) == 0 {
		return a, nil
	}

	n := float64(len(orig))
	var sumO, sumR, sumE float64
	for i := range orig {
		sumO += float64(orig[i])
		sumR += float64(rec[i])
		sumE += float64(orig[i]) - float64(rec[i])
	}
	meanO, meanR := sumO/n, sumR/n
	a.ErrMean = sumE / n

	var varO, varR, cov, varE float64
	for i := range orig {
		do := float64(orig[i]) - meanO
		dr := float64(rec[i]) - meanR
		e := float64(orig[i]) - float64(rec[i]) - a.ErrMean
		varO += do * do
		varR += dr * dr
		cov += do * dr
		varE += e * e
	}
	varO /= n
	varR /= n
	cov /= n
	varE /= n
	a.ErrStd = math.Sqrt(varE)

	if varO > 0 && varR > 0 {
		a.PearsonR = cov / math.Sqrt(varO*varR)
	} else if varO == varR {
		a.PearsonR = 1
	}
	rng := d.ValueMax - d.ValueMin
	if rng > 0 {
		a.NRMSE = math.Sqrt(d.MSE) / rng
	}
	if d.MSE > 0 && varO > 0 {
		a.SNR = 10 * math.Log10(varO/d.MSE)
	} else if d.MSE == 0 {
		a.SNR = math.Inf(1)
	}
	a.ErrAutoCorr1 = errAutoCorr(orig, rec, a.ErrMean, varE)
	return a, nil
}

// errAutoCorr computes the lag-1 autocorrelation of the signed error —
// Z-checker's indicator of spatially correlated compression artifacts
// (near 0 = white, near 1 = smeared/structured error).
func errAutoCorr(orig, rec []float32, mean, variance float64) float64 {
	if len(orig) < 2 || variance == 0 {
		return 0
	}
	var acc float64
	for i := 1; i < len(orig); i++ {
		e0 := float64(orig[i-1]) - float64(rec[i-1]) - mean
		e1 := float64(orig[i]) - float64(rec[i]) - mean
		acc += e0 * e1
	}
	return acc / (float64(len(orig)-1) * variance)
}

// String renders the assessment as a Z-checker-style report block.
func (a Assessment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "values            %d\n", a.N)
	fmt.Fprintf(&b, "value range       [%g, %g]\n", a.Distortion.ValueMin, a.Distortion.ValueMax)
	fmt.Fprintf(&b, "max abs error     %.6g\n", a.Distortion.MaxErr)
	fmt.Fprintf(&b, "mean abs error    %.6g\n", a.Distortion.MeanErr)
	fmt.Fprintf(&b, "error bias        %.6g\n", a.ErrMean)
	fmt.Fprintf(&b, "error std         %.6g\n", a.ErrStd)
	fmt.Fprintf(&b, "MSE               %.6g\n", a.Distortion.MSE)
	fmt.Fprintf(&b, "NRMSE             %.6g\n", a.NRMSE)
	fmt.Fprintf(&b, "PSNR              %.2f dB\n", a.Distortion.PSNR)
	fmt.Fprintf(&b, "SNR               %.2f dB\n", a.SNR)
	fmt.Fprintf(&b, "pearson R         %.6f\n", a.PearsonR)
	fmt.Fprintf(&b, "err autocorr lag1 %.4f\n", a.ErrAutoCorr1)
	return b.String()
}

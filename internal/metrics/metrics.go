// Package metrics implements the reconstruction-quality measures used in
// the SZx paper's evaluation: PSNR (Formula 7), SSIM, MSE, maximum error,
// compression-error histograms (Fig. 13), and the block relative-value-range
// CDF characterization behind Fig. 2.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when original and reconstructed slices
// differ in length.
var ErrLengthMismatch = errors.New("metrics: slice length mismatch")

// Distortion summarizes pointwise reconstruction quality.
type Distortion struct {
	MSE      float64
	PSNR     float64 // dB, per the paper's Formula 7 (range-based)
	MaxErr   float64
	MeanErr  float64
	ValueMin float64
	ValueMax float64
}

// Measure computes pointwise distortion between original and reconstructed
// data. PSNR uses the dataset value range, matching the paper.
func Measure(orig, rec []float32) (Distortion, error) {
	if len(orig) != len(rec) {
		return Distortion{}, ErrLengthMismatch
	}
	if len(orig) == 0 {
		return Distortion{}, nil
	}
	var d Distortion
	d.ValueMin = float64(orig[0])
	d.ValueMax = float64(orig[0])
	var sse, sae float64
	for i := range orig {
		o := float64(orig[i])
		if o < d.ValueMin {
			d.ValueMin = o
		}
		if o > d.ValueMax {
			d.ValueMax = o
		}
		e := o - float64(rec[i])
		if e < 0 {
			e = -e
		}
		if e > d.MaxErr {
			d.MaxErr = e
		}
		sae += e
		sse += e * e
	}
	n := float64(len(orig))
	d.MSE = sse / n
	d.MeanErr = sae / n
	rng := d.ValueMax - d.ValueMin
	switch {
	case d.MSE == 0:
		d.PSNR = math.Inf(1)
	case rng == 0:
		d.PSNR = 0
	default:
		d.PSNR = 20 * math.Log10(rng/math.Sqrt(d.MSE))
	}
	return d, nil
}

// SSIM computes the mean structural similarity index over an h×w 2-D field
// using the standard 8×8 sliding window (stride 8 for speed) and the usual
// K1=0.01, K2=0.03 stabilizers scaled by the data range.
func SSIM(orig, rec []float32, h, w int) (float64, error) {
	if len(orig) != len(rec) || len(orig) < h*w || h < 1 || w < 1 {
		return 0, ErrLengthMismatch
	}
	var mn, mx float64
	mn, mx = float64(orig[0]), float64(orig[0])
	for _, v := range orig[:h*w] {
		f := float64(v)
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	l := mx - mn
	if l == 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	const win = 8
	var sum float64
	var count int
	for y := 0; y+win <= h; y += win {
		for x := 0; x+win <= w; x += win {
			var ma, mb float64
			for dy := 0; dy < win; dy++ {
				row := (y + dy) * w
				for dx := 0; dx < win; dx++ {
					ma += float64(orig[row+x+dx])
					mb += float64(rec[row+x+dx])
				}
			}
			nw := float64(win * win)
			ma /= nw
			mb /= nw
			var va, vb, cov float64
			for dy := 0; dy < win; dy++ {
				row := (y + dy) * w
				for dx := 0; dx < win; dx++ {
					da := float64(orig[row+x+dx]) - ma
					db := float64(rec[row+x+dx]) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= nw - 1
			vb /= nw - 1
			cov /= nw - 1
			s := ((2*ma*mb + c1) * (2*cov + c2)) /
				((ma*ma + mb*mb + c1) * (va + vb + c2))
			sum += s
			count++
		}
	}
	if count == 0 {
		return 0, ErrLengthMismatch
	}
	return sum / float64(count), nil
}

// Histogram is a binned distribution of compression errors (orig - rec),
// the Fig. 13 PDF. Bins span [-Bound, +Bound].
type Histogram struct {
	Bound  float64
	Counts []int
	Total  int
	// Exceed counts errors outside ±Bound (must be 0 for a correct
	// error-bounded compressor).
	Exceed int
}

// ErrorHistogram bins the signed errors into 2*half bins over [-bound, bound].
func ErrorHistogram(orig, rec []float32, bound float64, bins int) (Histogram, error) {
	if len(orig) != len(rec) {
		return Histogram{}, ErrLengthMismatch
	}
	if bins < 2 {
		bins = 2
	}
	h := Histogram{Bound: bound, Counts: make([]int, bins), Total: len(orig)}
	for i := range orig {
		e := float64(orig[i]) - float64(rec[i])
		if e < -bound || e > bound || math.IsNaN(e) {
			h.Exceed++
			continue
		}
		// Map [-bound, bound] -> [0, bins).
		idx := int((e + bound) / (2 * bound) * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
	}
	return h, nil
}

// PDF returns the normalized densities of the histogram.
func (h Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// BlockRangeCDF computes the cumulative distribution of per-block relative
// value ranges (block range / global range) for the given block size — the
// characterization in the paper's Fig. 2. It returns the fraction of blocks
// whose relative range is ≤ each threshold.
func BlockRangeCDF(data []float32, blockSize int, thresholds []float64) []float64 {
	if blockSize < 1 || len(data) == 0 {
		return make([]float64, len(thresholds))
	}
	gmin, gmax := data[0], data[0]
	for _, v := range data {
		if v < gmin {
			gmin = v
		}
		if v > gmax {
			gmax = v
		}
	}
	grange := float64(gmax) - float64(gmin)
	if grange == 0 {
		out := make([]float64, len(thresholds))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	var rels []float64
	for lo := 0; lo < len(data); lo += blockSize {
		hi := lo + blockSize
		if hi > len(data) {
			hi = len(data)
		}
		mn, mx := data[lo], data[lo]
		for _, v := range data[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		rels = append(rels, (float64(mx)-float64(mn))/grange)
	}
	sort.Float64s(rels)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		// Count of blocks with relative range <= t.
		idx := sort.SearchFloat64s(rels, math.Nextafter(t, math.Inf(1)))
		out[i] = float64(idx) / float64(len(rels))
	}
	return out
}

// ValueRange returns the global min and max of the data.
func ValueRange(data []float32) (mn, mx float64) {
	if len(data) == 0 {
		return 0, 0
	}
	mn, mx = float64(data[0]), float64(data[0])
	for _, v := range data {
		f := float64(v)
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	return mn, mx
}

// HarmonicMeanCR aggregates per-field compression ratios the way the paper
// reports an application's "overall" ratio: total original bytes divided by
// total compressed bytes (equivalently a weighted harmonic mean).
func HarmonicMeanCR(origBytes, compBytes []int) float64 {
	var o, c int
	for i := range origBytes {
		o += origBytes[i]
		c += compBytes[i]
	}
	if c == 0 {
		return 0
	}
	return float64(o) / float64(c)
}

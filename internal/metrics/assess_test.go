package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestAssessIdentical(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	as, err := Assess(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if as.Distortion.MaxErr != 0 || as.ErrMean != 0 || as.ErrStd != 0 {
		t.Errorf("%+v", as)
	}
	if math.Abs(as.PearsonR-1) > 1e-12 {
		t.Errorf("pearson %v", as.PearsonR)
	}
	if !math.IsInf(as.SNR, 1) {
		t.Errorf("SNR %v", as.SNR)
	}
}

func TestAssessKnownBias(t *testing.T) {
	orig := []float32{0, 0, 0, 0}
	rec := []float32{-1, -1, -1, -1} // error = orig-rec = +1 everywhere
	as, err := Assess(orig, rec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(as.ErrMean-1) > 1e-12 {
		t.Errorf("bias %v want 1", as.ErrMean)
	}
	if as.ErrStd != 0 {
		t.Errorf("std %v want 0", as.ErrStd)
	}
}

func TestAssessWhiteVsCorrelatedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	orig := make([]float32, n)
	white := make([]float32, n)
	smear := make([]float32, n)
	carry := 0.0
	for i := range orig {
		orig[i] = float32(math.Sin(float64(i) / 100))
		e := rng.NormFloat64() * 1e-3
		white[i] = orig[i] + float32(e)
		carry = 0.95*carry + e // strongly autocorrelated error
		smear[i] = orig[i] + float32(carry)
	}
	aw, err := Assess(orig, white)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Assess(orig, smear)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aw.ErrAutoCorr1) > 0.1 {
		t.Errorf("white error autocorr %v, want ~0", aw.ErrAutoCorr1)
	}
	if ac.ErrAutoCorr1 < 0.7 {
		t.Errorf("smeared error autocorr %v, want high", ac.ErrAutoCorr1)
	}
	if aw.PearsonR < 0.999 {
		t.Errorf("pearson %v", aw.PearsonR)
	}
}

func TestAssessSNRAndNRMSE(t *testing.T) {
	// Signal with variance 1, error with std 0.1 -> SNR ~ 20 dB.
	rng := rand.New(rand.NewSource(2))
	n := 50000
	orig := make([]float32, n)
	rec := make([]float32, n)
	for i := range orig {
		orig[i] = float32(rng.NormFloat64())
		rec[i] = orig[i] + float32(0.1*rng.NormFloat64())
	}
	as, err := Assess(orig, rec)
	if err != nil {
		t.Fatal(err)
	}
	if as.SNR < 18 || as.SNR > 22 {
		t.Errorf("SNR %v want ~20", as.SNR)
	}
	if as.NRMSE <= 0 || as.NRMSE > 0.05 {
		t.Errorf("NRMSE %v", as.NRMSE)
	}
}

func TestAssessMismatch(t *testing.T) {
	if _, err := Assess([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAssessEmpty(t *testing.T) {
	as, err := Assess(nil, nil)
	if err != nil || as.N != 0 {
		t.Errorf("%v %+v", err, as)
	}
}

func TestAssessString(t *testing.T) {
	a := []float32{1, 2, 3}
	as, _ := Assess(a, a)
	s := as.String()
	for _, want := range []string{"PSNR", "pearson", "autocorr", "NRMSE"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

package cuszx

// GPU stream compaction — the final step of the paper's Fig. 9: the
// per-data-block payloads sit in fixed-stride scratch after the compression
// kernel, and a prefix sum over their sizes drives a gather that packs them
// into the contiguous output stream ("Record the compressed data size").

import (
	"repro/internal/cusim"
)

// gpuCompact scatters the variable-size block payloads from fixed-stride
// scratch into a contiguous buffer on the simulated device. sizes[k] is
// block k's payload length; stride is the scratch slot size. It returns
// the packed payload, the per-block offsets (exclusive prefix sum, with
// the total appended), and the launch metrics.
func gpuCompact(scratch []byte, sizes []uint16, stride, gridDim int) ([]byte, []int, cusim.Metrics) {
	nb := len(sizes)
	offs := make([]int, nb+1)
	var total cusim.Metrics
	if nb == 0 {
		return nil, offs, total
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	const tile = 256
	nTiles := (nb + tile - 1) / tile
	launchGrid := gridDim
	if launchGrid > nTiles {
		launchGrid = nTiles
	}

	// Phase 1: scan the sizes into offsets (same structure as
	// GPUBlockOffsets, but over the in-memory sizes array).
	tileTotals := make([]int64, nTiles)
	m := cusim.Launch(launchGrid, tile, func(t *cusim.Thread) {
		for tileIdx := t.BlockIdx; tileIdx < nTiles; tileIdx += t.GridDim {
			base := tileIdx * tile
			v := 0
			if base+t.ThreadIdx < nb {
				v = int(sizes[base+t.ThreadIdx])
				t.AddGlobalBytes(2)
			}
			ex := blockExclusiveScan(t, v)
			if base+t.ThreadIdx < nb {
				offs[base+t.ThreadIdx] = ex // tile-local for now
				t.AddGlobalBytes(8)
			}
			if t.ThreadIdx == tile-1 {
				tileTotals[tileIdx] = int64(ex + v)
			}
			t.SyncThreads()
		}
	})
	total.Add(m)
	// Tile offsets (host-side scan of nTiles values: O(nb/256) trivial work
	// the device version of which GPUBlockOffsets already demonstrates).
	run := 0
	tileOff := make([]int, nTiles)
	for i := 0; i < nTiles; i++ {
		tileOff[i] = run
		run += int(tileTotals[i])
	}
	for k := 0; k < nb; k++ {
		offs[k] += tileOff[k/tile]
	}
	offs[nb] = run

	// Phase 2: gather. One thread block per data block; threads copy the
	// payload bytes coalesced.
	out := make([]byte, run)
	copyGrid := gridDim
	if copyGrid > nb {
		copyGrid = nb
	}
	m = cusim.Launch(copyGrid, tile, func(t *cusim.Thread) {
		for k := t.BlockIdx; k < nb; k += t.GridDim {
			src := k * stride
			dst := offs[k]
			n := int(sizes[k])
			for i := t.ThreadIdx; i < n; i += t.BlockDim {
				out[dst+i] = scratch[src+i]
			}
			if t.ThreadIdx == 0 {
				t.AddGlobalBytes(2 * n)
			}
		}
	})
	total.Add(m)
	return out, offs, total
}

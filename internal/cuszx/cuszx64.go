package cuszx

// Float64 variants of the cuSZx kernels. The paper's in-memory motivation
// (full-state quantum-circuit simulation, §1) operates on double-precision
// state vectors, so the GPU path supports float64 with the same design:
// identical-leading-byte codes still cap at 3 (2 bits), mid-byte counts
// reach 8 per value, and the index propagation runs over up to 8 byte
// positions. Streams are bit-identical to core.CompressFloat64.

import (
	"encoding/binary"
	"math"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/cusim"
	"repro/internal/ieee"
)

// CompressFloat64 compresses data with the float64 cuSZx kernel, returning
// a stream bit-identical to core.CompressFloat64 plus simulated metrics.
func CompressFloat64(data []float64, errBound float64, opts core.Options, gridDim int) ([]byte, cusim.Metrics, error) {
	bs := opts.BlockSize
	if bs == 0 {
		bs = core.DefaultBlockSize
	}
	if bs%cusim.WarpSize != 0 || bs > 1024 {
		return nil, cusim.Metrics{}, ErrBlockSize
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, cusim.Metrics{}, core.ErrErrBound
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	h := core.Header{Type: core.TypeFloat64, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	if nb == 0 {
		out := core.AppendHeader(nil, h)
		return out, cusim.Metrics{}, nil
	}
	if gridDim > nb {
		gridDim = nb
	}

	maxPayload := 9 + bitio.PackedLen(bs) + 8*bs
	scratch := make([]byte, nb*maxPayload)
	sizes := make([]uint16, nb)
	nonConst := make([]bool, nb)
	guarded := !opts.Unguarded
	errExpo := ieee.Exponent64(errBound)

	m := cusim.Launch(gridDim, bs, func(t *cusim.Thread) {
		tid := t.ThreadIdx
		for k := t.BlockIdx; k < nb; k += t.GridDim {
			lo := k * bs
			cnt := len(data) - lo
			if cnt > bs {
				cnt = bs
			}
			var d float64
			if tid < cnt {
				d = data[lo+tid]
				t.AddGlobalBytes(8)
			}

			mn, mx := math.Inf(1), math.Inf(-1)
			if tid < cnt {
				mn, mx = d, d
			}
			mn, mx = blockMinMax(t, mn, mx)

			meta := t.SharedF64("meta64", 2)
			flags := t.SharedU64("flags64", 2)
			if tid == 0 {
				// Same formula as the serial codec (blockStats64).
				mu := mn/2 + mx/2
				radius := mx - mu
				if b := mu - mn; b > radius {
					radius = b
				}
				meta[0] = mu
				meta[1] = radius
				constant := uint64(0)
				if radius <= errBound {
					constant = 1
				}
				flags[0] = constant
				reqLen, lossless := ieee.ReqLength64(ieee.Exponent64(radius), errExpo)
				lv := uint64(0)
				if lossless {
					lv = 1
				}
				flags[1] = uint64(reqLen)<<1 | lv
				t.AddOps(12)
			}
			t.SyncThreads()
			base := k * maxPayload
			if flags[0] == 1 {
				if tid == 0 {
					binary.LittleEndian.PutUint64(scratch[base:], math.Float64bits(meta[0]))
					sizes[k] = 8
					nonConst[k] = false
					t.AddGlobalBytes(8)
				}
				t.SyncThreads()
				continue
			}

			reqLen := int(flags[1] >> 1)
			lossless := flags[1]&1 == 1
			mu := meta[0]
			viol := t.SharedU64("viol64", 1)
			for {
				if lossless {
					mu = 0
				}
				s := uint(ieee.ShiftBits(reqLen))
				reqBytes := (reqLen + int(s)) / 8
				keepMask := ^uint64(0)
				if reqLen < 64 {
					keepMask <<= uint(64 - reqLen)
				}

				if tid == 0 {
					viol[0] = 0
				}
				t.SyncThreads()
				var w, prev uint64
				if tid < cnt {
					v := d - mu
					w = math.Float64bits(v) >> s
					if tid > 0 {
						prev = math.Float64bits(data[lo+tid-1]-mu) >> s
						t.AddGlobalBytes(8)
					}
					if guarded && !lossless {
						trunc := math.Float64frombits(math.Float64bits(v) & keepMask)
						rec := trunc + mu
						if diff := math.Abs(d - rec); !(diff <= errBound) {
							t.AtomicOrU64(viol, 0, 1)
						}
					}
					t.AddOps(10)
				}
				t.SyncThreads()
				if viol[0] == 1 {
					reqLen += 8
					if reqLen >= ieee.FullBits64 {
						reqLen = ieee.FullBits64
						lossless = true
					}
					t.SyncThreads()
					continue
				}

				lead := 0
				mid := 0
				if tid < cnt {
					lead = bitio.LeadingZeroBytes64(w ^ prev)
					if lead > reqBytes {
						lead = reqBytes
					}
					mid = reqBytes - lead
					t.AddOps(4)
				}

				leads := t.SharedBytes("leads64", bs)
				leads[tid] = byte(lead)

				off := blockExclusiveScan(t, mid)
				total := t.SharedU64("midtotal64", 1)
				if tid == bs-1 {
					total[0] = uint64(off + mid)
				}
				t.SyncThreads()

				midBase := base + 9 + bitio.PackedLen(cnt)
				for j := lead; j < reqBytes && tid < cnt; j++ {
					scratch[midBase+off+j-lead] = byte(w >> uint(8*(7-j)))
				}
				if tid < cnt {
					t.AddGlobalBytes(mid)
				}
				if tid < bitio.PackedLen(cnt) {
					var b byte
					for q := 0; q < 4; q++ {
						i := 4*tid + q
						if i < cnt {
							b |= leads[i] << uint(6-2*q)
						}
					}
					scratch[base+9+tid] = b
					t.AddGlobalBytes(1)
				}
				if tid == 0 {
					binary.LittleEndian.PutUint64(scratch[base:], math.Float64bits(mu))
					scratch[base+8] = byte(reqLen)
					sizes[k] = uint16(9 + bitio.PackedLen(cnt) + int(total[0]))
					nonConst[k] = true
					t.AddGlobalBytes(11)
				}
				t.SyncThreads()
				break
			}
		}
	})

	// Device-side compaction, as in the float32 path.
	payload, _, cm := gpuCompact(scratch, sizes, maxPayload, gridDim)
	m.Add(cm)
	out := make([]byte, 0, 28+(nb+7)/8+2*nb+len(payload))
	out = core.AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)
	for k := 0; k < nb; k++ {
		binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], sizes[k])
		if nonConst[k] {
			out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		}
	}
	out = append(out, payload...)
	return out, m, nil
}

// DecompressFloat64 reconstructs values from an SZx float64 stream with the
// simulated GPU kernel, bit-identical to core.DecompressFloat64.
func DecompressFloat64(comp []byte, gridDim int) ([]float64, cusim.Metrics, error) {
	si, err := core.ParseStream(comp)
	if err != nil {
		return nil, cusim.Metrics{}, err
	}
	if si.Hdr.Type != core.TypeFloat64 {
		return nil, cusim.Metrics{}, core.ErrWrongType
	}
	bs := si.Hdr.BlockSize
	if bs%cusim.WarpSize != 0 || bs > 1024 {
		return nil, cusim.Metrics{}, ErrBlockSize
	}
	// The paper's Fig. 10 performs the zsize prefix sum on the device;
	// run the simulated scan kernel and fold its cost into the metrics.
	offs, scanM, err := GPUBlockOffsets(si, gridDim)
	if err != nil {
		return nil, scanM, err
	}
	nb := si.Hdr.NumBlocks()
	out := make([]float64, si.Hdr.N)
	if nb == 0 {
		return out, cusim.Metrics{}, nil
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	if gridDim > nb {
		gridDim = nb
	}

	derrs := make([]error, gridDim)
	m := cusim.Launch(gridDim, bs, func(t *cusim.Thread) {
		tid := t.ThreadIdx
		for k := t.BlockIdx; k < nb; k += t.GridDim {
			lo := k * bs
			cnt := len(out) - lo
			if cnt > bs {
				cnt = bs
			}
			p := si.Payload[offs[k]:offs[k+1]]
			if !si.IsNonConstant(k) {
				if len(p) < 8 {
					derrs[t.BlockIdx] = core.ErrCorrupt
					return
				}
				mu := math.Float64frombits(binary.LittleEndian.Uint64(p))
				if tid < cnt {
					out[lo+tid] = mu
					t.AddGlobalBytes(8)
				}
				continue
			}
			leadLen := bitio.PackedLen(cnt)
			if len(p) < 9+leadLen {
				derrs[t.BlockIdx] = core.ErrCorrupt
				return
			}
			mu := math.Float64frombits(binary.LittleEndian.Uint64(p))
			reqLen := int(p[8])
			if reqLen < ieee.SignExpBits64 || reqLen > ieee.FullBits64 {
				derrs[t.BlockIdx] = core.ErrCorrupt
				return
			}
			s := uint(ieee.ShiftBits(reqLen))
			reqBytes := (reqLen + int(s)) / 8
			lossless := reqLen == ieee.FullBits64
			mids := p[9+leadLen:]

			bad := false
			lead := reqBytes
			if tid < cnt {
				lead = int(p[9+(tid>>2)]>>uint(6-2*(tid&3))) & 3
				if lead > reqBytes {
					bad = true
					lead = reqBytes
				}
				t.AddGlobalBytes(1)
			}
			mid := reqBytes - lead

			off := blockExclusiveScan(t, mid)
			if tid < cnt && off+mid > len(mids) {
				bad = true
			}
			badFlag := t.SharedU64("bad64", 1)
			if tid == 0 {
				badFlag[0] = 0
			}
			t.SyncThreads()
			if bad {
				t.AtomicOrU64(badFlag, 0, 1)
			}
			t.SyncThreads()
			if badFlag[0] != 0 {
				if tid == 0 {
					derrs[t.BlockIdx] = core.ErrCorrupt
				}
				return
			}

			words := t.SharedU64("words64", bs)
			leadsSh := t.SharedBytes("dleads64", bs)
			var w uint64
			if tid < cnt {
				for j := lead; j < reqBytes; j++ {
					w |= uint64(mids[off+j-lead]) << uint(8*(7-j))
				}
				t.AddGlobalBytes(mid)
			}
			words[tid] = w
			leadsSh[tid] = byte(lead)
			t.SyncThreads()

			// Index propagation over up to 8 byte positions; only the
			// first 3 can be leading bytes (2-bit code), but chains are
			// resolved generically per position.
			for j := 0; j < reqBytes; j++ {
				own := 0
				if tid < cnt && j >= int(leadsSh[tid]) {
					own = tid + 1
				}
				src := blockInclusiveMaxScan64(t, own, j)
				if tid < cnt && j < int(leadsSh[tid]) {
					var b byte
					if src > 0 {
						b = byte(words[src-1] >> uint(8*(7-j)))
					}
					w |= uint64(b) << uint(8*(7-j))
				}
				t.AddOps(3)
			}

			if tid < cnt {
				if lossless {
					out[lo+tid] = math.Float64frombits(w)
				} else {
					out[lo+tid] = math.Float64frombits(w<<s) + mu
				}
				t.AddGlobalBytes(8)
				t.AddOps(3)
			}
			t.SyncThreads()
		}
	})
	m.Add(scanM)
	for _, e := range derrs {
		if e != nil {
			return nil, m, e
		}
	}
	return out, m, nil
}

// blockInclusiveMaxScan64 is blockInclusiveMaxScan with scratch for up to
// 8 byte positions.
func blockInclusiveMaxScan64(t *cusim.Thread, v int, slot int) int {
	m := uint64(v)
	for d := 1; d < cusim.WarpSize; d <<= 1 {
		o := t.ShuffleUp(m, d)
		if t.Lane() >= d && o > m {
			m = o
		}
		t.AddOps(1)
	}
	nw := (t.BlockDim + cusim.WarpSize - 1) / cusim.WarpSize
	wmaxs := t.SharedU64("maxscan64_wtot", nw*8)
	base := slot * nw
	if t.Lane() == t.WarpLanes()-1 {
		wmaxs[base+t.Warp()] = m
	}
	t.SyncThreads()
	if t.ThreadIdx == 0 {
		var run uint64
		for i := 0; i < nw; i++ {
			cur := wmaxs[base+i]
			wmaxs[base+i] = run
			if cur > run {
				run = cur
			}
			t.AddOps(1)
		}
	}
	t.SyncThreads()
	if p := wmaxs[base+t.Warp()]; p > m {
		m = p
	}
	t.SyncThreads()
	return int(m)
}

package cuszx

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cusim"
)

func genData(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := 5.0
	for i := range out {
		v += 0.1 * (rng.Float64() - 0.5)
		out[i] = float32(v + 2*math.Sin(float64(i)/40))
	}
	return out
}

func TestCompressBitIdenticalToSerial(t *testing.T) {
	for _, n := range []int{128, 1000, 4096, 12345} {
		for _, e := range []float64{1e-2, 1e-4} {
			data := genData(n, int64(n))
			want, err := core.CompressFloat32(data, e, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, m, err := Compress(data, e, core.Options{}, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d e=%g: GPU stream differs from serial (%d vs %d bytes)",
					n, e, len(got), len(want))
			}
			if m.Blocks == 0 || m.Ops == 0 {
				t.Errorf("n=%d: empty metrics %+v", n, m)
			}
		}
	}
}

func TestDecompressMatchesSerial(t *testing.T) {
	data := genData(10000, 7)
	comp, err := core.CompressFloat32(data, 1e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := Decompress(comp, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("value %d: GPU %v != serial %v", i, got[i], want[i])
		}
	}
	if m.Shuffles == 0 {
		t.Error("decompression used no shuffles?")
	}
}

func TestConstantBlocks(t *testing.T) {
	data := make([]float32, 2048)
	for i := range data {
		data[i] = 1.25
	}
	comp, _, err := Compress(data, 1e-3, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.CompressFloat32(data, 1e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp, want) {
		t.Fatal("constant-block stream differs")
	}
	dec, _, err := Decompress(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 1.25 {
			t.Fatalf("dec[%d]=%v", i, v)
		}
	}
}

func TestGuardRetryPath(t *testing.T) {
	// Large magnitude + tiny bound forces guard retries (possibly to the
	// lossless path); GPU must still match serial bit-for-bit.
	rng := rand.New(rand.NewSource(9))
	data := make([]float32, 3000)
	for i := range data {
		data[i] = float32(1e9 * (1 + 1e-4*rng.NormFloat64()))
	}
	for _, e := range []float64{1e-3, 1e-6} {
		want, err := core.CompressFloat32(data, e, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Compress(data, e, core.Options{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("e=%g: guarded stream differs", e)
		}
		dec, _, err := Decompress(got, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(float64(data[i])-float64(dec[i])) > e {
				t.Fatalf("e=%g: bound violated at %d", e, i)
			}
		}
	}
}

func TestTailBlock(t *testing.T) {
	// n not a multiple of the block size exercises the partial-count path.
	for _, n := range []int{129, 255, 383, 130} {
		data := genData(n, int64(n))
		want, err := core.CompressFloat32(data, 1e-3, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Compress(data, 1e-3, core.Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: tail-block stream differs", n)
		}
		dec, _, err := Decompress(got, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: decoded %d", n, len(dec))
		}
	}
}

func TestBlockSizes(t *testing.T) {
	data := genData(5000, 3)
	for _, bs := range []int{32, 64, 96, 128, 256} {
		want, err := core.CompressFloat32(data, 1e-3, core.Options{BlockSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Compress(data, 1e-3, core.Options{BlockSize: bs}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("bs=%d: stream differs", bs)
		}
	}
	if _, _, err := Compress(data, 1e-3, core.Options{BlockSize: 48}, 4); err != ErrBlockSize {
		t.Errorf("bs=48: %v", err)
	}
	if _, _, err := Compress(data, 1e-3, core.Options{BlockSize: 2048}, 4); err != ErrBlockSize {
		t.Errorf("bs=2048: %v", err)
	}
}

func TestUnguardedMode(t *testing.T) {
	data := genData(2000, 5)
	want, err := core.CompressFloat32(data, 1e-4, core.Options{Unguarded: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compress(data, 1e-4, core.Options{Unguarded: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unguarded stream differs")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := genData(2000, 6)
	comp, err := core.CompressFloat32(data, 1e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(comp[:10], 2); err == nil {
		t.Error("short stream accepted")
	}
	// Corrupt the lead/zsize region: must return an error, not hang.
	c := append([]byte(nil), comp...)
	for i := 30; i < 60 && i < len(c); i++ {
		c[i] = 0xFF
	}
	if _, _, err := Decompress(c, 2); err == nil {
		t.Log("corruption not detected (may decode to garbage); acceptable if bounded")
	}
}

func TestEmptyInput(t *testing.T) {
	comp, _, err := Compress(nil, 1e-3, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decompress(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d values", len(dec))
	}
}

func TestModelThroughputOrdering(t *testing.T) {
	// The simulated A100 should beat the simulated V100 on the same launch,
	// mirroring Fig. 14/15's device ordering.
	data := genData(50000, 8)
	_, m, err := Compress(data, 1e-3, core.Options{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	tA := cusim.A100.Model(m)
	tV := cusim.V100.Model(m)
	if !(tA < tV) {
		t.Errorf("A100 %g not faster than V100 %g", tA, tV)
	}
	bytesIn := float64(4 * len(data))
	if bytesIn/tA < 1e9 {
		t.Errorf("simulated A100 throughput %.1f GB/s implausibly low", bytesIn/tA/1e9)
	}
}

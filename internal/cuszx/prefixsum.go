package cuszx

// GPU prefix sum over the zsize array — the decompressor's first step in
// the paper's Fig. 10: before any thread block can read its data blocks,
// the per-block compressed sizes must be turned into starting offsets.
// This is the classic multi-block scan (Harris, Sengupta & Owens, the
// paper's reference [24]): each thread block scans a tile with two-level
// in-warp shuffles, tile totals are scanned, and the tile offsets are
// added back.

import (
	"repro/internal/core"
	"repro/internal/cusim"
)

// GPUBlockOffsets computes the exclusive prefix sum of the stream's zsize
// array on the simulated device and returns the nb+1 block offsets
// (identical to core.Index.BlockOffsets) plus the launch metrics.
func GPUBlockOffsets(si core.Index, gridDim int) ([]int, cusim.Metrics, error) {
	nb := si.Hdr.NumBlocks()
	offs := make([]int, nb+1)
	if nb == 0 {
		return offs, cusim.Metrics{}, nil
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	const tile = 256 // threads per block = elements per tile
	nTiles := (nb + tile - 1) / tile
	if gridDim > nTiles {
		gridDim = nTiles
	}

	// Phase 1: per-tile inclusive scans; tileTotals[t] = sum of tile t.
	incl := make([]int64, nb)
	tileTotals := make([]int64, nTiles)
	var total cusim.Metrics
	m := cusim.Launch(gridDim, tile, func(t *cusim.Thread) {
		for tileIdx := t.BlockIdx; tileIdx < nTiles; tileIdx += t.GridDim {
			base := tileIdx * tile
			v := 0
			if base+t.ThreadIdx < nb {
				v = si.BlockSizeBytes(base + t.ThreadIdx)
				t.AddGlobalBytes(2)
			}
			s := blockExclusiveScan(t, v) + v // inclusive
			if base+t.ThreadIdx < nb {
				incl[base+t.ThreadIdx] = int64(s)
				t.AddGlobalBytes(8)
			}
			if t.ThreadIdx == tile-1 {
				tileTotals[tileIdx] = int64(s)
				t.AddGlobalBytes(8)
			}
			t.SyncThreads()
		}
	})
	total.Add(m)

	// Phase 2: scan the tile totals (single block, grid-stride
	// Hillis-Steele rounds through shared memory when nTiles > tile).
	tileOffsets := make([]int64, nTiles)
	if nTiles > 1 {
		m = cusim.Launch(1, tile, func(t *cusim.Thread) {
			// Sequential-of-parallel: each pass scans one tile of tile
			// totals and carries the running sum forward (thread 0 owns
			// the carry through shared memory).
			carry := t.SharedU64("carry", 1)
			if t.ThreadIdx == 0 {
				carry[0] = 0
			}
			t.SyncThreads()
			for base := 0; base < nTiles; base += tile {
				v := 0
				if base+t.ThreadIdx < nTiles {
					v = int(tileTotals[base+t.ThreadIdx])
				}
				ex := blockExclusiveScan(t, v)
				if base+t.ThreadIdx < nTiles {
					tileOffsets[base+t.ThreadIdx] = int64(ex) + int64(carry[0])
					t.AddGlobalBytes(8)
				}
				t.SyncThreads()
				if t.ThreadIdx == tile-1 {
					carry[0] += uint64(ex + v)
				}
				t.SyncThreads()
			}
		})
		total.Add(m)
	}

	// Phase 3: add tile offsets back to produce the exclusive global scan.
	m = cusim.Launch(gridDim, tile, func(t *cusim.Thread) {
		for tileIdx := t.BlockIdx; tileIdx < nTiles; tileIdx += t.GridDim {
			i := tileIdx*tile + t.ThreadIdx
			if i < nb {
				ex := incl[i] - int64(si.BlockSizeBytes(i)) // back to exclusive
				offs[i] = int(ex + tileOffsets[tileIdx])
				t.AddGlobalBytes(10)
				t.AddOps(2)
			}
		}
	})
	total.Add(m)

	offs[nb] = int(tileOffsets[nTiles-1] + tileTotals[nTiles-1])
	if offs[nb] > len(si.Payload) {
		return nil, total, core.ErrCorrupt
	}
	return offs, total, nil
}

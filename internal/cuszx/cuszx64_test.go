package cuszx

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func genData64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := -2.0
	for i := range out {
		v += 0.05 * (rng.Float64() - 0.5)
		out[i] = v + math.Cos(float64(i)/70)
	}
	return out
}

func TestCompress64BitIdentical(t *testing.T) {
	for _, n := range []int{128, 1000, 9999} {
		for _, e := range []float64{1e-3, 1e-8} {
			data := genData64(n, int64(n))
			want, err := core.CompressFloat64(data, e, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, m, err := CompressFloat64(data, e, core.Options{}, 6)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d e=%g: GPU f64 stream differs", n, e)
			}
			if m.Ops == 0 {
				t.Error("no counted work")
			}
		}
	}
}

func TestDecompress64MatchesSerial(t *testing.T) {
	data := genData64(7000, 3)
	comp, err := core.CompressFloat64(data, 1e-7, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFloat64(comp, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("value %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	// Bound holds.
	for i := range data {
		if math.Abs(data[i]-got[i]) > 1e-7 {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestCompress64GuardRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = 1e15 * (1 + 1e-6*rng.NormFloat64())
	}
	want, err := core.CompressFloat64(data, 1e-4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := CompressFloat64(data, 1e-4, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("guard-retry f64 stream differs")
	}
}

func TestCompress64Constant(t *testing.T) {
	data := make([]float64, 1500)
	for i := range data {
		data[i] = -7.5
	}
	got, _, err := CompressFloat64(data, 1e-3, core.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressFloat64(got, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != -7.5 {
			t.Fatalf("dec[%d]=%v", i, v)
		}
	}
}

func TestCompress64Tail(t *testing.T) {
	for _, n := range []int{129, 130, 257} {
		data := genData64(n, int64(n))
		want, err := core.CompressFloat64(data, 1e-5, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := CompressFloat64(data, 1e-5, core.Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: tail f64 stream differs", n)
		}
	}
}

func TestDecompress64WrongType(t *testing.T) {
	data := genData(500, 1)
	comp, err := core.CompressFloat32(data, 1e-3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressFloat64(comp, 2); err != core.ErrWrongType {
		t.Fatalf("got %v", err)
	}
}

// Package cuszx implements the cuSZx GPU compression and decompression
// kernels of the SZx paper (§6.2) on the cusim SIMT simulator.
//
// The kernels follow the paper's design exactly:
//
//   - One thread block processes one SZx data block at a time, iterating
//     grid-stride over all data blocks (mitigating load imbalance from
//     constant blocks, §6.2.1).
//   - μ and the variation radius come from warp-level min/max shuffle
//     reductions combined across warps through shared memory.
//   - Mid-byte output addresses are found with a two-level in-warp shuffle
//     prefix scan (Solution 1 for Challenge 1).
//   - Compression breaks the previous-value dependency by each thread
//     reading both its own and the preceding data point from the input
//     (depth-1 dependency, Solution 2).
//   - Decompression resolves leading-byte dependence chains with the
//     recursive-doubling index propagation of Fig. 11 (Solution 2 for the
//     RAW hazard), one propagation per byte position.
//
// Both element types run the same generic kernel (the float64 path the
// paper's quantum-simulation motivation needs is an instantiation, not a
// copy). The streams produced and consumed are bit-identical to the serial
// CPU codec in internal/core — verified by tests — so cuSZx "preserves the
// same compression ratio as SZx" exactly as the paper states.
package cuszx

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/bitio"
	"repro/internal/core"
	"repro/internal/cusim"
	"repro/internal/ieee"
)

// ErrBlockSize is returned when the block size is unsuitable for the GPU
// layout: it must be a multiple of the warp size, at most 1024 (CUDA's
// thread-block limit).
var ErrBlockSize = errors.New("cuszx: block size must be a multiple of 32, ≤ 1024")

// DefaultGridDim is the default number of simulated thread blocks, enough
// to keep every SM of the modeled devices busy.
const DefaultGridDim = 216

// compress is the generic cuSZx compression kernel. The returned stream is
// bit-identical to the serial codec's for the same options.
func compress[T ieee.Float, B ieee.Word](data []T, errBound float64, opts core.Options, gridDim int) ([]byte, cusim.Metrics, error) {
	es := ieee.Width[T]()
	dtype := core.TypeFloat32
	if es == 8 {
		dtype = core.TypeFloat64
	}
	bs := opts.BlockSize
	if bs == 0 {
		bs = core.DefaultBlockSize
	}
	if bs%cusim.WarpSize != 0 || bs > 1024 {
		return nil, cusim.Metrics{}, ErrBlockSize
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, cusim.Metrics{}, core.ErrErrBound
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	h := core.Header{Type: dtype, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	if nb == 0 {
		out := core.AppendHeader(nil, h)
		return out, cusim.Metrics{}, nil
	}
	if gridDim > nb {
		gridDim = nb
	}

	maxPayload := es + 1 + bitio.PackedLen(bs) + es*bs
	scratch := make([]byte, nb*maxPayload)
	sizes := make([]uint16, nb)
	nonConst := make([]bool, nb)
	guarded := !opts.Unguarded
	errExpo := ieee.Exponent64(errBound)

	m := cusim.Launch(gridDim, bs, func(t *cusim.Thread) {
		tid := t.ThreadIdx
		for k := t.BlockIdx; k < nb; k += t.GridDim {
			lo := k * bs
			cnt := len(data) - lo
			if cnt > bs {
				cnt = bs
			}
			var d T
			if tid < cnt {
				d = data[lo+tid]
				t.AddGlobalBytes(es)
			}

			// --- μ and radius via warp + shared-memory reduction ---------
			mn, mx := math.Inf(1), math.Inf(-1)
			if tid < cnt {
				mn = float64(d)
				mx = mn
			}
			mn, mx = blockMinMax(t, mn, mx)

			meta := t.SharedF64("meta", 2)
			flags := t.SharedU64("flags", 2)
			if tid == 0 {
				// Same per-width μ formulas as the serial codec
				// (core.blockStats): float32 rounds the float64 midpoint,
				// float64 halves before adding.
				var mu T
				if es == 4 {
					mu = T(float32((mn + mx) / 2))
				} else {
					mu = T(mn/2 + mx/2)
				}
				radius := mx - float64(mu)
				if b := float64(mu) - mn; b > radius {
					radius = b
				}
				meta[0] = float64(mu)
				meta[1] = radius
				constant := uint64(0)
				if radius <= errBound {
					constant = 1
				}
				flags[0] = constant
				reqLen, lossless := ieee.ReqLength[T](ieee.Exponent64(radius), errExpo)
				lv := uint64(0)
				if lossless {
					lv = 1
				}
				flags[1] = uint64(reqLen)<<1 | lv
				t.AddOps(12)
			}
			t.SyncThreads()
			base := k * maxPayload
			if flags[0] == 1 {
				if tid == 0 {
					ieee.PutLE(scratch[base:], ieee.ToBits[B](T(meta[0])))
					sizes[k] = uint16(es)
					nonConst[k] = false
					t.AddGlobalBytes(es)
				}
				t.SyncThreads() // shared meta stays readable until all pass
				continue
			}

			// --- nonconstant path with the serial codec's guard retry ----
			reqLen := int(flags[1] >> 1)
			lossless := flags[1]&1 == 1
			mu := T(meta[0])
			viol := t.SharedU64("viol", 1)
			for {
				if lossless {
					mu = 0
				}
				s := uint(ieee.ShiftBits(reqLen))
				reqBytes := (reqLen + int(s)) / 8
				keepMask := ^B(0)
				if reqLen < 8*es {
					keepMask <<= uint(8*es - reqLen)
				}

				if tid == 0 {
					viol[0] = 0
				}
				t.SyncThreads()
				var w, prev B
				if tid < cnt {
					v := d - mu
					w = ieee.ToBits[B](v) >> s
					if tid > 0 {
						// Depth-1 dependency: read the preceding input
						// point directly (Solution 2, compression side).
						prev = ieee.ToBits[B](data[lo+tid-1]-mu) >> s
						t.AddGlobalBytes(es)
					}
					if guarded && !lossless {
						trunc := ieee.FromBits[T](ieee.ToBits[B](v) & keepMask)
						rec := trunc + mu
						if diff := math.Abs(float64(d) - float64(rec)); !(diff <= errBound) {
							t.AtomicOrU64(viol, 0, 1)
						}
					}
					t.AddOps(10)
				}
				t.SyncThreads()
				if viol[0] == 1 {
					reqLen += 8
					if reqLen >= ieee.FullBits[T]() {
						reqLen = ieee.FullBits[T]()
						lossless = true
					}
					t.SyncThreads()
					continue
				}

				lead := 0
				mid := 0
				if tid < cnt {
					lead = bitio.LeadingZeroBytes(w ^ prev)
					if lead > reqBytes {
						lead = reqBytes
					}
					mid = reqBytes - lead
					t.AddOps(4)
				}

				// Shared lead codes (full overwrite each iteration: the
				// arrays persist across the grid-stride loop).
				leads := t.SharedBytes("leads", bs)
				leads[tid] = byte(lead)

				// Mid-byte offsets via two-level in-warp prefix scan.
				off := blockExclusiveScan(t, mid)
				total := t.SharedU64("midtotal", 1)
				if tid == bs-1 {
					total[0] = uint64(off + mid)
				}
				t.SyncThreads()

				// Commit payload (byte j of the word sits at bit offset
				// 8*(es-1-j)).
				midBase := base + es + 1 + bitio.PackedLen(cnt)
				for j := lead; j < reqBytes && tid < cnt; j++ {
					scratch[midBase+off+j-lead] = byte(w >> uint(8*(es-1-j)))
				}
				if tid < cnt {
					t.AddGlobalBytes(mid)
				}
				// Pack 2-bit lead codes, four per byte.
				if tid < bitio.PackedLen(cnt) {
					var b byte
					for q := 0; q < 4; q++ {
						i := 4*tid + q
						if i < cnt {
							b |= leads[i] << uint(6-2*q)
						}
					}
					scratch[base+es+1+tid] = b
					t.AddGlobalBytes(1)
				}
				if tid == 0 {
					ieee.PutLE(scratch[base:], ieee.ToBits[B](mu))
					scratch[base+es] = byte(reqLen)
					sizes[k] = uint16(es + 1 + bitio.PackedLen(cnt) + int(total[0]))
					nonConst[k] = true
					t.AddGlobalBytes(es + 3)
				}
				t.SyncThreads()
				break
			}
		}
	})

	// Device-side compaction (Fig. 9's final step): a prefix sum over the
	// per-block sizes drives a gather from the fixed-stride scratch into
	// the contiguous payload; the container header/bitmap/zsize sections
	// are assembled on the host.
	payload, _, cm := gpuCompact(scratch, sizes, maxPayload, gridDim)
	m.Add(cm)
	out := make([]byte, 0, 28+(nb+7)/8+2*nb+len(payload))
	out = core.AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)
	for k := 0; k < nb; k++ {
		binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], sizes[k])
		if nonConst[k] {
			out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		}
	}
	out = append(out, payload...)
	return out, m, nil
}

// decompress is the generic cuSZx decompression kernel; its output is
// bit-identical to the serial decoder's.
func decompress[T ieee.Float, B ieee.Word](comp []byte, gridDim int) ([]T, cusim.Metrics, error) {
	es := ieee.Width[T]()
	dtype := core.TypeFloat32
	if es == 8 {
		dtype = core.TypeFloat64
	}
	si, err := core.ParseStream(comp)
	if err != nil {
		return nil, cusim.Metrics{}, err
	}
	if si.Hdr.Type != dtype {
		return nil, cusim.Metrics{}, core.ErrWrongType
	}
	bs := si.Hdr.BlockSize
	if bs%cusim.WarpSize != 0 || bs > 1024 {
		return nil, cusim.Metrics{}, ErrBlockSize
	}
	// The paper's Fig. 10 performs the zsize prefix sum on the device;
	// run the simulated scan kernel and fold its cost into the metrics.
	offs, scanM, err := GPUBlockOffsets(si, gridDim)
	if err != nil {
		return nil, scanM, err
	}
	nb := si.Hdr.NumBlocks()
	out := make([]T, si.Hdr.N)
	if nb == 0 {
		return out, cusim.Metrics{}, nil
	}
	if gridDim <= 0 {
		gridDim = DefaultGridDim
	}
	if gridDim > nb {
		gridDim = nb
	}

	derrs := make([]error, gridDim)
	m := cusim.Launch(gridDim, bs, func(t *cusim.Thread) {
		tid := t.ThreadIdx
		for k := t.BlockIdx; k < nb; k += t.GridDim {
			lo := k * bs
			cnt := len(out) - lo
			if cnt > bs {
				cnt = bs
			}
			p := si.Payload[offs[k]:offs[k+1]]
			if !si.IsNonConstant(k) {
				if len(p) < es {
					derrs[t.BlockIdx] = core.ErrCorrupt
					return
				}
				mu := ieee.FromBits[T](ieee.GetLE[B](p))
				if tid < cnt {
					out[lo+tid] = mu
					t.AddGlobalBytes(es)
				}
				continue
			}
			leadLen := bitio.PackedLen(cnt)
			if len(p) < es+1+leadLen {
				derrs[t.BlockIdx] = core.ErrCorrupt
				return
			}
			mu := ieee.FromBits[T](ieee.GetLE[B](p))
			reqLen := int(p[es])
			if reqLen < ieee.SignExpBits[T]() || reqLen > ieee.FullBits[T]() {
				derrs[t.BlockIdx] = core.ErrCorrupt
				return
			}
			s := uint(ieee.ShiftBits(reqLen))
			reqBytes := (reqLen + int(s)) / 8
			lossless := reqLen == ieee.FullBits[T]()
			mids := p[es+1+leadLen:]

			// Step 1: read this thread's lead code. Corruption is detected
			// per thread but resolved block-cooperatively so no thread
			// abandons a barrier its peers are waiting on.
			bad := false
			lead := reqBytes // inert for tail threads
			if tid < cnt {
				lead = int(p[es+1+(tid>>2)]>>uint(6-2*(tid&3))) & 3
				if lead > reqBytes {
					bad = true
					lead = reqBytes
				}
				t.AddGlobalBytes(1)
			}
			mid := reqBytes - lead

			// Step 2 (Solution 1): prefix scan gives the mid-byte offsets.
			off := blockExclusiveScan(t, mid)
			if tid < cnt && off+mid > len(mids) {
				bad = true
			}
			badFlag := t.SharedU64("bad", 1)
			if tid == 0 {
				badFlag[0] = 0
			}
			t.SyncThreads()
			if bad {
				t.AtomicOrU64(badFlag, 0, 1)
			}
			t.SyncThreads()
			if badFlag[0] != 0 { // uniform: all threads exit together
				if tid == 0 {
					derrs[t.BlockIdx] = core.ErrCorrupt
				}
				return
			}

			// Step 3: fetch own mid-bytes into a partial word. (The shared
			// word array is 64-bit for either element width; the top half
			// simply stays zero for float32.)
			words := t.SharedU64("words", bs)
			leadsSh := t.SharedBytes("dleads", bs)
			var w B
			if tid < cnt {
				for j := lead; j < reqBytes; j++ {
					w |= B(mids[off+j-lead]) << uint(8*(es-1-j))
				}
				t.AddGlobalBytes(mid)
			}
			words[tid] = uint64(w)
			leadsSh[tid] = byte(lead)
			t.SyncThreads()

			// Step 4 (Solution 2, Fig. 11): per byte position, resolve the
			// dependence chain by recursive-doubling index propagation.
			// Only the first 3 positions can be leading bytes (2-bit code),
			// but chains are resolved generically per position.
			for j := 0; j < reqBytes; j++ {
				own := 0
				if tid < cnt && j >= int(leadsSh[tid]) {
					own = tid + 1 // 1-based: 0 means "virtual zero word"
				}
				src := blockInclusiveMaxScan(t, own, j)
				if tid < cnt && j < int(leadsSh[tid]) {
					var b byte
					if src > 0 {
						b = byte(words[src-1] >> uint(8*(es-1-j)))
					}
					w |= B(b) << uint(8*(es-1-j))
				}
				t.AddOps(3)
			}

			// Step 5: undo the right shift and denormalize.
			if tid < cnt {
				if lossless {
					out[lo+tid] = ieee.FromBits[T](w)
				} else {
					out[lo+tid] = ieee.FromBits[T](w<<s) + mu
				}
				t.AddGlobalBytes(es)
				t.AddOps(3)
			}
			t.SyncThreads() // words/leads stay valid until all threads pass
		}
	})
	m.Add(scanM)
	for _, e := range derrs {
		if e != nil {
			return nil, m, e
		}
	}
	return out, m, nil
}

// --- exported wrappers (historical per-type API) ---------------------------

// Compress compresses data with the cuSZx kernel and returns the SZx
// stream (bit-identical to core.CompressFloat32 with the same options)
// plus the simulated-execution metrics. Data must be finite; NaN handling
// is only defined for the CPU codec.
func Compress(data []float32, errBound float64, opts core.Options, gridDim int) ([]byte, cusim.Metrics, error) {
	return compress[float32, uint32](data, errBound, opts, gridDim)
}

// Decompress reconstructs values from an SZx float32 stream with the cuSZx
// decompression kernel, returning simulated-execution metrics. The output
// is bit-identical to core.DecompressFloat32.
func Decompress(comp []byte, gridDim int) ([]float32, cusim.Metrics, error) {
	return decompress[float32, uint32](comp, gridDim)
}

// CompressFloat64 compresses data with the float64 instantiation of the
// kernel, returning a stream bit-identical to core.CompressFloat64. The
// paper's in-memory motivation (full-state quantum-circuit simulation, §1)
// operates on double-precision state vectors.
func CompressFloat64(data []float64, errBound float64, opts core.Options, gridDim int) ([]byte, cusim.Metrics, error) {
	return compress[float64, uint64](data, errBound, opts, gridDim)
}

// DecompressFloat64 reconstructs values from an SZx float64 stream,
// bit-identical to core.DecompressFloat64.
func DecompressFloat64(comp []byte, gridDim int) ([]float64, cusim.Metrics, error) {
	return decompress[float64, uint64](comp, gridDim)
}

// blockMinMax reduces (mn, mx) across the thread block: warp-level shuffle
// reductions, then a shared-memory combine by the first warp. Every thread
// returns the block-wide result.
func blockMinMax(t *cusim.Thread, mn, mx float64) (float64, float64) {
	for d := cusim.WarpSize / 2; d > 0; d >>= 1 {
		omn := math.Float64frombits(t.ShuffleDown(math.Float64bits(mn), d))
		omx := math.Float64frombits(t.ShuffleDown(math.Float64bits(mx), d))
		if omn < mn {
			mn = omn
		}
		if omx > mx {
			mx = omx
		}
		t.AddOps(2)
	}
	nw := (t.BlockDim + cusim.WarpSize - 1) / cusim.WarpSize
	wmin := t.SharedU64("wmin", nw)
	wmax := t.SharedU64("wmax", nw)
	if t.Lane() == 0 {
		wmin[t.Warp()] = math.Float64bits(mn)
		wmax[t.Warp()] = math.Float64bits(mx)
	}
	t.SyncThreads()
	if t.ThreadIdx == 0 {
		for i := 1; i < nw; i++ {
			if v := math.Float64frombits(wmin[i]); v < mn {
				mn = v
			}
			if v := math.Float64frombits(wmax[i]); v > mx {
				mx = v
			}
			t.AddOps(2)
		}
		wmin[0] = math.Float64bits(mn)
		wmax[0] = math.Float64bits(mx)
	}
	t.SyncThreads()
	mn = math.Float64frombits(wmin[0])
	mx = math.Float64frombits(wmax[0])
	t.SyncThreads() // keep shared slots stable until everyone has read
	return mn, mx
}

// blockExclusiveScan computes the exclusive prefix sum of v across the
// block using the paper's two-level in-warp shuffle scan: an inclusive
// shuffle scan within each warp, warp totals combined through shared
// memory, and the warp-prefix added back.
func blockExclusiveScan(t *cusim.Thread, v int) int {
	incl := uint64(v)
	for d := 1; d < cusim.WarpSize; d <<= 1 {
		o := t.ShuffleUp(incl, d)
		if t.Lane() >= d {
			incl += o
		}
		t.AddOps(1)
	}
	nw := (t.BlockDim + cusim.WarpSize - 1) / cusim.WarpSize
	wtot := t.SharedU64("scan_wtot", nw)
	if t.Lane() == t.WarpLanes()-1 {
		wtot[t.Warp()] = incl
	}
	t.SyncThreads()
	if t.ThreadIdx == 0 {
		var run uint64
		for i := 0; i < nw; i++ {
			tot := wtot[i]
			wtot[i] = run
			run += tot
			t.AddOps(1)
		}
	}
	t.SyncThreads()
	res := int(incl) - v + int(wtot[t.Warp()])
	t.SyncThreads()
	return res
}

// blockInclusiveMaxScan computes the inclusive prefix maximum of v across
// the block (recursive doubling, Fig. 11's index propagation). slot keys
// the shared scratch so per-byte-position calls do not collide; scratch is
// sized for the float64 worst case of 8 byte positions.
func blockInclusiveMaxScan(t *cusim.Thread, v int, slot int) int {
	m := uint64(v)
	for d := 1; d < cusim.WarpSize; d <<= 1 {
		o := t.ShuffleUp(m, d)
		if t.Lane() >= d && o > m {
			m = o
		}
		t.AddOps(1)
	}
	nw := (t.BlockDim + cusim.WarpSize - 1) / cusim.WarpSize
	wmaxs := t.SharedU64("maxscan_wtot", nw*8)
	base := slot * nw
	if t.Lane() == t.WarpLanes()-1 {
		wmaxs[base+t.Warp()] = m
	}
	t.SyncThreads()
	if t.ThreadIdx == 0 {
		var run uint64
		for i := 0; i < nw; i++ {
			cur := wmaxs[base+i]
			wmaxs[base+i] = run
			if cur > run {
				run = cur
			}
			t.AddOps(1)
		}
	}
	t.SyncThreads()
	if p := wmaxs[base+t.Warp()]; p > m {
		m = p
	}
	t.SyncThreads()
	return int(m)
}

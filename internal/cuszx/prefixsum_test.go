package cuszx

import (
	"testing"

	"repro/internal/core"
)

func TestGPUBlockOffsetsMatchSerial(t *testing.T) {
	for _, n := range []int{0, 100, 4096, 100000, 300000} {
		data := genData(n, int64(n+1))
		comp, err := core.CompressFloat32(data, 1e-3, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		si, err := core.ParseStream(comp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := si.BlockOffsets()
		if err != nil {
			t.Fatal(err)
		}
		got, m, err := GPUBlockOffsets(si, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: offset %d: %d vs %d", n, i, got[i], want[i])
			}
		}
		if n > 0 && m.Ops == 0 {
			t.Error("no counted work")
		}
	}
}

func TestGPUBlockOffsetsManyTiles(t *testing.T) {
	// Enough blocks (> 256*256) to force the multi-pass tile-total scan.
	// Use a tiny block size to get many blocks cheaply.
	data := genData(1<<20, 9)
	comp, err := core.CompressFloat32(data, 1e-2, core.Options{BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	si, err := core.ParseStream(comp)
	if err != nil {
		t.Fatal(err)
	}
	if si.Hdr.NumBlocks() <= 256*256 {
		t.Skip("not enough blocks to exercise multi-pass path")
	}
	want, _ := si.BlockOffsets()
	got, _, err := GPUBlockOffsets(si, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offset %d differs", i)
		}
	}
}

func TestGPUCompact(t *testing.T) {
	// Synthetic scratch: 10 slots of stride 16, variable sizes.
	const stride = 16
	sizes := []uint16{4, 0, 16, 7, 1, 0, 9, 16, 3, 5}
	scratch := make([]byte, len(sizes)*stride)
	for k := range sizes {
		for i := 0; i < int(sizes[k]); i++ {
			scratch[k*stride+i] = byte(k*31 + i)
		}
	}
	out, offs, m := gpuCompact(scratch, sizes, stride, 4)
	want := 0
	for k, sz := range sizes {
		if offs[k] != want {
			t.Fatalf("offs[%d]=%d want %d", k, offs[k], want)
		}
		for i := 0; i < int(sz); i++ {
			if out[offs[k]+i] != byte(k*31+i) {
				t.Fatalf("block %d byte %d wrong", k, i)
			}
		}
		want += int(sz)
	}
	if offs[len(sizes)] != want || len(out) != want {
		t.Fatalf("total %d/%d want %d", offs[len(sizes)], len(out), want)
	}
	if m.Ops == 0 {
		t.Error("no counted work")
	}
	// Empty case.
	out, offs, _ = gpuCompact(nil, nil, stride, 4)
	if len(out) != 0 || len(offs) != 1 {
		t.Fatal("empty compact wrong")
	}
}

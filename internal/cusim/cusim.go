// Package cusim is a deterministic SIMT execution simulator: a CUDA-like
// programming model (grids of thread blocks, 32-lane warps, block barriers,
// warp shuffles and ballots, shared memory) implemented with goroutines.
//
// The SZx paper's GPU compressor cuSZx (§6.2) relies on three parallel
// constructs whose correctness is non-trivial: warp-level min/max
// reductions, a two-level in-warp prefix scan for mid-byte addressing
// (Solution 1), and a recursive-doubling "index propagation" that resolves
// read-after-write dependence chains during decompression (Solution 2,
// Fig. 11). Real CUDA hardware is unavailable in this environment, so this
// package executes those exact algorithms under the same synchronization
// semantics, letting the cuszx package prove them hazard-free and
// bit-identical to the serial codec. A calibrated device cost model
// (see Model) converts the executed operation counts into the simulated
// throughputs reported for Fig. 14/15.
package cusim

import (
	"fmt"
	"runtime"
	"sync"
)

// WarpSize is the number of lanes per warp, as on all NVIDIA GPUs.
const WarpSize = 32

// Device describes a GPU for the cost model.
type Device struct {
	Name       string
	SMs        int
	CoresPerSM int
	ClockGHz   float64
	// MemBWGBps is the peak HBM bandwidth in GB/s.
	MemBWGBps float64
}

// The two GPUs of the paper's evaluation (ThetaGPU and Summit).
var (
	A100 = Device{Name: "A100", SMs: 108, CoresPerSM: 64, ClockGHz: 1.41, MemBWGBps: 1555}
	V100 = Device{Name: "V100", SMs: 80, CoresPerSM: 64, ClockGHz: 1.53, MemBWGBps: 900}
)

// Metrics aggregates the work a kernel launch performed; inputs to the
// device cost model.
type Metrics struct {
	Blocks       int
	ThreadsTotal int
	// Ops is the total number of counted thread operations (arithmetic
	// declared via AddOps, plus one per shuffle/ballot lane and per barrier
	// participant).
	Ops int64
	// GlobalBytes is the number of bytes declared as global-memory traffic.
	GlobalBytes int64
	// Barriers counts block-level barrier episodes.
	Barriers int64
	// Shuffles counts warp shuffle/ballot episodes (per warp).
	Shuffles int64
}

// Add merges two metrics.
func (m *Metrics) Add(o Metrics) {
	m.Blocks += o.Blocks
	m.ThreadsTotal += o.ThreadsTotal
	m.Ops += o.Ops
	m.GlobalBytes += o.GlobalBytes
	m.Barriers += o.Barriers
	m.Shuffles += o.Shuffles
}

// blockState is the shared state of one executing thread block.
type blockState struct {
	dim      int
	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	phase    uint64
	shared   map[string]interface{}
	warpMu   []sync.Mutex
	warpCond []*sync.Cond
	warpArr  []int
	warpPh   []uint64
	warpBuf  [][]uint64 // exchange slots per warp
	ops      int64
	gbytes   int64
	barriers int64
	shuffles int64
}

func newBlockState(dim int) *blockState {
	nw := (dim + WarpSize - 1) / WarpSize
	b := &blockState{
		dim:      dim,
		shared:   make(map[string]interface{}),
		warpMu:   make([]sync.Mutex, nw),
		warpCond: make([]*sync.Cond, nw),
		warpArr:  make([]int, nw),
		warpPh:   make([]uint64, nw),
		warpBuf:  make([][]uint64, nw),
	}
	b.cond = sync.NewCond(&b.mu)
	for w := 0; w < nw; w++ {
		b.warpCond[w] = sync.NewCond(&b.warpMu[w])
		b.warpBuf[w] = make([]uint64, WarpSize)
	}
	return b
}

// Thread is the per-thread execution context handed to a kernel.
type Thread struct {
	// BlockIdx and ThreadIdx identify this thread (1-D indexing).
	BlockIdx  int
	ThreadIdx int
	BlockDim  int
	GridDim   int
	b         *blockState
}

// Lane returns the thread's lane within its warp.
func (t *Thread) Lane() int { return t.ThreadIdx % WarpSize }

// Warp returns the thread's warp index within the block.
func (t *Thread) Warp() int { return t.ThreadIdx / WarpSize }

// WarpLanes returns how many threads participate in this thread's warp
// (the last warp of a block may be partial).
func (t *Thread) WarpLanes() int { return t.warpLanes() }

// AtomicOrU64 ORs v into arr[idx] atomically (CUDA atomicOr). arr should be
// a block-shared array obtained from SharedU64.
func (t *Thread) AtomicOrU64(arr []uint64, idx int, v uint64) {
	t.b.mu.Lock()
	arr[idx] |= v
	t.b.ops++
	t.b.mu.Unlock()
}

// warpLanes returns how many threads participate in this thread's warp
// (the last warp of a block may be partial).
func (t *Thread) warpLanes() int {
	lo := t.Warp() * WarpSize
	hi := lo + WarpSize
	if hi > t.BlockDim {
		hi = t.BlockDim
	}
	return hi - lo
}

// AddOps declares n arithmetic operations for the cost model.
func (t *Thread) AddOps(n int) {
	t.b.mu.Lock()
	t.b.ops += int64(n)
	t.b.mu.Unlock()
}

// AddGlobalBytes declares global-memory traffic for the cost model.
func (t *Thread) AddGlobalBytes(n int) {
	t.b.mu.Lock()
	t.b.gbytes += int64(n)
	t.b.mu.Unlock()
}

// SyncThreads is CUDA's __syncthreads(): a block-wide barrier.
func (t *Thread) SyncThreads() {
	b := t.b
	b.mu.Lock()
	ph := b.phase
	b.arrived++
	b.ops++
	if b.arrived == b.dim {
		b.arrived = 0
		b.phase++
		b.barriers++
		b.cond.Broadcast()
	} else {
		for b.phase == ph {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// syncWarp is a barrier over the thread's warp.
func (t *Thread) syncWarp() {
	w := t.Warp()
	n := t.warpLanes()
	b := t.b
	b.warpMu[w].Lock()
	ph := b.warpPh[w]
	b.warpArr[w]++
	if b.warpArr[w] == n {
		b.warpArr[w] = 0
		b.warpPh[w]++
		b.warpCond[w].Broadcast()
	} else {
		for b.warpPh[w] == ph {
			b.warpCond[w].Wait()
		}
	}
	b.warpMu[w].Unlock()
}

// exchange publishes v in the warp's exchange slots and returns the slot
// array after all lanes have written. Two warp barriers make the pattern
// safe for back-to-back calls.
func (t *Thread) exchange(v uint64) []uint64 {
	w := t.Warp()
	buf := t.b.warpBuf[w]
	buf[t.Lane()] = v
	t.syncWarp()
	return buf
}

// ShuffleUp returns the value lane-delta lanes below this one contributed,
// or this thread's own value for lanes < delta (CUDA __shfl_up_sync).
func (t *Thread) ShuffleUp(v uint64, delta int) uint64 {
	buf := t.exchange(v)
	lane := t.Lane()
	out := v
	if lane >= delta {
		out = buf[lane-delta]
	}
	t.countShuffle()
	t.syncWarp() // protect the buffer from the next exchange
	return out
}

// ShuffleDown returns the value lane+delta lanes above contributed, or the
// thread's own value past the warp end (CUDA __shfl_down_sync).
func (t *Thread) ShuffleDown(v uint64, delta int) uint64 {
	buf := t.exchange(v)
	lane := t.Lane()
	out := v
	if lane+delta < t.warpLanes() {
		out = buf[lane+delta]
	}
	t.countShuffle()
	t.syncWarp()
	return out
}

// ShuffleIdx returns the value contributed by the given lane
// (CUDA __shfl_sync).
func (t *Thread) ShuffleIdx(v uint64, lane int) uint64 {
	buf := t.exchange(v)
	out := v
	if lane >= 0 && lane < t.warpLanes() {
		out = buf[lane]
	}
	t.countShuffle()
	t.syncWarp()
	return out
}

// Ballot returns a bitmask of the warp's lanes whose predicate was true
// (CUDA __ballot_sync).
func (t *Thread) Ballot(pred bool) uint32 {
	v := uint64(0)
	if pred {
		v = 1
	}
	buf := t.exchange(v)
	var mask uint32
	for i := 0; i < t.warpLanes(); i++ {
		if buf[i] != 0 {
			mask |= 1 << uint(i)
		}
	}
	t.countShuffle()
	t.syncWarp()
	return mask
}

func (t *Thread) countShuffle() {
	if t.Lane() == 0 {
		t.b.mu.Lock()
		t.b.shuffles++
		t.b.ops += int64(t.warpLanes())
		t.b.mu.Unlock()
	}
}

// SharedU64 returns (allocating on first use) a block-shared uint64 array.
// All threads of the block see the same backing array. Callers must
// synchronize access with SyncThreads.
func (t *Thread) SharedU64(name string, size int) []uint64 {
	return sharedAs[uint64](t, name, size)
}

// SharedU32 returns a block-shared uint32 array.
func (t *Thread) SharedU32(name string, size int) []uint32 {
	return sharedAs[uint32](t, name, size)
}

// SharedI32 returns a block-shared int32 array.
func (t *Thread) SharedI32(name string, size int) []int32 {
	return sharedAs[int32](t, name, size)
}

// SharedF64 returns a block-shared float64 array.
func (t *Thread) SharedF64(name string, size int) []float64 {
	return sharedAs[float64](t, name, size)
}

// SharedBytes returns a block-shared byte array.
func (t *Thread) SharedBytes(name string, size int) []byte {
	return sharedAs[byte](t, name, size)
}

func sharedAs[T any](t *Thread, name string, size int) []T {
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if v, ok := b.shared[name]; ok {
		arr, ok2 := v.([]T)
		if !ok2 || len(arr) < size {
			panic(fmt.Sprintf("cusim: shared array %q redeclared with different type/size", name))
		}
		return arr
	}
	arr := make([]T, size)
	b.shared[name] = arr
	return arr
}

// Launch runs kernel over a 1-D grid of 1-D thread blocks and returns the
// aggregated metrics. Thread blocks execute concurrently up to the host
// CPU's parallelism; threads within a block are goroutines coupled by the
// barrier and warp primitives above.
func Launch(gridDim, blockDim int, kernel func(t *Thread)) Metrics {
	if gridDim < 1 || blockDim < 1 || blockDim > 1024 {
		panic("cusim: invalid launch configuration")
	}
	var total Metrics
	var totalMu sync.Mutex
	var panicked interface{}

	maxConc := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, maxConc)
	var wg sync.WaitGroup
	for blk := 0; blk < gridDim; blk++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(blk int) {
			defer wg.Done()
			defer func() { <-sem }()
			bs := newBlockState(blockDim)
			var bwg sync.WaitGroup
			for tid := 0; tid < blockDim; tid++ {
				bwg.Add(1)
				go func(tid int) {
					defer bwg.Done()
					// Kernel panics are re-raised on the launching
					// goroutine. A panicking thread in a multi-thread block
					// that others are barrier-waiting on will deadlock, as
					// on real hardware; keep kernels panic-free.
					defer func() {
						if r := recover(); r != nil {
							totalMu.Lock()
							if panicked == nil {
								panicked = r
							}
							totalMu.Unlock()
						}
					}()
					kernel(&Thread{
						BlockIdx:  blk,
						ThreadIdx: tid,
						BlockDim:  blockDim,
						GridDim:   gridDim,
						b:         bs,
					})
				}(tid)
			}
			bwg.Wait()
			totalMu.Lock()
			total.Blocks++
			total.ThreadsTotal += blockDim
			total.Ops += bs.ops
			total.GlobalBytes += bs.gbytes
			total.Barriers += bs.barriers
			total.Shuffles += bs.shuffles
			totalMu.Unlock()
		}(blk)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return total
}

// Model converts launch metrics into a simulated execution time (seconds)
// on the device: the maximum of the compute-bound estimate (ops across all
// CUDA cores at one op per clock) and the memory-bound estimate (declared
// global traffic at peak bandwidth). This first-order roofline model is how
// Fig. 14/15's simulated throughputs are produced; see DESIGN.md for the
// substitution rationale.
func (d Device) Model(m Metrics) float64 {
	cores := float64(d.SMs * d.CoresPerSM)
	compute := float64(m.Ops) / (cores * d.ClockGHz * 1e9)
	mem := float64(m.GlobalBytes) / (d.MemBWGBps * 1e9)
	// Barrier and launch overheads: ~1µs per kernel plus ~5ns per barrier
	// episode, amortized across SMs (resident blocks overlap barrier
	// latency on real hardware, so the per-episode cost is small).
	overhead := 1e-6 + 5e-9*float64(m.Barriers)/float64(d.SMs)
	t := compute
	if mem > t {
		t = mem
	}
	return t + overhead
}

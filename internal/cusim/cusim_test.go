package cusim

import (
	"sync/atomic"
	"testing"
)

func TestLaunchRunsAllThreads(t *testing.T) {
	var count int64
	m := Launch(7, 65, func(th *Thread) {
		atomic.AddInt64(&count, 1)
	})
	if count != 7*65 {
		t.Fatalf("ran %d threads, want %d", count, 7*65)
	}
	if m.Blocks != 7 || m.ThreadsTotal != 7*65 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestSyncThreadsOrdering(t *testing.T) {
	// Every thread writes its id, barrier, then reads a neighbour: without
	// a correct barrier the read would race/miss.
	const dim = 96
	fail := int64(0)
	Launch(4, dim, func(th *Thread) {
		sh := th.SharedU64("vals", dim)
		sh[th.ThreadIdx] = uint64(th.ThreadIdx + 1)
		th.SyncThreads()
		neighbor := (th.ThreadIdx + 17) % dim
		if sh[neighbor] != uint64(neighbor+1) {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatalf("%d threads observed missing writes", fail)
	}
}

func TestSharedDistinctPerBlock(t *testing.T) {
	// Thread 0 of each block writes its block id; all threads must read
	// their own block's value, not another block's.
	fail := int64(0)
	Launch(16, 32, func(th *Thread) {
		sh := th.SharedU64("blockid", 1)
		if th.ThreadIdx == 0 {
			sh[0] = uint64(th.BlockIdx + 100)
		}
		th.SyncThreads()
		if sh[0] != uint64(th.BlockIdx+100) {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatal("shared memory leaked across blocks")
	}
}

func TestShuffleUp(t *testing.T) {
	fail := int64(0)
	Launch(1, 64, func(th *Thread) {
		v := uint64(th.ThreadIdx)
		got := th.ShuffleUp(v, 1)
		lane := th.Lane()
		want := v
		if lane >= 1 {
			want = v - 1
		}
		if got != want {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatal("ShuffleUp wrong")
	}
}

func TestShuffleDownAndIdx(t *testing.T) {
	fail := int64(0)
	Launch(1, 32, func(th *Thread) {
		v := uint64(th.ThreadIdx * 3)
		if got := th.ShuffleDown(v, 2); th.Lane() < 30 && got != v+6 {
			atomic.AddInt64(&fail, 1)
		}
		if got := th.ShuffleIdx(v, 5); got != 15 {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatal("shuffle semantics wrong")
	}
}

func TestShuffleBackToBack(t *testing.T) {
	// Two consecutive shuffles must not interfere (regression for the
	// double-barrier in exchange()).
	fail := int64(0)
	Launch(2, 32, func(th *Thread) {
		a := th.ShuffleUp(uint64(th.ThreadIdx), 1)
		b := th.ShuffleUp(uint64(th.ThreadIdx)*10, 1)
		lane := th.Lane()
		wantA, wantB := uint64(lane), uint64(lane)*10
		if lane >= 1 {
			wantA, wantB = uint64(lane-1), uint64(lane-1)*10
		}
		if a != wantA || b != wantB {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatal("back-to-back shuffles interfered")
	}
}

func TestBallot(t *testing.T) {
	fail := int64(0)
	Launch(1, 32, func(th *Thread) {
		mask := th.Ballot(th.Lane()%2 == 0)
		if mask != 0x55555555 {
			atomic.AddInt64(&fail, 1)
		}
	})
	if fail != 0 {
		t.Fatal("ballot mask wrong")
	}
}

func TestPartialWarp(t *testing.T) {
	// 40 threads: second warp has 8 lanes; shuffles must stay in-bounds.
	fail := int64(0)
	Launch(1, 40, func(th *Thread) {
		v := uint64(th.ThreadIdx)
		got := th.ShuffleDown(v, 4)
		if th.Warp() == 1 {
			if th.Lane()+4 < 8 {
				if got != v+4 {
					atomic.AddInt64(&fail, 1)
				}
			} else if got != v {
				atomic.AddInt64(&fail, 1)
			}
		}
	})
	if fail != 0 {
		t.Fatal("partial warp shuffle wrong")
	}
}

// warpInclusiveScan is the canonical two-level shuffle prefix sum used by
// cuszx; tested here against the serial scan.
func warpInclusiveScan(th *Thread, v uint64) uint64 {
	for d := 1; d < WarpSize; d <<= 1 {
		o := th.ShuffleUp(v, d)
		if th.Lane() >= d {
			v += o
		}
	}
	return v
}

func TestWarpScanMatchesSerial(t *testing.T) {
	const dim = 32
	vals := make([]uint64, dim)
	for i := range vals {
		vals[i] = uint64((i*7 + 3) % 13)
	}
	got := make([]uint64, dim)
	Launch(1, dim, func(th *Thread) {
		got[th.ThreadIdx] = warpInclusiveScan(th, vals[th.ThreadIdx])
	})
	var sum uint64
	for i := 0; i < dim; i++ {
		sum += vals[i]
		if got[i] != sum {
			t.Fatalf("lane %d: scan %d want %d", i, got[i], sum)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		out := make([]uint64, 64)
		Launch(2, 32, func(th *Thread) {
			v := warpInclusiveScan(th, uint64(th.ThreadIdx+th.BlockIdx))
			out[th.BlockIdx*32+th.ThreadIdx] = v
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestMetricsAccumulate(t *testing.T) {
	m := Launch(3, 32, func(th *Thread) {
		th.AddOps(10)
		th.AddGlobalBytes(4)
		th.SyncThreads()
		th.ShuffleUp(1, 1)
	})
	if m.Ops < 3*32*10 {
		t.Errorf("ops %d too low", m.Ops)
	}
	if m.GlobalBytes != 3*32*4 {
		t.Errorf("bytes %d", m.GlobalBytes)
	}
	if m.Barriers != 3 {
		t.Errorf("barriers %d", m.Barriers)
	}
	if m.Shuffles != 3 {
		t.Errorf("shuffles %d", m.Shuffles)
	}
}

func TestModelRoofline(t *testing.T) {
	m := Metrics{Ops: 1e9, GlobalBytes: 1e9}
	tA := A100.Model(m)
	tV := V100.Model(m)
	if tA <= 0 || tV <= 0 {
		t.Fatal("nonpositive model time")
	}
	// A100 has more cores and bandwidth: it must be faster.
	if tA >= tV {
		t.Errorf("A100 (%g) not faster than V100 (%g)", tA, tV)
	}
	// Memory-bound case: doubling traffic doubles (approximately) the time.
	m2 := Metrics{Ops: 1, GlobalBytes: 2e9}
	m1 := Metrics{Ops: 1, GlobalBytes: 1e9}
	r := A100.Model(m2) / A100.Model(m1)
	if r < 1.8 || r > 2.2 {
		t.Errorf("memory scaling ratio %g", r)
	}
}

func TestSharedTypePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shared redeclaration")
		}
	}()
	Launch(1, 1, func(th *Thread) {
		th.SharedU64("x", 4)
		th.SharedU32("x", 4)
	})
}

package core

import (
	"context"
	"math/bits"
	"runtime/pprof"

	"repro/internal/kernels"
	"repro/telemetry"
)

// Register the kernel dispatch decision with telemetry once. kernels' own
// init has already run (package initialization order follows imports), so
// Active/Detail are final here.
func init() {
	telemetry.SetKernelDispatch(kernels.Active(), kernels.Detail())
}

// Telemetry glue for the codec hot paths. Every helper here is behind the
// caller's single telemetry.Enabled() check per codec call, so the
// disabled path pays one atomic load and nothing else; see BENCH_OBS.json
// for the measured A/B overhead.

// recordDecodedBlocks tallies a decoded stream's constant/nonconstant
// block split from its bitmap (one popcount per 8 blocks; the decoder
// itself stays untouched).
func recordDecodedBlocks(si Index) {
	nb := si.Hdr.NumBlocks()
	nonconst := 0
	full := nb / 8
	for _, b := range si.Bitmap[:full] {
		nonconst += bits.OnesCount8(b)
	}
	if rem := nb & 7; rem != 0 {
		nonconst += bits.OnesCount8(si.Bitmap[full] & byte(1<<uint(rem)-1))
	}
	telemetry.DecodedBlocksNonConstant.Add(int64(nonconst))
	telemetry.DecodedBlocksConstant.Add(int64(nb - nonconst))
	// Every nonconstant block ran the decode-scan kernel exactly once.
	telemetry.KernelDecodeScanCalls.Add(int64(nonconst))
}

// flushWorkerChunks records one engine participant's chunk claims:
// participant 0 is the calling goroutine ("owned"), everyone else is a
// pool worker ("stolen"); a participant that claimed at least one chunk
// counts as active for the utilization ratio.
func flushWorkerChunks(id, claimed int) {
	if id == 0 {
		telemetry.ParallelChunksOwned.Add(int64(claimed))
	} else {
		telemetry.ParallelChunksStolen.Add(int64(claimed))
	}
	if claimed > 0 {
		telemetry.ParallelActiveWorkers.Inc()
	}
	telemetry.ParallelChunksPerWorker.Observe(int64(claimed))
}

// runStage runs f, labeling its CPU-profile samples with szx_stage=stage
// when telemetry is enabled so profiles of the worker pool attribute time
// to the encode/gather/decode phases instead of one anonymous pool frame.
func runStage(rec bool, stage string, f func()) {
	if !rec {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("szx_stage", stage), func(context.Context) { f() })
}

package core

import (
	"encoding/binary"
	"math"
	"slices"

	"repro/internal/bitio"
	"repro/internal/ieee"
	"repro/telemetry"
)

// This file holds the single generic block encoder. The float32 and float64
// pipelines are instantiations of the same code; the exported CompressFloat32
// / CompressFloat64 wrappers below pin the historical API.

// appendCompressed appends one complete SZx stream for data onto dst and
// returns the extended slice plus per-run statistics. With sufficient
// capacity in dst it performs no allocations.
func appendCompressed[T Float, B Word](dst []byte, data []T, errBound float64, opts Options) ([]byte, Stats, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, Stats{}, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, Stats{}, ErrErrBound
	}
	es := ieee.Width[T]()
	h := Header{Type: dtypeOf[T](), BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	rec := telemetry.Enabled()
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
	}
	dstBase := len(dst)

	// Size hint: header + index + a typical ~2x reduction of the payload.
	dst = slices.Grow(dst, headerSize+(nb+7)/8+2*nb+es*len(data)/2+es)
	dst = AppendHeader(dst, h)
	bitmapOff := len(dst)
	dst = appendZeros(dst, (nb+7)/8)
	zsizeOff := len(dst)
	dst = appendZeros(dst, 2*nb)

	enc := newBlockEncoder[T, B](errBound, !opts.Unguarded)
	var tally telemetry.BlockTally
	if rec {
		enc.tally = &tally
	}
	st := Stats{Blocks: nb, OriginalSize: es * len(data), EffectiveBound: errBound}
	for k := 0; k < nb; k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		start := len(dst)
		var constant bool
		dst, constant = enc.encodeBlock(dst, data[lo:hi])
		if !constant {
			dst[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		} else {
			st.ConstantBlocks++
		}
		sz := len(dst) - start
		if sz > math.MaxUint16 {
			// Unreachable while maxBlockPayload(MaxBlockSize) fits uint16
			// (enforced at compile time in format.go); kept as a hard stop
			// so a future constant bump cannot silently corrupt the index.
			return nil, Stats{}, ErrBlockSize
		}
		binary.LittleEndian.PutUint16(dst[zsizeOff+2*k:], uint16(sz))
	}
	st.LosslessBlocks = enc.lossless
	st.GuardRetries = enc.retries
	st.CompressedSize = len(dst)
	if rec {
		tally.Flush()
		telemetry.EngineCompressSerial.Inc()
		telemetry.RecordCompress(es*len(data), len(dst)-dstBase, tm.Elapsed())
	}
	return dst, st, nil
}

// blockEncoder carries per-run encoder state across blocks.
type blockEncoder[T Float, B Word] struct {
	errBound float64
	eSafe    T
	guarded  bool
	lossless int
	retries  int
	// tally, when non-nil, accumulates per-block telemetry (block types,
	// required-bit counts, lead-code distribution) without atomics; the
	// owner flushes it once per call. Nil whenever telemetry is disabled,
	// so the hot loops only ever pay a predictable nil check per block.
	tally *telemetry.BlockTally
	// leadBuf stages per-value leading-byte codes before packing; kept in
	// the encoder so it is not re-zeroed per block.
	leadBuf [MaxBlockSize]byte
}

func newBlockEncoder[T Float, B Word](errBound float64, guarded bool) blockEncoder[T, B] {
	// Fast-accept threshold for the guard: a native-width diff below this is
	// safely within the bound even after its own rounding; marginal cases
	// fall through to the exact float64 comparison.
	eSafe := T(errBound * (1 - 1e-6))
	if float64(eSafe) >= errBound {
		// Tiny (subnormal-range) bounds can round eSafe up past the bound;
		// force every value through the exact check instead.
		eSafe = -1
	}
	return blockEncoder[T, B]{errBound: errBound, eSafe: eSafe, guarded: guarded}
}

// encodeBlock appends one block's payload to dst and reports whether the
// block was constant. Nonconstant payload layout:
//
//	μ (4/8B LE) | reqLength (1B) | leading 2-bit array | mid-bytes
func (enc *blockEncoder[T, B]) encodeBlock(dst []byte, blk []T) ([]byte, bool) {
	mu, radius, noNaN := blockStats(blk)
	if radius <= enc.errBound && noNaN { // radius NaN also fails the test
		if t := enc.tally; t != nil {
			t.Constant++
		}
		var b [8]byte
		ieee.PutLE(b[:], ieee.ToBits[B](mu))
		return append(dst, b[:ieee.Width[T]()]...), true
	}

	radExpo := ieee.Exponent64(radius)
	errExpo := ieee.Exponent64(enc.errBound)
	reqLen, lossless := ieee.ReqLength[T](radExpo, errExpo)
	start := len(dst)
	for {
		if lossless {
			mu = 0
			enc.lossless++
		}
		var ok bool
		dst, ok = enc.encodeNonConstant(dst, blk, mu, reqLen, lossless)
		if ok {
			if t := enc.tally; t != nil {
				t.NonConstant++
				if lossless {
					t.Lossless++
				}
				t.Req[reqLen]++
				// The packed 2-bit lead array sits right after μ and the
				// reqLength byte; tallying from the packed form costs one
				// table load per four values.
				es := ieee.Width[T]()
				t.CountPackedLeads(dst[start+es+1:start+es+1+bitio.PackedLen(len(blk))], len(blk))
			}
			return dst, false
		}
		// Guard tripped: widen the kept prefix and retry.
		enc.retries++
		if t := enc.tally; t != nil {
			t.Retries++
		}
		dst = dst[:start]
		reqLen += 8
		if reqLen >= ieee.FullBits[T]() {
			reqLen = ieee.FullBits[T]()
			lossless = true
		}
	}
}

func (enc *blockEncoder[T, B]) encodeNonConstant(dst []byte, blk []T, mu T, reqLen int, lossless bool) ([]byte, bool) {
	es := ieee.Width[T]()
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8 // 2..4 for float32, 2..8 for float64
	n := len(blk)
	leadLen := bitio.PackedLen(n)

	// Grow once to the worst-case payload plus one word of slack, and write
	// by index. The slack makes the wide store below unconditionally
	// in-bounds even when only one byte of the word is kept, so the
	// per-value loop carries no append bookkeeping and no byte-copy tail;
	// the slice is truncated to the actual size at the end.
	start := len(dst)
	maxPayload := es + 1 + leadLen + reqBytes*n + es
	dst = slices.Grow(dst, maxPayload)[:start+maxPayload]
	ieee.PutLE(dst[start:], ieee.ToBits[B](mu))
	dst[start+es] = byte(reqLen)
	leadOff := start + es + 1
	idx := leadOff + leadLen

	// Mask of bits that survive truncation (top reqLen bits of the word);
	// used only by the guard check.
	keepMask := ^B(0)
	if reqLen < 8*es {
		keepMask <<= uint(8*es - reqLen)
	}
	guarded := enc.guarded && !lossless
	e := enc.errBound
	eSafe := enc.eSafe
	negESafe := -eSafe

	leadBuf := &enc.leadBuf
	var prev B
	for i, d := range blk {
		v := d - mu
		bits := ieee.ToBits[B](v)
		w := bits >> s

		if guarded {
			rec := ieee.FromBits[T](bits&keepMask) + mu
			diff := rec - d
			// Fast-accept is the two-sided native-width compare
			// -eSafe ≤ diff ≤ eSafe (no abs, no float64 conversion); NaN
			// diffs fail both sides and take the exact path (which rejects
			// them), as does the eSafe < 0 sentinel.
			if !(diff <= eSafe && diff >= negESafe) {
				if !(math.Abs(float64(d)-float64(rec)) <= e) {
					return dst[:start], false
				}
			}
		}

		lead := bitio.LeadingZeroBytes(w ^ prev)
		if lead > reqBytes {
			lead = reqBytes
		}
		leadBuf[i] = byte(lead)

		// Commit bytes [lead, reqBytes) of the stored prefix with a single
		// full-width big-endian store (byte j of the word sits at bit offset
		// 8*(es-1-j), so shifting left by 8*lead aligns byte `lead` with the
		// store's first byte). The bytes written past reqBytes-lead are
		// slack: the next value's store overwrites them, and the final
		// truncation cuts off whatever the last value leaves behind.
		ieee.PutBE(dst[idx:], w<<uint(8*lead))
		idx += reqBytes - lead
		prev = w
	}
	// Pack the 2-bit leading codes, four per byte.
	for i := 0; i < n; i += 4 {
		b := leadBuf[i] << 6
		if i+1 < n {
			b |= leadBuf[i+1] << 4
		}
		if i+2 < n {
			b |= leadBuf[i+2] << 2
		}
		if i+3 < n {
			b |= leadBuf[i+3]
		}
		dst[leadOff+(i>>2)] = b
	}
	return dst[:idx], true
}

// --- exported wrappers (historical per-type API) ---------------------------

// CompressFloat32 compresses data with the SZx algorithm under the absolute
// error bound errBound. The returned stream decompresses with
// DecompressFloat32 such that every value differs from the original by at
// most errBound.
func CompressFloat32(data []float32, errBound float64, opts Options) ([]byte, error) {
	out, _, err := appendCompressed[float32, uint32](nil, data, errBound, opts)
	return out, err
}

// CompressFloat32Stats is CompressFloat32 but also reports per-run statistics.
func CompressFloat32Stats(data []float32, errBound float64, opts Options) ([]byte, Stats, error) {
	return appendCompressed[float32, uint32](nil, data, errBound, opts)
}

// CompressFloat64 compresses data with the SZx algorithm under the absolute
// error bound errBound.
func CompressFloat64(data []float64, errBound float64, opts Options) ([]byte, error) {
	out, _, err := appendCompressed[float64, uint64](nil, data, errBound, opts)
	return out, err
}

// CompressFloat64Stats is CompressFloat64 but also reports per-run statistics.
func CompressFloat64Stats(data []float64, errBound float64, opts Options) ([]byte, Stats, error) {
	return appendCompressed[float64, uint64](nil, data, errBound, opts)
}

package core

import (
	"encoding/binary"
	"math"
	"slices"
	"time"

	"repro/internal/bitio"
	"repro/internal/ieee"
	"repro/internal/kernels"
	"repro/telemetry"
)

// This file holds the single generic block encoder. The float32 and float64
// pipelines are instantiations of the same code; the exported CompressFloat32
// / CompressFloat64 wrappers below pin the historical API.

// appendCompressed appends one complete SZx stream for data onto dst and
// returns the extended slice plus per-run statistics. With sufficient
// capacity in dst it performs no allocations.
func appendCompressed[T Float, B Word](dst []byte, data []T, errBound float64, opts Options) ([]byte, Stats, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, Stats{}, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, Stats{}, ErrErrBound
	}
	es := ieee.Width[T]()
	h := Header{Type: dtypeOf[T](), BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	rec := telemetry.Enabled()
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
	}
	if sink := opts.Spans; sink != nil {
		t0 := time.Now()
		defer func() { sink.RecordSpan("encode", t0, time.Now()) }()
	}
	dstBase := len(dst)

	// Size hint: header + index + a typical ~2x reduction of the payload.
	dst = slices.Grow(dst, headerSize+(nb+7)/8+2*nb+es*len(data)/2+es)
	dst = AppendHeader(dst, h)
	bitmapOff := len(dst)
	dst = appendZeros(dst, (nb+7)/8)
	zsizeOff := len(dst)
	dst = appendZeros(dst, 2*nb)

	enc := newBlockEncoder[T, B](errBound, !opts.Unguarded)
	scr := kernels.GetScratch()
	defer kernels.PutScratch(scr)
	var tally telemetry.BlockTally
	if rec {
		enc.tally = &tally
	}
	st := Stats{Blocks: nb, OriginalSize: es * len(data), EffectiveBound: errBound}
	for k := 0; k < nb; k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		start := len(dst)
		var constant bool
		dst, constant = enc.encodeBlock(dst, data[lo:hi], scr)
		if !constant {
			dst[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		} else {
			st.ConstantBlocks++
		}
		sz := len(dst) - start
		if sz > math.MaxUint16 {
			// Unreachable while maxBlockPayload(MaxBlockSize) fits uint16
			// (enforced at compile time in format.go); kept as a hard stop
			// so a future constant bump cannot silently corrupt the index.
			return nil, Stats{}, ErrBlockSize
		}
		binary.LittleEndian.PutUint16(dst[zsizeOff+2*k:], uint16(sz))
	}
	st.LosslessBlocks = enc.lossless
	st.GuardRetries = enc.retries
	st.CompressedSize = len(dst)
	if rec {
		tally.Flush()
		telemetry.EngineCompressSerial.Inc()
		telemetry.RecordCompress(es*len(data), len(dst)-dstBase, tm.Elapsed())
	}
	return dst, st, nil
}

// blockEncoder carries per-run encoder state across blocks.
type blockEncoder[T Float, B Word] struct {
	errBound float64
	eSafe    T
	guarded  bool
	lossless int
	retries  int
	// tally, when non-nil, accumulates per-block telemetry (block types,
	// required-bit counts, lead-code distribution) without atomics; the
	// owner flushes it once per call. Nil whenever telemetry is disabled,
	// so the hot loops only ever pay a predictable nil check per block.
	tally *telemetry.BlockTally
}

func newBlockEncoder[T Float, B Word](errBound float64, guarded bool) blockEncoder[T, B] {
	// Fast-accept threshold for the guard: a native-width diff below this is
	// safely within the bound even after its own rounding; marginal cases
	// fall through to the exact float64 comparison.
	eSafe := T(errBound * (1 - 1e-6))
	if float64(eSafe) >= errBound {
		// Tiny (subnormal-range) bounds can round eSafe up past the bound;
		// force every value through the exact check instead.
		eSafe = -1
	}
	return blockEncoder[T, B]{errBound: errBound, eSafe: eSafe, guarded: guarded}
}

// encodeBlock appends one block's payload to dst and reports whether the
// block was constant. Nonconstant payload layout:
//
//	μ (4/8B LE) | reqLength (1B) | leading 2-bit array | mid-bytes
//
// scr is passed as a parameter rather than kept in the encoder: the kernel
// call is indirect (through the dispatch table), so escape analysis assumes
// its pointer arguments leak — loading the scratch out of the receiver
// would leak the receiver's contents and force the owner's stack-allocated
// tally to the heap, costing an allocation per compress call.
func (enc *blockEncoder[T, B]) encodeBlock(dst []byte, blk []T, scr *kernels.Scratch) ([]byte, bool) {
	mu, radius, noNaN := blockStats(blk)
	if radius <= enc.errBound && noNaN { // radius NaN also fails the test
		if t := enc.tally; t != nil {
			t.Constant++
		}
		var b [8]byte
		ieee.PutLE(b[:], ieee.ToBits[B](mu))
		return append(dst, b[:ieee.Width[T]()]...), true
	}

	radExpo := ieee.Exponent64(radius)
	errExpo := ieee.Exponent64(enc.errBound)
	reqLen, lossless := ieee.ReqLength[T](radExpo, errExpo)
	start := len(dst)
	for {
		if lossless {
			mu = 0
			enc.lossless++
		}
		var ok bool
		dst, ok = enc.encodeNonConstant(dst, blk, mu, reqLen, lossless, scr)
		if ok {
			if t := enc.tally; t != nil {
				t.NonConstant++
				if lossless {
					t.Lossless++
				}
				t.Req[reqLen]++
				// The packed 2-bit lead array sits right after μ and the
				// reqLength byte; tallying from the packed form costs one
				// table load per four values.
				es := ieee.Width[T]()
				t.CountPackedLeads(dst[start+es+1:start+es+1+bitio.PackedLen(len(blk))], len(blk))
			}
			return dst, false
		}
		// Guard tripped: widen the kept prefix and retry.
		enc.retries++
		if t := enc.tally; t != nil {
			t.Retries++
		}
		dst = dst[:start]
		reqLen += 8
		if reqLen >= ieee.FullBits[T]() {
			reqLen = ieee.FullBits[T]()
			lossless = true
		}
	}
}

// encodeNonConstant writes one nonconstant block payload: μ and the
// reqLength byte inline, then the packed lead array and mid-bytes through
// the dispatched EncodeScan kernel.
func (enc *blockEncoder[T, B]) encodeNonConstant(dst []byte, blk []T, mu T, reqLen int, lossless bool, scr *kernels.Scratch) ([]byte, bool) {
	es := ieee.Width[T]()
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8 // 2..4 for float32, 2..8 for float64
	n := len(blk)
	leadLen := bitio.PackedLen(n)

	// Grow once to the worst-case payload plus one word of slack, and write
	// by index. The slack makes the kernel's wide stores unconditionally
	// in-bounds even when only one byte of a word is kept, so the per-value
	// loop carries no append bookkeeping and no byte-copy tail; the slice
	// is truncated to the actual size at the end.
	start := len(dst)
	maxPayload := es + 1 + leadLen + reqBytes*n + es
	dst = slices.Grow(dst, maxPayload)[:start+maxPayload]
	ieee.PutLE(dst[start:], ieee.ToBits[B](mu))
	dst[start+es] = byte(reqLen)
	leadOff := start + es + 1
	midOff := leadOff + leadLen

	guarded := enc.guarded && !lossless
	lead := dst[leadOff:midOff]
	mid := dst[midOff : start+maxPayload]
	var midLen int
	var ok bool
	if es == 4 {
		midLen, ok = kernels.K32.EncodeScan(lead, mid, asF32(blk), float32(mu), reqLen,
			guarded, float32(enc.eSafe), enc.errBound, scr)
	} else {
		midLen, ok = kernels.K64.EncodeScan(lead, mid, asF64(blk), float64(mu), reqLen,
			guarded, float64(enc.eSafe), enc.errBound, scr)
	}
	if !ok {
		return dst[:start], false
	}
	return dst[:midOff+midLen], true
}

// --- exported wrappers (historical per-type API) ---------------------------

// CompressFloat32 compresses data with the SZx algorithm under the absolute
// error bound errBound. The returned stream decompresses with
// DecompressFloat32 such that every value differs from the original by at
// most errBound.
func CompressFloat32(data []float32, errBound float64, opts Options) ([]byte, error) {
	out, _, err := appendCompressed[float32, uint32](nil, data, errBound, opts)
	return out, err
}

// CompressFloat32Stats is CompressFloat32 but also reports per-run statistics.
func CompressFloat32Stats(data []float32, errBound float64, opts Options) ([]byte, Stats, error) {
	return appendCompressed[float32, uint32](nil, data, errBound, opts)
}

// CompressFloat64 compresses data with the SZx algorithm under the absolute
// error bound errBound.
func CompressFloat64(data []float64, errBound float64, opts Options) ([]byte, error) {
	out, _, err := appendCompressed[float64, uint64](nil, data, errBound, opts)
	return out, err
}

// CompressFloat64Stats is CompressFloat64 but also reports per-run statistics.
func CompressFloat64Stats(data []float64, errBound float64, opts Options) ([]byte, Stats, error) {
	return appendCompressed[float64, uint64](nil, data, errBound, opts)
}

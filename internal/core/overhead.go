package core

import (
	"encoding/binary"
	"math"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// ShiftOverheadReport quantifies the space cost of the byte-aligning
// right-shift (Solution C, §5.2 of the paper) against the tightly packed
// alternative (Solution B). Overhead follows the paper's Formula 6:
// (bits stored by Solution C - bits stored by Solution B) / compressed size.
type ShiftOverheadReport struct {
	BitsSolutionC  int64 // Σ (Rk + s − 8·L'i) over nonconstant values
	BitsSolutionB  int64 // Σ (Rk − 8·Li) over nonconstant values
	CompressedSize int   // actual Solution C stream size in bytes
}

// Overhead returns the paper's Formula 6 ratio.
func (r ShiftOverheadReport) Overhead() float64 {
	if r.CompressedSize == 0 {
		return 0
	}
	return float64(r.BitsSolutionC-r.BitsSolutionB) / 8 / float64(r.CompressedSize)
}

// CharacterizeShiftOverhead32 compresses data with SZx and simultaneously
// counts the necessary mid-bits under Solution C (right-shifted, byte
// aligned) and Solution B (tightly packed), reproducing the measurement
// behind Fig. 6.
func CharacterizeShiftOverhead32(data []float32, errBound float64, blockSize int) (ShiftOverheadReport, error) {
	comp, _, err := CompressFloat32Stats(data, errBound, Options{BlockSize: blockSize})
	if err != nil {
		return ShiftOverheadReport{}, err
	}
	rep := ShiftOverheadReport{CompressedSize: len(comp)}

	bs := blockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	errExpo := ieee.Exponent64(errBound)
	for lo := 0; lo < len(data); lo += bs {
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		blk := data[lo:hi]
		mu, radius, noNaN := blockStats(blk)
		if radius <= errBound && noNaN {
			continue
		}
		radExpo := ieee.Exponent64(radius)
		reqLen, lossless := ieee.ReqLength32(radExpo, errExpo)
		if lossless {
			mu = 0
		}
		s := ieee.ShiftBits(reqLen)
		reqBytes := (reqLen + s) / 8
		maxLeadB := reqLen / 8
		if maxLeadB > 3 {
			maxLeadB = 3
		}
		var prevC, prevB uint32
		for _, d := range blk {
			w := math.Float32bits(d - mu)
			wc := w >> uint(s)
			leadC := bitio.LeadingZeroBytes32(wc ^ prevC)
			if leadC > reqBytes {
				leadC = reqBytes
			}
			rep.BitsSolutionC += int64(reqLen + s - 8*leadC)
			prevC = wc

			leadB := bitio.LeadingZeroBytes32(w ^ prevB)
			if leadB > maxLeadB {
				leadB = maxLeadB
			}
			rep.BitsSolutionB += int64(reqLen - 8*leadB)
			prevB = w
		}
	}
	return rep, nil
}

// --- Solution B reference codec (ablation) -------------------------------
//
// CompressFloat32PackedBits implements the paper's "Solution B": the
// necessary significant bits are packed tightly with bit-granular writes
// instead of being right-shifted to a byte boundary. It exists to measure
// the speed cost that Solution C avoids; its stream is private to this
// package pair of functions.

const packedMagic = "SZXB"

// CompressFloat32PackedBits compresses like SZx but commits mid-bits with a
// bit-packing writer (Solution B in Fig. 5). Guarded like the main codec.
func CompressFloat32PackedBits(data []float32, errBound float64, opts Options) ([]byte, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	nb := (len(data) + bs - 1) / bs

	out := make([]byte, 0, 24+len(data)*2)
	out = append(out, packedMagic...)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(bs))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(data)))
	binary.LittleEndian.PutUint64(hdr[12:], math.Float64bits(errBound))
	out = append(out, hdr[:]...)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)

	errExpo := ieee.Exponent64(errBound)
	bw := bitio.NewWriter(bs * 4)
	for k := 0; k < nb; k++ {
		lo, hi := k*bs, (k+1)*bs
		if hi > len(data) {
			hi = len(data)
		}
		blk := data[lo:hi]
		mu, radius, noNaN := blockStats(blk)
		if radius <= errBound && noNaN {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(mu))
			out = append(out, b[:]...)
			continue
		}
		out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		reqLen, lossless := ieee.ReqLength32(ieee.Exponent64(radius), errExpo)
	retry:
		if lossless {
			mu = 0
		}
		keepMask := uint32(0xFFFFFFFF)
		if reqLen < 32 {
			keepMask <<= uint(32 - reqLen)
		}
		maxLeadB := reqLen / 8
		if maxLeadB > 3 {
			maxLeadB = 3
		}
		bw.Reset()
		leads := bitio.NewTwoBitArray(len(blk))
		var prev uint32
		ok := true
		for i, d := range blk {
			v := d - mu
			w := math.Float32bits(v)
			if !lossless {
				rec := math.Float32frombits(w&keepMask) + mu
				if diff := math.Abs(float64(d) - float64(rec)); !(diff <= errBound) {
					ok = false
					break
				}
			}
			lead := bitio.LeadingZeroBytes32(w ^ prev)
			if lead > maxLeadB {
				lead = maxLeadB
			}
			leads.Set(i, byte(lead))
			nbits := uint(reqLen - 8*lead)
			chunk := (w >> uint(32-reqLen)) & uint32(1<<nbits-1)
			bw.WriteBits(uint64(chunk), nbits)
			prev = w & keepMask
		}
		if !ok {
			reqLen += 8
			if reqLen >= 32 {
				reqLen = 32
				lossless = true
			}
			goto retry
		}
		var b [5]byte
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(mu))
		b[4] = byte(reqLen)
		out = append(out, b[:]...)
		out = append(out, leads.Bytes()...)
		stream := bw.Bytes()
		var sz [2]byte
		binary.LittleEndian.PutUint16(sz[:], uint16(len(stream)))
		out = append(out, sz[:]...)
		out = append(out, stream...)
	}
	return out, nil
}

// DecompressFloat32PackedBits reverses CompressFloat32PackedBits.
func DecompressFloat32PackedBits(comp []byte) ([]float32, error) {
	if len(comp) < 24 || string(comp[:4]) != packedMagic {
		return nil, ErrBadMagic
	}
	bs := int(binary.LittleEndian.Uint32(comp[4:]))
	n := int(binary.LittleEndian.Uint64(comp[8:]))
	if bs < 1 || bs > MaxBlockSize || n < 0 {
		return nil, ErrCorrupt
	}
	nb := (n + bs - 1) / bs
	pos := 24
	if len(comp) < pos+(nb+7)/8 {
		return nil, ErrCorrupt
	}
	bitmap := comp[pos : pos+(nb+7)/8]
	pos += (nb + 7) / 8

	out := make([]float32, n)
	for k := 0; k < nb; k++ {
		lo, hi := k*bs, (k+1)*bs
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		if bitmap[k>>3]&(1<<uint(k&7)) == 0 {
			if pos+4 > len(comp) {
				return nil, ErrCorrupt
			}
			mu := math.Float32frombits(binary.LittleEndian.Uint32(comp[pos:]))
			pos += 4
			for i := lo; i < hi; i++ {
				out[i] = mu
			}
			continue
		}
		leadLen := bitio.PackedLen(cnt)
		if pos+5+leadLen+2 > len(comp) {
			return nil, ErrCorrupt
		}
		mu := math.Float32frombits(binary.LittleEndian.Uint32(comp[pos:]))
		reqLen := int(comp[pos+4])
		if reqLen < ieee.SignExpBits32 || reqLen > ieee.FullBits32 {
			return nil, ErrCorrupt
		}
		leads, err := bitio.TwoBitArrayFromBytes(comp[pos+5:pos+5+leadLen], cnt)
		if err != nil {
			return nil, err
		}
		streamLen := int(binary.LittleEndian.Uint16(comp[pos+5+leadLen:]))
		pos += 5 + leadLen + 2
		if pos+streamLen > len(comp) {
			return nil, ErrCorrupt
		}
		br := bitio.NewReader(comp[pos : pos+streamLen])
		pos += streamLen
		lossless := reqLen == 32
		var prev uint32
		for i := 0; i < cnt; i++ {
			lead := int(leads.Get(i))
			if 8*lead > reqLen {
				return nil, ErrCorrupt
			}
			nbits := uint(reqLen - 8*lead)
			chunk, err := br.ReadBits(nbits)
			if err != nil {
				return nil, err
			}
			top := prev >> uint(32-reqLen)
			top = top&^uint32(1<<nbits-1) | uint32(chunk)
			w := top << uint(32-reqLen)
			prev = w
			if lossless {
				out[lo+i] = math.Float32frombits(w)
			} else {
				out[lo+i] = math.Float32frombits(w) + mu
			}
		}
	}
	return out, nil
}

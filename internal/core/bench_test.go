package core

import (
	"math"
	"math/rand"
	"testing"
)

func benchData(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float32, n)
	v := 5.0
	for i := range out {
		v += 0.1 * (rng.Float64() - 0.5)
		out[i] = float32(v + 2*math.Sin(float64(i)/40))
	}
	return out
}

func BenchmarkCoreCompressF32(b *testing.B) {
	data := benchData(1 << 21)
	b.SetBytes(int64(4 * len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressFloat32(data, 1e-3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressF32(b *testing.B) {
	data := benchData(1 << 21)
	comp, _ := CompressFloat32(data, 1e-3, Options{})
	b.SetBytes(int64(4 * len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := DecompressFloat32(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreCompressF64(b *testing.B) {
	d32 := benchData(1 << 20)
	data := make([]float64, len(d32))
	for i, v := range d32 {
		data[i] = float64(v)
	}
	b.SetBytes(int64(8 * len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := CompressFloat64(data, 1e-6, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressF64(b *testing.B) {
	d32 := benchData(1 << 20)
	data := make([]float64, len(d32))
	for i, v := range d32 {
		data[i] = float64(v)
	}
	comp, _ := CompressFloat64(data, 1e-6, Options{})
	b.SetBytes(int64(8 * len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := DecompressFloat64(comp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- zero-allocation reuse (Into) variants ---------------------------------
//
// Each benchmark reuses its destination buffer across iterations, so after
// the first iteration warms the capacity the codec should report ~0
// allocs/op — the property the Into API exists to provide.

func benchData64(n int) []float64 {
	d32 := benchData(n)
	data := make([]float64, len(d32))
	for i, v := range d32 {
		data[i] = float64(v)
	}
	return data
}

func BenchmarkCoreCompressIntoF32(b *testing.B) {
	data := benchData(1 << 21)
	var dst []byte
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = CompressInto(dst[:0], data, 1e-3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressIntoF32(b *testing.B) {
	data := benchData(1 << 21)
	comp, _ := CompressFloat32(data, 1e-3, Options{})
	var dst []float32
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = DecompressInto(dst[:0], comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreCompressIntoF64(b *testing.B) {
	data := benchData64(1 << 20)
	var dst []byte
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = CompressInto(dst[:0], data, 1e-6, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressIntoF64(b *testing.B) {
	data := benchData64(1 << 20)
	comp, _ := CompressFloat64(data, 1e-6, Options{})
	var dst []float64
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = DecompressInto(dst[:0], comp); err != nil {
			b.Fatal(err)
		}
	}
}

// The parallel Into variants cannot be literally zero-alloc (goroutine
// bookkeeping), but the pooled shard scratch keeps allocations flat in the
// input size.

func BenchmarkCoreCompressParallelIntoF32(b *testing.B) {
	data := benchData(1 << 21)
	var dst []byte
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = CompressParallelInto(dst[:0], data, 1e-3, Options{}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressParallelIntoF32(b *testing.B) {
	data := benchData(1 << 21)
	comp, _ := CompressFloat32(data, 1e-3, Options{})
	var dst []float32
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dst, err = DecompressParallelInto(dst[:0], comp, 4); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"slices"
	"unsafe"

	"repro/internal/ieee"
)

// The codec core is written once, generically, against the trait layer in
// internal/ieee: a Float element type T paired with the Word B of the same
// width that carries its IEEE-754 bit pattern. The two legal pairings —
// (float32, uint32) and (float64, uint64) — are instantiated by the exported
// wrappers, so every internal function can assume the widths match.

// Float constrains the element types the codec supports.
type Float = ieee.Float

// Word carries a Float's IEEE-754 bit pattern at matching width.
type Word = ieee.Word

// dtypeOf returns the stream element tag for T.
func dtypeOf[T Float]() DType {
	if ieee.Width[T]() == 4 {
		return TypeFloat32
	}
	return TypeFloat64
}

// blockStats returns the block representative μ = (min+max)/2 and the
// variation radius r = max(max-μ, μ-min), computed exactly in float64
// (differences of float32 values are exact in float64, and for float64 the
// conversions are identities). The μ formula differs per width to preserve
// the historical bit-exact streams: float32 rounds the float64 midpoint,
// float64 halves before adding so the midpoint cannot overflow.
//
// noNaN reports that the block holds no NaN: NaN compares false against
// min/max and would otherwise slip into a "constant" block unnoticed, so
// the constant path may only be taken when noNaN holds (NaN blocks fall
// through to the nonconstant path, whose guard escalates them to lossless).
func blockStats[T Float](blk []T) (mu T, radius float64, noNaN bool) {
	// Two-accumulator unrolled scan: the running min/max of the even and odd
	// positions are tracked independently so the two compare/select chains
	// overlap instead of serializing on one accumulator, and merged at the
	// end. min/max are order-independent for non-NaN values and both
	// accumulators skip NaN the same way the sequential scan did (NaN
	// compares false), so the results are identical to the single-chain
	// form. The NaN-detecting sum deliberately stays a single chain in the
	// original order: splitting it could change where an intermediate
	// overflow to ±Inf cancels, flipping noNaN on extreme-magnitude data.
	mn, mx := blk[0], blk[0]
	mn2, mx2 := mn, mx
	var sum T
	i := 1
	for ; i+2 <= len(blk); i += 2 {
		a, b := blk[i], blk[i+1]
		sum += a
		sum += b
		if a < mn {
			mn = a
		}
		if a > mx {
			mx = a
		}
		if b < mn2 {
			mn2 = b
		}
		if b > mx2 {
			mx2 = b
		}
	}
	if i < len(blk) {
		v := blk[i]
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn2 < mn {
		mn = mn2
	}
	if mx2 > mx {
		mx = mx2
	}
	if ieee.Width[T]() == 4 {
		mu = T(float32((float64(mn) + float64(mx)) / 2))
	} else {
		mu = mn/2 + mx/2
	}
	a := float64(mx) - float64(mu)
	if b := float64(mu) - float64(mn); b > a {
		a = b
	}
	return mu, a, sum == sum
}

// asF32 / asF64 reinterpret a []T as the concrete element slice. They must
// only be called after a width check; the underlying memory layout is
// identical, so the views alias the input (capacity preserved for
// append-style reuse).
func asF32[T Float](s []T) []float32 {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

func asF64[T Float](s []T) []float64 {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

// asT is the inverse view: a concrete element slice as []T (same width).
func asT[T Float, U Float](s []U) []T {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

// appendZeros extends dst by n zero bytes without a temporary allocation,
// clearing any stale bytes exposed from a reused capacity.
func appendZeros(dst []byte, n int) []byte {
	dst = slices.Grow(dst, n)
	dst = dst[:len(dst)+n]
	clear(dst[len(dst)-n:])
	return dst
}

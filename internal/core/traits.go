package core

import (
	"slices"
	"unsafe"

	"repro/internal/ieee"
	"repro/internal/kernels"
)

// The codec core is written once, generically, against the trait layer in
// internal/ieee: a Float element type T paired with the Word B of the same
// width that carries its IEEE-754 bit pattern. The two legal pairings —
// (float32, uint32) and (float64, uint64) — are instantiated by the exported
// wrappers, so every internal function can assume the widths match.

// Float constrains the element types the codec supports.
type Float = ieee.Float

// Word carries a Float's IEEE-754 bit pattern at matching width.
type Word = ieee.Word

// dtypeOf returns the stream element tag for T.
func dtypeOf[T Float]() DType {
	if ieee.Width[T]() == 4 {
		return TypeFloat32
	}
	return TypeFloat64
}

// blockStats returns the block representative μ = (min+max)/2 and the
// variation radius r = max(max-μ, μ-min), computed exactly in float64
// (differences of float32 values are exact in float64, and for float64 the
// conversions are identities). The μ formula differs per width to preserve
// the historical bit-exact streams: float32 rounds the float64 midpoint,
// float64 halves before adding so the midpoint cannot overflow.
//
// noNaN reports that the block holds no NaN: NaN compares false against
// min/max and would otherwise slip into a "constant" block unnoticed, so
// the constant path may only be taken when noNaN holds (NaN blocks fall
// through to the nonconstant path, whose guard escalates them to lossless).
func blockStats[T Float](blk []T) (mu T, radius float64, noNaN bool) {
	// The min/max/NaN scan is the dispatched Stats kernel (generic or
	// vector, selected at init); only the μ and radius formulas live here.
	var mn, mx T
	if ieee.Width[T]() == 4 {
		m0, m1, nn := kernels.K32.Stats(asF32(blk))
		mn, mx, noNaN = T(m0), T(m1), nn
		mu = T(float32((float64(mn) + float64(mx)) / 2))
	} else {
		m0, m1, nn := kernels.K64.Stats(asF64(blk))
		mn, mx, noNaN = T(m0), T(m1), nn
		mu = mn/2 + mx/2
	}
	a := float64(mx) - float64(mu)
	if b := float64(mu) - float64(mn); b > a {
		a = b
	}
	return mu, a, noNaN
}

// asF32 / asF64 reinterpret a []T as the concrete element slice. They must
// only be called after a width check; the underlying memory layout is
// identical, so the views alias the input (capacity preserved for
// append-style reuse).
func asF32[T Float](s []T) []float32 {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

func asF64[T Float](s []T) []float64 {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

// asT is the inverse view: a concrete element slice as []T (same width).
func asT[T Float, U Float](s []U) []T {
	if cap(s) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(s))), cap(s))[:len(s)]
}

// appendZeros extends dst by n zero bytes without a temporary allocation,
// clearing any stale bytes exposed from a reused capacity.
func appendZeros(dst []byte, n int) []byte {
	dst = slices.Grow(dst, n)
	dst = dst[:len(dst)+n]
	clear(dst[len(dst)-n:])
	return dst
}

package core

import (
	"encoding/binary"
	"math"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// DecompressFloat64 reconstructs the values from a stream produced by
// CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat64 {
		return nil, ErrWrongType
	}
	out := make([]float64, si.Hdr.N)
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	bs := si.Hdr.BlockSize
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(out) {
			hi = len(out)
		}
		if err := decodeBlock64(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeBlock64(p []byte, nonConstant bool, out []float64) error {
	if !nonConstant {
		if len(p) < 8 {
			return ErrCorrupt
		}
		mu := math.Float64frombits(binary.LittleEndian.Uint64(p))
		for i := range out {
			out[i] = mu
		}
		return nil
	}
	n := len(out)
	leadLen := bitio.PackedLen(n)
	if len(p) < 9+leadLen {
		return ErrCorrupt
	}
	mu := math.Float64frombits(binary.LittleEndian.Uint64(p))
	reqLen := int(p[8])
	if reqLen < ieee.SignExpBits64 || reqLen > ieee.FullBits64 {
		return ErrCorrupt
	}
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	lead := p[9 : 9+leadLen]
	mid := p[9+leadLen:]
	lossless := reqLen == ieee.FullBits64

	lowSh := uint(8 * (8 - reqBytes)) // bit offset of the last stored byte
	var prev uint64
	mi := 0
	for i := 0; i < n; i++ {
		l := int(lead[i>>2]>>uint(6-2*(i&3))) & 3
		nm := reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		// Load the mid-bytes as one big-endian word on the fast path
		// (shift counts >= 64 are defined as 0 in Go, covering nm == 0).
		var chunk uint64
		if mi+8 <= len(mid) {
			chunk = binary.BigEndian.Uint64(mid[mi:]) >> uint(8*(8-nm))
		} else {
			if mi+nm > len(mid) {
				return ErrCorrupt
			}
			for j := 0; j < nm; j++ {
				chunk = chunk<<8 | uint64(mid[mi+j])
			}
		}
		mi += nm
		w := prev&^(^uint64(0)>>uint(8*l)) | chunk<<lowSh
		prev = w
		if lossless {
			out[i] = math.Float64frombits(w)
		} else {
			out[i] = math.Float64frombits(w<<s) + mu
		}
	}
	return nil
}

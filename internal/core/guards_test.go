package core

import (
	"math"
	"testing"

	"repro/internal/bitio"
)

// TestShardBounds checks the shard splitter's invariants for a sweep of
// (n, workers) shapes, including the degenerate and adversarial ones: the
// boundaries must start at 0, end at n, be monotonically non-decreasing,
// and differ by at most one item between the largest and smallest shard.
func TestShardBounds(t *testing.T) {
	cases := []struct{ n, workers int }{
		{0, 1}, {0, 8}, {1, 1}, {1, 16}, {5, 2}, {7, 7}, {7, 8},
		{100, 3}, {128, 4}, {129, 4}, {1 << 20, 7},
		{math.MaxInt / 2, 64}, // would overflow the i*n/workers form
		{math.MaxInt, 3},
		{10, 0}, {10, -4}, // degenerate worker counts clamp to 1
	}
	for _, c := range cases {
		b := shard(c.n, c.workers)
		if b[0] != 0 || b[len(b)-1] != c.n {
			t.Fatalf("shard(%d,%d): bounds [%d..%d], want [0..%d]", c.n, c.workers, b[0], b[len(b)-1], c.n)
		}
		if len(b)-1 > c.workers && c.workers >= 1 {
			t.Fatalf("shard(%d,%d): %d shards exceeds workers", c.n, c.workers, len(b)-1)
		}
		mn, mx := math.MaxInt, 0
		for i := 1; i < len(b); i++ {
			sz := b[i] - b[i-1]
			if sz < 0 {
				t.Fatalf("shard(%d,%d): decreasing boundary at %d", c.n, c.workers, i)
			}
			if sz < mn {
				mn = sz
			}
			if sz > mx {
				mx = sz
			}
		}
		if len(b) > 2 && mx-mn > 1 {
			t.Fatalf("shard(%d,%d): imbalance %d vs %d", c.n, c.workers, mn, mx)
		}
	}
}

// TestZsizeGuard exercises the uint16 block-size side channel's guard rails:
// the worst-case payload of a maximum-size block must fit in a uint16 (the
// compile-time const assertion in format.go mirrors this), and the
// compressor must reject block sizes whose worst case cannot.
func TestZsizeGuard(t *testing.T) {
	// Worst case: lossless float64 block, every lead code 0.
	worst := 8 + 1 + bitio.PackedLen(MaxBlockSize) + 8*MaxBlockSize
	if worst != maxBlockPayload64 {
		t.Fatalf("maxBlockPayload64 = %d, want %d", maxBlockPayload64, worst)
	}
	if worst > math.MaxUint16 {
		t.Fatalf("worst-case block payload %d does not fit uint16", worst)
	}

	// A stream of incompressible values at MaxBlockSize must round-trip:
	// every block takes the lossless path and stresses the widest payloads
	// the size channel can carry.
	data := make([]float64, 2*MaxBlockSize+17)
	v := 1.0
	for i := range data {
		v = v*1103515245.5 + 12345.25
		if math.IsInf(v, 0) {
			v = 1.0
		}
		data[i] = v
	}
	comp, err := CompressFloat64(data, 1e-300, Options{BlockSize: MaxBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float64bits(dec[i]) != math.Float64bits(data[i]) {
			t.Fatalf("lossless round-trip differs at %d", i)
		}
	}

	// Oversized block sizes are rejected up front.
	if _, err := CompressFloat64(data, 1e-3, Options{BlockSize: MaxBlockSize + 1}); err != ErrBlockSize {
		t.Fatalf("BlockSize %d: got %v, want ErrBlockSize", MaxBlockSize+1, err)
	}
}

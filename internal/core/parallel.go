package core

import (
	"encoding/binary"
	"math"
	"runtime"
	"slices"
	"sync"
)

// Workers resolves a worker-count request: 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// shard splits n items into at most workers contiguous ranges of near-equal
// size. It returns the range boundaries (len = shards+1). The split is
// computed by accumulation — base items per shard plus one extra for the
// first n%workers shards — so the arithmetic cannot overflow for any n,
// unlike the textbook i*n/workers form.
func shard(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	base, rem := n/workers, n%workers
	off := 0
	for i := 0; i < workers; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[workers] = off
	return bounds
}

// shardScratch is a worker's private compression output, pooled across calls
// so that steady-state parallel compression reuses warm buffers instead of
// allocating per shard.
type shardScratch struct {
	payload []byte
	sizes   []uint16
	bitmap  []bool
}

var shardPool = sync.Pool{New: func() any { return new(shardScratch) }}

func getShardScratch(nblocks, payloadHint int) *shardScratch {
	o := shardPool.Get().(*shardScratch)
	o.payload = slices.Grow(o.payload[:0], payloadHint)
	if cap(o.sizes) < nblocks {
		o.sizes = make([]uint16, nblocks)
	} else {
		o.sizes = o.sizes[:nblocks]
	}
	if cap(o.bitmap) < nblocks {
		o.bitmap = make([]bool, nblocks)
	} else {
		o.bitmap = o.bitmap[:nblocks]
	}
	return o
}

// offsPool recycles the block-offset prefix-sum arrays used by the parallel
// and random-access decompressors.
var offsPool = sync.Pool{New: func() any { return new([]int) }}

// blockOffsetsPooled is Index.BlockOffsets backed by a pooled array; callers
// must return the slice via putOffs when done.
func blockOffsetsPooled(si Index) ([]int, error) {
	nb := si.Hdr.NumBlocks()
	p := offsPool.Get().(*[]int)
	offs := *p
	if cap(offs) < nb+1 {
		offs = make([]int, nb+1)
	} else {
		offs = offs[:nb+1]
	}
	*p = offs
	sum := 0
	for k := 0; k < nb; k++ {
		offs[k] = sum
		sum += si.BlockSizeBytes(k)
	}
	offs[nb] = sum
	if sum > len(si.Payload) {
		putOffs(p)
		return nil, ErrCorrupt
	}
	return offs, nil
}

func putOffs(p *[]int) { offsPool.Put(p) }

// appendCompressedParallel is appendCompressed with block-parallel encoding
// across a goroutine pool, the analogue of the paper's OpenMP compressor
// (§6.1): blocks are independent, so each worker compresses a contiguous
// run of blocks into a pooled private buffer and the results are
// concatenated in block order (the shard boundaries therefore never affect
// the output bytes).
func appendCompressedParallel[T Float, B Word](dst []byte, data []T, errBound float64, opts Options, workers int) ([]byte, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	h := Header{Type: dtypeOf[T](), BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		out, _, err := appendCompressed[T, B](dst, data, errBound, opts)
		return out, err
	}

	es := dtypeOf[T]().Size()
	bounds := shard(nb, w)
	nshards := len(bounds) - 1
	outs := make([]*shardScratch, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lo, hi := bounds[si], bounds[si+1]
			enc := newBlockEncoder[T, B](errBound, !opts.Unguarded)
			o := getShardScratch(hi-lo, (hi-lo)*bs*es/2)
			for k := lo; k < hi; k++ {
				blo, bhi := k*bs, (k+1)*bs
				if bhi > len(data) {
					bhi = len(data)
				}
				start := len(o.payload)
				var constant bool
				o.payload, constant = enc.encodeBlock(o.payload, data[blo:bhi])
				o.sizes[k-lo] = uint16(len(o.payload) - start)
				o.bitmap[k-lo] = !constant
			}
			outs[si] = o
		}(si)
	}
	wg.Wait()

	total := headerSize + (nb+7)/8 + 2*nb
	for _, o := range outs {
		total += len(o.payload)
	}
	dst = slices.Grow(dst, total)
	out := AppendHeader(dst, h)
	bitmapOff := len(out)
	out = appendZeros(out, (nb+7)/8)
	zsizeOff := len(out)
	out = appendZeros(out, 2*nb)
	for si, o := range outs {
		lo := bounds[si]
		for i, sz := range o.sizes {
			k := lo + i
			binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], sz)
			if o.bitmap[i] {
				out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
			}
		}
		out = append(out, o.payload...)
		shardPool.Put(o)
	}
	return out, nil
}

// appendDecompressedParallel decompresses block-parallel: a prefix sum over
// the embedded zsize array gives every worker the byte offset of its blocks
// (the paper's prefix-sum step in Fig. 10).
func appendDecompressedParallel[T Float, B Word](dst []T, comp []byte, workers int) ([]T, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != dtypeOf[T]() {
		return nil, ErrWrongType
	}
	nb := si.Hdr.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		return appendDecompressed[T, B](dst, comp)
	}
	offs, err := blockOffsetsPooled(si)
	if err != nil {
		return nil, err
	}
	defer putOffs(&offs)
	base := len(dst)
	dst = slices.Grow(dst, si.Hdr.N)[:base+si.Hdr.N]
	out := dst[base:]
	bounds := shard(nb, w)
	bs := si.Hdr.BlockSize
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for s := 0; s < len(bounds)-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := bounds[s]; k < bounds[s+1]; k++ {
				lo, hi := k*bs, (k+1)*bs
				if hi > len(out) {
					hi = len(out)
				}
				if err := decodeBlock[T, B](si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[lo:hi]); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return dst, nil
}

// --- exported wrappers (historical per-type API) ---------------------------

// CompressFloat32Parallel is CompressFloat32 with block-parallel encoding.
func CompressFloat32Parallel(data []float32, errBound float64, opts Options, workers int) ([]byte, error) {
	return appendCompressedParallel[float32, uint32](nil, data, errBound, opts, workers)
}

// DecompressFloat32Parallel is DecompressFloat32 with block-parallel decoding.
func DecompressFloat32Parallel(comp []byte, workers int) ([]float32, error) {
	return appendDecompressedParallel[float32, uint32](nil, comp, workers)
}

// CompressFloat64Parallel is the float64 analogue of CompressFloat32Parallel.
func CompressFloat64Parallel(data []float64, errBound float64, opts Options, workers int) ([]byte, error) {
	return appendCompressedParallel[float64, uint64](nil, data, errBound, opts, workers)
}

// DecompressFloat64Parallel is the float64 analogue of
// DecompressFloat32Parallel.
func DecompressFloat64Parallel(comp []byte, workers int) ([]float64, error) {
	return appendDecompressedParallel[float64, uint64](nil, comp, workers)
}

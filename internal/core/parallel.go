package core

import (
	"encoding/binary"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ieee"
	"repro/internal/kernels"
	"repro/telemetry"
)

// ParallelMinBytes is the adaptive engine's serial-fallback threshold: inputs
// (for compression) or outputs (for decompression) smaller than this many
// bytes are always processed on the calling goroutine, because below it the
// fixed cost of scheduling workers exceeds the codec work itself. It is keyed
// on bytes rather than block count so the decision tracks actual work: a
// two-block stream is tiny, but so is a 256-block stream of one-value blocks.
//
// The default (64 KiB) was chosen empirically; it is exported as a tunable
// for benchmark harnesses and tests. Setting it to 0 disables the adaptive
// fallbacks entirely — every eligible call takes the work-stealing engine,
// even on inputs or machines where that is known to be slower (tests and
// fuzzers use this to force the engine on small inputs). It must only be
// changed while no compressions are in flight.
var ParallelMinBytes = 64 << 10

// serialFaster reports whether the adaptive policy predicts the calling
// goroutine will beat the work-stealing engine on work bytes: either the
// input is too small to amortize scheduling, or there is only one P, which
// makes the engine's two-phase scratch-then-gather copy pure overhead (no
// second core ever overlaps it). ParallelMinBytes == 0 disables the policy.
func serialFaster(workBytes int) bool {
	return ParallelMinBytes > 0 &&
		(workBytes < ParallelMinBytes || runtime.GOMAXPROCS(0) == 1)
}

// Workers resolves a worker-count request: 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// shard splits n items into at most workers contiguous ranges of near-equal
// size. It returns the range boundaries (len = shards+1). The split is
// computed by accumulation — base items per shard plus one extra for the
// first n%workers shards — so the arithmetic cannot overflow for any n,
// unlike the textbook i*n/workers form. (The codec hot paths now use the
// dynamic chunk engine below; shard remains for callers that want a static
// partition, e.g. the timeseries fan-out.)
func shard(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	base, rem := n/workers, n%workers
	off := 0
	for i := 0; i < workers; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[workers] = off
	return bounds
}

// --- persistent worker pool ------------------------------------------------

// workerPool is a fixed set of goroutines, started once and reused by every
// parallel codec call in the process, so steady-state calls pay a channel
// handoff per participant instead of a goroutine spawn. Tasks submitted to
// the pool must be self-terminating (the codec submits work-stealing loops
// that exit when the shared cursor runs out), so running them on fewer
// goroutines than submitted is always safe — it only reduces concurrency.
type workerPool struct {
	once  sync.Once
	tasks chan func()
}

var encPool workerPool

func (p *workerPool) start() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	p.tasks = make(chan func(), 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
}

// submit schedules f on the pool. If the pool's queue is full (caller asked
// for far more participants than the machine has cores), f runs on a fresh
// goroutine rather than blocking the caller.
func (p *workerPool) submit(f func()) {
	p.once.Do(p.start)
	select {
	case p.tasks <- f:
	default:
		go f()
	}
}

// --- pooled scratch --------------------------------------------------------

// shardScratch is one participant's private compression output, pooled
// across calls so that steady-state parallel compression reuses warm buffers
// instead of allocating per call. payload/sizes/bitmap are appended to as
// the participant claims chunks; chunkMeta records where each chunk landed.
type shardScratch struct {
	payload []byte
	sizes   []uint16
	bitmap  []bool
}

var shardPool = sync.Pool{New: func() any { return new(shardScratch) }}

func getShardScratch(nblocks, payloadHint int) *shardScratch {
	o := shardPool.Get().(*shardScratch)
	o.payload = slices.Grow(o.payload[:0], payloadHint)
	o.sizes = slices.Grow(o.sizes[:0], nblocks)
	o.bitmap = slices.Grow(o.bitmap[:0], nblocks)
	return o
}

// chunkMeta records where one chunk's encoded output lives before the
// parallel gather copies it to its final offset.
type chunkMeta struct {
	scratch  int // index of the participant scratch holding the bytes
	off      int // chunk payload offset within that scratch's payload
	size     int // chunk payload length in bytes
	sizesOff int // index of the chunk's first block in sizes/bitmap
	dstOff   int // final offset within the output payload section
}

// parJob holds the per-call bookkeeping of the work-stealing engine, pooled
// so the parallel paths allocate only the participant closures per call.
type parJob struct {
	metas  []chunkMeta
	outs   []*shardScratch
	errs   []error
	encode atomic.Int64 // phase-1 chunk cursor
	gather atomic.Int64 // phase-2 chunk cursor
	wg     sync.WaitGroup
}

var parJobPool = sync.Pool{New: func() any { return new(parJob) }}

func getParJob(nchunks, participants int) *parJob {
	j := parJobPool.Get().(*parJob)
	j.metas = slices.Grow(j.metas[:0], nchunks)[:nchunks]
	j.outs = slices.Grow(j.outs[:0], participants)[:participants]
	j.errs = slices.Grow(j.errs[:0], participants)[:participants]
	for i := range j.errs {
		j.errs[i] = nil
	}
	j.encode.Store(0)
	j.gather.Store(0)
	return j
}

func putParJob(j *parJob) {
	for i := range j.outs {
		j.outs[i] = nil
	}
	parJobPool.Put(j)
}

// chunkBlocks picks the work-stealing granularity: a multiple of 8 blocks
// (so a chunk's bitmap bytes are private to it and the gather phase writes
// the bitmap without atomics), at least 8 blocks per chunk to amortize the
// cursor increment, and aimed at ≥4 chunks per worker so guard-retry or
// constant-block skew rebalances instead of tail-latencying a static shard.
func chunkBlocks(nb, workers int) int {
	c := nb / (4 * workers)
	c &^= 7
	if c < 8 {
		c = 8
	}
	return c
}

// offsPool recycles the block-offset prefix-sum arrays used by the parallel
// and random-access decompressors.
var offsPool = sync.Pool{New: func() any { return new([]int) }}

// blockOffsetsPooled is Index.BlockOffsets backed by a pooled array; callers
// must return the slice via putOffs when done.
func blockOffsetsPooled(si Index) ([]int, error) {
	nb := si.Hdr.NumBlocks()
	p := offsPool.Get().(*[]int)
	offs := *p
	if cap(offs) < nb+1 {
		offs = make([]int, nb+1)
	} else {
		offs = offs[:nb+1]
	}
	*p = offs
	sum := 0
	for k := 0; k < nb; k++ {
		offs[k] = sum
		sum += si.BlockSizeBytes(k)
	}
	offs[nb] = sum
	if sum > len(si.Payload) {
		putOffs(p)
		return nil, ErrCorrupt
	}
	return offs, nil
}

func putOffs(p *[]int) { offsPool.Put(p) }

// appendCompressedParallel is appendCompressed with block-parallel encoding,
// the analogue of the paper's OpenMP compressor (§6.1): blocks are
// independent, so workers compress them into private buffers and the results
// are stitched in block order (the scheduling therefore never affects the
// output bytes).
//
// The engine is adaptive and two-phase. Inputs below ParallelMinBytes are
// encoded serially on the caller. Above it, the block range is cut into
// chunks (a multiple of 8 blocks) claimed from an atomic cursor — dynamic
// work-stealing, so a run of guard-retried or constant blocks slows only the
// worker that hits it. After a barrier, the chunk offsets are prefix-summed
// and the same workers gather: each copies its claimed chunks' payload into
// the final buffer at its exact offset and fills that chunk's bitmap and
// zsize entries, replacing the old serial concatenation memcpy with parallel
// disjoint copies. Participants run on the persistent process-wide pool, not
// freshly spawned goroutines.
func appendCompressedParallel[T Float, B Word](dst []byte, data []T, errBound float64, opts Options, workers int) ([]byte, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	es := ieee.Width[T]()
	h := Header{Type: dtypeOf[T](), BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	w := Workers(workers)
	chunk := chunkBlocks(nb, w)
	nchunks := (nb + chunk - 1) / chunk
	rec := telemetry.Enabled()
	if w == 1 || nchunks < 2 || serialFaster(es*len(data)) {
		if rec {
			telemetry.EngineCompressFallback.Inc()
		}
		out, _, err := appendCompressed[T, B](dst, data, errBound, opts)
		return out, err
	}
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
		telemetry.EngineCompressParallel.Inc()
	}
	dstBase := len(dst)
	participants := w
	if participants > nchunks {
		participants = nchunks
	}
	if rec {
		telemetry.ParallelParticipants.Add(int64(participants))
	}

	j := getParJob(nchunks, participants)
	payloadHint := es * len(data) / (2 * participants)

	// Phase 1: encode. Each participant steals chunks off the cursor and
	// appends their payload to its private scratch.
	encodeWorker := func(id int) {
		enc := newBlockEncoder[T, B](errBound, !opts.Unguarded)
		scr := kernels.GetScratch()
		defer kernels.PutScratch(scr)
		var tally telemetry.BlockTally
		if rec {
			enc.tally = &tally
		}
		claimed := 0
		o := getShardScratch(nb/participants+chunk, payloadHint)
		j.outs[id] = o
		for {
			c := int(j.encode.Add(1) - 1)
			if c >= nchunks {
				break
			}
			claimed++
			lo, hi := c*chunk, (c+1)*chunk
			if hi > nb {
				hi = nb
			}
			m := &j.metas[c]
			m.scratch = id
			m.off = len(o.payload)
			m.sizesOff = len(o.sizes)
			for k := lo; k < hi; k++ {
				blo, bhi := k*bs, (k+1)*bs
				if bhi > len(data) {
					bhi = len(data)
				}
				start := len(o.payload)
				var constant bool
				o.payload, constant = enc.encodeBlock(o.payload, data[blo:bhi], scr)
				o.sizes = append(o.sizes, uint16(len(o.payload)-start))
				o.bitmap = append(o.bitmap, !constant)
			}
			m.size = len(o.payload) - m.off
		}
		if rec {
			tally.Flush()
			flushWorkerChunks(id, claimed)
		}
		j.wg.Done()
	}
	sink := opts.Spans
	var phase telemetry.Timer
	var phaseT0 time.Time
	if rec {
		phase = telemetry.Start()
	}
	if sink != nil {
		phaseT0 = time.Now()
	}
	j.wg.Add(participants)
	for id := 1; id < participants; id++ {
		id := id
		encPool.submit(func() { runStage(rec, "encode", func() { encodeWorker(id) }) })
	}
	runStage(rec, "encode", func() { encodeWorker(0) })
	j.wg.Wait()
	if rec {
		phase.Stop(&telemetry.EncodePhaseDurations)
	}
	if sink != nil {
		sink.RecordSpan("encode_phase", phaseT0, time.Now())
	}

	// Prefix-sum the chunk offsets and lay out the container.
	total := 0
	for c := range j.metas {
		j.metas[c].dstOff = total
		total += j.metas[c].size
	}
	dst = slices.Grow(dst, headerSize+(nb+7)/8+2*nb+total)
	out := AppendHeader(dst, h)
	bitmapOff := len(out)
	out = appendZeros(out, (nb+7)/8)
	zsizeOff := len(out)
	out = appendZeros(out, 2*nb)
	payloadOff := len(out)
	out = out[:payloadOff+total]

	// Phase 2: gather. The same participants steal chunks again and copy
	// each chunk's payload to its final offset, filling its zsize entries
	// and bitmap bytes (disjoint per chunk: chunk is a multiple of 8
	// blocks, so no two chunks share a bitmap byte).
	gatherWorker := func(id int) {
		for {
			c := int(j.gather.Add(1) - 1)
			if c >= nchunks {
				break
			}
			m := &j.metas[c]
			o := j.outs[m.scratch]
			copy(out[payloadOff+m.dstOff:], o.payload[m.off:m.off+m.size])
			lo, hi := c*chunk, (c+1)*chunk
			if hi > nb {
				hi = nb
			}
			for k := lo; k < hi; k++ {
				i := m.sizesOff + (k - lo)
				binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], o.sizes[i])
				if o.bitmap[i] {
					out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
				}
			}
		}
		j.wg.Done()
	}
	if rec {
		phase = telemetry.Start()
	}
	if sink != nil {
		phaseT0 = time.Now()
	}
	j.wg.Add(participants)
	for id := 1; id < participants; id++ {
		id := id
		encPool.submit(func() { runStage(rec, "gather", func() { gatherWorker(id) }) })
	}
	runStage(rec, "gather", func() { gatherWorker(0) })
	j.wg.Wait()
	if rec {
		phase.Stop(&telemetry.GatherPhaseDurations)
	}
	if sink != nil {
		sink.RecordSpan("gather_phase", phaseT0, time.Now())
	}

	for _, o := range j.outs {
		shardPool.Put(o)
	}
	putParJob(j)
	if rec {
		telemetry.RecordCompress(es*len(data), len(out)-dstBase, tm.Elapsed())
	}
	return out, nil
}

// appendDecompressedParallel decompresses block-parallel: a prefix sum over
// the embedded zsize array gives every worker the byte offset of its blocks
// (the paper's prefix-sum step in Fig. 10). Work distribution uses the same
// adaptive chunked work-stealing as the compressor, on the same persistent
// pool; outputs below ParallelMinBytes decode serially.
func appendDecompressedParallel[T Float, B Word](dst []T, comp []byte, workers int) ([]T, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != dtypeOf[T]() {
		return nil, ErrWrongType
	}
	nb := si.Hdr.NumBlocks()
	es := ieee.Width[T]()
	w := Workers(workers)
	chunk := chunkBlocks(nb, w)
	nchunks := (nb + chunk - 1) / chunk
	rec := telemetry.Enabled()
	if w == 1 || nchunks < 2 || serialFaster(es*si.Hdr.N) {
		if rec {
			telemetry.EngineDecompressFallback.Inc()
		}
		return appendDecompressed[T, B](dst, comp)
	}
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
		telemetry.EngineDecompressParallel.Inc()
	}
	participants := w
	if participants > nchunks {
		participants = nchunks
	}
	if rec {
		telemetry.ParallelParticipants.Add(int64(participants))
	}
	offs, err := blockOffsetsPooled(si)
	if err != nil {
		return nil, err
	}
	defer putOffs(&offs)
	base := len(dst)
	dst = slices.Grow(dst, si.Hdr.N)[:base+si.Hdr.N]
	out := dst[base:]
	bs := si.Hdr.BlockSize

	j := getParJob(nchunks, participants)
	decodeWorker := func(id int) {
		claimed := 0
		for {
			c := int(j.encode.Add(1) - 1)
			if c >= nchunks {
				break
			}
			claimed++
			lo, hi := c*chunk, (c+1)*chunk
			if hi > nb {
				hi = nb
			}
			for k := lo; k < hi; k++ {
				blo, bhi := k*bs, (k+1)*bs
				if bhi > len(out) {
					bhi = len(out)
				}
				if err := decodeBlock[T, B](si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[blo:bhi]); err != nil {
					j.errs[id] = err
					break
				}
			}
		}
		if rec {
			flushWorkerChunks(id, claimed)
		}
		j.wg.Done()
	}
	j.wg.Add(participants)
	for id := 1; id < participants; id++ {
		id := id
		encPool.submit(func() { runStage(rec, "decode", func() { decodeWorker(id) }) })
	}
	runStage(rec, "decode", func() { decodeWorker(0) })
	j.wg.Wait()
	for _, e := range j.errs {
		if e != nil {
			putParJob(j)
			return nil, e
		}
	}
	putParJob(j)
	if rec {
		recordDecodedBlocks(si)
		telemetry.RecordDecompress(len(comp), es*si.Hdr.N, tm.Elapsed())
	}
	return dst, nil
}

// --- exported wrappers (historical per-type API) ---------------------------

// CompressFloat32Parallel is CompressFloat32 with block-parallel encoding.
func CompressFloat32Parallel(data []float32, errBound float64, opts Options, workers int) ([]byte, error) {
	return appendCompressedParallel[float32, uint32](nil, data, errBound, opts, workers)
}

// DecompressFloat32Parallel is DecompressFloat32 with block-parallel decoding.
func DecompressFloat32Parallel(comp []byte, workers int) ([]float32, error) {
	return appendDecompressedParallel[float32, uint32](nil, comp, workers)
}

// CompressFloat64Parallel is the float64 analogue of CompressFloat32Parallel.
func CompressFloat64Parallel(data []float64, errBound float64, opts Options, workers int) ([]byte, error) {
	return appendCompressedParallel[float64, uint64](nil, data, errBound, opts, workers)
}

// DecompressFloat64Parallel is the float64 analogue of
// DecompressFloat32Parallel.
func DecompressFloat64Parallel(comp []byte, workers int) ([]float64, error) {
	return appendDecompressedParallel[float64, uint64](nil, comp, workers)
}

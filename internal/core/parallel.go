package core

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
)

// Workers resolves a worker-count request: 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// shard splits n items into at most workers contiguous ranges of
// near-equal size. It returns the range boundaries (len = shards+1).
func shard(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}
	return bounds
}

// CompressFloat32Parallel is CompressFloat32 with block-parallel encoding
// across a goroutine pool, the analogue of the paper's OpenMP compressor
// (§6.1): blocks are independent, so each worker compresses a contiguous
// run of blocks into a private buffer and the results are concatenated.
func CompressFloat32Parallel(data []float32, errBound float64, opts Options, workers int) ([]byte, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	h := Header{Type: TypeFloat32, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		return CompressFloat32(data, errBound, opts)
	}

	bounds := shard(nb, w)
	nshards := len(bounds) - 1
	type shardOut struct {
		payload []byte
		sizes   []uint16
		bitmap  []bool
	}
	outs := make([]shardOut, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lo, hi := bounds[si], bounds[si+1]
			enc := blockEncoder32{errBound: errBound, guarded: !opts.Unguarded}
			o := shardOut{
				payload: make([]byte, 0, (hi-lo)*bs*2),
				sizes:   make([]uint16, hi-lo),
				bitmap:  make([]bool, hi-lo),
			}
			for k := lo; k < hi; k++ {
				blo, bhi := k*bs, (k+1)*bs
				if bhi > len(data) {
					bhi = len(data)
				}
				start := len(o.payload)
				var constant bool
				o.payload, constant = enc.encodeBlock(o.payload, data[blo:bhi])
				o.sizes[k-lo] = uint16(len(o.payload) - start)
				o.bitmap[k-lo] = !constant
			}
			outs[si] = o
		}(si)
	}
	wg.Wait()

	total := headerSize + (nb+7)/8 + 2*nb
	for _, o := range outs {
		total += len(o.payload)
	}
	out := make([]byte, 0, total)
	out = AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)
	for si, o := range outs {
		lo := bounds[si]
		for i, sz := range o.sizes {
			k := lo + i
			binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], sz)
			if o.bitmap[i] {
				out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
			}
		}
		out = append(out, o.payload...)
	}
	return out, nil
}

// DecompressFloat32Parallel decompresses block-parallel: a prefix sum over
// the embedded zsize array gives every worker the byte offset of its blocks
// (the paper's prefix-sum step in Fig. 10).
func DecompressFloat32Parallel(comp []byte, workers int) ([]float32, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat32 {
		return nil, ErrWrongType
	}
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	out := make([]float32, si.Hdr.N)
	nb := si.Hdr.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		return DecompressFloat32(comp)
	}
	bounds := shard(nb, w)
	bs := si.Hdr.BlockSize
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for s := 0; s < len(bounds)-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := bounds[s]; k < bounds[s+1]; k++ {
				lo, hi := k*bs, (k+1)*bs
				if hi > len(out) {
					hi = len(out)
				}
				if err := decodeBlock32(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[lo:hi]); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// CompressFloat64Parallel is the float64 analogue of CompressFloat32Parallel.
func CompressFloat64Parallel(data []float64, errBound float64, opts Options, workers int) ([]byte, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, ErrErrBound
	}
	h := Header{Type: TypeFloat64, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		return CompressFloat64(data, errBound, opts)
	}

	bounds := shard(nb, w)
	nshards := len(bounds) - 1
	type shardOut struct {
		payload []byte
		sizes   []uint16
		bitmap  []bool
	}
	outs := make([]shardOut, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lo, hi := bounds[si], bounds[si+1]
			enc := blockEncoder64{errBound: errBound, guarded: !opts.Unguarded}
			o := shardOut{
				payload: make([]byte, 0, (hi-lo)*bs*4),
				sizes:   make([]uint16, hi-lo),
				bitmap:  make([]bool, hi-lo),
			}
			for k := lo; k < hi; k++ {
				blo, bhi := k*bs, (k+1)*bs
				if bhi > len(data) {
					bhi = len(data)
				}
				start := len(o.payload)
				var constant bool
				o.payload, constant = enc.encodeBlock(o.payload, data[blo:bhi])
				o.sizes[k-lo] = uint16(len(o.payload) - start)
				o.bitmap[k-lo] = !constant
			}
			outs[si] = o
		}(si)
	}
	wg.Wait()

	total := headerSize + (nb+7)/8 + 2*nb
	for _, o := range outs {
		total += len(o.payload)
	}
	out := make([]byte, 0, total)
	out = AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)
	for si, o := range outs {
		lo := bounds[si]
		for i, sz := range o.sizes {
			k := lo + i
			binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], sz)
			if o.bitmap[i] {
				out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
			}
		}
		out = append(out, o.payload...)
	}
	return out, nil
}

// DecompressFloat64Parallel is the float64 analogue of
// DecompressFloat32Parallel.
func DecompressFloat64Parallel(comp []byte, workers int) ([]float64, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat64 {
		return nil, ErrWrongType
	}
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	out := make([]float64, si.Hdr.N)
	nb := si.Hdr.NumBlocks()
	w := Workers(workers)
	if w == 1 || nb < 2 {
		return DecompressFloat64(comp)
	}
	bounds := shard(nb, w)
	bs := si.Hdr.BlockSize
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for s := 0; s < len(bounds)-1; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := bounds[s]; k < bounds[s+1]; k++ {
				lo, hi := k*bs, (k+1)*bs
				if hi > len(out) {
					hi = len(out)
				}
				if err := decodeBlock64(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[lo:hi]); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

package core

import (
	"encoding/binary"
	"math"
	"slices"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// CompressFloat64 compresses data with the SZx algorithm under the absolute
// error bound errBound.
func CompressFloat64(data []float64, errBound float64, opts Options) ([]byte, error) {
	out, _, err := CompressFloat64Stats(data, errBound, opts)
	return out, err
}

// CompressFloat64Stats is CompressFloat64 but also reports per-run statistics.
func CompressFloat64Stats(data []float64, errBound float64, opts Options) ([]byte, Stats, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, Stats{}, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, Stats{}, ErrErrBound
	}
	h := Header{Type: TypeFloat64, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()

	out := make([]byte, 0, headerSize+(nb+7)/8+2*nb+4*len(data))
	out = AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)

	enc := blockEncoder64{errBound: errBound, guarded: !opts.Unguarded}
	st := Stats{Blocks: nb, OriginalSize: 8 * len(data)}
	for k := 0; k < nb; k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		start := len(out)
		var constant bool
		out, constant = enc.encodeBlock(out, data[lo:hi])
		if !constant {
			out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		} else {
			st.ConstantBlocks++
		}
		binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], uint16(len(out)-start))
	}
	st.LosslessBlocks = enc.lossless
	st.GuardRetries = enc.retries
	st.CompressedSize = len(out)
	return out, st, nil
}

type blockEncoder64 struct {
	errBound float64
	guarded  bool
	lossless int
	retries  int
	// leadBuf stages per-value leading-byte codes before packing.
	leadBuf [MaxBlockSize]byte
}

// blockStats64 returns μ = (min+max)/2 and the variation radius. The radius
// is computed against the rounded μ so the constant-block test |d-μ| ≤ e is
// exact; mid-point overflow is avoided by halving before adding.
func blockStats64(blk []float64) (mu float64, radius float64, noNaN bool) {
	mn, mx := blk[0], blk[0]
	sum := 0.0
	for _, v := range blk[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
	}
	mu = mn/2 + mx/2
	a := mx - mu
	if b := mu - mn; b > a {
		a = b
	}
	return mu, a, sum == sum
}

// encodeBlock appends one block's payload to dst. Nonconstant layout:
//
//	μ (8B LE) | reqLength (1B) | leading 2-bit array | mid-bytes
func (enc *blockEncoder64) encodeBlock(dst []byte, blk []float64) ([]byte, bool) {
	mu, radius, noNaN := blockStats64(blk)
	if radius <= enc.errBound && noNaN {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(mu))
		return append(dst, b[:]...), true
	}

	radExpo := ieee.Exponent64(radius)
	errExpo := ieee.Exponent64(enc.errBound)
	reqLen, lossless := ieee.ReqLength64(radExpo, errExpo)
	start := len(dst)
	for {
		if lossless {
			mu = 0
			enc.lossless++
		}
		var ok bool
		dst, ok = enc.encodeNonConstant(dst, blk, mu, reqLen, lossless)
		if ok {
			return dst, false
		}
		enc.retries++
		dst = dst[:start]
		reqLen += 8
		if reqLen >= ieee.FullBits64 {
			reqLen = ieee.FullBits64
			lossless = true
		}
	}
}

func (enc *blockEncoder64) encodeNonConstant(dst []byte, blk []float64, mu float64, reqLen int, lossless bool) ([]byte, bool) {
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8 // 2..8 for float64
	n := len(blk)
	leadLen := bitio.PackedLen(n)

	// Grow once to the worst-case payload and write by index (see the
	// float32 encoder for the rationale).
	start := len(dst)
	maxPayload := 9 + leadLen + reqBytes*n
	dst = slices.Grow(dst, maxPayload)[:start+maxPayload]
	binary.LittleEndian.PutUint64(dst[start:], math.Float64bits(mu))
	dst[start+8] = byte(reqLen)
	leadOff := start + 9
	idx := leadOff + leadLen

	keepMask := ^uint64(0)
	if reqLen < 64 {
		keepMask <<= uint(64 - reqLen)
	}
	lowSh := uint(8 * (8 - reqBytes)) // bit offset of the last stored byte
	guarded := enc.guarded && !lossless
	e := enc.errBound

	leadBuf := &enc.leadBuf
	var prev uint64
	for i, d := range blk {
		v := d - mu
		bits := math.Float64bits(v)
		w := bits >> s

		if guarded {
			rec := math.Float64frombits(bits&keepMask) + mu
			if diff := math.Abs(d - rec); !(diff <= e) {
				return dst[:start], false
			}
		}

		lead := bitio.LeadingZeroBytes64(w ^ prev)
		if lead > reqBytes {
			lead = reqBytes
		}
		leadBuf[i] = byte(lead)

		// Commit bytes [lead, reqBytes) of the stored prefix; the last
		// stored byte sits at bit offset lowSh.
		sh := lowSh + uint(8*(reqBytes-lead))
		for j := lead; j < reqBytes; j++ {
			sh -= 8
			dst[idx] = byte(w >> sh)
			idx++
		}
		prev = w
	}
	// Pack the 2-bit leading codes, four per byte.
	for i := 0; i < n; i += 4 {
		b := leadBuf[i] << 6
		if i+1 < n {
			b |= leadBuf[i+1] << 4
		}
		if i+2 < n {
			b |= leadBuf[i+2] << 2
		}
		if i+3 < n {
			b |= leadBuf[i+3]
		}
		dst[leadOff+(i>>2)] = b
	}
	return dst[:idx], true
}

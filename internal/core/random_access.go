package core

// Random-access decompression: the zsize side channel that enables the
// paper's block-parallel decompression (§6.1) also permits decoding any
// value range without touching the rest of the stream — the access pattern
// of the in-memory-compression use case from the paper's introduction
// (full-state quantum-circuit simulation), where a simulation repeatedly
// decompresses only the amplitude slabs it needs.

// decompressRange reconstructs values [lo, hi) from a stream, decoding only
// the blocks that overlap the range. The cost is O(numBlocks) for the offset
// prefix sum plus the overlapped blocks' payloads. Interior blocks decode
// straight into the output; only the (at most two) partially-overlapped edge
// blocks go through a scratch buffer.
func decompressRange[T Float, B Word](comp []byte, lo, hi int) ([]T, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != dtypeOf[T]() {
		return nil, ErrWrongType
	}
	if lo < 0 || hi > si.Hdr.N || lo > hi {
		return nil, ErrCorrupt
	}
	if lo == hi {
		return []T{}, nil
	}
	offs, err := blockOffsetsPooled(si)
	if err != nil {
		return nil, err
	}
	defer putOffs(&offs)
	bs := si.Hdr.BlockSize
	firstBlk := lo / bs
	lastBlk := (hi - 1) / bs

	out := make([]T, hi-lo)
	var scratch []T
	for k := firstBlk; k <= lastBlk; k++ {
		blo := k * bs
		bhi := blo + bs
		if bhi > si.Hdr.N {
			bhi = si.Hdr.N
		}
		interior := blo >= lo && bhi <= hi
		var dst []T
		if interior {
			dst = out[blo-lo : bhi-lo]
		} else {
			// Edge block: decode into scratch, then copy the overlap.
			if scratch == nil {
				scratch = make([]T, bs)
			}
			dst = scratch[:bhi-blo]
		}
		if err := decodeBlock[T, B](si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), dst); err != nil {
			return nil, err
		}
		if !interior {
			from := max(lo, blo)
			to := min(hi, bhi)
			copy(out[from-lo:to-lo], dst[from-blo:to-blo])
		}
	}
	return out, nil
}

// DecompressFloat32Range reconstructs values [lo, hi) from a float32 stream.
func DecompressFloat32Range(comp []byte, lo, hi int) ([]float32, error) {
	return decompressRange[float32, uint32](comp, lo, hi)
}

// DecompressFloat64Range is the float64 analogue of DecompressFloat32Range.
func DecompressFloat64Range(comp []byte, lo, hi int) ([]float64, error) {
	return decompressRange[float64, uint64](comp, lo, hi)
}

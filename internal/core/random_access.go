package core

// Random-access decompression: the zsize side channel that enables the
// paper's block-parallel decompression (§6.1) also permits decoding any
// value range without touching the rest of the stream — the access pattern
// of the in-memory-compression use case from the paper's introduction
// (full-state quantum-circuit simulation), where a simulation repeatedly
// decompresses only the amplitude slabs it needs.

// DecompressFloat32Range reconstructs values [lo, hi) from a float32
// stream, decoding only the blocks that overlap the range. The cost is
// O(numBlocks) for the offset prefix sum plus the overlapped blocks'
// payloads.
func DecompressFloat32Range(comp []byte, lo, hi int) ([]float32, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat32 {
		return nil, ErrWrongType
	}
	if lo < 0 || hi > si.Hdr.N || lo > hi {
		return nil, ErrCorrupt
	}
	if lo == hi {
		return []float32{}, nil
	}
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	bs := si.Hdr.BlockSize
	firstBlk := lo / bs
	lastBlk := (hi - 1) / bs

	out := make([]float32, hi-lo)
	scratch := make([]float32, bs)
	for k := firstBlk; k <= lastBlk; k++ {
		blo := k * bs
		bhi := blo + bs
		if bhi > si.Hdr.N {
			bhi = si.Hdr.N
		}
		blk := scratch[:bhi-blo]
		if err := decodeBlock32(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), blk); err != nil {
			return nil, err
		}
		// Copy the overlap into the output.
		from := lo
		if blo > from {
			from = blo
		}
		to := hi
		if bhi < to {
			to = bhi
		}
		copy(out[from-lo:to-lo], blk[from-blo:to-blo])
	}
	return out, nil
}

// DecompressFloat64Range is the float64 analogue of
// DecompressFloat32Range.
func DecompressFloat64Range(comp []byte, lo, hi int) ([]float64, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat64 {
		return nil, ErrWrongType
	}
	if lo < 0 || hi > si.Hdr.N || lo > hi {
		return nil, ErrCorrupt
	}
	if lo == hi {
		return []float64{}, nil
	}
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	bs := si.Hdr.BlockSize
	firstBlk := lo / bs
	lastBlk := (hi - 1) / bs

	out := make([]float64, hi-lo)
	scratch := make([]float64, bs)
	for k := firstBlk; k <= lastBlk; k++ {
		blo := k * bs
		bhi := blo + bs
		if bhi > si.Hdr.N {
			bhi = si.Hdr.N
		}
		blk := scratch[:bhi-blo]
		if err := decodeBlock64(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), blk); err != nil {
			return nil, err
		}
		from := lo
		if blo > from {
			from = blo
		}
		to := hi
		if bhi < to {
			to = bhi
		}
		copy(out[from-lo:to-lo], blk[from-blo:to-blo])
	}
	return out, nil
}

package core

import (
	"sync"
	"sync/atomic"

	"repro/telemetry"
)

// BatchRun executes fn for every item index in [0, items), distributing the
// items over the persistent worker pool with the same atomic-cursor
// work-stealing the chunk engine uses: participants claim the next item off
// a shared counter, so a batch of skewed array sizes rebalances dynamically
// instead of tail-latencying a static partition. fn receives a stable
// participant id (0..participants-1) alongside the item index, so callers
// can keep per-participant scratch without synchronization.
//
// With workers <= 1 (or a single item) everything runs inline on the
// calling goroutine and the pool is never touched — the batch analogue of
// the serial-fallback policy, for callers that already know the batch is
// too small to amortize a handoff. BatchRun returns only after every item
// has completed.
func BatchRun(items, workers int, fn func(worker, item int)) {
	if items <= 0 {
		return
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			fn(0, i)
		}
		return
	}
	rec := telemetry.Enabled()
	if rec {
		telemetry.ParallelParticipants.Add(int64(workers))
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	run := func(id int) {
		defer wg.Done()
		claimed := 0
		for {
			i := int(cursor.Add(1) - 1)
			if i >= items {
				break
			}
			claimed++
			fn(id, i)
		}
		if rec {
			flushWorkerChunks(id, claimed)
		}
	}
	for id := 1; id < workers; id++ {
		id := id
		encPool.submit(func() { runStage(rec, "batch", func() { run(id) }) })
	}
	runStage(rec, "batch", func() { run(0) })
	wg.Wait()
}

package core

import (
	"sync/atomic"
	"testing"
)

func TestBatchRunCoversEveryItem(t *testing.T) {
	for _, tc := range []struct{ items, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {100, 4}, {5, 64},
	} {
		var hits []atomic.Int32
		if tc.items > 0 {
			hits = make([]atomic.Int32, tc.items)
		}
		maxWorker := int32(-1)
		var mw atomic.Int32
		mw.Store(maxWorker)
		BatchRun(tc.items, tc.workers, func(worker, item int) {
			hits[item].Add(1)
			for {
				cur := mw.Load()
				if int32(worker) <= cur || mw.CompareAndSwap(cur, int32(worker)) {
					break
				}
			}
		})
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("items=%d workers=%d: item %d ran %d times", tc.items, tc.workers, i, n)
			}
		}
		if tc.items > 0 {
			w := tc.workers
			if w > tc.items {
				w = tc.items
			}
			if w < 1 {
				w = 1
			}
			if got := int(mw.Load()); got >= w {
				t.Fatalf("items=%d workers=%d: saw participant id %d (cap %d)", tc.items, tc.workers, got, w)
			}
		}
	}
}

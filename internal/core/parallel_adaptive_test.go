package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/telemetry"
)

// TestParallelThresholdByteIdentity pins the adaptive engine's contract at
// the serial-fallback boundary: for input sizes straddling ParallelMinBytes
// (so some sizes take the serial fallback and some engage the work-stealing
// engine), the parallel entry points must produce exactly the serial bytes
// at every worker count.
func TestParallelThresholdByteIdentity(t *testing.T) {
	// ParallelMinBytes is 64 KiB: 16384 float32 values or 8192 float64
	// values sit exactly on it. Straddle it from well below to well above,
	// including off-by-one on both sides of the exact boundary.
	sizes32 := []int{16383, 16384, 16385, 8191, 32768, 16384 - 128, 16384 + 128}
	sizes64 := []int{8191, 8192, 8193, 4095, 16384}
	workerCounts := []int{2, 3, 4, runtime.GOMAXPROCS(0)}

	// Each size runs under the default adaptive policy (which may pick the
	// serial fallback, depending on size and core count) and with the policy
	// disabled (ParallelMinBytes = 0 forces the engine even on one core), so
	// the engine itself is exercised at these sizes on every host.
	for _, forced := range []bool{false, true} {
		if forced {
			old := ParallelMinBytes
			ParallelMinBytes = 0
			defer func() { ParallelMinBytes = old }()
		}
		for _, n := range sizes32 {
			data := goldenData32(n, int64(n))
			want, err := CompressInto[float32](nil, data, 1e-3, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := CompressParallelInto[float32](nil, data, 1e-3, Options{}, w)
				if err != nil {
					t.Fatalf("f32 n=%d w=%d forced=%v: %v", n, w, forced, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("f32 n=%d w=%d forced=%v: parallel stream differs from serial", n, w, forced)
				}
				dec, err := DecompressParallelInto[float32](nil, want, w)
				if err != nil {
					t.Fatalf("f32 n=%d w=%d forced=%v decompress: %v", n, w, forced, err)
				}
				ser, err := DecompressInto[float32](nil, want)
				if err != nil {
					t.Fatal(err)
				}
				if valuesHash(dec) != valuesHash(ser) {
					t.Errorf("f32 n=%d w=%d forced=%v: parallel decode differs from serial", n, w, forced)
				}
			}
		}
		for _, n := range sizes64 {
			data := goldenData64(n, int64(n))
			want, err := CompressInto[float64](nil, data, 1e-6, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := CompressParallelInto[float64](nil, data, 1e-6, Options{}, w)
				if err != nil {
					t.Fatalf("f64 n=%d w=%d forced=%v: %v", n, w, forced, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("f64 n=%d w=%d forced=%v: parallel stream differs from serial", n, w, forced)
				}
			}
		}
	}
}

// TestParallelEngineForcedSmall forces the work-stealing engine onto inputs
// that would normally take the serial fallback, so chunk scheduling, the
// gather phase, and the bitmap/zsize stitching are exercised on ragged
// shapes (tail blocks, single-value blocks, constant runs) regardless of
// the host's core count.
func TestParallelEngineForcedSmall(t *testing.T) {
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()

	cases := []struct {
		n  int
		bs int
		e  float64
	}{
		{129, 128, 1e-3},
		{12345, 128, 1e-4},
		{12345, 64, 1e-3},
		{1000, 1, 1e-3},   // single-value blocks, many chunks
		{4097, 100, 1e-2}, // constant-heavy at loose bounds
		{257, 8, 1e-5},
	}
	for _, c := range cases {
		data := goldenData32(c.n, int64(c.n))
		want, err := CompressInto[float32](nil, data, c.e, Options{BlockSize: c.bs})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 5, 16} {
			got, err := CompressParallelInto[float32](nil, data, c.e, Options{BlockSize: c.bs}, w)
			if err != nil {
				t.Fatalf("n=%d bs=%d w=%d: %v", c.n, c.bs, w, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("n=%d bs=%d w=%d: forced parallel stream differs from serial", c.n, c.bs, w)
			}
			dec, err := DecompressParallelInto[float32](nil, want, w)
			if err != nil {
				t.Fatalf("n=%d bs=%d w=%d decompress: %v", c.n, c.bs, w, err)
			}
			ser, _ := DecompressInto[float32](nil, want)
			if valuesHash(dec) != valuesHash(ser) {
				t.Errorf("n=%d bs=%d w=%d: forced parallel decode differs", c.n, c.bs, w)
			}
		}
	}
}

// TestChunkBlocksInvariants pins the stealing granularity's contract: always
// a positive multiple of 8 (bitmap-byte privacy in the gather phase).
func TestChunkBlocksInvariants(t *testing.T) {
	for _, nb := range []int{1, 2, 7, 8, 9, 97, 128, 1000, 16384, 1 << 20} {
		for _, w := range []int{1, 2, 3, 4, 8, 64} {
			c := chunkBlocks(nb, w)
			if c < 8 || c%8 != 0 {
				t.Fatalf("chunkBlocks(%d,%d) = %d; want positive multiple of 8", nb, w, c)
			}
		}
	}
}

// TestParallelCorruptStream checks the work-stealing decompressor still
// fails cleanly (no panic, error reported from whichever worker hits it)
// when the payload is truncated mid-stream.
func TestParallelCorruptStream(t *testing.T) {
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()

	data := goldenData32(12345, 5)
	comp, err := CompressInto[float32](nil, data, 1e-4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, len(comp) / 2} {
		trunc := comp[:len(comp)-cut]
		for _, w := range []int{2, 4} {
			if _, err := DecompressParallelInto[float32](nil, trunc, w); err == nil {
				t.Errorf("cut=%d w=%d: truncated stream decoded without error", cut, w)
			}
		}
	}

	// Consistent zsize but corrupt block content: the prefix sum passes, so
	// the error must be detected and reported by a stealing worker.
	si, err := ParseStream(comp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		if si.IsNonConstant(k) {
			offs, err := si.BlockOffsets()
			if err != nil {
				t.Fatal(err)
			}
			bad := append([]byte(nil), comp...)
			pstart := len(comp) - len(si.Payload)
			bad[pstart+offs[k]+4] = 0xFF // reqLen byte: out of range
			for _, w := range []int{2, 4} {
				if _, err := DecompressParallelInto[float32](nil, bad, w); err == nil {
					t.Errorf("w=%d: corrupt reqLen in block %d decoded without error", w, k)
				}
			}
			break
		}
	}
}

// TestTelemetryEngineCounters pins the engine-selection counter semantics:
// a parallel-entry call the adaptive policy routes to the serial kernel
// increments both the fallback counter (the routing decision) and the
// serial counter (the kernel that ran); a forced engine engagement
// increments only the parallel counter, and the work-stealing internals
// (chunks claimed, participants, active workers) add up to the chunk math.
func TestTelemetryEngineCounters(t *testing.T) {
	telemetry.Reset()
	telemetry.Enable()
	defer func() {
		telemetry.Disable()
		telemetry.Reset()
	}()

	// 4 KiB input: far below ParallelMinBytes, so the parallel entry must
	// take the serial fallback.
	small := goldenData32(1024, 1)
	comp, err := CompressParallelInto[float32](nil, small, 1e-3, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressParallelInto[float32](nil, comp, 4); err != nil {
		t.Fatal(err)
	}
	s := telemetry.Snap()
	if s.Engine.CompressFallback != 1 || s.Engine.CompressSerial != 1 || s.Engine.CompressParallel != 0 {
		t.Errorf("small compress: fallback=%d serial=%d parallel=%d; want 1,1,0",
			s.Engine.CompressFallback, s.Engine.CompressSerial, s.Engine.CompressParallel)
	}
	if s.Engine.DecompressFallback != 1 || s.Engine.DecompressSerial != 1 || s.Engine.DecompressParallel != 0 {
		t.Errorf("small decompress: fallback=%d serial=%d parallel=%d; want 1,1,0",
			s.Engine.DecompressFallback, s.Engine.DecompressSerial, s.Engine.DecompressParallel)
	}

	// Force the engine (policy disabled) on a multi-chunk input.
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()
	telemetry.Reset()

	const n, w = 12345, 4
	data := goldenData32(n, 7)
	nb := (n + DefaultBlockSize - 1) / DefaultBlockSize
	cb := chunkBlocks(nb, w)
	nchunks := (nb + cb - 1) / cb
	if nchunks < 2 {
		t.Fatalf("test input yields %d chunks; need >= 2 to engage the engine", nchunks)
	}
	comp, err = CompressParallelInto[float32](nil, data, 1e-3, Options{}, w)
	if err != nil {
		t.Fatal(err)
	}
	s = telemetry.Snap()
	if s.Engine.CompressParallel != 1 || s.Engine.CompressFallback != 0 || s.Engine.CompressSerial != 0 {
		t.Errorf("forced compress: parallel=%d fallback=%d serial=%d; want 1,0,0",
			s.Engine.CompressParallel, s.Engine.CompressFallback, s.Engine.CompressSerial)
	}
	if got := s.Parallel.ChunksOwned + s.Parallel.ChunksStolen; got != int64(nchunks) {
		t.Errorf("compress chunks owned+stolen = %d; want %d", got, nchunks)
	}
	if s.Parallel.Participants < 1 || s.Parallel.ActiveWorkers < 1 ||
		s.Parallel.ActiveWorkers > s.Parallel.Participants {
		t.Errorf("participants=%d active=%d; want 1 <= active <= participants",
			s.Parallel.Participants, s.Parallel.ActiveWorkers)
	}
	if got := s.Blocks.Constant + s.Blocks.NonConstant; got != int64(nb) {
		t.Errorf("blocks tallied = %d; want %d", got, nb)
	}

	if _, err := DecompressParallelInto[float32](nil, comp, w); err != nil {
		t.Fatal(err)
	}
	s = telemetry.Snap()
	if s.Engine.DecompressParallel != 1 || s.Engine.DecompressFallback != 0 || s.Engine.DecompressSerial != 0 {
		t.Errorf("forced decompress: parallel=%d fallback=%d serial=%d; want 1,0,0",
			s.Engine.DecompressParallel, s.Engine.DecompressFallback, s.Engine.DecompressSerial)
	}
	// Compress claims chunks once (encode phase); decompress claims the same
	// chunk count once more.
	if got := s.Parallel.ChunksOwned + s.Parallel.ChunksStolen; got != int64(2*nchunks) {
		t.Errorf("chunks owned+stolen after decompress = %d; want %d", got, 2*nchunks)
	}
	if got := s.Blocks.DecodedConstant + s.Blocks.DecodedNonConstant; got != int64(nb) {
		t.Errorf("blocks decoded = %d; want %d", got, nb)
	}
}

// TestTelemetryParallelRace hammers the forced work-stealing engine from
// several goroutines with telemetry enabled and checks the per-worker
// tallies still add up exactly — the counters must be race-free (this test
// runs under -race in CI) and must not double- or under-count when many
// engine invocations interleave on the shared atomics.
func TestTelemetryParallelRace(t *testing.T) {
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()

	const n, goroutines, iters = 20000, 4, 5
	data := goldenData32(n, 3)
	comp, err := CompressInto[float32](nil, data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nb := (n + DefaultBlockSize - 1) / DefaultBlockSize

	// Enable only after the setup compress so the totals below count exactly
	// the racing engine invocations.
	telemetry.Reset()
	telemetry.Enable()
	defer func() {
		telemetry.Disable()
		telemetry.Reset()
	}()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := CompressParallelInto[float32](nil, data, 1e-3, Options{}, 2+g); err != nil {
					errs <- err
					return
				}
				if _, err := DecompressParallelInto[float32](nil, comp, 2+g); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := telemetry.Snap()
	calls := int64(goroutines * iters)
	if got := s.Blocks.Constant + s.Blocks.NonConstant; got != calls*int64(nb) {
		t.Errorf("blocks tallied = %d; want %d", got, calls*int64(nb))
	}
	if got := s.Blocks.DecodedConstant + s.Blocks.DecodedNonConstant; got != calls*int64(nb) {
		t.Errorf("blocks decoded = %d; want %d", got, calls*int64(nb))
	}
	if s.Engine.CompressParallel != calls || s.Engine.DecompressParallel != calls {
		t.Errorf("engine engagements compress=%d decompress=%d; want %d each",
			s.Engine.CompressParallel, s.Engine.DecompressParallel, calls)
	}
	if s.Compress.BytesIn != calls*4*n {
		t.Errorf("compress bytes in = %d; want %d", s.Compress.BytesIn, calls*4*n)
	}
}

func init() {
	// Guard against accidentally committing a test-tuned threshold.
	if ParallelMinBytes != 64<<10 {
		panic(fmt.Sprintf("unexpected ParallelMinBytes default: %d", ParallelMinBytes))
	}
}

package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// TestParallelThresholdByteIdentity pins the adaptive engine's contract at
// the serial-fallback boundary: for input sizes straddling ParallelMinBytes
// (so some sizes take the serial fallback and some engage the work-stealing
// engine), the parallel entry points must produce exactly the serial bytes
// at every worker count.
func TestParallelThresholdByteIdentity(t *testing.T) {
	// ParallelMinBytes is 64 KiB: 16384 float32 values or 8192 float64
	// values sit exactly on it. Straddle it from well below to well above,
	// including off-by-one on both sides of the exact boundary.
	sizes32 := []int{16383, 16384, 16385, 8191, 32768, 16384 - 128, 16384 + 128}
	sizes64 := []int{8191, 8192, 8193, 4095, 16384}
	workerCounts := []int{2, 3, 4, runtime.GOMAXPROCS(0)}

	// Each size runs under the default adaptive policy (which may pick the
	// serial fallback, depending on size and core count) and with the policy
	// disabled (ParallelMinBytes = 0 forces the engine even on one core), so
	// the engine itself is exercised at these sizes on every host.
	for _, forced := range []bool{false, true} {
		if forced {
			old := ParallelMinBytes
			ParallelMinBytes = 0
			defer func() { ParallelMinBytes = old }()
		}
		for _, n := range sizes32 {
			data := goldenData32(n, int64(n))
			want, err := CompressInto[float32](nil, data, 1e-3, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := CompressParallelInto[float32](nil, data, 1e-3, Options{}, w)
				if err != nil {
					t.Fatalf("f32 n=%d w=%d forced=%v: %v", n, w, forced, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("f32 n=%d w=%d forced=%v: parallel stream differs from serial", n, w, forced)
				}
				dec, err := DecompressParallelInto[float32](nil, want, w)
				if err != nil {
					t.Fatalf("f32 n=%d w=%d forced=%v decompress: %v", n, w, forced, err)
				}
				ser, err := DecompressInto[float32](nil, want)
				if err != nil {
					t.Fatal(err)
				}
				if valuesHash(dec) != valuesHash(ser) {
					t.Errorf("f32 n=%d w=%d forced=%v: parallel decode differs from serial", n, w, forced)
				}
			}
		}
		for _, n := range sizes64 {
			data := goldenData64(n, int64(n))
			want, err := CompressInto[float64](nil, data, 1e-6, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := CompressParallelInto[float64](nil, data, 1e-6, Options{}, w)
				if err != nil {
					t.Fatalf("f64 n=%d w=%d forced=%v: %v", n, w, forced, err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("f64 n=%d w=%d forced=%v: parallel stream differs from serial", n, w, forced)
				}
			}
		}
	}
}

// TestParallelEngineForcedSmall forces the work-stealing engine onto inputs
// that would normally take the serial fallback, so chunk scheduling, the
// gather phase, and the bitmap/zsize stitching are exercised on ragged
// shapes (tail blocks, single-value blocks, constant runs) regardless of
// the host's core count.
func TestParallelEngineForcedSmall(t *testing.T) {
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()

	cases := []struct {
		n  int
		bs int
		e  float64
	}{
		{129, 128, 1e-3},
		{12345, 128, 1e-4},
		{12345, 64, 1e-3},
		{1000, 1, 1e-3},   // single-value blocks, many chunks
		{4097, 100, 1e-2}, // constant-heavy at loose bounds
		{257, 8, 1e-5},
	}
	for _, c := range cases {
		data := goldenData32(c.n, int64(c.n))
		want, err := CompressInto[float32](nil, data, c.e, Options{BlockSize: c.bs})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 5, 16} {
			got, err := CompressParallelInto[float32](nil, data, c.e, Options{BlockSize: c.bs}, w)
			if err != nil {
				t.Fatalf("n=%d bs=%d w=%d: %v", c.n, c.bs, w, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("n=%d bs=%d w=%d: forced parallel stream differs from serial", c.n, c.bs, w)
			}
			dec, err := DecompressParallelInto[float32](nil, want, w)
			if err != nil {
				t.Fatalf("n=%d bs=%d w=%d decompress: %v", c.n, c.bs, w, err)
			}
			ser, _ := DecompressInto[float32](nil, want)
			if valuesHash(dec) != valuesHash(ser) {
				t.Errorf("n=%d bs=%d w=%d: forced parallel decode differs", c.n, c.bs, w)
			}
		}
	}
}

// TestChunkBlocksInvariants pins the stealing granularity's contract: always
// a positive multiple of 8 (bitmap-byte privacy in the gather phase).
func TestChunkBlocksInvariants(t *testing.T) {
	for _, nb := range []int{1, 2, 7, 8, 9, 97, 128, 1000, 16384, 1 << 20} {
		for _, w := range []int{1, 2, 3, 4, 8, 64} {
			c := chunkBlocks(nb, w)
			if c < 8 || c%8 != 0 {
				t.Fatalf("chunkBlocks(%d,%d) = %d; want positive multiple of 8", nb, w, c)
			}
		}
	}
}

// TestParallelCorruptStream checks the work-stealing decompressor still
// fails cleanly (no panic, error reported from whichever worker hits it)
// when the payload is truncated mid-stream.
func TestParallelCorruptStream(t *testing.T) {
	old := ParallelMinBytes
	ParallelMinBytes = 0
	defer func() { ParallelMinBytes = old }()

	data := goldenData32(12345, 5)
	comp, err := CompressInto[float32](nil, data, 1e-4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, len(comp) / 2} {
		trunc := comp[:len(comp)-cut]
		for _, w := range []int{2, 4} {
			if _, err := DecompressParallelInto[float32](nil, trunc, w); err == nil {
				t.Errorf("cut=%d w=%d: truncated stream decoded without error", cut, w)
			}
		}
	}

	// Consistent zsize but corrupt block content: the prefix sum passes, so
	// the error must be detected and reported by a stealing worker.
	si, err := ParseStream(comp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		if si.IsNonConstant(k) {
			offs, err := si.BlockOffsets()
			if err != nil {
				t.Fatal(err)
			}
			bad := append([]byte(nil), comp...)
			pstart := len(comp) - len(si.Payload)
			bad[pstart+offs[k]+4] = 0xFF // reqLen byte: out of range
			for _, w := range []int{2, 4} {
				if _, err := DecompressParallelInto[float32](nil, bad, w); err == nil {
					t.Errorf("w=%d: corrupt reqLen in block %d decoded without error", w, k)
				}
			}
			break
		}
	}
}

func init() {
	// Guard against accidentally committing a test-tuned threshold.
	if ParallelMinBytes != 64<<10 {
		panic(fmt.Sprintf("unexpected ParallelMinBytes default: %d", ParallelMinBytes))
	}
}

package core

import "repro/internal/ieee"

// The Into variants are the zero-allocation reuse layer over the generic
// codec: every function appends to a caller-supplied buffer and returns the
// extended slice, so steady-state callers that recycle buffers (ring
// buffers, per-request arenas, sync.Pool) pay no allocations once the
// buffers are warm.
//
// The exported functions take a single Float type parameter; internally the
// codec pairs T with the bit-pattern Word of matching width. The pairing is
// pinned here by a width dispatch over reinterpreted views (float32↔uint32,
// float64↔uint64 — identical memory layout, so the views alias the caller's
// slices with capacity preserved).

// CompressInto compresses data, appending the stream onto dst.
func CompressInto[T Float](dst []byte, data []T, errBound float64, opts Options) ([]byte, error) {
	out, _, err := CompressIntoStats(dst, data, errBound, opts)
	return out, err
}

// CompressIntoStats is CompressInto but also reports per-run statistics.
func CompressIntoStats[T Float](dst []byte, data []T, errBound float64, opts Options) ([]byte, Stats, error) {
	if ieee.Width[T]() == 4 {
		return appendCompressed[float32, uint32](dst, asF32(data), errBound, opts)
	}
	return appendCompressed[float64, uint64](dst, asF64(data), errBound, opts)
}

// DecompressInto decompresses comp, appending the values onto dst. The
// stream's element type must match T.
func DecompressInto[T Float](dst []T, comp []byte) ([]T, error) {
	if ieee.Width[T]() == 4 {
		out, err := appendDecompressed[float32, uint32](asF32(dst), comp)
		return asT[T](out), err
	}
	out, err := appendDecompressed[float64, uint64](asF64(dst), comp)
	return asT[T](out), err
}

// CompressParallelInto is CompressInto with block-parallel encoding across
// workers goroutines (0 = GOMAXPROCS). The output bytes are identical to
// CompressInto's for any worker count.
func CompressParallelInto[T Float](dst []byte, data []T, errBound float64, opts Options, workers int) ([]byte, error) {
	if ieee.Width[T]() == 4 {
		return appendCompressedParallel[float32, uint32](dst, asF32(data), errBound, opts, workers)
	}
	return appendCompressedParallel[float64, uint64](dst, asF64(data), errBound, opts, workers)
}

// DecompressParallelInto is DecompressInto with block-parallel decoding.
func DecompressParallelInto[T Float](dst []T, comp []byte, workers int) ([]T, error) {
	if ieee.Width[T]() == 4 {
		out, err := appendDecompressedParallel[float32, uint32](asF32(dst), comp, workers)
		return asT[T](out), err
	}
	out, err := appendDecompressedParallel[float64, uint64](asF64(dst), comp, workers)
	return asT[T](out), err
}

// Package core implements the SZx ultrafast error-bounded lossy compression
// algorithm (Yu et al., HPDC '22) for float32 and float64 data.
//
// The dataset is split into fixed-size 1-D blocks. Blocks whose variation
// radius r = (max-min)/2 does not exceed the error bound are "constant" and
// stored as a single representative value μ = (min+max)/2. Other blocks are
// normalized by μ and each value's IEEE-754 word is truncated to the number
// of significant bits required by the error bound (Formula 4), right-shifted
// so the kept prefix is a whole number of bytes (Solution C, Formula 5), and
// delta-encoded against the previous value via identical-leading-byte codes.
//
// A per-block compressed-size array (zsize) is embedded so decompression can
// proceed block-parallel after a prefix sum, mirroring the paper's OpenMP and
// CUDA designs.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/telemetry"
)

// DefaultBlockSize is the paper's empirically best block size (§5.3).
const DefaultBlockSize = 128

// MaxBlockSize bounds the block size so that a worst-case (lossless float64)
// block payload still fits the uint16 per-block size record. It is defined
// by the kernel layer (whose fixed-size scratch buffers must cover a whole
// block) and re-exported here as the format-level limit.
const MaxBlockSize = kernels.MaxBlockSize

// maxBlockPayload64 is the largest payload a single block can produce: a
// lossless float64 block at MaxBlockSize stores μ (8B), reqLength (1B), the
// packed 2-bit lead array, and all 8 mid-bytes of every value (the lead
// codes can be zero for every value, so no delta saving).
const maxBlockPayload64 = 8 + 1 + (MaxBlockSize+3)/4 + 8*MaxBlockSize

// The zsize index records each block's payload length as uint16; this
// conversion fails to compile if MaxBlockSize is ever raised past the point
// where the worst-case payload no longer fits.
const _ = uint16(maxBlockPayload64)

// Stream layout constants.
const (
	headerSize = 28
	magic      = "SZX1"
	version    = 1
)

// HeaderSize is the byte length of the fixed stream header; exported so
// higher layers (the fixed-ratio estimator, container tooling) can account
// for per-stream overhead without re-deriving the layout.
const HeaderSize = headerSize

// DType identifies the element type of a compressed stream.
type DType byte

// Element types supported by the codec.
const (
	TypeFloat32 DType = 0
	TypeFloat64 DType = 1
)

func (t DType) String() string {
	switch t {
	case TypeFloat32:
		return "float32"
	case TypeFloat64:
		return "float64"
	default:
		return fmt.Sprintf("DType(%d)", byte(t))
	}
}

// Size returns the element size in bytes.
func (t DType) Size() int {
	if t == TypeFloat64 {
		return 8
	}
	return 4
}

// Errors reported by the codec.
var (
	ErrBadMagic   = errors.New("szx: not an SZx stream (bad magic)")
	ErrBadVersion = errors.New("szx: unsupported stream version")
	ErrCorrupt    = errors.New("szx: corrupt or truncated stream")
	ErrErrBound   = errors.New("szx: error bound must be a positive finite number")
	ErrBlockSize  = errors.New("szx: block size out of range")
	ErrWrongType  = errors.New("szx: stream element type does not match request")
)

// Options configures compression.
type Options struct {
	// BlockSize is the number of consecutive values per block.
	// Zero selects DefaultBlockSize.
	BlockSize int
	// Unguarded disables the per-block error-bound verification pass.
	// The guarded (default) mode re-encodes a block with more significant
	// bits in the rare case where floating-point rounding in the μ
	// normalization would push the reconstruction error past the bound,
	// making |d-d'| ≤ e a hard guarantee rather than a probabilistic one.
	Unguarded bool
	// Spans, when non-nil, receives this call's stage intervals ("encode"
	// on the serial path, "encode_phase"/"gather_phase" on the parallel
	// path) for request-scoped tracing. Independent of the aggregate
	// telemetry gate, and it never changes the output bytes.
	Spans telemetry.SpanSink
}

func (o Options) blockSize() (int, error) {
	b := o.BlockSize
	if b == 0 {
		b = DefaultBlockSize
	}
	if b < 1 || b > MaxBlockSize {
		return 0, ErrBlockSize
	}
	return b, nil
}

// Header describes a compressed stream.
type Header struct {
	Type      DType
	BlockSize int
	N         int     // number of values
	ErrBound  float64 // resolved absolute error bound
}

// NumBlocks returns the number of blocks in the stream.
func (h Header) NumBlocks() int {
	if h.N == 0 {
		return 0
	}
	return (h.N + h.BlockSize - 1) / h.BlockSize
}

// AppendHeader serializes h onto dst in the stream's header layout. It is
// exported for the cuszx package, which assembles bit-identical streams
// from its simulated-GPU kernels.
func AppendHeader(dst []byte, h Header) []byte {
	var buf [headerSize]byte
	copy(buf[:4], magic)
	buf[4] = version
	buf[5] = byte(h.Type)
	buf[6] = 0 // flags, reserved
	buf[7] = 0 // reserved
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.BlockSize))
	binary.LittleEndian.PutUint64(buf[12:], uint64(h.N))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(h.ErrBound))
	return append(dst, buf[:]...)
}

// ParseHeader decodes and validates the stream header.
func ParseHeader(comp []byte) (Header, error) {
	if len(comp) < headerSize {
		return Header{}, ErrCorrupt
	}
	if string(comp[:4]) != magic {
		return Header{}, ErrBadMagic
	}
	if comp[4] != version {
		return Header{}, ErrBadVersion
	}
	h := Header{
		Type:      DType(comp[5]),
		BlockSize: int(binary.LittleEndian.Uint32(comp[8:])),
		N:         int(binary.LittleEndian.Uint64(comp[12:])),
		ErrBound:  math.Float64frombits(binary.LittleEndian.Uint64(comp[20:])),
	}
	if h.Type != TypeFloat32 && h.Type != TypeFloat64 {
		return Header{}, ErrCorrupt
	}
	if h.BlockSize < 1 || h.BlockSize > MaxBlockSize {
		return Header{}, ErrCorrupt
	}
	// Cap N so block-count arithmetic cannot overflow (2^48 values is far
	// beyond any realistic dataset and still leaves nb*2 etc. in range).
	if h.N < 0 || h.N > 1<<48 {
		return Header{}, ErrCorrupt
	}
	return h, nil
}

// Index locates the fixed-position sections that follow the header. It is
// exported so the cuszx package can decode the same stream layout.
type Index struct {
	Hdr     Header
	Bitmap  []byte // 1 bit per block, 1 = nonconstant
	Zsize   []byte // uint16 little-endian per block
	Payload []byte // concatenated per-block payloads
}

// ParseStream validates the container and returns the section index.
func ParseStream(comp []byte) (Index, error) {
	h, err := ParseHeader(comp)
	if err != nil {
		return Index{}, err
	}
	nb := h.NumBlocks()
	bitmapLen := (nb + 7) / 8
	zsizeLen := 2 * nb
	off := headerSize
	if len(comp) < off+bitmapLen+zsizeLen {
		return Index{}, ErrCorrupt
	}
	si := Index{
		Hdr:     h,
		Bitmap:  comp[off : off+bitmapLen],
		Zsize:   comp[off+bitmapLen : off+bitmapLen+zsizeLen],
		Payload: comp[off+bitmapLen+zsizeLen:],
	}
	return si, nil
}

// IsNonConstant reports whether block k took the nonconstant path.
func (si Index) IsNonConstant(k int) bool {
	return si.Bitmap[k>>3]&(1<<uint(k&7)) != 0
}

// BlockSizeBytes returns block k's payload length from the zsize array.
func (si Index) BlockSizeBytes(k int) int {
	return int(binary.LittleEndian.Uint16(si.Zsize[2*k:]))
}

// BlockOffsets computes the starting offset of every block payload via a
// prefix sum over the zsize array (the decompressor's "prefix sum" step in
// Fig. 10 of the paper). The returned slice has NumBlocks+1 entries; the
// final entry is the total payload length, which is validated against the
// actual payload section.
func (si Index) BlockOffsets() ([]int, error) {
	nb := si.Hdr.NumBlocks()
	offs := make([]int, nb+1)
	sum := 0
	for k := 0; k < nb; k++ {
		offs[k] = sum
		sum += si.BlockSizeBytes(k)
	}
	offs[nb] = sum
	if sum > len(si.Payload) {
		return nil, ErrCorrupt
	}
	return offs, nil
}

// Stats summarizes a compression run; useful for the paper's block-size and
// overhead characterizations.
type Stats struct {
	Blocks         int // total blocks
	ConstantBlocks int // blocks stored as a single μ
	LosslessBlocks int // nonconstant blocks that required the full word
	GuardRetries   int // blocks re-encoded by the guard pass
	CompressedSize int // total output bytes
	OriginalSize   int // input bytes

	// EffectiveBound is the absolute error bound the stream was encoded
	// with — the same value embedded in the header. For relative or
	// fixed-ratio requests this is the resolved bound, not the request
	// parameter.
	EffectiveBound float64
	// Fixed-ratio trace, filled by the szx bound-resolution layer when the
	// run was driven by Options.TargetRatio (zero otherwise).
	TargetRatio    float64 // requested ratio
	RatioProbes    int     // sampled compression probes the search spent
	RatioConverged bool    // search ended within tolerance of the target
}

// Ratio returns the compression ratio (original size / compressed size).
func (s Stats) Ratio() float64 {
	if s.CompressedSize == 0 {
		return 0
	}
	return float64(s.OriginalSize) / float64(s.CompressedSize)
}

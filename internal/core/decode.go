package core

import (
	"slices"

	"repro/internal/bitio"
	"repro/internal/ieee"
	"repro/internal/kernels"
	"repro/telemetry"
)

// This file holds the single generic block decoder; DecompressFloat32 /
// DecompressFloat64 below are its pinned per-type instantiations.

// appendDecompressed appends the reconstructed values onto dst. With
// sufficient capacity in dst it performs no allocations: the per-block
// payload offsets are walked cumulatively instead of materializing the
// prefix-sum array.
func appendDecompressed[T Float, B Word](dst []T, comp []byte) ([]T, error) {
	rec := telemetry.Enabled()
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
	}
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != dtypeOf[T]() {
		return nil, ErrWrongType
	}
	base := len(dst)
	dst = slices.Grow(dst, si.Hdr.N)[:base+si.Hdr.N]
	if dst == nil {
		dst = []T{} // empty stream into nil dst: succeed with a non-nil slice
	}
	out := dst[base:]
	bs := si.Hdr.BlockSize
	off := 0
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(out) {
			hi = len(out)
		}
		end := off + si.BlockSizeBytes(k)
		if end > len(si.Payload) {
			return nil, ErrCorrupt
		}
		if err := decodeBlock[T, B](si.Payload[off:end], si.IsNonConstant(k), out[lo:hi]); err != nil {
			return nil, err
		}
		off = end
	}
	if rec {
		recordDecodedBlocks(si)
		telemetry.EngineDecompressSerial.Inc()
		telemetry.RecordDecompress(len(comp), ieee.Width[T]()*si.Hdr.N, tm.Elapsed())
	}
	return dst, nil
}

// decodeBlock reconstructs one block from its payload.
func decodeBlock[T Float, B Word](p []byte, nonConstant bool, out []T) error {
	es := ieee.Width[T]()
	if !nonConstant {
		if len(p) < es {
			return ErrCorrupt
		}
		mu := ieee.FromBits[T](ieee.GetLE[B](p))
		// Doubling fill: each copy is a wide memmove over an exponentially
		// growing prefix, instead of one store per element.
		if len(out) > 0 {
			out[0] = mu
			for f := 1; f < len(out); f *= 2 {
				copy(out[f:], out[:f])
			}
		}
		return nil
	}
	n := len(out)
	leadLen := bitio.PackedLen(n)
	if len(p) < es+1+leadLen {
		return ErrCorrupt
	}
	mu := ieee.FromBits[T](ieee.GetLE[B](p))
	reqLen := int(p[es])
	if reqLen < ieee.SignExpBits[T]() || reqLen > ieee.FullBits[T]() {
		return ErrCorrupt
	}
	lead := p[es+1 : es+1+leadLen]
	mid := p[es+1+leadLen:]

	// The packed-lead reconstruction is the dispatched DecodeScan kernel
	// (generic or vector, selected at init); header parsing and validation
	// stay here.
	var ok bool
	if es == 4 {
		ok = kernels.K32.DecodeScan(asF32(out), lead, mid, float32(mu), reqLen)
	} else {
		ok = kernels.K64.DecodeScan(asF64(out), lead, mid, float64(mu), reqLen)
	}
	if !ok {
		return ErrCorrupt
	}
	return nil
}

// --- exported wrappers (historical per-type API) ---------------------------

// DecompressFloat32 reconstructs the values from a stream produced by
// CompressFloat32.
func DecompressFloat32(comp []byte) ([]float32, error) {
	return appendDecompressed[float32, uint32](nil, comp)
}

// DecompressFloat64 reconstructs the values from a stream produced by
// CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, error) {
	return appendDecompressed[float64, uint64](nil, comp)
}

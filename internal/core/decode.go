package core

import (
	"slices"

	"repro/internal/bitio"
	"repro/internal/ieee"
	"repro/telemetry"
)

// This file holds the single generic block decoder; DecompressFloat32 /
// DecompressFloat64 below are its pinned per-type instantiations.

// appendDecompressed appends the reconstructed values onto dst. With
// sufficient capacity in dst it performs no allocations: the per-block
// payload offsets are walked cumulatively instead of materializing the
// prefix-sum array.
func appendDecompressed[T Float, B Word](dst []T, comp []byte) ([]T, error) {
	rec := telemetry.Enabled()
	var tm telemetry.Timer
	if rec {
		tm = telemetry.Start()
	}
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != dtypeOf[T]() {
		return nil, ErrWrongType
	}
	base := len(dst)
	dst = slices.Grow(dst, si.Hdr.N)[:base+si.Hdr.N]
	if dst == nil {
		dst = []T{} // empty stream into nil dst: succeed with a non-nil slice
	}
	out := dst[base:]
	bs := si.Hdr.BlockSize
	off := 0
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(out) {
			hi = len(out)
		}
		end := off + si.BlockSizeBytes(k)
		if end > len(si.Payload) {
			return nil, ErrCorrupt
		}
		if err := decodeBlock[T, B](si.Payload[off:end], si.IsNonConstant(k), out[lo:hi]); err != nil {
			return nil, err
		}
		off = end
	}
	if rec {
		recordDecodedBlocks(si)
		telemetry.EngineDecompressSerial.Inc()
		telemetry.RecordDecompress(len(comp), ieee.Width[T]()*si.Hdr.N, tm.Elapsed())
	}
	return dst, nil
}

// decodeBlock reconstructs one block from its payload.
func decodeBlock[T Float, B Word](p []byte, nonConstant bool, out []T) error {
	es := ieee.Width[T]()
	if !nonConstant {
		if len(p) < es {
			return ErrCorrupt
		}
		mu := ieee.FromBits[T](ieee.GetLE[B](p))
		// Doubling fill: each copy is a wide memmove over an exponentially
		// growing prefix, instead of one store per element.
		if len(out) > 0 {
			out[0] = mu
			for f := 1; f < len(out); f *= 2 {
				copy(out[f:], out[:f])
			}
		}
		return nil
	}
	n := len(out)
	leadLen := bitio.PackedLen(n)
	if len(p) < es+1+leadLen {
		return ErrCorrupt
	}
	mu := ieee.FromBits[T](ieee.GetLE[B](p))
	reqLen := int(p[es])
	if reqLen < ieee.SignExpBits[T]() || reqLen > ieee.FullBits[T]() {
		return ErrCorrupt
	}
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	lead := p[es+1 : es+1+leadLen]
	mid := p[es+1+leadLen:]
	lossless := reqLen == ieee.FullBits[T]()
	lowSh := uint(8 * (es - reqBytes)) // bit offset of the last stored byte

	// masks[l] keeps the top l bytes of the previous word. Precomputed so
	// the per-value splice is a table load instead of a variable shift
	// (whose ≥-width guard would sit on the loop's dependency chain).
	var masks [4]B
	for l := 1; l < 4; l++ {
		masks[l] = ^(^B(0) >> uint(8*l))
	}

	// Per value: splice the first l bytes of the previous word with the next
	// (reqBytes-l) mid-bytes. The mid-bytes are loaded as one big-endian
	// word on the fast path (shift counts ≥ width are defined as 0 in Go,
	// so nm == 0 degenerates correctly).
	//
	// The main loop decodes the packed 2-bit lead codes four at a time: one
	// byte load yields all four codes with fixed shifts, instead of
	// re-extracting with a value-dependent variable shift per element, and
	// a single up-front bound (four values consume at most 4*reqBytes
	// mid-bytes, each wide load reads es bytes from its start) hoists the
	// per-value length checks out of the group.
	var prev B
	mi := 0
	i := 0
	for ; i+4 <= n && mi+3*reqBytes+es <= len(mid); i += 4 {
		lb := lead[i>>2]

		l := int(lb >> 6)
		nm := reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		chunk := ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w := prev&masks[l] | chunk<<lowSh

		l = int(lb>>4) & 3
		nm = reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w2 := w&masks[l] | chunk<<lowSh

		l = int(lb>>2) & 3
		nm = reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w3 := w2&masks[l] | chunk<<lowSh

		l = int(lb) & 3
		nm = reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		mi += nm
		w4 := w3&masks[l] | chunk<<lowSh

		prev = w4
		if lossless {
			// Bit-exact path: μ is forced to zero for lossless blocks, and
			// skipping the addition preserves NaN payloads and signed
			// zeros.
			out[i] = ieee.FromBits[T](w)
			out[i+1] = ieee.FromBits[T](w2)
			out[i+2] = ieee.FromBits[T](w3)
			out[i+3] = ieee.FromBits[T](w4)
		} else {
			out[i] = ieee.FromBits[T](w<<s) + mu
			out[i+1] = ieee.FromBits[T](w2<<s) + mu
			out[i+2] = ieee.FromBits[T](w3<<s) + mu
			out[i+3] = ieee.FromBits[T](w4<<s) + mu
		}
	}
	// Tail: the last <4 values and any group whose mid-bytes run too close
	// to the end of the payload for unconditional wide loads.
	for ; i < n; i++ {
		l := int(lead[i>>2]>>uint(6-2*(i&3))) & 3
		nm := reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		var chunk B
		if mi+es <= len(mid) {
			chunk = ieee.GetBE[B](mid[mi:]) >> uint(8*(es-nm))
		} else {
			if mi+nm > len(mid) {
				return ErrCorrupt
			}
			for j := 0; j < nm; j++ {
				chunk = chunk<<8 | B(mid[mi+j])
			}
		}
		mi += nm
		w := prev&masks[l] | chunk<<lowSh
		prev = w
		if lossless {
			out[i] = ieee.FromBits[T](w)
		} else {
			out[i] = ieee.FromBits[T](w<<s) + mu
		}
	}
	return nil
}

// --- exported wrappers (historical per-type API) ---------------------------

// DecompressFloat32 reconstructs the values from a stream produced by
// CompressFloat32.
func DecompressFloat32(comp []byte) ([]float32, error) {
	return appendDecompressed[float32, uint32](nil, comp)
}

// DecompressFloat64 reconstructs the values from a stream produced by
// CompressFloat64.
func DecompressFloat64(comp []byte) ([]float64, error) {
	return appendDecompressed[float64, uint64](nil, comp)
}

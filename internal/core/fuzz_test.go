package core

import (
	"math"
	"testing"
)

// Fuzz targets: decoders must never panic or read out of bounds on
// arbitrary input, returning data or an error. Run with
// `go test -fuzz=FuzzDecompressFloat32 ./internal/core`; under plain
// `go test` the seed corpus doubles as a robustness regression suite.

func fuzzSeeds(f *testing.F) {
	data := genSmooth32(500, 42)
	comp32, _ := CompressFloat32(data, 1e-3, Options{})
	f.Add(comp32)
	data64 := make([]float64, 300)
	for i := range data64 {
		data64[i] = math.Sin(float64(i) / 10)
	}
	comp64, _ := CompressFloat64(data64, 1e-6, Options{})
	f.Add(comp64)
	packed, _ := CompressFloat32PackedBits(data, 1e-3, Options{})
	f.Add(packed)
	f.Add([]byte{})
	f.Add([]byte("SZX1"))
	f.Add([]byte("SZX1\x01\x00\x00\x00\x80\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
}

func FuzzDecompressFloat32(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, comp []byte) {
		out, err := DecompressFloat32(comp)
		if err == nil {
			// A successful decode must honor the header's value count.
			h, herr := ParseHeader(comp)
			if herr != nil || len(out) != h.N {
				t.Fatalf("decode/header mismatch: %v, %d values", herr, len(out))
			}
			// Parallel decode of a valid stream must agree bitwise.
			par, perr := DecompressFloat32Parallel(comp, 4)
			if perr != nil {
				t.Fatalf("serial ok but parallel failed: %v", perr)
			}
			for i := range out {
				if math.Float32bits(out[i]) != math.Float32bits(par[i]) {
					t.Fatal("parallel decode differs")
				}
			}
		}
	})
}

func FuzzDecompressFloat64(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, comp []byte) {
		_, _ = DecompressFloat64(comp)
	})
}

func FuzzDecompressPackedBits(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, comp []byte) {
		_, _ = DecompressFloat32PackedBits(comp)
	})
}

func FuzzDecompressRange(f *testing.F) {
	data := genSmooth32(500, 43)
	comp, _ := CompressFloat32(data, 1e-3, Options{})
	f.Add(comp, 10, 200)
	f.Add(comp, -5, 1<<30)
	f.Add([]byte("SZX1junk"), 0, 10)
	f.Fuzz(func(t *testing.T, comp []byte, lo, hi int) {
		out, err := DecompressFloat32Range(comp, lo, hi)
		if err == nil && len(out) != hi-lo {
			t.Fatalf("range decode returned %d values for [%d,%d)", len(out), lo, hi)
		}
	})
}

package core

import (
	"encoding/binary"
	"math"
	"slices"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// CompressFloat32 compresses data with the SZx algorithm under the absolute
// error bound errBound. The returned stream decompresses with
// DecompressFloat32 such that every value differs from the original by at
// most errBound.
func CompressFloat32(data []float32, errBound float64, opts Options) ([]byte, error) {
	out, _, err := CompressFloat32Stats(data, errBound, opts)
	return out, err
}

// CompressFloat32Stats is CompressFloat32 but also reports per-run statistics.
func CompressFloat32Stats(data []float32, errBound float64, opts Options) ([]byte, Stats, error) {
	bs, err := opts.blockSize()
	if err != nil {
		return nil, Stats{}, err
	}
	if !(errBound > 0) || math.IsInf(errBound, 0) {
		return nil, Stats{}, ErrErrBound
	}
	h := Header{Type: TypeFloat32, BlockSize: bs, N: len(data), ErrBound: errBound}
	nb := h.NumBlocks()

	out := make([]byte, 0, headerSize+(nb+7)/8+2*nb+len(data)+len(data)/2)
	out = AppendHeader(out, h)
	bitmapOff := len(out)
	out = append(out, make([]byte, (nb+7)/8)...)
	zsizeOff := len(out)
	out = append(out, make([]byte, 2*nb)...)

	enc := blockEncoder32{errBound: errBound, guarded: !opts.Unguarded}
	st := Stats{Blocks: nb, OriginalSize: 4 * len(data)}
	for k := 0; k < nb; k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		start := len(out)
		var constant bool
		out, constant = enc.encodeBlock(out, data[lo:hi])
		if !constant {
			out[bitmapOff+(k>>3)] |= 1 << uint(k&7)
		} else {
			st.ConstantBlocks++
		}
		binary.LittleEndian.PutUint16(out[zsizeOff+2*k:], uint16(len(out)-start))
	}
	st.LosslessBlocks = enc.lossless
	st.GuardRetries = enc.retries
	st.CompressedSize = len(out)
	return out, st, nil
}

type blockEncoder32 struct {
	errBound float64
	guarded  bool
	lossless int
	retries  int
	// leadBuf stages per-value leading-byte codes before packing; kept in
	// the encoder so it is not re-zeroed per block.
	leadBuf [MaxBlockSize]byte
}

// blockStats32 returns the block representative μ = (min+max)/2 and the
// variation radius r = max(max-μ, μ-min), computed exactly in float64
// (differences of float32 values are exact in float64). noNaN reports that
// the block holds no NaN: NaN compares false against min/max and would
// otherwise slip into a "constant" block unnoticed, so the constant path
// may only be taken when noNaN holds (NaN blocks fall through to the
// nonconstant path, whose guard escalates them to lossless).
func blockStats32(blk []float32) (mu float32, radius float64, noNaN bool) {
	mn, mx := blk[0], blk[0]
	sum := float32(0)
	for _, v := range blk[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
	}
	mu = float32((float64(mn) + float64(mx)) / 2)
	a := float64(mx) - float64(mu)
	b := float64(mu) - float64(mn)
	if b > a {
		a = b
	}
	return mu, a, sum == sum
}

// encodeBlock appends one block's payload to dst and reports whether the
// block was constant. Nonconstant payload layout:
//
//	μ (4B LE) | reqLength (1B) | leading 2-bit array | mid-bytes
func (enc *blockEncoder32) encodeBlock(dst []byte, blk []float32) ([]byte, bool) {
	mu, radius, noNaN := blockStats32(blk)
	if radius <= enc.errBound && noNaN { // radius NaN also fails the test
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(mu))
		return append(dst, b[:]...), true
	}

	radExpo := ieee.Exponent64(radius)
	errExpo := ieee.Exponent64(enc.errBound)
	reqLen, lossless := ieee.ReqLength32(radExpo, errExpo)
	start := len(dst)
	for {
		if lossless {
			mu = 0
			enc.lossless++
		}
		var ok bool
		dst, ok = enc.encodeNonConstant(dst, blk, mu, reqLen, lossless)
		if ok {
			return dst, false
		}
		// Guard tripped: widen the kept prefix and retry.
		enc.retries++
		dst = dst[:start]
		reqLen += 8
		if reqLen >= ieee.FullBits32 {
			reqLen = ieee.FullBits32
			lossless = true
		}
	}
}

func (enc *blockEncoder32) encodeNonConstant(dst []byte, blk []float32, mu float32, reqLen int, lossless bool) ([]byte, bool) {
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8 // 2..4 for float32
	n := len(blk)
	leadLen := bitio.PackedLen(n)

	// Grow once to the worst-case payload and write by index; the slice is
	// truncated to the actual size at the end (this keeps the per-value
	// loop free of append bookkeeping).
	start := len(dst)
	maxPayload := 5 + leadLen + reqBytes*n
	dst = slices.Grow(dst, maxPayload)[:start+maxPayload]
	binary.LittleEndian.PutUint32(dst[start:], math.Float32bits(mu))
	dst[start+4] = byte(reqLen)
	leadOff := start + 5
	idx := leadOff + leadLen

	// Mask of bits that survive truncation (top reqLen bits of the word);
	// used only by the guard check.
	keepMask := uint32(0xFFFFFFFF)
	if reqLen < 32 {
		keepMask <<= uint(32 - reqLen)
	}
	lowSh := uint(8 * (4 - reqBytes)) // bit offset of the last stored byte
	guarded := enc.guarded && !lossless
	e := enc.errBound
	// Fast-accept threshold for the guard: a float32 diff below this is
	// safely within the bound even after its own rounding; marginal cases
	// fall through to the exact float64 comparison.
	eSafe := float32(e * (1 - 1e-6))
	if float64(eSafe) >= e {
		// Tiny (subnormal-range) bounds can round eSafe up past e; force
		// every value through the exact check instead.
		eSafe = -1
	}

	leadBuf := &enc.leadBuf
	var prev uint32
	for i, d := range blk {
		v := d - mu
		bits := math.Float32bits(v)
		w := bits >> s

		if guarded {
			rec := math.Float32frombits(bits&keepMask) + mu
			diff := rec - d
			if diff < 0 {
				diff = -diff
			}
			// Fast-accept requires diff <= eSafe; NaN diffs fail the
			// comparison and take the exact path (which rejects them).
			if !(diff <= eSafe) {
				if !(math.Abs(float64(d)-float64(rec)) <= e) {
					return dst[:start], false
				}
			}
		}

		lead := bitio.LeadingZeroBytes32(w ^ prev)
		if lead > reqBytes {
			lead = reqBytes
		}
		leadBuf[i] = byte(lead)

		// Commit the remaining necessary bytes (big-endian prefix order:
		// byte j of the word sits at bit offset 8*(3-j); the last stored
		// byte sits at lowSh).
		switch reqBytes - lead {
		case 4:
			dst[idx] = byte(w >> 24)
			dst[idx+1] = byte(w >> 16)
			dst[idx+2] = byte(w >> 8)
			dst[idx+3] = byte(w)
			idx += 4
		case 3:
			dst[idx] = byte(w >> (lowSh + 16))
			dst[idx+1] = byte(w >> (lowSh + 8))
			dst[idx+2] = byte(w >> lowSh)
			idx += 3
		case 2:
			dst[idx] = byte(w >> (lowSh + 8))
			dst[idx+1] = byte(w >> lowSh)
			idx += 2
		case 1:
			dst[idx] = byte(w >> lowSh)
			idx++
		}
		prev = w
	}
	// Pack the 2-bit leading codes, four per byte.
	for i := 0; i < n; i += 4 {
		b := leadBuf[i] << 6
		if i+1 < n {
			b |= leadBuf[i+1] << 4
		}
		if i+2 < n {
			b |= leadBuf[i+2] << 2
		}
		if i+3 < n {
			b |= leadBuf[i+3]
		}
		dst[leadOff+(i>>2)] = b
	}
	return dst[:idx], true
}

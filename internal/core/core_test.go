package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genSmooth32 builds a smooth-ish signal resembling scientific field data.
func genSmooth32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := rng.Float64()
	for i := range out {
		v += 0.02 * (rng.Float64() - 0.5)
		out[i] = float32(math.Sin(float64(i)/50) + v)
	}
	return out
}

func genRough32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6))-3))
	}
	return out
}

func maxAbsErr32(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func maxAbsErr64(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestRoundTrip32Smooth(t *testing.T) {
	for _, e := range []float64{1e-2, 1e-3, 1e-4, 1e-6} {
		data := genSmooth32(10000, 1)
		comp, st, err := CompressFloat32Stats(data, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(data) {
			t.Fatalf("length mismatch %d != %d", len(dec), len(data))
		}
		if got := maxAbsErr32(data, dec); got > e {
			t.Errorf("e=%g: max error %g exceeds bound", e, got)
		}
		if st.Ratio() <= 1 {
			t.Errorf("e=%g: compression ratio %.2f not > 1", e, st.Ratio())
		}
	}
}

func TestRoundTrip32Rough(t *testing.T) {
	for _, e := range []float64{1e-1, 1e-3, 1e-7} {
		data := genRough32(5000, 2)
		comp, err := CompressFloat32(data, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxAbsErr32(data, dec); got > e {
			t.Errorf("e=%g: max error %g exceeds bound", e, got)
		}
	}
}

func TestRoundTrip64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 8000)
	v := 0.0
	for i := range data {
		v += 0.1 * (rng.Float64() - 0.5)
		data[i] = math.Cos(float64(i)/40)*3 + v
	}
	for _, e := range []float64{1e-2, 1e-5, 1e-9, 1e-13} {
		comp, err := CompressFloat64(data, e, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressFloat64(comp)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxAbsErr64(data, dec); got > e {
			t.Errorf("e=%g: max error %g exceeds bound", e, got)
		}
	}
}

func TestConstantData(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = 42.5
	}
	comp, st, err := CompressFloat32Stats(data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ConstantBlocks != st.Blocks {
		t.Errorf("want all constant blocks, got %d/%d", st.ConstantBlocks, st.Blocks)
	}
	if st.Ratio() < 20 {
		t.Errorf("constant data ratio %.1f too low", st.Ratio())
	}
	dec, err := DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec {
		if v != 42.5 {
			t.Fatalf("dec[%d] = %v", i, v)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 127, 128, 129} {
		data := genSmooth32(n, int64(n))
		comp, err := CompressFloat32(data, 1e-4, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: got %d values", n, len(dec))
		}
		if n > 0 && maxAbsErr32(data, dec) > 1e-4 {
			t.Fatalf("n=%d: bound violated", n)
		}
	}
}

func TestBlockSizes(t *testing.T) {
	data := genSmooth32(5000, 7)
	for _, bs := range []int{1, 2, 8, 16, 32, 64, 128, 224, 256, 4096} {
		comp, err := CompressFloat32(data, 1e-3, Options{BlockSize: bs})
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		if maxAbsErr32(data, dec) > 1e-3 {
			t.Fatalf("bs=%d: bound violated", bs)
		}
	}
}

func TestInvalidArgs(t *testing.T) {
	data := genSmooth32(10, 1)
	if _, err := CompressFloat32(data, 0, Options{}); err != ErrErrBound {
		t.Errorf("e=0: got %v", err)
	}
	if _, err := CompressFloat32(data, -1, Options{}); err != ErrErrBound {
		t.Errorf("e<0: got %v", err)
	}
	if _, err := CompressFloat32(data, math.Inf(1), Options{}); err != ErrErrBound {
		t.Errorf("e=inf: got %v", err)
	}
	if _, err := CompressFloat32(data, math.NaN(), Options{}); err != ErrErrBound {
		t.Errorf("e=nan: got %v", err)
	}
	if _, err := CompressFloat32(data, 1e-3, Options{BlockSize: -1}); err != ErrBlockSize {
		t.Errorf("bs=-1: got %v", err)
	}
	if _, err := CompressFloat32(data, 1e-3, Options{BlockSize: MaxBlockSize + 1}); err != ErrBlockSize {
		t.Errorf("bs too big: got %v", err)
	}
}

func TestCorruptStreams(t *testing.T) {
	data := genSmooth32(1000, 9)
	comp, err := CompressFloat32(data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      comp[:10],
		"bad magic":  append([]byte("NOPE"), comp[4:]...),
		"truncated":  comp[:len(comp)/2],
		"no payload": comp[:headerSize+4],
	}
	for name, c := range cases {
		if _, err := DecompressFloat32(c); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Flip bytes throughout the stream: must never panic.
	for i := 0; i < len(comp); i += 13 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xFF
		_, _ = DecompressFloat32(c) // any result ok, just no panic
	}
}

func TestWrongType(t *testing.T) {
	comp, err := CompressFloat32(genSmooth32(100, 1), 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressFloat64(comp); err != ErrWrongType {
		t.Errorf("got %v want ErrWrongType", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	comp, err := CompressFloat64(make([]float64, 300), 1e-5, Options{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(comp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeFloat64 || h.BlockSize != 64 || h.N != 300 || h.ErrBound != 1e-5 {
		t.Errorf("header mismatch: %+v", h)
	}
	if h.NumBlocks() != 5 {
		t.Errorf("NumBlocks = %d want 5", h.NumBlocks())
	}
}

// Property: for arbitrary float32 data (excluding NaN) and a random error
// bound, the round-trip error never exceeds the bound. This is the paper's
// central correctness claim (Formula 1).
func TestErrorBoundProperty32(t *testing.T) {
	f := func(seed int64, eExp uint8, rough bool) bool {
		e := math.Pow(10, -float64(eExp%10)) // 1 .. 1e-9
		var data []float32
		if rough {
			data = genRough32(777, seed)
		} else {
			data = genSmooth32(777, seed)
		}
		comp, err := CompressFloat32(data, e, Options{BlockSize: 1 + int(uint(seed)%200)})
		if err != nil {
			return false
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			return false
		}
		return maxAbsErr32(data, dec) <= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: float64 error bound holds for adversarial magnitudes (large μ,
// tiny bound) where normalization rounding matters; the guard pass must
// absorb them.
func TestErrorBoundProperty64(t *testing.T) {
	f := func(seed int64, eExp uint8, scaleExp int8) bool {
		e := math.Pow(10, -float64(eExp%14)) // 1 .. 1e-13
		scale := math.Pow(2, float64(scaleExp%40))
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, 500)
		for i := range data {
			data[i] = scale * (1 + 1e-3*rng.NormFloat64())
		}
		comp, err := CompressFloat64(data, e, Options{})
		if err != nil {
			return false
		}
		dec, err := DecompressFloat64(comp)
		if err != nil {
			return false
		}
		return maxAbsErr64(data, dec) <= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: raw random bit patterns (including Inf/subnormals, excluding
// NaN) round-trip within bound; NaN inputs must round-trip as NaN.
func TestBitPatternProperty32(t *testing.T) {
	f := func(words []uint32) bool {
		data := make([]float32, len(words))
		hasNaN := false
		for i, w := range words {
			data[i] = math.Float32frombits(w)
			if data[i] != data[i] {
				hasNaN = true
			}
		}
		comp, err := CompressFloat32(data, 1e-5, Options{BlockSize: 16})
		if err != nil {
			return false
		}
		dec, err := DecompressFloat32(comp)
		if err != nil {
			return false
		}
		for i := range data {
			if data[i] != data[i] { // NaN: must stay NaN
				if dec[i] == dec[i] {
					return false
				}
				continue
			}
			if math.IsInf(float64(data[i]), 0) {
				if dec[i] != data[i] {
					return false
				}
				continue
			}
			if math.Abs(float64(data[i])-float64(dec[i])) > 1e-5 {
				return false
			}
		}
		_ = hasNaN
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSerial32(t *testing.T) {
	data := genSmooth32(50000, 11)
	serial, err := CompressFloat32(data, 1e-4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		par, err := CompressFloat32Parallel(data, 1e-4, Options{}, w)
		if err != nil {
			t.Fatal(err)
		}
		if string(par) != string(serial) {
			t.Fatalf("workers=%d: parallel stream differs from serial", w)
		}
		decPar, err := DecompressFloat32Parallel(serial, w)
		if err != nil {
			t.Fatal(err)
		}
		decSer, err := DecompressFloat32(serial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range decSer {
			if decSer[i] != decPar[i] {
				t.Fatalf("workers=%d: value %d differs", w, i)
			}
		}
	}
}

func TestParallelMatchesSerial64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 30000)
	for i := range data {
		data[i] = math.Sin(float64(i)/100) + 0.01*rng.NormFloat64()
	}
	serial, err := CompressFloat64(data, 1e-6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompressFloat64Parallel(data, 1e-6, Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(par) != string(serial) {
		t.Fatal("parallel stream differs from serial")
	}
	dec, err := DecompressFloat64Parallel(par, 5)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsErr64(data, dec) > 1e-6 {
		t.Fatal("bound violated")
	}
}

func TestUnguardedStillCloseOnBenignData(t *testing.T) {
	data := genSmooth32(10000, 13)
	comp, err := CompressFloat32(data, 1e-4, Options{Unguarded: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	// Unguarded mode matches the original SZx behaviour: bound respected on
	// well-scaled data (allow the analytical 2x slack for the general case).
	if got := maxAbsErr32(data, dec); got > 2e-4 {
		t.Errorf("unguarded error %g > 2x bound", got)
	}
}

func TestShiftOverheadCharacterization(t *testing.T) {
	data := genSmooth32(20000, 17)
	for _, bs := range []int{8, 16, 32, 64, 128} {
		rep, err := CharacterizeShiftOverhead32(data, 1e-4, bs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BitsSolutionC < rep.BitsSolutionB-rep.BitsSolutionB/10 {
			t.Errorf("bs=%d: solution C bits (%d) unexpectedly far below B (%d)",
				bs, rep.BitsSolutionC, rep.BitsSolutionB)
		}
		ov := rep.Overhead()
		if ov < -0.10 || ov > 0.30 {
			t.Errorf("bs=%d: overhead %.3f outside plausible range", bs, ov)
		}
	}
}

func TestPackedBitsRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		data := genSmooth32(7000, seed)
		for _, e := range []float64{1e-2, 1e-4, 1e-6} {
			comp, err := CompressFloat32PackedBits(data, e, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecompressFloat32PackedBits(comp)
			if err != nil {
				t.Fatal(err)
			}
			if got := maxAbsErr32(data, dec); got > e {
				t.Errorf("seed=%d e=%g: error %g exceeds bound", seed, e, got)
			}
			// Solution B should never be (much) larger than Solution C.
			compC, err := CompressFloat32(data, e, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(comp) > len(compC)+len(compC)/5 {
				t.Errorf("packed stream %d much larger than shifted %d", len(comp), len(compC))
			}
		}
	}
}

func TestPackedBitsCorrupt(t *testing.T) {
	data := genSmooth32(500, 21)
	comp, err := CompressFloat32PackedBits(data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressFloat32PackedBits(comp[:8]); err == nil {
		t.Error("short stream: expected error")
	}
	for i := 0; i < len(comp); i += 11 {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xA5
		_, _ = DecompressFloat32PackedBits(c) // must not panic
	}
}

func TestStatsAccounting(t *testing.T) {
	data := genSmooth32(12800, 23)
	comp, st, err := CompressFloat32Stats(data, 1e-3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 100 {
		t.Errorf("Blocks = %d want 100", st.Blocks)
	}
	if st.CompressedSize != len(comp) {
		t.Errorf("CompressedSize = %d want %d", st.CompressedSize, len(comp))
	}
	if st.OriginalSize != 4*len(data) {
		t.Errorf("OriginalSize = %d", st.OriginalSize)
	}
	if st.ConstantBlocks < 0 || st.ConstantBlocks > st.Blocks {
		t.Errorf("ConstantBlocks = %d", st.ConstantBlocks)
	}
}

func TestShard(t *testing.T) {
	for _, c := range []struct{ n, w int }{{10, 3}, {1, 5}, {100, 7}, {5, 5}, {0, 4}} {
		b := shard(c.n, c.w)
		if b[0] != 0 || b[len(b)-1] != c.n {
			t.Errorf("shard(%d,%d) = %v", c.n, c.w, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Errorf("shard(%d,%d) not monotone: %v", c.n, c.w, b)
			}
		}
	}
}

// Regression: a NaN hiding in an otherwise-constant block must not be
// replaced by μ (NaN compares false against min/max, so the radius alone
// cannot see it).
func TestNaNInConstantBlock(t *testing.T) {
	data := make([]float32, 256)
	for i := range data {
		data[i] = 1.0
	}
	data[77] = float32(math.NaN())
	comp, err := CompressFloat32(data, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressFloat32(comp)
	if err != nil {
		t.Fatal(err)
	}
	if dec[77] == dec[77] {
		t.Fatalf("NaN decoded as %v", dec[77])
	}
	for i, v := range dec {
		if i != 77 && math.Abs(float64(v)-1.0) > 1.0 {
			t.Fatalf("dec[%d]=%v", i, v)
		}
	}
}

func TestNaNInConstantBlock64(t *testing.T) {
	data := make([]float64, 256)
	for i := range data {
		data[i] = 2.0
	}
	data[5] = math.NaN()
	comp, err := CompressFloat64(data, 10.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	if dec[5] == dec[5] {
		t.Fatalf("NaN decoded as %v", dec[5])
	}
}

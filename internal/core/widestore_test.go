package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/ieee"
)

// Adversarial-shape regression suite for the wide-store encoder. The hashes
// below were captured from the byte-at-a-time encoder that predates the wide
// big-endian store kernel (set SZX_CAPTURE_ADV=1 to reprint the table), so
// they pin the new kernel to the historical stream bytes on exactly the
// shapes where an unconditional wide store could go wrong: ragged tails with
// n%4 != 0 (partial lead-code bytes), reqBytes == es lossless blocks (the
// widest stores, zero slack between values), single-value blocks, and
// all-identical-lead blocks (maximal delta elision, minimal mid-byte
// output).

// advRamp returns a strictly linear ramp: consecutive deltas are identical,
// so after truncation every XOR shares the same leading-byte count.
func advRamp32(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = 1000 + float32(i)*0.25
	}
	return out
}

func advRamp64(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1000 + float64(i)*0.25
	}
	return out
}

// advAlternate flips between two far-apart values so blocks are nonconstant
// while every XOR of consecutive truncated words is the same pattern.
func advAlternate32(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		if i&1 == 0 {
			out[i] = 1.0
		} else {
			out[i] = 2.0
		}
	}
	return out
}

// advIncompressible fills every mantissa bit with noise over a wide spread
// of normal finite exponents; under a tiny error bound every block escalates
// to the lossless regime (reqBytes == es).
func advIncompressible32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		u := rng.Uint32()
		exp := 1 + (u>>23)%0xFD // normal, finite
		out[i] = math.Float32frombits(exp<<23 | u&0x007FFFFF)
	}
	return out
}

func advIncompressible64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		u := rng.Uint64()
		exp := 1 + (u>>52)%0x7FD // normal, finite
		out[i] = math.Float64frombits(exp<<52 | u&0x000FFFFFFFFFFFFF)
	}
	return out
}

type advCase struct {
	name string
	bs   int
	e    float64
	d32  []float32
	d64  []float64
}

func advCases() []advCase {
	return []advCase{
		// Ragged tails: n % blockSize leaves a tail block whose value count is
		// not a multiple of 4, so the packed 2-bit lead array ends mid-byte.
		{name: "tail-1", bs: 128, e: 1e-3, d32: goldenData32(129, 9), d64: goldenData64(129, 9)},
		{name: "tail-2", bs: 128, e: 1e-3, d32: goldenData32(130, 9), d64: goldenData64(130, 9)},
		{name: "tail-3", bs: 128, e: 1e-3, d32: goldenData32(131, 9), d64: goldenData64(131, 9)},
		{name: "tail-5", bs: 8, e: 1e-4, d32: goldenData32(13, 5), d64: goldenData64(13, 5)},
		// Lossless: reqBytes == es, the widest store with no inter-value slack.
		{name: "lossless", bs: 128, e: 1e-40, d32: advIncompressible32(1000, 3), d64: nil},
		{name: "lossless64", bs: 128, e: 1e-300, d32: nil, d64: advIncompressible64(1000, 4)},
		{name: "lossless-tail", bs: 128, e: 1e-40, d32: advIncompressible32(257, 5), d64: advIncompressible64(257, 6)},
		// Single-value blocks: every block holds exactly one value.
		{name: "bs1", bs: 1, e: 1e-3, d32: goldenRough32(97, 8), d64: goldenRough64(97, 8)},
		{name: "single", bs: 128, e: 1e-6, d32: goldenRough32(1, 2), d64: goldenRough64(1, 2)},
		// All-identical-lead blocks: ramps and alternating pairs.
		{name: "ramp", bs: 128, e: 1e-3, d32: advRamp32(1024), d64: advRamp64(1024)},
		{name: "ramp-tail", bs: 100, e: 1e-5, d32: advRamp32(513), d64: advRamp64(513)},
		{name: "alternate", bs: 64, e: 1e-4, d32: advAlternate32(509), d64: nil},
	}
}

// advGolden pins stream and decode hashes per case; "" entries are cases
// that do not apply to that element type.
var advGolden = map[string][4]string{
	// name -> {stream32, decode32, stream64, decode64}
	"tail-1":        {"e0459cafeab8d680", "c9f806129d31fcdf", "29710524d9cd33d8", "075b3888c4f37f22"},
	"tail-2":        {"2755284666cbb5ec", "b76824d2798fd099", "b9a280d2f4e6e322", "716673c01947d739"},
	"tail-3":        {"02caa2343c698e88", "4c88f58f0170a208", "916174467d0c7312", "26bc460761bd655c"},
	"tail-5":        {"460389000e2ac334", "d4d747ed7aabd76c", "34d25d2272e95837", "d2585037aed84658"},
	"lossless":      {"c4c0f46dc8780e2d", "ffda5f2b35055688", "", ""},
	"lossless64":    {"", "", "db24118db84145a5", "f0cf017b3117a6fd"},
	"lossless-tail": {"f85ec732d07f41c7", "77109fc5798ad0c7", "5f54f4312ae80078", "cfb0de6c2d40e92a"},
	"bs1":           {"fadf9cbb210316d0", "aa1b5a96ab0706e8", "60c38fcfcc1013e4", "8a1be3fa59251cd5"},
	"single":        {"a683226dd95aa019", "3321d6890cbcf256", "eb476f3e61282a36", "b7543f61e3811544"},
	"ramp":          {"8bc8fb572144df08", "1ec7125e0b26a3ee", "bb46ed89a131e4f9", "4552f74c490caa2a"},
	"ramp-tail":     {"d51263d31ce1f785", "c15806bd7597c59f", "0393cd6b1abcbbab", "2579e2fe141554b4"},
	"alternate":     {"760403ecfe55ade4", "9bd5921eaebbaed1", "", ""},
}

func checkAdv[T Float](t *testing.T, name string, data []T, e float64, bs int, wantStream, wantDecode string) {
	t.Helper()
	opts := Options{BlockSize: bs}
	comp, err := CompressInto[T](nil, data, e, opts)
	if err != nil {
		t.Fatalf("%s: compress: %v", name, err)
	}
	if got := streamHash(comp); got != wantStream {
		t.Errorf("%s: stream hash = %s, want %s", name, got, wantStream)
	}
	dec, err := DecompressInto[T](nil, comp)
	if err != nil {
		t.Fatalf("%s: decompress: %v", name, err)
	}
	if got := valuesHash(dec); got != wantDecode {
		t.Errorf("%s: decode hash = %s, want %s", name, got, wantDecode)
	}
	// Error bound must hold on every value (lossless cases are exact).
	for i := range data {
		if diff := math.Abs(float64(data[i]) - float64(dec[i])); !(diff <= e) {
			t.Fatalf("%s: |d-d'| = %g exceeds bound %g at %d", name, diff, e, i)
		}
	}
	// Parallel and serial streams must agree on these shapes too.
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		pcomp, err := CompressParallelInto[T](nil, data, e, opts, w)
		if err != nil {
			t.Fatalf("%s: parallel(%d): %v", name, w, err)
		}
		if !bytes.Equal(pcomp, comp) {
			t.Errorf("%s: parallel(%d) stream differs from serial", name, w)
		}
	}
}

func TestWideStoreAdversarialShapes(t *testing.T) {
	if os.Getenv("SZX_CAPTURE_ADV") != "" {
		for _, c := range advCases() {
			row := [4]string{}
			if c.d32 != nil {
				comp, err := CompressInto[float32](nil, c.d32, c.e, Options{BlockSize: c.bs})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := DecompressInto[float32](nil, comp)
				if err != nil {
					t.Fatal(err)
				}
				row[0], row[1] = streamHash(comp), valuesHash(dec)
			}
			if c.d64 != nil {
				comp, err := CompressInto[float64](nil, c.d64, c.e, Options{BlockSize: c.bs})
				if err != nil {
					t.Fatal(err)
				}
				dec, err := DecompressInto[float64](nil, comp)
				if err != nil {
					t.Fatal(err)
				}
				row[2], row[3] = streamHash(comp), valuesHash(dec)
			}
			fmt.Printf("\t%q: {%q, %q, %q, %q},\n", c.name, row[0], row[1], row[2], row[3])
		}
		return
	}
	for _, c := range advCases() {
		g, ok := advGolden[c.name]
		if !ok {
			t.Fatalf("no golden entry for %q", c.name)
		}
		if c.d32 != nil {
			checkAdv(t, "f32/"+c.name, c.d32, c.e, c.bs, g[0], g[1])
		}
		if c.d64 != nil {
			checkAdv(t, "f64/"+c.name, c.d64, c.e, c.bs, g[2], g[3])
		}
	}
}

// TestWideStoreSlackTruncation checks that the encoder's es-byte wide-store
// slack never leaks into the stream: the compressed length must exactly
// match the per-block sizes recorded in the zsize index.
func TestWideStoreSlackTruncation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 63, 64, 65, 127, 128, 129, 1000} {
		data := goldenRough32(n, int64(n))
		comp, err := CompressFloat32(data, 1e-5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		si, err := ParseStream(comp)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for k := 0; k < si.Hdr.NumBlocks(); k++ {
			sum += si.BlockSizeBytes(k)
		}
		if sum != len(si.Payload) {
			t.Fatalf("n=%d: zsize sum %d != payload length %d", n, sum, len(si.Payload))
		}
	}
}

// TestPutBERoundTrip pins the wide-store primitive itself.
func TestPutBERoundTrip(t *testing.T) {
	var buf [8]byte
	ieee.PutBE(buf[:], uint32(0x01020304))
	if got := ieee.GetBE[uint32](buf[:]); got != 0x01020304 {
		t.Fatalf("PutBE/GetBE uint32 = %08x", got)
	}
	ieee.PutBE(buf[:], uint64(0x0102030405060708))
	if got := ieee.GetBE[uint64](buf[:]); got != 0x0102030405060708 {
		t.Fatalf("PutBE/GetBE uint64 = %016x", got)
	}
}

package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Bit-identity regression suite. The hashes below were captured from the
// pre-generics per-type implementation (encode32/encode64, decode32/decode64)
// on the exact datasets reproduced by the generators in this file. They pin
// both the stream bytes and the reconstructed values, so any refactor of the
// codec core must remain bit-for-bit compatible with the historical format —
// for both element types, including ragged tail blocks (n=127, 129, 12345
// against block sizes 128/64/100) and lossless/guard-retry regimes (the
// "rough" cases).

func goldenData32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	v := rng.Float64()
	for i := range out {
		v += 0.02 * (rng.Float64() - 0.5)
		out[i] = float32(math.Sin(float64(i)/50) + v)
	}
	return out
}

func goldenData64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := rng.Float64()
	for i := range out {
		v += 0.02 * (rng.Float64() - 0.5)
		out[i] = math.Sin(float64(i)/50) + v
	}
	return out
}

func goldenRough32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6))-3))
	}
	return out
}

func goldenRough64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6))-3)
	}
	return out
}

func streamHash(comp []byte) string {
	s := sha256.Sum256(comp)
	return fmt.Sprintf("%x", s[:8])
}

func valuesHash[T Float](dec []T) string {
	h := sha256.New()
	var b [8]byte
	es := len(b)
	if _, ok := any(dec).([]float32); ok {
		es = 4
	}
	for _, v := range dec {
		var bits uint64
		switch d := any(v).(type) {
		case float32:
			bits = uint64(math.Float32bits(d))
		case float64:
			bits = math.Float64bits(d)
		}
		for j := 0; j < es; j++ {
			b[j] = byte(bits >> (8 * j))
		}
		h.Write(b[:es])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// goldenEntry pins one (dataset, options) combination.
type goldenEntry struct {
	name       string
	streamHash string
	decodeHash string
}

var goldenTable = []goldenEntry{
	{"f32/default-1e-2/n=1", "dc1d89af178cce27", "aac38bbf3bafdb76"},
	{"f64/default-1e-2/n=1", "8671044c3ca0de69", "ce7f55d7d6224a17"},
	{"f32/default-1e-4/n=1", "d77aa7e99055cdf6", "aac38bbf3bafdb76"},
	{"f64/default-1e-4/n=1", "4b16d7dd8831105f", "ce7f55d7d6224a17"},
	{"f32/bs64-1e-3/n=1", "31201d1d2d013144", "aac38bbf3bafdb76"},
	{"f64/bs64-1e-3/n=1", "fda606f9d4ed8dca", "ce7f55d7d6224a17"},
	{"f32/bs100-1e-4/n=1", "ca2e0b01378b93f2", "aac38bbf3bafdb76"},
	{"f64/bs100-1e-4/n=1", "0b7bfff2c64bdb7b", "ce7f55d7d6224a17"},
	{"f32/unguarded-1e-3/n=1", "3596e3c502474c45", "aac38bbf3bafdb76"},
	{"f64/unguarded-1e-3/n=1", "afa5c0d9d2fa7e5f", "ce7f55d7d6224a17"},
	{"f32/default-1e-2/n=127", "24e868633ff710fc", "6246f8963d518956"},
	{"f64/default-1e-2/n=127", "4628e4d5d8d1f43c", "63aed36086f834d1"},
	{"f32/default-1e-4/n=127", "f2ea41a7c5511a92", "7d808bc11191a319"},
	{"f64/default-1e-4/n=127", "a71c9c04af501340", "00b8e8a825a64516"},
	{"f32/bs64-1e-3/n=127", "1a51bb5ca0c294b7", "ba84926fbe922e13"},
	{"f64/bs64-1e-3/n=127", "88f6f923a3f1ac75", "c8102527902d7182"},
	{"f32/bs100-1e-4/n=127", "6e480be14f0d2ac5", "661615fbcc7584c5"},
	{"f64/bs100-1e-4/n=127", "fe2a73fe14775d0f", "5a34726900476d56"},
	{"f32/unguarded-1e-3/n=127", "de932be20bb124c0", "31a8116460c2a3f5"},
	{"f64/unguarded-1e-3/n=127", "3a9e9e2aaf45d314", "2751a15c110a3abe"},
	{"f32/default-1e-2/n=129", "7cbe39629e30df46", "4965c63d6aa379bd"},
	{"f64/default-1e-2/n=129", "e857746fadcd0022", "e8ff5540e9fcd1be"},
	{"f32/default-1e-4/n=129", "7d834807cb50796d", "7903c4a9a45d64b3"},
	{"f64/default-1e-4/n=129", "84f9983033e8c3c7", "095124dbd68c2c47"},
	{"f32/bs64-1e-3/n=129", "9e0950b4e4de0d85", "5b65b778bb033f3f"},
	{"f64/bs64-1e-3/n=129", "01837d4dbf60e887", "060ea1c729405b63"},
	{"f32/bs100-1e-4/n=129", "9470c6e4506b4a12", "4a15642ee655e613"},
	{"f64/bs100-1e-4/n=129", "ec00330ada9938f0", "fcfa0d5aab36bb61"},
	{"f32/unguarded-1e-3/n=129", "05fe22b4530aee11", "34c8ff67b3bdb5f9"},
	{"f64/unguarded-1e-3/n=129", "64caff8ffc60da57", "8eb22b0f628f79ee"},
	{"f32/default-1e-2/n=12345", "acbd6dc71221263c", "56e6182edab530bb"},
	{"f64/default-1e-2/n=12345", "8f76bf3c9c79d376", "3320d1b25dbedaf4"},
	{"f32/default-1e-4/n=12345", "78ee9f8702e4bbc0", "abe65e926c4c263a"},
	{"f64/default-1e-4/n=12345", "22d5c1e1a5bfcf90", "6e33aa699b1fe6e0"},
	{"f32/bs64-1e-3/n=12345", "f25d097d8456c373", "08d3ccf9894fec02"},
	{"f64/bs64-1e-3/n=12345", "144f8b758687cb04", "f1c232a93b9921f6"},
	{"f32/bs100-1e-4/n=12345", "1b86c5802bdf81aa", "27fdcfce3a8422c1"},
	{"f64/bs100-1e-4/n=12345", "c6082687264c4b6a", "bae1d9148d62bd0c"},
	{"f32/unguarded-1e-3/n=12345", "ace6aed8dfeceebd", "1ea08620431a76da"},
	{"f64/unguarded-1e-3/n=12345", "a0a593845575c06f", "81e231f71cff48dc"},
	{"f32/rough-1e-06", "6dac2d93d6db7c18", "b9941b2f2b391145"},
	{"f64/rough-1e-06", "6bd4a749c45c8540", "2c32ecc4894dc800"},
	{"f32/rough-1e-09", "23aac7e05c70282f", "b9941b2f2b391145"},
	{"f64/rough-1e-09", "b0c14abce24078ed", "bb79cbce09ee3345"},
}

var goldenCases = []struct {
	name string
	bs   int
	e    float64
	ung  bool
}{
	{"default-1e-2", 0, 1e-2, false},
	{"default-1e-4", 0, 1e-4, false},
	{"bs64-1e-3", 64, 1e-3, false},
	{"bs100-1e-4", 100, 1e-4, false},
	{"unguarded-1e-3", 0, 1e-3, true},
}

func goldenLookup(t *testing.T, name string) goldenEntry {
	t.Helper()
	for _, g := range goldenTable {
		if g.name == name {
			return g
		}
	}
	t.Fatalf("no golden entry for %q", name)
	return goldenEntry{}
}

// checkGolden compresses data every way the package offers — serial,
// parallel at several worker counts, and the Into reuse variants with a
// dirty prefilled destination — and asserts that every path yields the
// pinned stream bytes and the pinned reconstruction.
func checkGolden[T Float](t *testing.T, name string, data []T, e float64, opts Options) {
	t.Helper()
	g := goldenLookup(t, name)

	comp, err := CompressInto[T](nil, data, e, opts)
	if err != nil {
		t.Fatalf("%s: compress: %v", name, err)
	}
	if got := streamHash(comp); got != g.streamHash {
		t.Errorf("%s: serial stream hash = %s, want %s", name, got, g.streamHash)
	}

	dec, err := DecompressInto[T](nil, comp)
	if err != nil {
		t.Fatalf("%s: decompress: %v", name, err)
	}
	if got := valuesHash(dec); got != g.decodeHash {
		t.Errorf("%s: decode hash = %s, want %s", name, got, g.decodeHash)
	}

	workerCounts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		pcomp, err := CompressParallelInto[T](nil, data, e, opts, w)
		if err != nil {
			t.Fatalf("%s: parallel(%d) compress: %v", name, w, err)
		}
		if !bytes.Equal(pcomp, comp) {
			t.Errorf("%s: parallel(%d) stream differs from serial", name, w)
		}
		pdec, err := DecompressParallelInto[T](nil, comp, w)
		if err != nil {
			t.Fatalf("%s: parallel(%d) decompress: %v", name, w, err)
		}
		if got := valuesHash(pdec); got != g.decodeHash {
			t.Errorf("%s: parallel(%d) decode hash = %s, want %s", name, w, got, g.decodeHash)
		}
	}

	// Into variants appending after a dirty prefix, reusing warm capacity.
	prefix := []byte{0xAA, 0xBB, 0xCC}
	buf := append(make([]byte, 0, len(prefix)+len(comp)+64), prefix...)
	buf, err = CompressInto(buf, data, e, opts)
	if err != nil {
		t.Fatalf("%s: CompressInto: %v", name, err)
	}
	if !bytes.Equal(buf[:len(prefix)], prefix) || !bytes.Equal(buf[len(prefix):], comp) {
		t.Errorf("%s: CompressInto append result differs from serial stream", name)
	}
	dirty := make([]T, 2, 2+len(data)+16)
	dirty[0], dirty[1] = 42, 43
	out, err := DecompressInto(dirty, comp)
	if err != nil {
		t.Fatalf("%s: DecompressInto: %v", name, err)
	}
	if out[0] != 42 || out[1] != 43 {
		t.Errorf("%s: DecompressInto clobbered the existing prefix", name)
	}
	if got := valuesHash(out[2:]); got != g.decodeHash {
		t.Errorf("%s: DecompressInto decode hash = %s, want %s", name, got, g.decodeHash)
	}
}

func TestBitIdentityGolden(t *testing.T) {
	for _, n := range []int{1, 127, 129, 12345} {
		for _, c := range goldenCases {
			opts := Options{BlockSize: c.bs, Unguarded: c.ung}
			checkGolden(t, fmt.Sprintf("f32/%s/n=%d", c.name, n), goldenData32(n, int64(n)), c.e, opts)
			checkGolden(t, fmt.Sprintf("f64/%s/n=%d", c.name, n), goldenData64(n, int64(n)), c.e, opts)
		}
	}
	for _, e := range []float64{1e-6, 1e-9} {
		checkGolden(t, fmt.Sprintf("f32/rough-%g", e), goldenRough32(5000, 77), e, Options{})
		checkGolden(t, fmt.Sprintf("f64/rough-%g", e), goldenRough64(5000, 77), e, Options{})
	}
}

// TestBitIdentityWrappers pins the exported per-type wrappers to the same
// streams as the generic Into paths.
func TestBitIdentityWrappers(t *testing.T) {
	d32 := goldenData32(12345, 12345)
	d64 := goldenData64(12345, 12345)
	e := 1e-3

	c32, err := CompressFloat32(d32, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g32, err := CompressInto[float32](nil, d32, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c32, g32) {
		t.Error("CompressFloat32 differs from CompressInto[float32]")
	}
	p32, err := CompressFloat32Parallel(d32, e, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c32, p32) {
		t.Error("CompressFloat32Parallel differs from CompressFloat32")
	}

	c64, err := CompressFloat64(d64, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g64, err := CompressInto[float64](nil, d64, e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c64, g64) {
		t.Error("CompressFloat64 differs from CompressInto[float64]")
	}
	p64, err := CompressFloat64Parallel(d64, e, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c64, p64) {
		t.Error("CompressFloat64Parallel differs from CompressFloat64")
	}

	dec32, err := DecompressFloat32(c32)
	if err != nil {
		t.Fatal(err)
	}
	pdec32, err := DecompressFloat32Parallel(c32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if valuesHash(dec32) != valuesHash(pdec32) {
		t.Error("parallel float32 reconstruction differs from serial")
	}
	dec64, err := DecompressFloat64(c64)
	if err != nil {
		t.Fatal(err)
	}
	pdec64, err := DecompressFloat64Parallel(c64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if valuesHash(dec64) != valuesHash(pdec64) {
		t.Error("parallel float64 reconstruction differs from serial")
	}
}

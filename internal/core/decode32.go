package core

import (
	"encoding/binary"
	"math"

	"repro/internal/bitio"
	"repro/internal/ieee"
)

// DecompressFloat32 reconstructs the values from a stream produced by
// CompressFloat32.
func DecompressFloat32(comp []byte) ([]float32, error) {
	si, err := ParseStream(comp)
	if err != nil {
		return nil, err
	}
	if si.Hdr.Type != TypeFloat32 {
		return nil, ErrWrongType
	}
	out := make([]float32, si.Hdr.N)
	offs, err := si.BlockOffsets()
	if err != nil {
		return nil, err
	}
	bs := si.Hdr.BlockSize
	for k := 0; k < si.Hdr.NumBlocks(); k++ {
		lo := k * bs
		hi := lo + bs
		if hi > len(out) {
			hi = len(out)
		}
		if err := decodeBlock32(si.Payload[offs[k]:offs[k+1]], si.IsNonConstant(k), out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeBlock32 reconstructs one block from its payload.
func decodeBlock32(p []byte, nonConstant bool, out []float32) error {
	if !nonConstant {
		if len(p) < 4 {
			return ErrCorrupt
		}
		mu := math.Float32frombits(binary.LittleEndian.Uint32(p))
		for i := range out {
			out[i] = mu
		}
		return nil
	}
	n := len(out)
	leadLen := bitio.PackedLen(n)
	if len(p) < 5+leadLen {
		return ErrCorrupt
	}
	mu := math.Float32frombits(binary.LittleEndian.Uint32(p))
	reqLen := int(p[4])
	if reqLen < ieee.SignExpBits32 || reqLen > ieee.FullBits32 {
		return ErrCorrupt
	}
	s := uint(ieee.ShiftBits(reqLen))
	reqBytes := (reqLen + int(s)) / 8
	lead := p[5 : 5+leadLen]
	mid := p[5+leadLen:]
	lossless := reqLen == ieee.FullBits32
	lowSh := uint(8 * (4 - reqBytes)) // bit offset of the last stored byte

	// Per value: splice the first l bytes of the previous word with the
	// next (reqBytes-l) mid-bytes. The mid-bytes are loaded as one
	// big-endian word on the fast path (shift counts ≥ width are defined
	// as 0 in Go, so nm == 0 degenerates correctly).
	var prev uint32
	mi := 0
	for i := 0; i < n; i++ {
		l := int(lead[i>>2]>>uint(6-2*(i&3))) & 3
		nm := reqBytes - l
		if nm < 0 {
			return ErrCorrupt
		}
		var chunk uint32
		if mi+4 <= len(mid) {
			chunk = binary.BigEndian.Uint32(mid[mi:]) >> uint(8*(4-nm))
		} else {
			if mi+nm > len(mid) {
				return ErrCorrupt
			}
			for j := 0; j < nm; j++ {
				chunk = chunk<<8 | uint32(mid[mi+j])
			}
		}
		mi += nm
		w := prev&leadMask32[l] | chunk<<lowSh
		prev = w
		if lossless {
			// Bit-exact path: μ is forced to zero for lossless blocks, and
			// skipping the addition preserves NaN payloads and signed zeros.
			out[i] = math.Float32frombits(w)
		} else {
			out[i] = math.Float32frombits(w<<s) + mu
		}
	}
	return nil
}

// leadMask32[l] keeps the top l bytes of a 32-bit word.
var leadMask32 = [5]uint32{
	0x00000000,
	0xFF000000,
	0xFFFF0000,
	0xFFFFFF00,
	0xFFFFFFFF,
}

package ieee

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponent32(t *testing.T) {
	cases := []struct {
		x    float32
		want int
	}{
		{1.0, 0},
		{2.0, 1},
		{4.0, 2},
		{0.5, -1},
		{0.25, -2},
		{1.5, 0},
		{3.9, 1},
		{-8.0, 3},
		{1e-3, -10},
		{0, -Bias32},
	}
	for _, c := range cases {
		if got := Exponent32(c.x); got != c.want {
			t.Errorf("Exponent32(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestExponent64(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1.0, 0},
		{1e-4, -14},
		{1e6, 19},
		{-0.75, -1},
		{0, -Bias64},
	}
	for _, c := range cases {
		if got := Exponent64(c.x); got != c.want {
			t.Errorf("Exponent64(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// Exponent must agree with math.Log2 (floored) for normal positive values.
func TestExponentMatchesLog2(t *testing.T) {
	f := func(x float64) bool {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		ax := math.Abs(x)
		if ax < math.SmallestNonzeroFloat64*(1<<53) { // skip subnormals
			return true
		}
		want := int(math.Floor(math.Log2(ax)))
		return Exponent64(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReqLength32(t *testing.T) {
	// radius exponent 0, error exponent -10 -> 9 + 10 = 19 bits.
	if got, lossless := ReqLength32(0, -10); got != 19 || lossless {
		t.Errorf("ReqLength32(0,-10) = %d,%v want 19,false", got, lossless)
	}
	// Error bound looser than radius -> minimum 9 bits.
	if got, lossless := ReqLength32(-5, 3); got != SignExpBits32 || lossless {
		t.Errorf("ReqLength32(-5,3) = %d,%v want 9,false", got, lossless)
	}
	// Very tight bound -> lossless full word.
	if got, lossless := ReqLength32(10, -40); got != FullBits32 || !lossless {
		t.Errorf("ReqLength32(10,-40) = %d,%v want 32,true", got, lossless)
	}
	// Exactly 32 is lossless.
	if got, lossless := ReqLength32(0, -23); got != FullBits32 || !lossless {
		t.Errorf("ReqLength32(0,-23) = %d,%v want 32,true", got, lossless)
	}
	// 31 is not.
	if got, lossless := ReqLength32(0, -22); got != 31 || lossless {
		t.Errorf("ReqLength32(0,-22) = %d,%v want 31,false", got, lossless)
	}
}

func TestReqLength64(t *testing.T) {
	if got, lossless := ReqLength64(0, -10); got != 22 || lossless {
		t.Errorf("ReqLength64(0,-10) = %d,%v want 22,false", got, lossless)
	}
	if got, lossless := ReqLength64(-3, 5); got != SignExpBits64 || lossless {
		t.Errorf("ReqLength64(-3,5) = %d,%v want 12,false", got, lossless)
	}
	if got, lossless := ReqLength64(0, -60); got != FullBits64 || !lossless {
		t.Errorf("ReqLength64(0,-60) = %d,%v want 64,true", got, lossless)
	}
}

func TestShiftBits(t *testing.T) {
	cases := []struct{ req, want int }{
		{8, 0}, {16, 0}, {24, 0}, {32, 0},
		{9, 7}, {10, 6}, {15, 1}, {17, 7}, {23, 1}, {31, 1},
	}
	for _, c := range cases {
		if got := ShiftBits(c.req); got != c.want {
			t.Errorf("ShiftBits(%d) = %d, want %d", c.req, got, c.want)
		}
	}
}

// Property: reqLength + shift is always a positive multiple of 8 and at most
// one byte above the unpadded length.
func TestShiftBitsProperty(t *testing.T) {
	for req := 1; req <= 64; req++ {
		s := ShiftBits(req)
		if (req+s)%8 != 0 {
			t.Errorf("req %d + shift %d not a byte multiple", req, s)
		}
		if s < 0 || s > 7 {
			t.Errorf("shift %d out of range for req %d", s, req)
		}
	}
}

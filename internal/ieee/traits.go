package ieee

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The generic trait layer: one set of type-parameterized helpers that
// resolve to the float32 or float64 bit-level primitives at instantiation
// time. float32 and float64 have distinct GC shapes, so the compiler
// stencils a separate instantiation per width and the width branches below
// fold to straight-line code — the generic codec pays no dispatch cost in
// its per-value loops.

// Float constrains the element types the SZx codec supports.
type Float interface{ ~float32 | ~float64 }

// Word is the unsigned carrier of a Float's IEEE-754 bit pattern. Every
// generic codec function pairs a Float with the Word of the same width
// (float32↔uint32, float64↔uint64); the dispatch wrappers in
// internal/core guarantee the pairing.
type Word interface{ ~uint32 | ~uint64 }

// Width returns the element size in bytes (4 or 8) of T.
func Width[T Float]() int {
	var v T
	return int(unsafe.Sizeof(v))
}

// ToBits returns the IEEE-754 bit pattern of v in a word of matching width.
func ToBits[B Word, T Float](v T) B {
	if unsafe.Sizeof(v) == 4 {
		return B(math.Float32bits(float32(v)))
	}
	return B(math.Float64bits(float64(v)))
}

// FromBits reconstructs the float whose IEEE-754 bit pattern is w.
func FromBits[T Float, B Word](w B) T {
	if unsafe.Sizeof(w) == 4 {
		return T(math.Float32frombits(uint32(w)))
	}
	return T(math.Float64frombits(uint64(w)))
}

// FullBits returns the total number of bits in T's IEEE-754 word.
func FullBits[T Float]() int {
	if Width[T]() == 4 {
		return FullBits32
	}
	return FullBits64
}

// SignExpBits returns the number of sign+exponent bits in T's word.
func SignExpBits[T Float]() int {
	if Width[T]() == 4 {
		return SignExpBits32
	}
	return SignExpBits64
}

// ReqLength is the width-generic ReqLength32/ReqLength64 (Formula 4).
func ReqLength[T Float](radExpo, errExpo int) (reqLength int, lossless bool) {
	if Width[T]() == 4 {
		return ReqLength32(radExpo, errExpo)
	}
	return ReqLength64(radExpo, errExpo)
}

// PutLE stores w little-endian into p (which must hold the word's width).
func PutLE[B Word](p []byte, w B) {
	if unsafe.Sizeof(w) == 4 {
		binary.LittleEndian.PutUint32(p, uint32(w))
	} else {
		binary.LittleEndian.PutUint64(p, uint64(w))
	}
}

// GetLE loads a little-endian word from p (which must hold the width).
func GetLE[B Word](p []byte) B {
	var w B
	if unsafe.Sizeof(w) == 4 {
		return B(binary.LittleEndian.Uint32(p))
	}
	return B(binary.LittleEndian.Uint64(p))
}

// GetBE loads a full-width big-endian word from p (which must hold the
// width). Used by the decoder's fast mid-byte path.
func GetBE[B Word](p []byte) B {
	var w B
	if unsafe.Sizeof(w) == 4 {
		return B(binary.BigEndian.Uint32(p))
	}
	return B(binary.BigEndian.Uint64(p))
}

// PutBE stores w big-endian into p (which must hold the word's width). It is
// the encoder's mirror of GetBE: the mid-byte commit writes one full-width
// word per value and advances by the number of bytes actually kept, relying
// on the caller to over-allocate a word of slack past the last value.
func PutBE[B Word](p []byte, w B) {
	if unsafe.Sizeof(w) == 4 {
		binary.BigEndian.PutUint32(p, uint32(w))
	} else {
		binary.BigEndian.PutUint64(p, uint64(w))
	}
}

// Package ieee provides IEEE-754 bit-level helpers used by the SZx codec
// and its baselines: exponent extraction, required-significant-bit math
// (Formula 4 of the SZx paper), and byte-order conversions for float words.
//
// All helpers operate on the raw bit patterns so that the hot compression
// loops stay free of multiplications and divisions, per the paper's design
// constraint of using only lightweight operations.
package ieee

import "math"

// Float32 layout constants.
const (
	// SignExpBits32 is the number of sign+exponent bits in a float32 word.
	SignExpBits32 = 9
	// FullBits32 is the total number of bits in a float32 word.
	FullBits32 = 32
	// MantBits32 is the number of explicit mantissa bits in a float32.
	MantBits32 = 23
	// Bias32 is the float32 exponent bias.
	Bias32 = 127
)

// Float64 layout constants.
const (
	// SignExpBits64 is the number of sign+exponent bits in a float64 word.
	SignExpBits64 = 12
	// FullBits64 is the total number of bits in a float64 word.
	FullBits64 = 64
	// MantBits64 is the number of explicit mantissa bits in a float64.
	MantBits64 = 52
	// Bias64 is the float64 exponent bias.
	Bias64 = 1023
)

// Exponent32 returns the unbiased binary exponent of x, i.e. floor(log2|x|)
// for normal values. Zero and subnormal inputs return -Bias32, which is a
// safe (conservative) lower bound for the codec: it only ever causes more
// bits to be kept, never fewer.
func Exponent32(x float32) int {
	bits := math.Float32bits(x)
	e := int(bits>>MantBits32) & 0xFF
	return e - Bias32
}

// Exponent64 returns the unbiased binary exponent of x, i.e. floor(log2|x|)
// for normal values. Zero and subnormal inputs return -Bias64.
func Exponent64(x float64) int {
	bits := math.Float64bits(x)
	e := int(bits>>MantBits64) & 0x7FF
	return e - Bias64
}

// ReqLength32 computes the number of significant bits that must be kept from
// a normalized float32 word so that truncation error stays below the error
// bound (Formula 4). radExpo is the exponent of the block's variation radius
// and errExpo the exponent of the absolute error bound.
//
// The returned length includes the 9 sign+exponent bits. lossless reports
// whether the full 32-bit word must be kept, in which case the caller must
// disable normalization (store values verbatim) so reconstruction is exact.
func ReqLength32(radExpo, errExpo int) (reqLength int, lossless bool) {
	reqLength = SignExpBits32 + radExpo - errExpo
	if reqLength < SignExpBits32 {
		reqLength = SignExpBits32
	}
	if reqLength >= FullBits32 {
		return FullBits32, true
	}
	return reqLength, false
}

// ReqLength64 is the float64 analogue of ReqLength32; the kept length
// includes the 12 sign+exponent bits.
func ReqLength64(radExpo, errExpo int) (reqLength int, lossless bool) {
	reqLength = SignExpBits64 + radExpo - errExpo
	if reqLength < SignExpBits64 {
		reqLength = SignExpBits64
	}
	if reqLength >= FullBits64 {
		return FullBits64, true
	}
	return reqLength, false
}

// ShiftBits returns the right-shift amount s that pads reqLength up to the
// next multiple of 8 (Formula 5, Solution C in the paper): after shifting a
// word right by s bits, the significant prefix occupies a whole number of
// bytes and can be committed with plain byte copies.
func ShiftBits(reqLength int) int {
	r := reqLength & 7
	if r == 0 {
		return 0
	}
	return 8 - r
}

package wireconv

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// refF32 is the portable reference encoding every path must match.
func refF32(vals []float32) []byte {
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out
}

func refF64(vals []float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// TestBothPaths runs the whole API against the reference encoding on the
// native path and again with the portable fallback forced, so the two
// implementations can never drift apart regardless of test hardware.
func TestBothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f32s := make([]float32, 1023)
	f64s := make([]float64, 1023)
	for i := range f32s {
		f32s[i] = float32(rng.NormFloat64())
		f64s[i] = rng.NormFloat64()
	}
	// NaN and infinities must survive bit-exactly too.
	f32s[0] = float32(math.NaN())
	f32s[1] = float32(math.Inf(-1))
	f64s[0] = math.NaN()
	f64s[1] = math.Inf(1)

	saved := hostLE
	defer func() { hostLE = saved }()
	for _, le := range []bool{saved, !saved} {
		hostLE = le
		for _, n := range []int{0, 1, 7, 1023} {
			want32, want64 := refF32(f32s[:n]), refF64(f64s[:n])

			if got := AppendF32([]byte("pre"), f32s[:n]); !bytes.Equal(got, append([]byte("pre"), want32...)) {
				t.Fatalf("hostLE=%v n=%d: AppendF32 mismatch", le, n)
			}
			if got := AppendF64(nil, f64s[:n]); !bytes.Equal(got, want64) {
				t.Fatalf("hostLE=%v n=%d: AppendF64 mismatch", le, n)
			}

			put32 := make([]byte, 4*n)
			PutF32(put32, f32s[:n])
			if !bytes.Equal(put32, want32) {
				t.Fatalf("hostLE=%v n=%d: PutF32 mismatch", le, n)
			}
			put64 := make([]byte, 8*n)
			PutF64(put64, f64s[:n])
			if !bytes.Equal(put64, want64) {
				t.Fatalf("hostLE=%v n=%d: PutF64 mismatch", le, n)
			}

			back32 := F32(nil, want32)
			back64 := F64(nil, want64)
			if len(back32) != n || len(back64) != n {
				t.Fatalf("hostLE=%v n=%d: decode lengths %d/%d", le, n, len(back32), len(back64))
			}
			for i := 0; i < n; i++ {
				if math.Float32bits(back32[i]) != math.Float32bits(f32s[i]) {
					t.Fatalf("hostLE=%v: F32[%d] bits differ", le, i)
				}
				if math.Float64bits(back64[i]) != math.Float64bits(f64s[i]) {
					t.Fatalf("hostLE=%v: F64[%d] bits differ", le, i)
				}
			}
		}
	}
}

// TestF32ReusesCapacity pins the pooling contract: a dst with enough
// capacity is reused, not reallocated.
func TestF32ReusesCapacity(t *testing.T) {
	dst := make([]float32, 0, 64)
	b := refF32([]float32{1, 2, 3})
	got := F32(dst, b)
	if &got[0] != &dst[:1][0] {
		t.Fatal("F32 reallocated despite sufficient capacity")
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("F32 decoded %v", got)
	}
}

func BenchmarkAppendF32_16K(b *testing.B) {
	vals := make([]float32, 4096)
	dst := make([]byte, 0, 4*len(vals))
	b.SetBytes(int64(4 * len(vals)))
	for i := 0; i < b.N; i++ {
		dst = AppendF32(dst[:0], vals)
	}
}

func BenchmarkDecodeF32_16K(b *testing.B) {
	vals := make([]float32, 4096)
	raw := AppendF32(nil, vals)
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		DecodeF32(vals, raw)
	}
}

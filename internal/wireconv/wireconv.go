// Package wireconv converts between float slices and their little-endian
// wire encoding. The wire format is fixed (SZx streams, the szxd service,
// and the SZXB batch framing are all little-endian), so on little-endian
// hosts — every platform this repo targets in practice — the conversion is
// a single memcpy through an unsafe reinterpretation, the same technique
// internal/core uses for same-width float views. Big-endian hosts fall
// back to portable per-value encoding.
//
// Per-value byte shuffling is pure overhead on small-payload service
// traffic: a 64-array batch of 16 KiB floats crosses the float/byte
// boundary four times (client stage, server unpack, server restage, client
// decode), and at memcpy speed those four crossings stop showing up in the
// per-array cost.
package wireconv

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLE reports whether the host's native byte order is the wire's
// little-endian order. A var rather than a const so tests can exercise the
// portable path on any hardware.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f32Raw views vals' storage as bytes. Valid only while vals is alive and
// unmoved; every exported caller copies out of the view before returning.
func f32Raw(vals []float32) []byte {
	if len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), 4*len(vals))
}

func f64Raw(vals []float64) []byte {
	if len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), 8*len(vals))
}

// AppendF32 appends vals' wire bytes to dst.
func AppendF32(dst []byte, vals []float32) []byte {
	if hostLE {
		return append(dst, f32Raw(vals)...)
	}
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// AppendF64 appends vals' wire bytes to dst.
func AppendF64(dst []byte, vals []float64) []byte {
	if hostLE {
		return append(dst, f64Raw(vals)...)
	}
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// PutF32 writes vals' wire bytes into dst, which must hold 4*len(vals)
// bytes.
func PutF32(dst []byte, vals []float32) {
	if hostLE {
		copy(dst, f32Raw(vals))
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// PutF64 writes vals' wire bytes into dst, which must hold 8*len(vals)
// bytes.
func PutF64(dst []byte, vals []float64) {
	if hostLE {
		copy(dst, f64Raw(vals))
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// DecodeF32 fills dst from its wire bytes; len(b) must be at least
// 4*len(dst).
func DecodeF32(dst []float32, b []byte) {
	if hostLE {
		copy(f32Raw(dst), b[:4*len(dst)])
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

// DecodeF64 fills dst from its wire bytes; len(b) must be at least
// 8*len(dst).
func DecodeF64(dst []float64, b []byte) {
	if hostLE {
		copy(f64Raw(dst), b[:8*len(dst)])
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// F32 decodes b's wire float32s into dst's reused capacity and returns the
// resized slice.
func F32(dst []float32, b []byte) []float32 {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	DecodeF32(dst, b)
	return dst
}

// F64 decodes b's wire float64s into dst's reused capacity and returns the
// resized slice.
func F64(dst []float64, b []byte) []float64 {
	n := len(b) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	DecodeF64(dst, b)
	return dst
}

package lossless

import (
	"bytes"
	"testing"
)

func FuzzDecompressLZ(f *testing.F) {
	f.Add(CompressLZ([]byte("hello hello hello")))
	f.Add([]byte{})
	f.Add([]byte("LZG1\x00\x00\x00\x00\x00\x00\x00\x10"))
	f.Fuzz(func(t *testing.T, comp []byte) {
		_, _ = DecompressLZ(comp)
	})
}

// FuzzLZRoundTrip checks the stronger property: compression of arbitrary
// input always round-trips exactly.
func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte("abc"))
	f.Add(bytes.Repeat([]byte{7}, 1000))
	f.Fuzz(func(t *testing.T, src []byte) {
		dec, err := DecompressLZ(CompressLZ(src))
		if err != nil || !bytes.Equal(dec, src) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

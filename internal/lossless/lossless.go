// Package lossless provides the lossless baselines for the SZx paper's
// Table 3: a from-scratch byte-oriented LZ codec in the spirit of LZ4/Zstd's
// fast match-copy stage (the "Zstd" row's stand-in — the real Zstd is not
// available under the stdlib-only constraint), plus a DEFLATE-backed codec
// for a second reference point. On float32 scientific data both land at the
// compression ratios the paper reports for lossless compressors (~1.1-1.5),
// which is the only property the evaluation uses them for.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// Errors returned by the codecs.
var (
	ErrCorrupt = errors.New("lossless: corrupt or truncated stream")
)

const (
	lzMagic   = "LZG1"
	hashBits  = 16
	hashSize  = 1 << hashBits
	minMatch  = 4
	maxOffset = 1 << 16
)

// hash4 hashes 4 bytes for the match table.
func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

// CompressLZ compresses src with a greedy hash-chain LZ77: token bytes carry
// literal-run and match lengths (LZ4-style), matches are within a 64 KiB
// window, and everything is byte-aligned for speed.
//
// Token layout per sequence: 1 byte [lit<<4 | mlen], extended lengths as
// 255-run bytes, literals, then a 2-byte little-endian match offset (absent
// in the final literal-only sequence).
func CompressLZ(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+32)
	out = append(out, lzMagic...)
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(src)))
	out = append(out, n8[:]...)
	if len(src) == 0 {
		return out
	}

	var table [hashSize]int32
	for i := range table {
		table[i] = -1
	}

	emitLen := func(l int) {
		for l >= 255 {
			out = append(out, 255)
			l -= 255
		}
		out = append(out, byte(l))
	}
	emitSeq := func(lits []byte, mlen, moff int) {
		litCode := len(lits)
		if litCode > 15 {
			litCode = 15
		}
		mCode := mlen - minMatch
		if mlen == 0 {
			mCode = 0
		} else if mCode > 15 {
			mCode = 15
		}
		out = append(out, byte(litCode<<4|mCode))
		if litCode == 15 {
			emitLen(len(lits) - 15)
		}
		out = append(out, lits...)
		if mlen > 0 {
			if mCode == 15 {
				emitLen(mlen - minMatch - 15)
			}
			var o2 [2]byte
			binary.LittleEndian.PutUint16(o2[:], uint16(moff-1))
			out = append(out, o2[:]...)
		}
	}

	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash4(v)
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand <= maxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == v {
			// Extend the match.
			mlen := minMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			emitSeq(src[litStart:i], mlen, i-cand)
			i += mlen
			litStart = i
			continue
		}
		i++
	}
	// Final literal-only sequence.
	emitSeq(src[litStart:], 0, 0)
	return out
}

// DecompressLZ reverses CompressLZ.
func DecompressLZ(comp []byte) ([]byte, error) {
	if len(comp) < 12 || string(comp[:4]) != lzMagic {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint64(comp[4:]))
	if n < 0 || n > 1<<34 {
		return nil, ErrCorrupt
	}
	src := comp[12:]
	out := make([]byte, 0, n)
	pos := 0
	readLen := func(base int) (int, bool) {
		l := base
		for {
			if pos >= len(src) {
				return 0, false
			}
			b := src[pos]
			pos++
			l += int(b)
			if b != 255 {
				return l, true
			}
		}
	}
	for len(out) < n {
		if pos >= len(src) {
			return nil, ErrCorrupt
		}
		tok := src[pos]
		pos++
		lit := int(tok >> 4)
		mCode := int(tok & 15)
		if lit == 15 {
			ext, ok := readLen(15)
			if !ok {
				return nil, ErrCorrupt
			}
			lit = ext
		}
		if pos+lit > len(src) || len(out)+lit > n {
			return nil, ErrCorrupt
		}
		out = append(out, src[pos:pos+lit]...)
		pos += lit
		if len(out) == n {
			break // final literal-only sequence
		}
		mlen := mCode + minMatch
		if mCode == 15 {
			ext, ok := readLen(minMatch + 15)
			if !ok {
				return nil, ErrCorrupt
			}
			mlen = ext
		}
		if pos+2 > len(src) {
			return nil, ErrCorrupt
		}
		moff := int(binary.LittleEndian.Uint16(src[pos:])) + 1
		pos += 2
		start := len(out) - moff
		if start < 0 || len(out)+mlen > n {
			return nil, ErrCorrupt
		}
		// Byte-by-byte copy: matches may overlap their own output.
		for k := 0; k < mlen; k++ {
			out = append(out, out[start+k])
		}
	}
	return out, nil
}

// CompressFlate compresses src with DEFLATE (stdlib), the second lossless
// reference. level follows compress/flate (use flate.BestSpeed for the
// throughput comparisons).
func CompressFlate(src []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(src)))
	buf.Write(n8[:])
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(src); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressFlate reverses CompressFlate.
func DecompressFlate(comp []byte) ([]byte, error) {
	if len(comp) < 8 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint64(comp))
	if n < 0 || n > 1<<34 {
		return nil, ErrCorrupt
	}
	fr := flate.NewReader(bytes.NewReader(comp[8:]))
	out := make([]byte, n)
	if _, err := io.ReadFull(fr, out); err != nil {
		return nil, ErrCorrupt
	}
	return out, nil
}

// Float32Bytes reinterprets a float32 slice as little-endian bytes for the
// lossless baselines.
func Float32Bytes(data []float32) []byte {
	out := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

// BytesFloat32 is the inverse of Float32Bytes.
func BytesFloat32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

package lossless

import (
	"bytes"
	"compress/flate"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLZRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		[]byte("hello hello hello hello"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("abcdefg"), 1000),
		[]byte("no repeats: qwertyuiopasdfghjklzxcvbnm1234567890"),
	}
	for i, c := range cases {
		comp := CompressLZ(c)
		dec, err := DecompressLZ(comp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, c) {
			t.Fatalf("case %d: round trip mismatch (%d vs %d bytes)", i, len(dec), len(c))
		}
	}
}

func TestLZCompressesRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("scientific data "), 4096)
	comp := CompressLZ(src)
	if len(comp) > len(src)/10 {
		t.Errorf("repetitive data: %d -> %d", len(src), len(comp))
	}
}

func TestLZRandomDataNearIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 100000)
	rng.Read(src)
	comp := CompressLZ(src)
	// Random bytes shouldn't blow up by more than ~7%.
	if len(comp) > len(src)+len(src)/14 {
		t.Errorf("random data expanded too much: %d -> %d", len(src), len(comp))
	}
	dec, err := DecompressLZ(comp)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("round trip failed on random data")
	}
}

// Property: arbitrary byte strings round-trip exactly.
func TestLZRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := DecompressLZ(CompressLZ(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLZOverlappingMatches(t *testing.T) {
	// RLE-style data exercises self-overlapping match copies.
	src := append(bytes.Repeat([]byte{7}, 300), []byte("tail")...)
	dec, err := DecompressLZ(CompressLZ(src))
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("overlap copy broken")
	}
}

func TestLZCorrupt(t *testing.T) {
	comp := CompressLZ([]byte("some reasonably long input with repeats repeats repeats"))
	if _, err := DecompressLZ(comp[:6]); err == nil {
		t.Error("short stream accepted")
	}
	if _, err := DecompressLZ([]byte("XXXX12345678")); err == nil {
		t.Error("bad magic accepted")
	}
	for i := 12; i < len(comp); i++ {
		c := append([]byte(nil), comp...)
		c[i] ^= 0xFF
		_, _ = DecompressLZ(c) // must not panic
	}
	// Truncations must error, not panic.
	for i := 12; i < len(comp); i += 3 {
		_, _ = DecompressLZ(comp[:i])
	}
}

func TestFlateRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte("float data stream "), 500)
	comp, err := CompressFlate(src, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressFlate(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("mismatch")
	}
	if len(comp) > len(src)/4 {
		t.Errorf("flate: %d -> %d", len(src), len(comp))
	}
}

func TestFlateCorrupt(t *testing.T) {
	if _, err := DecompressFlate([]byte{1, 2}); err == nil {
		t.Error("short accepted")
	}
	// Truncations must either error or still yield the exact payload (the
	// DEFLATE trailer can be cut without losing data bytes); never panic.
	comp, _ := CompressFlate([]byte("data"), flate.BestSpeed)
	for i := 8; i < len(comp); i++ {
		out, err := DecompressFlate(comp[:i])
		if err == nil && !bytes.Equal(out, []byte("data")) {
			t.Errorf("truncation at %d returned wrong data", i)
		}
	}
}

func TestFloat32BytesRoundTrip(t *testing.T) {
	data := []float32{0, 1.5, -2.25, float32(math.Pi), float32(math.Inf(1))}
	b := Float32Bytes(data)
	if len(b) != 4*len(data) {
		t.Fatalf("len %d", len(b))
	}
	back, err := BytesFloat32(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float32bits(back[i]) != math.Float32bits(data[i]) {
			t.Errorf("value %d differs", i)
		}
	}
	if _, err := BytesFloat32([]byte{1, 2, 3}); err == nil {
		t.Error("odd length accepted")
	}
}

// On scientific float data, lossless CR should land in the paper's
// 1.0-2 band — far below SZx's error-bounded ratios.
func TestLosslessRatioOnFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float32, 100000)
	v := 0.0
	for i := range data {
		v += 0.01 * rng.NormFloat64()
		data[i] = float32(math.Sin(float64(i)/100) + v)
	}
	raw := Float32Bytes(data)
	lz := CompressLZ(raw)
	fl, err := CompressFlate(raw, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	crLZ := float64(len(raw)) / float64(len(lz))
	crFl := float64(len(raw)) / float64(len(fl))
	if crLZ < 0.9 || crLZ > 2.5 {
		t.Errorf("LZ ratio %.2f outside lossless band", crLZ)
	}
	if crFl < 0.9 || crFl > 2.5 {
		t.Errorf("flate ratio %.2f outside lossless band", crFl)
	}
}

package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBit(1)
	w.WriteBits(0xABCD, 16)
	data := w.Bytes()

	r := NewReader(data)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("got %b want 101", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("got %x want ff", v)
	}
	if v, _ := r.ReadBits(5); v != 0 {
		t.Errorf("got %x want 0", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("got %d want 1", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Errorf("got %x want abcd", v)
	}
}

func TestWriterLen(t *testing.T) {
	w := NewWriter(4)
	if w.Len() != 0 {
		t.Fatalf("empty writer Len = %d", w.Len())
	}
	w.WriteBits(1, 1)
	w.WriteBits(0xFFFF, 13)
	if w.Len() != 14 {
		t.Fatalf("Len = %d want 14", w.Len())
	}
	if got := len(w.Bytes()); got != 2 {
		t.Fatalf("Bytes len = %d want 2", got)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xAA})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestWide64(t *testing.T) {
	w := NewWriter(16)
	const v = uint64(0xDEADBEEFCAFEBABE)
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(64)
	if err != nil || got != v {
		t.Fatalf("got %x err %v want %x", got, err, v)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%64) + 1
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := NewWriter(64)
		for i := 0; i < n; i++ {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("reset writer not empty")
	}
	w.WriteBits(0x12, 8)
	if !bytes.Equal(w.Bytes(), []byte{0x12}) {
		t.Fatalf("got % x", w.Bytes())
	}
}

func TestTwoBitArray(t *testing.T) {
	a := NewTwoBitArray(10)
	want := []byte{0, 1, 2, 3, 3, 2, 1, 0, 2, 1}
	for i, c := range want {
		a.Set(i, c)
	}
	for i, c := range want {
		if got := a.Get(i); got != c {
			t.Errorf("Get(%d) = %d want %d", i, got, c)
		}
	}
	if len(a.Bytes()) != 3 {
		t.Errorf("packed len = %d want 3", len(a.Bytes()))
	}
	// Round-trip through raw bytes.
	b, err := TwoBitArrayFromBytes(a.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range want {
		if got := b.Get(i); got != c {
			t.Errorf("reloaded Get(%d) = %d want %d", i, got, c)
		}
	}
}

func TestTwoBitArrayOverwrite(t *testing.T) {
	a := NewTwoBitArray(4)
	a.Set(1, 3)
	a.Set(1, 1)
	if a.Get(1) != 1 {
		t.Fatalf("overwrite failed: %d", a.Get(1))
	}
	if a.Get(0) != 0 || a.Get(2) != 0 || a.Get(3) != 0 {
		t.Fatal("overwrite disturbed neighbours")
	}
}

func TestTwoBitArrayFromBytesShort(t *testing.T) {
	if _, err := TwoBitArrayFromBytes([]byte{0}, 10); err == nil {
		t.Fatal("want error for short buffer")
	}
}

func TestPackedLen(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {128, 32}}
	for _, c := range cases {
		if got := PackedLen(c.n); got != c.want {
			t.Errorf("PackedLen(%d) = %d want %d", c.n, got, c.want)
		}
	}
}

func TestLeadingZeroBytes(t *testing.T) {
	cases32 := []struct {
		x    uint32
		want int
	}{
		{0xFFFFFFFF, 0}, {0x00FFFFFF, 1}, {0x0000FFFF, 2},
		{0x000000FF, 3}, {0x00000000, 3}, {0x00000001, 3}, {0x01000000, 0},
	}
	for _, c := range cases32 {
		if got := LeadingZeroBytes32(c.x); got != c.want {
			t.Errorf("LeadingZeroBytes32(%#x) = %d want %d", c.x, got, c.want)
		}
	}
	cases64 := []struct {
		x    uint64
		want int
	}{
		{^uint64(0), 0}, {0x00FF000000000000, 1}, {0x0000FF0000000000, 2},
		{0x000000FF00000000, 3}, {0x1, 3}, {0, 3},
	}
	for _, c := range cases64 {
		if got := LeadingZeroBytes64(c.x); got != c.want {
			t.Errorf("LeadingZeroBytes64(%#x) = %d want %d", c.x, got, c.want)
		}
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1011_0010_1110, 12)
	r := NewReader(w.Bytes())
	v, got := r.PeekBits(4)
	if v != 0b1011 || got != 4 {
		t.Fatalf("peek %04b (%d bits)", v, got)
	}
	// Peek does not consume.
	v, _ = r.PeekBits(4)
	if v != 0b1011 {
		t.Fatalf("second peek %04b", v)
	}
	if err := r.SkipBits(4); err != nil {
		t.Fatal(err)
	}
	v, _ = r.PeekBits(8)
	if v != 0b0010_1110 {
		t.Fatalf("after skip: %08b", v)
	}
	// Peeking past EOF zero-pads and reports the real count.
	if err := r.SkipBits(8); err != nil {
		t.Fatal(err)
	}
	// 4 padding bits remain in the final byte (writer pads to byte).
	v, got = r.PeekBits(8)
	if got != 4 || v != 0 {
		t.Fatalf("tail peek %08b (%d bits)", v, got)
	}
	if err := r.SkipBits(8); err != ErrUnexpectedEOF {
		t.Fatalf("skip past EOF: %v", err)
	}
}

// Package bitio implements the bit-granular stream primitives shared by the
// compressors in this repository: an MSB-first bit writer/reader used by the
// Huffman and ZFP codecs, and a packed 2-bit array used by SZx's
// identical-leading-byte codes.
package bitio

import (
	"errors"
	"math/bits"
	"unsafe"
)

// ErrUnexpectedEOF is returned when a reader runs out of input mid-symbol.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of stream")

// Writer accumulates bits MSB-first into a byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // bits pending, left-aligned at bit position n-1..0
	n    uint   // number of pending bits in acc (< 8 after flushWords)
	nbit int    // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc = w.acc<<1 | uint64(b&1)
	w.n++
	w.nbit++
	if w.n == 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.n = 0
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 57] so that the accumulator cannot overflow.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 57 {
		w.WriteBits(v>>32, n-32)
		w.WriteBits(v&0xFFFFFFFF, 32)
		return
	}
	w.acc = w.acc<<n | (v & (1<<n - 1))
	w.n += n
	w.nbit += int(n)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
}

// Len reports the total number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// underlying buffer. The Writer remains usable; further writes continue from
// the unpadded bit position only if Len() was a byte multiple.
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		pad := 8 - w.n
		out := append(w.buf[:len(w.buf):len(w.buf)], byte(w.acc<<pad))
		return out
	}
	return w.buf
}

// Reset truncates the writer to empty while retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
	w.nbit = 0
}

// WriteBitsLSB appends the low n bits of v in least-significant-first order
// (the ZFP stream convention): the first bit written is bit 0 of v.
func (w *Writer) WriteBitsLSB(v uint64, n uint) {
	if n == 0 {
		return
	}
	w.WriteBits(bits.Reverse64(v)>>(64-n), n)
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // next byte index
	acc uint64
	n   uint // bits available in acc
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// fill loads up to 7 more bytes into the accumulator.
func (r *Reader) fill() {
	for r.n <= 56 && r.pos < len(r.buf) {
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
}

// ReadBit reads one bit. It returns ErrUnexpectedEOF past the end of input.
func (r *Reader) ReadBit() (uint, error) {
	if r.n == 0 {
		r.fill()
		if r.n == 0 {
			return 0, ErrUnexpectedEOF
		}
	}
	r.n--
	return uint(r.acc>>r.n) & 1, nil
}

// ReadBits reads n bits (n ≤ 64), most significant first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrUnexpectedEOF
	}
	if n > 57 {
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		return hi<<32 | lo, nil
	}
	if r.n < n {
		r.fill()
		if r.n < n {
			return 0, ErrUnexpectedEOF
		}
	}
	r.n -= n
	return (r.acc >> r.n) & (1<<n - 1), nil
}

// ReadBitsLSB reads n bits written with WriteBitsLSB: the first bit read
// becomes bit 0 of the result.
func (r *Reader) ReadBitsLSB(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	v, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return bits.Reverse64(v << (64 - n)), nil
}

// PeekBits returns the next n bits (n ≤ 32) without consuming them,
// zero-padded past the end of the stream, along with how many real bits
// back the result (< n only at EOF).
func (r *Reader) PeekBits(n uint) (uint64, uint) {
	if r.n < n {
		r.fill()
	}
	avail := r.n
	if avail >= n {
		return (r.acc >> (r.n - n)) & (1<<n - 1), n
	}
	// EOF tail: left-align what remains and pad with zeros.
	v := r.acc & (1<<avail - 1)
	return v << (n - avail), avail
}

// SkipBits consumes n bits previously examined with PeekBits.
func (r *Reader) SkipBits(n uint) error {
	if r.n < n {
		r.fill()
		if r.n < n {
			return ErrUnexpectedEOF
		}
	}
	r.n -= n
	return nil
}

// Remaining reports how many bits are still available.
func (r *Reader) Remaining() int {
	return int(r.n) + 8*(len(r.buf)-r.pos)
}

// TwoBitArray is a packed array of 2-bit codes, used for SZx's
// identical-leading-byte counts (codes 0..3). Codes are stored four per
// byte, first code in the two most significant bits, matching the paper's
// xor_leadingzero_array layout.
type TwoBitArray struct {
	b []byte
	n int
}

// NewTwoBitArray allocates a packed array holding n codes.
func NewTwoBitArray(n int) *TwoBitArray {
	return &TwoBitArray{b: make([]byte, (n+3)/4), n: n}
}

// TwoBitArrayFromBytes wraps an existing packed buffer holding n codes.
// It returns an error if the buffer is too short.
func TwoBitArrayFromBytes(b []byte, n int) (*TwoBitArray, error) {
	if len(b) < (n+3)/4 {
		return nil, ErrUnexpectedEOF
	}
	return &TwoBitArray{b: b[:(n+3)/4], n: n}, nil
}

// Set stores code c (0..3) at index i.
func (a *TwoBitArray) Set(i int, c byte) {
	shift := uint(6 - 2*(i&3))
	idx := i >> 2
	a.b[idx] = a.b[idx]&^(3<<shift) | (c&3)<<shift
}

// Get returns the code at index i.
func (a *TwoBitArray) Get(i int) byte {
	shift := uint(6 - 2*(i&3))
	return (a.b[i>>2] >> shift) & 3
}

// Len returns the number of codes.
func (a *TwoBitArray) Len() int { return a.n }

// Bytes returns the packed backing buffer, (n+3)/4 bytes long.
func (a *TwoBitArray) Bytes() []byte { return a.b }

// PackedLen returns the number of bytes needed to store n 2-bit codes.
func PackedLen(n int) int { return (n + 3) / 4 }

// LeadingZeroBytes32 counts how many of the most significant bytes of x are
// zero, capped at 3 (SZx's 2-bit code ceiling for float32 words).
func LeadingZeroBytes32(x uint32) int {
	lz := bits.LeadingZeros32(x) >> 3
	if lz > 3 {
		return 3
	}
	return lz
}

// LeadingZeroBytes64 counts how many of the most significant bytes of x are
// zero, capped at 3 so the count still fits SZx's 2-bit code.
func LeadingZeroBytes64(x uint64) int {
	lz := bits.LeadingZeros64(x) >> 3
	if lz > 3 {
		return 3
	}
	return lz
}

// LeadingZeroBytes is the width-generic LeadingZeroBytes32/LeadingZeroBytes64;
// the width branch folds at instantiation time.
func LeadingZeroBytes[B interface{ ~uint32 | ~uint64 }](x B) int {
	if unsafe.Sizeof(x) == 4 {
		return LeadingZeroBytes32(uint32(x))
	}
	return LeadingZeroBytes64(uint64(x))
}

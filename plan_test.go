package szx

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/datagen"
)

// corpusFields returns the deterministic test corpus: every field of every
// datagen application at a small scale, so fixed-ratio probes run exact
// (whole-input) estimates and the search is fully reproducible.
func corpusFields() []datagen.Field {
	var out []datagen.Field
	for _, app := range datagen.AllApps(16, 42) {
		out = append(out, app.Fields...)
	}
	return out
}

func TestTargetRatioConvergence(t *testing.T) {
	fields := corpusFields()
	if len(fields) == 0 {
		t.Fatal("empty corpus")
	}
	type result struct {
		name      string
		target    float64
		probes    int
		converged bool
		achieved  float64
	}
	var unconverged []result
	total := 0
	for _, target := range []float64{4, 8} {
		for _, f := range fields {
			total++
			p, err := ResolvePlan(f.Data, Options{TargetRatio: target})
			if err != nil {
				t.Fatalf("%s target %g: %v", f.Name, target, err)
			}
			if p.Probes > 8 {
				t.Errorf("%s target %g: %d probes > 8", f.Name, target, p.Probes)
			}
			if !(p.Bound > 0) {
				t.Errorf("%s target %g: non-positive bound %g", f.Name, target, p.Bound)
			}
			comp, st, err := CompressStats(f.Data, Options{ErrorBound: p.Bound})
			if err != nil {
				t.Fatalf("%s: compress at resolved bound: %v", f.Name, err)
			}
			achieved := st.Ratio()
			t.Logf("%-28s n=%-7d target=%-3g probes=%d conv=%-5v bound=%.3g est=%.3f achieved=%.3f",
				f.Name, len(f.Data), target, p.Probes, p.Converged, p.Bound, p.EstimatedRatio, achieved)
			if p.Converged {
				if math.Abs(achieved/target-1) > 0.06 {
					t.Errorf("%s target %g: converged but achieved %.3f (off by %.1f%%)",
						f.Name, target, achieved, 100*math.Abs(achieved/target-1))
				}
			} else {
				unconverged = append(unconverged, result{f.Name, target, p.Probes, false, achieved})
			}
			_ = comp
		}
	}
	for _, r := range unconverged {
		t.Logf("UNCONVERGED %-28s target=%g probes=%d achieved=%.3f", r.name, r.target, r.probes, r.achieved)
	}
	t.Logf("unconverged: %d of %d", len(unconverged), total)
	// Ratio as a function of the bound is a staircase (per-block reqLen moves
	// in whole bits), so some (field, target) pairs have no bound within
	// tolerance: the target falls in the dead zone between two plateaus, or
	// below the field's saturation floor. Brute-force scans over 400
	// log-spaced bounds confirm every unconverged case here is such a dead
	// zone (e.g. density at this scale jumps from ratio 6.49 straight to
	// 41.4), and the search lands on the nearest plateau. The search must
	// still converge on the majority of the corpus, and the unconverged
	// remainder must stay within 25% below the target (wider misses only
	// happen as overshoot, when the field's saturation floor — a sparse
	// field that is mostly constant blocks at any bound — sits above the
	// requested ratio).
	if limit := total * 45 / 100; len(unconverged) > limit {
		t.Errorf("unconverged on %d of %d corpus cases (limit %d)", len(unconverged), total, limit)
	}
	for _, r := range unconverged {
		off := r.achieved/r.target - 1
		if off < -0.25 {
			t.Errorf("UNCONVERGED %s target=%g achieved=%.3f: undershoots by %.1f%%",
				r.name, r.target, r.achieved, -100*off)
		}
	}
}

func TestTargetRatioRespectsBound(t *testing.T) {
	for _, f := range corpusFields() {
		opt := Options{TargetRatio: 6}
		comp, st, err := CompressStats(f.Data, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if st.EffectiveBound <= 0 {
			t.Fatalf("%s: stats carry no effective bound", f.Name)
		}
		h, err := Info(comp)
		if err != nil {
			t.Fatal(err)
		}
		if h.ErrBound != st.EffectiveBound {
			t.Fatalf("%s: header bound %g != stats bound %g", f.Name, h.ErrBound, st.EffectiveBound)
		}
		dec, err := Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if d := math.Abs(float64(dec[i]) - float64(f.Data[i])); d > st.EffectiveBound {
				t.Fatalf("%s[%d]: |err| %g > bound %g", f.Name, i, d, st.EffectiveBound)
			}
		}
	}
}

func TestTargetRatioDegenerateInputs(t *testing.T) {
	flat := make([]float32, 4096) // all zero
	p, err := ResolvePlan(flat, Options{TargetRatio: 8})
	if err != nil {
		t.Fatalf("flat data: %v", err)
	}
	if !(p.Bound > 0) {
		t.Fatalf("flat data: bound %g", p.Bound)
	}
	comp, err := Compress(flat, Options{TargetRatio: 8})
	if err != nil {
		t.Fatalf("flat compress: %v", err)
	}
	if _, err := Decompress(comp); err != nil {
		t.Fatalf("flat roundtrip: %v", err)
	}

	if _, err := ResolvePlan([]float32{}, Options{TargetRatio: 8}); !errors.Is(err, ErrDegenerateRange) {
		t.Fatalf("empty data: got %v, want ErrDegenerateRange", err)
	}

	// Constant nonzero data picks a bound at the value's scale.
	c := make([]float32, 1024)
	for i := range c {
		c[i] = 273.15
	}
	p, err = ResolvePlan(c, Options{TargetRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(p.Bound > 0) || p.Bound > 273.15 {
		t.Fatalf("constant data bound %g out of scale", p.Bound)
	}
}

// TestOptionsValidation exercises the ErrBadOptions rejections at every
// entry point that accepts Options.
func TestOptionsValidation(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	bad := []struct {
		name string
		opt  Options
	}{
		{"negative bound", Options{ErrorBound: -1}},
		{"NaN bound", Options{ErrorBound: math.NaN()}},
		{"Inf bound", Options{ErrorBound: math.Inf(1)}},
		{"ratio below one", Options{TargetRatio: 0.5}},
		{"NaN ratio", Options{TargetRatio: math.NaN()}},
		{"Inf ratio", Options{TargetRatio: math.Inf(1)}},
		{"bound and ratio", Options{ErrorBound: 1e-3, TargetRatio: 8}},
		{"ratio with relative mode", Options{TargetRatio: 8, Mode: BoundRelative, ErrorBound: 0}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compress(data, tc.opt); !errors.Is(err, ErrBadOptions) {
				t.Errorf("Compress: got %v, want ErrBadOptions", err)
			}
			if _, err := CompressFloat64([]float64{1, 2}, tc.opt); !errors.Is(err, ErrBadOptions) {
				t.Errorf("CompressFloat64: got %v, want ErrBadOptions", err)
			}
			if _, err := NewCodec[float32](tc.opt).Compress(data); !errors.Is(err, ErrBadOptions) {
				t.Errorf("Codec.Compress: got %v, want ErrBadOptions", err)
			}
			if _, err := CompressParallelInto(nil, data, tc.opt, 2); !errors.Is(err, ErrBadOptions) {
				t.Errorf("CompressParallelInto: got %v, want ErrBadOptions", err)
			}
			if _, err := ResolvePlan(data, tc.opt); !errors.Is(err, ErrBadOptions) {
				t.Errorf("ResolvePlan: got %v, want ErrBadOptions", err)
			}

			var buf bytes.Buffer
			sw := NewWriter(&buf, tc.opt, 2)
			if err := sw.Write(data); !errors.Is(err, ErrBadOptions) {
				t.Errorf("Writer.Write: got %v, want ErrBadOptions", err)
			}

			buf.Reset()
			pw := NewPipeWriter(&buf, tc.opt, 2, 2)
			err := pw.Write(data)
			if cerr := pw.Close(); err == nil {
				err = cerr
			}
			if !errors.Is(err, ErrBadOptions) {
				t.Errorf("PipeWriter: got %v, want ErrBadOptions", err)
			}

			aw := NewArchiveWriter(tc.opt)
			if err := aw.AddField("f", []int{4}, data); !errors.Is(err, ErrBadOptions) {
				t.Errorf("ArchiveWriter.AddField: got %v, want ErrBadOptions", err)
			}

			if _, err := NewTimeCompressor(tc.opt); !errors.Is(err, ErrBadOptions) {
				// NewTimeCompressor rejects relative mode with its own error
				// before validation sees it only when the options are
				// otherwise fine; all the table's rows are invalid, so
				// ErrBadOptions must win.
				t.Errorf("NewTimeCompressor: got %v, want ErrBadOptions", err)
			}
		})
	}

	// The wrapped cause stays reachable: a bad bound matches ErrErrBound too.
	if _, err := Compress(data, Options{ErrorBound: -1}); !errors.Is(err, ErrErrBound) {
		t.Errorf("negative bound should also match ErrErrBound, got %v", err)
	}
	// Historical behavior: a zero bound (nothing set at all) is the core's
	// bare ErrErrBound, not a validation error.
	if _, err := Compress(data, Options{}); !errors.Is(err, ErrErrBound) || errors.Is(err, ErrBadOptions) {
		t.Errorf("zero bound: got %v, want bare ErrErrBound", err)
	}
}

func TestResolvePlanRelative(t *testing.T) {
	data := []float32{0, 1, 2, 3, 4}
	p, err := ResolvePlan(data, Options{ErrorBound: 0.01, Mode: BoundRelative})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Bound-0.04) > 1e-12 {
		t.Fatalf("relative bound: got %g, want 0.04", p.Bound)
	}
	if _, err := ResolvePlan([]float32{5, 5, 5}, Options{ErrorBound: 0.01, Mode: BoundRelative}); err != ErrDegenerateRange {
		t.Fatalf("degenerate relative: got %v, want bare ErrDegenerateRange", err)
	}
}

// TestTargetRatioStreamIdentity pins that the serial Writer and the
// pipelined PipeWriter produce byte-identical fixed-ratio streams, chunk
// re-estimation included.
func TestTargetRatioStreamIdentity(t *testing.T) {
	f := corpusFields()[0]
	vals := f.Data
	for len(vals) < 3000 {
		vals = append(vals, vals...)
	}
	opt := Options{TargetRatio: 5}
	const chunk = 1000

	var serial bytes.Buffer
	sw := NewWriter(&serial, opt, chunk)
	if err := sw.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4} {
		var piped bytes.Buffer
		pw := NewPipeWriter(&piped, opt, chunk, par)
		if err := pw.Write(vals); err != nil {
			t.Fatal(err)
		}
		if err := pw.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
			t.Fatalf("parallelism %d: pipelined fixed-ratio stream differs from serial", par)
		}
	}

	// And the stream must round-trip with the first chunk's bound honored.
	r := NewReader(bytes.NewReader(serial.Bytes()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("roundtrip length %d != %d", len(got), len(vals))
	}
}

func TestTargetRatioArchivePerField(t *testing.T) {
	apps := datagen.AllApps(16, 7)
	aw := NewArchiveWriter(Options{TargetRatio: 6})
	var names []string
	for _, f := range apps[0].Fields {
		if err := aw.AddField(f.Name, f.Dims, f.Data); err != nil {
			t.Fatal(err)
		}
		names = append(names, f.Name)
	}
	a, err := OpenArchive(aw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]float64{}
	for _, fi := range a.Fields() {
		if fi.ErrBound <= 0 {
			t.Fatalf("field %s: no per-field resolved bound", fi.Name)
		}
		bounds[fi.Name] = fi.ErrBound
	}
	if len(bounds) != len(names) {
		t.Fatalf("got %d fields, want %d", len(bounds), len(names))
	}
	// Different fields have different ranges; at least two resolved bounds
	// should differ (a shared global bound would defeat per-field budgets).
	distinct := map[float64]bool{}
	for _, b := range bounds {
		distinct[b] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d fields resolved the same bound %v", len(bounds), bounds)
	}
}

func TestTargetRatioTimeSeries(t *testing.T) {
	f := corpusFields()[0]
	frame := f.Data[:4096]
	tc, err := NewTimeCompressor(Options{TargetRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tc.EffectiveBound() != 0 {
		t.Fatalf("bound resolved before first frame: %g", tc.EffectiveBound())
	}
	td := NewTimeDecompressor()
	prev := frame
	for i := 0; i < 3; i++ {
		comp, err := tc.CompressFrame(prev)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := td.DecompressFrame(comp)
		if err != nil {
			t.Fatal(err)
		}
		bound := tc.EffectiveBound()
		if !(bound > 0) {
			t.Fatalf("frame %d: no effective bound", i)
		}
		for j := range dec {
			if d := math.Abs(float64(dec[j]) - float64(prev[j])); d > bound {
				t.Fatalf("frame %d[%d]: |err| %g > bound %g", i, j, d, bound)
			}
		}
		next := make([]float32, len(prev))
		for j := range next {
			next[j] = prev[j] + float32(i+1)*1e-4
		}
		prev = next
	}
}

// TestTargetRatioZeroAlloc pins the warm fixed-ratio search at zero
// allocations per operation on a reused Codec handle.
func TestTargetRatioZeroAlloc(t *testing.T) {
	f := corpusFields()[0]
	data := f.Data[:8192]
	c := NewCodec[float32](Options{TargetRatio: 6})
	if _, err := c.Compress(data); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.Compress(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm fixed-ratio Codec.Compress: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTargetRatio(b *testing.B) {
	f := corpusFields()[0]
	data := f.Data[:16384]
	c := NewCodec[float32](Options{TargetRatio: 6})
	if _, err := c.Compress(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

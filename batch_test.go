package szx

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
)

// TestCompressBatchByteIdentity pins the batch contract: each array's stream
// is byte-identical to a one-shot Compress with the same Options, whatever
// worker count the batch ran with.
func TestCompressBatchByteIdentity(t *testing.T) {
	// Force the work-stealing path even though the arrays are tiny.
	saved := core.ParallelMinBytes
	core.ParallelMinBytes = 0
	defer func() { core.ParallelMinBytes = saved }()

	arrays := [][]float32{
		testField(4096, 1),
		testField(31, 2), // sub-block tail
		testField(1024, 3),
		{},
		testField(9000, 4),
	}
	for _, opt := range []Options{
		{ErrorBound: 1e-3},
		{ErrorBound: 1e-2, Mode: BoundRelative},
		{TargetRatio: 4},
	} {
		for _, workers := range []int{WorkersSerial, 3, WorkersAuto} {
			bo := opt
			bo.Workers = workers
			outs, errs := CompressBatch[float32](nil, nil, arrays, bo)
			if len(outs) != len(arrays) || len(errs) != len(arrays) {
				t.Fatalf("batch returned %d/%d results for %d arrays", len(outs), len(errs), len(arrays))
			}
			for i, a := range arrays {
				want, werr := Compress(a, opt)
				if werr != nil {
					if errs[i] == nil || werr.Error() != errs[i].Error() {
						t.Fatalf("opt %+v array %d: one-shot err %v, batch err %v", opt, i, werr, errs[i])
					}
					continue
				}
				if errs[i] != nil {
					t.Fatalf("opt %+v array %d: batch err %v, one-shot succeeded", opt, i, errs[i])
				}
				if !bytes.Equal(outs[i], want) {
					t.Fatalf("opt %+v workers %d array %d: batch stream differs from one-shot (%d vs %d bytes)",
						opt, workers, i, len(outs[i]), len(want))
				}
			}
		}
	}
}

// TestBatchRoundTrip exercises compress→decompress through the batch entry
// points, reusing the result slices across calls (the pooled-service
// pattern).
func TestBatchRoundTrip(t *testing.T) {
	arrays := [][]float32{testField(2048, 7), testField(555, 8), testField(128, 9)}
	opt := Options{ErrorBound: 1e-3, Workers: WorkersAuto}
	var outs [][]byte
	var vals [][]float32
	var errs []error
	for round := 0; round < 3; round++ {
		outs, errs = CompressBatch(outs, errs, arrays, opt)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("round %d compress array %d: %v", round, i, e)
			}
		}
		vals, errs = DecompressBatch(vals, errs, outs, WorkersAuto)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("round %d decompress array %d: %v", round, i, e)
			}
			if len(vals[i]) != len(arrays[i]) {
				t.Fatalf("round %d array %d: got %d values, want %d", round, i, len(vals[i]), len(arrays[i]))
			}
			for k := range vals[i] {
				if d := float64(vals[i][k] - arrays[i][k]); d > 1e-3 || d < -1e-3 {
					t.Fatalf("round %d array %d value %d: error %v exceeds bound", round, i, k, d)
				}
			}
		}
	}
}

// TestBatchPerArrayErrors: one bad array fails alone; its neighbours still
// produce valid results, and error positions line up with their arrays.
func TestBatchPerArrayErrors(t *testing.T) {
	good := testField(512, 11)
	comp, err := Compress(good, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), comp...)
	corrupt[0] ^= 0xFF // break the magic

	vals, errs := DecompressBatch[float32](nil, nil, [][]byte{comp, corrupt, comp}, 2)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good arrays failed: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("corrupt array did not fail")
	}
	if !errors.Is(errs[1], ErrBadMagic) && !errors.Is(errs[1], ErrCorrupt) {
		t.Fatalf("corrupt array error %v does not match a decode sentinel", errs[1])
	}
	if len(vals[0]) != len(good) || len(vals[2]) != len(good) {
		t.Fatalf("neighbour arrays truncated: %d, %d values", len(vals[0]), len(vals[2]))
	}

	// Compression side: a relative bound on constant data is per-array
	// degenerate; the other arrays are untouched.
	outs, cerrs := CompressBatch[float32](nil, nil,
		[][]float32{good, make([]float32, 256), good},
		Options{ErrorBound: 1e-2, Mode: BoundRelative})
	if cerrs[0] != nil || cerrs[2] != nil {
		t.Fatalf("good arrays failed: %v %v", cerrs[0], cerrs[2])
	}
	if !errors.Is(cerrs[1], ErrDegenerateRange) {
		t.Fatalf("degenerate array error = %v, want ErrDegenerateRange", cerrs[1])
	}
	if len(outs[0]) == 0 || len(outs[2]) == 0 {
		t.Fatal("neighbour arrays produced no output")
	}
}

// TestBatchWrongType: an f64 stream inside an f32 batch fails that array
// with ErrWrongType.
func TestBatchWrongType(t *testing.T) {
	c32, err := Compress(testField(256, 13), Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	c64, err := CompressFloat64([]float64{1, 2, 3, 4}, Options{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	_, errs := DecompressBatch[float32](nil, nil, [][]byte{c32, c64}, 1)
	if errs[0] != nil {
		t.Fatalf("f32 stream failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrWrongType) {
		t.Fatalf("f64 stream error = %v, want ErrWrongType", errs[1])
	}
}

// TestBatchEmpty: a zero-length batch returns empty slices, no panic.
func TestBatchEmpty(t *testing.T) {
	outs, errs := CompressBatch[float32](nil, nil, nil, Options{ErrorBound: 1e-3})
	if len(outs) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(outs), len(errs))
	}
	vals, errs := DecompressBatch[float32](nil, nil, nil, 4)
	if len(vals) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d/%d results", len(vals), len(errs))
	}
}

// TestBatchInvalidOptions: option-level failures mark every array (there is
// no partial validity to salvage).
func TestBatchInvalidOptions(t *testing.T) {
	outs, errs := CompressBatch[float32](nil, nil, [][]float32{{1, 2}, {3, 4}},
		Options{ErrorBound: -1})
	for i, e := range errs {
		if !errors.Is(e, ErrBadOptions) {
			t.Fatalf("array %d error = %v, want ErrBadOptions", i, e)
		}
		if len(outs[i]) != 0 {
			t.Fatalf("array %d produced output despite invalid options", i)
		}
	}
}

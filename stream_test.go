package szx

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/telemetry"
)

func TestStreamRoundTrip(t *testing.T) {
	data := testField(300000, 11)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 1<<16)
	// Write in uneven pieces to exercise buffering.
	for lo := 0; lo < len(data); {
		hi := lo + 7000
		if hi > len(data) {
			hi = len(data)
		}
		if err := w.Write(data[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= 4*len(data) {
		t.Errorf("stream did not compress: %d bytes", buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("got %d values want %d", len(out), len(data))
	}
	for i := range data {
		if math.Abs(float64(data[i])-float64(out[i])) > 1e-3 {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
}

func TestStreamReadChunked(t *testing.T) {
	data := testField(100000, 12)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-4}, 1<<14)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	var out []float32
	p := make([]float32, 777)
	for {
		n, err := r.Read(p)
		out = append(out, p[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != len(data) {
		t.Fatalf("got %d values want %d", len(out), len(data))
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d values", len(out))
	}
	// Read on the drained stream keeps returning EOF.
	if _, err := r.Read(make([]float32, 4)); err != io.EOF {
		t.Fatalf("got %v", err)
	}
}

// countingWriter records each underlying Write so tests can pin the
// syscall-per-chunk contract of the staged writer.
type countingWriter struct {
	writes int
	bytes  int
	buf    bytes.Buffer
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.writes++
	cw.bytes += len(p)
	return cw.buf.Write(p)
}

// TestStreamWriteCoalescing pins the Writer's I/O shape: every chunk is
// emitted as exactly one underlying Write (the first carrying the container
// magic), plus one final Write for the terminator — the unbuffered
// instrument path must not pay separate header and payload syscalls.
func TestStreamWriteCoalescing(t *testing.T) {
	data := testField(50000, 17)
	var cw countingWriter
	const chunk = 1 << 14
	w := NewWriter(&cw, Options{ErrorBound: 1e-3}, chunk)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	chunks := (len(data) + chunk - 1) / chunk
	if want := chunks + 1; cw.writes != want {
		t.Fatalf("got %d underlying writes for %d chunks, want %d (one per chunk + terminator)", cw.writes, chunks, want)
	}
	if cw.bytes != cw.buf.Len() {
		t.Fatalf("byte accounting mismatch: %d vs %d", cw.bytes, cw.buf.Len())
	}
	// The coalesced frames must decode identically to the original contract.
	out, err := NewReader(bytes.NewReader(cw.buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("round trip length %d, want %d", len(out), len(data))
	}
	for i := range out {
		if math.Abs(float64(out[i])-float64(data[i])) > 1e-3 {
			t.Fatalf("value %d out of bound", i)
		}
	}

	// Empty stream: magic + terminator coalesce into a single Write.
	var cw2 countingWriter
	w2 := NewWriter(&cw2, Options{ErrorBound: 1e-3}, 0)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if cw2.writes != 1 {
		t.Fatalf("empty stream used %d writes, want 1", cw2.writes)
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]float32{1}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestStreamTruncated(t *testing.T) {
	data := testField(50000, 13)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 1<<14)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cutting anywhere must yield an error (or clean EOF at a frame edge),
	// never a panic; data decoded before the cut must respect the bound.
	for cut := 0; cut < len(full); cut += len(full)/40 + 1 {
		r := NewReader(bytes.NewReader(full[:cut]))
		out, err := r.ReadAll()
		if err == nil && cut < len(full)-4 && len(out) == len(data) {
			t.Fatalf("cut=%d: full data recovered from truncated stream", cut)
		}
		for i := range out {
			if math.Abs(float64(data[i])-float64(out[i])) > 1e-3 {
				t.Fatalf("cut=%d: recovered value %d exceeds bound", cut, i)
			}
		}
	}
}

func TestStreamGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("this is not a stream")))
	if _, err := r.ReadAll(); err == nil {
		t.Fatal("garbage accepted")
	}
}

// streamFrameOffsets walks a serialized container and returns the byte
// offset of each frame's u32 length prefix, independently of the Reader
// under test.
func streamFrameOffsets(t *testing.T, full []byte) []int64 {
	t.Helper()
	var offs []int64
	off := int64(5) // container magic + version
	for {
		if off+4 > int64(len(full)) {
			t.Fatalf("container ends mid-frame-header at offset %d", off)
		}
		frameLen := int64(uint32(full[off]) | uint32(full[off+1])<<8 |
			uint32(full[off+2])<<16 | uint32(full[off+3])<<24)
		if frameLen == 0 {
			return offs
		}
		offs = append(offs, off)
		off += 4 + frameLen
	}
}

// TestStreamFrameError pins the Reader's corruption reporting: the error
// names the exact frame index and container offset, keeps both ErrStream
// and the underlying cause reachable through errors.Is, and bumps the
// (ungated) telemetry frame-error counter.
func TestStreamFrameError(t *testing.T) {
	data := testField(3*16384, 21)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3}, 1<<14)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	offs := streamFrameOffsets(t, full)
	if len(offs) != 3 {
		t.Fatalf("got %d frames; want 3", len(offs))
	}

	readAll := func(blob []byte) error {
		_, err := NewReader(bytes.NewReader(blob)).ReadAll()
		return err
	}
	checkFrameErr := func(t *testing.T, err error, frame int, off int64, cause error) {
		t.Helper()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("error %v (%T) is not a *FrameError", err, err)
		}
		if fe.Frame != frame || fe.Offset != off {
			t.Errorf("FrameError{Frame: %d, Offset: %d}; want frame %d at offset %d",
				fe.Frame, fe.Offset, frame, off)
		}
		if !errors.Is(err, ErrStream) {
			t.Errorf("%v does not unwrap to ErrStream", err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("%v does not unwrap to cause %v", err, cause)
		}
	}

	t.Run("truncated payload", func(t *testing.T) {
		before := telemetry.StreamFrameErrors.Load()
		// Cut 10 bytes into the third frame's payload.
		err := readAll(full[:offs[2]+4+10])
		checkFrameErr(t, err, 2, offs[2], io.ErrUnexpectedEOF)
		if got := telemetry.StreamFrameErrors.Load() - before; got != 1 {
			t.Errorf("StreamFrameErrors delta = %d; want 1 (error counters are ungated)", got)
		}
	})

	t.Run("truncated length prefix", func(t *testing.T) {
		err := readAll(full[:offs[1]+2])
		checkFrameErr(t, err, 1, offs[1], io.ErrUnexpectedEOF)
	})

	t.Run("corrupt frame body", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		copy(bad[offs[1]+4:], "junk") // clobber the inner SZx header magic
		err := readAll(bad)
		checkFrameErr(t, err, 1, offs[1], ErrBadMagic)
	})

	t.Run("frames before the bad one still decode", func(t *testing.T) {
		r := NewReader(bytes.NewReader(full[:offs[2]+4+10]))
		out, err := r.ReadAll()
		if err == nil {
			t.Fatal("truncated stream decoded without error")
		}
		if len(out) != 2*16384 {
			t.Fatalf("recovered %d values before the bad frame; want %d", len(out), 2*16384)
		}
		for i := range out {
			if math.Abs(float64(data[i])-float64(out[i])) > 1e-3 {
				t.Fatalf("recovered value %d exceeds bound", i)
			}
		}
	})
}

func TestStreamRelativeMode(t *testing.T) {
	data := testField(80000, 14)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{ErrorBound: 1e-3, Mode: BoundRelative}, 1<<15)
	if err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatal("length mismatch")
	}
}

func TestDecompressRange(t *testing.T) {
	data := testField(100000, 15)
	comp, err := Compress(data, Options{ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]int{
		{0, 100}, {0, len(data)}, {12345, 12346}, {99990, 100000},
		{128, 256}, {127, 129}, {50000, 50000},
	}
	for _, c := range cases {
		part, err := DecompressRange(comp, c[0], c[1])
		if err != nil {
			t.Fatalf("range %v: %v", c, err)
		}
		if len(part) != c[1]-c[0] {
			t.Fatalf("range %v: got %d values", c, len(part))
		}
		for i := range part {
			if part[i] != full[c[0]+i] {
				t.Fatalf("range %v: value %d differs from full decode", c, i)
			}
		}
	}
	// Out-of-range requests error.
	if _, err := DecompressRange(comp, -1, 10); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := DecompressRange(comp, 0, len(data)+1); err == nil {
		t.Error("hi beyond N accepted")
	}
	if _, err := DecompressRange(comp, 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestDecompressRangeFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := make([]float64, 50000)
	for i := range data {
		data[i] = math.Sin(float64(i)/300) + 0.01*rng.NormFloat64()
	}
	comp, err := CompressFloat64(data, Options{ErrorBound: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecompressFloat64(comp)
	if err != nil {
		t.Fatal(err)
	}
	part, err := DecompressFloat64Range(comp, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range part {
		if part[i] != full[1000+i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

// Property: random range requests always agree with the full decode.
func TestDecompressRangeProperty(t *testing.T) {
	data := testField(20000, 17)
	comp, err := Compress(data, Options{ErrorBound: 1e-3, BlockSize: 37})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		lo := int(a) % len(data)
		hi := lo + int(b)%(len(data)-lo) + 1
		if hi > len(data) {
			hi = len(data)
		}
		part, err := DecompressRange(comp, lo, hi)
		if err != nil {
			return false
		}
		for i := range part {
			if part[i] != full[lo+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

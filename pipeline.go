package szx

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/telemetry"
	"repro/telemetry/trace"
)

// Pipelined streaming engine: the concurrent counterpart of Writer and
// Reader. The serial stream path compresses a chunk, then writes it, then
// starts the next chunk — on any real file or socket the CPU idles during
// I/O and the I/O idles during compression. PipeWriter and PipeReader
// overlap the two ends to end: a bounded ring of K chunk slots circulates
// between the producer, a pool of compression (or decompression) workers,
// and a single in-order emitter, so up to K frames are in flight while the
// wire format stays byte-identical to the serial Writer's (same container
// magic, same per-chunk frames, same terminator — pinned by golden-hash
// and fuzz cross-check tests).
//
// Ordering invariant: slots enter the emit queue in submission order, and
// the emitter (or the reading consumer) waits on each slot's done signal
// before touching the next, so frames hit the wire — and values reach the
// caller — strictly in order no matter which worker finishes first.
//
// Backpressure invariant: the producer blocks when all K slots are in
// flight, so memory is bounded by K × chunk on both the value and the
// compressed side; slots are recycled through a free list, so the steady
// state allocates nothing.
//
// Error semantics: the first error (compression, decompression, I/O, or a
// malformed frame) wins; it is pinned and returned from every subsequent
// call. After an error the pipeline keeps draining internally so no
// goroutine leaks and no channel send deadlocks; Close joins every
// goroutine before returning.

// errStreamAborted is pinned as the terminal error by PipeWriter.Abort.
var errStreamAborted = errors.New("szx: stream aborted")

// pipeSlot is one ring entry carrying a chunk through the pipeline.
type pipeSlot struct {
	seq   int       // submission sequence (write side)
	idx   int       // frame index (read side)
	off   int64     // container offset of the frame's length prefix (read side)
	t0    time.Time // slot acquisition time, for pipe_frame trace spans
	vals  []float32 // chunk values (input on write, output on read)
	frame []byte    // staged frame bytes (output on write, input on read)
	err   error     // worker/prefetch failure for this slot
	done  chan struct{}
}

// pipeErr pins the first error observed anywhere in a pipeline.
type pipeErr struct {
	mu  sync.Mutex
	err error
}

func (p *pipeErr) set(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *pipeErr) get() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// pipelineDepth picks the ring size for a worker count: one slot per
// worker keeps the pool busy, and two extra keep the producer and emitter
// from starving the pool at hand-off points.
func pipelineDepth(workers int) int { return workers + 2 }

// PipeWriter is the pipelined counterpart of Writer: it compresses a
// stream of float32 values chunk by chunk with a pool of workers while a
// single emitter goroutine writes the frames strictly in order, producing
// bytes identical to the serial Writer's.
//
// A PipeWriter is not safe for concurrent use (like Writer); the
// concurrency is internal. Close must be called to flush the tail chunk,
// write the terminator, and join the worker goroutines.
type PipeWriter struct {
	w     io.Writer
	opt   Options
	chunk int
	depth int

	ctx     context.Context
	ctxDone <-chan struct{} // nil without a context; a nil channel never fires
	tr      *trace.Trace   // request trace from ctx; nil = untraced

	free chan *pipeSlot
	work chan *pipeSlot
	emit chan *pipeSlot

	wg       sync.WaitGroup // compression workers
	emitDone chan struct{}

	buf    []float32
	seq    int
	ratio  streamRatio // seeded on the producer goroutine before chunk 0 is handed off
	perr   pipeErr
	closed bool
}

// NewPipeWriter returns a pipelined streaming compressor writing to w.
// ChunkValues controls the chunk granularity (0 = DefaultChunkValues) and
// parallelism the number of concurrent chunk compressions (≤0 =
// GOMAXPROCS); parallelism+2 frames are kept in flight, bounding memory at
// roughly (parallelism+2) × chunk values plus their compressed frames.
// Each chunk is compressed with the serial per-chunk engine — the pipeline
// itself is the parallelism — so opt.Workers is ignored.
func NewPipeWriter(w io.Writer, opt Options, chunkValues, parallelism int) *PipeWriter {
	return NewPipeWriterContext(context.Background(), w, opt, chunkValues, parallelism)
}

// NewPipeWriterContext is NewPipeWriter bound to a context: once ctx is
// cancelled, in-flight and subsequent Write calls return ctx's error
// instead of blocking on the pipeline (a producer stalled waiting for a
// free ring slot wakes immediately), and Close skips the tail flush and
// terminator, reporting the cancellation. This is what lets a server
// thread an HTTP request context through the pipeline so an abandoned
// request cannot strand its handler. Close must still be called to join
// the goroutines; cancellation only guarantees the calls unblock promptly.
// The emitter can stay blocked in w.Write until the sink itself unblocks —
// hand the pipeline a sink that fails on cancellation (HTTP response
// writers do).
func NewPipeWriterContext(ctx context.Context, w io.Writer, opt Options, chunkValues, parallelism int) *PipeWriter {
	if chunkValues <= 0 {
		chunkValues = DefaultChunkValues
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	depth := pipelineDepth(parallelism)
	pw := &PipeWriter{
		w:        w,
		opt:      opt,
		chunk:    chunkValues,
		depth:    depth,
		ctx:      ctx,
		ctxDone:  ctx.Done(),
		tr:       trace.FromContext(ctx),
		free:     make(chan *pipeSlot, depth),
		work:     make(chan *pipeSlot, depth),
		emit:     make(chan *pipeSlot, depth),
		emitDone: make(chan struct{}),
	}
	pw.opt.Workers = WorkersSerial
	// Per-chunk encodes run on pool workers; letting each record codec-stage
	// spans would flood the trace with overlapping intervals. The pipeline's
	// trace story is the per-frame slot occupancy recorded by the emitter.
	pw.opt.Spans = nil
	for i := 0; i < depth; i++ {
		pw.free <- &pipeSlot{}
	}
	pw.wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go pw.worker()
	}
	go pw.emitter()
	if telemetry.Enabled() {
		telemetry.PipelineStarts.Inc()
		telemetry.PipelineDepths.Observe(int64(depth))
	}
	return pw
}

// buildStreamFrame stages one complete frame — container magic for the
// first one, the u32 length prefix, and the compressed payload — into dst,
// exactly as Writer.flushChunk lays it out.
func buildStreamFrame(dst []byte, chunk []float32, first bool, opt Options) ([]byte, error) {
	if first {
		dst = append(dst, streamMagic...)
		dst = append(dst, streamVersion)
	}
	hdrOff := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	out, err := CompressInto(dst, chunk, opt)
	if err != nil {
		return dst, err
	}
	binary.LittleEndian.PutUint32(out[hdrOff:], uint32(len(out)-hdrOff-4))
	return out, nil
}

func (pw *PipeWriter) worker() {
	defer pw.wg.Done()
	for s := range pw.work {
		opt := pw.opt
		if pw.opt.TargetRatio > 0 {
			// The seed was resolved on the producer goroutine before this
			// slot was handed off (happens-before via the work channel), so
			// reading it here is race-free. Chunk 0 uses the seed verbatim;
			// later chunks re-resolve from it — a pure function of (options,
			// seed, values), so frames match the serial Writer byte for byte
			// regardless of worker scheduling.
			if s.seq == 0 {
				opt = pw.opt.withBound(pw.ratio.seed)
			} else {
				b, err := ratioChunkBound(pw.opt, pw.ratio.seed, s.vals)
				if err != nil {
					s.err = err
					close(s.done)
					continue
				}
				opt = pw.opt.withBound(b)
			}
		}
		s.frame, s.err = buildStreamFrame(s.frame[:0], s.vals, s.seq == 0, opt)
		close(s.done)
	}
}

func (pw *PipeWriter) emitter() {
	defer close(pw.emitDone)
	obs := telemetry.Enabled()
	for s := range pw.emit {
		if obs {
			t := telemetry.Start()
			<-s.done
			t.Stop(&telemetry.PipelineConsumerStalls)
		} else {
			<-s.done
		}
		switch {
		case s.err != nil:
			pw.perr.set(s.err)
		case pw.perr.get() == nil:
			if _, err := pw.w.Write(s.frame); err != nil {
				pw.perr.set(err)
			} else if telemetry.Enabled() {
				telemetry.StreamFramesWritten.Inc()
			}
		}
		if pw.tr != nil {
			pw.tr.RecordSpan("pipe_frame", s.t0, time.Now())
		}
		s.vals = s.vals[:0]
		pw.free <- s
	}
}

// pinCtxErr pins the context's error (if the context is cancelled) as the
// pipeline's terminal error and returns the current terminal error.
func (pw *PipeWriter) pinCtxErr() error {
	if pw.ctxDone != nil {
		if err := pw.ctx.Err(); err != nil {
			pw.perr.set(err)
		}
	}
	return pw.perr.get()
}

// submit hands one chunk to the pipeline, blocking while all ring slots
// are in flight (the backpressure bound). A context cancellation wakes the
// blocked producer, pins the error, and drops the chunk.
func (pw *PipeWriter) submit(chunk []float32) {
	var s *pipeSlot
	if telemetry.Enabled() {
		t := telemetry.Start()
		select {
		case s = <-pw.free:
		case <-pw.ctxDone:
			pw.perr.set(pw.ctx.Err())
			return
		}
		t.Stop(&telemetry.PipelineProducerStalls)
		telemetry.PipelineFramesInFlight.Observe(int64(pw.depth - len(pw.free)))
	} else {
		select {
		case s = <-pw.free:
		case <-pw.ctxDone:
			pw.perr.set(pw.ctx.Err())
			return
		}
	}
	if pw.opt.TargetRatio > 0 && !pw.ratio.seeded {
		// Run the full bound search on the first chunk here, on the
		// producer goroutine, so every worker sees the seed through the
		// channel hand-off below.
		if _, err := pw.ratio.chunkBound(chunk, pw.opt); err != nil {
			pw.perr.set(err)
			pw.free <- s
			return
		}
	}
	if pw.tr != nil {
		s.t0 = time.Now()
	}
	s.seq = pw.seq
	pw.seq++
	s.vals = append(s.vals[:0], chunk...)
	s.err = nil
	s.done = make(chan struct{})
	pw.emit <- s
	pw.work <- s
}

// Write buffers values, submitting full chunks to the pipeline. It chunks
// exactly like Writer.Write, so the emitted frame boundaries are
// identical. Errors from in-flight chunks surface on a later Write or on
// Close (first error wins).
func (pw *PipeWriter) Write(values []float32) error {
	if err := pw.pinCtxErr(); err != nil {
		return err
	}
	if pw.closed {
		return errors.New("szx: write after Close")
	}
	for len(values) > 0 {
		if len(pw.buf) == 0 && len(values) >= pw.chunk {
			pw.submit(values[:pw.chunk])
			values = values[pw.chunk:]
		} else {
			need := pw.chunk - len(pw.buf)
			if need > len(values) {
				need = len(values)
			}
			pw.buf = append(pw.buf, values[:need]...)
			values = values[need:]
			if len(pw.buf) == pw.chunk {
				pw.submit(pw.buf)
				pw.buf = pw.buf[:0]
			}
		}
		if err := pw.perr.get(); err != nil {
			return err
		}
	}
	return nil
}

// shutdown stops the pipeline: no more submissions, workers and the
// emitter drain what is in flight and exit.
func (pw *PipeWriter) shutdown() {
	close(pw.work)
	pw.wg.Wait()
	close(pw.emit)
	<-pw.emitDone
}

// Close flushes the buffered tail chunk, drains the pipeline, writes the
// terminator, and joins every goroutine. It returns the first error the
// pipeline hit, if any; a second Close is a no-op returning that same
// error state.
func (pw *PipeWriter) Close() error {
	if pw.closed {
		return pw.perr.get()
	}
	pw.closed = true
	if len(pw.buf) > 0 && pw.pinCtxErr() == nil {
		pw.submit(pw.buf)
		pw.buf = pw.buf[:0]
	}
	pw.shutdown()
	if err := pw.pinCtxErr(); err != nil {
		return err
	}
	// Terminator, prefixed by the container magic when no chunk was ever
	// submitted (empty stream), exactly as Writer.Close emits it.
	tail := make([]byte, 0, len(streamMagic)+5)
	if pw.seq == 0 {
		tail = append(tail, streamMagic...)
		tail = append(tail, streamVersion)
	}
	tail = append(tail, 0, 0, 0, 0)
	if _, err := pw.w.Write(tail); err != nil {
		pw.perr.set(err)
		return err
	}
	return nil
}

// Abort stops the pipeline without flushing the tail chunk or writing the
// terminator, leaving a truncated (but prefix-readable) container. It
// joins every goroutine; subsequent Write and Close calls report the
// abort. Already-submitted frames may or may not reach the writer.
func (pw *PipeWriter) Abort() {
	if pw.closed {
		return
	}
	pw.closed = true
	pw.perr.set(errStreamAborted)
	pw.shutdown()
}

// PipeReader is the pipelined counterpart of Reader: a prefetcher
// goroutine reads length-prefixed frames ahead while a pool of workers
// decompresses them concurrently, and Read delivers values strictly in
// frame order. Memory is bounded by the ring: at most parallelism+2
// compressed frames (and their decoded chunks) are in flight.
//
// A PipeReader is not safe for concurrent use. Close releases the
// background goroutines; it must be called when abandoning a stream
// mid-read (after a clean EOF or a terminal error the goroutines have
// already exited, but Close remains safe and idempotent).
type PipeReader struct {
	r     io.Reader
	depth int

	ctx     context.Context
	ctxDone <-chan struct{} // nil without a context; a nil channel never fires
	tr      *trace.Trace   // request trace from ctx; nil = untraced

	free chan *pipeSlot
	work chan *pipeSlot
	emit chan *pipeSlot
	stop chan struct{}

	wg sync.WaitGroup // prefetcher + decode workers

	cur    *pipeSlot // slot currently being drained
	pos    int
	err    error
	closed bool
}

// NewPipeReader returns a pipelined streaming decompressor reading from r.
// parallelism is the number of concurrent frame decodes (≤0 = GOMAXPROCS).
func NewPipeReader(r io.Reader, parallelism int) *PipeReader {
	return NewPipeReaderContext(context.Background(), r, parallelism)
}

// NewPipeReaderContext is NewPipeReader bound to a context: once ctx is
// cancelled, Read and ReadAll return ctx's error, and the prefetcher and
// decode workers wind down on their own even if Close is never called — a
// blocked consumer wakes immediately, and the prefetcher exits at its next
// hand-off point. The one blocking point cancellation cannot interrupt is
// a read on the underlying source itself; hand the pipeline a source that
// unblocks on cancellation (HTTP request bodies do). Close remains safe
// and idempotent.
func NewPipeReaderContext(ctx context.Context, r io.Reader, parallelism int) *PipeReader {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	depth := pipelineDepth(parallelism)
	pr := &PipeReader{
		r:       r,
		depth:   depth,
		ctx:     ctx,
		ctxDone: ctx.Done(),
		tr:      trace.FromContext(ctx),
		free:    make(chan *pipeSlot, depth),
		work:    make(chan *pipeSlot, depth),
		emit:    make(chan *pipeSlot, depth),
		stop:    make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		pr.free <- &pipeSlot{}
	}
	pr.wg.Add(1 + parallelism)
	go pr.prefetch()
	for i := 0; i < parallelism; i++ {
		go pr.decodeWorker()
	}
	if telemetry.Enabled() {
		telemetry.PipelineStarts.Inc()
		telemetry.PipelineDepths.Observe(int64(depth))
	}
	return pr
}

// headerErr marks a container-header failure: the slot carries the final
// error verbatim (idx < 0 distinguishes it from frame errors).
func headerSlot(err error) *pipeSlot {
	s := &pipeSlot{idx: -1, err: err, done: make(chan struct{})}
	close(s.done)
	return s
}

// send delivers a slot to ch unless the reader is being closed or its
// context is cancelled.
func (pr *PipeReader) send(ch chan *pipeSlot, s *pipeSlot) bool {
	select {
	case ch <- s:
		return true
	case <-pr.stop:
		return false
	case <-pr.ctxDone:
		return false
	}
}

func (pr *PipeReader) prefetch() {
	defer pr.wg.Done()
	defer close(pr.work)
	defer close(pr.emit)

	var hdr [5]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		pr.send(pr.emit, headerSlot(fmt.Errorf("%w: container header: %w", ErrStream, err)))
		return
	}
	if string(hdr[:4]) != streamMagic || hdr[4] != streamVersion {
		pr.send(pr.emit, headerSlot(ErrStream))
		return
	}
	byteOff := int64(5)
	idx := 0
	obs := telemetry.Enabled()
	for {
		frameOff := byteOff
		var lenBuf [4]byte
		if _, err := io.ReadFull(pr.r, lenBuf[:]); err != nil {
			pr.send(pr.emit, frameErrSlot(idx, frameOff, fmt.Errorf("truncated frame header: %w", err)))
			return
		}
		byteOff += 4
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if frameLen == 0 {
			return // clean terminator
		}
		if frameLen > 1<<31 {
			pr.send(pr.emit, frameErrSlot(idx, frameOff, fmt.Errorf("frame length %d out of range", frameLen)))
			return
		}
		var s *pipeSlot
		if obs {
			t := telemetry.Start()
			select {
			case s = <-pr.free:
			case <-pr.stop:
				return
			case <-pr.ctxDone:
				return
			}
			t.Stop(&telemetry.PipelineProducerStalls)
			telemetry.PipelineFramesInFlight.Observe(int64(pr.depth - len(pr.free)))
		} else {
			select {
			case s = <-pr.free:
			case <-pr.stop:
				return
			case <-pr.ctxDone:
				return
			}
		}
		if pr.tr != nil {
			s.t0 = time.Now()
		}
		frame, got, err := readFrameBody(pr.r, s.frame, int(frameLen))
		s.frame = frame
		byteOff += int64(got)
		s.idx = idx
		s.off = frameOff
		s.err = nil
		s.done = make(chan struct{})
		if err != nil {
			s.err = fmt.Errorf("truncated frame (%d of %d payload bytes): %w", got, frameLen, err)
			close(s.done)
			pr.send(pr.emit, s)
			return
		}
		if !pr.send(pr.emit, s) {
			return
		}
		if !pr.send(pr.work, s) {
			// Closing: no worker will ever decode this slot; close its done
			// signal so the Close-side drain does not wait forever.
			close(s.done)
			return
		}
		idx++
	}
}

// frameErrSlot wraps a prefetch-side frame failure; the consumer turns it
// into a FrameError so reporting matches the serial Reader exactly.
func frameErrSlot(idx int, off int64, cause error) *pipeSlot {
	s := &pipeSlot{idx: idx, off: off, err: cause, done: make(chan struct{})}
	close(s.done)
	return s
}

func (pr *PipeReader) decodeWorker() {
	defer pr.wg.Done()
	for s := range pr.work {
		if s.err == nil {
			vals, err := DecompressInto(s.vals[:0], s.frame)
			if err != nil {
				s.err = err
			} else {
				s.vals = vals
			}
		}
		close(s.done)
	}
}

// recvSlot waits for the next in-order slot (and its decode) unless the
// context is cancelled first. Every slot that reaches the emit queue is
// guaranteed to have its done signal closed eventually — by a decode
// worker, by the prefetcher's failed-hand-off path, or at construction for
// error slots — so the done wait needs no cancellation case of its own.
func (pr *PipeReader) recvSlot() (s *pipeSlot, ok bool, cancelled error) {
	select {
	case s, ok = <-pr.emit:
		if ok {
			<-s.done
		}
		return s, ok, nil
	case <-pr.ctxDone:
		return nil, false, pr.ctx.Err()
	}
}

// fail pins a frame-level failure as the reader's terminal error, counting
// it exactly as the serial Reader does.
func (pr *PipeReader) fail(s *pipeSlot) error {
	telemetry.StreamFrameErrors.Inc()
	if s.idx < 0 {
		pr.err = s.err // container-header failure, already fully wrapped
	} else {
		pr.err = &FrameError{Frame: s.idx, Offset: s.off, Err: s.err}
	}
	return pr.err
}

// next advances to the next decoded slot in frame order, recycling the
// drained one. It returns io.EOF at the terminator.
func (pr *PipeReader) next() error {
	if pr.cur != nil {
		if pr.tr != nil {
			pr.tr.RecordSpan("pipe_frame", pr.cur.t0, time.Now())
		}
		pr.cur.frame = pr.cur.frame[:0]
		pr.free <- pr.cur
		pr.cur = nil
	}
	var s *pipeSlot
	var ok bool
	var cancelled error
	if telemetry.Enabled() {
		t := telemetry.Start()
		s, ok, cancelled = pr.recvSlot()
		t.Stop(&telemetry.PipelineConsumerStalls)
	} else {
		s, ok, cancelled = pr.recvSlot()
	}
	if cancelled != nil {
		pr.err = cancelled
		return pr.err
	}
	if !ok {
		// The prefetcher may have exited because the context fired rather
		// than because the stream ended; report the cancellation, not EOF.
		if pr.ctxDone != nil {
			if err := pr.ctx.Err(); err != nil {
				pr.err = err
				return pr.err
			}
		}
		pr.err = io.EOF
		return io.EOF
	}
	if s.err != nil {
		return pr.fail(s)
	}
	pr.cur = s
	pr.pos = 0
	if telemetry.Enabled() {
		telemetry.StreamFramesRead.Inc()
	}
	return nil
}

// Read fills p with decompressed values, returning the count. It returns
// io.EOF after the final chunk is exhausted.
func (pr *PipeReader) Read(p []float32) (int, error) {
	if pr.err != nil {
		return 0, pr.err
	}
	total := 0
	for total < len(p) {
		if pr.cur == nil || pr.pos == len(pr.cur.vals) {
			if err := pr.next(); err != nil {
				if total > 0 && err == io.EOF {
					pr.err = nil // deliver what we have; EOF on the next call
					return total, nil
				}
				return total, err
			}
		}
		n := copy(p[total:], pr.cur.vals[pr.pos:])
		pr.pos += n
		total += n
	}
	return total, nil
}

// ReadAll decompresses the remainder of the stream.
func (pr *PipeReader) ReadAll() ([]float32, error) {
	if pr.err != nil && pr.err != io.EOF {
		return nil, pr.err
	}
	var out []float32
	for {
		if pr.cur != nil && pr.pos < len(pr.cur.vals) {
			out = append(out, pr.cur.vals[pr.pos:]...)
			pr.pos = len(pr.cur.vals)
		}
		if err := pr.next(); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
	}
}

// Close abandons the stream and joins the background goroutines. It is
// idempotent and safe after EOF or an error. If the underlying reader is
// blocked in Read, Close blocks until that call returns (hand PipeReader a
// reader you can unblock, e.g. by closing the file or connection).
func (pr *PipeReader) Close() error {
	if pr.closed {
		return nil
	}
	pr.closed = true
	close(pr.stop)
	// Drain the in-order queue so the prefetcher and workers are never
	// stuck handing off a slot, then join everything.
	go func() {
		for s := range pr.emit {
			<-s.done
		}
	}()
	pr.wg.Wait()
	if pr.err == nil {
		pr.err = errors.New("szx: read after Close")
	}
	return nil
}

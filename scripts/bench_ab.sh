#!/usr/bin/env bash
# bench_ab.sh — interleaved A/B of the codec hot-path benchmarks between the
# working tree (B) and a baseline git ref (A).
#
# Usage:
#   scripts/bench_ab.sh [baseline-ref] [rounds] [benchtime]
#
# Defaults: baseline-ref=HEAD~1, rounds=5, benchtime=1s.
#
# The baseline is materialized in a temporary git worktree so the working
# tree (including uncommitted changes) is never touched. Rounds alternate
# A,B,A,B,... rather than running all of A then all of B, so slow drift in
# machine load (thermal, background daemons) hits both sides equally.
#
# Results go through benchstat when it is on PATH; otherwise a small awk
# comparator prints per-benchmark means and the B/A throughput ratio.
set -euo pipefail

cd "$(dirname "$0")/.."

REF="${1:-HEAD~1}"
ROUNDS="${2:-5}"
BENCHTIME="${3:-1s}"
PATTERN="${BENCH_PATTERN:-BenchmarkCore(Compress|Decompress)(Parallel)?Into}"

if ! git rev-parse --verify --quiet "$REF^{commit}" >/dev/null; then
    echo "bench_ab: baseline ref '$REF' does not resolve to a commit" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'git worktree remove --force "$work/base" 2>/dev/null || true; rm -rf "$work"' EXIT
git worktree add --quiet --detach "$work/base" "$REF"

A="$work/a.txt" # baseline
B="$work/b.txt" # working tree
: >"$A"
: >"$B"

echo "bench_ab: baseline=$(git rev-parse --short "$REF") rounds=$ROUNDS benchtime=$BENCHTIME" >&2
for ((i = 1; i <= ROUNDS; i++)); do
    echo "bench_ab: round $i/$ROUNDS (A: baseline)" >&2
    (cd "$work/base" && go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" ./internal/core) >>"$A"
    echo "bench_ab: round $i/$ROUNDS (B: working tree)" >&2
    go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" ./internal/core >>"$B"
done

if command -v benchstat >/dev/null 2>&1; then
    benchstat "old=$A" "new=$B"
else
    echo "bench_ab: benchstat not found; falling back to mean comparison" >&2
    awk '
        FNR == 1 { file++ }
        /^Benchmark/ {
            for (i = 3; i <= NF; i++) {
                if ($i == "MB/s") {
                    name = $1
                    mbs = $(i - 1)
                    if (file == 1) { asum[name] += mbs; an[name]++ }
                    else           { bsum[name] += mbs; bn[name]++ }
                    seen[name] = 1
                    break
                }
            }
        }
        END {
            printf "%-45s %12s %12s %8s\n", "benchmark", "old MB/s", "new MB/s", "ratio"
            for (name in seen) {
                if (an[name] && bn[name]) {
                    a = asum[name] / an[name]
                    b = bsum[name] / bn[name]
                    printf "%-45s %12.2f %12.2f %7.2fx\n", name, a, b, b / a
                }
            }
        }
    ' "$A" "$B" | sort
fi

# Wall-clock breakdown for the working tree: szxbench -obs interleaves
# telemetry-disabled/enabled rounds on the serial hot paths and reports the
# per-stage means from the telemetry timers alongside the overhead numbers,
# so an A/B run also says *where* the time goes. Skip with BENCH_OBS=0.
if [[ "${BENCH_OBS:-1}" != 0 ]]; then
    echo "bench_ab: telemetry overhead + stage breakdown (working tree)" >&2
    go run ./cmd/szxbench -obs - -benchtime "$BENCHTIME"
fi

# Streaming dump/load A/B for the working tree: serial Writer/Reader vs the
# pipelined engine over file, simulated-PFS, and balanced sinks (the
# BENCH_STREAM.json workload). Skip with BENCH_STREAM=0.
if [[ "${BENCH_STREAM:-1}" != 0 ]]; then
    echo "bench_ab: streaming serial-vs-pipelined A/B (working tree)" >&2
    go run ./cmd/szxbench -stream - -benchtime "$BENCHTIME"
fi

# Service A/B: the szxd load generator (the BENCH_SERVE.json workload) run
# interleaved between the baseline worktree and the working tree, same
# A,B,A,B discipline as the codec benchmarks. The headline comparison is
# the 1-client 8 MiB row (levels[0].mb_s) — the "batching must not tax
# large one-shot requests" guard — plus the working tree's small-payload
# oneshot-vs-batch64 ratios when present. Skip with BENCH_SERVE=0; rounds
# default to 3 (override with SERVE_ROUNDS) because each round runs the
# full level sweep on both sides.
if [[ "${BENCH_SERVE:-1}" != 0 ]]; then
    SERVE_ROUNDS="${SERVE_ROUNDS:-3}"
    echo "bench_ab: szxd service A/B (interleaved, $SERVE_ROUNDS rounds)" >&2
    for ((i = 1; i <= SERVE_ROUNDS; i++)); do
        echo "bench_ab: serve round $i/$SERVE_ROUNDS (A: baseline)" >&2
        (cd "$work/base" && go run ./cmd/szxbench -serve "$work/serve_a_$i.json" -benchtime "$BENCHTIME")
        echo "bench_ab: serve round $i/$SERVE_ROUNDS (B: working tree)" >&2
        go run ./cmd/szxbench -serve "$work/serve_b_$i.json" -benchtime "$BENCHTIME"
    done
    python3 - "$work" "$SERVE_ROUNDS" <<'PY'
import json, sys
work, rounds = sys.argv[1], int(sys.argv[2])

def rows(side):
    out = []
    for i in range(1, rounds + 1):
        try:
            out.append(json.load(open(f"{work}/serve_{side}_{i}.json")))
        except FileNotFoundError:
            pass
    return out

a, b = rows("a"), rows("b")
mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
am = mean([r["levels"][0]["mb_s"] for r in a])
bm = mean([r["levels"][0]["mb_s"] for r in b])
if am:
    print(f"serve 8 MiB one-shot (1 client): old {am:.2f} MB/s  new {bm:.2f} MB/s  "
          f"ratio {bm/am:.3f}x ({(bm/am-1)*100:+.1f}%)")
small = {}
for r in b:
    for lvl in r.get("small_levels", []):
        small.setdefault((lvl["size_bytes"], lvl["mode"]), []).append(lvl["arrays_per_s"])
for size in sorted({k[0] for k in small}):
    one = mean(small.get((size, "oneshot"), []))
    b64 = mean(small.get((size, "batch64"), []))
    if one and b64:
        print(f"serve {size >> 10:3d} KiB: oneshot {one:9.1f} arrays/s  "
              f"batch64 {b64:9.1f} arrays/s  ratio {b64/one:.2f}x")
PY
fi

# Fixed-ratio bound-search sweep for the working tree: target-ratio search
# over the synthetic corpus (the BENCH_RATIO.json workload) — probe counts,
# search time, convergence rate, achieved-vs-target error. Skip with
# BENCH_RATIO=0.
if [[ "${BENCH_RATIO:-1}" != 0 ]]; then
    echo "bench_ab: fixed-ratio bound-search sweep (working tree)" >&2
    go run ./cmd/szxbench -ratio BENCH_RATIO.json -scale 16
    python3 - <<'PY' 2>/dev/null || cat BENCH_RATIO.json
import json
r = json.load(open("BENCH_RATIO.json"))
print(f"ratio sweep: {r['cases']} cases, converged {100*r['converged_rate']:.1f}%, "
      f"mean probes {r['mean_probes']}, max {r['max_probes']}, "
      f"mean |achieved-target| {r['mean_abs_err_pct']}%")
PY
fi

# Cluster routing sweep for the working tree: 1- vs 3-node in-process
# fleets under hash / least-loaded / hedged routing (the BENCH_CLUSTER.json
# workload) — failed/shed/retry/hedge counts and p50/p99 per level. Skip
# with BENCH_CLUSTER=0.
if [[ "${BENCH_CLUSTER:-1}" != 0 ]]; then
    echo "bench_ab: cluster routing sweep (working tree)" >&2
    go run ./cmd/szxbench -cluster BENCH_CLUSTER.json -benchtime "$BENCHTIME"
    python3 - <<'PY' 2>/dev/null || cat BENCH_CLUSTER.json
import json
r = json.load(open("BENCH_CLUSTER.json"))
for l in r["levels"]:
    print(f"cluster {l['nodes']} node(s) {l['policy']:>12}: {l['requests']:4d} ok "
          f"{l['failed']:2d} failed  shed {l['shed']:3d}  retries {l['retries']:3d}  "
          f"hedges {l['hedges_fired']}/{l['hedges_won']}  "
          f"p50 {l['p50_ms']:.1f}ms p99 {l['p99_ms']:.1f}ms  {l['mb_s']:.1f} MB/s")
PY
fi

# Kernel-level sweep for the working tree: per-kernel ns/block for the
# generic vs CPU-dispatched implementation sets plus the end-to-end serial
# A/B between them (the BENCH_KERNEL.json workload). Skip with
# BENCH_KERNEL=0.
if [[ "${BENCH_KERNEL:-1}" != 0 ]]; then
    echo "bench_ab: kernel generic-vs-dispatched sweep (working tree)" >&2
    go run ./cmd/szxbench -kernel BENCH_KERNEL.json -benchtime "$BENCHTIME"
fi

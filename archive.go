package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/telemetry"
)

// Archive support: a simulation snapshot is usually a set of named fields
// (the paper's applications have 2-77 of them, Table 2). An Archive bundles
// many SZx-compressed fields with a table of contents so a reader can
// decompress one field — or one value range of one field — without touching
// the rest. This is the on-disk shape the Fig. 16 dump/load workflow
// produces per rank.
//
// Wire format:
//
//	"SZXA" u8(version) u32(nfields)
//	per field: u16 nameLen | name | u8 ndims | u64 dims... | u64 payloadLen
//	payloads, concatenated in TOC order
const (
	archiveMagic   = "SZXA"
	archiveVersion = 1
)

// Archive errors.
var (
	ErrArchive       = errors.New("szx: malformed archive")
	ErrFieldExists   = errors.New("szx: field already in archive")
	ErrFieldNotFound = errors.New("szx: field not in archive")
	ErrFieldDims     = errors.New("szx: dims product does not match data length")
)

// ArchiveWriter accumulates compressed fields. Compression stages through
// one reused scratch buffer (each stored payload is then an exact-size
// copy), so adding many fields allocates no growth slack per field.
//
// A pipelined writer (NewPipelinedArchiveWriter) compresses fields
// concurrently: AddField returns as soon as the field is enqueued, up to
// the configured number of compressions run in flight, and Bytes/WriteTo/
// Flush wait for all of them. TOC order stays the Add order either way.
type ArchiveWriter struct {
	opt     Options
	names   map[string]bool
	fields  []*archiveField
	scratch []byte // serial-path compressed staging, reused across fields

	// Pipelined mode (par > 0): sem bounds in-flight compressions, pool
	// recycles per-worker staging buffers, firstErr pins the first failure.
	par      int
	sem      chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
	pool     sync.Pool
}

type archiveField struct {
	name    string
	dims    []int
	payload []byte
}

// NewArchiveWriter returns a writer that compresses every added field with
// the given options. With opt.TargetRatio set, each field resolves its own
// error bound against its own data — a per-field ratio budget — and the
// resolved bound is reported back through FieldInfo.ErrBound on read.
func NewArchiveWriter(opt Options) *ArchiveWriter {
	return &ArchiveWriter{opt: opt, names: make(map[string]bool)}
}

// NewPipelinedArchiveWriter returns a writer that compresses added fields
// concurrently, up to workers (≤0 = GOMAXPROCS) at a time, overlapping the
// per-field compressions of a multi-field snapshot dump. AddField blocks
// only when the pipeline is full (bounded memory: at most workers
// compressed payloads staging at once). The caller must keep each field's
// data slice unmodified until Flush, Bytes, or WriteTo returns; the first
// compression error is pinned and reported by those calls and by
// subsequent AddField calls.
func NewPipelinedArchiveWriter(opt Options, workers int) *ArchiveWriter {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ArchiveWriter{
		opt:   opt,
		names: make(map[string]bool),
		par:   workers,
		sem:   make(chan struct{}, workers),
	}
}

// AddField compresses and stores one named float32 field. dims must
// multiply to len(data); names must be unique and non-empty.
func (aw *ArchiveWriter) AddField(name string, dims []int, data []float32) error {
	return AddArchiveField(aw, name, dims, data)
}

// AddFieldFloat64 compresses and stores one named float64 field. The
// element type travels in the field's stream header; readers use
// ReadFloat64 for such fields.
func (aw *ArchiveWriter) AddFieldFloat64(name string, dims []int, data []float64) error {
	return AddArchiveField(aw, name, dims, data)
}

// AddArchiveField compresses and stores one named field of either element
// type. It is a free function because Go methods cannot take type
// parameters; AddField and AddFieldFloat64 are its pinned instantiations.
// On a pipelined writer the compression may still be in flight when it
// returns; data must stay unmodified until Flush/Bytes/WriteTo.
func AddArchiveField[T Float](aw *ArchiveWriter, name string, dims []int, data []T) error {
	return aw.add(name, dims, len(data), func(dst []byte) ([]byte, error) {
		return CompressInto[T](dst, data, aw.opt)
	})
}

func (aw *ArchiveWriter) add(name string, dims []int, n int, compress func(dst []byte) ([]byte, error)) error {
	if name == "" || len(name) > math.MaxUint16 {
		return fmt.Errorf("%w: bad field name", ErrArchive)
	}
	if aw.names[name] {
		return ErrFieldExists
	}
	p := 1
	for _, d := range dims {
		if d < 1 {
			return ErrFieldDims
		}
		p *= d
	}
	if len(dims) == 0 || p != n {
		return ErrFieldDims
	}
	f := &archiveField{name: name, dims: append([]int(nil), dims...)}
	if aw.par > 0 {
		if err := aw.Err(); err != nil {
			return err
		}
		aw.names[name] = true
		aw.fields = append(aw.fields, f) // field order = Add order; payload lands later
		aw.sem <- struct{}{}             // backpressure: at most par compressions in flight
		aw.wg.Add(1)
		go func() {
			defer aw.wg.Done()
			defer func() { <-aw.sem }()
			var scratch []byte
			if s, ok := aw.pool.Get().(*[]byte); ok {
				scratch = *s
			}
			comp, err := compress(scratch[:0])
			if err != nil {
				aw.mu.Lock()
				if aw.firstErr == nil {
					aw.firstErr = fmt.Errorf("szx: archive field %q: %w", f.name, err)
				}
				aw.mu.Unlock()
				return
			}
			f.payload = append(make([]byte, 0, len(comp)), comp...)
			aw.pool.Put(&comp)
			if telemetry.Enabled() {
				telemetry.ArchiveFieldsWritten.Inc()
			}
		}()
		return nil
	}
	// Serial path: compress into the shared scratch, then store an
	// exact-size copy so payloads carry no append growth slack.
	comp, err := compress(aw.scratch[:0])
	if err != nil {
		return err
	}
	aw.scratch = comp
	f.payload = append(make([]byte, 0, len(comp)), comp...)
	aw.names[name] = true
	aw.fields = append(aw.fields, f)
	if telemetry.Enabled() {
		telemetry.ArchiveFieldsWritten.Inc()
	}
	return nil
}

// Err returns the first in-flight compression error recorded so far
// (always nil for serial writers; Flush is the synchronizing read).
func (aw *ArchiveWriter) Err() error {
	aw.mu.Lock()
	defer aw.mu.Unlock()
	return aw.firstErr
}

// Flush waits for every in-flight field compression of a pipelined writer
// and returns the first error any of them hit. On a serial writer it
// returns nil immediately.
func (aw *ArchiveWriter) Flush() error {
	aw.wg.Wait()
	return aw.Err()
}

// NumFields returns how many fields have been added.
func (aw *ArchiveWriter) NumFields() int { return len(aw.fields) }

// Bytes serializes the archive. On a pipelined writer it first waits for
// in-flight compressions and returns nil if any failed (use Flush to
// retrieve the error).
func (aw *ArchiveWriter) Bytes() []byte {
	if err := aw.Flush(); err != nil {
		return nil
	}
	size := 9
	for _, f := range aw.fields {
		size += 2 + len(f.name) + 1 + 8*len(f.dims) + 8 + len(f.payload)
	}
	out := make([]byte, 0, size)
	out = append(out, archiveMagic...)
	out = append(out, archiveVersion)
	out = aw.appendTOC(out)
	for _, f := range aw.fields {
		out = append(out, f.payload...)
	}
	return out
}

// appendTOC appends the field count and per-field TOC entries.
func (aw *ArchiveWriter) appendTOC(out []byte) []byte {
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(aw.fields)))
	out = append(out, b8[:4]...)
	for _, f := range aw.fields {
		binary.LittleEndian.PutUint16(b8[:2], uint16(len(f.name)))
		out = append(out, b8[:2]...)
		out = append(out, f.name...)
		out = append(out, byte(len(f.dims)))
		for _, d := range f.dims {
			binary.LittleEndian.PutUint64(b8[:], uint64(d))
			out = append(out, b8[:]...)
		}
		binary.LittleEndian.PutUint64(b8[:], uint64(len(f.payload)))
		out = append(out, b8[:]...)
	}
	return out
}

// WriteTo streams the serialized archive to w — the header and TOC in one
// buffered write, then each payload directly — without materializing the
// whole blob the way Bytes does. It waits for in-flight compressions
// (pipelined writers) and produces bytes identical to Bytes.
func (aw *ArchiveWriter) WriteTo(w io.Writer) (int64, error) {
	if err := aw.Flush(); err != nil {
		return 0, err
	}
	hdr := make([]byte, 0, 256)
	hdr = append(hdr, archiveMagic...)
	hdr = append(hdr, archiveVersion)
	hdr = aw.appendTOC(hdr)
	var total int64
	n, err := w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, f := range aw.fields {
		n, err := w.Write(f.payload)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FieldInfo describes one archived field.
type FieldInfo struct {
	Name           string
	Dims           []int
	NumValues      int
	CompressedSize int
	ErrBound       float64
	// Type is the element type carried in the field's stream header.
	Type DType
}

// Archive reads a serialized archive without decompressing anything until
// a field is requested.
type Archive struct {
	infos    []FieldInfo
	payloads map[string][]byte
}

// OpenArchive parses the table of contents of an archive.
func OpenArchive(data []byte) (*Archive, error) {
	if len(data) < 9 || string(data[:4]) != archiveMagic || data[4] != archiveVersion {
		return nil, ErrArchive
	}
	n := int(binary.LittleEndian.Uint32(data[5:9]))
	if n < 0 || n > 1<<20 {
		return nil, ErrArchive
	}
	pos := 9
	type entry struct {
		info FieldInfo
		plen int
	}
	entries := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		if pos+2 > len(data) {
			return nil, ErrArchive
		}
		nameLen := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2
		if pos+nameLen+1 > len(data) {
			return nil, ErrArchive
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		ndims := int(data[pos])
		pos++
		if ndims < 1 || ndims > 8 || pos+8*ndims+8 > len(data) {
			return nil, ErrArchive
		}
		dims := make([]int, ndims)
		nv := 1
		for d := range dims {
			dims[d] = int(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
			if dims[d] < 1 || dims[d] > 1<<40 {
				return nil, ErrArchive
			}
			nv *= dims[d]
		}
		plen := int(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		if plen < 0 {
			return nil, ErrArchive
		}
		entries = append(entries, entry{
			info: FieldInfo{Name: name, Dims: dims, NumValues: nv, CompressedSize: plen},
			plen: plen,
		})
	}
	a := &Archive{payloads: make(map[string][]byte, n)}
	for _, e := range entries {
		if pos+e.plen > len(data) {
			return nil, ErrArchive
		}
		payload := data[pos : pos+e.plen]
		pos += e.plen
		if h, err := Info(payload); err == nil {
			e.info.ErrBound = h.ErrBound
			e.info.Type = h.Type
		} else {
			return nil, fmt.Errorf("%w: field %q: %v", ErrArchive, e.info.Name, err)
		}
		if _, dup := a.payloads[e.info.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate field %q", ErrArchive, e.info.Name)
		}
		a.payloads[e.info.Name] = payload
		a.infos = append(a.infos, e.info)
	}
	return a, nil
}

// Fields lists the archived fields in name order.
func (a *Archive) Fields() []FieldInfo {
	out := append([]FieldInfo(nil), a.infos...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Read decompresses one field by name.
func (a *Archive) Read(name string) ([]float32, []int, error) {
	return ReadArchiveField[float32](a, name)
}

// ReadFloat64 decompresses one float64 field by name.
func (a *Archive) ReadFloat64(name string) ([]float64, []int, error) {
	return ReadArchiveField[float64](a, name)
}

// ReadArchiveField decompresses one field by name at either element type
// (ErrWrongType if T does not match the field's stream header). It is a
// free function because Go methods cannot take type parameters; Read and
// ReadFloat64 are its pinned instantiations.
func ReadArchiveField[T Float](a *Archive, name string) ([]T, []int, error) {
	p, ok := a.payloads[name]
	if !ok {
		return nil, nil, ErrFieldNotFound
	}
	vals, err := DecompressInto[T](nil, p)
	if err != nil {
		return nil, nil, err
	}
	if telemetry.Enabled() {
		telemetry.ArchiveFieldsRead.Inc()
	}
	for _, inf := range a.infos {
		if inf.Name == name {
			return vals, inf.Dims, nil
		}
	}
	return vals, nil, nil
}

// ReadRange decompresses values [lo, hi) of one float32 field, touching
// only the blocks that overlap the range.
func (a *Archive) ReadRange(name string, lo, hi int) ([]float32, error) {
	p, ok := a.payloads[name]
	if !ok {
		return nil, ErrFieldNotFound
	}
	return DecompressRange(p, lo, hi)
}

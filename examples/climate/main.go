// Climate: compress a Hurricane-ISABEL-style 3-D atmospheric field with
// SZx, SZ, and ZFP at the same value-range error bound and compare ratio,
// speed, and reconstruction quality (PSNR/SSIM) — the workload class the
// paper's Fig. 12 and Table 3 study.
package main

import (
	"fmt"
	"log"
	"time"

	szx "repro"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/sz"
	"repro/internal/zfp"
)

func main() {
	hu := datagen.Hurricane(8, 42)
	field := hu.Fields[2] // U wind component
	fmt.Printf("field %s, dims %v (%d values, %.1f MB)\n\n",
		field.Name, field.Dims, len(field.Data), float64(4*len(field.Data))/1e6)

	rel := 1e-3
	mn, mx := metrics.ValueRange(field.Data)
	abs := rel * (mx - mn)
	fmt.Printf("value-range REL bound %g -> absolute bound %.3g\n\n", rel, abs)

	type result struct {
		name      string
		comp      []byte
		dec       []float32
		compSec   float64
		decompSec float64
	}
	var results []result

	// SZx (this library's public API).
	start := time.Now()
	comp, err := szx.Compress(field.Data, szx.Options{ErrorBound: abs})
	if err != nil {
		log.Fatal(err)
	}
	ct := time.Since(start).Seconds()
	start = time.Now()
	dec, err := szx.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"SZx", comp, dec, ct, time.Since(start).Seconds()})

	// SZ baseline.
	start = time.Now()
	comp, err = sz.Compress(field.Data, field.Dims, abs, sz.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ct = time.Since(start).Seconds()
	start = time.Now()
	dec, _, err = sz.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"SZ", comp, dec, ct, time.Since(start).Seconds()})

	// ZFP baseline.
	start = time.Now()
	comp, err = zfp.Compress(field.Data, field.Dims, abs)
	if err != nil {
		log.Fatal(err)
	}
	ct = time.Since(start).Seconds()
	start = time.Now()
	dec, _, err = zfp.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"ZFP", comp, dec, ct, time.Since(start).Seconds()})

	origMB := float64(4*len(field.Data)) / 1e6
	fmt.Printf("%-5s %8s %10s %12s %10s %8s %7s\n",
		"codec", "CR", "comp MB/s", "decomp MB/s", "max err", "PSNR", "SSIM")
	for _, r := range results {
		d, err := metrics.Measure(field.Data, r.dec)
		if err != nil {
			log.Fatal(err)
		}
		slice, h, w := datagen.Slice2D(field)
		off := len(field.Data) / 2 / (h * w) * (h * w) // middle slice, aligned
		_ = slice
		ssim, err := metrics.SSIM(field.Data[off:off+h*w], r.dec[off:off+h*w], h, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %8.1f %10.0f %12.0f %10.2e %8.1f %7.3f\n",
			r.name,
			float64(4*len(field.Data))/float64(len(r.comp)),
			origMB/r.compSec, origMB/r.decompSec,
			d.MaxErr, d.PSNR, ssim)
		if d.MaxErr > abs {
			log.Fatalf("%s violated the error bound!", r.name)
		}
	}
	fmt.Println("\nall codecs respected the error bound ✓")
	fmt.Println("expected shape (paper): SZ highest CR, SZx fastest, ZFP in between")
}

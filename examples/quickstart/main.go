// Quickstart: compress and decompress a float32 array with SZx and verify
// the error bound.
package main

import (
	"fmt"
	"log"
	"math"

	szx "repro"
)

func main() {
	// A smooth synthetic signal, like a 1-D slice of a simulation field.
	data := make([]float32, 1_000_000)
	for i := range data {
		x := float64(i) / 5000
		data[i] = float32(math.Sin(x) + 0.3*math.Cos(7*x))
	}

	// Compress under an absolute error bound of 1e-3.
	comp, stats, err := szx.CompressStats(data, szx.Options{ErrorBound: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d values: %d -> %d bytes (ratio %.1f)\n",
		len(data), stats.OriginalSize, stats.CompressedSize, stats.Ratio())
	fmt.Printf("constant blocks: %d/%d\n", stats.ConstantBlocks, stats.Blocks)

	// Decompress and check the guarantee: |original - reconstructed| <= 1e-3.
	dec, err := szx.Decompress(comp)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range data {
		if d := math.Abs(float64(data[i]) - float64(dec[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max reconstruction error: %.2e (bound 1e-3)\n", maxErr)
	if maxErr > 1e-3 {
		log.Fatal("error bound violated!")
	}
	fmt.Println("error bound respected ✓")
}

// Instrument: online compression of a high-rate detector stream, the
// LCLS-II-style use case from the paper's introduction. Frames arrive at a
// fixed rate; the compressor must keep up in real time (the paper cites
// 250 GB/s aggregate across the facility). This example runs a bounded
// firehose through a pipeline of parallel SZx workers and reports the
// sustained throughput and backlog behaviour.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	szx "repro"
)

const (
	frameValues = 1 << 19 // 2 MiB frames
	numFrames   = 64
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("streaming %d frames x %.0f MB through %d compression workers\n\n",
		numFrames, float64(frameValues*4)/1e6, workers)

	frames := make(chan []float32, 4)
	type done struct {
		orig, comp int
	}
	results := make(chan done, numFrames)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for frame := range frames {
				comp, err := szx.Compress(frame, szx.Options{
					ErrorBound: 1e-3, Mode: szx.BoundRelative,
				})
				if err != nil {
					log.Fatal(err)
				}
				results <- done{orig: 4 * len(frame), comp: len(comp)}
			}
		}()
	}

	// Pre-synthesize the detector frames (diffraction-like rings + noise) so
	// the measured pipeline contains only compression work, then stream them.
	rng := rand.New(rand.NewSource(1))
	pending := make([][]float32, numFrames)
	for f := range pending {
		pending[f] = makeFrame(f, rng)
	}
	start := time.Now()
	go func() {
		for _, fr := range pending {
			frames <- fr
		}
		close(frames)
	}()

	var totalOrig, totalComp int
	for f := 0; f < numFrames; f++ {
		r := <-results
		totalOrig += r.orig
		totalComp += r.comp
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("ingested %.0f MB in %v\n", float64(totalOrig)/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("sustained compression throughput: %.2f GB/s\n",
		float64(totalOrig)/elapsed.Seconds()/1e9)
	fmt.Printf("aggregate ratio: %.1f (stored %.0f MB)\n",
		float64(totalOrig)/float64(totalComp), float64(totalComp)/1e6)
	fmt.Println("\nerror bound: value-range REL 1e-3 per frame, guaranteed per value")
}

// makeFrame synthesizes one smooth detector image with Poisson-ish noise.
func makeFrame(idx int, rng *rand.Rand) []float32 {
	out := make([]float32, frameValues)
	side := int(math.Sqrt(frameValues))
	cx, cy := float64(side)/2, float64(side)/2
	phase := float64(idx) * 0.05
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			r := math.Hypot(float64(x)-cx, float64(y)-cy)
			v := 100*math.Exp(-r/200)*(1+math.Cos(r/8+phase)) + rng.Float64()
			out[y*side+x] = float32(v)
		}
	}
	return out
}

// Inmemory: the quantum-circuit-simulation use case from the paper's
// introduction — a double-precision working set too large for memory is
// kept compressed, and slabs are decompressed on demand, touched, and
// recompressed. The figure of merit is the slowdown versus uncompressed
// access, which is why an ultrafast compressor matters more than an extra
// 2x of ratio (the paper reports up to ~20x overhead with slower codecs).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	szx "repro"
)

const (
	slabValues = 1 << 18 // 2 MiB of float64 per slab
	numSlabs   = 48
	sweeps     = 4
)

func main() {
	// Build the working set: amplitudes of a simulated state vector, one
	// slab at a time, stored compressed.
	fmt.Printf("working set: %d slabs x %d double-precision values (%.0f MB uncompressed)\n",
		numSlabs, slabValues, float64(numSlabs*slabValues*8)/1e6)

	// REL 1e-4-class precision, as the QC study uses for high fidelity.
	opt := szx.Options{ErrorBound: 1e-5}
	compressed := make([][]byte, numSlabs)
	var compBytes int
	for s := range compressed {
		slab := makeSlab(s, 0)
		comp, err := szx.CompressFloat64(slab, opt)
		if err != nil {
			log.Fatal(err)
		}
		compressed[s] = comp
		compBytes += len(comp)
	}
	fmt.Printf("resident compressed size: %.0f MB (ratio %.1f)\n\n",
		float64(compBytes)/1e6,
		float64(numSlabs*slabValues*8)/float64(compBytes))

	// Simulation sweeps: decompress each slab, apply an update, recompress.
	var compressTime, computeTime time.Duration
	start := time.Now()
	for sweep := 0; sweep < sweeps; sweep++ {
		for s := 0; s < numSlabs; s++ {
			t0 := time.Now()
			slab, err := szx.DecompressFloat64(compressed[s])
			if err != nil {
				log.Fatal(err)
			}
			compressTime += time.Since(t0)

			t0 = time.Now()
			applyGate(slab, sweep)
			computeTime += time.Since(t0)

			t0 = time.Now()
			comp, err := szx.CompressFloat64(slab, opt)
			if err != nil {
				log.Fatal(err)
			}
			compressed[s] = comp
			compressTime += time.Since(t0)
		}
	}
	total := time.Since(start)

	// A pure-compute baseline tells us the overhead factor.
	base := make([]float64, slabValues)
	t0 := time.Now()
	for sweep := 0; sweep < sweeps; sweep++ {
		for s := 0; s < numSlabs; s++ {
			applyGate(base, sweep)
		}
	}
	baseline := time.Since(t0)

	fmt.Printf("simulation: %v total (compute %v, codec %v)\n", total.Round(time.Millisecond),
		computeTime.Round(time.Millisecond), compressTime.Round(time.Millisecond))
	fmt.Printf("overhead vs uncompressed compute: %.2fx\n",
		total.Seconds()/baseline.Seconds())
	fmt.Println("(the paper reports up to ~20x overhead with slower compressors;")
	fmt.Println(" SZx's speed keeps the in-memory scheme practical)")
}

// makeSlab synthesizes a slab of smooth state-vector amplitudes.
func makeSlab(idx, phase int) []float64 {
	out := make([]float64, slabValues)
	for i := range out {
		x := float64(i+idx*slabValues) / 3000
		out[i] = math.Sin(x+float64(phase)) * math.Exp(-x/1e4)
	}
	return out
}

// applyGate is the stand-in numeric kernel (a cheap stencil update).
func applyGate(slab []float64, sweep int) {
	c := math.Cos(float64(sweep) * 0.1)
	for i := 1; i < len(slab); i++ {
		slab[i] = c*slab[i] + (1-c)*slab[i-1]
	}
}

// Service: run the szxd compression service in-process and drive it with
// the client library — the shared-service deployment from DESIGN.md §13,
// where compression runs on a transfer node or burst buffer rather than
// next to the instrument. Shows the one-shot round trip, sentinel errors
// surviving the wire, the streaming endpoints, and admission control
// refusing work with a retryable 429 when the server is saturated.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"time"

	szx "repro"
	"repro/service"
	"repro/service/client"
)

func main() {
	// A deliberately tiny admission window so the overload demo below
	// can saturate it with a single held request.
	srv := service.New(service.Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()
	fmt.Printf("szxd serving at %s\n\n", ts.URL)

	// One-shot round trip: a smooth synthetic field, absolute bound 1e-3.
	values := make([]float32, 1<<16)
	for i := range values {
		values[i] = float32(math.Sin(float64(i) / 500))
	}
	comp, err := c.Compress(ctx, values, client.Params{ErrorBound: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	back, err := c.Decompress(ctx, comp)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range values {
		if d := math.Abs(float64(back[i]) - float64(values[i])); d > worst {
			worst = d
		}
	}
	fmt.Printf("one-shot: %d values -> %d bytes (ratio %.1fx), max error %.2g\n",
		len(values), len(comp), float64(4*len(values))/float64(len(comp)), worst)

	// Sentinel errors cross the wire: corrupt input is errors.Is-able
	// exactly as if the codec had been called in-process.
	_, err = c.Decompress(ctx, []byte("not a compressed stream"))
	fmt.Printf("corrupt input: errors.Is(err, szx.ErrCorrupt) = %v (%v)\n",
		errors.Is(err, szx.ErrCorrupt), err)

	// Streaming: pipe an SZXS container through /v1/stream/compress and
	// back. The server never holds the whole stream in memory.
	var container bytes.Buffer
	body, err := c.StreamCompress(ctx, bytes.NewReader(f32le(values)), client.Params{ErrorBound: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.Copy(&container, body); err != nil {
		log.Fatal(err)
	}
	body.Close()
	fmt.Printf("streaming: %d bytes of SZXS container\n", container.Len())

	// Overload: park one request in the server's only slot, then watch
	// admission control refuse the next with a retryable 429.
	pr, pw := io.Pipe()
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/compress?e=1e-3", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the held request take the slot
	_, err = c.Compress(ctx, values, client.Params{ErrorBound: 1e-3})
	var se *client.Error
	if errors.As(err, &se) {
		fmt.Printf("overload: HTTP %d code=%s retryable=%v retry-after=%s\n",
			se.Status, se.Code, se.Retryable(), se.RetryAfter)
	}
	pw.Close() // release the held request

	fmt.Printf("\nin production: go run ./cmd/szxd -addr :8080 (drains on SIGTERM)\n")
}

func f32le(v []float32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		u := math.Float32bits(x)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return b
}

// Randomaccess: keep a multi-field simulation snapshot compressed in an
// archive and serve point queries and sub-range reads without full
// decompression — the access pattern that makes SZx's zsize side channel
// (designed for parallel decompression in the paper, §6.1) double as a
// random-access index.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	szx "repro"
	"repro/internal/datagen"
)

func main() {
	// Build an archive from a Miranda-style snapshot.
	mi := datagen.Miranda(8, 7)
	aw := szx.NewArchiveWriter(szx.Options{ErrorBound: 1e-3, Mode: szx.BoundRelative})
	var origBytes int
	for _, f := range mi.Fields {
		if err := aw.AddField(f.Name, f.Dims, f.Data); err != nil {
			log.Fatal(err)
		}
		origBytes += 4 * len(f.Data)
	}
	blob := aw.Bytes()
	fmt.Printf("archived %d fields: %.1f MB -> %.1f MB (ratio %.1f)\n\n",
		len(mi.Fields), float64(origBytes)/1e6, float64(len(blob))/1e6,
		float64(origBytes)/float64(len(blob)))

	a, err := szx.OpenArchive(blob)
	if err != nil {
		log.Fatal(err)
	}
	for _, inf := range a.Fields() {
		fmt.Printf("  %-12s dims %v  bound %.3g  %.2f MB compressed\n",
			inf.Name, inf.Dims, inf.ErrBound, float64(inf.CompressedSize)/1e6)
	}

	// Point/range queries: read 1000 random 64-value windows from the
	// pressure field and compare the cost against full decompression.
	info := a.Fields()[0]
	for _, inf := range a.Fields() {
		if inf.Name == "pressure" {
			info = inf
		}
	}
	rng := rand.New(rand.NewSource(1))
	const queries = 1000

	start := time.Now()
	for q := 0; q < queries; q++ {
		lo := rng.Intn(info.NumValues - 64)
		if _, err := a.ReadRange("pressure", lo, lo+64); err != nil {
			log.Fatal(err)
		}
	}
	ranged := time.Since(start)

	start = time.Now()
	for q := 0; q < 10; q++ {
		if _, _, err := a.Read("pressure"); err != nil {
			log.Fatal(err)
		}
	}
	full := time.Since(start) / 10 * queries

	fmt.Printf("\n%d random 64-value reads via ReadRange: %v\n", queries, ranged.Round(time.Millisecond))
	fmt.Printf("same queries via full decompression:    %v (extrapolated)\n", full.Round(time.Millisecond))
	fmt.Printf("random access is %.0fx cheaper for point queries\n", float64(full)/float64(ranged))
}

package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe returns a handler that sheds the first n requests with
// status (plus a tiny Retry-After) and echoes the body afterwards.
func shedThenServe(n int64, status int) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"code":"overloaded","error":"shed"}`))
			return
		}
		body, _ := io.ReadAll(r.Body)
		_, _ = w.Write(body)
	})
	return h, &calls
}

func TestWithRetrySucceedsAfterShed(t *testing.T) {
	h, calls := shedThenServe(2, http.StatusTooManyRequests)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL,
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}))
	got, err := c.Compress(context.Background(), []float32{1, 2, 3, 4}, Params{})
	if err != nil {
		t.Fatalf("Compress with retries: %v", err)
	}
	if len(got) != 16 { // echo server: 4 floats in, 16 bytes back
		t.Fatalf("echoed %d bytes, want 16", len(got))
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 shed + 1 success)", n)
	}
}

func TestWithRetryExhaustsAttempts(t *testing.T) {
	h, calls := shedThenServe(1<<30, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL,
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	// Retry-After of 1s must not be honored past the context deadline: cap
	// the whole call well under one server-mandated backoff.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compress(ctx, []float32{1}, Params{})
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("want the 503 back after exhausting retries, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retry loop ignored the context deadline (took %s)", elapsed)
	}
	if n := calls.Load(); n < 1 || n > 3 {
		t.Fatalf("server saw %d attempts, want 1..3", n)
	}
}

func TestWithRetryNeverRetriesStreams(t *testing.T) {
	h, calls := shedThenServe(1<<30, http.StatusTooManyRequests)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := New(srv.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}))
	// A pipe body is not replayable; the client must make exactly one
	// attempt rather than resend a consumed stream.
	pr, pw := io.Pipe()
	go func() { _, _ = pw.Write(make([]byte, 8)); _ = pw.Close() }()
	_, err := c.StreamCompress(context.Background(), pr, Params{})
	if err == nil {
		t.Fatal("expected the shed error through")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d attempts for a streaming body, want exactly 1", n)
	}
}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"overloaded_429", &Error{Status: http.StatusTooManyRequests}, true},
		{"draining_503", &Error{Status: http.StatusServiceUnavailable}, true},
		{"bad_request_400", &Error{Status: http.StatusBadRequest}, false},
		{"corrupt_400", &Error{Status: http.StatusBadRequest, Code: "corrupt"}, false},
		{"transport", &url.Error{Op: "Post", URL: "http://x", Err: errors.New("connection refused")}, true},
		{"ctx_cancelled", context.Canceled, false},
		{"ctx_deadline", context.DeadlineExceeded, false},
		{"ctx_cancelled_wrapped", &url.Error{Op: "Post", URL: "http://x", Err: context.Canceled}, false},
		{"other", errors.New("boom"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	for range 50 {
		if d := retryDelay(p, 1, 0); d <= 0 || d > p.BaseBackoff {
			t.Fatalf("jittered delay %s outside (0, %s]", d, p.BaseBackoff)
		}
		if d := retryDelay(p, 10, 0); d > p.MaxBackoff {
			t.Fatalf("delay %s above max backoff %s", d, p.MaxBackoff)
		}
		if d := retryDelay(p, 1, 3*time.Second); d < 3*time.Second {
			t.Fatalf("delay %s below the server's Retry-After of 3s", d)
		}
	}
}

// Package client is the Go client for the szxd compression service. It
// mirrors the in-process szx API shape — Compress/Decompress on value
// slices, streaming variants on readers — over the service's HTTP wire
// protocol, with connection reuse and typed errors that unwrap to the
// same szx sentinels callers already match against.
package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	szx "repro"
	"repro/telemetry/trace"
)

// traceIDHeader mirrors service.TraceIDHeader (the client deliberately
// does not import the server package).
const traceIDHeader = "Szx-Trace-Id"

// Params selects compression options for a request; the zero value uses
// the server's defaults. It is the wire form of szx.Options.
type Params struct {
	ErrorBound  float64  // 0 = server default
	TargetRatio float64  // fixed-ratio mode; mutually exclusive with ErrorBound
	Mode        szx.Mode // BoundAbsolute or BoundRelative
	BlockSize   int      // 0 = server default
	Workers     int      // 0 = serial, -1 = server max, else capped by server
}

func (p Params) query(elem string) url.Values {
	q := url.Values{}
	if elem != "" {
		q.Set("t", elem)
	}
	if p.ErrorBound > 0 {
		q.Set("e", strconv.FormatFloat(p.ErrorBound, 'g', -1, 64))
	}
	if p.TargetRatio > 0 {
		q.Set("ratio", strconv.FormatFloat(p.TargetRatio, 'g', -1, 64))
	}
	if p.Mode == szx.BoundRelative {
		q.Set("mode", "rel")
	}
	if p.BlockSize > 0 {
		q.Set("block", strconv.Itoa(p.BlockSize))
	}
	if p.Workers != 0 {
		q.Set("workers", strconv.Itoa(p.Workers))
	}
	return q
}

// Client talks to one szxd instance. It is safe for concurrent use; the
// underlying http.Client pools and reuses connections, so a long-lived
// Client amortizes TCP/TLS setup the same way a pooled Codec amortizes
// buffers.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transport, timeout, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for the service at base (e.g. "http://host:8080").
// The default transport keeps idle connections to the one host it talks
// to, sized for the service's typical in-flight cap.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        128,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Error is a non-2xx service response. Unwrap maps the wire code back to
// the szx sentinel errors, so errors.Is(err, szx.ErrCorrupt) works on a
// remote decode failure exactly as on a local one.
type Error struct {
	Status     int           // HTTP status code
	Code       string        // wire error code ("corrupt", "overloaded", ...)
	Message    string        // human-readable detail from the server
	Frame      int           // frame index for streaming-container failures
	Offset     int64         // byte offset for streaming-container failures
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
	TraceID    string        // server-assigned trace ID, for /debug/requests lookup
}

func (e *Error) Error() string {
	return fmt.Sprintf("szxd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// Retryable reports whether the request was shed by admission control or
// drain — failures where the same request may succeed on retry (after
// RetryAfter) or on another instance.
func (e *Error) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Unwrap exposes the szx sentinel matching the wire code, if any.
func (e *Error) Unwrap() error {
	switch e.Code {
	case "corrupt":
		return szx.ErrCorrupt
	case "wrong_type":
		return szx.ErrWrongType
	case "bad_options":
		return szx.ErrBadOptions
	}
	return nil
}

// decodeError turns a non-2xx response into an *Error, tolerating
// non-JSON bodies from intermediaries.
func decodeError(resp *http.Response) error {
	e := &Error{Status: resp.StatusCode, Code: "internal", TraceID: resp.Header.Get(traceIDHeader)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var we struct {
		Code    string `json:"code"`
		Message string `json:"error"`
		Frame   int    `json:"frame"`
		Offset  int64  `json:"offset"`
	}
	if json.Unmarshal(body, &we) == nil && we.Code != "" {
		e.Code, e.Message, e.Frame, e.Offset = we.Code, we.Message, we.Frame, we.Offset
	} else {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = http.StatusText(resp.StatusCode)
		}
	}
	return e
}

func (c *Client) post(ctx context.Context, path string, q url.Values, body io.Reader) (*http.Response, error) {
	u := c.base + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// A trace travelling in ctx rides the wire as a traceparent header, so
	// the server adopts the caller's trace ID and the round trip shows up
	// on the caller's trace as one client-side span.
	tr := trace.FromContext(ctx)
	if tr != nil {
		req.Header.Set("Traceparent", tr.Traceparent())
	}
	sp := tr.StartSpan("client:" + strings.TrimPrefix(path, "/v1/"))
	resp, err := c.hc.Do(req)
	sp.End()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// Compress sends vals to the service and returns the SZx stream.
func (c *Client) Compress(ctx context.Context, vals []float32, p Params) ([]byte, error) {
	resp, err := c.post(ctx, "/v1/compress", p.query("f32"), bytes.NewReader(f32ToBytes(vals)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// CompressFloat64 is Compress for float64 payloads.
func (c *Client) CompressFloat64(ctx context.Context, vals []float64, p Params) ([]byte, error) {
	resp, err := c.post(ctx, "/v1/compress", p.query("f64"), bytes.NewReader(f64ToBytes(vals)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Decompress sends a compressed stream (single SZx stream or SZXS
// container, the server auto-detects) and returns the float32 values.
func (c *Client) Decompress(ctx context.Context, comp []byte) ([]float32, error) {
	resp, err := c.post(ctx, "/v1/decompress", nil, bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("szxd: truncated response (%d bytes)", len(raw))
	}
	return bytesToF32(raw), nil
}

// DecompressFloat64 is Decompress for float64 streams.
func (c *Client) DecompressFloat64(ctx context.Context, comp []byte) ([]float64, error) {
	resp, err := c.post(ctx, "/v1/decompress", nil, bytes.NewReader(comp))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("szxd: truncated response (%d bytes)", len(raw))
	}
	return bytesToF64(raw), nil
}

// StreamCompress uploads raw little-endian float32 bytes from r and
// returns a reader over the SZXS container the server produces. Both
// directions stream: neither side buffers the whole payload. The caller
// must Close the returned reader.
func (c *Client) StreamCompress(ctx context.Context, r io.Reader, p Params) (io.ReadCloser, error) {
	resp, err := c.post(ctx, "/v1/stream/compress", p.query(""), r)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// StreamDecompress uploads an SZXS container from r and returns a reader
// over the raw little-endian float32 bytes. The caller must Close the
// returned reader; a server-side mid-stream failure surfaces as a
// truncated body.
func (c *Client) StreamDecompress(ctx context.Context, r io.Reader) (io.ReadCloser, error) {
	resp, err := c.post(ctx, "/v1/stream/decompress", nil, r)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Ready probes /readyz; nil means the instance is accepting work (not
// draining).
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func f64ToBytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func bytesToF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
